// Quickstart: plan one variable-length batch through the public
// pkg/zeppelin API and print the placement and the simulated iteration
// readout — the minimal end-to-end use of the v1 surface (the same
// request/response pair `curl -X POST /v1/plan` exchanges with the
// zeppelind daemon).
package main

import (
	"context"
	"fmt"
	"log"

	"zeppelin/pkg/zeppelin"
)

func main() {
	// Two Cluster A nodes (16×A800), LLaMA 7B, 4k tokens per GPU: the
	// smallest configuration in the paper's Fig. 8. Every zero field
	// selects exactly these defaults; they are spelled out for clarity.
	req := zeppelin.PlanRequest{
		Model:   "7B",
		Cluster: zeppelin.ClusterSpec{Preset: "A", Nodes: 2},
		Dataset: "arxiv",
		Method:  "zeppelin",
		Seed:    42,
	}
	resp, err := zeppelin.Plan(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planned a %d-sequence, %d-token batch on %d ranks:\n",
		resp.Seqs, resp.Tokens, resp.World)
	for rank, tok := range resp.TokensPerRank {
		fmt.Printf("  rank %2d: %6d tokens\n", rank, tok)
	}
	fmt.Printf("\n%s placement:\n", resp.Method)
	fmt.Printf("  local sequences   %10d\n", resp.LocalSeqs)
	fmt.Printf("  ring sequences    %10d\n", resp.RingSeqs)
	fmt.Printf("  imbalance         %10.3f (max/mean tokens per rank)\n", resp.Imbalance)
	fmt.Printf("  remap transfers   %10d (%d cross-node tokens)\n",
		resp.RemapTransfers, resp.RemapInterTokens)
	fmt.Printf("\nsimulated iteration:\n")
	fmt.Printf("  throughput        %10.0f tokens/s\n", resp.TokensPerSec)
	fmt.Printf("  iteration time    %10.2f ms\n", resp.IterTimeSec*1e3)
	fmt.Printf("  host overhead     %10.2f ms\n", resp.HostOverheadSec*1e3)
}
