// Quickstart: sample a variable-length batch, partition it with Zeppelin,
// simulate one training iteration, and print the throughput — the minimal
// end-to-end use of the library's public surface.
package main

import (
	"fmt"
	"log"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

func main() {
	// Two Cluster A nodes (16×A800), LLaMA 7B, 4k tokens per GPU: the
	// smallest configuration in the paper's Fig. 8.
	cfg := trainer.Config{
		Model: model.LLaMA7B,
		Spec:  cluster.ClusterA,
		Nodes: 2,
		Seed:  42,
	}

	// Sample a 64k-token batch with ArXiv's length distribution.
	batch := cfg.Batch(workload.ArXiv.Batch)
	fmt.Printf("batch of %d sequences, %d tokens total:\n", len(batch), cfg.TotalTokens())
	for _, s := range batch {
		fmt.Printf("  seq %d: %d tokens\n", s.ID, s.Len)
	}

	// Run one simulated iteration with the full Zeppelin system.
	res, err := trainer.Run(cfg, zeppelin.Full(), batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nZeppelin on %d GPUs:\n", cfg.GPUs())
	fmt.Printf("  throughput        %10.0f tokens/s\n", res.TokensPerSec)
	fmt.Printf("  iteration time    %10.1f ms\n", res.IterTime*1e3)
	fmt.Printf("  per-layer fwd attn %9.3f ms, bwd attn %.3f ms\n", res.AttnFwd*1e3, res.AttnBwd*1e3)
	fmt.Printf("  per-layer linear   %9.3f ms fwd, %.3f ms bwd\n", res.LinearFwd*1e3, res.LinearBwd*1e3)
	fmt.Printf("  remapping          %9.3f ms per layer\n", res.RemapTime*1e3)
	fmt.Printf("  host partitioning  %9.3f ms per iteration\n", res.HostOverhead*1e3)
}
