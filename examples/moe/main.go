// MoE: reproduce the paper's §5.1 Mixture-of-Experts observations — the
// expert-parallel all-to-all compresses every method's speedup relative
// to dense models, and Hybrid DP's FLOP-estimated balancing degrades
// because expert routing is unknown before dispatch.
package main

import (
	"fmt"
	"log"

	"zeppelin/internal/cluster"
	"zeppelin/internal/experiments"
	"zeppelin/internal/model"
	"zeppelin/internal/workload"
)

func main() {
	const seeds = 3
	for _, mc := range []model.Config{model.LLaMA7B, model.MoE8x550M} {
		cell := experiments.Cell{Model: mc, Spec: cluster.ClusterA, Nodes: 2, TP: 1, TokensPerGPU: 4096}
		fmt.Printf("%s (64k context, 16 GPUs, Cluster A):\n", mc.Name)
		for _, d := range workload.Eval {
			var base float64
			fmt.Printf("  %s:\n", d.Name)
			for _, m := range experiments.Methods() {
				tput, err := experiments.MeanThroughput(cell, d.Batch, m, seeds)
				if err != nil {
					log.Fatal(err)
				}
				if base == 0 {
					base = tput
				}
				fmt.Printf("    %-12s %10.0f tok/s  %5.2fx\n", m.Name(), tput, tput/base)
			}
		}
		fmt.Println()
	}
	fmt.Println("Note how the MoE model's speedups are uniformly compressed: the")
	fmt.Println("expert dispatch/combine all-to-alls cost the same under every")
	fmt.Println("scheduling method, and Hybrid DP additionally suffers from routing")
	fmt.Println("skew its FLOP estimates cannot see.")
}
