// MoE: reproduce the paper's §5.1 Mixture-of-Experts observations — the
// expert-parallel all-to-all compresses every method's speedup relative
// to dense models, and Hybrid DP's FLOP-estimated balancing degrades
// because expert routing is unknown before dispatch.
package main

import (
	"context"
	"fmt"
	"log"

	"zeppelin/pkg/zeppelin"
)

func main() {
	const seeds = 3
	for _, modelName := range []string{"7B", "8x550M"} {
		fmt.Printf("%s (64k context, 16 GPUs, Cluster A):\n", modelName)
		for _, dataset := range []string{"arxiv", "github", "prolong64k"} {
			var base float64
			fmt.Printf("  %s:\n", dataset)
			for _, m := range zeppelin.Methods() {
				tput, err := zeppelin.MeanThroughput(context.Background(), zeppelin.ThroughputRequest{
					Model:   modelName,
					Dataset: dataset,
					Method:  m.ID,
					Seeds:   seeds,
				})
				if err != nil {
					log.Fatal(err)
				}
				if base == 0 {
					base = tput
				}
				fmt.Printf("    %-12s %10.0f tok/s  %5.2fx\n", m.Display, tput, tput/base)
			}
		}
		fmt.Println()
	}
	fmt.Println("Note how the MoE model's speedups are uniformly compressed: the")
	fmt.Println("expert dispatch/combine all-to-alls cost the same under every")
	fmt.Println("scheduling method, and Hybrid DP additionally suffers from routing")
	fmt.Println("skew its FLOP estimates cannot see.")
}
