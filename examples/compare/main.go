// Compare: run all four scheduling systems (TE CP, LLaMA CP, Hybrid DP,
// Zeppelin) on the same batches and print a Fig.8-style throughput table
// with speedups over the TE CP baseline.
package main

import (
	"flag"
	"fmt"
	"log"

	"zeppelin/internal/cluster"
	"zeppelin/internal/experiments"
	"zeppelin/internal/model"
	"zeppelin/internal/workload"
)

func main() {
	modelName := flag.String("model", "7B", "model preset (3B, 7B, 13B, 30B, 8x550M)")
	clusterName := flag.String("cluster", "A", "cluster preset (A, B, C)")
	nodes := flag.Int("nodes", 2, "number of nodes (8 GPUs each)")
	seeds := flag.Int("seeds", 3, "batches averaged per cell")
	flag.Parse()

	mc, err := model.ByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := cluster.ByName(*clusterName)
	if err != nil {
		log.Fatal(err)
	}
	cell := experiments.Cell{Model: mc, Spec: spec, Nodes: *nodes, TP: 1, TokensPerGPU: 4096}

	fmt.Printf("%s on cluster %s, %d GPUs, %dk total context, mean over %d batches\n\n",
		mc.Name, spec.Name, *nodes*spec.GPUsPerNode, *nodes*spec.GPUsPerNode*4096/1024, *seeds)
	for _, d := range workload.Eval {
		fmt.Printf("%s:\n", d.Name)
		var base float64
		for _, m := range experiments.AllMethods() {
			tput, err := experiments.MeanThroughput(cell, d.Batch, m, *seeds)
			if err != nil {
				log.Fatal(err)
			}
			if m.Name() == "TE CP" {
				base = tput
			}
			norm := ""
			if base > 0 {
				norm = fmt.Sprintf("%5.2fx vs TE CP", tput/base)
			}
			fmt.Printf("  %-16s %10.0f tok/s  %s\n", m.Name(), tput, norm)
		}
		fmt.Println()
	}
}
