// Compare: run all five scheduling systems (Packing+Ulysses, TE CP,
// LLaMA CP, Hybrid DP, Zeppelin) on the same batches through the public
// API and print a Fig.8-style throughput table with speedups over the
// first method.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"zeppelin/pkg/zeppelin"
)

func main() {
	modelName := flag.String("model", "7B", "model preset (3B, 7B, 13B, 30B, 8x550M)")
	clusterName := flag.String("cluster", "A", "cluster preset (A, B, C)")
	nodes := flag.Int("nodes", 2, "number of nodes (8 GPUs each)")
	seeds := flag.Int("seeds", 3, "batches averaged per cell")
	flag.Parse()

	cluster := zeppelin.ClusterSpec{Preset: *clusterName, Nodes: *nodes}
	fmt.Printf("%s on cluster %s, %d nodes, mean over %d batches\n\n",
		*modelName, *clusterName, *nodes, *seeds)
	for _, dataset := range []string{"arxiv", "github", "prolong64k"} {
		fmt.Printf("%s:\n", dataset)
		var base float64
		for _, m := range zeppelin.AllMethods() {
			tput, err := zeppelin.MeanThroughput(context.Background(), zeppelin.ThroughputRequest{
				Model:   *modelName,
				Cluster: cluster,
				Dataset: dataset,
				Method:  m.ID,
				Seeds:   *seeds,
			})
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = tput
			}
			fmt.Printf("  %-28s %10.0f tok/s  %5.2fx\n", m.Display, tput, tput/base)
		}
		fmt.Println()
	}
}
