// Campaign quickstart: stream 40 iterations of a drifting workload
// (ArXiv gradually becoming GitHub) through Zeppelin with threshold
// replanning, consuming the events one by one as they are produced —
// the iterator-style public API the zeppelind daemon serves as NDJSON.
package main

import (
	"context"
	"fmt"
	"log"

	"zeppelin/pkg/zeppelin"
)

func main() {
	camp, err := zeppelin.StartCampaign(context.Background(), zeppelin.CampaignRequest{
		// The per-iteration cell: LLaMA 7B on two Cluster A nodes.
		Model:   "7B",
		Cluster: zeppelin.ClusterSpec{Preset: "A", Nodes: 2},
		Seed:    42,
		// The workload drifts from ArXiv's distribution to GitHub's
		// long-tailed one over the campaign horizon.
		Workload: zeppelin.WorkloadSpec{
			Arrival:   "drift",
			DriftPath: []string{"arxiv", "github"},
		},
		// Re-run the partitioner only when reusing the stale plan would
		// push the projected imbalance above 30% over the mean.
		Policy: zeppelin.PolicySpec{Name: "threshold", Threshold: 1.3},
		Iters:  40,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Consume the stream: one event per simulated iteration, available
	// as soon as the iteration finishes.
	fmt.Println("iter  tokens  seqs  replan   time(ms)    tok/s     imb")
	for {
		ev, ok := camp.Next()
		if !ok {
			break
		}
		mark := " "
		if ev.Replanned {
			mark = "R"
		}
		fmt.Printf("%4d  %6d  %4d     %s   %8.1f  %7.0f   %5.3f\n",
			ev.Iter, ev.Tokens, ev.Seqs, mark, ev.Time*1e3, ev.TokensPerSec, ev.Imbalance)
	}
	if err := camp.Err(); err != nil {
		log.Fatal(err)
	}

	s := camp.Report().Summary
	fmt.Printf("\n%s over %s, policy %s:\n", s.Method, s.Arrival, s.Policy)
	fmt.Printf("  campaign throughput  %10.0f tokens/s\n", s.TokensPerSec)
	fmt.Printf("  replans              %10d of %d iterations\n", s.Replans, s.Iters)
	fmt.Printf("  iteration time       p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
		s.P50IterTime, s.P95IterTime, s.P99IterTime)
	fmt.Printf("  mean utilization     %10.1f%%\n", 100*s.MeanUtilization)
}
