// Campaign quickstart: stream 40 iterations of a drifting workload
// (ArXiv gradually becoming GitHub) through Zeppelin with threshold
// replanning, then print the online metrics and the iteration timeline —
// the minimal use of the internal/campaign streaming layer.
package main

import (
	"fmt"
	"log"
	"os"

	"zeppelin/internal/campaign"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/trace"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

func main() {
	const iters = 40
	rep, err := campaign.Run(campaign.Config{
		// The per-iteration cell: LLaMA 7B on two Cluster A nodes.
		Trainer: trainer.Config{
			Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 2, Seed: 42,
		},
		Method: zeppelin.Full(),
		Iters:  iters,
		// The workload drifts from ArXiv's distribution to GitHub's
		// long-tailed one over the campaign horizon.
		Arrival: campaign.Drift{
			Path:  []workload.Dataset{workload.ArXiv, workload.GitHub},
			Iters: iters,
		},
		// Re-run the partitioner only when reusing the stale plan would
		// push the projected imbalance above 30% over the mean.
		Policy: campaign.Threshold{Ratio: 1.3},
	})
	if err != nil {
		log.Fatal(err)
	}

	s := rep.Summary
	fmt.Printf("campaign: %s over %s, policy %s\n", s.Method, s.Arrival, s.Policy)
	fmt.Printf("  throughput      %10.0f tokens/s over %d iterations\n", s.TokensPerSec, s.Iters)
	fmt.Printf("  iteration time  p50 %.3f s, p95 %.3f s, p99 %.3f s\n", s.P50IterTime, s.P95IterTime, s.P99IterTime)
	fmt.Printf("  replans         %d (mean imbalance %.3f, mean utilization %.3f)\n\n",
		s.Replans, s.MeanImbalance, s.MeanUtilization)
	trace.CampaignTimeline(os.Stdout, rep.TraceRows(), 60, 20)

	// The full per-iteration stream exports as a JSON artifact:
	//   _ = rep.WriteJSON(os.Stdout)
}
