// Timeline: trace one attention layer for TE CP and for Zeppelin on the
// same single 64k sequence and render both schedules side by side — the
// Fig. 12 comparison showing how routing decomposes the cross-node
// bottleneck and how the hierarchical partition removes it entirely for
// multi-sequence batches.
package main

import (
	"fmt"
	"log"
	"os"

	"zeppelin/internal/experiments"
	"zeppelin/internal/trace"
)

func main() {
	for _, sc := range experiments.Fig12Scenarios() {
		events, err := experiments.Fig12Trace(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", sc.Title)
		trace.Timeline(os.Stdout, events, []int{0, 8, 12}, 110)
		fwd := trace.Filter(events, "attn-fwd")
		fmt.Println("forward phase:")
		trace.WriteStats(os.Stdout, fwd)
	}
}
