// Timeline: render the paper's Fig. 12 attention-schedule traces — TE CP
// and Zeppelin on the same batches, showing how routing decomposes the
// cross-node bottleneck and how the hierarchical partition removes it
// entirely for multi-sequence batches — through the public experiment
// surface (the same artifact GET /v1/experiments/fig12 serves as JSON).
package main

import (
	"context"
	"log"
	"os"

	"zeppelin/pkg/zeppelin"
)

func main() {
	if err := zeppelin.RenderExperiment(context.Background(), os.Stdout, "fig12", zeppelin.Options{}); err != nil {
		log.Fatal(err)
	}
}
