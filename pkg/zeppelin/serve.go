package zeppelin

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"zeppelin/internal/campaign"
	"zeppelin/internal/workload/serve"
)

// ServeSpec is the wire form of a serving scenario: a ServeGen-style
// multi-client workload with SLO classes, batch formation, and a routing
// objective. The zero value of every field selects the engine default
// (two Poisson clients at 8 req/s over 60 s, interactive+batch classes,
// StackExchange lengths, priority formation, balance routing).
type ServeSpec struct {
	// Clients is the number of concurrent request clients; 0 selects 2.
	Clients int `json:"clients,omitempty"`
	// Arrival names the inter-arrival process: "poisson" (default),
	// "gamma", or "weibull".
	Arrival string `json:"arrival,omitempty"`
	// CV is the gamma process's coefficient of variation (0 selects 1;
	// CV > 1 is bursty); Shape the weibull shape (0 selects 1).
	CV    float64 `json:"cv,omitempty"`
	Shape float64 `json:"shape,omitempty"`
	// Windows schedule the aggregate request rate over stream time;
	// empty selects one 8 req/s window over the horizon.
	Windows []ServeWindow `json:"windows,omitempty"`
	// Classes are the SLO classes; empty selects interactive (p99 2s,
	// priority 2) and batch (p99 8s, priority 1). Clients round-robin
	// over classes.
	Classes []SLOClass `json:"classes,omitempty"`
	// Dataset names the request-length distribution; empty selects
	// "stackexchange".
	Dataset string `json:"dataset,omitempty"`
	// Sessions is the session count per client (0 selects 8); Prefix the
	// shared-prefix fraction of each request (0 selects 0.5, negative
	// selects none).
	Sessions int     `json:"sessions,omitempty"`
	Prefix   float64 `json:"prefix,omitempty"`
	// Formation orders the queue into batches: "fcfs", "priority"
	// (default), or "sjf".
	Formation string `json:"formation,omitempty"`
	// Route is the placement objective: "balance" (default,
	// least-loaded) or "affinity" (prefer a session's KV home rank).
	Route string `json:"route,omitempty"`
	// HorizonSec spans bare-rate windows (0 selects 60).
	HorizonSec float64 `json:"horizon_sec,omitempty"`
	// Trace, when non-empty, replaces the synthetic timeline with a
	// recorded one (trace-replay v2); TraceName labels it in reports.
	Trace     []ServeTraceEvent `json:"trace,omitempty"`
	TraceName string            `json:"trace_name,omitempty"`
}

// ServeWindow schedules an aggregate arrival rate (requests/second) over
// [FromSec, ToSec) of stream time.
type ServeWindow struct {
	FromSec float64 `json:"from_sec,omitempty"`
	ToSec   float64 `json:"to_sec"`
	Rate    float64 `json:"rate"`
}

// SLOClass is a named service class with a latency deadline: requests
// completing after P99Sec count as violations, and Priority orders
// classes for priority batch formation (higher first).
type SLOClass struct {
	Name     string  `json:"name"`
	P99Sec   float64 `json:"p99_sec"`
	Priority int     `json:"priority,omitempty"`
}

// ServeTraceEvent is one recorded request of a trace-replay v2 timeline.
// Field order matches the NDJSON trace files the CLI reads and writes.
type ServeTraceEvent struct {
	// T is the arrival time in seconds since stream start.
	T      float64 `json:"t"`
	Client int     `json:"client,omitempty"`
	Class  string  `json:"class"`
	Tokens int     `json:"tokens"`
	// Session groups requests sharing a KV prefix; Prefix is the shared
	// token count (< Tokens).
	Session int `json:"session,omitempty"`
	Prefix  int `json:"prefix,omitempty"`
}

// ClassMetrics is the wire form of one SLO class's campaign outcome.
type ClassMetrics struct {
	Class    string  `json:"class"`
	Priority int     `json:"priority"`
	Deadline float64 `json:"deadline"`
	// Requests counts completions; Violations those past the deadline.
	Requests   int `json:"requests"`
	Violations int `json:"violations"`
	Tokens     int `json:"tokens"`
	// Latency percentiles in seconds, arrival to completion.
	P50Latency float64 `json:"p50_latency"`
	P99Latency float64 `json:"p99_latency"`
	MaxLatency float64 `json:"max_latency"`
	// Goodput is deadline-meeting tokens per second of stream time.
	Goodput       float64 `json:"goodput"`
	ViolationRate float64 `json:"violation_rate"`
}

// classMetricsOf converts the internal per-class metrics to wire form.
func classMetricsOf(cm campaign.ClassMetrics) ClassMetrics {
	return ClassMetrics{
		Class:         cm.Class,
		Priority:      cm.Priority,
		Deadline:      cm.Deadline,
		Requests:      cm.Requests,
		Violations:    cm.Violations,
		Tokens:        cm.Tokens,
		P50Latency:    cm.P50Latency,
		P99Latency:    cm.P99Latency,
		MaxLatency:    cm.MaxLatency,
		Goodput:       cm.Goodput,
		ViolationRate: cm.ViolationRate,
	}
}

// ParseServeSpec resolves the CLI's -serve grammar into a wire spec —
// the serving counterpart of ParseAutoscaleSpec. The grammar is
// comma-separated key=value entries; see the serve package:
//
//	clients=3,arrival=gamma:cv=2.0,rate=50@0-60s;120@60-300s,slo=interactive:p99=200ms
//
// An empty string selects every default.
func ParseServeSpec(s string) (*ServeSpec, error) {
	spec, err := serve.Parse(s)
	if err != nil {
		return nil, err
	}
	return serveSpecOf(spec), nil
}

// serveSpecOf converts an internal spec to its fully explicit wire form.
func serveSpecOf(spec serve.Spec) *ServeSpec {
	out := &ServeSpec{
		Clients:    spec.Clients,
		Arrival:    spec.Process,
		CV:         spec.CV,
		Shape:      spec.Shape,
		Dataset:    spec.Dataset,
		Sessions:   spec.Sessions,
		Prefix:     spec.Prefix,
		Formation:  spec.Formation,
		Route:      spec.Route,
		HorizonSec: spec.Horizon.Seconds(),
	}
	if out.Prefix == 0 {
		out.Prefix = -1 // wire zero means "default"; explicit none is negative
	}
	for _, w := range spec.Windows {
		out.Windows = append(out.Windows, ServeWindow{
			FromSec: w.From.Seconds(), ToSec: w.To.Seconds(), Rate: w.Rate,
		})
	}
	for _, c := range spec.Classes {
		out.Classes = append(out.Classes, SLOClass{
			Name: c.Name, P99Sec: c.Deadline.Seconds(), Priority: c.Priority,
		})
	}
	return out
}

// resolve maps the wire spec onto the internal serve configuration.
func (s *ServeSpec) resolve() (*campaign.ServeConfig, error) {
	if s == nil {
		return nil, nil
	}
	spec := serve.DefaultSpec()
	if s.Clients != 0 {
		spec.Clients = s.Clients
	}
	if s.Arrival != "" {
		spec.Process = s.Arrival
	}
	if s.CV != 0 {
		spec.CV = s.CV
	}
	if s.Shape != 0 {
		spec.Shape = s.Shape
	}
	if s.Dataset != "" {
		spec.Dataset = s.Dataset
	}
	if s.Sessions != 0 {
		spec.Sessions = s.Sessions
	}
	switch {
	case s.Prefix < 0:
		spec.Prefix = 0
	case s.Prefix > 0:
		spec.Prefix = s.Prefix
	}
	if s.Formation != "" {
		spec.Formation = s.Formation
	}
	if s.Route != "" {
		spec.Route = s.Route
	}
	if s.HorizonSec != 0 {
		spec.Horizon = secDur(s.HorizonSec)
	}
	if len(s.Windows) > 0 {
		spec.Windows = nil
		for _, w := range s.Windows {
			spec.Windows = append(spec.Windows, serve.RateWindow{
				From: secDur(w.FromSec), To: secDur(w.ToSec), Rate: w.Rate,
			})
		}
	}
	if len(s.Classes) > 0 {
		spec.Classes = nil
		for _, c := range s.Classes {
			spec.Classes = append(spec.Classes, serve.SLOClass{
				Name: c.Name, Deadline: secDur(c.P99Sec), Priority: c.Priority,
			})
		}
	}
	sc := &campaign.ServeConfig{Spec: spec}
	if len(s.Trace) > 0 {
		name := s.TraceName
		if name == "" {
			name = "wire"
		}
		sc.Trace = &serve.Trace{Source: name, Events: traceEventsTo(s.Trace)}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func secDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

func traceEventsTo(events []ServeTraceEvent) []serve.Request {
	out := make([]serve.Request, len(events))
	for i, e := range events {
		out[i] = serve.Request{
			Client: e.Client, Class: e.Class, Arrive: e.T,
			Tokens: e.Tokens, Session: e.Session, Prefix: e.Prefix,
		}
	}
	return out
}

func traceEventsOf(reqs []serve.Request) []ServeTraceEvent {
	out := make([]ServeTraceEvent, len(reqs))
	for i, r := range reqs {
		out[i] = ServeTraceEvent{
			T: r.Arrive, Client: r.Client, Class: r.Class,
			Tokens: r.Tokens, Session: r.Session, Prefix: r.Prefix,
		}
	}
	return out
}

// GenerateServeTimeline expands a serve spec into its deterministic
// request timeline at a seed (0 selects DefaultSeed) — the "record" half
// of trace-replay v2. Writing the result with WriteServeTrace and
// replaying it through ServeSpec.Trace reproduces the generative
// campaign bit for bit.
func GenerateServeTimeline(spec *ServeSpec, seed int64) ([]ServeTraceEvent, error) {
	if spec == nil {
		spec = &ServeSpec{}
	}
	sc, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = DefaultSeed
	}
	reqs, err := sc.Spec.Timeline(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return traceEventsOf(reqs), nil
}

// WriteServeTrace serializes a timeline as NDJSON, one request per line —
// the trace-replay v2 file format.
func WriteServeTrace(w io.Writer, events []ServeTraceEvent) error {
	return serve.WriteTrace(w, traceEventsTo(events))
}

// ReadServeTrace parses an NDJSON request trace written by
// WriteServeTrace (or by hand; see ServeTraceEvent for the columns).
func ReadServeTrace(r io.Reader) ([]ServeTraceEvent, error) {
	reqs, err := serve.ReadTrace(r)
	if err != nil {
		return nil, err
	}
	return traceEventsOf(reqs), nil
}

// IsValidationError reports whether an error from a campaign, replay, or
// serve API call was caused by bad input rather than an internal
// failure — the distinction zeppelind uses to answer 400 vs 500.
func IsValidationError(err error) bool { return campaign.IsValidation(err) }

// ServeRouteResult is one routing objective's seed-averaged outcome in a
// serve comparison.
type ServeRouteResult struct {
	Route string `json:"route"`
	// Row carries the standard campaign aggregates (throughput,
	// iteration-time percentiles); Classes the per-SLO-class serving
	// metrics, highest priority first.
	Row     campaign.RowSummary `json:"row"`
	Classes []ClassMetrics      `json:"classes"`
}

// ServeComparison is the artifact of one serve-routing comparison: the
// same serving scenario streamed under each routing objective across
// seeds.
type ServeComparison struct {
	Iters     int                `json:"iters"`
	Generator string             `json:"generator"`
	Formation string             `json:"formation"`
	Seeds     int                `json:"seeds"`
	Routes    []ServeRouteResult `json:"routes"`
}

// CompareServeRoutes runs the request's serving scenario once per
// routing objective (balance, affinity) across `seeds` campaigns each,
// fanned over `workers`. The request must carry a Serve spec; its Route
// and Seed fields are overridden per cell (seeds follow SeedValue, like
// every grid). Results are bit-identical at every worker count.
func CompareServeRoutes(ctx context.Context, req CampaignRequest, seeds, workers int) (*ServeComparison, error) {
	if req.Serve == nil {
		return nil, fmt.Errorf("zeppelin: serve comparison needs a serve spec")
	}
	if seeds < 1 {
		return nil, fmt.Errorf("zeppelin: seeds must be >= 1, got %d", seeds)
	}
	routes := serve.Routes
	var cfgs []campaign.Config
	for _, route := range routes {
		for s := 0; s < seeds; s++ {
			r := req
			spec := *req.Serve
			spec.Route = route
			r.Serve = &spec
			r.Seed = SeedValue(s)
			cfg, err := r.config()
			if err != nil {
				return nil, err
			}
			cfgs = append(cfgs, cfg)
		}
	}
	reports, err := campaign.RunGrid(ctx, cfgs, workers)
	if err != nil {
		return nil, err
	}
	cmp := &ServeComparison{
		Iters:     req.Iters,
		Generator: reports[0].Summary.Arrival,
		Formation: cfgs[0].Serve.Spec.Formation,
		Seeds:     seeds,
	}
	for i, route := range routes {
		cell := reports[i*seeds : (i+1)*seeds]
		res := ServeRouteResult{Route: route, Row: campaign.Summarize(cell)}
		for _, cm := range campaign.SummarizeClasses(cell) {
			res.Classes = append(res.Classes, classMetricsOf(cm))
		}
		cmp.Routes = append(cmp.Routes, res)
	}
	return cmp, nil
}

// WriteJSON emits the comparison as an indented JSON artifact.
func (c *ServeComparison) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteText renders the per-route serving tables.
func (c *ServeComparison) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "serving comparison: %s, formation %s, horizon %d ticks, %d seed(s)\n",
		c.Generator, c.Formation, c.Iters, c.Seeds)
	for _, r := range c.Routes {
		fmt.Fprintf(w, "\nroute %s: %.0f tok/s, p99 tick %.3fs\n", r.Route,
			r.Row.TokensPerSec, r.Row.P99IterTime)
		writeClassTable(w, r.Classes)
	}
	return nil
}

// writeClassTable renders wire class metrics through the shared
// internal rendering.
func writeClassTable(w io.Writer, classes []ClassMetrics) {
	internal := make([]campaign.ClassMetrics, len(classes))
	for i, c := range classes {
		internal[i] = campaign.ClassMetrics{
			Class: c.Class, Priority: c.Priority, Deadline: c.Deadline,
			Requests: c.Requests, Violations: c.Violations, Tokens: c.Tokens,
			P50Latency: c.P50Latency, P99Latency: c.P99Latency, MaxLatency: c.MaxLatency,
			Goodput: c.Goodput, ViolationRate: c.ViolationRate,
		}
	}
	campaign.WriteClassTable(w, internal)
}
