package zeppelin

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"zeppelin/internal/benchfmt"
	"zeppelin/internal/promtext"
)

// LoadConfig shapes one zeppelin-loadgen run: paced POST /v1/plan
// traffic plus concurrent NDJSON campaign streams against one or more
// zeppelind replicas.
type LoadConfig struct {
	// Addrs are the zeppelind base URLs (e.g. "http://10.0.0.1:8080");
	// requests and campaign streams round-robin across them.
	Addrs []string
	// Duration bounds the plan-traffic phase.
	Duration time.Duration
	// PlanRPS is the offered POST /v1/plan rate summed across replicas;
	// 0 sends no plan traffic.
	PlanRPS float64
	// PlanConcurrency bounds in-flight plan requests; when the pool is
	// saturated at a tick the request is shed client-side and counted in
	// PlanShed rather than queued (queueing would hide server latency).
	// Defaults to 4×GOMAXPROCS.
	PlanConcurrency int
	// Plan is the request every plan POST carries. The zero value is
	// filled with the 7B/arxiv defaults at validation time, so identical
	// requests exercise the shared plan cache; responses are checked for
	// byte-identity in UniquePlanBodies.
	Plan PlanRequest
	// Campaigns is how many concurrent campaign sessions to stream; each
	// runs CampaignIters iterations with its stream index as the seed.
	Campaigns int
	// CampaignIters is the horizon per campaign stream (default 10).
	CampaignIters int
	// Client overrides the HTTP client (tests inject one; nil uses a
	// dedicated client with sane timeouts).
	Client *http.Client
}

// LatencySummary is a latency distribution in milliseconds.
type LatencySummary struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// P999Ms is the p99.9 tail, surfaced in text and benchfmt output only
	// when the target exposes /metrics (observability-aware runs).
	P999Ms float64 `json:"p999_ms,omitempty"`
	MaxMs  float64 `json:"max_ms"`
}

// LoadReport is the artifact of one load run: goodput, latency
// distribution, and the overload/error accounting for both traffic
// kinds.
type LoadReport struct {
	Addrs       []string `json:"addrs"`
	DurationSec float64  `json:"duration_sec"`

	// Plan traffic: offered vs admitted vs shed, with only 2xx responses
	// counting toward goodput.
	PlanRequests    int            `json:"plan_requests"`
	PlanOK          int            `json:"plan_ok"`
	PlanRateLimited int            `json:"plan_rate_limited"`
	PlanErrors      int            `json:"plan_errors"`
	PlanShed        int            `json:"plan_shed"`
	PlansPerSec     float64        `json:"plans_per_sec"`
	PlanLatency     LatencySummary `json:"plan_latency"`
	// UniquePlanBodies counts distinct response byte strings among the
	// admitted plans. Every request in a run is identical, so any value
	// above 1 is a determinism violation — cache state or replica choice
	// leaked into a response.
	UniquePlanBodies int `json:"unique_plan_bodies"`

	// Campaign traffic.
	CampaignStreams     int `json:"campaign_streams"`
	CampaignEvents      int `json:"campaign_events"`
	CampaignRateLimited int `json:"campaign_rate_limited"`
	CampaignErrors      int `json:"campaign_errors"`

	// MetricsScraped reports that every replica exposed a parseable
	// GET /metrics before and after the run; the fields below are only
	// populated then. Targets without the endpoint degrade silently —
	// the rest of the report is unchanged.
	MetricsScraped bool `json:"metrics_scraped,omitempty"`
	// DecisionsPerSec is the fleet-wide campaign decision rate over the
	// run (delta of zeppelind_decisions_total across the scrapes).
	DecisionsPerSec float64 `json:"decisions_per_sec,omitempty"`
	// AdmissionSaturation is each class's post-run token-bucket
	// saturation (1 = exhausted, 0 = idle) from the final scrape.
	AdmissionSaturation map[string]float64 `json:"admission_saturation,omitempty"`
}

func (c *LoadConfig) validate() error {
	if len(c.Addrs) == 0 {
		return fmt.Errorf("zeppelin: loadgen needs at least one replica address")
	}
	if c.PlanRPS < 0 {
		return fmt.Errorf("zeppelin: plan RPS must be >= 0, got %v", c.PlanRPS)
	}
	if c.Campaigns < 0 {
		return fmt.Errorf("zeppelin: campaigns must be >= 0, got %d", c.Campaigns)
	}
	if c.PlanRPS == 0 && c.Campaigns == 0 {
		return fmt.Errorf("zeppelin: loadgen needs plan traffic, campaign streams, or both")
	}
	if c.PlanRPS > 0 && c.Duration <= 0 {
		return fmt.Errorf("zeppelin: plan traffic needs a positive duration, got %v", c.Duration)
	}
	if c.PlanConcurrency <= 0 {
		c.PlanConcurrency = 4 * runtime.GOMAXPROCS(0)
	}
	if c.CampaignIters <= 0 {
		c.CampaignIters = 10
	}
	if c.Plan == (PlanRequest{}) {
		c.Plan = PlanRequest{Model: "7B", Dataset: "arxiv", Seed: 42}
	}
	return nil
}

// loadCollector accumulates results from the request goroutines.
type loadCollector struct {
	mu        sync.Mutex
	report    LoadReport
	latencies []float64 // ms
	bodies    map[uint64]struct{}
}

func (c *loadCollector) plan(status int, body []byte, latency time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report.PlanRequests++
	switch {
	case err != nil:
		c.report.PlanErrors++
	case status == http.StatusOK:
		c.report.PlanOK++
		c.latencies = append(c.latencies, float64(latency)/float64(time.Millisecond))
		h := fnv.New64a()
		h.Write(body) //nolint:errcheck // fnv never errors
		c.bodies[h.Sum64()] = struct{}{}
	case status == http.StatusTooManyRequests:
		c.report.PlanRateLimited++
	default:
		c.report.PlanErrors++
	}
}

// percentile is nearest-rank over a sorted slice: the smallest element
// with at least q of the sample at or below it, rank ⌈q·N⌉ clamped to
// [1, N]. Truncating q·(N-1) instead (the previous behavior) biased
// every tail statistic low — with 100 samples it reported p99.9 as the
// 99th element, never the max a 100-sample p99.9 must clamp to.
func percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// RunLoad drives the configured load against the replicas and returns
// the aggregated report. Plan traffic is paced at PlanRPS for Duration;
// campaign streams run their full horizon concurrently. Cancelling ctx
// stops the run early and returns ctx.Err().
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	col := &loadCollector{bodies: make(map[uint64]struct{})}
	col.report.Addrs = append([]string(nil), cfg.Addrs...)

	planBody, err := json.Marshal(cfg.Plan)
	if err != nil {
		return nil, err
	}

	// Metrics-aware runs: snapshot each replica's /metrics before the
	// traffic starts. Replicas without the endpoint (older daemons, test
	// stubs) degrade silently — the report simply omits the scrape-backed
	// fields and the rest of the output is unchanged.
	before, scraped := scrapeFleetMetrics(ctx, client, cfg.Addrs)

	start := time.Now()
	var wg sync.WaitGroup

	// Campaign streams: each creates a session on its round-robin
	// replica and drains the full NDJSON horizon.
	for i := 0; i < cfg.Campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addr := cfg.Addrs[i%len(cfg.Addrs)]
			events, status, err := streamCampaign(ctx, client, addr, CampaignRequest{
				Iters: cfg.CampaignIters,
				Seed:  int64(i),
			})
			col.mu.Lock()
			defer col.mu.Unlock()
			col.report.CampaignStreams++
			col.report.CampaignEvents += events
			switch {
			case err == nil:
			case status == http.StatusTooManyRequests:
				col.report.CampaignRateLimited++
			default:
				col.report.CampaignErrors++
			}
		}(i)
	}

	// Plan traffic: a ticker paces the offered rate; a semaphore bounds
	// in-flight requests so a slow replica sheds load client-side
	// instead of queueing unbounded goroutines.
	if cfg.PlanRPS > 0 {
		sem := make(chan struct{}, cfg.PlanConcurrency)
		interval := time.Duration(float64(time.Second) / cfg.PlanRPS)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		ticker := time.NewTicker(interval)
		deadline := time.After(cfg.Duration)
		n := 0
	pace:
		for {
			select {
			case <-ctx.Done():
				break pace
			case <-deadline:
				break pace
			case <-ticker.C:
				select {
				case sem <- struct{}{}:
				default:
					col.mu.Lock()
					col.report.PlanShed++
					col.mu.Unlock()
					continue
				}
				addr := cfg.Addrs[n%len(cfg.Addrs)]
				n++
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					t0 := time.Now()
					status, body, err := postOnce(ctx, client, addr+"/v1/plan", planBody)
					col.plan(status, body, time.Since(t0), err)
				}()
			}
		}
		ticker.Stop()
	}

	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var after promtext.Metrics
	if scraped {
		after, scraped = scrapeFleetMetrics(ctx, client, cfg.Addrs)
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	rep := col.report
	rep.DurationSec = time.Since(start).Seconds()
	rep.UniquePlanBodies = len(col.bodies)
	if rep.DurationSec > 0 {
		rep.PlansPerSec = float64(rep.PlanOK) / rep.DurationSec
	}
	sort.Float64s(col.latencies)
	rep.PlanLatency = LatencySummary{
		Count:  len(col.latencies),
		P50Ms:  percentile(col.latencies, 0.50),
		P95Ms:  percentile(col.latencies, 0.95),
		P99Ms:  percentile(col.latencies, 0.99),
		P999Ms: percentile(col.latencies, 0.999),
	}
	if n := len(col.latencies); n > 0 {
		rep.PlanLatency.MaxMs = col.latencies[n-1]
	}
	if scraped {
		rep.MetricsScraped = true
		if delta := after.Sum("zeppelind_decisions_total") - before.Sum("zeppelind_decisions_total"); delta > 0 && rep.DurationSec > 0 {
			rep.DecisionsPerSec = delta / rep.DurationSec
		}
		if sat := after.ByLabel("zeppelind_admission_bucket_saturation", "class"); len(sat) > 0 {
			rep.AdmissionSaturation = sat
		}
	}
	return &rep, nil
}

// scrapeFleetMetrics GETs /metrics from every replica and concatenates
// the parsed samples. ok is false — and the samples nil — as soon as any
// replica lacks the endpoint or serves something unparseable; loadgen
// treats the whole fleet as metrics-blind rather than reporting rates
// computed over a partial scrape.
func scrapeFleetMetrics(ctx context.Context, client *http.Client, addrs []string) (promtext.Metrics, bool) {
	var all promtext.Metrics
	for _, addr := range addrs {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
		if err != nil {
			return nil, false
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, false
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, false
		}
		ms, err := promtext.Parse(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, false
		}
		all = append(all, ms...)
	}
	return all, true
}

// postOnce fires one JSON POST and returns status and body.
func postOnce(ctx context.Context, client *http.Client, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, raw, nil
}

// streamCampaign creates one session and drains its event stream,
// returning the number of events received. A non-2xx at either step
// returns that status with a descriptive error.
func streamCampaign(ctx context.Context, client *http.Client, addr string, req CampaignRequest) (events, status int, err error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return 0, 0, err
	}
	status, body, err := postOnce(ctx, client, addr+"/v1/campaigns", raw)
	if err != nil {
		return 0, status, err
	}
	if status != http.StatusCreated {
		return 0, status, fmt.Errorf("create campaign: status %d: %s", status, body)
	}
	var created struct {
		EventsURL string `json:"events_url"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		return 0, status, err
	}
	get, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+created.EventsURL, nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Do(get)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return 0, resp.StatusCode, fmt.Errorf("events stream: status %d: %s", resp.StatusCode, msg)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			events++
		}
	}
	if err := sc.Err(); err != nil {
		return events, resp.StatusCode, err
	}
	if events != req.Iters {
		return events, resp.StatusCode, fmt.Errorf("stream delivered %d of %d events", events, req.Iters)
	}
	return events, resp.StatusCode, nil
}

// Benchfmt renders the report in the shared benchmark-artifact schema
// so cmd/benchgate can gate the headline number in CI. The
// BenchmarkLoadgenPlan series encodes goodput as ns/plan (1e9 divided
// by plans/sec): a throughput drop shows up as an ns/op regression,
// exactly what benchgate's threshold compares.
func (r *LoadReport) Benchfmt() *benchfmt.File {
	f := &benchfmt.File{Source: "zeppelin-loadgen", Goos: runtime.GOOS, Goarch: runtime.GOARCH}
	if r.PlansPerSec > 0 {
		metrics := map[string]float64{
			"plans-per-sec": r.PlansPerSec,
			"p50-ms":        r.PlanLatency.P50Ms,
			"p95-ms":        r.PlanLatency.P95Ms,
			"p99-ms":        r.PlanLatency.P99Ms,
			"rate-limited":  float64(r.PlanRateLimited),
			"errors":        float64(r.PlanErrors),
			"unique-bodies": float64(r.UniquePlanBodies),
		}
		// Scrape-backed keys appear only on metrics-aware runs so the
		// artifact schema stays stable against metrics-blind targets.
		if r.MetricsScraped {
			metrics["p999-ms"] = r.PlanLatency.P999Ms
			metrics["decisions-per-sec"] = r.DecisionsPerSec
		}
		f.Results = append(f.Results, benchfmt.Result{
			Name:    "BenchmarkLoadgenPlan",
			Samples: 1,
			Iters:   r.PlanOK,
			NsPerOp: 1e9 / r.PlansPerSec,
			Metrics: metrics,
		})
	}
	if r.CampaignStreams > 0 && r.DurationSec > 0 {
		eps := float64(r.CampaignEvents) / r.DurationSec
		res := benchfmt.Result{
			Name:    "BenchmarkLoadgenCampaignEvents",
			Samples: 1,
			Iters:   r.CampaignEvents,
			Metrics: map[string]float64{
				"events-per-sec": eps,
				"streams":        float64(r.CampaignStreams),
				"rate-limited":   float64(r.CampaignRateLimited),
				"errors":         float64(r.CampaignErrors),
			},
		}
		if eps > 0 {
			res.NsPerOp = 1e9 / eps
		}
		f.Results = append(f.Results, res)
	}
	sort.Slice(f.Results, func(i, j int) bool { return f.Results[i].Name < f.Results[j].Name })
	return f
}

// WriteJSON emits the report itself (not the benchfmt artifact).
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human summary.
func (r *LoadReport) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "loadgen: %d replica(s), %.1fs\n", len(r.Addrs), r.DurationSec)
	if r.PlanRequests > 0 || r.PlanShed > 0 {
		fmt.Fprintf(w, "plan:     %d sent, %d ok (%.1f plans/sec), %d rate-limited, %d errors, %d shed\n",
			r.PlanRequests, r.PlanOK, r.PlansPerSec, r.PlanRateLimited, r.PlanErrors, r.PlanShed)
		if r.MetricsScraped {
			fmt.Fprintf(w, "latency:  p50 %.2fms  p95 %.2fms  p99 %.2fms  p99.9 %.2fms  max %.2fms\n",
				r.PlanLatency.P50Ms, r.PlanLatency.P95Ms, r.PlanLatency.P99Ms, r.PlanLatency.P999Ms, r.PlanLatency.MaxMs)
		} else {
			fmt.Fprintf(w, "latency:  p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
				r.PlanLatency.P50Ms, r.PlanLatency.P95Ms, r.PlanLatency.P99Ms, r.PlanLatency.MaxMs)
		}
		fmt.Fprintf(w, "identity: %d unique plan bodies across %d admitted plans\n",
			r.UniquePlanBodies, r.PlanOK)
	}
	if r.CampaignStreams > 0 {
		fmt.Fprintf(w, "campaign: %d streams, %d events, %d rate-limited, %d errors\n",
			r.CampaignStreams, r.CampaignEvents, r.CampaignRateLimited, r.CampaignErrors)
	}
	if r.MetricsScraped {
		fmt.Fprintf(w, "metrics:  %.1f decisions/sec", r.DecisionsPerSec)
		if len(r.AdmissionSaturation) > 0 {
			classes := make([]string, 0, len(r.AdmissionSaturation))
			for c := range r.AdmissionSaturation {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			fmt.Fprintf(w, ", bucket saturation")
			for _, c := range classes {
				fmt.Fprintf(w, " %s=%.2f", c, r.AdmissionSaturation[c])
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
