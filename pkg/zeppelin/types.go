package zeppelin

import (
	"fmt"
	"strings"

	"zeppelin/internal/baselines"
	"zeppelin/internal/campaign"
	"zeppelin/internal/cluster"
	"zeppelin/internal/decision"
	"zeppelin/internal/faults"
	"zeppelin/internal/model"
	"zeppelin/internal/partition"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	zep "zeppelin/internal/zeppelin"
)

// DefaultSeed is the trainer seed requests fall back to when Seed is
// zero — the same base seed every figure's seed-0 cell has always used,
// so API plans and campaigns reproduce the paper grids byte for byte.
const DefaultSeed int64 = 1000

// ClusterSpec selects the simulated cluster cell of a request. The zero
// value means two Cluster A nodes (16×A800), TP 1, 4k tokens per GPU —
// the first Fig. 8 panel and the campaign cell of fig13.
type ClusterSpec struct {
	// Preset names the node hardware: "A" (8×A800, 4 NICs), "B"
	// (8×H800, 8 NICs), or "C" (8×H200, 8 NICs). Empty selects "A".
	Preset string `json:"preset,omitempty"`
	// Nodes is the node count; 0 selects 2.
	Nodes int `json:"nodes,omitempty"`
	// TP is the tensor-parallel degree; 0 selects 1.
	TP int `json:"tp,omitempty"`
	// TokensPerGPU is the per-GPU context budget; 0 selects 4096.
	TokensPerGPU int `json:"tokens_per_gpu,omitempty"`
	// Capacity is the admission capacity factor: the per-rank token
	// ceiling is Capacity × TokensPerGPU × TP. 0 selects the default
	// (1.25); a negative value is a validation error.
	Capacity float64 `json:"capacity,omitempty"`
}

// resolve fills defaults and maps the spec onto the internal topology.
func (c ClusterSpec) resolve() (cluster.Spec, ClusterSpec, error) {
	out := c
	if out.Preset == "" {
		out.Preset = "A"
	}
	spec, err := cluster.ByName(out.Preset)
	if err != nil {
		return cluster.Spec{}, out, err
	}
	if out.Nodes == 0 {
		out.Nodes = 2
	}
	if out.Nodes < 1 {
		return cluster.Spec{}, out, fmt.Errorf("zeppelin: nodes must be >= 1, got %d", out.Nodes)
	}
	if out.TP == 0 {
		out.TP = 1
	}
	if out.TokensPerGPU == 0 {
		out.TokensPerGPU = 4096
	}
	if out.Capacity < 0 {
		return cluster.Spec{}, out, fmt.Errorf("zeppelin: capacity factor must be >= 0, got %g", out.Capacity)
	}
	return spec, out, nil
}

// WorkloadSpec selects what arrives each iteration. The zero value is a
// steady full-budget ArXiv stream.
type WorkloadSpec struct {
	// Dataset names the length distribution for the single-distribution
	// arrivals: "arxiv" (default), "github", "fineweb", "fineweb-edu",
	// "openwebmath", "stackexchange", or "prolong64k".
	Dataset string `json:"dataset,omitempty"`
	// Arrival names the batch arrival process: "steady" (default),
	// "poisson", "bursty", "drift", or "replay".
	Arrival string `json:"arrival,omitempty"`
	// DriftPath lists the dataset waypoints of a "drift" arrival;
	// empty selects arxiv → github → prolong64k.
	DriftPath []string `json:"drift_path,omitempty"`
}

// arrival resolves the spec for a campaign horizon and token budget.
func (w WorkloadSpec) arrival(iters, baseTokens int) (campaign.Arrival, error) {
	name := w.Arrival
	if name == "" {
		name = "steady"
	}
	var base workload.Dataset
	var path []workload.Dataset
	if name == "drift" {
		for _, wp := range w.DriftPath {
			d, err := workload.ByName(strings.TrimSpace(wp))
			if err != nil {
				return nil, err
			}
			path = append(path, d)
		}
	} else {
		var err error
		if base, err = w.dataset(); err != nil {
			return nil, err
		}
	}
	return campaign.ArrivalByName(name, base, path, iters, baseTokens)
}

// dataset resolves the base dataset, defaulting to ArXiv.
func (w WorkloadSpec) dataset() (workload.Dataset, error) {
	if w.Dataset == "" {
		return workload.ArXiv, nil
	}
	return workload.ByName(w.Dataset)
}

// PolicySpec selects the replanning controller of a campaign. The zero
// value is the threshold policy at its default ratio.
type PolicySpec struct {
	// Name is one of "always", "never", "threshold" (default), or
	// "periodic".
	Name string `json:"name,omitempty"`
	// Threshold is the imbalance ratio of the threshold policy; 0
	// selects the default (1.3).
	Threshold float64 `json:"threshold,omitempty"`
	// Every is the cadence of the periodic policy; 0 selects 10.
	Every int `json:"every,omitempty"`
}

// resolve maps the spec onto the internal policy.
func (p PolicySpec) resolve() (campaign.Policy, error) {
	name := p.Name
	if name == "" {
		name = "threshold"
	}
	every := p.Every
	if every == 0 {
		every = 10
	}
	return campaign.PolicyByName(name, p.Threshold, every)
}

// MethodInfo names one scheduling method of the comparison: ID is the
// wire identifier requests use, Display the paper's label.
type MethodInfo struct {
	ID      string `json:"id"`
	Display string `json:"display"`
}

// Methods lists the paper's four compared systems in Fig. 8 order.
func Methods() []MethodInfo {
	return []MethodInfo{
		{ID: "tecp", Display: baselines.TECP{}.Name()},
		{ID: "llamacp", Display: baselines.LLaMACP{}.Name()},
		{ID: "hybriddp", Display: baselines.HybridDP{}.Name()},
		{ID: "zeppelin", Display: zep.Full().Name()},
	}
}

// AllMethods additionally includes the input-balanced packing strategy
// the paper analyzes but does not carry into the end-to-end comparison.
func AllMethods() []MethodInfo {
	return append([]MethodInfo{{ID: "packing", Display: baselines.Packing{}.Name()}}, Methods()...)
}

// methodByID resolves a wire method identifier (case-insensitive,
// separators ignored) to a trainer method. Empty selects Zeppelin.
func methodByID(id string) (trainer.Method, error) {
	norm := strings.ToLower(strings.NewReplacer(" ", "", "-", "", "_", "").Replace(id))
	switch norm {
	case "", "zeppelin":
		return zep.Full(), nil
	case "tecp":
		return baselines.TECP{}, nil
	case "llamacp":
		return baselines.LLaMACP{}, nil
	case "hybriddp":
		return baselines.HybridDP{}, nil
	case "packing":
		return baselines.Packing{}, nil
	}
	return nil, fmt.Errorf("zeppelin: unknown method %q (want zeppelin|tecp|llamacp|hybriddp|packing)", id)
}

// PlanRequest asks for one batch to be sampled, partitioned, and
// simulated. The zero value plans an ArXiv batch for Zeppelin on the
// default cell.
type PlanRequest struct {
	// Model names the transformer preset: "7B" (default), "3B", "13B",
	// "30B", or "8x550M".
	Model string `json:"model,omitempty"`
	// Cluster is the simulated cell.
	Cluster ClusterSpec `json:"cluster,omitempty"`
	// Dataset names the length distribution the batch is sampled from;
	// empty selects "arxiv".
	Dataset string `json:"dataset,omitempty"`
	// Method is the scheduling method: "zeppelin" (default), "tecp",
	// "llamacp", "hybriddp", or "packing".
	Method string `json:"method,omitempty"`
	// Seed seeds the batch sampler; 0 selects DefaultSeed.
	Seed int64 `json:"seed,omitempty"`
}

// resolve maps the request onto a trainer cell, sampler, and method.
func (r PlanRequest) resolve() (trainer.Config, workload.Dataset, trainer.Method, error) {
	name := r.Model
	if name == "" {
		name = "7B"
	}
	mc, err := model.ByName(name)
	if err != nil {
		return trainer.Config{}, workload.Dataset{}, nil, err
	}
	spec, cs, err := r.Cluster.resolve()
	if err != nil {
		return trainer.Config{}, workload.Dataset{}, nil, err
	}
	d, err := WorkloadSpec{Dataset: r.Dataset}.dataset()
	if err != nil {
		return trainer.Config{}, workload.Dataset{}, nil, err
	}
	m, err := methodByID(r.Method)
	if err != nil {
		return trainer.Config{}, workload.Dataset{}, nil, err
	}
	seed := r.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	cfg := trainer.Config{
		Model: mc, Spec: spec, Nodes: cs.Nodes, TP: cs.TP,
		TokensPerGPU: cs.TokensPerGPU, CapacityFactor: cs.Capacity, Seed: seed,
	}
	if err := cfg.Validate(); err != nil {
		return trainer.Config{}, workload.Dataset{}, nil, err
	}
	return cfg, d, m, nil
}

// Validate reports whether the request resolves to a runnable cell.
func (r PlanRequest) Validate() error {
	_, _, _, err := r.resolve()
	return err
}

// PlanResponse is the wire result of one Plan call: the placement the
// partitioner produced and the simulated iteration it leads to.
type PlanResponse struct {
	// Method is the display name of the scheduling method that planned.
	Method string `json:"method"`
	// World is the data-parallel world size the plan addresses.
	World int `json:"world"`
	// Seqs and Tokens describe the sampled batch.
	Seqs   int `json:"seqs"`
	Tokens int `json:"tokens"`
	// TokensPerRank is the planned per-rank attention token layout
	// (present when the method exposes a partition plan — the Zeppelin
	// planners do; even-split baselines have no plan skeleton).
	TokensPerRank []int `json:"tokens_per_rank,omitempty"`
	// Imbalance is the plan's max/mean per-rank token ratio (1.0 is
	// perfect balance); 0 when no plan is exposed.
	Imbalance float64 `json:"imbalance,omitempty"`
	// LocalSeqs and RingSeqs split the plan's sequences into locally
	// placed ones and ring-sharded ones.
	LocalSeqs int `json:"local_seqs,omitempty"`
	RingSeqs  int `json:"ring_seqs,omitempty"`
	// RemapTransfers and RemapInterTokens describe the Eq. 2 remapping
	// solution (Zeppelin with the remap layer only).
	RemapTransfers   int `json:"remap_transfers,omitempty"`
	RemapInterTokens int `json:"remap_inter_tokens,omitempty"`
	// PlanMode reports how an incremental planner produced the plan:
	// "full", "patched", or "cached". Empty for stateless planners.
	PlanMode string `json:"plan_mode,omitempty"`
	// SolveMode reports the partition-solve path of a planner configured
	// with WithParallelSolve: "serial" (one worker) or "parallel-N" (the
	// solve fanned across N workers). Empty when the option is unset and
	// for methods without a partition plan. Plans are bit-identical at
	// every worker count, so SolveMode never implies a placement change.
	SolveMode string `json:"solve_mode,omitempty"`
	// IterTimeSec and TokensPerSec are the simulated end-to-end
	// iteration readout for the planned batch.
	IterTimeSec  float64 `json:"iter_time_sec"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	// HostOverheadSec is the per-iteration host-side planning charge.
	HostOverheadSec float64 `json:"host_overhead_sec"`
}

// CampaignRequest asks for a multi-iteration streaming campaign.
type CampaignRequest struct {
	// Model names the transformer preset; empty selects "7B".
	Model string `json:"model,omitempty"`
	// Cluster is the simulated cell.
	Cluster ClusterSpec `json:"cluster,omitempty"`
	// Workload is the arrival process feeding the campaign.
	Workload WorkloadSpec `json:"workload,omitempty"`
	// Policy is the replanning controller.
	Policy PolicySpec `json:"policy,omitempty"`
	// Faults names a deterministic fault scenario ("straggler", "nic",
	// "failstop", "shrink", optionally parameterized as
	// "name:key=val,..."); empty or "none" runs healthy.
	Faults string `json:"faults,omitempty"`
	// Method is the scheduling method under test; empty selects
	// "zeppelin".
	Method string `json:"method,omitempty"`
	// Iters is the campaign horizon; must be >= 1.
	Iters int `json:"iters"`
	// Seed seeds the campaign's RNG stream; 0 selects DefaultSeed.
	Seed int64 `json:"seed,omitempty"`
	// ReplanCostSec is the per-replan coordination charge in seconds:
	// 0 selects the default (20 ms), a negative value is a validation
	// error (use a small positive value to approximate free replanning).
	ReplanCostSec float64 `json:"replan_cost_sec,omitempty"`
	// Incremental plans Zeppelin through the session-owned incremental
	// planner (exact mode: results are bit-identical to the stateless
	// planner, plans are cached and patched instead of re-solved).
	Incremental bool `json:"incremental,omitempty"`
	// Autoscale, when non-nil, runs the campaign under the closed-loop
	// autoscaler: world size follows observed queue depth and
	// utilization through the elastic-rescale path. Mutually exclusive
	// with Faults (both own the world size).
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	// Serve, when non-nil, switches the campaign to a serving scenario:
	// a timestamped multi-client request stream with SLO classes, batch
	// formation, and a routing objective. Mutually exclusive with
	// Workload, Policy, Faults, and Autoscale — the serve spec owns the
	// arrival process and there is no replanning controller in serve
	// mode. Iters caps the tick count; the stream ends early when the
	// timeline drains.
	Serve *ServeSpec `json:"serve,omitempty"`
}

// AutoscaleSpec is the wire form of the campaign autoscaler's gains.
// The zero value of every field selects the engine default; MaxNodes
// may never exceed the cluster's node count.
type AutoscaleSpec struct {
	// MinNodes and MaxNodes bound the world (defaults: 1 and the
	// cluster size).
	MinNodes int `json:"min_nodes,omitempty"`
	MaxNodes int `json:"max_nodes,omitempty"`
	// UpUtil grows the world when mean utilization exceeds it (or any
	// tokens were deferred); DownUtil shrinks it when utilization falls
	// below with nothing queued. Defaults 0.92 and 0.60.
	UpUtil   float64 `json:"up_util,omitempty"`
	DownUtil float64 `json:"down_util,omitempty"`
	// Step bounds nodes added or removed per transition (default 1);
	// Cooldown is the iterations to hold after a transition (default 5).
	Step     int `json:"step,omitempty"`
	Cooldown int `json:"cooldown,omitempty"`
}

// ParseAutoscaleSpec resolves the CLI's -autoscale grammar into a wire
// spec: "" or "on" selects every default, otherwise comma-separated
// key=value options with keys min, max, up-util, down-util, step, and
// cooldown — the exact strings `zeppelin tune` emits in a winner's
// ready-to-paste flag set.
func ParseAutoscaleSpec(s string) (*AutoscaleSpec, error) {
	a, err := campaign.ParseAutoscaler(s)
	if err != nil {
		return nil, err
	}
	return &AutoscaleSpec{
		MinNodes: a.MinNodes,
		MaxNodes: a.MaxNodes,
		UpUtil:   a.UpUtil,
		DownUtil: a.DownUtil,
		Step:     a.Step,
		Cooldown: a.Cooldown,
	}, nil
}

// resolve maps the spec onto the internal autoscaler.
func (a *AutoscaleSpec) resolve() *campaign.Autoscaler {
	if a == nil {
		return nil
	}
	return &campaign.Autoscaler{
		MinNodes: a.MinNodes,
		MaxNodes: a.MaxNodes,
		UpUtil:   a.UpUtil,
		DownUtil: a.DownUtil,
		Step:     a.Step,
		Cooldown: a.Cooldown,
	}
}

// config resolves the request into an internal campaign configuration.
// Each call builds a fresh method instance, so an incremental planner is
// owned by exactly one campaign.
func (r CampaignRequest) config() (campaign.Config, error) { return r.configWith(nil) }

// configWith is config with an optional shared plan cache tier: the
// campaign's planner (always session-owned) probes it for exact
// full-solve hits and publishes its own, so identical campaign specs
// running in other sessions — or identical one-shot plan requests —
// dedupe the partition work. Exact-mode reuse is bit-identical, so the
// event stream is unchanged by cache state.
func (r CampaignRequest) configWith(pc *PlanCache) (campaign.Config, error) {
	if r.Iters < 1 {
		return campaign.Config{}, fmt.Errorf("zeppelin: campaign iters must be >= 1, got %d", r.Iters)
	}
	name := r.Model
	if name == "" {
		name = "7B"
	}
	mc, err := model.ByName(name)
	if err != nil {
		return campaign.Config{}, err
	}
	spec, cs, err := r.Cluster.resolve()
	if err != nil {
		return campaign.Config{}, err
	}
	m, err := methodByID(r.Method)
	if err != nil {
		return campaign.Config{}, err
	}
	if zm, ok := m.(zep.Method); ok && (r.Incremental || pc != nil) {
		// The incremental wrapper serves two roles: the request-level
		// Incremental fast path, and (for any Zeppelin campaign when a
		// shared tier is wired) the probe/publish front of the
		// process-wide plan cache. Exact mode either way: bit-identical.
		m = zep.NewIncremental(zm, partition.IncrementalConfig{Shared: pc.sharedTier()})
	}
	seed := r.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	tcfg := trainer.Config{
		Model: mc, Spec: spec, Nodes: cs.Nodes, TP: cs.TP,
		TokensPerGPU: cs.TokensPerGPU, CapacityFactor: cs.Capacity, Seed: seed,
	}
	if err := tcfg.Validate(); err != nil {
		return campaign.Config{}, err
	}
	if r.Serve != nil {
		// Serve mode: the serve spec owns the arrival process, and the
		// serving loop has no replanning controller, fault schedule, or
		// autoscaler — reject the conflicting knobs instead of silently
		// ignoring them.
		if r.Workload.Dataset != "" || r.Workload.Arrival != "" || len(r.Workload.DriftPath) > 0 {
			return campaign.Config{}, campaign.NewValidationError(fmt.Errorf("zeppelin: serve and workload are mutually exclusive (the serve spec carries its own dataset and arrival process)"))
		}
		if r.Policy != (PolicySpec{}) {
			return campaign.Config{}, campaign.NewValidationError(fmt.Errorf("zeppelin: serve campaigns have no replanning policy"))
		}
		if faultsSpecOrNone(r.Faults) != "none" || r.Autoscale != nil {
			return campaign.Config{}, campaign.NewValidationError(fmt.Errorf("zeppelin: serve campaigns do not support fault schedules or autoscaling yet"))
		}
		sc, err := r.Serve.resolve()
		if err != nil {
			return campaign.Config{}, campaign.NewValidationError(err)
		}
		cfg := campaign.Config{
			Trainer:    tcfg,
			Method:     m,
			Iters:      r.Iters,
			ReplanCost: r.ReplanCostSec,
			Serve:      sc,
		}
		if err := cfg.Validate(); err != nil {
			return campaign.Config{}, err
		}
		return cfg, nil
	}
	arr, err := r.Workload.arrival(r.Iters, tcfg.TotalTokens())
	if err != nil {
		return campaign.Config{}, err
	}
	pol, err := r.Policy.resolve()
	if err != nil {
		return campaign.Config{}, err
	}
	espec := tcfg.EffectiveSpec()
	sched, err := faults.ByName(faultsSpecOrNone(r.Faults), r.Iters, tcfg.Nodes, espec.GPUsPerNode)
	if err != nil {
		return campaign.Config{}, err
	}
	if err := sched.Validate(tcfg.Nodes, espec.GPUsPerNode, espec.NICsPerNode); err != nil {
		return campaign.Config{}, err
	}
	cfg := campaign.Config{
		Trainer:    tcfg,
		Method:     m,
		Iters:      r.Iters,
		Arrival:    arr,
		Policy:     pol,
		ReplanCost: r.ReplanCostSec,
		Faults:     sched,
		Autoscaler: r.Autoscale.resolve(),
	}
	if err := cfg.Validate(); err != nil {
		return campaign.Config{}, err
	}
	return cfg, nil
}

// faultsSpecOrNone maps the wire convention (empty = healthy) onto the
// internal scenario parser's explicit "none".
func faultsSpecOrNone(spec string) string {
	if spec == "" {
		return "none"
	}
	return spec
}

// Validate reports whether the request resolves to a runnable campaign.
func (r CampaignRequest) Validate() error {
	_, err := r.config()
	return err
}

// CampaignEvent is the wire form of one campaign iteration record. Its
// fields and JSON names mirror the internal per-iteration metrics row
// one to one, so a drained event stream is bit-identical to an
// in-process campaign run.
type CampaignEvent struct {
	Iter   int `json:"iter"`
	Tokens int `json:"tokens"`
	Seqs   int `json:"seqs"`
	// Deferred is the token count admission control pushed past this
	// iteration because the arrival exceeded placement capacity.
	Deferred int `json:"deferred,omitempty"`
	// Replanned reports whether the partitioner ran this iteration.
	Replanned bool `json:"replanned"`
	// Flipped marks the one iteration a counterfactual replay overrode
	// the replan verdict on (never set in factual runs).
	Flipped bool `json:"flipped,omitempty"`
	// Time is the simulated wall time of the iteration in seconds.
	Time float64 `json:"time"`
	// TokensPerSec is the iteration's delivered throughput.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// Imbalance is the realized max/mean per-rank busy-time ratio.
	Imbalance float64 `json:"imbalance"`
	// Penalty is the stale-plan slowdown factor applied to the layer
	// critical path (1 on replan iterations).
	Penalty float64 `json:"penalty"`
	// Utilization is the mean per-rank busy fraction of the layer span.
	Utilization float64 `json:"utilization"`
	// Recovery is the fault-transition time charged to this iteration.
	Recovery float64 `json:"recovery,omitempty"`
	// Events are the iteration's fault/recovery markers.
	Events []string `json:"events,omitempty"`
	// World is the active data-parallel world size (fault schedules
	// only, where it can change mid-campaign).
	World int `json:"world,omitempty"`
	// Queued is the request-token backlog left pending after the tick
	// (serve campaigns only).
	Queued int `json:"queued,omitempty"`
	// AffinityHits counts requests served on their session's home rank
	// this tick; SavedTokens the prefix tokens that reuse skipped
	// (serve campaigns only).
	AffinityHits int `json:"affinity_hits,omitempty"`
	SavedTokens  int `json:"saved_tokens,omitempty"`
	// Violations counts requests completing past their class deadline
	// this tick (serve campaigns only).
	Violations int `json:"violations,omitempty"`
}

// eventOf converts an internal iteration record to its wire form.
func eventOf(rec campaign.IterRecord) CampaignEvent {
	return CampaignEvent{
		Iter:         rec.Iter,
		Tokens:       rec.Tokens,
		Seqs:         rec.Seqs,
		Deferred:     rec.Deferred,
		Replanned:    rec.Replanned,
		Flipped:      rec.Flipped,
		Time:         rec.Time,
		TokensPerSec: rec.TokensPerSec,
		Imbalance:    rec.Imbalance,
		Penalty:      rec.Penalty,
		Utilization:  rec.Utilization,
		Recovery:     rec.Recovery,
		Events:       rec.Events,
		World:        rec.World,
		Queued:       rec.Queued,
		AffinityHits: rec.AffinityHits,
		SavedTokens:  rec.SavedTokens,
		Violations:   rec.Violations,
	}
}

// CampaignSummary aggregates one campaign's event stream — the wire
// mirror of the internal summary.
type CampaignSummary struct {
	Method  string `json:"method"`
	Arrival string `json:"arrival"`
	Policy  string `json:"policy"`
	Iters   int    `json:"iters"`
	Replans int    `json:"replans"`

	TotalTokens    int     `json:"total_tokens"`
	DeferredTokens int     `json:"deferred_tokens,omitempty"`
	WallTime       float64 `json:"wall_time"`
	TokensPerSec   float64 `json:"tokens_per_sec"`

	MeanIterTime float64 `json:"mean_iter_time"`
	P50IterTime  float64 `json:"p50_iter_time"`
	P95IterTime  float64 `json:"p95_iter_time"`
	P99IterTime  float64 `json:"p99_iter_time"`
	MaxIterTime  float64 `json:"max_iter_time"`

	MeanImbalance   float64 `json:"mean_imbalance"`
	MaxImbalance    float64 `json:"max_imbalance"`
	MeanUtilization float64 `json:"mean_utilization"`

	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`
	FaultEvents     int     `json:"fault_events,omitempty"`

	// Serving aggregates (serve campaigns only): completed requests,
	// deadline violations, requests unserved at the horizon cutoff, and
	// total stream time in seconds (busy plus idle).
	Requests   int     `json:"requests,omitempty"`
	Violations int     `json:"violations,omitempty"`
	Unserved   int     `json:"unserved,omitempty"`
	StreamTime float64 `json:"stream_time,omitempty"`
}

// summaryOf converts the internal summary to its wire form.
func summaryOf(s campaign.Summary) CampaignSummary {
	return CampaignSummary{
		Method:          s.Method,
		Arrival:         s.Arrival,
		Policy:          s.Policy,
		Iters:           s.Iters,
		Replans:         s.Replans,
		TotalTokens:     s.TotalTokens,
		DeferredTokens:  s.DeferredTokens,
		WallTime:        s.WallTime,
		TokensPerSec:    s.TokensPerSec,
		MeanIterTime:    s.MeanIterTime,
		P50IterTime:     s.P50IterTime,
		P95IterTime:     s.P95IterTime,
		P99IterTime:     s.P99IterTime,
		MaxIterTime:     s.MaxIterTime,
		MeanImbalance:   s.MeanImbalance,
		MaxImbalance:    s.MaxImbalance,
		MeanUtilization: s.MeanUtilization,
		RecoverySeconds: s.RecoverySeconds,
		FaultEvents:     s.FaultEvents,
		Requests:        s.Requests,
		Violations:      s.Violations,
		Unserved:        s.Unserved,
		StreamTime:      s.StreamTime,
	}
}

// CampaignReport is the full wire artifact of one drained campaign.
type CampaignReport struct {
	Summary CampaignSummary `json:"summary"`
	// PerRankUtil is each rank's campaign-cumulative busy fraction.
	PerRankUtil []float64 `json:"per_rank_util"`
	// Classes are the per-SLO-class serving metrics, highest priority
	// first (serve campaigns only).
	Classes []ClassMetrics `json:"classes,omitempty"`
	// Events holds every iteration in order.
	Events []CampaignEvent `json:"events"`
}

// DecisionAlternative is one scored option a decision site considered.
type DecisionAlternative struct {
	// Choice names the option ("replan", "reuse", "full", "cached", ...).
	Choice string `json:"choice"`
	// Score is the option's figure of merit at decision time.
	Score float64 `json:"score"`
	// Chosen marks the option the decision selected.
	Chosen bool `json:"chosen,omitempty"`
}

// DecisionRecord is the wire form of one recorded campaign decision —
// what was chosen, what else was considered, and the controller state
// that drove the choice. Field order is part of the NDJSON decision-log
// contract: kind and chosen are adjacent, so
// `"kind":"replan","chosen":"replan"` is a stable grep key for replan
// executions.
type DecisionRecord struct {
	// Session is the owning campaign session id (set by zeppelind's
	// decision log, where one file interleaves many sessions).
	Session string `json:"session,omitempty"`
	// Iter is the campaign iteration the decision belongs to.
	Iter int `json:"iter"`
	// Kind classifies the decision site: "replan", "admission",
	// "placement", or "scale". Chosen names the winning alternative.
	Kind   string `json:"kind"`
	Chosen string `json:"chosen"`
	// Forced marks decisions the controller had no say in (first
	// iteration, post-resize); forced decisions are not flippable.
	Forced bool `json:"forced,omitempty"`
	// Flipped marks the one decision a counterfactual replay overrode.
	Flipped bool `json:"flipped,omitempty"`
	// Policy and Threshold describe the replanning controller.
	Policy    string  `json:"policy,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// StaleImbalance and FreshImbalance are the projections the replan
	// verdict weighed.
	StaleImbalance float64 `json:"stale_imbalance,omitempty"`
	FreshImbalance float64 `json:"fresh_imbalance,omitempty"`
	// SinceReplan counts iterations since the partitioner last ran.
	SinceReplan int `json:"since_replan,omitempty"`
	// PlanMode is the incremental planner's fast path for placement
	// records ("full", "patched", "cached", "shared").
	PlanMode string `json:"plan_mode,omitempty"`
	// Events and World snapshot the fault state (fault campaigns only).
	Events []string `json:"events,omitempty"`
	World  int      `json:"world,omitempty"`
	// Alternatives are the scored options considered, chosen included.
	Alternatives []DecisionAlternative `json:"alternatives,omitempty"`
}

// decisionOf converts an internal decision record to its wire form.
func decisionOf(r decision.Record) DecisionRecord {
	out := DecisionRecord{
		Iter:           r.Iter,
		Kind:           string(r.Kind),
		Chosen:         r.Chosen,
		Forced:         r.Forced,
		Flipped:        r.Flipped,
		Policy:         r.Policy,
		Threshold:      r.Threshold,
		StaleImbalance: r.StaleImbalance,
		FreshImbalance: r.FreshImbalance,
		SinceReplan:    r.SinceReplan,
		PlanMode:       r.PlanMode,
		Events:         r.Events,
		World:          r.World,
	}
	if len(r.Alternatives) > 0 {
		out.Alternatives = make([]DecisionAlternative, len(r.Alternatives))
		for i, a := range r.Alternatives {
			out.Alternatives[i] = DecisionAlternative{Choice: a.Choice, Score: a.Score, Chosen: a.Chosen}
		}
	}
	return out
}

// FlipSpec names one replan decision to invert during a counterfactual
// replay: at iteration Iter, force the verdict to Decision ("replan" or
// "reuse") instead of whatever the policy decided.
type FlipSpec struct {
	Iter     int    `json:"iter"`
	Decision string `json:"decision"`
}

// Validate checks the spec without running anything — the up-front
// check zeppelind's replay endpoint uses to distinguish a malformed
// flip (400) from a replay that failed to run (500).
func (f FlipSpec) Validate() error {
	_, err := f.flip()
	return err
}

// flip resolves the spec onto the internal override.
func (f FlipSpec) flip() (*campaign.Flip, error) {
	if f.Iter < 0 {
		return nil, fmt.Errorf("zeppelin: flip iter must be >= 0, got %d", f.Iter)
	}
	switch f.Decision {
	case "replan":
		return &campaign.Flip{Iter: f.Iter, Replan: true}, nil
	case "reuse":
		return &campaign.Flip{Iter: f.Iter, Replan: false}, nil
	}
	return nil, fmt.Errorf("zeppelin: unknown flip decision %q (want replan|reuse)", f.Decision)
}

// ReplayRequest asks for a recorded campaign to be deterministically
// re-run, optionally with exactly one replan decision flipped. With no
// flip the replay must reproduce the factual stream byte for byte.
type ReplayRequest struct {
	Campaign CampaignRequest `json:"campaign"`
	Flip     *FlipSpec       `json:"flip,omitempty"`
}

// ReplayDelta is the counterfactual-minus-factual outcome difference.
type ReplayDelta struct {
	// TokensPerSecPct is the goodput change in percent.
	TokensPerSecPct float64 `json:"tokens_per_sec_pct"`
	// P99IterTimePct is the tail-latency change in percent.
	P99IterTimePct float64 `json:"p99_iter_time_pct"`
	// WallTimeSec is the absolute campaign wall-time change in seconds.
	WallTimeSec float64 `json:"wall_time_sec"`
	// Replans is the replan-count change.
	Replans int `json:"replans"`
	// RecoverySec is the fault-transition (migration/restart) cost change
	// in seconds.
	RecoverySec float64 `json:"recovery_sec,omitempty"`
}

// ReplayReport is the wire result of one counterfactual replay.
type ReplayReport struct {
	// Flip echoes the requested override, if any.
	Flip *FlipSpec `json:"flip,omitempty"`
	// Flipped reports whether the override actually inverted a verdict —
	// false when it targeted a forced decision or agreed with the factual
	// one (the replay is then bit-identical to the factual run).
	Flipped bool `json:"flipped"`
	// Identical reports that the replayed stream reproduced the factual
	// stream byte for byte (always true for no-flip and no-op replays).
	Identical bool `json:"identical"`
	// Factual and Counterfactual summarize the two runs; Counterfactual
	// is omitted when the replay was identical.
	Factual        CampaignSummary  `json:"factual"`
	Counterfactual *CampaignSummary `json:"counterfactual,omitempty"`
	// Delta is counterfactual minus factual, present with Counterfactual.
	Delta *ReplayDelta `json:"delta,omitempty"`
}

// ErrorBody is the JSON error envelope every /v1 endpoint returns:
// {"error":{"code":"...","message":"..."}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable machine-readable code ("bad_request",
// "not_found", "method_not_allowed", "conflict", "rate_limited",
// "internal") and a human-readable message. A "rate_limited" error
// rides a 429 response whose Retry-After header says how many seconds
// to back off.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}
