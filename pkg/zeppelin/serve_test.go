package zeppelin

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"zeppelin/internal/campaign"
	"zeppelin/internal/workload/serve"
)

// serveReq builds a small bursty two-class serving request that drains
// in a few dozen ticks on a one-node cell.
func serveReq(route string) CampaignRequest {
	spec, err := ParseServeSpec("clients=3,arrival=gamma:cv=2.0,rate=30@0-8s,slo=interactive:p99=2s:prio=2;batch:p99=8s:prio=1,prefix=0.6,route=" + route)
	if err != nil {
		panic(err)
	}
	return CampaignRequest{
		Model:   "3B",
		Cluster: ClusterSpec{Preset: "A", Nodes: 1, TP: 1, TokensPerGPU: 4096},
		Method:  "zeppelin",
		Iters:   500,
		Serve:   spec,
	}
}

// TestServeCampaignThroughSDK pins the serve request resolution: the
// public API drains the scenario and surfaces per-class metrics.
func TestServeCampaignThroughSDK(t *testing.T) {
	rep, err := RunCampaign(context.Background(), serveReq("affinity"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) == 0 {
		t.Fatal("no serving ticks ran")
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("%d class rows, want 2", len(rep.Classes))
	}
	if rep.Classes[0].Class != "interactive" || rep.Classes[1].Class != "batch" {
		t.Fatalf("classes out of priority order: %+v", rep.Classes)
	}
	if rep.Summary.Arrival != "serve(3xgamma cv=2,2cls)" {
		t.Fatalf("arrival label = %q", rep.Summary.Arrival)
	}
	if rep.Summary.Policy != "serve:priority+affinity" {
		t.Fatalf("policy label = %q", rep.Summary.Policy)
	}
	if rep.Summary.Requests == 0 || rep.Summary.StreamTime <= 0 {
		t.Fatalf("serving aggregates missing: %+v", rep.Summary)
	}
	if rep.Summary.Unserved != 0 {
		t.Fatalf("stream left %d requests unserved", rep.Summary.Unserved)
	}
	var saved int
	for _, ev := range rep.Events {
		saved += ev.SavedTokens
	}
	if saved == 0 {
		t.Fatal("affinity routing with a 0.6 prefix saved no tokens")
	}
}

// TestServeSDKMatchesInternalRun: a serve request drained through the
// public API is bit-identical (on the wire bytes) to internal
// campaign.Run on the resolved configuration.
func TestServeSDKMatchesInternalRun(t *testing.T) {
	req := serveReq("balance")
	rep, err := RunCampaign(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := req.config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, _ := json.Marshal(rep.Summary)
	expSum, _ := json.Marshal(want.Summary)
	if !bytes.Equal(gotSum, expSum) {
		t.Fatalf("summary differs:\n got %s\nwant %s", gotSum, expSum)
	}
	gotCls, _ := json.Marshal(rep.Classes)
	expCls, _ := json.Marshal(want.Classes)
	if !bytes.Equal(gotCls, expCls) {
		t.Fatalf("class metrics differ:\n got %s\nwant %s", gotCls, expCls)
	}
	for i := range rep.Events {
		got, _ := json.Marshal(rep.Events[i])
		exp, _ := json.Marshal(want.Records[i])
		if !bytes.Equal(got, exp) {
			t.Fatalf("event %d differs from internal record:\n got %s\nwant %s", i, got, exp)
		}
	}
}

// TestParseServeSpecMirrorsInternalGrammar: the wire parser and the
// internal parser resolve the issue's example grammar identically.
func TestParseServeSpecMirrorsInternalGrammar(t *testing.T) {
	const grammar = "clients=3,arrival=gamma:cv=2.0,rate=50@0-60s;120@60-300s,slo=interactive:p99=200ms"
	wire, err := ParseServeSpec(grammar)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := wire.resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := serve.Parse(grammar)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Spec, want) {
		t.Fatalf("wire resolution diverged from internal parse:\n got %+v\nwant %+v", sc.Spec, want)
	}
}

// TestServeSpecPrefixConvention: wire zero selects the default prefix,
// negative selects none — the ReuseOverhead convention.
func TestServeSpecPrefixConvention(t *testing.T) {
	def, err := (&ServeSpec{}).resolve()
	if err != nil {
		t.Fatal(err)
	}
	if def.Spec.Prefix != serve.DefaultSpec().Prefix {
		t.Fatalf("zero prefix resolved to %v, want default %v", def.Spec.Prefix, serve.DefaultSpec().Prefix)
	}
	none, err := (&ServeSpec{Prefix: -1}).resolve()
	if err != nil {
		t.Fatal(err)
	}
	if none.Spec.Prefix != 0 {
		t.Fatalf("negative prefix resolved to %v, want 0", none.Spec.Prefix)
	}
	// And the parser preserves an explicit prefix=0 through the wire form.
	parsed, err := ParseServeSpec("prefix=0")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Prefix >= 0 {
		t.Fatalf("parsed prefix=0 encodes as %v, want negative sentinel", parsed.Prefix)
	}
}

// TestServeTraceRoundTripThroughWire: generating a timeline, writing it
// as NDJSON, reading it back, and replaying it through the Trace field
// reproduces the generative campaign bit for bit.
func TestServeTraceRoundTripThroughWire(t *testing.T) {
	req := serveReq("affinity")
	specRep, err := RunCampaign(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	events, err := GenerateServeTimeline(req.Serve, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteServeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadServeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatal("trace NDJSON round trip lost events")
	}

	trReq := serveReq("affinity")
	trReq.Serve.Trace = back
	trReq.Serve.TraceName = "recorded"
	traceRep, err := RunCampaign(context.Background(), trReq)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(specRep.Events)
	b, _ := json.Marshal(traceRep.Events)
	if !bytes.Equal(a, b) {
		t.Fatal("trace replay diverged from the generative run")
	}
	ac, _ := json.Marshal(specRep.Classes)
	bc, _ := json.Marshal(traceRep.Classes)
	if !bytes.Equal(ac, bc) {
		t.Fatal("trace replay class metrics diverged")
	}
}

// TestGenerateServeTimelineMatchesInternal: the public generator is the
// internal spec timeline at the same seed.
func TestGenerateServeTimelineMatchesInternal(t *testing.T) {
	wire, err := ParseServeSpec("clients=2,rate=20@0-4s")
	if err != nil {
		t.Fatal(err)
	}
	events, err := GenerateServeTimeline(wire, 7)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := serve.Parse("clients=2,rate=20@0-4s")
	if err != nil {
		t.Fatal(err)
	}
	want, err := spec.Timeline(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(want) {
		t.Fatalf("%d events, want %d", len(events), len(want))
	}
	for i := range events {
		if events[i].T != want[i].Arrive || events[i].Tokens != want[i].Tokens {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

// TestCompareServeRoutesDeterministicAcrossWorkers: the route
// comparison is bit-identical at every worker count, and affinity's
// per-class rows are present.
func TestCompareServeRoutesDeterministicAcrossWorkers(t *testing.T) {
	req := serveReq("balance")
	var base []byte
	for _, workers := range []int{1, 4} {
		cmp, err := CompareServeRoutes(context.Background(), req, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(cmp.Routes) != 2 {
			t.Fatalf("%d route rows, want 2", len(cmp.Routes))
		}
		for _, r := range cmp.Routes {
			if len(r.Classes) != 2 {
				t.Fatalf("route %s has %d class rows, want 2", r.Route, len(r.Classes))
			}
		}
		raw, err := json.Marshal(cmp)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = raw
			continue
		}
		if !bytes.Equal(base, raw) {
			t.Fatalf("workers=%d produced a different comparison", workers)
		}
	}
}

// TestServeRequestValidation: conflicting or malformed serve requests
// are rejected and classified as validation errors, so zeppelind
// answers 400 rather than 500.
func TestServeRequestValidation(t *testing.T) {
	withWorkload := serveReq("balance")
	withWorkload.Workload = WorkloadSpec{Arrival: "poisson"}
	withPolicy := serveReq("balance")
	withPolicy.Policy = PolicySpec{Name: "always"}
	withFaults := serveReq("balance")
	withFaults.Faults = "straggler"
	withAutoscale := serveReq("balance")
	withAutoscale.Autoscale = &AutoscaleSpec{MaxNodes: 1}
	badSpec := serveReq("balance")
	badSpec.Serve = &ServeSpec{Clients: -1}
	badTrace := serveReq("balance")
	badTrace.Serve = &ServeSpec{Trace: []ServeTraceEvent{{T: 0, Class: "nope", Tokens: 64}}}

	for name, req := range map[string]CampaignRequest{
		"workload+serve":  withWorkload,
		"policy+serve":    withPolicy,
		"faults+serve":    withFaults,
		"autoscale+serve": withAutoscale,
		"bad spec":        badSpec,
		"unknown class":   badTrace,
	} {
		_, err := RunCampaign(context.Background(), req)
		if err == nil {
			t.Errorf("%s: campaign ran, want validation error", name)
			continue
		}
		if !IsValidationError(err) {
			t.Errorf("%s: error not validation-classified: %v", name, err)
		}
	}
	// A healthy serve request must NOT trip the classifier's inverse:
	// internal errors stay unclassified.
	if IsValidationError(context.Canceled) {
		t.Error("context.Canceled misclassified as validation error")
	}
}
