package zeppelin

import (
	"sync"
	"time"
)

// AdmissionClass partitions /v1 traffic for admission control. Each
// class owns an independent token bucket, so a flood of one traffic
// kind (a runaway campaign client, a plan benchmark) exhausts its own
// budget without starving the others.
type AdmissionClass string

// The four /v1 traffic classes zeppelind admits independently.
const (
	// AdmitPlan covers POST /v1/plan — the high-rate stateless tier.
	AdmitPlan AdmissionClass = "plan"
	// AdmitCampaign covers every /v1/campaigns route: session create,
	// status, listing, delete, and the NDJSON events stream.
	AdmitCampaign AdmissionClass = "campaign"
	// AdmitExperiment covers GET /v1/experiments/{name} — the heavy
	// grid-regeneration tier.
	AdmitExperiment AdmissionClass = "experiment"
	// AdmitMeta covers the cheap metadata routes (/v1/version,
	// /v1/stats).
	AdmitMeta AdmissionClass = "meta"
)

// AdmissionClasses lists the classes in reporting order.
func AdmissionClasses() []AdmissionClass {
	return []AdmissionClass{AdmitPlan, AdmitCampaign, AdmitExperiment, AdmitMeta}
}

// TokenBucket is a concurrency-safe token bucket: capacity `burst`
// tokens, refilled continuously at `rate` tokens per second. Allow
// consumes one token; when the bucket is empty it reports how long
// until one accrues — the Retry-After a 429 should carry.
type TokenBucket struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 means unlimited
	burst   float64
	tokens  float64
	last    time.Time
	now     func() time.Time // injectable for deterministic tests
	allowed uint64
	denied  uint64
}

// NewTokenBucket builds a bucket admitting `rate` requests per second
// with up to `burst` of slack. A non-positive rate builds an unlimited
// bucket (every Allow succeeds); a non-positive burst is raised to 1 so
// a positive rate can ever admit.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
	}
}

// Allow consumes one token if available. When denied, retryAfter is the
// time until the next token accrues — never zero, so clients always
// back off by a measurable amount.
func (b *TokenBucket) Allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		b.allowed++
		return true, 0
	}
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		b.allowed++
		return true, 0
	}
	b.denied++
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Nanosecond
	}
	return false, wait
}

// Counts snapshots the admitted/denied totals.
func (b *TokenBucket) Counts() (allowed, denied uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allowed, b.denied
}

// Level snapshots the bucket fill after applying the refill due now:
// current tokens and the burst capacity. Unlimited buckets report full.
// Saturation (1 - tokens/burst) is the /metrics gauge derived from it.
func (b *TokenBucket) Level() (tokens, burst float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return b.burst, b.burst
	}
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	return b.tokens, b.burst
}

// AdmissionConfig sets the per-class token-bucket parameters.
type AdmissionConfig struct {
	// Rate is the default per-class admission rate in requests per
	// second. A non-positive rate disables admission control for every
	// class not explicitly overridden.
	Rate float64
	// Burst is the bucket depth shared by every class (minimum 1 when a
	// rate is set).
	Burst int
	// ClassRate overrides Rate for specific classes. An override of 0 is
	// ignored (the class inherits Rate); a negative override makes that
	// class unlimited.
	ClassRate map[AdmissionClass]float64
}

// Admission is the per-class token-bucket admission controller guarding
// zeppelind's /v1 routes. Safe for concurrent use.
type Admission struct {
	buckets map[AdmissionClass]*TokenBucket
}

// NewAdmission builds one bucket per traffic class from the config.
func NewAdmission(cfg AdmissionConfig) *Admission {
	a := &Admission{buckets: make(map[AdmissionClass]*TokenBucket)}
	for _, class := range AdmissionClasses() {
		rate := cfg.Rate
		if r, ok := cfg.ClassRate[class]; ok && r != 0 {
			rate = r
		}
		a.buckets[class] = NewTokenBucket(rate, cfg.Burst)
	}
	return a
}

// Admit consumes one token from the class's bucket. Unknown classes are
// admitted (admission never turns a routing bug into an outage).
func (a *Admission) Admit(class AdmissionClass) (ok bool, retryAfter time.Duration) {
	b := a.buckets[class]
	if b == nil {
		return true, 0
	}
	return b.Allow()
}

// AdmissionStats is one class's counter snapshot in /v1/stats.
type AdmissionStats struct {
	Class   AdmissionClass `json:"class"`
	Allowed uint64         `json:"allowed"`
	Denied  uint64         `json:"denied"`
}

// Bucket returns the class's token bucket (nil for unknown classes) —
// the hook zeppelind's /metrics endpoint uses to read levels and counts
// without widening the /v1/stats wire type.
func (a *Admission) Bucket(class AdmissionClass) *TokenBucket {
	return a.buckets[class]
}

// Stats snapshots every class's counters in reporting order.
func (a *Admission) Stats() []AdmissionStats {
	out := make([]AdmissionStats, 0, len(a.buckets))
	for _, class := range AdmissionClasses() {
		b := a.buckets[class]
		if b == nil {
			continue
		}
		allowed, denied := b.Counts()
		out = append(out, AdmissionStats{Class: class, Allowed: allowed, Denied: denied})
	}
	return out
}
