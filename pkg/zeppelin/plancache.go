package zeppelin

import (
	"zeppelin/internal/partition"
)

// DefaultPlanCacheEntries is the shared plan cache's entry bound when
// NewPlanCache is given a non-positive capacity.
const DefaultPlanCacheEntries = partition.DefaultSharedCap

// PlanCache is the process-wide shared plan cache tier: a
// concurrency-safe, hit/miss-counting LRU of solved partition plans
// keyed by the exact planning inputs (node shape, per-device capacity,
// effective-speed view, and batch). One PlanCache is shared across
// every plan request and campaign session wired to it, so identical
// cluster/workload specs dedupe the partition solve fleet-wide.
//
// Only full solves — pure functions of the inputs — are ever stored, so
// a cache hit is bit-identical to re-solving: responses do not depend
// on cache state, worker count, or which request populated the entry.
type PlanCache struct {
	shared *partition.SharedCache
}

// PlanCacheStats is a point-in-time snapshot of the cache counters —
// the payload zeppelind's /v1/stats reports under "plan_cache".
type PlanCacheStats struct {
	// Hits and Misses count exact-key probes since process start.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts plans dropped off the LRU tail to admit new ones —
	// a full cache churning under distinct planning inputs.
	Evictions uint64 `json:"evictions"`
	// Entries is the current resident plan count, bounded by Capacity.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// NewPlanCache builds a shared plan cache bounded to `entries` plans
// (DefaultPlanCacheEntries when entries <= 0).
func NewPlanCache(entries int) *PlanCache {
	return &PlanCache{shared: partition.NewSharedCache(entries)}
}

// Stats snapshots the hit/miss counters.
func (p *PlanCache) Stats() PlanCacheStats {
	s := p.shared.Stats()
	return PlanCacheStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Entries: s.Entries, Capacity: s.Capacity,
	}
}

// sharedTier unwraps the internal cache; nil-safe so call sites can
// plumb an optional *PlanCache straight through.
func (p *PlanCache) sharedTier() *partition.SharedCache {
	if p == nil {
		return nil
	}
	return p.shared
}
