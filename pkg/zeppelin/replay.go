package zeppelin

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
)

// RunReplay deterministically re-runs a campaign and compares the
// replay against the factual run. With no flip the replay must
// reproduce the factual event stream byte for byte — anything else is a
// determinism violation and an error. With a flip, exactly one replan
// verdict is inverted and the report carries the counterfactual summary
// and the goodput/p99/migration-cost delta. A flip that targets a
// forced decision or agrees with the factual verdict changes nothing;
// the report then records Flipped=false, Identical=true.
//
// Both runs execute in-process under ctx; options (a shared plan cache,
// decision recording) apply to both. Determinism makes this exact: the
// factual run here is bit-identical to the recorded stream the request
// originally produced.
func RunReplay(ctx context.Context, req ReplayRequest, opts ...CampaignOption) (*ReplayReport, error) {
	if req.Flip != nil {
		if _, err := req.Flip.flip(); err != nil {
			return nil, err
		}
	}

	factOpts := append(append([]CampaignOption(nil), opts...), WithCampaignDecisions())
	factual, err := drainCampaign(ctx, req.Campaign, factOpts...)
	if err != nil {
		return nil, err
	}

	cfOpts := append(append([]CampaignOption(nil), opts...), WithCampaignDecisions())
	if req.Flip != nil {
		cfOpts = append(cfOpts, WithCampaignFlip(*req.Flip))
	}
	counter, err := drainCampaign(ctx, req.Campaign, cfOpts...)
	if err != nil {
		return nil, err
	}

	rep := &ReplayReport{
		Flip:    req.Flip,
		Factual: factual.report.Summary,
	}
	for _, ev := range counter.report.Events {
		if ev.Flipped {
			rep.Flipped = true
			break
		}
	}

	factBytes, err := eventStreamBytes(factual.report.Events)
	if err != nil {
		return nil, err
	}
	cfBytes, err := eventStreamBytes(counter.report.Events)
	if err != nil {
		return nil, err
	}
	rep.Identical = bytes.Equal(factBytes, cfBytes)

	if !rep.Flipped {
		// No verdict inverted: the replay must be pinned bit-identical.
		if !rep.Identical {
			return nil, fmt.Errorf("zeppelin: replay without an effective flip diverged from the factual stream (determinism violation)")
		}
		return rep, nil
	}
	cf := counter.report.Summary
	rep.Counterfactual = &cf
	rep.Delta = &ReplayDelta{
		TokensPerSecPct: pctDelta(cf.TokensPerSec, factual.report.Summary.TokensPerSec),
		P99IterTimePct:  pctDelta(cf.P99IterTime, factual.report.Summary.P99IterTime),
		WallTimeSec:     cf.WallTime - factual.report.Summary.WallTime,
		Replans:         cf.Replans - factual.report.Summary.Replans,
		RecoverySec:     cf.RecoverySeconds - factual.report.Summary.RecoverySeconds,
	}
	return rep, nil
}

// drainedCampaign pairs a drained campaign's report with its decisions.
type drainedCampaign struct {
	report    *CampaignReport
	decisions []DecisionRecord
}

// drainCampaign runs one campaign to completion.
func drainCampaign(ctx context.Context, req CampaignRequest, opts ...CampaignOption) (*drainedCampaign, error) {
	c, err := NewCampaign(req, opts...)
	if err != nil {
		return nil, err
	}
	if err := c.Start(ctx); err != nil {
		return nil, err
	}
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return &drainedCampaign{report: c.Report(), decisions: c.Decisions()}, nil
}

// eventStreamBytes serializes an event stream exactly the way the
// zeppelind NDJSON endpoint does — one compact JSON object per line —
// so byte equality here is byte equality of the streamed wire format.
func eventStreamBytes(events []CampaignEvent) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// pctDelta is (a-b)/b in percent; 0 when the baseline is 0.
func pctDelta(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}

// WriteDecisionNDJSON writes decision records as the structured
// decision-log format: one compact JSON record per line, fields in the
// fixed wire order, with an optional session id stamped on each line.
// Encoding is deterministic, so equal traces write byte-equal logs.
func WriteDecisionNDJSON(w io.Writer, session string, recs []DecisionRecord) error {
	for _, r := range recs {
		r.Session = session
		raw, err := json.Marshal(r)
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if _, err := w.Write(raw); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the replay report for terminals.
func (r *ReplayReport) WriteText(w io.Writer) {
	if r.Flip != nil {
		verb := "replan"
		if r.Flip.Decision != "replan" {
			verb = "reuse"
		}
		fmt.Fprintf(w, "replay: flip iter %d -> %s\n", r.Flip.Iter, verb)
	} else {
		fmt.Fprintf(w, "replay: no flip (identity check)\n")
	}
	switch {
	case !r.Flipped && r.Identical:
		fmt.Fprintf(w, "  stream reproduced bit-identically (%d iters, %.0f tok/s, p99 %.3fs)\n",
			r.Factual.Iters, r.Factual.TokensPerSec, r.Factual.P99IterTime)
		if r.Flip != nil {
			fmt.Fprintf(w, "  flip had no effect: decision at iter %d was forced or already %q\n",
				r.Flip.Iter, r.Flip.Decision)
		}
	default:
		d := r.Delta
		fmt.Fprintf(w, "  factual:        %10.0f tok/s  p99 %8.3fs  %3d replans  wall %8.2fs\n",
			r.Factual.TokensPerSec, r.Factual.P99IterTime, r.Factual.Replans, r.Factual.WallTime)
		fmt.Fprintf(w, "  counterfactual: %10.0f tok/s  p99 %8.3fs  %3d replans  wall %8.2fs\n",
			r.Counterfactual.TokensPerSec, r.Counterfactual.P99IterTime,
			r.Counterfactual.Replans, r.Counterfactual.WallTime)
		fmt.Fprintf(w, "  delta: goodput %+.2f%%  p99 %+.2f%%  replans %+d  wall %+.3fs",
			d.TokensPerSecPct, d.P99IterTimePct, d.Replans, d.WallTimeSec)
		if d.RecoverySec != 0 {
			fmt.Fprintf(w, "  recovery %+.3fs", d.RecoverySec)
		}
		fmt.Fprintln(w)
	}
}
