package zeppelin_test

import (
	"context"
	"fmt"
	"log"

	"zeppelin/pkg/zeppelin"
)

// Example plans one batch through the public API: sample a 64k-token
// ArXiv batch on two Cluster A nodes and let full Zeppelin place it.
// The same request, POSTed as JSON to a zeppelind daemon's /v1/plan,
// returns the same response.
func Example() {
	resp, err := zeppelin.Plan(context.Background(), zeppelin.PlanRequest{
		Model:   "7B",
		Cluster: zeppelin.ClusterSpec{Preset: "A", Nodes: 2},
		Dataset: "arxiv",
		Method:  "zeppelin",
	})
	if err != nil {
		log.Fatal(err)
	}
	placed := 0
	for _, tok := range resp.TokensPerRank {
		placed += tok
	}
	fmt.Println("world size:", resp.World)
	fmt.Println("tokens conserved:", placed == resp.Tokens)
	fmt.Println("balanced within 2x:", resp.Imbalance < 2)
	// Output:
	// world size: 16
	// tokens conserved: true
	// balanced within 2x: true
}

// ExampleCampaign streams a short campaign iteration by iteration —
// the consumption model zeppelind serves as NDJSON over
// GET /v1/campaigns/{id}/events.
func ExampleCampaign() {
	camp, err := zeppelin.StartCampaign(context.Background(), zeppelin.CampaignRequest{
		Workload: zeppelin.WorkloadSpec{Arrival: "steady", Dataset: "arxiv"},
		Policy:   zeppelin.PolicySpec{Name: "threshold"},
		Iters:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for {
		ev, ok := camp.Next()
		if !ok {
			break
		}
		fmt.Printf("iter %d: replanned=%v\n", ev.Iter, ev.Replanned)
	}
	if err := camp.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("iters summarized:", camp.Report().Summary.Iters)
	// Output:
	// iter 0: replanned=true
	// iter 1: replanned=false
	// iter 2: replanned=true
	// iters summarized: 3
}
