package zeppelin

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubDaemon fakes just enough of the zeppelind wire protocol for
// loadgen accounting tests: a plan route scripted per request and a
// campaign flow that streams the requested horizon.
func stubDaemon(plan http.HandlerFunc) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", plan)
	var nextID atomic.Int64
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		id := nextID.Add(1)
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"id":"c%d","state":"created","iters":3,"events_url":"/v1/campaigns/c%d/events"}`, id, id)
	})
	mux.HandleFunc("GET /v1/campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"iter":%d}`+"\n", i)
		}
	})
	return httptest.NewServer(mux)
}

// TestRunLoadAccounting drives the stub with a plan route that rotates
// ok / 429 / 500 and checks every counter lands in the right bucket —
// including that the two distinct OK bodies are caught by the
// byte-identity check.
func TestRunLoadAccounting(t *testing.T) {
	var n atomic.Int64
	ts := stubDaemon(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 3 {
		case 1:
			fmt.Fprint(w, `{"world":16,"variant":"a"}`)
		case 2:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"rate_limited","message":"slow down"}}`)
		default:
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{"world":16,"variant":"b"}`)
		}
	})
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		Addrs:         []string{ts.URL},
		Duration:      300 * time.Millisecond,
		PlanRPS:       100,
		Campaigns:     2,
		CampaignIters: 3,
		Client:        ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanRequests == 0 {
		t.Fatal("no plan traffic was offered")
	}
	if rep.PlanRequests != rep.PlanOK+rep.PlanRateLimited+rep.PlanErrors {
		t.Fatalf("accounting leak: %d sent != %d ok + %d 429 + %d errors",
			rep.PlanRequests, rep.PlanOK, rep.PlanRateLimited, rep.PlanErrors)
	}
	if rep.PlanOK == 0 || rep.PlanRateLimited == 0 {
		t.Fatalf("rotation missed a bucket: %+v", rep)
	}
	if rep.PlanLatency.Count != rep.PlanOK {
		t.Fatalf("latency samples %d != %d admitted plans", rep.PlanLatency.Count, rep.PlanOK)
	}
	if rep.PlanLatency.P50Ms <= 0 || rep.PlanLatency.P99Ms < rep.PlanLatency.P50Ms {
		t.Fatalf("latency summary inconsistent: %+v", rep.PlanLatency)
	}
	if rep.PlansPerSec <= 0 {
		t.Fatalf("plans/sec = %v", rep.PlansPerSec)
	}
	// The stub alternates two OK payloads: the identity check must see 2.
	if rep.UniquePlanBodies != 2 {
		t.Fatalf("unique plan bodies = %d, want 2 from the two stub variants", rep.UniquePlanBodies)
	}
	if rep.CampaignStreams != 2 || rep.CampaignEvents != 6 || rep.CampaignErrors != 0 {
		t.Fatalf("campaign accounting = %+v", rep)
	}
	// The stub has no /metrics route: the run must degrade silently.
	if rep.MetricsScraped || rep.DecisionsPerSec != 0 || rep.AdmissionSaturation != nil {
		t.Fatalf("metrics-blind target produced scrape fields: %+v", rep)
	}
	var text strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text.String(), "metrics:") || strings.Contains(text.String(), "p99.9") {
		t.Fatalf("metrics-blind text output gained scrape lines:\n%s", text.String())
	}
}

// TestRunLoadScrapesMetrics: a target that exposes /metrics gets the
// decisions/sec rate (delta over the run) and per-class saturation, and
// the text/benchfmt outputs gain the scrape-backed fields.
func TestRunLoadScrapesMetrics(t *testing.T) {
	var scrapes atomic.Int64
	ts := stubDaemon(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"world":16}`)
	})
	defer ts.Close()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// First scrape sees 100 decisions, later ones 400.
		total := 100
		if scrapes.Add(1) > 1 {
			total = 400
		}
		fmt.Fprintf(w, "# HELP zeppelind_decisions_total d\n# TYPE zeppelind_decisions_total counter\n")
		fmt.Fprintf(w, "zeppelind_decisions_total{kind=\"replan\"} %d\n", total)
		fmt.Fprintf(w, "# HELP zeppelind_admission_bucket_saturation s\n# TYPE zeppelind_admission_bucket_saturation gauge\n")
		fmt.Fprintf(w, "zeppelind_admission_bucket_saturation{class=\"plan\"} 0.25\n")
		fmt.Fprintf(w, "zeppelind_admission_bucket_saturation{class=\"campaign\"} 0.75\n")
	})
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ts.Config.Handler.ServeHTTP(w, r)
	}))
	front := httptest.NewServer(mux)
	defer front.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		Addrs:    []string{front.URL},
		Duration: 200 * time.Millisecond,
		PlanRPS:  50,
		Client:   front.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MetricsScraped {
		t.Fatalf("metrics-aware target not scraped: %+v", rep)
	}
	if rep.DecisionsPerSec <= 0 {
		t.Fatalf("decisions/sec = %v, want > 0 from the 300-decision delta", rep.DecisionsPerSec)
	}
	if rep.AdmissionSaturation["plan"] != 0.25 || rep.AdmissionSaturation["campaign"] != 0.75 {
		t.Fatalf("saturation = %v", rep.AdmissionSaturation)
	}
	var text strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p99.9", "decisions/sec", "plan=0.25", "campaign=0.75"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}
	plan := rep.Benchfmt().Get("BenchmarkLoadgenPlan")
	if plan == nil {
		t.Fatal("artifact missing BenchmarkLoadgenPlan")
	}
	if _, ok := plan.Metrics["p999-ms"]; !ok {
		t.Fatalf("scraped artifact missing p999-ms: %v", plan.Metrics)
	}
	if plan.Metrics["decisions-per-sec"] != rep.DecisionsPerSec {
		t.Fatalf("artifact decisions-per-sec = %v, want %v", plan.Metrics["decisions-per-sec"], rep.DecisionsPerSec)
	}
}

// TestRunLoadBenchfmt: the artifact carries the gateable series with
// goodput encoded as ns/plan.
func TestRunLoadBenchfmt(t *testing.T) {
	rep := &LoadReport{
		PlanOK:          500,
		PlansPerSec:     250,
		DurationSec:     2,
		PlanLatency:     LatencySummary{Count: 500, P50Ms: 1, P95Ms: 2, P99Ms: 3},
		CampaignStreams: 2, CampaignEvents: 20,
	}
	f := rep.Benchfmt()
	plan := f.Get("BenchmarkLoadgenPlan")
	if plan == nil {
		t.Fatal("artifact missing BenchmarkLoadgenPlan")
	}
	if plan.NsPerOp != 1e9/250 {
		t.Fatalf("ns/op = %v, want 1e9/250", plan.NsPerOp)
	}
	if plan.Metrics["plans-per-sec"] != 250 || plan.Metrics["p99-ms"] != 3 {
		t.Fatalf("metrics = %v", plan.Metrics)
	}
	if f.Get("BenchmarkLoadgenCampaignEvents") == nil {
		t.Fatal("artifact missing BenchmarkLoadgenCampaignEvents")
	}
}

// TestPercentileNearestRank pins the latency-percentile statistic to
// the nearest-rank definition: rank ⌈q·N⌉ clamped to [1, N]. The
// regression it guards: int(q·(N-1)) truncation reported tail
// percentiles one element low — q=0.999 over fewer than 1000 samples
// must clamp to the max, a single sample must be every percentile, and
// an empty sample must return 0, not panic.
func TestPercentileNearestRank(t *testing.T) {
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty returns zero", nil, 0.5, 0},
		{"single sample p50", []float64{7}, 0.50, 7},
		{"single sample p999", []float64{7}, 0.999, 7},
		{"single sample q=0", []float64{7}, 0, 7},
		{"p50 of ten", ten, 0.50, 5},
		{"p95 of ten", ten, 0.95, 10},
		{"p99 of ten clamps to max", ten, 0.99, 10},
		{"p999 of ten clamps to max", ten, 0.999, 10},
		{"p10 of ten", ten, 0.10, 1},
		{"q=0 clamps to min", ten, 0, 1},
		{"q=1 is the max", ten, 1, 10},
		{"p25 of four", []float64{1, 2, 3, 4}, 0.25, 1},
		{"p75 of four", []float64{1, 2, 3, 4}, 0.75, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := percentile(c.sorted, c.q); got != c.want {
				t.Fatalf("percentile(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
			}
		})
	}
	// The clamp that motivated the fix: under 1000 samples, p99.9 is the
	// maximum for every N — the old truncation picked an interior element.
	for _, n := range []int{2, 10, 100, 999} {
		sorted := make([]float64, n)
		for i := range sorted {
			sorted[i] = float64(i + 1)
		}
		if got := percentile(sorted, 0.999); got != float64(n) {
			t.Fatalf("p999 of %d samples = %v, want the max %d", n, got, n)
		}
	}
}

// TestRunLoadValidation: nonsense configs fail fast with a message that
// names the bad knob.
func TestRunLoadValidation(t *testing.T) {
	cases := []struct {
		cfg  LoadConfig
		want string
	}{
		{LoadConfig{}, "replica address"},
		{LoadConfig{Addrs: []string{"http://x"}}, "plan traffic, campaign streams"},
		{LoadConfig{Addrs: []string{"http://x"}, PlanRPS: -1}, "RPS"},
		{LoadConfig{Addrs: []string{"http://x"}, PlanRPS: 10}, "duration"},
	}
	for _, c := range cases {
		_, err := RunLoad(context.Background(), c.cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("config %+v: err = %v, want mention of %q", c.cfg, err, c.want)
		}
	}
}
