package zeppelin

import (
	"runtime"
	"runtime/debug"
)

// APIVersion is the wire revision every served route is namespaced
// under (the /v1 prefix) and the value VersionInfo reports. It only
// changes on breaking schema changes; additive fields keep v1.
const APIVersion = "v1"

// VersionInfo identifies a build of the module and its API revision —
// the payload of `zeppelin -version`, `zeppelind -version`, and
// GET /v1/version.
type VersionInfo struct {
	// Module is the Go module path.
	Module string `json:"module"`
	// Version is the module's build version ("(devel)" for source
	// builds outside a tagged release).
	Version string `json:"version"`
	// APIVersion is the wire revision served under /v1.
	APIVersion string `json:"api_version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Version reports the running build's identification.
func Version() VersionInfo {
	v := VersionInfo{
		Module:     "zeppelin",
		Version:    "(devel)",
		APIVersion: APIVersion,
		GoVersion:  runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			v.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			v.Version = bi.Main.Version
		}
	}
	return v
}
