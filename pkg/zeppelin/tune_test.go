package zeppelin

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// tuneSmokeRequest is a deliberately tiny search: two-dimension space,
// small budget, short horizon — enough to exercise the whole wire path
// without slowing the package tests.
func tuneSmokeRequest(workers int) TuneRequest {
	return TuneRequest{
		Workload: WorkloadSpec{Arrival: "drift", DriftPath: []string{"arxiv", "github"}},
		Space:    "policy=threshold,threshold=1.1:1.5",
		Budget:   4,
		Iters:    20,
		Workers:  workers,
	}
}

// TestRunTuneSmoke drains a small search through the public API and
// checks the report invariants the CLI and daemon rely on.
func TestRunTuneSmoke(t *testing.T) {
	rep, err := RunTune(context.Background(), tuneSmokeRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.Fitness.Total != 1 {
		t.Fatalf("baseline fitness = %v, want exactly 1", rep.Baseline.Fitness.Total)
	}
	if rep.Evaluated == 0 || rep.Evaluated > rep.Budget {
		t.Fatalf("evaluated %d against budget %d", rep.Evaluated, rep.Budget)
	}
	if rep.Winner.Key == "" || rep.Winner.Flags == "" {
		t.Fatalf("winner missing identity or flag set: %+v", rep.Winner)
	}
	var text bytes.Buffer
	rep.WriteText(&text)
	for _, want := range []string{"tune:", "weights:", "winner:", "flags:"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
}

// TestRunTuneDeterministicAcrossWorkers pins the serial==parallel
// contract at the wire level: the marshalled TuneReport is bit-identical
// for worker pools 1 and 4.
func TestRunTuneDeterministicAcrossWorkers(t *testing.T) {
	a, err := RunTune(context.Background(), tuneSmokeRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTune(context.Background(), tuneSmokeRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := json.Marshal(a)
	rb, _ := json.Marshal(b)
	if !bytes.Equal(ra, rb) {
		t.Fatalf("tune reports differ between 1 and 4 workers:\n%s\n%s", ra, rb)
	}
}

func TestTuneRequestValidate(t *testing.T) {
	bad := []TuneRequest{
		{Space: "bogus=1"},
		{Budget: -1},
		{Weights: &TuneWeights{Goodput: -0.5}},
		{Model: "900B"},
		{Faults: "gremlins"},
	}
	for _, req := range bad {
		if err := req.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", req)
		}
	}
	if err := (TuneRequest{}).Validate(); err != nil {
		t.Errorf("zero request rejected: %v", err)
	}
}

// TestReplanCostSecNegativeRejected is the regression for the silent
// clamp: a negative replan cost must surface as a structured validation
// error through the SDK, not be quietly zeroed.
func TestReplanCostSecNegativeRejected(t *testing.T) {
	req := CampaignRequest{Iters: 5, ReplanCostSec: -0.01}
	if err := req.Validate(); err == nil || !strings.Contains(err.Error(), "replan cost") {
		t.Fatalf("Validate error = %v, want replan-cost validation error", err)
	}
	if _, err := RunCampaign(context.Background(), req); err == nil {
		t.Fatal("RunCampaign accepted a negative replan cost")
	}
}

// TestRunCampaignAutoscale drives the elastic autoscaler through the
// public API: the world stays within [1, cluster nodes] and the scale
// verdicts reach the decision trace.
func TestRunCampaignAutoscale(t *testing.T) {
	c, err := NewCampaign(CampaignRequest{
		Workload:  WorkloadSpec{Arrival: "drift", DriftPath: []string{"arxiv", "github", "prolong64k"}},
		Iters:     30,
		Autoscale: &AutoscaleSpec{UpUtil: 0.95, DownUtil: 0.9, Cooldown: 2},
	}, WithCampaignDecisions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range c.Report().Events {
		if ev.World < 1 {
			t.Fatalf("iter %d: world %d below 1", ev.Iter, ev.World)
		}
	}
	sawScale := false
	for _, d := range c.Decisions() {
		if d.Kind == "scale" {
			sawScale = true
			break
		}
	}
	if !sawScale {
		t.Fatal("autoscaled campaign produced no scale decisions")
	}
}
