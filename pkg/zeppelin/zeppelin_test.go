package zeppelin

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"zeppelin/internal/campaign"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	zep "zeppelin/internal/zeppelin"
)

// TestRunCampaignMatchesInternalRun pins the request-resolution
// defaults: a default CampaignRequest drained through the public API
// must be bit-identical to internal campaign.Run on the hand-built
// equivalent configuration. Equality is asserted on the JSON wire bytes
// of every event, which simultaneously pins the CampaignEvent mirror to
// the internal record's schema.
func TestRunCampaignMatchesInternalRun(t *testing.T) {
	const iters = 20
	rep, err := RunCampaign(context.Background(), CampaignRequest{Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Run(context.Background(), campaign.Config{
		Trainer: trainer.Config{
			Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 2, TP: 1,
			TokensPerGPU: 4096, Seed: DefaultSeed,
		},
		Method:  zep.Full(),
		Iters:   iters,
		Arrival: campaign.Steady{D: workload.ArXiv},
		Policy:  campaign.Threshold{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != len(want.Records) {
		t.Fatalf("public API produced %d events, internal run %d records", len(rep.Events), len(want.Records))
	}
	for i := range rep.Events {
		got, err := json.Marshal(rep.Events[i])
		if err != nil {
			t.Fatal(err)
		}
		exp, err := json.Marshal(want.Records[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, exp) {
			t.Fatalf("event %d differs from internal record:\n got %s\nwant %s", i, got, exp)
		}
	}
	gotSum, _ := json.Marshal(rep.Summary)
	expSum, _ := json.Marshal(want.Summary)
	if !bytes.Equal(gotSum, expSum) {
		t.Fatalf("summary differs:\n got %s\nwant %s", gotSum, expSum)
	}
}

// TestIncrementalCampaignMatchesStateless: the Incremental switch must
// not move a single event (exact-mode property, through the public API).
func TestIncrementalCampaignMatchesStateless(t *testing.T) {
	req := CampaignRequest{Iters: 10, Workload: WorkloadSpec{Arrival: "drift", DriftPath: []string{"arxiv", "github"}}}
	plain, err := RunCampaign(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Incremental = true
	inc, err := RunCampaign(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(inc)
	if !bytes.Equal(a, b) {
		t.Fatal("incremental campaign report differs from stateless")
	}
}

// TestCampaignCancellation: a cancelled context stops the public stream
// and surfaces through Err.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	camp, err := StartCampaign(ctx, CampaignRequest{Iters: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := camp.Next(); !ok {
		t.Fatalf("first event failed: %v", camp.Err())
	}
	cancel()
	if _, ok := camp.Next(); ok {
		t.Fatal("Next must stop after cancellation")
	}
	if !errors.Is(camp.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", camp.Err())
	}
	if n := len(camp.Report().Events); n != 1 {
		t.Fatalf("partial report has %d events, want 1", n)
	}
}

// TestCampaignRunsOnce: a campaign session owns one stream.
func TestCampaignRunsOnce(t *testing.T) {
	camp, err := NewCampaign(CampaignRequest{Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := camp.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := camp.Start(context.Background()); err == nil {
		t.Fatal("second Start must fail")
	}
}

// TestPlanResponseShape: a default plan fills the placement facts and
// the simulated readout, and the plan conserves the batch's tokens.
func TestPlanResponseShape(t *testing.T) {
	resp, err := Plan(context.Background(), PlanRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.World != 16 {
		t.Fatalf("world = %d, want 16 (two Cluster A nodes)", resp.World)
	}
	if resp.Method != "Zeppelin" {
		t.Fatalf("method = %q", resp.Method)
	}
	sum := 0
	for _, tok := range resp.TokensPerRank {
		sum += tok
	}
	if sum != resp.Tokens {
		t.Fatalf("plan places %d of %d tokens", sum, resp.Tokens)
	}
	if resp.Imbalance < 1 {
		t.Fatalf("imbalance = %v, want >= 1", resp.Imbalance)
	}
	if resp.TokensPerSec <= 0 || resp.IterTimeSec <= 0 {
		t.Fatalf("simulated readout missing: %+v", resp)
	}
	if resp.RemapTransfers == 0 {
		t.Fatal("full Zeppelin must carry a remap solution")
	}
	if resp.PlanMode != "" {
		t.Fatalf("stateless planner reported plan mode %q", resp.PlanMode)
	}
}

// TestIncrementalPlannerReportsMode: repeated plans through an
// incremental planner come back bit-identical and report cache reuse.
func TestIncrementalPlannerReportsMode(t *testing.T) {
	p := NewPlanner(WithIncremental())
	first, err := p.Plan(context.Background(), PlanRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanMode != "full" {
		t.Fatalf("first plan mode = %q, want full", first.PlanMode)
	}
	second, err := p.Plan(context.Background(), PlanRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if second.PlanMode != "cached" {
		t.Fatalf("repeat plan mode = %q, want cached", second.PlanMode)
	}
	a, _ := json.Marshal(struct{ A *PlanResponse }{first})
	b, _ := json.Marshal(struct{ A *PlanResponse }{second})
	if !bytes.Equal(bytes.ReplaceAll(a, []byte(`"plan_mode":"full"`), nil),
		bytes.ReplaceAll(b, []byte(`"plan_mode":"cached"`), nil)) {
		t.Fatal("cached plan differs from the full solve")
	}
}

// TestParallelSolvePlansBitIdentical: WithParallelSolve changes only
// the solve path (and the reported SolveMode) — every placement fact
// and simulated readout matches the serial planner bit for bit, for
// every worker count.
func TestParallelSolvePlansBitIdentical(t *testing.T) {
	req := PlanRequest{Seed: 7}
	base, err := NewPlanner().Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if base.SolveMode != "" {
		t.Fatalf("default planner reported solve mode %q", base.SolveMode)
	}
	want, _ := json.Marshal(base)
	for workers, mode := range map[int]string{1: "serial", 4: "parallel-4", 16: "parallel-16"} {
		resp, err := NewPlanner(WithParallelSolve(workers)).Plan(context.Background(), req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if resp.SolveMode != mode {
			t.Fatalf("workers=%d: solve mode = %q, want %q", workers, resp.SolveMode, mode)
		}
		got, _ := json.Marshal(resp)
		got = bytes.ReplaceAll(got, []byte(`,"solve_mode":"`+mode+`"`), nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: plan differs from the serial solve:\n%s\nvs\n%s", workers, got, want)
		}
	}
	// A method without a partition plan has no solve to report.
	tecp, err := NewPlanner(WithParallelSolve(4)).Plan(context.Background(), PlanRequest{Method: "tecp"})
	if err != nil {
		t.Fatal(err)
	}
	if tecp.SolveMode != "" {
		t.Fatalf("planless method reported solve mode %q", tecp.SolveMode)
	}
}

// TestBadRequestsAreRejected: unknown identifiers fail resolution with
// descriptive errors.
func TestBadRequestsAreRejected(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{PlanRequest{Method: "warp"}.Validate(), "unknown method"},
		{PlanRequest{Model: "900B"}.Validate(), "unknown model"},
		{PlanRequest{Cluster: ClusterSpec{Preset: "Z"}}.Validate(), "unknown cluster"},
		{PlanRequest{Dataset: "imaginary"}.Validate(), "unknown dataset"},
		{CampaignRequest{}.Validate(), "iters"},
		{CampaignRequest{Iters: 5, Workload: WorkloadSpec{Arrival: "warp"}}.Validate(), "unknown arrival"},
		{CampaignRequest{Iters: 5, Policy: PolicySpec{Name: "vibes"}}.Validate(), "unknown replan policy"},
		{CampaignRequest{Iters: 5, Faults: "bogus"}.Validate(), "unknown scenario"},
	}
	for i, tc := range cases {
		if tc.err == nil || !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("case %d: error %v does not mention %q", i, tc.err, tc.want)
		}
	}
}

// TestCompareCampaignsDeterministicAcrossWorkers: the comparison grid is
// bit-identical at every pool size, and its JSON artifact carries the
// four methods in Fig. 8 order.
func TestCompareCampaignsDeterministicAcrossWorkers(t *testing.T) {
	req := CampaignRequest{Iters: 5}
	serial, err := CompareCampaigns(context.Background(), req, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CompareCampaigns(context.Background(), req, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("comparison artifact differs across worker counts")
	}
	var art struct {
		Rows []struct {
			Method string `json:"method"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(a.Bytes(), &art); err != nil {
		t.Fatal(err)
	}
	want := []string{"TE CP", "LLaMA CP", "Hybrid DP", "Zeppelin"}
	if len(art.Rows) != len(want) {
		t.Fatalf("artifact has %d rows, want %d", len(art.Rows), len(want))
	}
	for i, w := range want {
		if art.Rows[i].Method != w {
			t.Fatalf("row %d method = %q, want %q", i, art.Rows[i].Method, w)
		}
	}
}

// TestVersionIdentifiesAPI: the version payload names the module, the
// API revision, and the toolchain.
func TestVersionIdentifiesAPI(t *testing.T) {
	v := Version()
	if v.Module != "zeppelin" {
		t.Fatalf("module = %q", v.Module)
	}
	if v.APIVersion != "v1" {
		t.Fatalf("api version = %q", v.APIVersion)
	}
	if !strings.HasPrefix(v.GoVersion, "go") {
		t.Fatalf("go version = %q", v.GoVersion)
	}
}

// TestExperimentsSurface: the experiment list matches the dispatchers.
func TestExperimentsSurface(t *testing.T) {
	for _, name := range Experiments() {
		if !IsExperiment(name) {
			t.Fatalf("listed experiment %q not recognized", name)
		}
	}
	if IsExperiment("all") || IsExperiment("fig99") {
		t.Fatal("non-experiments recognized")
	}
	if _, err := RunExperiment(context.Background(), "fig99", Options{}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
