package zeppelin

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"

	"zeppelin/internal/benchfmt"
	"zeppelin/internal/experiments"
)

// BenchOptions configure a planner fast-path measurement.
type BenchOptions struct {
	// Ranks lists the world sizes to measure (multiples of 8); empty
	// selects 64 and 256.
	Ranks []int
	// Iters is the planning-stream length per cell; <= 0 selects the
	// fig15 default, and values below 2 are rejected.
	Iters int
	// SolveWorkers fans the full hierarchical solve across a worker
	// pool; <= 1 keeps the historical single-threaded solve. Plans are
	// bit-identical at every worker count — only latency changes.
	SolveWorkers int
}

// BenchArtifact is a planner fast-path measurement in the shared
// benchfmt schema — the same JSON shape the CI bench job's BENCH_*.json
// artifact uses, so one set of tooling reads both.
type BenchArtifact struct {
	file *benchfmt.File
}

// RunPlannerBench measures the planner fast path in-process (the fig15
// machinery: full solve vs incremental re-planning over a churning
// stream). The context is checked between rank cells.
func RunPlannerBench(ctx context.Context, o BenchOptions) (*BenchArtifact, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ranks := o.Ranks
	if len(ranks) == 0 {
		ranks = []int{64, 256}
	}
	iters := o.Iters
	if iters <= 0 {
		iters = experiments.Fig15Iters
	}
	if iters < 2 {
		return nil, fmt.Errorf("zeppelin: bench iters must be >= 2, got %d", iters)
	}
	art := &benchfmt.File{Source: "zeppelin bench", Goos: runtime.GOOS, Goarch: runtime.GOARCH}
	for _, r := range ranks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cell, err := experiments.Fig15Bench(r, iters, o.SolveWorkers)
		if err != nil {
			return nil, err
		}
		art.Results = append(art.Results,
			benchfmt.Result{
				Name:        fmt.Sprintf("BenchmarkFig15PlanFull/ranks=%d", r),
				Samples:     1,
				Iters:       iters,
				NsPerOp:     cell.Full.P50Micros * 1e3,
				AllocsPerOp: cell.Full.AllocsPerPlan,
				Metrics:     map[string]float64{"p95-micros": cell.Full.P95Micros},
			},
			benchfmt.Result{
				Name:        fmt.Sprintf("BenchmarkFig15PlanIncremental/ranks=%d", r),
				Samples:     1,
				Iters:       iters,
				NsPerOp:     cell.Incremental.P50Micros * 1e3,
				AllocsPerOp: cell.Incremental.AllocsPerPlan,
				Metrics: map[string]float64{
					"p95-micros":     cell.Incremental.P95Micros,
					"speedup-p50-x":  cell.SpeedupP50,
					"max-cost-ratio": cell.MaxCostRatio,
					"patched-plans":  float64(cell.Modes.Patched),
				},
			})
	}
	// Name-sorted like benchfmt.Parse's output, so this artifact diffs
	// directly against the CI-produced one.
	sort.Slice(art.Results, func(i, j int) bool { return art.Results[i].Name < art.Results[j].Name })
	return &BenchArtifact{file: art}, nil
}

// WriteJSON emits the benchfmt artifact (the BENCH_*.json schema).
func (a *BenchArtifact) WriteJSON(w io.Writer) error { return a.file.WriteJSON(w) }

// WriteText prints go-test-style benchmark lines, which cmd/benchgate
// can also parse.
func (a *BenchArtifact) WriteText(w io.Writer) error {
	for _, r := range a.file.Results {
		if _, err := fmt.Fprintf(w, "%s \t%8d\t%12.0f ns/op\t%10.0f allocs/op\n",
			r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp); err != nil {
			return err
		}
	}
	return nil
}
