package zeppelin

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a TokenBucket deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBucket(rate float64, burst int) (*TokenBucket, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewTokenBucket(rate, burst)
	b.now = clk.now
	return b, clk
}

// TestTokenBucketBurstThenDeny: a fresh bucket admits exactly its burst
// back to back, then denies with a positive Retry-After.
func TestTokenBucketBurstThenDeny(t *testing.T) {
	b, _ := testBucket(10, 3)
	for i := 0; i < 3; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("request %d inside burst denied", i)
		}
	}
	ok, retry := b.Allow()
	if ok {
		t.Fatal("request past burst admitted")
	}
	// One token accrues in 1/rate = 100ms.
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want (0, 100ms]", retry)
	}
	allowed, denied := b.Counts()
	if allowed != 3 || denied != 1 {
		t.Fatalf("counts = %d/%d, want 3 allowed / 1 denied", allowed, denied)
	}
}

// TestTokenBucketRefills: after Retry-After elapses, the next request is
// admitted; refill never exceeds the burst.
func TestTokenBucketRefills(t *testing.T) {
	b, clk := testBucket(10, 2)
	b.Allow()
	b.Allow()
	if ok, _ := b.Allow(); ok {
		t.Fatal("empty bucket admitted")
	}
	clk.advance(100 * time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("bucket did not refill after 1/rate")
	}
	// A long idle period refills to burst (2), not beyond.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 5; i++ {
		if ok, _ := b.Allow(); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after long idle, want burst cap 2", admitted)
	}
}

// TestTokenBucketUnlimited: a non-positive rate admits everything.
func TestTokenBucketUnlimited(t *testing.T) {
	b, _ := testBucket(0, 1)
	for i := 0; i < 1000; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatal("unlimited bucket denied")
		}
	}
}

// TestAdmissionClassesAreIndependent: exhausting one class's bucket
// leaves the others admitting, and overrides replace the default rate.
func TestAdmissionClassesAreIndependent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		Rate:  1000,
		Burst: 2,
		ClassRate: map[AdmissionClass]float64{
			AdmitPlan: 0.001, // effectively one request, then denials
			AdmitMeta: -1,    // unlimited
		},
	})
	if ok, _ := a.Admit(AdmitPlan); !ok {
		t.Fatal("first plan request denied")
	}
	if ok, _ := a.Admit(AdmitPlan); !ok {
		t.Fatal("plan burst of 2 denied early")
	}
	ok, retry := a.Admit(AdmitPlan)
	if ok {
		t.Fatal("plan class not exhausted after burst")
	}
	if retry <= 0 {
		t.Fatalf("retry-after = %v, want positive", retry)
	}
	// Campaign still has its full burst despite plan's exhaustion.
	for i := 0; i < 2; i++ {
		if ok, _ := a.Admit(AdmitCampaign); !ok {
			t.Fatal("campaign class starved by plan exhaustion")
		}
	}
	for i := 0; i < 10; i++ {
		if ok, _ := a.Admit(AdmitMeta); !ok {
			t.Fatal("unlimited meta class denied")
		}
	}

	stats := a.Stats()
	byClass := make(map[AdmissionClass]AdmissionStats)
	for _, s := range stats {
		byClass[s.Class] = s
	}
	if s := byClass[AdmitPlan]; s.Allowed != 2 || s.Denied != 1 {
		t.Fatalf("plan stats = %+v, want 2 allowed / 1 denied", s)
	}
	if s := byClass[AdmitMeta]; s.Allowed != 10 || s.Denied != 0 {
		t.Fatalf("meta stats = %+v", s)
	}
}

// TestAdmissionUnknownClassAdmitted: a routing bug must not become an
// outage.
func TestAdmissionUnknownClassAdmitted(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Rate: 0.001, Burst: 1})
	if ok, _ := a.Admit(AdmissionClass("mystery")); !ok {
		t.Fatal("unknown class denied")
	}
}
