package zeppelin

import (
	"context"
	"fmt"
	"io"

	"zeppelin/internal/experiments"
	"zeppelin/internal/runner"
	"zeppelin/internal/workload"
)

// Options control experiment fidelity and execution for the experiment
// entry points.
type Options struct {
	// Seeds is the number of independently sampled batches (or
	// campaigns) averaged per cell; <= 0 selects 3.
	Seeds int
	// Workers bounds the concurrent simulation pool; <= 0 selects
	// GOMAXPROCS. Results are bit-identical at every worker count.
	Workers int
}

// Experiments lists every runnable experiment name in paper order —
// the valid inputs to RunExperiment, RenderExperiment, and the
// /v1/experiments/{name} endpoint ("all" is additionally accepted by
// the CLI and expands to this sequence).
func Experiments() []string {
	return []string{"fig1", "table2", "fig3", "fig5", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "table3"}
}

// IsExperiment reports whether name is a runnable experiment.
func IsExperiment(name string) bool {
	for _, k := range Experiments() {
		if k == name {
			return true
		}
	}
	return false
}

// opts maps public options (plus a context and an optional shared
// engine) onto the internal experiment options.
func (o Options) internal(ctx context.Context, eng *runner.Engine) experiments.Options {
	return experiments.Options{Seeds: o.Seeds, Workers: o.Workers, Engine: eng, Ctx: ctx}
}

// engine builds the shared engine one invocation's experiments run on.
func (o Options) engine() *runner.Engine {
	return runner.New(runner.Options{Workers: o.Workers})
}

// RunExperiment computes one experiment's structured result — the JSON
// document the /v1/experiments/{name} endpoint serves. Cancelling ctx
// stops the experiment's simulation grid and returns ctx.Err().
func RunExperiment(ctx context.Context, name string, o Options) (any, error) {
	return runExperiment(name, o.internal(ctx, o.engine()))
}

// runExperiment dispatches one experiment on resolved internal options.
func runExperiment(name string, opts experiments.Options) (any, error) {
	switch name {
	case "fig1":
		return experiments.Fig1(), nil
	case "table2":
		return workload.Eval, nil
	case "fig3":
		return experiments.Fig3All(opts)
	case "fig5":
		return experiments.Fig5(), nil
	case "fig8":
		return experiments.Fig8(opts)
	case "fig9":
		return experiments.Fig9(opts)
	case "fig10":
		return experiments.Fig10(opts)
	case "fig11":
		return experiments.Fig11(opts)
	case "fig12":
		return experiments.Fig12Traces(opts)
	case "fig13":
		return experiments.Fig13(opts)
	case "fig14":
		return experiments.Fig14(opts)
	case "fig15":
		return experiments.Fig15(opts)
	case "fig16":
		return experiments.Fig16(opts)
	case "table3":
		return experiments.Table3Opts(opts)
	}
	return nil, fmt.Errorf("zeppelin: unknown experiment %q", name)
}

// RenderExperiment writes one experiment's paper-style text rendering.
func RenderExperiment(ctx context.Context, w io.Writer, name string, o Options) error {
	return renderExperiment(w, name, o.internal(ctx, o.engine()))
}

// renderExperiment dispatches one rendering on resolved options.
func renderExperiment(w io.Writer, name string, opts experiments.Options) error {
	switch name {
	case "fig1":
		experiments.WriteFig1(w)
		return nil
	case "table2":
		experiments.WriteTable2(w)
		return nil
	case "fig3":
		return experiments.WriteFig3(w, opts)
	case "fig5":
		experiments.WriteFig5(w)
		return nil
	case "fig8":
		return experiments.WriteFig8(w, opts)
	case "fig9":
		return experiments.WriteFig9(w, opts)
	case "fig10":
		return experiments.WriteFig10(w, opts)
	case "fig11":
		return experiments.WriteFig11(w, opts)
	case "fig12":
		return experiments.WriteFig12(w, opts)
	case "fig13":
		return experiments.WriteFig13(w, opts)
	case "fig14":
		return experiments.WriteFig14(w, opts)
	case "fig15":
		return experiments.WriteFig15(w, opts)
	case "fig16":
		return experiments.WriteFig16(w, opts)
	case "table3":
		cols, err := experiments.Table3Opts(opts)
		if err != nil {
			return err
		}
		return experiments.RenderTable3(w, cols)
	}
	return fmt.Errorf("zeppelin: unknown experiment %q", name)
}

// NamedResult pairs an experiment name with its structured result — the
// element of the `all` JSON artifact (an ordered array, not a map, so
// the paper ordering survives encoding).
type NamedResult struct {
	Name   string `json:"name"`
	Result any    `json:"result"`
}

// RunAllExperiments computes every experiment in paper order on one
// shared engine, so cells common to several figures simulate once.
func RunAllExperiments(ctx context.Context, o Options) ([]NamedResult, error) {
	opts := o.internal(ctx, o.engine())
	out := make([]NamedResult, 0, len(Experiments()))
	for _, name := range Experiments() {
		r, err := runExperiment(name, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, NamedResult{Name: name, Result: r})
	}
	return out, nil
}

// RenderAllExperiments renders every experiment in paper order on one
// shared engine, under `================ name ================` banners.
func RenderAllExperiments(ctx context.Context, w io.Writer, o Options) error {
	opts := o.internal(ctx, o.engine())
	for _, name := range Experiments() {
		fmt.Fprintf(w, "\n================ %s ================\n", name)
		if err := renderExperiment(w, name, opts); err != nil {
			return err
		}
	}
	return nil
}

// ThroughputRequest asks for one cell's seed-averaged throughput — the
// building block of the compare and moe examples.
type ThroughputRequest struct {
	// Model names the transformer preset; empty selects "7B".
	Model string `json:"model,omitempty"`
	// Cluster is the simulated cell.
	Cluster ClusterSpec `json:"cluster,omitempty"`
	// Dataset names the length distribution; empty selects "arxiv".
	Dataset string `json:"dataset,omitempty"`
	// Method is the scheduling method; empty selects "zeppelin".
	Method string `json:"method,omitempty"`
	// Seeds is the number of sampled batches averaged; <= 0 selects 3.
	Seeds int `json:"seeds,omitempty"`
}

// MeanThroughput runs the requested method on Seeds independently
// sampled batches and returns the mean tokens/second.
func MeanThroughput(ctx context.Context, req ThroughputRequest) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	cfg, d, m, err := PlanRequest{
		Model: req.Model, Cluster: req.Cluster, Dataset: req.Dataset, Method: req.Method,
	}.resolve()
	if err != nil {
		return 0, err
	}
	seeds := req.Seeds
	if seeds <= 0 {
		seeds = 3
	}
	cell := experiments.Cell{
		Model: cfg.Model, Spec: cfg.Spec, Nodes: cfg.Nodes,
		TP: cfg.TP, TokensPerGPU: cfg.TokensPerGPU,
	}
	return experiments.MeanThroughput(ctx, cell, d.Batch, m, seeds)
}
