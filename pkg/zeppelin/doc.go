// Package zeppelin is the public, versioned v1 API of the Zeppelin
// simulator: a curated surface over the internal packages that lets any
// Go program — and, through cmd/zeppelind, any HTTP client — plan a
// batch, stream a long-horizon campaign, regenerate a paper experiment,
// or benchmark the planner fast path, without importing internal/.
//
// The surface is deliberately small and wire-stable:
//
//   - Planner / PlanRequest / PlanResponse — one-shot partition+remap
//     planning of a sampled batch, with a simulated-iteration readout.
//     NewPlanner takes functional options; WithIncremental backs it by
//     the stateful incremental re-planner (bit-identical in exact mode),
//     and WithParallelSolve fans each partition solve across a worker
//     pool (zeppelind's -solve-workers flag). Plans are bit-identical
//     at every worker count; responses name the active path in
//     PlanResponse.SolveMode ("serial" / "parallel-N"). The incremental
//     patch path is allocation-free in its steady state — the property
//     BenchmarkFig15PlanIncrementalReuse pins at 0 allocs/op in CI.
//   - Campaign / CampaignRequest / CampaignEvent — iterator-style
//     streaming of a multi-iteration campaign: NewCampaign resolves the
//     request, Start binds a context, and each Next call simulates
//     exactly one iteration and returns its event. Draining a Campaign
//     is bit-identical to the internal all-at-once runner. An optional
//     AutoscaleSpec (parseable from flag syntax via ParseAutoscaleSpec)
//     attaches the autoscaler: the world grows and shrinks with
//     observed queue depth and utilization through the elastic-rescale
//     path, bounded per step, cooled down between moves, and clamped
//     to [1, cluster capacity].
//   - RunTune / TuneRequest / TuneReport — closed-loop policy tuning:
//     a multi-objective fitness function (goodput, p99 iteration time,
//     migration cost, utilization; TuneWeights normalized, fitness 1.0
//     pinned to the hand-tuned baseline) evaluated by running full
//     campaigns, searched over a declared space grammar by grid
//     seeding plus a mutation/selection loop. The report carries the
//     per-candidate fitness breakdown and the winner's ready-to-paste
//     flag set, and is bit-identical at every Workers count.
//   - ServeSpec / ParseServeSpec / CompareServeRoutes — serving
//     scenarios: the -serve flag grammar (multi-client arrivals, rate
//     windows, SLO classes, sessions/prefixes) as a wire object on
//     CampaignRequest.Serve, the balance-vs-affinity routing comparison
//     grid, and trace-replay v2 (GenerateServeTimeline,
//     WriteServeTrace/ReadServeTrace round-trip the timestamped NDJSON
//     trace format bit-identically). Serve reports carry per-SLO-class
//     metrics (ClassMetrics); IsValidationError distinguishes client
//     mistakes — bad specs, NaN dataset weights, broken traces — from
//     engine failures, which zeppelind maps to 400 vs 500.
//   - RunExperiment / RenderExperiment — every paper table and figure by
//     name ("fig8", "table3", …), structured or paper-style text.
//   - CompareCampaigns — the CLI's (method × seed) campaign comparison
//     grid, with JSON and text artifact writers.
//   - RunPlannerBench — the fig15 planner fast-path measurement in the
//     shared benchfmt artifact schema, sweeping world sizes up to the
//     8192-rank tail of the Fig. 15 grid (BenchOptions.SolveWorkers
//     fans the full solve to keep large worlds routine).
//   - Version / APIVersion — build and API-revision identification.
//
// Every entry point takes a context.Context and honors cancellation:
// campaigns stop between iterations, experiment grids stop between
// simulation jobs, and the bounded worker pools drain without leaking
// goroutines. All request and response structs marshal to a JSON wire
// schema that is pinned by golden tests (testdata/*.golden.json) and
// served verbatim by the zeppelind daemon under /v1.
//
// The JSON error shape every /v1 endpoint returns on failure is
// ErrorBody: {"error":{"code":"...","message":"..."}}.
package zeppelin
