package zeppelin

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"zeppelin/internal/campaign"
	"zeppelin/internal/decision"
	"zeppelin/internal/experiments"
	"zeppelin/internal/trace"
)

// Default campaign knobs, re-exported for clients that surface them
// (the CLI's -threshold and -replan-cost flags).
const (
	// DefaultThreshold is the imbalance ratio the threshold policy
	// replans at when PolicySpec.Threshold is zero.
	DefaultThreshold = campaign.DefaultThreshold
	// DefaultReplanCostSec is the per-replan coordination charge when
	// CampaignRequest.ReplanCostSec is zero.
	DefaultReplanCostSec = campaign.DefaultReplanCost
)

// Campaign is an in-flight streaming campaign: the iterator-style public
// face of the internal campaign engine. NewCampaign resolves the request
// (building the session-owned planner when Incremental is set), Start
// binds the context that governs the run, and each Next call simulates
// exactly one iteration and returns its event — the consumption model
// the zeppelind NDJSON endpoint streams over HTTP.
//
// A Campaign runs once: Start claims it, and a second Start returns an
// error. Next/Err/Report must be called from one goroutine (the stream
// is serial by construction).
type Campaign struct {
	cfg   campaign.Config
	trace *decision.Trace

	mu      sync.Mutex
	started bool

	st *campaign.Stream
}

// CampaignOption configures NewCampaign beyond the wire request.
type CampaignOption func(*campaignOptions)

type campaignOptions struct {
	cache     *PlanCache
	decisions bool
	flip      *FlipSpec
}

// WithCampaignPlanCache wires the campaign's session-owned planner to a
// process-wide shared plan cache: exact full-solve results are probed
// and published across sessions and plan requests. Reuse is
// bit-identical, so the event stream does not depend on cache state. A
// nil cache is ignored.
func WithCampaignPlanCache(c *PlanCache) CampaignOption {
	return func(o *campaignOptions) { o.cache = c }
}

// WithCampaignDecisions records every replan/admission/placement choice
// the campaign makes; the trace is readable through Campaign.Decisions
// while the stream runs and after it completes. Decision traces are
// deterministic per (request, seed): the same campaign produces a
// byte-identical decision log at any worker count.
func WithCampaignDecisions() CampaignOption {
	return func(o *campaignOptions) { o.decisions = true }
}

// WithCampaignFlip overrides the replan verdict at exactly one
// iteration — the counterfactual replay hook. Forced decisions (first
// iteration, post-resize) are not flippable; a flip agreeing with the
// factual verdict leaves the stream bit-identical. Implies decision
// recording so the flipped record is observable.
func WithCampaignFlip(f FlipSpec) CampaignOption {
	return func(o *campaignOptions) { o.flip = &f }
}

// NewCampaign resolves the request into a runnable campaign. The
// request's method instance — including the incremental planner when
// requested — is owned by this campaign alone.
func NewCampaign(req CampaignRequest, opts ...CampaignOption) (*Campaign, error) {
	var o campaignOptions
	for _, opt := range opts {
		opt(&o)
	}
	cfg, err := req.configWith(o.cache)
	if err != nil {
		return nil, err
	}
	c := &Campaign{cfg: cfg}
	if o.flip != nil {
		fl, err := o.flip.flip()
		if err != nil {
			return nil, err
		}
		c.cfg.Flip = fl
		o.decisions = true
	}
	if o.decisions {
		c.trace = &decision.Trace{}
		c.cfg.Decisions = c.trace
	}
	return c, nil
}

// Start begins the stream under ctx: once the context is cancelled the
// next Next call stops the campaign and Err reports ctx.Err(). Starting
// an already-started campaign is an error.
func (c *Campaign) Start(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("zeppelin: campaign already started")
	}
	st, err := campaign.Start(ctx, c.cfg)
	if err != nil {
		return err
	}
	c.started = true
	c.st = st
	return nil
}

// Next simulates the next iteration and returns its event. It returns
// ok=false when the campaign completed, its context was cancelled, or an
// iteration failed — Err distinguishes the three (nil on completion).
func (c *Campaign) Next() (CampaignEvent, bool) {
	if c.st == nil {
		return CampaignEvent{}, false
	}
	rec, ok := c.st.Next()
	if !ok {
		return CampaignEvent{}, false
	}
	return eventOf(rec), true
}

// Err reports why the stream stopped; nil while events keep coming and
// after a complete campaign.
func (c *Campaign) Err() error {
	if c.st == nil {
		return nil
	}
	return c.st.Err()
}

// Iters is the campaign horizon the request asked for.
func (c *Campaign) Iters() int { return c.cfg.Iters }

// Decisions snapshots the decision records accumulated so far (empty
// without WithCampaignDecisions). Safe to call while the stream runs —
// records accumulate in iteration order from the campaign goroutine.
func (c *Campaign) Decisions() []DecisionRecord {
	if c.trace == nil {
		return nil
	}
	recs := c.trace.Records()
	out := make([]DecisionRecord, len(recs))
	for i, r := range recs {
		out[i] = decisionOf(r)
	}
	return out
}

// Report returns the wire report accumulated so far; after Next has
// returned false it is finalized over the events that ran.
func (c *Campaign) Report() *CampaignReport {
	if c.st == nil {
		return &CampaignReport{Events: []CampaignEvent{}}
	}
	rep := c.st.Report()
	out := &CampaignReport{
		Summary:     summaryOf(rep.Summary),
		PerRankUtil: rep.PerRankUtil,
		Events:      make([]CampaignEvent, len(rep.Records)),
	}
	for i, rec := range rep.Records {
		out.Events[i] = eventOf(rec)
	}
	for _, cm := range rep.Classes {
		out.Classes = append(out.Classes, classMetricsOf(cm))
	}
	return out
}

// StartCampaign is NewCampaign followed by Start.
func StartCampaign(ctx context.Context, req CampaignRequest) (*Campaign, error) {
	c, err := NewCampaign(req)
	if err != nil {
		return nil, err
	}
	if err := c.Start(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// RunCampaign drains a campaign to completion and returns its report —
// the one-call form of the streaming API, bit-identical to consuming the
// events one by one.
func RunCampaign(ctx context.Context, req CampaignRequest) (*CampaignReport, error) {
	c, err := StartCampaign(ctx, req)
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return c.Report(), nil
}

// CampaignComparison is the artifact of one comparison grid: the
// paper's four methods (plus, per request, the incremental Zeppelin
// planner) streamed through the same arrival/policy/faults cell across
// seeds. It marshals to the same JSON shape the zeppelin CLI has always
// emitted and renders the same text table and timeline.
type CampaignComparison struct {
	iters   int
	arrival string
	policy  string
	faults  string
	seeds   int
	rows    []campaign.RowSummary
	reports []*campaign.Report
}

// CompareCampaigns runs the campaign comparison grid: every compared
// method under the request's cell, arrival, policy, and fault schedule,
// `seeds` independent campaigns each, fanned over a bounded pool of
// `workers`. The request's Method and Seed fields are ignored — the
// comparison always covers the full method set, and each grid cell is
// seeded SeedValue(s) so the rows reproduce the fig13 experiment and
// individual cells can be replayed through the streaming API. Results
// are bit-identical at every worker count; cancelling ctx stops the
// grid and returns ctx.Err().
func CompareCampaigns(ctx context.Context, req CampaignRequest, seeds, workers int) (*CampaignComparison, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("zeppelin: seeds must be >= 1, got %d", seeds)
	}
	methods := Methods()
	var cfgs []campaign.Config
	for _, m := range methods {
		for s := 0; s < seeds; s++ {
			r := req
			r.Method = m.ID
			// Seed the grid exactly like fig13 so CLI campaigns and the
			// experiment stream identical per-seed batches.
			r.Seed = SeedValue(s)
			cfg, err := r.config()
			if err != nil {
				return nil, err
			}
			cfgs = append(cfgs, cfg)
		}
	}
	reports, err := campaign.RunGrid(ctx, cfgs, workers)
	if err != nil {
		return nil, err
	}
	// Labels come from the drained summary rather than the config: serve
	// campaigns have no Arrival/Policy objects (the serve spec owns the
	// stream), and for training campaigns the summary carries the exact
	// same names.
	cmp := &CampaignComparison{
		iters:   req.Iters,
		arrival: reports[0].Summary.Arrival,
		policy:  reports[0].Summary.Policy,
		seeds:   seeds,
	}
	if cfgs[0].Faults != nil {
		cmp.faults = cfgs[0].Faults.Name
	}
	for m := range methods {
		cell := reports[m*seeds : (m+1)*seeds]
		cmp.rows = append(cmp.rows, campaign.Summarize(cell))
		cmp.reports = append(cmp.reports, cell[0])
	}
	return cmp, nil
}

// SeedValue is the per-seed RNG base every figure and campaign grid has
// always used (delegating to the experiments package's formula so the
// public API can never drift from fig13's seeding); exposed so clients
// can reproduce individual grid cells through the streaming API.
func SeedValue(s int) int64 { return experiments.SeedValue(s) }

// MarshalJSON emits the comparison in the CLI's campaign artifact shape.
func (a *CampaignComparison) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Iters   int                   `json:"iters"`
		Arrival string                `json:"arrival"`
		Policy  string                `json:"policy"`
		Faults  string                `json:"faults,omitempty"`
		Seeds   int                   `json:"seeds"`
		Rows    []campaign.RowSummary `json:"rows"`
		Reports []*campaign.Report    `json:"reports"`
	}{a.iters, a.arrival, a.policy, a.faults, a.seeds, a.rows, a.reports})
}

// WriteJSON emits the indented JSON artifact.
func (a *CampaignComparison) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteText renders the seed-averaged comparison table and the last
// method's (Zeppelin's) seed-0 iteration timeline — the CLI rendering.
func (a *CampaignComparison) WriteText(w io.Writer) error {
	label := ""
	if a.faults != "" {
		label = ", faults " + a.faults
	}
	fmt.Fprintf(w, "streaming campaign: %d iterations, arrival %s, policy %s%s, %d seed(s)\n\n",
		a.iters, a.arrival, a.policy, label, a.seeds)
	campaign.WriteRowTable(w, a.rows)
	last := a.reports[len(a.reports)-1]
	if len(last.Classes) > 0 {
		fmt.Fprintf(w, "\n%s per-class serving metrics (seed 0):\n", last.Summary.Method)
		campaign.WriteClassTable(w, last.Classes)
	}
	fmt.Fprintf(w, "\n%s campaign (seed 0):\n", last.Summary.Method)
	trace.CampaignTimeline(w, last.TraceRows(), 60, 25)
	return nil
}
