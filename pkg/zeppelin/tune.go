package zeppelin

import (
	"context"
	"fmt"
	"io"

	"zeppelin/internal/campaign"
	"zeppelin/internal/tune"
)

// Defaults of the tune surface: the evaluation horizon is deliberately
// shorter than a full campaign — the search runs Budget × Seeds whole
// campaigns — and the budget matches the internal search default.
const (
	DefaultTuneIters  = 60
	DefaultTuneBudget = tune.DefaultBudget
)

// TuneRequest asks for a closed-loop policy search: sweep a declared
// parameter space over full campaign runs of the given scenario and
// return the configuration that maximizes the multi-objective fitness.
// The zero value tunes the default space (the threshold policy's replan
// ratio) on a steady ArXiv stream over the default cell.
type TuneRequest struct {
	// Model names the transformer preset; empty selects "7B".
	Model string `json:"model,omitempty"`
	// Cluster is the simulated cell.
	Cluster ClusterSpec `json:"cluster,omitempty"`
	// Workload is the arrival process of the evaluation scenario.
	Workload WorkloadSpec `json:"workload,omitempty"`
	// Faults names a deterministic fault scenario the evaluations run
	// under; empty or "none" runs healthy. Candidates that enable the
	// autoscaler under a fault schedule are invalid (they score zero).
	Faults string `json:"faults,omitempty"`
	// Method is the scheduling method under test; empty selects
	// "zeppelin".
	Method string `json:"method,omitempty"`
	// Space is the search-space grammar: comma-separated key=value
	// dimensions where a value is `a|b|c` (set), `lo:hi` (interval), or
	// a single literal (pinned). Keys: policy, threshold, every,
	// replan-cost, capacity, autoscale, up-util, down-util, cooldown,
	// step. Empty selects the default space.
	Space string `json:"space,omitempty"`
	// Budget is the candidate-evaluation budget; 0 selects the default.
	Budget int `json:"budget,omitempty"`
	// Iters is the per-evaluation campaign horizon; 0 selects the
	// default (DefaultTuneIters).
	Iters int `json:"iters,omitempty"`
	// Seeds is how many seeds each candidate averages over; 0 selects 1.
	Seeds int `json:"seeds,omitempty"`
	// Weights are the fitness weights (normalized to sum to 1); nil
	// selects the defaults.
	Weights *TuneWeights `json:"weights,omitempty"`
	// SearchSeed seeds the mutation stream; 0 selects 1.
	SearchSeed int64 `json:"search_seed,omitempty"`
	// Workers bounds the evaluation pool; 0 selects GOMAXPROCS. The
	// report is bit-identical at every worker count.
	Workers int `json:"workers,omitempty"`
}

// TuneWeights are the wire fitness weights; only their ratios matter.
type TuneWeights struct {
	// Goodput weights campaign throughput (higher better).
	Goodput float64 `json:"goodput,omitempty"`
	// P99 weights tail iteration time (lower better).
	P99 float64 `json:"p99,omitempty"`
	// Migration weights the migration bill: replan charges plus elastic
	// state-migration seconds (lower better).
	Migration float64 `json:"migration,omitempty"`
	// Utilization weights mean per-rank busy fraction (higher better).
	Utilization float64 `json:"utilization,omitempty"`
}

// TuneParams is the wire form of one candidate configuration.
type TuneParams struct {
	Policy     string  `json:"policy,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	Every      int     `json:"every,omitempty"`
	ReplanCost float64 `json:"replan_cost,omitempty"`
	Capacity   float64 `json:"capacity,omitempty"`
	Autoscale  bool    `json:"autoscale,omitempty"`
	UpUtil     float64 `json:"up_util,omitempty"`
	DownUtil   float64 `json:"down_util,omitempty"`
	Cooldown   int     `json:"cooldown,omitempty"`
	Step       int     `json:"step,omitempty"`
}

// TuneMetrics are one candidate's seed-averaged campaign observables.
type TuneMetrics struct {
	TokensPerSec    float64 `json:"tokens_per_sec"`
	P99IterTime     float64 `json:"p99_iter_time"`
	Replans         float64 `json:"replans"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	MigrationCost   float64 `json:"migration_cost"`
	MeanUtilization float64 `json:"mean_utilization"`
	DeferredTokens  float64 `json:"deferred_tokens"`
}

// TuneFitness is a candidate's scored breakdown: per-component
// candidate-vs-baseline improvement ratios (1 = parity, clamped to
// [0, 5]) and the weight-normalized Total. The baseline scores exactly 1.
type TuneFitness struct {
	Goodput     float64 `json:"goodput"`
	P99         float64 `json:"p99"`
	Migration   float64 `json:"migration"`
	Utilization float64 `json:"utilization"`
	Total       float64 `json:"total"`
}

// TuneCandidate is one evaluated configuration with its breakdown.
type TuneCandidate struct {
	// Key is the candidate's canonical identity; Flags is the
	// equivalent ready-to-paste `zeppelin campaign` flag set.
	Key    string     `json:"key"`
	Params TuneParams `json:"params"`
	Flags  string     `json:"flags"`
	// Invalid carries the validation error of a candidate the campaign
	// rejected (it scores zero and cannot win).
	Invalid string      `json:"invalid,omitempty"`
	Metrics TuneMetrics `json:"metrics"`
	Fitness TuneFitness `json:"fitness"`
}

// TuneReport is the wire artifact of one search.
type TuneReport struct {
	// Space echoes the swept grammar; Budget, Iters, Seeds, and Weights
	// echo the resolved search parameters.
	Space   string      `json:"space"`
	Budget  int         `json:"budget"`
	Iters   int         `json:"iters"`
	Seeds   int         `json:"seeds"`
	Weights TuneWeights `json:"weights"`
	// Evaluated counts candidate evaluations actually run.
	Evaluated int `json:"evaluated"`
	// Baseline is the hand-tuned default the fitness normalizes
	// against; Winner is the best candidate; Improved reports whether
	// the winner strictly beats the baseline.
	Baseline TuneCandidate `json:"baseline"`
	Winner   TuneCandidate `json:"winner"`
	Improved bool          `json:"improved"`
	// Candidates lists every evaluation in deterministic order.
	Candidates []TuneCandidate `json:"candidates"`
}

// Validate reports whether the request resolves to a runnable search
// without running it — the up-front check zeppelind uses to return
// structured 400s.
func (r TuneRequest) Validate() error {
	if _, err := tune.ParseSpace(r.Space); err != nil {
		return err
	}
	if r.Budget < 0 {
		return fmt.Errorf("zeppelin: tune budget must be >= 0, got %d", r.Budget)
	}
	if r.Weights != nil {
		if w := *r.Weights; w.Goodput < 0 || w.P99 < 0 || w.Migration < 0 || w.Utilization < 0 {
			return fmt.Errorf("zeppelin: tune weights must be >= 0")
		}
	}
	return r.scenarioRequest(0).Validate()
}

// scenarioRequest is the campaign request of one evaluation seed. The
// seed schedule matches the experiment grids (base seed plus 37 per
// index), so seed 0 is the exact campaign `zeppelin campaign` runs.
func (r TuneRequest) scenarioRequest(seedIdx int64) CampaignRequest {
	iters := r.Iters
	if iters == 0 {
		iters = DefaultTuneIters
	}
	return CampaignRequest{
		Model:    r.Model,
		Cluster:  r.Cluster,
		Workload: r.Workload,
		Policy:   PolicySpec{},
		Faults:   r.Faults,
		Method:   r.Method,
		Iters:    iters,
		Seed:     DefaultSeed + 37*seedIdx,
	}
}

// RunTune executes the search in-process: grid seeding plus a
// mutation/selection loop, every candidate evaluated by running full
// campaigns of the request's scenario. Evaluations fan across the
// worker pool and the report — winner included — is bit-identical at
// every worker count.
func RunTune(ctx context.Context, req TuneRequest) (*TuneReport, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	sp, err := tune.ParseSpace(req.Space)
	if err != nil {
		return nil, err
	}
	var weights tune.Weights
	if req.Weights != nil {
		weights = tune.Weights(*req.Weights)
	}
	iters := req.Iters
	if iters == 0 {
		iters = DefaultTuneIters
	}
	rep, err := tune.Search(ctx, tune.Options{
		Base: func(seed int64) campaign.Config {
			// The request validated above and resolution is
			// seed-independent, so per-seed failures cannot happen; a
			// zero Config from an impossible failure is caught by the
			// campaign's own validation.
			cfg, _ := req.scenarioRequest(seed).config()
			return cfg
		},
		Space:      sp,
		Budget:     req.Budget,
		Weights:    weights,
		Seeds:      req.Seeds,
		Iters:      iters,
		Workers:    req.Workers,
		SearchSeed: req.SearchSeed,
	})
	if err != nil {
		return nil, err
	}
	return tuneReportOf(rep), nil
}

// tuneReportOf converts the internal search report to its wire form.
func tuneReportOf(rep *tune.Report) *TuneReport {
	out := &TuneReport{
		Space:     rep.Space,
		Budget:    rep.Budget,
		Iters:     rep.Iters,
		Seeds:     rep.Seeds,
		Weights:   TuneWeights(rep.Weights),
		Evaluated: rep.Evaluated,
		Baseline:  tuneCandidateOf(rep.Baseline),
		Winner:    tuneCandidateOf(rep.Winner),
		Improved:  rep.Improved,
	}
	out.Candidates = make([]TuneCandidate, len(rep.Candidates))
	for i, c := range rep.Candidates {
		out.Candidates[i] = tuneCandidateOf(c)
	}
	return out
}

func tuneCandidateOf(c tune.Candidate) TuneCandidate {
	return TuneCandidate{
		Key:     c.Key,
		Params:  TuneParams(c.Params),
		Flags:   c.Flags,
		Invalid: c.Invalid,
		Metrics: TuneMetrics(c.Metrics),
		Fitness: TuneFitness(c.Fitness),
	}
}

// WriteText renders the tune report for terminals: the search header,
// the per-candidate fitness table (best first), and the winning
// configuration as a ready-to-paste flag set.
func (r *TuneReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "tune: space %q, budget %d (%d evaluated), %d iters x %d seed(s)\n",
		r.Space, r.Budget, r.Evaluated, r.Iters, r.Seeds)
	fmt.Fprintf(w, "weights: goodput %.2f  p99 %.2f  migration %.2f  utilization %.2f\n\n",
		r.Weights.Goodput, r.Weights.P99, r.Weights.Migration, r.Weights.Utilization)

	rows := append([]TuneCandidate{r.Baseline}, r.Candidates...)
	fmt.Fprintf(w, "  %-44s %8s %8s %8s %8s %8s\n",
		"candidate", "fitness", "goodput", "p99", "migrate", "util")
	for _, c := range rows {
		label := c.Key
		if c.Key == r.Baseline.Key {
			label += " (baseline)"
		}
		if c.Invalid != "" {
			fmt.Fprintf(w, "  %-44s %8s invalid: %s\n", label, "-", c.Invalid)
			continue
		}
		fmt.Fprintf(w, "  %-44s %8.4f %8.3f %8.3f %8.3f %8.3f\n",
			label, c.Fitness.Total, c.Fitness.Goodput, c.Fitness.P99,
			c.Fitness.Migration, c.Fitness.Utilization)
	}
	fmt.Fprintf(w, "\nwinner: %s (fitness %.4f", r.Winner.Key, r.Winner.Fitness.Total)
	if r.Improved {
		fmt.Fprintf(w, ", beats baseline %.4f)\n", r.Baseline.Fitness.Total)
	} else {
		fmt.Fprintf(w, "; baseline %.4f stands)\n", r.Baseline.Fitness.Total)
	}
	fmt.Fprintf(w, "flags:  %s\n", r.Winner.Flags)
}
