package zeppelin

import (
	"context"
	"fmt"
	"sync"

	"zeppelin/internal/partition"
	"zeppelin/internal/remap"
	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
	zep "zeppelin/internal/zeppelin"
)

// Planner answers one-shot plan requests: sample the batch, run the
// partitioner (and, for Zeppelin, the Eq. 2 remapping solve), then
// simulate the planned iteration end to end. A Planner is safe for
// concurrent use; plans are deterministic per request.
type Planner struct {
	mu          sync.Mutex
	incremental bool
	// inc is the session-owned incremental planner, built lazily on the
	// first Zeppelin plan and reused across calls so repeated or
	// slightly-churned batches hit its plan cache.
	inc *zep.Incremental
	// cache is the optional process-wide shared plan tier. Without
	// WithIncremental, each Zeppelin Plan call probes it through a
	// call-owned exact-mode planner — concurrent requests never
	// serialize, and responses stay bit-identical at every cache state.
	cache *PlanCache
	// solveWorkers fans each Zeppelin partition solve across a worker
	// pool (0 = option unset, keep the serial default). Plans are
	// bit-identical at every worker count.
	solveWorkers int
}

// PlannerOption configures NewPlanner.
type PlannerOption func(*Planner)

// WithIncremental backs the planner's Zeppelin plans by the stateful
// incremental re-planner: exact-mode caching and delta patching across
// Plan calls, bit-identical plans, PlanMode reported in responses.
func WithIncremental() PlannerOption {
	return func(p *Planner) { p.incremental = true }
}

// WithParallelSolve fans every Zeppelin partition solve this planner
// runs across a pool of workers: the Alg. 1 threshold retries are
// evaluated speculatively and the per-node Alg. 2 solves run
// concurrently. Plans are bit-identical at every worker count — the
// option trades CPU for planning latency, never placement — and
// responses report the active mode in PlanResponse.SolveMode ("serial"
// or "parallel-N"). workers <= 0 leaves the planner on its serial
// default with no mode reported, so the option composes with
// flag-driven wiring (a zero flag value is a no-op).
func WithParallelSolve(workers int) PlannerOption {
	return func(p *Planner) {
		if workers > 0 {
			p.solveWorkers = workers
		}
	}
}

// WithPlanCache shares a process-wide plan cache tier across this
// planner's Zeppelin plans. Exact repeats of (cluster view, capacity,
// batch) reuse the solved partition plan instead of re-solving; hits
// are bit-identical to full solves, so responses are unchanged by cache
// state. Unlike WithIncremental, cache-backed stateless plans do not
// serialize concurrent callers and do not report PlanMode (a response
// must not leak whether the cache was warm). A nil cache is ignored.
func WithPlanCache(c *PlanCache) PlannerOption {
	return func(p *Planner) { p.cache = c }
}

// NewPlanner builds a planner; see the options for behavior switches.
func NewPlanner(opts ...PlannerOption) *Planner {
	p := &Planner{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// method resolves the request's method, swapping in the session-owned
// incremental planner when enabled and the request asks for Zeppelin.
func (p *Planner) method(req PlanRequest) (trainer.Method, *zep.Incremental, error) {
	m, err := methodByID(req.Method)
	if err != nil {
		return nil, nil, err
	}
	zm, ok := m.(zep.Method)
	if !ok {
		return m, nil, nil
	}
	// The solve fan-out rides the method value: every path below —
	// stateless, cache-backed, incremental — plans through this zm, so
	// one assignment covers them all. Bit-identical plans either way.
	zm.SolveWorkers = p.solveWorkers
	if !p.incremental {
		if p.cache != nil {
			// Call-owned exact-mode planner over the shared tier: probes
			// and publishes full solves, holds no cross-call state, and
			// therefore needs no planner lock. Exact mode keeps the result
			// bit-identical to the stateless solve.
			return zep.NewIncremental(zm, partition.IncrementalConfig{
				Shared: p.cache.sharedTier(),
			}), nil, nil
		}
		return zm, nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inc == nil {
		p.inc = zep.NewIncremental(zm, partition.IncrementalConfig{
			Shared: p.cache.sharedTier(),
		})
	}
	return p.inc, p.inc, nil
}

// planCarrier is implemented by placements that expose their partition
// plan (the Zeppelin planners do; even-split baselines have none).
type planCarrier interface{ Plan() *seq.Plan }

// solveMode names the planner's partition-solve path for the wire:
// "serial" / "parallel-N" once WithParallelSolve has pinned a worker
// count, empty otherwise.
func (p *Planner) solveMode() string {
	switch {
	case p.solveWorkers <= 0:
		return ""
	case p.solveWorkers == 1:
		return "serial"
	default:
		return fmt.Sprintf("parallel-%d", p.solveWorkers)
	}
}

// remapCarrier is implemented by placements that expose their Eq. 2
// remapping solution.
type remapCarrier interface{ RemapPlan() *remap.Plan }

// Plan resolves the request, plans the sampled batch, and simulates the
// resulting iteration. The context is checked between the planning and
// simulation stages; a cancelled context returns ctx.Err().
func (p *Planner) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg, dataset, _, err := req.resolve()
	if err != nil {
		return nil, err
	}
	m, inc, err := p.method(req)
	if err != nil {
		return nil, err
	}
	batch := cfg.Batch(dataset.Batch)

	// Only the incremental planner carries shared mutable state; the
	// stateless path builds a fresh method, env, and batch per call, so
	// concurrent stateless plans run unserialized.
	lock := func() {
		if inc != nil {
			p.mu.Lock()
		}
	}
	unlock := func() {
		if inc != nil {
			p.mu.Unlock()
		}
	}

	// Planning pass: build the placement once to read the plan facts.
	lock()
	env, err := cfg.NewEnv()
	if err != nil {
		unlock()
		return nil, err
	}
	pl, err := m.Plan(env, batch)
	if err != nil {
		unlock()
		return nil, err
	}
	resp := &PlanResponse{
		Method: m.Name(),
		World:  env.C.World(),
		Seqs:   len(batch),
		Tokens: seq.TotalLen(batch),
	}
	if pc, ok := pl.(planCarrier); ok {
		// A partition plan exists, so the hierarchical solve ran: report
		// which solve path produced it (empty when WithParallelSolve was
		// never configured, preserving the historical wire shape).
		resp.SolveMode = p.solveMode()
		plan := pc.Plan()
		resp.TokensPerRank = plan.TokensPerRank()
		resp.Imbalance = partition.LoadImbalance(plan, nil)
		for _, ls := range plan.Local {
			resp.LocalSeqs += len(ls)
		}
		resp.RingSeqs = len(plan.Rings)
	}
	if rc, ok := pl.(remapCarrier); ok {
		if rp := rc.RemapPlan(); rp != nil {
			resp.RemapTransfers = len(rp.Transfers)
			resp.RemapInterTokens = rp.InterTokens
		}
	}
	if inc != nil {
		resp.PlanMode = inc.LastStats().Mode.String()
	}
	unlock()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Simulation pass: the end-to-end iteration readout, reusing the
	// placement and environment the planning pass built so the partition
	// is solved exactly once per request.
	res, err := trainer.RunPlanned(cfg, m.Name(), env, pl, batch)
	if err != nil {
		return nil, err
	}
	resp.IterTimeSec = res.IterTime
	resp.TokensPerSec = res.TokensPerSec
	resp.HostOverheadSec = res.HostOverhead
	return resp, nil
}

// Plan is the package-level convenience: a fresh stateless Planner
// answering one request.
func Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	return NewPlanner().Plan(ctx, req)
}
