package zeppelin

import (
	"bytes"
	"context"
	"testing"
)

// replayCell is a fig13-style drifting campaign on the small cell: the
// threshold controller fires mid-stream, so there are non-forced replan
// verdicts to flip.
func replayCell(iters int) CampaignRequest {
	return CampaignRequest{
		Model:       "3B",
		Cluster:     ClusterSpec{Preset: "A", Nodes: 1},
		Workload:    WorkloadSpec{Arrival: "drift"},
		Policy:      PolicySpec{Name: "threshold"},
		Iters:       iters,
		Incremental: true,
	}
}

// TestReplayNoFlipBitIdentical: replaying with zero flips reproduces
// the factual stream byte for byte, and the decision logs match too.
func TestReplayNoFlipBitIdentical(t *testing.T) {
	req := ReplayRequest{Campaign: replayCell(15)}
	rep, err := RunReplay(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical || rep.Flipped {
		t.Fatalf("no-flip replay: identical=%v flipped=%v, want true/false", rep.Identical, rep.Flipped)
	}
	if rep.Counterfactual != nil || rep.Delta != nil {
		t.Fatal("identical replay must omit counterfactual and delta")
	}
	if rep.Factual.Iters != 15 {
		t.Fatalf("factual summary has %d iters, want 15", rep.Factual.Iters)
	}
}

// TestReplayFlipReportsDelta: flipping one executed replan to reuse on
// a drift stream yields a nonzero goodput/p99 delta.
func TestReplayFlipReportsDelta(t *testing.T) {
	const iters = 30
	// Locate a non-forced executed replan in the factual run.
	fact, err := drainCampaign(context.Background(), replayCell(iters), WithCampaignDecisions())
	if err != nil {
		t.Fatal(err)
	}
	flipIter := -1
	for _, d := range fact.decisions {
		if d.Kind == "replan" && d.Chosen == "replan" && !d.Forced {
			flipIter = d.Iter
			break
		}
	}
	if flipIter < 0 {
		t.Fatal("factual run has no non-forced replan to flip")
	}

	rep, err := RunReplay(context.Background(), ReplayRequest{
		Campaign: replayCell(iters),
		Flip:     &FlipSpec{Iter: flipIter, Decision: "reuse"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Flipped || rep.Identical {
		t.Fatalf("flip replay: flipped=%v identical=%v, want true/false", rep.Flipped, rep.Identical)
	}
	if rep.Counterfactual == nil || rep.Delta == nil {
		t.Fatal("flipped replay must carry counterfactual and delta")
	}
	if rep.Delta.TokensPerSecPct == 0 && rep.Delta.P99IterTimePct == 0 {
		t.Fatalf("flip produced a zero goodput and p99 delta: %+v", rep.Delta)
	}
	// Flipping a replan to reuse cannot add replans: at worst the policy
	// fires one iteration later (the skeleton is still stale), at best
	// the replan disappears entirely.
	if rep.Delta.Replans > 0 {
		t.Fatalf("flipping a replan to reuse added replans: %+d", rep.Delta.Replans)
	}

	var buf bytes.Buffer
	rep.WriteText(&buf)
	if buf.Len() == 0 {
		t.Fatal("WriteText produced no output")
	}
}

// TestReplayFlipValidation: malformed flips are rejected up front.
func TestReplayFlipValidation(t *testing.T) {
	for _, f := range []FlipSpec{
		{Iter: -1, Decision: "reuse"},
		{Iter: 3, Decision: "maybe"},
	} {
		_, err := RunReplay(context.Background(), ReplayRequest{Campaign: replayCell(5), Flip: &f})
		if err == nil {
			t.Fatalf("flip %+v accepted", f)
		}
	}
}

// TestReplayNoopFlipIdentical: a flip that targets a forced decision
// reports no effect and a bit-identical stream.
func TestReplayNoopFlipIdentical(t *testing.T) {
	rep, err := RunReplay(context.Background(), ReplayRequest{
		Campaign: replayCell(10),
		Flip:     &FlipSpec{Iter: 0, Decision: "reuse"}, // iter 0 is forced
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flipped || !rep.Identical {
		t.Fatalf("forced-target flip: flipped=%v identical=%v, want false/true", rep.Flipped, rep.Identical)
	}
}

// TestDecisionNDJSONSessionStamp: the session id lands first on every
// line and the grep key survives.
func TestDecisionNDJSONSessionStamp(t *testing.T) {
	fact, err := drainCampaign(context.Background(), replayCell(5), WithCampaignDecisions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fact.decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	var buf bytes.Buffer
	if err := WriteDecisionNDJSON(&buf, "c42", fact.decisions); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) != len(fact.decisions) {
		t.Fatalf("%d NDJSON lines for %d records", len(lines), len(fact.decisions))
	}
	for _, line := range lines {
		if !bytes.HasPrefix(line, []byte(`{"session":"c42","iter":`)) {
			t.Fatalf("line missing session prefix: %s", line)
		}
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"kind":"replan","chosen":"replan"`)) {
		t.Fatal("decision log lost the replan grep key")
	}
}
