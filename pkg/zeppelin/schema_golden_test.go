package zeppelin

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the wire-schema golden files")

// canonicalFixtures are fully-populated instances of every v1 wire
// struct. Marshalling them and diffing against the checked-in goldens
// pins the JSON schema: an accidental field rename, type change, or tag
// edit fails this test instead of silently breaking zeppelind clients.
// Additive optional fields are schema-compatible — update the goldens
// with `go test ./pkg/zeppelin -run WireSchema -update`.
func canonicalFixtures() map[string]any {
	return map[string]any{
		"plan_request": PlanRequest{
			Model: "7B",
			Cluster: ClusterSpec{
				Preset: "A", Nodes: 2, TP: 1, TokensPerGPU: 4096,
			},
			Dataset: "arxiv",
			Method:  "zeppelin",
			Seed:    42,
		},
		"plan_response": PlanResponse{
			Method:           "Zeppelin",
			World:            16,
			Seqs:             12,
			Tokens:           65536,
			TokensPerRank:    []int{4096, 4096},
			Imbalance:        1.02,
			LocalSeqs:        9,
			RingSeqs:         3,
			RemapTransfers:   5,
			RemapInterTokens: 1024,
			PlanMode:         "patched",
			SolveMode:        "parallel-4",
			IterTimeSec:      1.25,
			TokensPerSec:     52428.8,
			HostOverheadSec:  0.0035,
		},
		"campaign_request": CampaignRequest{
			Model: "7B",
			Cluster: ClusterSpec{
				Preset: "A", Nodes: 2, TP: 1, TokensPerGPU: 4096, Capacity: 1.25,
			},
			Workload: WorkloadSpec{
				Dataset:   "arxiv",
				Arrival:   "drift",
				DriftPath: []string{"arxiv", "github", "prolong64k"},
			},
			Policy:        PolicySpec{Name: "threshold", Threshold: 1.3, Every: 10},
			Faults:        "straggler:from=10,to=40",
			Method:        "zeppelin",
			Iters:         200,
			Seed:          1000,
			ReplanCostSec: 0.02,
			Incremental:   true,
		},
		"campaign_request_autoscale": CampaignRequest{
			Model: "7B",
			Workload: WorkloadSpec{
				Arrival:   "drift",
				DriftPath: []string{"arxiv", "github", "prolong64k"},
			},
			Iters: 200,
			Autoscale: &AutoscaleSpec{
				MinNodes: 1, MaxNodes: 4,
				UpUtil: 0.95, DownUtil: 0.9,
				Step: 1, Cooldown: 3,
			},
		},
		"campaign_request_serve": CampaignRequest{
			Model: "7B",
			Cluster: ClusterSpec{
				Preset: "A", Nodes: 2, TP: 1, TokensPerGPU: 4096,
			},
			Method: "zeppelin",
			Iters:  500,
			Seed:   1000,
			Serve: &ServeSpec{
				Clients: 3,
				Arrival: "gamma",
				CV:      2.0,
				Windows: []ServeWindow{
					{FromSec: 0, ToSec: 60, Rate: 50},
					{FromSec: 60, ToSec: 300, Rate: 120},
				},
				Classes: []SLOClass{
					{Name: "interactive", P99Sec: 0.2, Priority: 2},
					{Name: "batch", P99Sec: 8, Priority: 1},
				},
				Dataset:    "stackexchange",
				Sessions:   8,
				Prefix:     0.5,
				Formation:  "priority",
				Route:      "affinity",
				HorizonSec: 300,
			},
		},
		"serve_trace_event": ServeTraceEvent{
			T:       1.25,
			Client:  2,
			Class:   "interactive",
			Tokens:  412,
			Session: 17,
			Prefix:  206,
		},
		"class_metrics": ClassMetrics{
			Class:         "interactive",
			Priority:      2,
			Deadline:      0.2,
			Requests:      1800,
			Violations:    36,
			Tokens:        741200,
			P50Latency:    0.041,
			P99Latency:    0.188,
			MaxLatency:    0.244,
			Goodput:       2412.5,
			ViolationRate: 0.02,
		},
		"campaign_event": CampaignEvent{
			Iter:         17,
			Tokens:       65536,
			Seqs:         12,
			Deferred:     2048,
			Replanned:    true,
			Time:         2.5,
			TokensPerSec: 26214.4,
			Imbalance:    1.31,
			Penalty:      1.08,
			Utilization:  0.87,
			Recovery:     0.5,
			Events:       []string{"straggler:rank4 x2.5"},
			World:        16,
		},
		"campaign_event_serve": CampaignEvent{
			Iter:         4,
			Tokens:       14336,
			Seqs:         9,
			Replanned:    false,
			Time:         0.41,
			TokensPerSec: 34965.8,
			Imbalance:    1.07,
			Penalty:      1,
			Utilization:  0.91,
			Queued:       2048,
			AffinityHits: 6,
			SavedTokens:  1236,
			Violations:   1,
		},
		"campaign_summary_serve": CampaignSummary{
			Method:          "Zeppelin",
			Arrival:         "serve(3xgamma cv=2,2cls)",
			Policy:          "serve:priority+affinity",
			Iters:           42,
			TotalTokens:     602112,
			WallTime:        17.2,
			TokensPerSec:    35006.5,
			MeanIterTime:    0.41,
			P50IterTime:     0.4,
			P95IterTime:     0.47,
			P99IterTime:     0.51,
			MaxIterTime:     0.55,
			MeanImbalance:   1.06,
			MaxImbalance:    1.21,
			MeanUtilization: 0.9,
			Requests:        1420,
			Violations:      31,
			Unserved:        0,
			StreamTime:      18.4,
		},
		"campaign_summary": CampaignSummary{
			Method:          "Zeppelin",
			Arrival:         "drift(arxiv->github)",
			Policy:          "threshold(1.30)",
			Iters:           200,
			Replans:         23,
			TotalTokens:     13107200,
			DeferredTokens:  8192,
			WallTime:        500.5,
			TokensPerSec:    26188.2,
			MeanIterTime:    2.5,
			P50IterTime:     2.4,
			P95IterTime:     2.9,
			P99IterTime:     3.1,
			MaxIterTime:     3.3,
			MeanImbalance:   1.12,
			MaxImbalance:    1.45,
			MeanUtilization: 0.88,
			RecoverySeconds: 1.5,
			FaultEvents:     4,
		},
		"decision_record": DecisionRecord{
			Session:        "c1",
			Iter:           17,
			Kind:           "replan",
			Chosen:         "replan",
			Forced:         false,
			Flipped:        true,
			Policy:         "threshold",
			Threshold:      1.3,
			StaleImbalance: 1.42,
			FreshImbalance: 1.05,
			SinceReplan:    9,
			PlanMode:       "patched",
			Events:         []string{"straggler:rank4 x2.5"},
			World:          16,
			Alternatives: []DecisionAlternative{
				{Choice: "replan", Score: 1.05, Chosen: true},
				{Choice: "reuse", Score: 1.42},
			},
		},
		"replay_request": ReplayRequest{
			Campaign: CampaignRequest{
				Model: "7B",
				Workload: WorkloadSpec{
					Arrival:   "drift",
					DriftPath: []string{"arxiv", "github"},
				},
				Iters:       50,
				Seed:        42,
				Incremental: true,
			},
			Flip: &FlipSpec{Iter: 17, Decision: "reuse"},
		},
		"replay_report": ReplayReport{
			Flip:      &FlipSpec{Iter: 17, Decision: "reuse"},
			Flipped:   true,
			Identical: false,
			Factual: CampaignSummary{
				Method: "Zeppelin", Iters: 50, Replans: 6,
				TokensPerSec: 26188.2, P99IterTime: 3.1, WallTime: 125.5,
			},
			Counterfactual: &CampaignSummary{
				Method: "Zeppelin", Iters: 50, Replans: 5,
				TokensPerSec: 26090.1, P99IterTime: 3.24, WallTime: 125.9,
			},
			Delta: &ReplayDelta{
				TokensPerSecPct: -0.37,
				P99IterTimePct:  4.52,
				WallTimeSec:     0.4,
				Replans:         -1,
				RecoverySec:     0.25,
			},
		},
		"tune_request": TuneRequest{
			Model: "7B",
			Cluster: ClusterSpec{
				Preset: "A", Nodes: 2, TP: 1, TokensPerGPU: 4096,
			},
			Workload: WorkloadSpec{
				Arrival:   "drift",
				DriftPath: []string{"arxiv", "github", "prolong64k"},
			},
			Faults:     "none",
			Method:     "zeppelin",
			Space:      "policy=threshold,threshold=1.05:1.6",
			Budget:     24,
			Iters:      60,
			Seeds:      2,
			Weights:    &TuneWeights{Goodput: 0.4, P99: 0.2, Migration: 0.2, Utilization: 0.2},
			SearchSeed: 1,
			Workers:    4,
		},
		"tune_report": TuneReport{
			Space:     "policy=threshold,threshold=1.05:1.6",
			Budget:    24,
			Iters:     60,
			Seeds:     2,
			Weights:   TuneWeights{Goodput: 0.4, P99: 0.2, Migration: 0.2, Utilization: 0.2},
			Evaluated: 24,
			Baseline: TuneCandidate{
				Key:    "policy=threshold",
				Params: TuneParams{Policy: "threshold"},
				Flags:  "-policy threshold",
				Metrics: TuneMetrics{
					TokensPerSec: 26098.1, P99IterTime: 3.205, Replans: 26,
					RecoverySeconds: 0.46, MigrationCost: 0.98,
					MeanUtilization: 0.935, DeferredTokens: 2048,
				},
				Fitness: TuneFitness{Goodput: 1, P99: 1, Migration: 1, Utilization: 1, Total: 1},
			},
			Winner: TuneCandidate{
				Key: "policy=threshold,threshold=1.56",
				Params: TuneParams{
					Policy: "threshold", Threshold: 1.56,
					Autoscale: true, UpUtil: 0.95, DownUtil: 0.9, Cooldown: 3, Step: 1,
				},
				Flags: "-policy threshold -threshold 1.56 -autoscale up-util=0.95,down-util=0.9,cooldown=3,step=1",
				Metrics: TuneMetrics{
					TokensPerSec: 26060.4, P99IterTime: 3.205, Replans: 17,
					RecoverySeconds: 0.3, MigrationCost: 0.64,
					MeanUtilization: 0.932,
				},
				Fitness: TuneFitness{Goodput: 0.999, P99: 1, Migration: 1.53, Utilization: 0.997, Total: 1.105},
			},
			Improved: true,
			Candidates: []TuneCandidate{{
				Key:     "policy=threshold,threshold=1.05,autoscale=on,up-util=0.5",
				Params:  TuneParams{Policy: "threshold", Threshold: 1.05, Autoscale: true, UpUtil: 0.5},
				Flags:   "-policy threshold -threshold 1.05 -autoscale up-util=0.5",
				Invalid: "campaign: autoscaler down-util 0.6 must be in [0, up-util 0.5)",
			}},
		},
		"version_info": VersionInfo{
			Module:     "zeppelin",
			Version:    "v1.2.3",
			APIVersion: "v1",
			GoVersion:  "go1.22.0",
		},
		"error_body": ErrorBody{Error: ErrorDetail{
			Code:    "bad_request",
			Message: "campaign iters must be >= 1, got 0",
		}},
	}
}

// TestWireSchemaGolden marshals every canonical fixture and diffs it
// against the checked-in testdata, so schema drift fails CI.
func TestWireSchemaGolden(t *testing.T) {
	for name, fixture := range canonicalFixtures() {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(fixture, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", name+".golden.json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire schema for %s drifted from golden.\n got: %s\nwant: %s\n(an intentional schema change must update %s via -update and bump clients)",
					name, got, want, path)
			}
		})
	}
}

// TestWireSchemaRoundTrip: every request fixture unmarshals back to an
// equal value, so the schema is symmetric for clients.
func TestWireSchemaRoundTrip(t *testing.T) {
	req := canonicalFixtures()["campaign_request"].(CampaignRequest)
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back CampaignRequest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(back)
	if !bytes.Equal(raw, a) {
		t.Fatalf("campaign request does not round-trip:\n%s\n%s", raw, a)
	}
}
