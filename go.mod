module zeppelin

go 1.22
