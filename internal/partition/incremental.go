// Incremental re-planning fast path. Streaming campaigns re-run the
// partitioner every iteration, so planning latency bounds campaign
// goodput. The Incremental planner exploits how little the input usually
// changes between consecutive iterations: it keeps a keyed plan cache
// (exact reuse of a previously solved batch under the same cluster view)
// and, when a tolerance is configured, patches the previous plan in place
// of a full solve — removing departed sequences and greedily re-placing
// only the arrivals — whenever the batch delta is small and structurally
// local. Any health change (effective-speed view), elastic resize,
// capacity change, or structurally large delta invalidates the fast path
// and falls back to the full hierarchical solve.
//
// The patch path is engineered for latency: the previous placement lives
// in a roster sorted by sequence ID, so the batch delta is a two-pointer
// merge (no per-call map churn); feasibility is judged on the load vector
// alone and the patched plan is then built in a single pass over one flat
// backing array, with all transient state in reused scratch buffers (and,
// under IncrementalConfig.ReusePlans, the plan itself in a reused arena —
// the steady state then allocates nothing at all). Patched
// plans are cost-equal to full solves within the configured drift (the
// golden tests pin this), and every fast-path decision is deterministic,
// so campaigns running over an Incremental planner remain
// bit-reproducible per (Config, seed).
package partition

import (
	"fmt"
	"hash/maphash"
	"math"
	"slices"
	"sort"

	"zeppelin/internal/seq"
)

// PlanMode identifies how the Incremental planner produced a plan.
type PlanMode uint8

// The three fast-path outcomes: a full hierarchical solve, a patch of the
// previous plan, or an exact keyed-cache hit.
const (
	PlanFull PlanMode = iota
	PlanPatched
	PlanCached
)

// String names a mode for stats output.
func (m PlanMode) String() string {
	switch m {
	case PlanFull:
		return "full"
	case PlanPatched:
		return "patched"
	case PlanCached:
		return "cached"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// PlanStats describes one Plan call's fast-path decision.
type PlanStats struct {
	Mode PlanMode
	// Shared marks a PlanCached outcome that was served from the
	// process-wide shared tier rather than this planner's own cache. The
	// Mode stays PlanCached — shared hits carry the same full-solve purity
	// guarantee — but observability distinguishes the two.
	Shared bool
	// AddedSeqs/RemovedSeqs/DeltaTokens quantify the batch delta against
	// the previous plan (zero on full solves without a predecessor and on
	// cache hits).
	AddedSeqs   int
	RemovedSeqs int
	DeltaTokens int
}

// Counters accumulates fast-path decisions over a planner's lifetime.
type Counters struct {
	Full    int `json:"full"`
	Patched int `json:"patched"`
	Cached  int `json:"cached"`
	// Shared counts exact hits served from the process-wide shared tier
	// (IncrementalConfig.Shared) instead of this planner's own cache.
	Shared int `json:"shared,omitempty"`
}

// Plans returns the total number of Plan calls counted.
func (c Counters) Plans() int { return c.Full + c.Patched + c.Cached + c.Shared }

// IncrementalConfig tunes the fast path.
type IncrementalConfig struct {
	// MaxDeltaFrac is the largest fraction of the incoming batch's tokens
	// that may differ from the previous batch for patching to apply. Zero
	// disables patching entirely — the planner then only reuses exact
	// keyed-cache hits, which are bit-identical to full solves, the mode
	// campaigns use when stream identity matters.
	MaxDeltaFrac float64
	// MaxImbalanceDrift self-regulates patch quality: a patched plan
	// whose load imbalance exceeds (1 + drift) × the imbalance of the
	// planner's last full solve is discarded and re-solved in full. This
	// catches the discontinuous cases — a threshold shift that would have
	// re-split a long sequence — where greedy patching cannot follow the
	// full algorithm. <= 0 selects 0.15.
	MaxImbalanceDrift float64
	// MaxPatchRun bounds consecutive patches before a forced full solve,
	// so patch chains cannot drift arbitrarily far from a solved base.
	// <= 0 selects 16.
	MaxPatchRun int
	// CacheCap bounds the keyed plan cache (entries); <= 0 selects 16.
	CacheCap int
	// Shared, when set, is the process-wide plan cache tier: after a
	// local cache miss (and before patching) the planner probes it for an
	// exact full-solve hit, and every full solve it performs is published
	// back. Shared holds full solves only — pure functions of the inputs
	// — so hits are bit-identical to re-solving and the planner's
	// determinism guarantees are unchanged. Nil keeps the planner fully
	// private (the historical behavior).
	Shared *SharedCache
	// ReusePlans opts the patch path into plan-arena reuse: patched plans
	// are built into two ping-ponged arenas owned by the planner instead
	// of freshly allocated, making steady-state re-planning
	// allocation-free (0 allocs/op once buffer sizes stabilize, pinned by
	// tests). The plans themselves are bit-identical to the default
	// mode's. In exchange, a patched Result is only valid until the
	// second following Plan call (the arena it lives in is then rebuilt);
	// full solves and cache hits still return immutable heap plans. And
	// patched plans are not inserted into the keyed cache — arena plans
	// are mutable, so a verbatim repeat of a patched batch re-patches
	// instead of hitting the cache. Callers that retain plans across
	// iterations (campaigns, the fig15 sweep) must leave this off.
	ReusePlans bool
}

// Fast-path defaults; see IncrementalConfig.
const (
	DefaultCacheCap          = 16
	DefaultMaxImbalanceDrift = 0.15
	DefaultMaxPatchRun       = 16
)

// Incremental is a stateful planner for re-planning hot paths. Not safe
// for concurrent use; a campaign owns exactly one.
type Incremental struct {
	inc  IncrementalConfig
	part *Partitioner

	cache []cacheEntry // front = most recent; tiny, scanned linearly

	// Patch base: the most recent plan, its per-rank token loads, and its
	// placement roster sorted by sequence ID.
	haveBase    bool
	cfgWorld    int
	cfgNodes    int
	cfgCapacity int
	speeds      []float64
	res         *Result
	loads       []int
	roster      []placedSeq
	rosterDup   bool // duplicate IDs in base batch: merge diff is ambiguous
	minS0       int

	// baseImb is the load imbalance of the current patch base (the last
	// full solve or cache adoption); patchRun counts consecutive patches
	// since then.
	baseImb  float64
	patchRun int

	counters Counters
	seed     maphash.Seed

	// Reused scratch.
	keyBuf   []byte
	curBuf   []placedSeq // incoming batch sorted by ID
	nextBuf  []placedSeq // next roster under construction (swapped in)
	added    []addedSeq
	removed  []placedSeq
	loadsBuf []int
	share    []int
	rmIDs    []int        // removed-ID set, ascending (roster order)
	arrHead  []int        // per-rank arrival chain heads (index into added)
	arrNext  []int        // arrival chain links
	arenas   [2]planArena // ReusePlans ping-pong targets
	arenaIdx int
}

// planArena is one reusable patched-plan target: the Plan struct, the
// flat backing array its local lists slice into, the ring list, and the
// Result wrapper. Under ReusePlans two arenas alternate so the previous
// patch's plan stays readable (it is the patch base) while the next one
// builds; without ReusePlans a zero-value arena is used once and its
// buffers escape into the immutable returned Result.
type planArena struct {
	plan  *seq.Plan
	flat  []seq.Sequence
	rings []seq.Ring
	s0    []int
	res   Result
}

// placedSeq is one roster entry: a sequence and where the plan holds it.
type placedSeq struct {
	s    seq.Sequence
	rank int32 // owning rank for local placements; -1 for ring sequences
	ring bool
}

// addedSeq is an arrival pending greedy placement, remembering its slot
// in the next roster so the chosen rank can be written back.
type addedSeq struct {
	s   seq.Sequence
	pos int
}

// cacheEntry is one keyed plan: the exact inputs plus the solved result.
// Results are immutable once cached (patching copies, never mutates).
// baseImb and patchRun snapshot the drift-regulation state at insertion,
// so adopting a cached *patched* plan as the new patch base restores its
// original full-solve anchor instead of re-anchoring on the drifted
// value (which would compound MaxImbalanceDrift cycle over cycle).
type cacheEntry struct {
	key      uint64
	world    int
	capacity int
	speeds   []float64
	batch    []seq.Sequence
	res      *Result
	baseImb  float64
	patchRun int
}

// NewIncremental builds an incremental planner.
func NewIncremental(inc IncrementalConfig) *Incremental {
	if inc.CacheCap <= 0 {
		inc.CacheCap = DefaultCacheCap
	}
	if inc.MaxDeltaFrac < 0 {
		inc.MaxDeltaFrac = 0
	}
	if inc.MaxImbalanceDrift <= 0 {
		inc.MaxImbalanceDrift = DefaultMaxImbalanceDrift
	}
	if inc.MaxPatchRun <= 0 {
		inc.MaxPatchRun = DefaultMaxPatchRun
	}
	return &Incremental{inc: inc, seed: maphash.MakeSeed()}
}

// Counters reports the cumulative fast-path decision counts.
func (p *Incremental) Counters() Counters { return p.counters }

// Reset drops the plan cache and patch state, returning the planner to
// cold. Campaigns call it at start so a reused planner instance is
// deterministic run over run.
func (p *Incremental) Reset() {
	p.cache = p.cache[:0]
	p.haveBase = false
	p.res = nil
	p.counters = Counters{}
	p.baseImb = 0
	p.patchRun = 0
}

// Plan produces a placement for the batch under the configuration,
// taking the fastest sound path: exact cache hit, patch of the previous
// plan, or full solve. The returned Result is immutable — callers and
// the cache share it.
func (p *Incremental) Plan(cfg Config, batch []seq.Sequence) (*Result, PlanStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, PlanStats{}, err
	}
	key := p.hashKey(cfg, batch)

	// Exact keyed reuse: same cluster view, capacity, and batch.
	if e := p.lookup(key, cfg, batch); e != nil {
		p.counters.Cached++
		res, baseImb, patchRun := e.res, e.baseImb, e.patchRun
		p.rebuildBase(cfg, res)
		// Restore the entry's drift anchor: a cached patched plan keeps
		// the full-solve baseline it was judged against.
		p.baseImb = baseImb
		p.patchRun = patchRun
		return res, PlanStats{Mode: PlanCached}, nil
	}

	// Exact hit in the process-wide shared tier: another planner already
	// full-solved these inputs. The result is bit-identical to solving
	// here, so adopt it as this planner's patch base (its own imbalance is
	// the drift anchor, exactly as a fresh full solve would set) and front
	// it in the local cache.
	if p.inc.Shared != nil {
		if res, ok := p.inc.Shared.Get(cfg, batch); ok {
			p.counters.Shared++
			p.rebuildBase(cfg, res)
			p.insertCache(key, cfg, batch, res)
			return res, PlanStats{Mode: PlanCached, Shared: true}, nil
		}
	}

	// Patch the previous plan when the delta is small and structural
	// conditions hold. tryPatch installs the new base itself, so only the
	// cache entry remains to store.
	if res, st, ok := p.tryPatch(cfg, batch); ok {
		p.counters.Patched++
		p.patchRun++
		// Arena-built plans are mutable (rebuilt two patches later), so
		// only the default mode's immutable plans enter the keyed cache.
		if !p.inc.ReusePlans {
			p.insertCache(key, cfg, batch, res)
		}
		return res, st, nil
	}

	// Full hierarchical solve, reusing the partitioner's scratch.
	if p.part == nil {
		part, err := New(cfg)
		if err != nil {
			return nil, PlanStats{}, err
		}
		p.part = part
	} else if err := p.part.Reconfigure(cfg); err != nil {
		return nil, PlanStats{}, err
	}
	res, err := p.part.Plan(batch)
	if err != nil {
		return nil, PlanStats{}, err
	}
	p.counters.Full++
	// Rebuild the base first: insertCache snapshots the fresh drift
	// anchor (this solve's own imbalance, patchRun 0).
	p.rebuildBase(cfg, res)
	p.insertCache(key, cfg, batch, res)
	// Full solves are pure functions of (cfg, batch): publish to the
	// shared tier so concurrent requests and sessions dedupe the work.
	// Patched plans above never publish — they are history-dependent.
	if p.inc.Shared != nil {
		p.inc.Shared.Put(cfg, batch, res)
	}
	return res, PlanStats{Mode: PlanFull}, nil
}

// hashKey folds the cluster view, capacity, and batch into a cache key
// through one flat buffer hash (per-field Write calls are measurable at
// thousand-sequence batch sizes).
func (p *Incremental) hashKey(cfg Config, batch []seq.Sequence) uint64 {
	need := 8 * (4 + len(cfg.Speeds) + 1 + 2*len(batch))
	if cap(p.keyBuf) < need {
		p.keyBuf = make([]byte, need)
	}
	b := p.keyBuf[:0]
	put := func(u uint64) {
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	put(uint64(cfg.Cluster.Nodes))
	put(uint64(cfg.Cluster.GPUsPerNode))
	put(uint64(cfg.CapacityTokens))
	put(uint64(len(cfg.Speeds)))
	for _, s := range cfg.Speeds {
		put(math.Float64bits(s))
	}
	put(uint64(len(batch)))
	for _, s := range batch {
		put(uint64(s.ID))
		put(uint64(s.Len))
	}
	p.keyBuf = b
	return maphash.Bytes(p.seed, b)
}

// lookup finds a cache entry whose key and exact inputs match, promoting
// it to the front (LRU order).
func (p *Incremental) lookup(key uint64, cfg Config, batch []seq.Sequence) *cacheEntry {
	for i := range p.cache {
		e := &p.cache[i]
		if e.key != key || e.world != cfg.Cluster.World() || e.capacity != cfg.CapacityTokens {
			continue
		}
		if !sameSpeeds(e.speeds, cfg.Speeds) || !sameBatch(e.batch, batch) {
			continue
		}
		if i != 0 {
			hit := *e
			copy(p.cache[1:i+1], p.cache[:i])
			p.cache[0] = hit
		}
		return &p.cache[0]
	}
	return nil
}

// insertCache fronts a solved plan in the keyed cache (LRU eviction),
// snapshotting the planner's current drift anchor. Callers insert after
// updating baseImb/patchRun for the plan being cached.
func (p *Incremental) insertCache(key uint64, cfg Config, batch []seq.Sequence, res *Result) {
	e := cacheEntry{
		key:      key,
		world:    cfg.Cluster.World(),
		capacity: cfg.CapacityTokens,
		speeds:   copyF(cfg.Speeds),
		batch:    append([]seq.Sequence(nil), batch...),
		res:      res,
		baseImb:  p.baseImb,
		patchRun: p.patchRun,
	}
	if len(p.cache) < p.inc.CacheCap {
		p.cache = append(p.cache, cacheEntry{})
	}
	copy(p.cache[1:], p.cache[:len(p.cache)-1])
	p.cache[0] = e
}

// rebuildBase reconstructs the patch base from a solved plan: per-rank
// loads plus the ID-sorted placement roster. Runs on full solves and
// cache adoptions only; patches maintain the base incrementally. In
// exact mode (MaxDeltaFrac 0) there is nothing to patch, so the roster
// and load accounting are skipped entirely — exact-mode planning is
// then the stateless solve plus a cache probe and nothing else.
func (p *Incremental) rebuildBase(cfg Config, res *Result) {
	if p.inc.MaxDeltaFrac <= 0 {
		return
	}
	p.haveBase = true
	p.cfgWorld = cfg.Cluster.World()
	p.cfgNodes = cfg.Cluster.Nodes
	p.cfgCapacity = cfg.CapacityTokens
	p.speeds = copyF(cfg.Speeds)
	p.res = res
	p.loads = res.Plan.TokensPerRankInto(p.loads, p.share)

	roster := p.roster[:0]
	for r, ls := range res.Plan.Local {
		for _, s := range ls {
			roster = append(roster, placedSeq{s: s, rank: int32(r)})
		}
	}
	for _, ring := range res.Plan.Rings {
		roster = append(roster, placedSeq{s: ring.Seq, rank: -1, ring: true})
	}
	slices.SortFunc(roster, func(a, b placedSeq) int { return a.s.ID - b.s.ID })
	p.roster = roster
	p.rosterDup = false
	for i := 1; i < len(roster); i++ {
		if roster[i].s.ID == roster[i-1].s.ID {
			p.rosterDup = true
			break
		}
	}

	p.minS0 = cfg.CapacityTokens
	for _, s0 := range res.S0 {
		if s0 < p.minS0 {
			p.minS0 = s0
		}
	}
	p.baseImb = effImbalance(p.loads, cfg.Speeds)
	p.patchRun = 0
}

// tryPatch attempts the delta patch. It never mutates planner state on
// failure; on success it installs the patched plan as the new base.
func (p *Incremental) tryPatch(cfg Config, batch []seq.Sequence) (*Result, PlanStats, bool) {
	if !p.haveBase || p.rosterDup || p.inc.MaxDeltaFrac <= 0 || p.patchRun >= p.inc.MaxPatchRun {
		return nil, PlanStats{}, false
	}
	// Structural invalidation: elastic resize, capacity change, or any
	// health (effective-speed) change forces the full solve — a patched
	// plan would balance against a stale cluster view.
	if p.cfgWorld != cfg.Cluster.World() || p.cfgNodes != cfg.Cluster.Nodes ||
		p.cfgCapacity != cfg.CapacityTokens || !sameSpeeds(p.speeds, cfg.Speeds) {
		return nil, PlanStats{}, false
	}

	removed, added, next, deltaTokens, total, ok := p.diff(batch)
	if !ok {
		return nil, PlanStats{}, false
	}
	if total == 0 || float64(deltaTokens) > p.inc.MaxDeltaFrac*float64(total) {
		return nil, PlanStats{}, false
	}
	// Arrivals must be local-zone everywhere (below every node's intra
	// threshold): longer sequences need the ring machinery of the full
	// solve.
	for _, a := range added {
		if a.s.Len >= p.minS0 {
			return nil, PlanStats{}, false
		}
	}

	// Phase 1 — loads and feasibility, touching only scratch so a decline
	// leaves no trace. The plan is not built yet: placement needs only
	// the load vector, and deferring construction means a failed patch
	// costs no plan copy and a successful one is built in a single pass.
	base := p.res.Plan
	loads := growI(p.loadsBuf, len(p.loads))
	p.loadsBuf = loads
	copy(loads, p.loads)
	rmIDs := p.rmIDs[:0]
	for _, rm := range removed {
		rmIDs = append(rmIDs, rm.s.ID) // roster order: ascending IDs
		if rm.ring {
			if !uncountRing(base, rm.s.ID, loads, &p.share) {
				p.rmIDs = rmIDs
				return nil, PlanStats{}, false
			}
			continue
		}
		if !uncountLocal(base, int(rm.rank), rm.s.ID, loads) {
			p.rmIDs = rmIDs
			return nil, PlanStats{}, false
		}
	}
	p.rmIDs = rmIDs

	// Greedy placement of arrivals, longest first — the same
	// least-loaded criterion Alg. 2 uses for the local zone. The chosen
	// rank is written back into the next roster through each arrival's
	// remembered slot.
	L := cfg.CapacityTokens
	slices.SortFunc(added, func(a, b addedSeq) int {
		if a.s.Len != b.s.Len {
			return b.s.Len - a.s.Len
		}
		return a.s.ID - b.s.ID
	})
	for _, a := range added {
		d := argminLoad(loads, cfg.Speeds)
		if loads[d]+a.s.Len > L {
			return nil, PlanStats{}, false
		}
		loads[d] += a.s.Len
		next[a.pos].rank = int32(d)
	}

	// Quality self-regulation: a patch whose balance drifts past the
	// full-solve base would hide a restructuring the full algorithm wants
	// (threshold shift, re-split); discard it and solve in full.
	if effImbalance(loads, cfg.Speeds) > p.baseImb*(1+p.inc.MaxImbalanceDrift) {
		return nil, PlanStats{}, false
	}

	// Phase 2 — build the patched plan in one pass: survivors copied in
	// base order minus the removed IDs, arrivals appended per rank in
	// placement order (identical content to cutting then appending).
	// Under ReusePlans the target is the next ping-pong arena; otherwise
	// a zero-value arena whose buffers escape into the immutable Result.
	var arena *planArena
	if p.inc.ReusePlans {
		arena = &p.arenas[p.arenaIdx]
		p.arenaIdx ^= 1
	} else {
		arena = &planArena{}
	}
	res := p.buildPatched(arena, base, len(batch), added, next, rmIDs)

	// Commit: swap in the next roster and loads; the old buffers become
	// scratch for the following patch.
	p.res = res
	p.roster, p.nextBuf = next, p.roster
	p.loads, p.loadsBuf = loads, p.loads
	return res, PlanStats{
		Mode:        PlanPatched,
		AddedSeqs:   len(added),
		RemovedSeqs: len(removed),
		DeltaTokens: deltaTokens,
	}, true
}

// buildPatched assembles the patched plan into an arena. Every local
// list slices into one flat backing array (capped three-index, so a
// stray external append cannot clobber a neighbor), rings are the base's
// minus removals, and the Result wrapper reuses the arena's S0 buffer.
// nLocal bounds the flat array: every local entry is a batch member.
func (p *Incremental) buildPatched(a *planArena, base *seq.Plan, nLocal int, added []addedSeq, next []placedSeq, rmIDs []int) *Result {
	world := base.World
	// Per-rank arrival chains, linked in reverse so traversal from each
	// head yields placement order.
	p.arrHead = growI(p.arrHead, world)
	for i := range p.arrHead {
		p.arrHead[i] = -1
	}
	p.arrNext = growI(p.arrNext, len(added))
	for i := len(added) - 1; i >= 0; i-- {
		r := int(next[added[i].pos].rank)
		p.arrNext[i] = p.arrHead[r]
		p.arrHead[r] = i
	}

	if a.plan == nil || a.plan.World != world {
		a.plan = seq.NewPlan(world)
	}
	plan := a.plan
	if cap(a.flat) < nLocal {
		a.flat = make([]seq.Sequence, 0, nLocal)
	}
	flat := a.flat[:0]
	if cap(a.rings) < len(base.Rings) {
		a.rings = make([]seq.Ring, 0, len(base.Rings))
	}
	rings := a.rings[:0]
	for _, ring := range base.Rings {
		if !idRemoved(rmIDs, ring.Seq.ID) {
			rings = append(rings, ring)
		}
	}
	a.rings = rings
	plan.Rings = rings
	for r := 0; r < world; r++ {
		start := len(flat)
		for _, s := range base.Local[r] {
			if !idRemoved(rmIDs, s.ID) {
				flat = append(flat, s)
			}
		}
		for i := p.arrHead[r]; i >= 0; i = p.arrNext[i] {
			flat = append(flat, added[i].s)
		}
		if len(flat) == start {
			plan.Local[r] = nil
		} else {
			plan.Local[r] = flat[start:len(flat):len(flat)]
		}
	}
	a.flat = flat

	a.s0 = growI(a.s0, len(p.res.S0))
	copy(a.s0, p.res.S0)
	a.res = Result{Plan: plan, S1: p.res.S1, S0: a.s0}
	return &a.res
}

// idRemoved reports whether id is in the ascending removed-ID set.
// Roster IDs are unique (rosterDup gates patching), so a global set is
// zone-correct.
func idRemoved(rmIDs []int, id int) bool {
	i := sort.SearchInts(rmIDs, id)
	return i < len(rmIDs) && rmIDs[i] == id
}

// uncountLocal subtracts a departed local sequence from its rank's load,
// reporting false if the roster and plan disagree (patch declines).
func uncountLocal(plan *seq.Plan, rank, id int, loads []int) bool {
	for _, s := range plan.Local[rank] {
		if s.ID == id {
			loads[rank] -= s.Len
			return true
		}
	}
	return false
}

// uncountRing subtracts a departed ring's per-member token shares.
func uncountRing(plan *seq.Plan, id int, loads []int, share *[]int) bool {
	for _, ring := range plan.Rings {
		if ring.Seq.ID != id {
			continue
		}
		*share = ring.TokensPerRankInto(*share)
		for j, r := range ring.Ranks {
			loads[r] -= (*share)[j]
		}
		return true
	}
	return false
}

// diff computes the delta between the base roster and the incoming batch
// as a two-pointer merge over ID-sorted views, and assembles the next
// roster (matched entries keep their placement; arrivals hold a
// placeholder rank their greedy slot fills in). Duplicate IDs on either
// side make placement bookkeeping ambiguous and decline the patch.
func (p *Incremental) diff(batch []seq.Sequence) (removed []placedSeq, added []addedSeq, next []placedSeq, deltaTokens, total int, ok bool) {
	cur := p.curBuf[:0]
	sorted := true
	for i, s := range batch {
		cur = append(cur, placedSeq{s: s})
		total += s.Len
		if i > 0 && batch[i-1].ID >= s.ID {
			sorted = false
		}
	}
	p.curBuf = cur
	if !sorted {
		// Samplers emit ascending IDs and arrivals append larger ones, so
		// streams are usually pre-sorted; pay the sort only when not.
		slices.SortFunc(cur, func(a, b placedSeq) int { return a.s.ID - b.s.ID })
	}
	for i := 1; i < len(cur); i++ {
		if cur[i].s.ID == cur[i-1].s.ID {
			return nil, nil, nil, 0, 0, false
		}
	}

	next = p.nextBuf[:0]
	removed = p.removed[:0]
	added = p.added[:0]
	base := p.roster
	i, j := 0, 0
	for i < len(base) || j < len(cur) {
		switch {
		case i == len(base) || (j < len(cur) && cur[j].s.ID < base[i].s.ID):
			added = append(added, addedSeq{s: cur[j].s, pos: len(next)})
			next = append(next, placedSeq{s: cur[j].s, rank: -2})
			deltaTokens += cur[j].s.Len
			j++
		case j == len(cur) || base[i].s.ID < cur[j].s.ID:
			removed = append(removed, base[i])
			deltaTokens += base[i].s.Len
			i++
		case base[i].s.Len == cur[j].s.Len:
			next = append(next, base[i])
			i++
			j++
		default:
			// Same ID, new length: departure plus arrival.
			removed = append(removed, base[i])
			deltaTokens += base[i].s.Len
			added = append(added, addedSeq{s: cur[j].s, pos: len(next)})
			next = append(next, placedSeq{s: cur[j].s, rank: -2})
			deltaTokens += cur[j].s.Len
			i++
			j++
		}
	}
	p.nextBuf = next
	p.removed = removed
	p.added = added
	return removed, added, next, deltaTokens, total, true
}

// effImbalance is LoadImbalance over a precomputed load vector.
func effImbalance(loads []int, speeds []float64) float64 {
	var sum, max float64
	for i, t := range loads {
		eff := float64(t)
		if speeds != nil {
			eff /= speeds[i]
		}
		sum += eff
		if eff > max {
			max = eff
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(loads)))
}

// LoadImbalance is the cost metric the fast path is judged by: the
// maximum over ranks of effective token load (tokens/speed; raw tokens on
// a healthy view) divided by the mean. Patched plans must stay within
// tolerance of the full solve's value.
func LoadImbalance(plan *seq.Plan, speeds []float64) float64 {
	return effImbalance(plan.TokensPerRank(), speeds)
}

// sameSpeeds compares two speed vectors (nil == nil, not nil == uniform).
func sameSpeeds(a, b []float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameBatch compares batches element-wise (order-sensitive).
func sameBatch(a, b []seq.Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// copyF copies a float slice, preserving nil.
func copyF(s []float64) []float64 {
	if s == nil {
		return nil
	}
	return append([]float64(nil), s...)
}
