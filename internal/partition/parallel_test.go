package partition

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/seq"
	"zeppelin/internal/workload"
)

// TestThresholdChain pins the candidate space the parallel solve
// speculates over: start, then distinct lengths strictly descending.
func TestThresholdChain(t *testing.T) {
	var p Partitioner
	sorted := []seq.Sequence{
		{ID: 0, Len: 9000}, {ID: 1, Len: 4096}, {ID: 2, Len: 4096},
		{ID: 3, Len: 1000}, {ID: 4, Len: 1000}, {ID: 5, Len: 7},
	}
	got := p.thresholdChain(sorted, 8192)
	want := []int{8192, 4096, 1000, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chain = %v, want %v", got, want)
	}
	// A sequence at or above the start threshold contributes nothing.
	got = p.thresholdChain(sorted[:1], 8192)
	if !reflect.DeepEqual(got, []int{8192}) {
		t.Fatalf("chain = %v, want [8192]", got)
	}
}

// TestParallelSolveMatchesSerial is the tentpole guarantee: for every
// worker count the parallel solve returns a Result bit-identical to the
// serial one — same plan structure, same converged thresholds — across
// workloads, cluster shapes, capacity pressure (forcing threshold
// retries), and degraded effective-speed views.
func TestParallelSolveMatchesSerial(t *testing.T) {
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	type cell struct {
		name     string
		spec     cluster.Spec
		nodes    int
		capacity int
		fill     float64 // fraction of aggregate capacity to sample
		speeds   bool
	}
	cells := []cell{
		{"github-roomy", cluster.ClusterA, 2, 8192, 0.5, false},
		{"github-tight", cluster.ClusterA, 2, 2048, 0.95, false},
		{"arxiv-4node", cluster.ClusterA, 4, 4096, 0.9, false},
		{"clusterC", cluster.ClusterC, 2, 4096, 0.8, false},
		{"degraded", cluster.ClusterA, 2, 4096, 0.7, true},
	}
	for _, cl := range cells {
		t.Run(cl.name, func(t *testing.T) {
			c := cluster.MustNew(cl.spec, cl.nodes)
			speeds := []float64(nil)
			if cl.speeds {
				speeds = make([]float64, c.World())
				for i := range speeds {
					speeds[i] = 1
				}
				speeds[1] = 0.4 // one straggler
			}
			for seedv := int64(1); seedv <= 3; seedv++ {
				rng := rand.New(rand.NewSource(seedv))
				budget := int(cl.fill * float64(c.World()*cl.capacity))
				batch := workload.GitHub.Batch(budget, rng)

				serial, err := New(Config{Cluster: c, CapacityTokens: cl.capacity, Speeds: speeds})
				if err != nil {
					t.Fatal(err)
				}
				want, err := serial.Plan(batch)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range workerCounts {
					par, err := New(Config{Cluster: c, CapacityTokens: cl.capacity, Speeds: speeds, SolveWorkers: w})
					if err != nil {
						t.Fatal(err)
					}
					// Twice on the same partitioner: scratch reuse across
					// calls must not perturb results either.
					for pass := 0; pass < 2; pass++ {
						got, err := par.Plan(batch)
						if err != nil {
							t.Fatalf("workers=%d: %v", w, err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("seed %d workers=%d pass %d: parallel result differs from serial", seedv, w, pass)
						}
					}
				}
			}
		})
	}
}

// TestParallelSolveRetryPressure forces deep threshold-retry chains (the
// speculative path) and checks the plan still validates and matches
// serial: every sequence is exactly capacity-sized, so the first several
// candidates fail.
func TestParallelSolveRetryPressure(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 2)
	var batch []seq.Sequence
	for i := 0; i < 16; i++ {
		batch = append(batch, seq.Sequence{ID: i, Len: 1024})
	}
	serial := newPart(t, cluster.ClusterA, 2, 1024)
	want, err := serial.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(Config{Cluster: c, CapacityTokens: 1024, SolveWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Plan.Validate(batch); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel result differs from serial under retry pressure")
	}
}

// TestParallelSolveErrors: validation errors surface identically with
// workers configured.
func TestParallelSolveErrors(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 1)
	p, err := New(Config{Cluster: c, CapacityTokens: 1000, SolveWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan([]seq.Sequence{{ID: 0, Len: 9000}}); err == nil {
		t.Fatal("oversized batch must fail under parallel solve")
	}
	if _, err := p.Plan([]seq.Sequence{{ID: 0, Len: 0}}); err == nil {
		t.Fatal("zero-length sequence must fail under parallel solve")
	}
}
