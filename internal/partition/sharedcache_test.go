package partition

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/seq"
)

// TestSharedCacheCrossPlannerHit: a full solve published by one planner
// serves another planner's identical request bit-identically, counted as
// a shared hit on the consumer and exactly one miss on the producer.
func TestSharedCacheCrossPlannerHit(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(7))
	batch := sampleBatch(cfg, rng, 0.8)
	shared := NewSharedCache(8)

	producer := NewIncremental(IncrementalConfig{Shared: shared})
	res1, st1 := mustPlan(t, producer, cfg, batch)
	if st1.Mode != PlanFull {
		t.Fatalf("producer mode = %s, want full", st1.Mode)
	}

	consumer := NewIncremental(IncrementalConfig{Shared: shared})
	res2, st2 := mustPlan(t, consumer, cfg, batch)
	if st2.Mode != PlanCached {
		t.Fatalf("consumer mode = %s, want cached (shared hit)", st2.Mode)
	}
	if res2 != res1 {
		t.Fatal("shared hit returned a different Result than the published solve")
	}
	if c := consumer.Counters(); c.Shared != 1 || c.Full != 0 {
		t.Fatalf("consumer counters = %+v, want exactly one shared hit", c)
	}

	// The shared result matches an independent stateless solve.
	part, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := part.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Plan.TokensPerRank(), want.Plan.TokensPerRank()) {
		t.Fatalf("shared plan layout %v != stateless solve %v",
			res2.Plan.TokensPerRank(), want.Plan.TokensPerRank())
	}

	st := shared.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("shared stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestSharedCacheDistinguishesNodeSplit: a 2×8 and a 4×4 cluster share a
// world of 16 but bucket sequences differently — the shared tier must
// never serve one shape's plan to the other.
func TestSharedCacheDistinguishesNodeSplit(t *testing.T) {
	spec44 := cluster.ClusterA
	spec44.GPUsPerNode = 4
	spec44.NICsPerNode = 2
	cfg28 := Config{Cluster: cluster.MustNew(cluster.ClusterA, 2), CapacityTokens: 5120}
	cfg44 := Config{Cluster: cluster.MustNew(spec44, 4), CapacityTokens: 5120}
	rng := rand.New(rand.NewSource(11))
	batch := sampleBatch(cfg28, rng, 0.8)

	shared := NewSharedCache(8)
	p1 := NewIncremental(IncrementalConfig{Shared: shared})
	if _, st := mustPlan(t, p1, cfg28, batch); st.Mode != PlanFull {
		t.Fatalf("first shape mode = %s, want full", st.Mode)
	}
	p2 := NewIncremental(IncrementalConfig{Shared: shared})
	if _, st := mustPlan(t, p2, cfg44, batch); st.Mode != PlanFull {
		t.Fatalf("4x4 shape served the 2x8 plan: mode = %s, want full", st.Mode)
	}
	if st := shared.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (one per node shape)", st.Entries)
	}
}

// TestSharedCacheSpeedViewsAreDistinct: plans solved under a degraded
// effective-speed view never answer healthy requests (and vice versa).
func TestSharedCacheSpeedViewsAreDistinct(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(13))
	batch := sampleBatch(cfg, rng, 0.8)

	degraded := cfg
	degraded.Speeds = make([]float64, cfg.Cluster.World())
	for i := range degraded.Speeds {
		degraded.Speeds[i] = 1
	}
	degraded.Speeds[0] = 0.4

	shared := NewSharedCache(8)
	p := NewIncremental(IncrementalConfig{Shared: shared})
	mustPlan(t, p, cfg, batch)
	q := NewIncremental(IncrementalConfig{Shared: shared})
	if _, st := mustPlan(t, q, degraded, batch); st.Mode != PlanFull {
		t.Fatalf("degraded view hit the healthy entry: mode = %s", st.Mode)
	}
}

// TestSharedCacheLRUEviction: the tier is bounded; the oldest entry
// falls out once the cap is exceeded.
func TestSharedCacheLRUEviction(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(17))
	shared := NewSharedCache(2)

	batches := make([][]seq.Sequence, 3)
	for i := range batches {
		batches[i] = sampleBatch(cfg, rng, 0.5+0.1*float64(i))
		p := NewIncremental(IncrementalConfig{Shared: shared})
		mustPlan(t, p, cfg, batches[i])
	}
	if st := shared.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want cap 2", st.Entries)
	}
	if _, ok := shared.Get(cfg, batches[0]); ok {
		t.Fatal("oldest entry survived past the cap")
	}
	if _, ok := shared.Get(cfg, batches[2]); !ok {
		t.Fatal("newest entry evicted")
	}
}

// TestSharedCacheConcurrentPlanners: many goroutines, each with a
// private planner, hammer a small set of keys through one shared tier.
// Every result must equal the reference stateless solve for its batch —
// the bit-identical contract under concurrency (and the race detector
// covers the locking).
func TestSharedCacheConcurrentPlanners(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(19))
	const keys = 4
	batches := make([][]seq.Sequence, keys)
	wantLayouts := make([][]int, keys)
	for i := range batches {
		batches[i] = sampleBatch(cfg, rng, 0.5+0.08*float64(i))
		part, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := part.Plan(batches[i])
		if err != nil {
			t.Fatal(err)
		}
		wantLayouts[i] = res.Plan.TokensPerRank()
	}

	shared := NewSharedCache(8)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewIncremental(IncrementalConfig{Shared: shared})
			for i := 0; i < 16; i++ {
				k := (g + i) % keys
				res, _, err := p.Plan(cfg, batches[k])
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Plan.TokensPerRank(), wantLayouts[k]) {
					t.Errorf("goroutine %d key %d: layout diverged", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := shared.Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("shared tier unused under concurrency: %+v", st)
	}
}
