package partition

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/seq"
)

// TestSharedCacheCrossPlannerHit: a full solve published by one planner
// serves another planner's identical request bit-identically, counted as
// a shared hit on the consumer and exactly one miss on the producer.
func TestSharedCacheCrossPlannerHit(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(7))
	batch := sampleBatch(cfg, rng, 0.8)
	shared := NewSharedCache(8)

	producer := NewIncremental(IncrementalConfig{Shared: shared})
	res1, st1 := mustPlan(t, producer, cfg, batch)
	if st1.Mode != PlanFull {
		t.Fatalf("producer mode = %s, want full", st1.Mode)
	}

	consumer := NewIncremental(IncrementalConfig{Shared: shared})
	res2, st2 := mustPlan(t, consumer, cfg, batch)
	if st2.Mode != PlanCached {
		t.Fatalf("consumer mode = %s, want cached (shared hit)", st2.Mode)
	}
	if res2 != res1 {
		t.Fatal("shared hit returned a different Result than the published solve")
	}
	if c := consumer.Counters(); c.Shared != 1 || c.Full != 0 {
		t.Fatalf("consumer counters = %+v, want exactly one shared hit", c)
	}

	// The shared result matches an independent stateless solve.
	part, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := part.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Plan.TokensPerRank(), want.Plan.TokensPerRank()) {
		t.Fatalf("shared plan layout %v != stateless solve %v",
			res2.Plan.TokensPerRank(), want.Plan.TokensPerRank())
	}

	st := shared.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("shared stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestSharedCacheDistinguishesNodeSplit: a 2×8 and a 4×4 cluster share a
// world of 16 but bucket sequences differently — the shared tier must
// never serve one shape's plan to the other.
func TestSharedCacheDistinguishesNodeSplit(t *testing.T) {
	spec44 := cluster.ClusterA
	spec44.GPUsPerNode = 4
	spec44.NICsPerNode = 2
	cfg28 := Config{Cluster: cluster.MustNew(cluster.ClusterA, 2), CapacityTokens: 5120}
	cfg44 := Config{Cluster: cluster.MustNew(spec44, 4), CapacityTokens: 5120}
	rng := rand.New(rand.NewSource(11))
	batch := sampleBatch(cfg28, rng, 0.8)

	shared := NewSharedCache(8)
	p1 := NewIncremental(IncrementalConfig{Shared: shared})
	if _, st := mustPlan(t, p1, cfg28, batch); st.Mode != PlanFull {
		t.Fatalf("first shape mode = %s, want full", st.Mode)
	}
	p2 := NewIncremental(IncrementalConfig{Shared: shared})
	if _, st := mustPlan(t, p2, cfg44, batch); st.Mode != PlanFull {
		t.Fatalf("4x4 shape served the 2x8 plan: mode = %s, want full", st.Mode)
	}
	if st := shared.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (one per node shape)", st.Entries)
	}
}

// TestSharedCacheSpeedViewsAreDistinct: plans solved under a degraded
// effective-speed view never answer healthy requests (and vice versa).
func TestSharedCacheSpeedViewsAreDistinct(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(13))
	batch := sampleBatch(cfg, rng, 0.8)

	degraded := cfg
	degraded.Speeds = make([]float64, cfg.Cluster.World())
	for i := range degraded.Speeds {
		degraded.Speeds[i] = 1
	}
	degraded.Speeds[0] = 0.4

	shared := NewSharedCache(8)
	p := NewIncremental(IncrementalConfig{Shared: shared})
	mustPlan(t, p, cfg, batch)
	q := NewIncremental(IncrementalConfig{Shared: shared})
	if _, st := mustPlan(t, q, degraded, batch); st.Mode != PlanFull {
		t.Fatalf("degraded view hit the healthy entry: mode = %s", st.Mode)
	}
}

// TestSharedCacheLRUEviction: the tier is bounded; the oldest entry
// falls out once the cap is exceeded.
func TestSharedCacheLRUEviction(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(17))
	shared := NewSharedCache(2)

	batches := make([][]seq.Sequence, 3)
	for i := range batches {
		batches[i] = sampleBatch(cfg, rng, 0.5+0.1*float64(i))
		p := NewIncremental(IncrementalConfig{Shared: shared})
		mustPlan(t, p, cfg, batches[i])
	}
	if st := shared.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want cap 2", st.Entries)
	}
	if _, ok := shared.Get(cfg, batches[0]); ok {
		t.Fatal("oldest entry survived past the cap")
	}
	if _, ok := shared.Get(cfg, batches[2]); !ok {
		t.Fatal("newest entry evicted")
	}
}

// TestSharedCacheConcurrentPlanners: many goroutines, each with a
// private planner, hammer a small set of keys through one shared tier.
// Every result must equal the reference stateless solve for its batch —
// the bit-identical contract under concurrency (and the race detector
// covers the locking).
func TestSharedCacheConcurrentPlanners(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(19))
	const keys = 4
	batches := make([][]seq.Sequence, keys)
	wantLayouts := make([][]int, keys)
	for i := range batches {
		batches[i] = sampleBatch(cfg, rng, 0.5+0.08*float64(i))
		part, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := part.Plan(batches[i])
		if err != nil {
			t.Fatal(err)
		}
		wantLayouts[i] = res.Plan.TokensPerRank()
	}

	shared := NewSharedCache(8)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewIncremental(IncrementalConfig{Shared: shared})
			for i := 0; i < 16; i++ {
				k := (g + i) % keys
				res, _, err := p.Plan(cfg, batches[k])
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Plan.TokensPerRank(), wantLayouts[k]) {
					t.Errorf("goroutine %d key %d: layout diverged", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := shared.Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("shared tier unused under concurrency: %+v", st)
	}
}

// TestSharedCacheStatsConsistentUnderConcurrentPublish hammers Get/Put
// directly from many goroutines — including concurrent duplicate
// publishes of the same key — and checks the counter arithmetic the
// /v1/stats and /metrics surfaces report from these numbers: every Get
// is exactly one hit or one miss, duplicate publishes deduplicate
// instead of storing twice, the entry count never exceeds the cap, and
// the eviction counter stays consistent with the inserts that actually
// happened (it can never wrap "negative"). Run under -race this also
// covers the locking of the stats snapshot against publishers.
func TestSharedCacheStatsConsistentUnderConcurrentPublish(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(23))
	const keys = 6
	batches := make([][]seq.Sequence, keys)
	results := make([]*Result, keys)
	for i := range batches {
		batches[i] = sampleBatch(cfg, rng, 0.4+0.09*float64(i))
		part, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if results[i], err = part.Plan(batches[i]); err != nil {
			t.Fatal(err)
		}
	}

	hammer := func(capEntries int) (SharedCacheStats, uint64, uint64) {
		shared := NewSharedCache(capEntries)
		var gets, puts atomic.Uint64
		stop := make(chan struct{})
		var readers sync.WaitGroup
		// A concurrent Stats reader: every snapshot it takes mid-hammer
		// must already satisfy the bounds (and -race checks the lock).
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := shared.Stats()
				if st.Entries > st.Capacity {
					t.Errorf("snapshot entries %d exceed capacity %d", st.Entries, st.Capacity)
					return
				}
				if st.Evictions > puts.Load() {
					t.Errorf("snapshot evictions %d exceed %d puts so far", st.Evictions, puts.Load())
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					k := (g + i) % keys
					gets.Add(1)
					if _, ok := shared.Get(cfg, batches[k]); !ok {
						// Several goroutines miss the same key at once and
						// all publish — the duplicate-publish race under test.
						puts.Add(1)
						shared.Put(cfg, batches[k], results[k])
					}
				}
			}(g)
		}
		wg.Wait()
		close(stop)
		readers.Wait()
		return shared.Stats(), gets.Load(), puts.Load()
	}

	// Roomy cache: every key fits, so dedup alone bounds the entries and
	// nothing is ever evicted.
	st, gets, puts := hammer(keys + 2)
	if st.Hits+st.Misses != gets {
		t.Fatalf("hits %d + misses %d != %d Get calls", st.Hits, st.Misses, gets)
	}
	if st.Entries != keys {
		t.Fatalf("entries = %d, want %d (concurrent duplicate publishes must dedup)", st.Entries, keys)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d on a cache that never filled", st.Evictions)
	}
	if puts < keys {
		t.Fatalf("puts = %d, want >= %d (every key misses at least once)", puts, keys)
	}

	// Undersized cache: constant churn. Every eviction and every resident
	// entry came from an insert and inserts are bounded by puts, so
	// evictions + entries <= puts — the identity that fails loudly if the
	// eviction counter ever wrapped.
	st, gets, puts = hammer(2)
	if st.Hits+st.Misses != gets {
		t.Fatalf("churn: hits %d + misses %d != %d Get calls", st.Hits, st.Misses, gets)
	}
	if st.Entries > 2 {
		t.Fatalf("churn: entries = %d, want <= cap 2", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("churn: rotating 6 keys through a 2-entry cache must evict")
	}
	if st.Evictions+uint64(st.Entries) > puts {
		t.Fatalf("churn: evictions %d + entries %d exceed %d puts", st.Evictions, st.Entries, puts)
	}
}
