package partition

import (
	"math/rand"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/seq"
)

// effectiveImbalance scores a plan on a degraded cluster: max/mean of
// per-rank causal-pair load multiplied by each rank's slowdown.
func effectiveImbalance(p *seq.Plan, slow []float64) float64 {
	load := p.PairsPerRank()
	var sum, max float64
	for r, l := range load {
		eff := l * slow[r]
		sum += eff
		if eff > max {
			max = eff
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(load)))
}

// Speed-aware planning must (a) stay valid — conservation and structure
// are checked by Plan.Validate — and (b) produce a strictly better
// effective time balance on the degraded cluster than oblivious
// planning, across randomized batches.
func TestSpeedAwarePlanningImprovesEffectiveBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := cluster.MustNew(cluster.ClusterA, 2)
	const capTok = 5120
	world := c.World()

	wins, rounds := 0, 0
	for iter := 0; iter < 40; iter++ {
		slow := make([]float64, world)
		speeds := make([]float64, world)
		for r := range slow {
			slow[r] = 1
		}
		straggler := rng.Intn(world)
		slow[straggler] = 1.5 + 2*rng.Float64()
		for r := range speeds {
			speeds[r] = 1 / slow[r]
		}

		var batch []seq.Sequence
		remaining := world * capTok * 3 / 4
		for id := 0; remaining > 256; id++ {
			l := 256 + rng.Intn(8192)
			if l > remaining {
				l = remaining
			}
			batch = append(batch, seq.Sequence{ID: id, Len: l})
			remaining -= l
		}

		oblivious, err := New(Config{Cluster: c, CapacityTokens: capTok})
		if err != nil {
			t.Fatal(err)
		}
		obRes, err := oblivious.Plan(batch)
		if err != nil {
			t.Fatalf("iter %d oblivious: %v", iter, err)
		}
		aware, err := New(Config{Cluster: c, CapacityTokens: capTok, Speeds: speeds})
		if err != nil {
			t.Fatal(err)
		}
		awRes, err := aware.Plan(batch)
		if err != nil {
			t.Fatalf("iter %d aware: %v", iter, err)
		}
		if err := awRes.Plan.Validate(batch); err != nil {
			t.Fatalf("iter %d: speed-aware plan invalid: %v", iter, err)
		}
		rounds++
		if effectiveImbalance(awRes.Plan, slow) < effectiveImbalance(obRes.Plan, slow) {
			wins++
		}
	}
	// The heuristic will not win every draw (tiny batches, straggler on
	// an already-idle rank), but it must win decisively in aggregate.
	if wins*10 < rounds*8 {
		t.Fatalf("speed-aware planning beat oblivious on only %d/%d batches", wins, rounds)
	}
}

func TestSpeedAwareValidation(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 1)
	if _, err := New(Config{Cluster: c, CapacityTokens: 4096, Speeds: []float64{1, 1}}); err == nil {
		t.Fatal("speed vector shorter than the world must fail")
	}
	bad := make([]float64, c.World())
	for i := range bad {
		bad[i] = 1
	}
	bad[3] = 0
	if _, err := New(Config{Cluster: c, CapacityTokens: 4096, Speeds: bad}); err == nil {
		t.Fatal("non-positive speed must fail")
	}
}

// With speeds set, a strong straggler ends up with strictly less token
// load than the fastest rank on a local-heavy batch.
func TestSpeedAwareDrainsStraggler(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 1)
	const capTok = 5120
	world := c.World()
	speeds := make([]float64, world)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[2] = 0.4 // 2.5x slow

	var batch []seq.Sequence
	for id := 0; id < 24; id++ {
		batch = append(batch, seq.Sequence{ID: id, Len: 1024})
	}
	p, err := New(Config{Cluster: c, CapacityTokens: capTok, Speeds: speeds})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	tok := res.Plan.TokensPerRank()
	var maxOther int
	for r, v := range tok {
		if r != 2 && v > maxOther {
			maxOther = v
		}
	}
	if tok[2] >= maxOther {
		t.Fatalf("straggler holds %d tokens, busiest healthy rank %d — not drained: %v", tok[2], maxOther, tok)
	}
}
