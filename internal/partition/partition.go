// Package partition implements Zeppelin's hierarchical sequence
// partitioner (§3.1): Algorithm 1 assigns sequences to node buckets,
// splitting inter-node-zone sequences across nodes to balance
// communication; Algorithm 2 then partitions within each node, splitting
// intra-node-zone sequences to balance quadratic attention computation and
// placing local-zone sequences on the least-loaded devices. Both
// algorithms iteratively lower their zone threshold whenever a placement
// would exceed capacity, which guarantees a feasible plan whenever the
// batch fits in aggregate memory.
package partition

import (
	"fmt"
	"math"

	"zeppelin/internal/cluster"
	"zeppelin/internal/seq"
)

// Config parameterizes the partitioner.
type Config struct {
	Cluster *cluster.Cluster
	// CapacityTokens is L, the per-device token capacity.
	CapacityTokens int
	// Speeds, when set, is the per-rank relative speed vector (1 =
	// nominal, 0.4 = a 2.5×-slow straggler) of the degraded effective-speed
	// cluster view. The partitioner then balances *time* instead of
	// tokens: greedy placement weighs each rank's load by 1/speed, and
	// ring fragments claim the least-time-loaded devices instead of the
	// round-robin cursor, steering work away from slow ranks. Capacity
	// checks stay in raw tokens (memory does not speed up). Nil reproduces
	// the paper's homogeneous-cluster behavior exactly.
	Speeds []float64
}

// Partitioner runs the two-level hierarchical strategy.
type Partitioner struct {
	cfg Config
}

// New validates the configuration.
func New(cfg Config) (*Partitioner, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("partition: nil cluster")
	}
	if cfg.CapacityTokens <= 0 {
		return nil, fmt.Errorf("partition: capacity must be positive, got %d", cfg.CapacityTokens)
	}
	if cfg.Speeds != nil {
		if len(cfg.Speeds) != cfg.Cluster.World() {
			return nil, fmt.Errorf("partition: %d speeds for world of %d", len(cfg.Speeds), cfg.Cluster.World())
		}
		for r, s := range cfg.Speeds {
			if s <= 0 {
				return nil, fmt.Errorf("partition: rank %d has non-positive speed %v", r, s)
			}
		}
	}
	return &Partitioner{cfg: cfg}, nil
}

// Result is a placement plan plus the thresholds the algorithms converged
// to, for diagnostics and the Fig. 5 zone analysis.
type Result struct {
	Plan *seq.Plan
	// S1 is the final inter-node zone threshold of Alg. 1 (sequences of
	// length >= S1 are split across nodes).
	S1 int
	// S0 is the final intra-node threshold per node from Alg. 2.
	S0 []int
}

// interPlacement records a z2 sequence chunked across a set of nodes.
type interPlacement struct {
	s     seq.Sequence
	nodes []int
}

// Plan partitions a batch across the cluster. It errors if the batch
// cannot fit (total tokens exceed aggregate capacity) or if any single
// sequence exceeds the cluster-wide token capacity.
func (p *Partitioner) Plan(batch []seq.Sequence) (*Result, error) {
	c := p.cfg.Cluster
	N, P, L := c.Nodes, c.GPUsPerNode, p.cfg.CapacityTokens
	if total := seq.TotalLen(batch); total > N*P*L {
		return nil, fmt.Errorf("partition: batch of %d tokens exceeds capacity %d", total, N*P*L)
	}
	for _, s := range batch {
		if s.Len <= 0 {
			return nil, fmt.Errorf("partition: sequence %d has non-positive length", s.ID)
		}
	}
	sorted := append([]seq.Sequence(nil), batch...)
	seq.SortByLenDesc(sorted)

	// Under a degraded cluster view, a node's effective speed is the sum
	// of its ranks' speeds — Alg. 1 then assigns fewer tokens to nodes
	// hosting stragglers.
	var nodeSpeed []float64
	if p.cfg.Speeds != nil {
		nodeSpeed = make([]float64, N)
		for n := 0; n < N; n++ {
			for _, r := range c.RanksOfNode(n) {
				nodeSpeed[n] += p.cfg.Speeds[r]
			}
		}
	}

	nodeSeqs, inters, s1, err := interPartition(sorted, N, P, L, nodeSpeed)
	if err != nil {
		return nil, err
	}

	plan := seq.NewPlan(c.World())
	res := &Result{Plan: plan, S1: s1, S0: make([]int, N)}

	// Inter-node rings: a sequence chunked over k nodes rings over all
	// k·P ranks (Alg. 2 lines 4–6 split each node's chunk across all P
	// devices). A chunk count of 1 degenerates to an intra-node ring.
	interShare := make([][]int, N) // per node: token loads contributed by inter rings, per device
	for n := 0; n < N; n++ {
		interShare[n] = make([]int, P)
	}
	for _, ip := range inters {
		var ranks []int
		for _, n := range ip.nodes {
			ranks = append(ranks, c.RanksOfNode(n)...)
		}
		zone := seq.ZoneInter
		if len(ip.nodes) == 1 {
			zone = seq.ZoneIntra
		}
		ring := seq.Ring{Seq: ip.s, Zone: zone, Ranks: ranks, Weights: p.ringWeights(ranks)}
		plan.Rings = append(plan.Rings, ring)
		share := ring.TokensPerRank()
		for i, r := range ranks {
			interShare[c.NodeOf(r)][c.LocalRank(r)] += share[i]
		}
	}

	for n := 0; n < N; n++ {
		s0, err := p.intraPartition(plan, n, nodeSeqs[n], interShare[n])
		if err != nil {
			return nil, fmt.Errorf("partition: node %d: %w", n, err)
		}
		res.S0[n] = s0
	}
	return res, nil
}

// interPartition is Algorithm 1. sorted must be in descending length
// order. It returns the per-node whole-sequence assignments, the chunked
// inter-node placements, and the converged threshold s1. nodeSpeed, when
// non-nil, weighs every greedy load comparison by each node's effective
// speed (nil reproduces the homogeneous behavior bit for bit).
func interPartition(sorted []seq.Sequence, n, p, l int, nodeSpeed []float64) (nodeSeqs [][]seq.Sequence, inters []interPlacement, s1 int, err error) {
	s1 = p * l
	for iter := 0; ; iter++ {
		if iter > len(sorted)+2 {
			return nil, nil, 0, fmt.Errorf("inter-node partitioning did not converge")
		}
		nodeLoad := make([]int, n)
		nodeSeqs = make([][]seq.Sequence, n)
		inters = inters[:0]

		var z01, z2 []seq.Sequence
		for _, s := range sorted {
			if s.Len >= s1 {
				z2 = append(z2, s)
			} else {
				z01 = append(z01, s)
			}
		}
		if len(z2) > 0 {
			sAvg := float64(seq.TotalLen(z2)) / float64(n)
			for _, s := range z2 {
				k := int(math.Ceil(float64(s.Len) / sAvg))
				if k < 1 {
					k = 1
				}
				if k > n {
					k = n
				}
				nodes := leastLoaded(nodeLoad, k, nodeSpeed)
				share := seq.SplitEven(s.Len, k)
				if nodeSpeed != nil {
					// The emitted ring carries speed-proportional rank
					// weights, so each node's real token share is its speed
					// share — account (and capacity-check) the same way.
					w := make([]float64, k)
					for i, nd := range nodes {
						w[i] = nodeSpeed[nd]
					}
					share = seq.SplitWeighted(s.Len, w)
				}
				for i, nd := range nodes {
					nodeLoad[nd] += share[i]
				}
				inters = append(inters, interPlacement{s: s, nodes: nodes})
			}
		}
		retry := false
		for _, s := range z01 {
			idx := argminLoad(nodeLoad, nodeSpeed)
			if s.Len+nodeLoad[idx] > p*l {
				// z01 is sorted descending, so its first element is the
				// maximum; lowering s1 to it promotes it to z2.
				s1 = z01[0].Len
				retry = true
				break
			}
			nodeSeqs[idx] = append(nodeSeqs[idx], s)
			nodeLoad[idx] += s.Len
		}
		if !retry {
			return nodeSeqs, inters, s1, nil
		}
	}
}

// intraPartition is Algorithm 2 for one node: it splits intra-node-zone
// sequences into quadratic-cost-balanced fragments (forming intra-node
// rings) and packs local-zone sequences onto the least-loaded devices.
// interShare carries the token loads already imposed by inter-node rings.
// It appends to plan and returns the converged threshold s0.
func (p *Partitioner) intraPartition(plan *seq.Plan, node int, assigned []seq.Sequence, interShare []int) (int, error) {
	c := p.cfg.Cluster
	P, L := c.GPUsPerNode, p.cfg.CapacityTokens
	ranks := c.RanksOfNode(node)
	var devSpeed []float64
	if p.cfg.Speeds != nil {
		devSpeed = make([]float64, P)
		for d, r := range ranks {
			devSpeed[d] = p.cfg.Speeds[r]
		}
	}
	s0 := L
	for iter := 0; ; iter++ {
		if iter > len(assigned)+2 {
			return 0, fmt.Errorf("intra-node partitioning did not converge")
		}
		devLoad := append([]int(nil), interShare...)
		local := make([][]seq.Sequence, P)
		var rings []seq.Ring

		var z0, z1 []seq.Sequence
		for _, s := range assigned { // assigned preserves descending order
			if s.Len >= s0 {
				z1 = append(z1, s)
			} else {
				z0 = append(z0, s)
			}
		}
		if len(z1) > 0 {
			var cAvg float64
			for _, s := range z1 {
				cAvg += float64(s.Len) * float64(s.Len)
			}
			cAvg /= float64(P)
			rr := 0 // round-robin cursor continues across sequences
			for _, s := range z1 {
				k := int(math.Ceil(float64(s.Len) * float64(s.Len) / cAvg))
				if k < 1 {
					k = 1
				}
				if k > P {
					k = P
				}
				if k == 1 {
					// A single fragment needs no ring; place like a local
					// sequence on the round-robin device (least-time-loaded
					// under a degraded view).
					d := rr % P
					if devSpeed != nil {
						d = argminLoad(devLoad, devSpeed)
					}
					local[d] = append(local[d], s)
					devLoad[d] += s.Len
					rr++
					continue
				}
				devs := make([]int, k)
				if devSpeed == nil {
					share := seq.SplitEven(s.Len, k)
					for i := 0; i < k; i++ {
						d := (rr + i) % P
						devs[i] = ranks[d]
						devLoad[d] += share[i]
					}
					rr += k
					rings = append(rings, seq.Ring{Seq: s, Zone: seq.ZoneIntra, Ranks: devs})
					continue
				}
				// Degraded view: a ring's lock-stepped rounds run at its
				// slowest member's pace, so fragments claim the k
				// least-time-loaded devices and weight their query-chunk
				// shares by speed — stragglers hold smaller chunks and the
				// rounds stay time-balanced.
				chosen := leastLoaded(devLoad, k, devSpeed)
				for i, d := range chosen {
					devs[i] = ranks[d]
				}
				ring := seq.Ring{Seq: s, Zone: seq.ZoneIntra, Ranks: devs, Weights: p.ringWeights(devs)}
				share := ring.TokensPerRank()
				for i, d := range chosen {
					devLoad[d] += share[i]
				}
				rings = append(rings, ring)
			}
		}
		retry := false
		for _, s := range z0 {
			idx := argminLoad(devLoad, devSpeed)
			if s.Len+devLoad[idx] > L {
				s0 = z0[0].Len
				retry = true
				break
			}
			local[idx] = append(local[idx], s)
			devLoad[idx] += s.Len
		}
		if !retry {
			for d := 0; d < P; d++ {
				plan.Local[ranks[d]] = append(plan.Local[ranks[d]], local[d]...)
			}
			plan.Rings = append(plan.Rings, rings...)
			return s0, nil
		}
	}
}

// ringWeights returns speed-proportional ring weights for a rank set
// (nil on a healthy cluster, preserving the even 2G-chunk split).
func (p *Partitioner) ringWeights(ranks []int) []float64 {
	if p.cfg.Speeds == nil {
		return nil
	}
	out := make([]float64, len(ranks))
	for i, r := range ranks {
		out[i] = p.cfg.Speeds[r]
	}
	return out
}

// leastLoaded returns the indices of the k smallest loads, ties broken by
// index, in increasing-load order. A non-nil speed vector compares
// effective time loads (load/speed) instead of raw token loads.
func leastLoaded(load []int, k int, speed []float64) []int {
	idx := make([]int, len(load))
	for i := range idx {
		idx[i] = i
	}
	less := func(a, b int) bool { return load[a] < load[b] }
	if speed != nil {
		less = func(a, b int) bool {
			la, lb := float64(load[a])/speed[a], float64(load[b])/speed[b]
			if la != lb {
				return la < lb
			}
			return a < b
		}
	}
	// Selection sort of the first k: loads are tiny (#nodes or #devices).
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if less(idx[j], idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// argminLoad is the greedy least-loaded choice: raw token loads when
// speed is nil, effective time loads (load/speed) otherwise. Ties break
// by index in both modes.
func argminLoad(v []int, speed []float64) int {
	best := 0
	if speed == nil {
		for i, x := range v {
			if x < v[best] {
				best = i
			}
		}
		return best
	}
	for i := range v {
		if float64(v[i])/speed[i] < float64(v[best])/speed[best] {
			best = i
		}
	}
	return best
}
