// Package partition implements Zeppelin's hierarchical sequence
// partitioner (§3.1): Algorithm 1 assigns sequences to node buckets,
// splitting inter-node-zone sequences across nodes to balance
// communication; Algorithm 2 then partitions within each node, splitting
// intra-node-zone sequences to balance quadratic attention computation and
// placing local-zone sequences on the least-loaded devices. Both
// algorithms iteratively lower their zone threshold whenever a placement
// would exceed capacity, which guarantees a feasible plan whenever the
// batch fits in aggregate memory.
//
// The solve parallelizes across the two independent axes the algorithms
// expose. Each Alg. 1 threshold retry is a pure function of the sorted
// batch and the candidate threshold, and the retry chain — P·L, then the
// distinct sequence lengths in descending order — is known up front, so
// SolveWorkers > 1 evaluates candidate thresholds speculatively in waves
// and keeps the first (highest-threshold) success, which is exactly the
// threshold the serial loop converges to. The per-node Alg. 2 solves
// depend only on their node's assignment and inter-ring load, so they fan
// out across the same worker pool and merge in node order. Both paths are
// bit-identical to the serial solve by construction, and tests pin it.
//
// A Partitioner owns reusable scratch buffers: repeated Plan calls (the
// per-iteration hot path of streaming campaigns) and the threshold-retry
// loops inside one call allocate almost nothing beyond the plan they
// return. Parallel workers get their own scratch, also reused across
// calls. The Incremental planner (incremental.go) layers a keyed plan
// cache and delta patching on top for the re-planning fast path.
package partition

import (
	"context"
	"fmt"
	"math"

	"zeppelin/internal/cluster"
	"zeppelin/internal/runner"
	"zeppelin/internal/seq"
)

// Config parameterizes the partitioner.
type Config struct {
	Cluster *cluster.Cluster
	// CapacityTokens is L, the per-device token capacity.
	CapacityTokens int
	// Speeds, when set, is the per-rank relative speed vector (1 =
	// nominal, 0.4 = a 2.5×-slow straggler) of the degraded effective-speed
	// cluster view. The partitioner then balances *time* instead of
	// tokens: greedy placement weighs each rank's load by 1/speed, and
	// ring fragments claim the least-time-loaded devices instead of the
	// round-robin cursor, steering work away from slow ranks. Capacity
	// checks stay in raw tokens (memory does not speed up). Nil reproduces
	// the paper's homogeneous-cluster behavior exactly.
	Speeds []float64
	// SolveWorkers sets the parallelism of the full solve: candidate
	// thresholds of the Alg. 1 retry loop are evaluated speculatively and
	// the per-node Alg. 2 solves fan out across this many pool workers.
	// The result is bit-identical to the serial solve for every value.
	// <= 1 runs the historical single-threaded path. SolveWorkers does
	// not make a Partitioner safe for concurrent use — the parallelism is
	// internal to one Plan call.
	SolveWorkers int
}

// validate checks a configuration.
func (cfg *Config) validate() error {
	if cfg.Cluster == nil {
		return fmt.Errorf("partition: nil cluster")
	}
	if cfg.CapacityTokens <= 0 {
		return fmt.Errorf("partition: capacity must be positive, got %d", cfg.CapacityTokens)
	}
	if cfg.Speeds != nil {
		if len(cfg.Speeds) != cfg.Cluster.World() {
			return fmt.Errorf("partition: %d speeds for world of %d", len(cfg.Speeds), cfg.Cluster.World())
		}
		for r, s := range cfg.Speeds {
			if s <= 0 {
				return fmt.Errorf("partition: rank %d has non-positive speed %v", r, s)
			}
		}
	}
	return nil
}

// Partitioner runs the two-level hierarchical strategy. The zero value is
// unusable; construct with New. Not safe for concurrent use (the scratch
// buffers are shared across calls), including when SolveWorkers > 1 —
// that parallelism lives inside a single Plan call.
type Partitioner struct {
	cfg Config

	// Scratch reused across Plan calls. None of these are retained by
	// returned plans.
	sorted     []seq.Sequence
	nodeSpeed  []float64
	interShare [][]int
	share      []int // inter-ring emission scratch
	chain      []int // Alg. 1 candidate threshold chain
	waveOK     []bool

	inter  interScratch   // serial Alg. 1 scratch
	intra  intraScratch   // serial Alg. 2 scratch
	winter []interScratch // parallel: per-wave-slot Alg. 1 scratch
	wintra []intraScratch // parallel: per-worker Alg. 2 scratch
	out    []nodeOut      // per-node Alg. 2 results, merged in node order
}

// New validates the configuration.
func New(cfg Config) (*Partitioner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Partitioner{cfg: cfg}, nil
}

// Reconfigure swaps the configuration while keeping the scratch buffers,
// so a long-lived planner (the Incremental fast path) re-plans under a
// changed capacity or effective-speed view without re-allocating.
func (p *Partitioner) Reconfigure(cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	p.cfg = cfg
	return nil
}

// Result is a placement plan plus the thresholds the algorithms converged
// to, for diagnostics and the Fig. 5 zone analysis.
type Result struct {
	Plan *seq.Plan
	// S1 is the final inter-node zone threshold of Alg. 1 (sequences of
	// length >= S1 are split across nodes).
	S1 int
	// S0 is the final intra-node threshold per node from Alg. 2.
	S0 []int
}

// interPlacement records a z2 sequence chunked across a set of nodes.
type interPlacement struct {
	s     seq.Sequence
	nodes []int
}

// pickScratch holds the least-loaded selection buffers; every solve
// context (serial or per-worker) owns one.
type pickScratch struct {
	pick []int
	eff  []float64
}

// interScratch is one Alg. 1 evaluation context: evalInter is a pure
// function of (sorted, threshold) writing only here, so candidate
// thresholds evaluate concurrently on distinct scratch.
type interScratch struct {
	pickScratch
	nodeLoad []int
	nodeSeqs [][]seq.Sequence
	inters   []interPlacement
	z01, z2  []seq.Sequence
	share    []int
}

// intraScratch is one Alg. 2 working context (retry-loop state that does
// not outlive the node's solve); results land in a nodeOut.
type intraScratch struct {
	pickScratch
	devLoad  []int
	devSpeed []float64
	z0, z1   []seq.Sequence
	share    []int
}

// nodeOut is one node's Alg. 2 result, written by whichever worker solved
// the node and merged into the plan serially in node order.
type nodeOut struct {
	s0    int
	local [][]seq.Sequence
	rings []seq.Ring
}

// Plan partitions a batch across the cluster. It errors if the batch
// cannot fit (total tokens exceed aggregate capacity) or if any single
// sequence exceeds the cluster-wide token capacity. The returned plan
// shares nothing with the partitioner's scratch and stays valid across
// later Plan calls.
func (p *Partitioner) Plan(batch []seq.Sequence) (*Result, error) {
	c := p.cfg.Cluster
	N, P, L := c.Nodes, c.GPUsPerNode, p.cfg.CapacityTokens
	if total := seq.TotalLen(batch); total > N*P*L {
		return nil, fmt.Errorf("partition: batch of %d tokens exceeds capacity %d", total, N*P*L)
	}
	for _, s := range batch {
		if s.Len <= 0 {
			return nil, fmt.Errorf("partition: sequence %d has non-positive length", s.ID)
		}
	}
	p.sorted = append(p.sorted[:0], batch...)
	seq.SortByLenDesc(p.sorted)

	// Under a degraded cluster view, a node's effective speed is the sum
	// of its ranks' speeds — Alg. 1 then assigns fewer tokens to nodes
	// hosting stragglers.
	nodeSpeed := p.nodeSpeeds(N)

	workers := p.cfg.SolveWorkers
	var win *interScratch
	var s1 int
	var err error
	if workers > 1 {
		win, s1, err = p.interParallel(p.sorted, N, P, L, nodeSpeed, workers)
	} else {
		win, s1, err = p.interSerial(p.sorted, N, P, L, nodeSpeed)
	}
	if err != nil {
		return nil, err
	}
	nodeSeqs, inters := win.nodeSeqs, win.inters

	plan := seq.NewPlan(c.World())
	res := &Result{Plan: plan, S1: s1, S0: make([]int, N)}

	// Inter-node rings: a sequence chunked over k nodes rings over all
	// k·P ranks (Alg. 2 lines 4–6 split each node's chunk across all P
	// devices). A chunk count of 1 degenerates to an intra-node ring.
	interShare := p.interShareBuf(N, P)
	for _, ip := range inters {
		ranks := make([]int, 0, len(ip.nodes)*P)
		for _, n := range ip.nodes {
			ranks = append(ranks, c.RanksOfNode(n)...)
		}
		zone := seq.ZoneInter
		if len(ip.nodes) == 1 {
			zone = seq.ZoneIntra
		}
		ring := seq.Ring{Seq: ip.s, Zone: zone, Ranks: ranks, Weights: p.ringWeights(ranks)}
		plan.Rings = append(plan.Rings, ring)
		p.share = ring.TokensPerRankInto(p.share)
		for i, r := range ranks {
			interShare[c.NodeOf(r)][c.LocalRank(r)] += p.share[i]
		}
	}

	// Per-node Alg. 2 solves: independent given (nodeSeqs[n],
	// interShare[n]), so they fan out when workers > 1 and merge below in
	// node order either way.
	out := p.nodeOutBuf(N, P)
	if workers > 1 {
		ws := p.intraWorkers(workers)
		err = runner.ForEachWorker(context.Background(), workers, N, func(w, n int) error {
			if e := p.intraNode(&ws[w], &out[n], n, nodeSeqs[n], interShare[n]); e != nil {
				return fmt.Errorf("partition: node %d: %w", n, e)
			}
			return nil
		})
	} else {
		for n := 0; n < N; n++ {
			if e := p.intraNode(&p.intra, &out[n], n, nodeSeqs[n], interShare[n]); e != nil {
				err = fmt.Errorf("partition: node %d: %w", n, e)
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	for n := 0; n < N; n++ {
		ranks := c.RanksOfNode(n)
		for d := 0; d < P; d++ {
			plan.Local[ranks[d]] = append(plan.Local[ranks[d]], out[n].local[d]...)
		}
		plan.Rings = append(plan.Rings, out[n].rings...)
		res.S0[n] = out[n].s0
	}
	return res, nil
}

// nodeSpeeds computes the per-node effective speed scratch (nil when the
// cluster view is healthy).
func (p *Partitioner) nodeSpeeds(n int) []float64 {
	if p.cfg.Speeds == nil {
		return nil
	}
	c := p.cfg.Cluster
	p.nodeSpeed = growF(p.nodeSpeed, n)
	for nd := 0; nd < n; nd++ {
		var sum float64
		lo := nd * c.GPUsPerNode
		for i := 0; i < c.GPUsPerNode; i++ {
			sum += p.cfg.Speeds[lo+i]
		}
		p.nodeSpeed[nd] = sum
	}
	return p.nodeSpeed
}

// interShareBuf returns the zeroed per-node × per-device inter-ring load
// scratch.
func (p *Partitioner) interShareBuf(n, dev int) [][]int {
	if cap(p.interShare) < n {
		p.interShare = make([][]int, n)
	}
	p.interShare = p.interShare[:n]
	for i := range p.interShare {
		p.interShare[i] = growI(p.interShare[i], dev)
		for j := range p.interShare[i] {
			p.interShare[i][j] = 0
		}
	}
	return p.interShare
}

// nodeOutBuf sizes the per-node result buffers, truncating prior contents.
func (p *Partitioner) nodeOutBuf(n, dev int) []nodeOut {
	if cap(p.out) < n {
		p.out = make([]nodeOut, n)
	}
	p.out = p.out[:n]
	for i := range p.out {
		o := &p.out[i]
		if cap(o.local) < dev {
			o.local = make([][]seq.Sequence, dev)
		}
		o.local = o.local[:dev]
		for d := range o.local {
			o.local[d] = o.local[d][:0]
		}
		o.rings = o.rings[:0]
	}
	return p.out
}

// intraWorkers sizes the per-worker Alg. 2 scratch pool.
func (p *Partitioner) intraWorkers(w int) []intraScratch {
	if cap(p.wintra) < w {
		ws := make([]intraScratch, w)
		copy(ws, p.wintra)
		p.wintra = ws
	}
	p.wintra = p.wintra[:w]
	return p.wintra
}

// thresholdChain builds the Alg. 1 candidate threshold sequence: the
// serial retry loop starts at P·L and, on each capacity failure, lowers
// the threshold to the longest sequence below it — i.e. it walks P·L
// followed by the distinct sequence lengths in strictly descending order.
// The final candidate always succeeds (every sequence is then inter-zone
// and chunked placement never capacity-checks), so the chain is the
// complete space the serial loop can visit.
func (p *Partitioner) thresholdChain(sorted []seq.Sequence, start int) []int {
	chain := append(p.chain[:0], start)
	last := start
	for _, s := range sorted { // descending, so distinct lengths emerge in order
		if s.Len < last {
			chain = append(chain, s.Len)
			last = s.Len
		}
	}
	p.chain = chain
	return chain
}

// interSerial walks the candidate chain one threshold at a time on the
// partitioner's own scratch — the historical single-threaded Alg. 1.
func (p *Partitioner) interSerial(sorted []seq.Sequence, n, pp, l int, nodeSpeed []float64) (*interScratch, int, error) {
	chain := p.thresholdChain(sorted, pp*l)
	for _, s1 := range chain {
		if evalInter(&p.inter, sorted, n, pp, l, s1, nodeSpeed) {
			return &p.inter, s1, nil
		}
	}
	return nil, 0, fmt.Errorf("inter-node partitioning did not converge")
}

// interParallel evaluates candidate thresholds speculatively, `workers`
// per wave, each on its own scratch, and keeps the first success in chain
// order — the same threshold interSerial converges to, with identical
// placements, since each evaluation is a pure function of its inputs.
// The first wave is a single candidate: the initial P·L threshold almost
// always succeeds, and speculating past it would burn worker-time on
// evaluations the serial loop never runs. Only once a retry is actually
// needed do the waves widen to `workers`.
func (p *Partitioner) interParallel(sorted []seq.Sequence, n, pp, l int, nodeSpeed []float64, workers int) (*interScratch, int, error) {
	chain := p.thresholdChain(sorted, pp*l)
	if cap(p.winter) < workers {
		ws := make([]interScratch, workers)
		copy(ws, p.winter)
		p.winter = ws
	}
	p.winter = p.winter[:workers]
	p.waveOK = growB(p.waveOK, workers)
	for lo := 0; lo < len(chain); {
		width := workers
		if lo == 0 {
			width = 1
		}
		hi := min(lo+width, len(chain))
		if hi-lo == 1 {
			// One candidate: evaluate inline, no pool round-trip.
			if evalInter(&p.winter[0], sorted, n, pp, l, chain[lo], nodeSpeed) {
				return &p.winter[0], chain[lo], nil
			}
			lo = hi
			continue
		}
		ok := p.waveOK[:hi-lo]
		// Scratch is indexed by wave slot, not worker id: the pool hands
		// slots to workers dynamically, and a worker that picked up two
		// slots must not clobber the first one's result.
		_ = runner.ForEach(context.Background(), workers, hi-lo, func(i int) error {
			ok[i] = evalInter(&p.winter[i], sorted, n, pp, l, chain[lo+i], nodeSpeed)
			return nil
		})
		for i := range ok {
			if ok[i] {
				return &p.winter[i], chain[lo+i], nil
			}
		}
		lo = hi
	}
	return nil, 0, fmt.Errorf("inter-node partitioning did not converge")
}

// evalInter is one Algorithm 1 evaluation at a fixed threshold s1: it
// splits the zones, chunks z2 sequences across least-loaded nodes, and
// greedily places z01 sequences, reporting false as soon as a placement
// would exceed node capacity. It reads nothing but its arguments and
// writes nothing but scr, so concurrent calls on distinct scratch are
// deterministic. sorted must be in descending length order; on success
// scr.nodeSeqs and scr.inters hold the assignment, valid until the
// scratch is reused.
func evalInter(scr *interScratch, sorted []seq.Sequence, n, pp, l, s1 int, nodeSpeed []float64) bool {
	scr.nodeLoad = growI(scr.nodeLoad, n)
	nodeLoad := scr.nodeLoad
	for i := range nodeLoad {
		nodeLoad[i] = 0
	}
	if cap(scr.nodeSeqs) < n {
		scr.nodeSeqs = make([][]seq.Sequence, n)
	}
	scr.nodeSeqs = scr.nodeSeqs[:n]
	nodeSeqs := scr.nodeSeqs
	for i := range nodeSeqs {
		nodeSeqs[i] = nodeSeqs[i][:0]
	}
	inters := scr.inters[:0]

	z01, z2 := scr.z01[:0], scr.z2[:0]
	for _, s := range sorted {
		if s.Len >= s1 {
			z2 = append(z2, s)
		} else {
			z01 = append(z01, s)
		}
	}
	scr.z01, scr.z2 = z01, z2
	if len(z2) > 0 {
		sAvg := float64(seq.TotalLen(z2)) / float64(n)
		for _, s := range z2 {
			k := int(math.Ceil(float64(s.Len) / sAvg))
			if k < 1 {
				k = 1
			}
			if k > n {
				k = n
			}
			// leastLoaded returns scratch; copy because the placement
			// outlives this call's next selection.
			nodes := append([]int(nil), scr.leastLoaded(nodeLoad, k, nodeSpeed)...)
			share := seq.SplitEvenInto(scr.share, s.Len, k)
			if nodeSpeed != nil {
				// The emitted ring carries speed-proportional rank
				// weights, so each node's real token share is its speed
				// share — account (and capacity-check) the same way.
				w := make([]float64, k)
				for i, nd := range nodes {
					w[i] = nodeSpeed[nd]
				}
				share = seq.SplitWeightedInto(scr.share, s.Len, w)
			}
			scr.share = share
			for i, nd := range nodes {
				nodeLoad[nd] += share[i]
			}
			inters = append(inters, interPlacement{s: s, nodes: nodes})
		}
	}
	scr.inters = inters
	for _, s := range z01 {
		idx := argminLoad(nodeLoad, nodeSpeed)
		if s.Len+nodeLoad[idx] > pp*l {
			// z01 is sorted descending, so its first element is the
			// longest; the serial loop's next threshold is exactly the
			// next chain candidate.
			return false
		}
		nodeSeqs[idx] = append(nodeSeqs[idx], s)
		nodeLoad[idx] += s.Len
	}
	return true
}

// intraNode is Algorithm 2 for one node: it splits intra-node-zone
// sequences into quadratic-cost-balanced fragments (forming intra-node
// rings) and packs local-zone sequences onto the least-loaded devices,
// iteratively lowering the zone threshold on capacity failure. interShare
// carries the token loads already imposed by inter-node rings. Working
// state lives in scr (per-worker under a parallel solve); the node's
// placement lands in out. It reads only immutable partitioner state
// (cfg, cluster topology), so distinct nodes solve concurrently.
func (p *Partitioner) intraNode(scr *intraScratch, out *nodeOut, node int, assigned []seq.Sequence, interShare []int) error {
	c := p.cfg.Cluster
	P, L := c.GPUsPerNode, p.cfg.CapacityTokens
	ranks := c.RanksOfNode(node)
	var devSpeed []float64
	if p.cfg.Speeds != nil {
		scr.devSpeed = growF(scr.devSpeed, P)
		devSpeed = scr.devSpeed
		for d, r := range ranks {
			devSpeed[d] = p.cfg.Speeds[r]
		}
	}
	scr.devLoad = growI(scr.devLoad, P)
	s0 := L
	for iter := 0; ; iter++ {
		if iter > len(assigned)+2 {
			return fmt.Errorf("intra-node partitioning did not converge")
		}
		devLoad := scr.devLoad
		copy(devLoad, interShare)
		local := out.local
		for i := range local {
			local[i] = local[i][:0]
		}
		rings := out.rings[:0]

		z0, z1 := scr.z0[:0], scr.z1[:0]
		for _, s := range assigned { // assigned preserves descending order
			if s.Len >= s0 {
				z1 = append(z1, s)
			} else {
				z0 = append(z0, s)
			}
		}
		scr.z0, scr.z1 = z0, z1
		if len(z1) > 0 {
			var cAvg float64
			for _, s := range z1 {
				cAvg += float64(s.Len) * float64(s.Len)
			}
			cAvg /= float64(P)
			rr := 0 // round-robin cursor continues across sequences
			for _, s := range z1 {
				k := int(math.Ceil(float64(s.Len) * float64(s.Len) / cAvg))
				if k < 1 {
					k = 1
				}
				if k > P {
					k = P
				}
				if k == 1 {
					// A single fragment needs no ring; place like a local
					// sequence on the round-robin device (least-time-loaded
					// under a degraded view).
					d := rr % P
					if devSpeed != nil {
						d = argminLoad(devLoad, devSpeed)
					}
					local[d] = append(local[d], s)
					devLoad[d] += s.Len
					rr++
					continue
				}
				devs := make([]int, k)
				if devSpeed == nil {
					share := seq.SplitEvenInto(scr.share, s.Len, k)
					scr.share = share
					for i := 0; i < k; i++ {
						d := (rr + i) % P
						devs[i] = ranks[d]
						devLoad[d] += share[i]
					}
					rr += k
					rings = append(rings, seq.Ring{Seq: s, Zone: seq.ZoneIntra, Ranks: devs})
					continue
				}
				// Degraded view: a ring's lock-stepped rounds run at its
				// slowest member's pace, so fragments claim the k
				// least-time-loaded devices and weight their query-chunk
				// shares by speed — stragglers hold smaller chunks and the
				// rounds stay time-balanced.
				chosen := scr.leastLoaded(devLoad, k, devSpeed)
				for i, d := range chosen {
					devs[i] = ranks[d]
				}
				ring := seq.Ring{Seq: s, Zone: seq.ZoneIntra, Ranks: devs, Weights: p.ringWeights(devs)}
				scr.share = ring.TokensPerRankInto(scr.share)
				for i, d := range chosen {
					devLoad[d] += scr.share[i]
				}
				rings = append(rings, ring)
			}
		}
		out.rings = rings
		retry := false
		for _, s := range z0 {
			idx := argminLoad(devLoad, devSpeed)
			if s.Len+devLoad[idx] > L {
				s0 = z0[0].Len
				retry = true
				break
			}
			local[idx] = append(local[idx], s)
			devLoad[idx] += s.Len
		}
		if !retry {
			out.local = local
			out.s0 = s0
			return nil
		}
	}
}

// ringWeights returns speed-proportional ring weights for a rank set
// (nil on a healthy cluster, preserving the even 2G-chunk split). Reads
// only the immutable config, so it is safe from parallel workers.
func (p *Partitioner) ringWeights(ranks []int) []float64 {
	if p.cfg.Speeds == nil {
		return nil
	}
	out := make([]float64, len(ranks))
	for i, r := range ranks {
		out[i] = p.cfg.Speeds[r]
	}
	return out
}

// leastLoaded returns the indices of the k smallest loads, ties broken by
// index, in increasing-load order. A non-nil speed vector compares
// effective time loads (load/speed) instead of raw token loads. The
// result is selection scratch, valid until the next call on the same
// pickScratch.
func (ps *pickScratch) leastLoaded(load []int, k int, speed []float64) []int {
	n := len(load)
	ps.pick = growI(ps.pick, n)
	idx := ps.pick
	if k == 1 {
		// Early exit: the common single-fragment case needs only argmin,
		// not a k-selection pass.
		idx[0] = argminLoad(load, speed)
		return idx[:1]
	}
	for i := range idx {
		idx[i] = i
	}
	if speed == nil {
		// Selection sort of the first k: loads are tiny (#nodes or #devices).
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < n; j++ {
				if load[idx[j]] < load[idx[best]] {
					best = j
				}
			}
			idx[i], idx[best] = idx[best], idx[i]
		}
		return idx[:k]
	}
	// Speed-aware: precompute effective time loads once instead of
	// dividing inside the O(k·n) comparison loop. The explicit index
	// tie-break matters here: selection swaps perturb idx order, so
	// strict-smaller alone would resolve equal effective loads by
	// position, not by rank index.
	ps.eff = growF(ps.eff, n)
	eff := ps.eff
	for i := 0; i < n; i++ {
		eff[i] = float64(load[i]) / speed[i]
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			ej, eb := eff[idx[j]], eff[idx[best]]
			if ej < eb || (ej == eb && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// argminLoad is the greedy least-loaded choice: raw token loads when
// speed is nil, effective time loads (load/speed) otherwise. Ties break
// by index in both modes.
func argminLoad(v []int, speed []float64) int {
	best := 0
	if speed == nil {
		for i, x := range v {
			if x < v[best] {
				best = i
			}
		}
		return best
	}
	for i := range v {
		if float64(v[i])/speed[i] < float64(v[best])/speed[best] {
			best = i
		}
	}
	return best
}

// growI returns s resized to n, reusing capacity (contents unspecified).
func growI(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// growF is growI for float64 scratch.
func growF(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// growB is growI for bool scratch.
func growB(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}
