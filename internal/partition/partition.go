// Package partition implements Zeppelin's hierarchical sequence
// partitioner (§3.1): Algorithm 1 assigns sequences to node buckets,
// splitting inter-node-zone sequences across nodes to balance
// communication; Algorithm 2 then partitions within each node, splitting
// intra-node-zone sequences to balance quadratic attention computation and
// placing local-zone sequences on the least-loaded devices. Both
// algorithms iteratively lower their zone threshold whenever a placement
// would exceed capacity, which guarantees a feasible plan whenever the
// batch fits in aggregate memory.
//
// A Partitioner owns reusable scratch buffers: repeated Plan calls (the
// per-iteration hot path of streaming campaigns) and the threshold-retry
// loops inside one call allocate almost nothing beyond the plan they
// return. The Incremental planner (incremental.go) layers a keyed plan
// cache and delta patching on top for the re-planning fast path.
package partition

import (
	"fmt"
	"math"

	"zeppelin/internal/cluster"
	"zeppelin/internal/seq"
)

// Config parameterizes the partitioner.
type Config struct {
	Cluster *cluster.Cluster
	// CapacityTokens is L, the per-device token capacity.
	CapacityTokens int
	// Speeds, when set, is the per-rank relative speed vector (1 =
	// nominal, 0.4 = a 2.5×-slow straggler) of the degraded effective-speed
	// cluster view. The partitioner then balances *time* instead of
	// tokens: greedy placement weighs each rank's load by 1/speed, and
	// ring fragments claim the least-time-loaded devices instead of the
	// round-robin cursor, steering work away from slow ranks. Capacity
	// checks stay in raw tokens (memory does not speed up). Nil reproduces
	// the paper's homogeneous-cluster behavior exactly.
	Speeds []float64
}

// validate checks a configuration.
func (cfg *Config) validate() error {
	if cfg.Cluster == nil {
		return fmt.Errorf("partition: nil cluster")
	}
	if cfg.CapacityTokens <= 0 {
		return fmt.Errorf("partition: capacity must be positive, got %d", cfg.CapacityTokens)
	}
	if cfg.Speeds != nil {
		if len(cfg.Speeds) != cfg.Cluster.World() {
			return fmt.Errorf("partition: %d speeds for world of %d", len(cfg.Speeds), cfg.Cluster.World())
		}
		for r, s := range cfg.Speeds {
			if s <= 0 {
				return fmt.Errorf("partition: rank %d has non-positive speed %v", r, s)
			}
		}
	}
	return nil
}

// Partitioner runs the two-level hierarchical strategy. The zero value is
// unusable; construct with New. Not safe for concurrent use (the scratch
// buffers are shared across calls).
type Partitioner struct {
	cfg Config

	// Scratch reused across Plan calls and threshold retries. None of
	// these are retained by returned plans.
	sorted     []seq.Sequence
	z01, z2    []seq.Sequence // Alg. 1 zone split
	z0, z1     []seq.Sequence // Alg. 2 zone split
	nodeLoad   []int
	nodeSeqs   [][]seq.Sequence
	inters     []interPlacement
	interShare [][]int
	devLoad    []int
	local      [][]seq.Sequence
	rings      []seq.Ring
	share      []int
	pick       []int     // leastLoaded result scratch
	eff        []float64 // effective time-load scratch
	nodeSpeed  []float64
	devSpeed   []float64
}

// New validates the configuration.
func New(cfg Config) (*Partitioner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Partitioner{cfg: cfg}, nil
}

// Reconfigure swaps the configuration while keeping the scratch buffers,
// so a long-lived planner (the Incremental fast path) re-plans under a
// changed capacity or effective-speed view without re-allocating.
func (p *Partitioner) Reconfigure(cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	p.cfg = cfg
	return nil
}

// Result is a placement plan plus the thresholds the algorithms converged
// to, for diagnostics and the Fig. 5 zone analysis.
type Result struct {
	Plan *seq.Plan
	// S1 is the final inter-node zone threshold of Alg. 1 (sequences of
	// length >= S1 are split across nodes).
	S1 int
	// S0 is the final intra-node threshold per node from Alg. 2.
	S0 []int
}

// interPlacement records a z2 sequence chunked across a set of nodes.
type interPlacement struct {
	s     seq.Sequence
	nodes []int
}

// Plan partitions a batch across the cluster. It errors if the batch
// cannot fit (total tokens exceed aggregate capacity) or if any single
// sequence exceeds the cluster-wide token capacity. The returned plan
// shares nothing with the partitioner's scratch and stays valid across
// later Plan calls.
func (p *Partitioner) Plan(batch []seq.Sequence) (*Result, error) {
	c := p.cfg.Cluster
	N, P, L := c.Nodes, c.GPUsPerNode, p.cfg.CapacityTokens
	if total := seq.TotalLen(batch); total > N*P*L {
		return nil, fmt.Errorf("partition: batch of %d tokens exceeds capacity %d", total, N*P*L)
	}
	for _, s := range batch {
		if s.Len <= 0 {
			return nil, fmt.Errorf("partition: sequence %d has non-positive length", s.ID)
		}
	}
	p.sorted = append(p.sorted[:0], batch...)
	seq.SortByLenDesc(p.sorted)

	// Under a degraded cluster view, a node's effective speed is the sum
	// of its ranks' speeds — Alg. 1 then assigns fewer tokens to nodes
	// hosting stragglers.
	nodeSpeed := p.nodeSpeeds(N)

	nodeSeqs, inters, s1, err := p.interPartition(p.sorted, N, P, L, nodeSpeed)
	if err != nil {
		return nil, err
	}

	plan := seq.NewPlan(c.World())
	res := &Result{Plan: plan, S1: s1, S0: make([]int, N)}

	// Inter-node rings: a sequence chunked over k nodes rings over all
	// k·P ranks (Alg. 2 lines 4–6 split each node's chunk across all P
	// devices). A chunk count of 1 degenerates to an intra-node ring.
	interShare := p.interShareBuf(N, P)
	for _, ip := range inters {
		ranks := make([]int, 0, len(ip.nodes)*P)
		for _, n := range ip.nodes {
			ranks = append(ranks, c.RanksOfNode(n)...)
		}
		zone := seq.ZoneInter
		if len(ip.nodes) == 1 {
			zone = seq.ZoneIntra
		}
		ring := seq.Ring{Seq: ip.s, Zone: zone, Ranks: ranks, Weights: p.ringWeights(ranks)}
		plan.Rings = append(plan.Rings, ring)
		p.share = ring.TokensPerRankInto(p.share)
		for i, r := range ranks {
			interShare[c.NodeOf(r)][c.LocalRank(r)] += p.share[i]
		}
	}

	for n := 0; n < N; n++ {
		s0, err := p.intraPartition(plan, n, nodeSeqs[n], interShare[n])
		if err != nil {
			return nil, fmt.Errorf("partition: node %d: %w", n, err)
		}
		res.S0[n] = s0
	}
	return res, nil
}

// nodeSpeeds computes the per-node effective speed scratch (nil when the
// cluster view is healthy).
func (p *Partitioner) nodeSpeeds(n int) []float64 {
	if p.cfg.Speeds == nil {
		return nil
	}
	c := p.cfg.Cluster
	p.nodeSpeed = growF(p.nodeSpeed, n)
	for nd := 0; nd < n; nd++ {
		var sum float64
		lo := nd * c.GPUsPerNode
		for i := 0; i < c.GPUsPerNode; i++ {
			sum += p.cfg.Speeds[lo+i]
		}
		p.nodeSpeed[nd] = sum
	}
	return p.nodeSpeed
}

// interShareBuf returns the zeroed per-node × per-device inter-ring load
// scratch.
func (p *Partitioner) interShareBuf(n, dev int) [][]int {
	if cap(p.interShare) < n {
		p.interShare = make([][]int, n)
	}
	p.interShare = p.interShare[:n]
	for i := range p.interShare {
		p.interShare[i] = growI(p.interShare[i], dev)
		for j := range p.interShare[i] {
			p.interShare[i][j] = 0
		}
	}
	return p.interShare
}

// interPartition is Algorithm 1. sorted must be in descending length
// order. It returns the per-node whole-sequence assignments, the chunked
// inter-node placements, and the converged threshold s1. nodeSpeed, when
// non-nil, weighs every greedy load comparison by each node's effective
// speed (nil reproduces the homogeneous behavior bit for bit). The
// returned slices are partitioner scratch, valid until the next Plan.
func (p *Partitioner) interPartition(sorted []seq.Sequence, n, pp, l int, nodeSpeed []float64) (nodeSeqs [][]seq.Sequence, inters []interPlacement, s1 int, err error) {
	s1 = pp * l
	p.nodeLoad = growI(p.nodeLoad, n)
	if cap(p.nodeSeqs) < n {
		p.nodeSeqs = make([][]seq.Sequence, n)
	}
	p.nodeSeqs = p.nodeSeqs[:n]
	for iter := 0; ; iter++ {
		if iter > len(sorted)+2 {
			return nil, nil, 0, fmt.Errorf("inter-node partitioning did not converge")
		}
		nodeLoad := p.nodeLoad
		for i := range nodeLoad {
			nodeLoad[i] = 0
		}
		nodeSeqs = p.nodeSeqs
		for i := range nodeSeqs {
			nodeSeqs[i] = nodeSeqs[i][:0]
		}
		inters = p.inters[:0]

		z01, z2 := p.z01[:0], p.z2[:0]
		for _, s := range sorted {
			if s.Len >= s1 {
				z2 = append(z2, s)
			} else {
				z01 = append(z01, s)
			}
		}
		p.z01, p.z2 = z01, z2
		if len(z2) > 0 {
			sAvg := float64(seq.TotalLen(z2)) / float64(n)
			for _, s := range z2 {
				k := int(math.Ceil(float64(s.Len) / sAvg))
				if k < 1 {
					k = 1
				}
				if k > n {
					k = n
				}
				// leastLoaded returns scratch; copy because the placement
				// outlives this call's next selection.
				nodes := append([]int(nil), p.leastLoaded(nodeLoad, k, nodeSpeed)...)
				share := seq.SplitEvenInto(p.share, s.Len, k)
				if nodeSpeed != nil {
					// The emitted ring carries speed-proportional rank
					// weights, so each node's real token share is its speed
					// share — account (and capacity-check) the same way.
					w := make([]float64, k)
					for i, nd := range nodes {
						w[i] = nodeSpeed[nd]
					}
					share = seq.SplitWeightedInto(p.share, s.Len, w)
				}
				p.share = share
				for i, nd := range nodes {
					nodeLoad[nd] += share[i]
				}
				inters = append(inters, interPlacement{s: s, nodes: nodes})
			}
		}
		p.inters = inters
		retry := false
		for _, s := range z01 {
			idx := argminLoad(nodeLoad, nodeSpeed)
			if s.Len+nodeLoad[idx] > pp*l {
				// z01 is sorted descending, so its first element is the
				// maximum; lowering s1 to it promotes it to z2.
				s1 = z01[0].Len
				retry = true
				break
			}
			nodeSeqs[idx] = append(nodeSeqs[idx], s)
			nodeLoad[idx] += s.Len
		}
		if !retry {
			return nodeSeqs, inters, s1, nil
		}
	}
}

// intraPartition is Algorithm 2 for one node: it splits intra-node-zone
// sequences into quadratic-cost-balanced fragments (forming intra-node
// rings) and packs local-zone sequences onto the least-loaded devices.
// interShare carries the token loads already imposed by inter-node rings.
// It appends to plan and returns the converged threshold s0.
func (p *Partitioner) intraPartition(plan *seq.Plan, node int, assigned []seq.Sequence, interShare []int) (int, error) {
	c := p.cfg.Cluster
	P, L := c.GPUsPerNode, p.cfg.CapacityTokens
	ranks := c.RanksOfNode(node)
	var devSpeed []float64
	if p.cfg.Speeds != nil {
		p.devSpeed = growF(p.devSpeed, P)
		devSpeed = p.devSpeed
		for d, r := range ranks {
			devSpeed[d] = p.cfg.Speeds[r]
		}
	}
	p.devLoad = growI(p.devLoad, P)
	if cap(p.local) < P {
		p.local = make([][]seq.Sequence, P)
	}
	p.local = p.local[:P]
	s0 := L
	for iter := 0; ; iter++ {
		if iter > len(assigned)+2 {
			return 0, fmt.Errorf("intra-node partitioning did not converge")
		}
		devLoad := p.devLoad
		copy(devLoad, interShare)
		local := p.local
		for i := range local {
			local[i] = local[i][:0]
		}
		rings := p.rings[:0]

		z0, z1 := p.z0[:0], p.z1[:0]
		for _, s := range assigned { // assigned preserves descending order
			if s.Len >= s0 {
				z1 = append(z1, s)
			} else {
				z0 = append(z0, s)
			}
		}
		p.z0, p.z1 = z0, z1
		if len(z1) > 0 {
			var cAvg float64
			for _, s := range z1 {
				cAvg += float64(s.Len) * float64(s.Len)
			}
			cAvg /= float64(P)
			rr := 0 // round-robin cursor continues across sequences
			for _, s := range z1 {
				k := int(math.Ceil(float64(s.Len) * float64(s.Len) / cAvg))
				if k < 1 {
					k = 1
				}
				if k > P {
					k = P
				}
				if k == 1 {
					// A single fragment needs no ring; place like a local
					// sequence on the round-robin device (least-time-loaded
					// under a degraded view).
					d := rr % P
					if devSpeed != nil {
						d = argminLoad(devLoad, devSpeed)
					}
					local[d] = append(local[d], s)
					devLoad[d] += s.Len
					rr++
					continue
				}
				devs := make([]int, k)
				if devSpeed == nil {
					share := seq.SplitEvenInto(p.share, s.Len, k)
					p.share = share
					for i := 0; i < k; i++ {
						d := (rr + i) % P
						devs[i] = ranks[d]
						devLoad[d] += share[i]
					}
					rr += k
					rings = append(rings, seq.Ring{Seq: s, Zone: seq.ZoneIntra, Ranks: devs})
					continue
				}
				// Degraded view: a ring's lock-stepped rounds run at its
				// slowest member's pace, so fragments claim the k
				// least-time-loaded devices and weight their query-chunk
				// shares by speed — stragglers hold smaller chunks and the
				// rounds stay time-balanced.
				chosen := p.leastLoaded(devLoad, k, devSpeed)
				for i, d := range chosen {
					devs[i] = ranks[d]
				}
				ring := seq.Ring{Seq: s, Zone: seq.ZoneIntra, Ranks: devs, Weights: p.ringWeights(devs)}
				p.share = ring.TokensPerRankInto(p.share)
				for i, d := range chosen {
					devLoad[d] += p.share[i]
				}
				rings = append(rings, ring)
			}
		}
		p.rings = rings
		retry := false
		for _, s := range z0 {
			idx := argminLoad(devLoad, devSpeed)
			if s.Len+devLoad[idx] > L {
				s0 = z0[0].Len
				retry = true
				break
			}
			local[idx] = append(local[idx], s)
			devLoad[idx] += s.Len
		}
		if !retry {
			for d := 0; d < P; d++ {
				plan.Local[ranks[d]] = append(plan.Local[ranks[d]], local[d]...)
			}
			plan.Rings = append(plan.Rings, rings...)
			return s0, nil
		}
	}
}

// ringWeights returns speed-proportional ring weights for a rank set
// (nil on a healthy cluster, preserving the even 2G-chunk split).
func (p *Partitioner) ringWeights(ranks []int) []float64 {
	if p.cfg.Speeds == nil {
		return nil
	}
	out := make([]float64, len(ranks))
	for i, r := range ranks {
		out[i] = p.cfg.Speeds[r]
	}
	return out
}

// leastLoaded returns the indices of the k smallest loads, ties broken by
// index, in increasing-load order. A non-nil speed vector compares
// effective time loads (load/speed) instead of raw token loads. The
// result is partitioner scratch, valid until the next call.
func (p *Partitioner) leastLoaded(load []int, k int, speed []float64) []int {
	n := len(load)
	p.pick = growI(p.pick, n)
	idx := p.pick
	if k == 1 {
		// Early exit: the common single-fragment case needs only argmin,
		// not a k-selection pass.
		idx[0] = argminLoad(load, speed)
		return idx[:1]
	}
	for i := range idx {
		idx[i] = i
	}
	if speed == nil {
		// Selection sort of the first k: loads are tiny (#nodes or #devices).
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < n; j++ {
				if load[idx[j]] < load[idx[best]] {
					best = j
				}
			}
			idx[i], idx[best] = idx[best], idx[i]
		}
		return idx[:k]
	}
	// Speed-aware: precompute effective time loads once instead of
	// dividing inside the O(k·n) comparison loop. The explicit index
	// tie-break matters here: selection swaps perturb idx order, so
	// strict-smaller alone would resolve equal effective loads by
	// position, not by rank index.
	p.eff = growF(p.eff, n)
	eff := p.eff
	for i := 0; i < n; i++ {
		eff[i] = float64(load[i]) / speed[i]
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			ej, eb := eff[idx[j]], eff[idx[best]]
			if ej < eb || (ej == eb && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// argminLoad is the greedy least-loaded choice: raw token loads when
// speed is nil, effective time loads (load/speed) otherwise. Ties break
// by index in both modes.
func argminLoad(v []int, speed []float64) int {
	best := 0
	if speed == nil {
		for i, x := range v {
			if x < v[best] {
				best = i
			}
		}
		return best
	}
	for i := range v {
		if float64(v[i])/speed[i] < float64(v[best])/speed[best] {
			best = i
		}
	}
	return best
}

// growI returns s resized to n, reusing capacity (contents unspecified).
func growI(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// growF is growI for float64 scratch.
func growF(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
