package partition

import (
	"math/rand"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/seq"
	"zeppelin/internal/workload"
)

// incCell is the standard incremental-planner test cell: 4 nodes of
// Cluster A with the default per-rank capacity regime.
func incCell(t *testing.T) Config {
	t.Helper()
	return Config{Cluster: cluster.MustNew(cluster.ClusterA, 4), CapacityTokens: 5120}
}

// sampleBatch draws a capacity-respecting batch for a cell. FineWeb's
// short-tailed distribution yields the high-multiplicity streams (many
// local-zone sequences) the patching fast path targets; chunky datasets
// mostly decline to patch via the delta and drift guards.
func sampleBatch(cfg Config, rng *rand.Rand, frac float64) []seq.Sequence {
	budget := int(frac * float64(cfg.Cluster.World()*cfg.CapacityTokens))
	return workload.FineWeb.Batch(budget, rng)
}

// mutate replaces roughly `frac` of the batch's sequences (capped at
// ~10% of its tokens) with fresh short ones of similar total length,
// keeping IDs unique and the total under the original. It models the
// per-iteration churn of a streaming arrival; at least one sequence
// always changes so consecutive batches are never cache-identical.
func mutate(batch []seq.Sequence, rng *rand.Rand, frac float64, nextID int) ([]seq.Sequence, int) {
	total := seq.TotalLen(batch)
	budget := total / 10
	out := make([]seq.Sequence, 0, len(batch))
	removedTokens := 0
	for _, s := range batch {
		if removedTokens+s.Len <= budget && rng.Float64() < frac {
			removedTokens += s.Len
			continue
		}
		out = append(out, s)
	}
	if removedTokens == 0 && len(out) > 0 {
		removedTokens = out[len(out)-1].Len
		out = out[:len(out)-1]
	}
	for removedTokens > 256 {
		l := 256 + rng.Intn(1024)
		if l > removedTokens {
			l = removedTokens
		}
		out = append(out, seq.Sequence{ID: nextID, Len: l})
		nextID++
		removedTokens -= l
	}
	return out, nextID
}

func mustPlan(t *testing.T, p *Incremental, cfg Config, batch []seq.Sequence) (*Result, PlanStats) {
	t.Helper()
	res, st, err := p.Plan(cfg, batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(batch); err != nil {
		t.Fatalf("%s plan invalid: %v", st.Mode, err)
	}
	return res, st
}

func TestIncrementalExactCacheHit(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(1))
	batch := sampleBatch(cfg, rng, 0.8)

	p := NewIncremental(IncrementalConfig{})
	res1, st1 := mustPlan(t, p, cfg, batch)
	if st1.Mode != PlanFull {
		t.Fatalf("first plan mode = %s, want full", st1.Mode)
	}
	res2, st2 := mustPlan(t, p, cfg, batch)
	if st2.Mode != PlanCached {
		t.Fatalf("repeat plan mode = %s, want cached", st2.Mode)
	}
	if res1 != res2 {
		t.Fatal("cache hit must return the identical result")
	}
	if c := p.Counters(); c.Full != 1 || c.Cached != 1 || c.Patched != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestIncrementalExactModeNeverPatches(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(2))
	batch := sampleBatch(cfg, rng, 0.8)
	p := NewIncremental(IncrementalConfig{}) // MaxDeltaFrac 0: exact mode
	mustPlan(t, p, cfg, batch)

	next, _ := mutate(batch, rng, 0.05, 1<<20)
	_, st := mustPlan(t, p, cfg, next)
	if st.Mode != PlanFull {
		t.Fatalf("exact mode planned %s on a delta, want full", st.Mode)
	}
}

// TestIncrementalPatchCostEqual is the golden fast-path property: over a
// chain of small-delta batches, the patched plan conserves tokens (via
// Validate in mustPlan) and stays cost-equal to an independent full solve
// within tolerance.
func TestIncrementalPatchCostEqual(t *testing.T) {
	const tol = 1.20
	for _, seed := range []int64{3, 17, 91} {
		cfg := incCell(t)
		rng := rand.New(rand.NewSource(seed))
		batch := sampleBatch(cfg, rng, 0.8)

		p := NewIncremental(IncrementalConfig{MaxDeltaFrac: 0.3})
		full, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustPlan(t, p, cfg, batch)
		nextID := 1 << 20
		patched := 0
		for it := 0; it < 30; it++ {
			batch, nextID = mutate(batch, rng, 0.06, nextID)
			res, st := mustPlan(t, p, cfg, batch)
			ref, err := full.Plan(batch)
			if err != nil {
				t.Fatal(err)
			}
			gotImb := LoadImbalance(res.Plan, nil)
			refImb := LoadImbalance(ref.Plan, nil)
			if gotImb > refImb*tol {
				t.Fatalf("seed %d iter %d (%s): imbalance %.4f vs full %.4f exceeds %.0f%% tolerance",
					seed, it, st.Mode, gotImb, refImb, (tol-1)*100)
			}
			if st.Mode == PlanPatched {
				patched++
			}
		}
		if patched < 20 {
			t.Fatalf("seed %d: only %d/30 iterations patched — the fast path is not engaging", seed, patched)
		}
	}
}

func TestIncrementalPatchDeterminism(t *testing.T) {
	cfg := incCell(t)
	run := func() []*Result {
		rng := rand.New(rand.NewSource(7))
		batch := sampleBatch(cfg, rng, 0.8)
		p := NewIncremental(IncrementalConfig{MaxDeltaFrac: 0.3})
		out := make([]*Result, 0, 12)
		nextID := 1 << 20
		for it := 0; it < 12; it++ {
			res, _ := mustPlan(t, p, cfg, batch)
			out = append(out, res)
			batch, nextID = mutate(batch, rng, 0.06, nextID)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if !samePlanStructure(a[i].Plan, b[i].Plan) {
			t.Fatalf("iteration %d: plans differ across identical runs", i)
		}
	}
}

// samePlanStructure compares two plans' local lists and rings exactly.
func samePlanStructure(a, b *seq.Plan) bool {
	if a.World != b.World || len(a.Rings) != len(b.Rings) {
		return false
	}
	for r := range a.Local {
		if len(a.Local[r]) != len(b.Local[r]) {
			return false
		}
		for i := range a.Local[r] {
			if a.Local[r][i] != b.Local[r][i] {
				return false
			}
		}
	}
	for i := range a.Rings {
		ra, rb := a.Rings[i], b.Rings[i]
		if ra.Seq != rb.Seq || ra.Zone != rb.Zone || len(ra.Ranks) != len(rb.Ranks) {
			return false
		}
		for j := range ra.Ranks {
			if ra.Ranks[j] != rb.Ranks[j] {
				return false
			}
		}
	}
	return true
}

func TestIncrementalCacheEviction(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(11))
	a := sampleBatch(cfg, rng, 0.7)
	b := sampleBatch(cfg, rng, 0.7)
	c := sampleBatch(cfg, rng, 0.7)

	p := NewIncremental(IncrementalConfig{CacheCap: 2})
	mustPlan(t, p, cfg, a)
	mustPlan(t, p, cfg, b)
	if _, st := mustPlan(t, p, cfg, a); st.Mode != PlanCached {
		t.Fatalf("a should still be cached, got %s", st.Mode)
	}
	// Inserting c evicts the least recently used entry (b).
	mustPlan(t, p, cfg, c)
	if _, st := mustPlan(t, p, cfg, b); st.Mode != PlanCached {
		// b was evicted: replanning it is a full solve.
		if st.Mode != PlanFull {
			t.Fatalf("evicted batch planned as %s", st.Mode)
		}
	} else {
		t.Fatal("b should have been evicted by c")
	}
	if _, st := mustPlan(t, p, cfg, a); st.Mode == PlanCached {
		t.Fatal("a should have been evicted after b's re-solve")
	}
}

// TestIncrementalHealthInvalidation pins the fault-arrival rule: a change
// in the effective-speed view (straggler onset or clearing) must force a
// full solve even when the batch barely changed.
func TestIncrementalHealthInvalidation(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(13))
	batch := sampleBatch(cfg, rng, 0.8)
	p := NewIncremental(IncrementalConfig{MaxDeltaFrac: 0.3})
	mustPlan(t, p, cfg, batch)

	// Same-view small delta patches...
	next, nextID := mutate(batch, rng, 0.04, 1<<20)
	if _, st := mustPlan(t, p, cfg, next); st.Mode != PlanPatched {
		t.Fatalf("healthy small delta planned as %s, want patched", st.Mode)
	}

	// ...but the same delta under a new straggler view must full-solve.
	degraded := cfg
	degraded.Speeds = make([]float64, cfg.Cluster.World())
	for i := range degraded.Speeds {
		degraded.Speeds[i] = 1
	}
	degraded.Speeds[3] = 0.4
	next, nextID = mutate(next, rng, 0.04, nextID)
	res, st, err := p.Plan(degraded, next)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != PlanFull {
		t.Fatalf("straggler onset planned as %s, want full", st.Mode)
	}
	if err := res.Plan.Validate(next); err != nil {
		t.Fatal(err)
	}

	// Under the unchanged degraded view, patching resumes (speed-aware
	// greedy placement).
	next, _ = mutate(next, rng, 0.04, nextID)
	if _, st := mustPlan(t, p, degraded, next); st.Mode != PlanPatched {
		t.Fatalf("stable degraded view planned as %s, want patched", st.Mode)
	}

	// Fault clearing (back to nil speeds) invalidates again.
	if _, st := mustPlan(t, p, cfg, next); st.Mode != PlanFull {
		t.Fatalf("fault clearing planned as %s, want full", st.Mode)
	}
}

func TestIncrementalResizeInvalidation(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(19))
	batch := sampleBatch(cfg, rng, 0.4)
	p := NewIncremental(IncrementalConfig{MaxDeltaFrac: 0.5})
	mustPlan(t, p, cfg, batch)

	shrunk := Config{Cluster: cluster.MustNew(cluster.ClusterA, 2), CapacityTokens: cfg.CapacityTokens}
	if _, st := mustPlan(t, p, shrunk, batch); st.Mode != PlanFull {
		t.Fatalf("elastic resize planned as %s, want full", st.Mode)
	}

	grown := cfg
	grown.CapacityTokens = cfg.CapacityTokens * 2
	if _, st := mustPlan(t, p, grown, batch); st.Mode != PlanFull {
		t.Fatalf("capacity change planned as %s, want full", st.Mode)
	}
}

// TestIncrementalLongArrivalFallsBack: an arrival at or above the intra
// threshold needs the ring machinery, so the patch declines.
func TestIncrementalLongArrivalFallsBack(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(23))
	batch := sampleBatch(cfg, rng, 0.5)
	p := NewIncremental(IncrementalConfig{MaxDeltaFrac: 0.9})
	res, _ := mustPlan(t, p, cfg, batch)
	minS0 := cfg.CapacityTokens
	for _, s0 := range res.S0 {
		if s0 < minS0 {
			minS0 = s0
		}
	}
	long := append(append([]seq.Sequence(nil), batch...), seq.Sequence{ID: 1 << 20, Len: minS0})
	if _, st := mustPlan(t, p, cfg, long); st.Mode != PlanFull {
		t.Fatalf("ring-zone arrival planned as %s, want full", st.Mode)
	}
}

func TestIncrementalReset(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(29))
	batch := sampleBatch(cfg, rng, 0.8)
	p := NewIncremental(IncrementalConfig{MaxDeltaFrac: 0.3})
	mustPlan(t, p, cfg, batch)
	p.Reset()
	if c := p.Counters(); c.Plans() != 0 {
		t.Fatalf("counters survive Reset: %+v", c)
	}
	if _, st := mustPlan(t, p, cfg, batch); st.Mode != PlanFull {
		t.Fatalf("post-Reset plan mode = %s, want full", st.Mode)
	}
}

// TestIncrementalPatchedEqualsCachedOnRepeat: a batch planned by patching
// and then repeated verbatim must come back from the cache as the very
// same plan (patched plans are first-class cache entries).
func TestIncrementalPatchRepeatCached(t *testing.T) {
	cfg := incCell(t)
	rng := rand.New(rand.NewSource(31))
	batch := sampleBatch(cfg, rng, 0.8)
	p := NewIncremental(IncrementalConfig{MaxDeltaFrac: 0.3})
	mustPlan(t, p, cfg, batch)
	// An explicitly tiny delta: drop the shortest sequence, add two
	// small arrivals of the same total.
	shortest := 0
	for i, s := range batch {
		if s.Len < batch[shortest].Len {
			shortest = i
		}
	}
	dropped := batch[shortest].Len
	next := append(append([]seq.Sequence(nil), batch[:shortest]...), batch[shortest+1:]...)
	next = append(next, seq.Sequence{ID: 1 << 20, Len: (dropped + 1) / 2}, seq.Sequence{ID: 1<<20 + 1, Len: dropped / 2})
	for len(next) > 0 && next[len(next)-1].Len == 0 {
		next = next[:len(next)-1]
	}
	res1, st := mustPlan(t, p, cfg, next)
	if st.Mode != PlanPatched {
		t.Fatalf("delta planned as %s, want patched", st.Mode)
	}
	res2, st2 := mustPlan(t, p, cfg, next)
	if st2.Mode != PlanCached || res2 != res1 {
		t.Fatalf("verbatim repeat of patched batch: mode %s, same=%v", st2.Mode, res1 == res2)
	}
}
