package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zeppelin/internal/cluster"
	"zeppelin/internal/seq"
)

// Property: for any batch that fits in aggregate capacity, the planner
// produces a valid plan — token conservation, ring structure, and
// termination — across cluster shapes and pathological length mixes.
func TestPropertyFuzzPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	specs := []cluster.Spec{cluster.ClusterA, cluster.ClusterB, cluster.ClusterC}
	for iter := 0; iter < 150; iter++ {
		spec := specs[iter%len(specs)]
		nodes := 1 + rng.Intn(4)
		c := cluster.MustNew(spec, nodes)
		capTok := 1024 + rng.Intn(8192)
		budget := c.World() * capTok // exactly fills aggregate capacity
		var batch []seq.Sequence
		remaining := budget * (1 + rng.Intn(3)) / 4 // 25-75% full
		id := 0
		for remaining > 0 {
			var l int
			switch rng.Intn(4) {
			case 0: // tiny
				l = 1 + rng.Intn(64)
			case 1: // medium
				l = 256 + rng.Intn(capTok)
			case 2: // node-scale
				l = capTok + rng.Intn(capTok*c.GPUsPerNode)
			default: // cluster-scale
				l = 1 + rng.Intn(remaining)
			}
			if l > remaining {
				l = remaining
			}
			batch = append(batch, seq.Sequence{ID: id, Len: l})
			id++
			remaining -= l
		}
		p, err := New(Config{Cluster: c, CapacityTokens: capTok})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Plan(batch)
		if err != nil {
			t.Fatalf("iter %d (%s x%d, L=%d, %d seqs): %v", iter, spec.Name, nodes, capTok, len(batch), err)
		}
		if err := res.Plan.Validate(batch); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// Rings never span more ranks than exist and inter rings span
		// whole nodes.
		for _, ring := range res.Plan.Rings {
			if ring.G() > c.World() {
				t.Fatalf("iter %d: ring of %d ranks in world %d", iter, ring.G(), c.World())
			}
			if ring.Zone == seq.ZoneInter && ring.G()%c.GPUsPerNode != 0 {
				t.Fatalf("iter %d: inter ring size %d not a whole number of nodes", iter, ring.G())
			}
		}
	}
}

// Property: a single sequence of any feasible size is always placeable,
// and its ring size grows monotonically with its length.
func TestPropertySingleSequenceMonotoneRing(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 4)
	const capTok = 4096
	p, err := New(Config{Cluster: c, CapacityTokens: capTok})
	if err != nil {
		t.Fatal(err)
	}
	prevG := 0
	for l := 1024; l <= c.World()*capTok; l *= 2 {
		pp, _ := New(Config{Cluster: c, CapacityTokens: capTok})
		res, err := pp.Plan([]seq.Sequence{{ID: 0, Len: l}})
		if err != nil {
			t.Fatalf("len %d: %v", l, err)
		}
		g := 1
		if len(res.Plan.Rings) == 1 {
			g = res.Plan.Rings[0].G()
		}
		if g < prevG {
			t.Fatalf("ring size shrank from %d to %d at length %d", prevG, g, l)
		}
		prevG = g
	}
	_ = p
}

// Property: the plan's per-rank quadratic load never exceeds the whole
// batch's (sanity) and the heaviest rank carries at most the full load of
// the heaviest sequence plus its greedy share.
func TestPropertyPairLoadBounded(t *testing.T) {
	f := func(lens []uint16, nodeSeed uint8) bool {
		nodes := 1 + int(nodeSeed)%2
		c := cluster.MustNew(cluster.ClusterA, nodes)
		const capTok = 8192
		var batch []seq.Sequence
		total := 0
		for i, l := range lens {
			ll := int(l)%capTok + 1
			if total+ll > c.World()*capTok {
				break
			}
			batch = append(batch, seq.Sequence{ID: i, Len: ll})
			total += ll
		}
		if len(batch) == 0 {
			return true
		}
		p, err := New(Config{Cluster: c, CapacityTokens: capTok})
		if err != nil {
			return false
		}
		res, err := p.Plan(batch)
		if err != nil {
			return false
		}
		if res.Plan.Validate(batch) != nil {
			return false
		}
		var totalPairs float64
		for _, q := range res.Plan.PairsPerRank() {
			if q < 0 {
				return false
			}
			totalPairs += q
		}
		return totalPairs > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
