package partition

import (
	"math/rand"
	"testing"

	"zeppelin/internal/seq"
)

// slideStream is the steady-state churn model for the arena tests: a
// fixed-size ID-sorted window where each step retires the oldest
// sequence and admits one fresh arrival in place — the shape of a
// streaming campaign once warm, and exactly what the patch fast path is
// built for. Lengths cycle deterministically so runs are reproducible
// without an RNG in the measured loop.
type slideStream struct {
	batch  []seq.Sequence
	nextID int
}

func newSlideStream(n int) *slideStream {
	st := &slideStream{batch: make([]seq.Sequence, n)}
	for i := range st.batch {
		st.batch[i] = seq.Sequence{ID: st.nextID, Len: 192 + (st.nextID%7)*16}
		st.nextID++
	}
	return st
}

// step retires the oldest sequence and admits a fresh one, in place.
func (st *slideStream) step() []seq.Sequence {
	copy(st.batch, st.batch[1:])
	st.batch[len(st.batch)-1] = seq.Sequence{ID: st.nextID, Len: 192 + (st.nextID%7)*16}
	st.nextID++
	return st.batch
}

// TestIncrementalReusePlansContentIdentity: the arena-built patched plans
// must be bit-identical to the default mode's freshly allocated ones,
// step for step, including the fast-path decisions taken.
func TestIncrementalReusePlansContentIdentity(t *testing.T) {
	cfg := incCell(t)
	inc := IncrementalConfig{MaxDeltaFrac: 0.3}
	def := NewIncremental(inc)
	inc.ReusePlans = true
	arena := NewIncremental(inc)

	rng := rand.New(rand.NewSource(41))
	batch := sampleBatch(cfg, rng, 0.75)
	nextID := 1 << 20
	for it := 0; it < 40; it++ {
		want, wantSt := mustPlan(t, def, cfg, batch)
		got, gotSt, err := arena.Plan(cfg, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Plan.Validate(batch); err != nil {
			t.Fatalf("iter %d: arena plan invalid: %v", it, err)
		}
		// Cache divergence is expected (arena plans are not cached), so
		// compare solve outcomes only where both modes took the same
		// path; structure must match everywhere.
		if !samePlanStructure(got.Plan, want.Plan) {
			t.Fatalf("iter %d (%s vs %s): arena plan differs from default mode", it, gotSt.Mode, wantSt.Mode)
		}
		if got.S1 != want.S1 {
			t.Fatalf("iter %d: S1 %d vs %d", it, got.S1, want.S1)
		}
		batch, nextID = mutate(batch, rng, 0.05, nextID)
	}
	if arena.Counters().Patched < 20 {
		t.Fatalf("arena mode patched only %d/40 — fast path not engaging: %+v", arena.Counters().Patched, arena.Counters())
	}
}

// TestIncrementalReusePlansArenaLifetime pins the documented contract:
// a patched Result stays intact across one subsequent Plan call (the
// other arena serves it) and is rebuilt two calls later.
func TestIncrementalReusePlansArenaLifetime(t *testing.T) {
	cfg := incCell(t)
	p := NewIncremental(IncrementalConfig{MaxDeltaFrac: 0.3, ReusePlans: true, MaxPatchRun: 1 << 30})
	st := newSlideStream(512)
	mustPlan(t, p, cfg, st.batch)

	res1, stats := mustPlan(t, p, cfg, st.step())
	if stats.Mode != PlanPatched {
		t.Fatalf("mode = %s, want patched", stats.Mode)
	}
	tok1 := res1.Plan.TotalTokens()
	res2, stats2 := mustPlan(t, p, cfg, st.step())
	if stats2.Mode != PlanPatched {
		t.Fatalf("mode = %s, want patched", stats2.Mode)
	}
	if res1.Plan.TotalTokens() != tok1 {
		t.Fatal("previous result clobbered after one Plan call — ping-pong broken")
	}
	if res2 == res1 || res2.Plan == res1.Plan {
		t.Fatal("consecutive patches must come from alternating arenas")
	}
	// Two patches later the first arena is legitimately rebuilt.
	res3, _ := mustPlan(t, p, cfg, st.step())
	if res3 != res1 {
		t.Fatal("third patch should reuse the first arena")
	}
}

// TestIncrementalReusePlansNotCached: verbatim repeats of a patched batch
// re-patch (a trivial empty-delta rebuild) instead of serving the
// mutable arena plan from the keyed cache.
func TestIncrementalReusePlansNotCached(t *testing.T) {
	cfg := incCell(t)
	p := NewIncremental(IncrementalConfig{MaxDeltaFrac: 0.3, ReusePlans: true})
	st := newSlideStream(512)
	mustPlan(t, p, cfg, st.batch)
	next := st.step()
	if _, stats := mustPlan(t, p, cfg, next); stats.Mode != PlanPatched {
		t.Fatalf("mode = %s, want patched", stats.Mode)
	}
	if _, stats := mustPlan(t, p, cfg, next); stats.Mode != PlanPatched {
		t.Fatalf("verbatim repeat mode = %s, want patched (arena plans must not be cached)", stats.Mode)
	}
}

// TestIncrementalPatchZeroAlloc is the tentpole's steady-state guarantee:
// with ReusePlans, a warm patch path allocates nothing per Plan call.
func TestIncrementalPatchZeroAlloc(t *testing.T) {
	cfg := incCell(t)
	p := NewIncremental(IncrementalConfig{
		MaxDeltaFrac:      0.3,
		MaxImbalanceDrift: 0.5,
		MaxPatchRun:       1 << 30, // never force a (heap-allocating) full solve
		ReusePlans:        true,
	})
	st := newSlideStream(512)
	if _, stats, err := p.Plan(cfg, st.batch); err != nil || stats.Mode != PlanFull {
		t.Fatalf("cold plan: mode=%v err=%v", stats.Mode, err)
	}
	// Warm the scratch and both arenas.
	for i := 0; i < 8; i++ {
		if _, stats, err := p.Plan(cfg, st.step()); err != nil || stats.Mode != PlanPatched {
			t.Fatalf("warmup %d: mode=%v err=%v", i, stats.Mode, err)
		}
	}
	var bad error
	avg := testing.AllocsPerRun(200, func() {
		_, stats, err := p.Plan(cfg, st.step())
		if err != nil {
			bad = err
		}
		if stats.Mode != PlanPatched {
			bad = fmtModeErr(stats.Mode)
		}
	})
	if bad != nil {
		t.Fatal(bad)
	}
	if avg != 0 {
		t.Fatalf("warm patch path allocates %.2f allocs/op, want 0", avg)
	}
}

type fmtModeErr PlanMode

func (e fmtModeErr) Error() string { return "unexpected plan mode " + PlanMode(e).String() }
