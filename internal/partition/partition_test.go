package partition

import (
	"math/rand"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/seq"
	"zeppelin/internal/workload"
)

func newPart(t *testing.T, spec cluster.Spec, nodes, capacity int) *Partitioner {
	t.Helper()
	p, err := New(Config{Cluster: cluster.MustNew(spec, nodes), CapacityTokens: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil cluster should fail")
	}
	if _, err := New(Config{Cluster: cluster.MustNew(cluster.ClusterA, 1)}); err == nil {
		t.Fatal("zero capacity should fail")
	}
}

func TestRejectsOversizedBatch(t *testing.T) {
	p := newPart(t, cluster.ClusterA, 1, 1000)
	_, err := p.Plan([]seq.Sequence{{ID: 0, Len: 9000}})
	if err == nil {
		t.Fatal("batch exceeding aggregate capacity must fail")
	}
}

func TestRejectsEmptySequence(t *testing.T) {
	p := newPart(t, cluster.ClusterA, 1, 1000)
	if _, err := p.Plan([]seq.Sequence{{ID: 0, Len: 0}}); err == nil {
		t.Fatal("zero-length sequence must fail")
	}
}

func TestShortSequencesStayLocal(t *testing.T) {
	p := newPart(t, cluster.ClusterA, 2, 8192)
	batch := []seq.Sequence{}
	for i := 0; i < 16; i++ {
		batch = append(batch, seq.Sequence{ID: i, Len: 500})
	}
	res, err := p.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(batch); err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Rings) != 0 {
		t.Fatalf("short sequences should all be local, got %d rings", len(res.Plan.Rings))
	}
	// 16 sequences over 16 GPUs: greedy least-loaded gives one each.
	for r, ls := range res.Plan.Local {
		if len(ls) != 1 {
			t.Fatalf("rank %d has %d local sequences, want 1", r, len(ls))
		}
	}
}

func TestLongSequenceSpansNodes(t *testing.T) {
	// One sequence filling the entire 2-node budget must ring over all 16.
	p := newPart(t, cluster.ClusterA, 2, 4096)
	batch := []seq.Sequence{{ID: 0, Len: 2 * 8 * 4096}}
	res, err := p.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(batch); err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Rings) != 1 {
		t.Fatalf("want 1 ring, got %d", len(res.Plan.Rings))
	}
	ring := res.Plan.Rings[0]
	if ring.Zone != seq.ZoneInter {
		t.Fatalf("zone = %v, want inter-node", ring.Zone)
	}
	if ring.G() != 16 {
		t.Fatalf("ring size = %d, want 16", ring.G())
	}
}

func TestMediumSequenceIntraNodeRing(t *testing.T) {
	// A sequence just under the inter threshold but above device capacity
	// must split within a node.
	p := newPart(t, cluster.ClusterA, 2, 4096)
	batch := []seq.Sequence{
		{ID: 0, Len: 3 * 4096}, // needs ~3 devices
		{ID: 1, Len: 1000}, {ID: 2, Len: 1000}, {ID: 3, Len: 900},
	}
	res, err := p.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(batch); err != nil {
		t.Fatal(err)
	}
	var intraRings int
	c := cluster.MustNew(cluster.ClusterA, 2)
	for _, ring := range res.Plan.Rings {
		if ring.Zone == seq.ZoneIntra {
			intraRings++
			node := c.NodeOf(ring.Ranks[0])
			for _, r := range ring.Ranks {
				if c.NodeOf(r) != node {
					t.Fatal("intra ring must stay within one node")
				}
			}
		}
	}
	if intraRings == 0 {
		t.Fatal("expected at least one intra-node ring")
	}
}

func TestCapacityRespected(t *testing.T) {
	cap := 4096
	p := newPart(t, cluster.ClusterA, 2, cap)
	rng := rand.New(rand.NewSource(42))
	batch := workload.ArXiv.Batch(16*4096, rng)
	res, err := p.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(batch); err != nil {
		t.Fatal(err)
	}
	for r, tok := range res.Plan.TokensPerRank() {
		// Alg. 2 balances *quadratic* cost for fragmented sequences, so a
		// rank's token count can modestly exceed L (only local-zone
		// placements are capacity-gated). Allow 10% headroom.
		if float64(tok) > 1.1*float64(cap) {
			t.Fatalf("rank %d holds %d tokens, capacity %d", r, tok, cap)
		}
	}
}

func TestThresholdLoweringConverges(t *testing.T) {
	// Capacity forces nearly every sequence to split: many sequences of
	// exactly capacity size.
	p := newPart(t, cluster.ClusterA, 2, 1024)
	var batch []seq.Sequence
	for i := 0; i < 16; i++ {
		batch = append(batch, seq.Sequence{ID: i, Len: 1024})
	}
	res, err := p.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(batch); err != nil {
		t.Fatal(err)
	}
	if res.S1 > 8*1024 {
		t.Fatalf("s1 = %d should not exceed initial P*L", res.S1)
	}
}

func TestQuadraticBalanceAcrossDevices(t *testing.T) {
	// One node, one long + filler shorts: pair loads should be far closer
	// than a token-balanced split of whole sequences would give.
	p := newPart(t, cluster.ClusterA, 1, 8192)
	batch := []seq.Sequence{
		{ID: 0, Len: 16384}, // must fragment over >= 2 devices
		{ID: 1, Len: 4000}, {ID: 2, Len: 4000}, {ID: 3, Len: 4000},
		{ID: 4, Len: 4000}, {ID: 5, Len: 4000}, {ID: 6, Len: 4000},
	}
	res, err := p.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(batch); err != nil {
		t.Fatal(err)
	}
	pairs := res.Plan.PairsPerRank()
	var maxP, sumP float64
	for _, q := range pairs {
		sumP += q
		if q > maxP {
			maxP = q
		}
	}
	avg := sumP / float64(len(pairs))
	if maxP > 3*avg {
		t.Fatalf("quadratic imbalance too high: max %.3g vs avg %.3g (pairs=%v)", maxP, avg, pairs)
	}
}

func TestInterRingCrossNodeChunking(t *testing.T) {
	// Two long sequences on 4 nodes: each should chunk across ~2 nodes
	// rather than spreading thinly over all 4 (Alg. 1 lines 7-10 increase
	// granularity for cross-node sequences).
	p := newPart(t, cluster.ClusterA, 4, 4096)
	batch := []seq.Sequence{
		{ID: 0, Len: 60000},
		{ID: 1, Len: 60000},
	}
	res, err := p.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(batch); err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Rings) != 2 {
		t.Fatalf("want 2 rings, got %d", len(res.Plan.Rings))
	}
	for _, ring := range res.Plan.Rings {
		if ring.G() != 16 { // 2 nodes × 8 GPUs each
			t.Fatalf("ring size = %d, want 16 (2 nodes)", ring.G())
		}
	}
}

func TestDeterministicPlans(t *testing.T) {
	p := newPart(t, cluster.ClusterA, 2, 4096)
	rng1 := rand.New(rand.NewSource(9))
	batch := workload.GitHub.Batch(16*4096, rng1)
	r1, err := p.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	p2 := newPart(t, cluster.ClusterA, 2, 4096)
	r2, err := p2.Plan(batch)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := r1.Plan.TokensPerRank(), r2.Plan.TokensPerRank()
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("plans must be deterministic")
		}
	}
}

// Property-style test over all datasets, scales, and seeds: plans always
// validate (token conservation, ring structure) and respect capacity.
func TestPropertyPlansValidateAcrossWorkloads(t *testing.T) {
	specs := []cluster.Spec{cluster.ClusterA, cluster.ClusterC}
	for _, spec := range specs {
		for _, nodes := range []int{1, 2, 4} {
			for _, d := range workload.Eval {
				rng := rand.New(rand.NewSource(int64(nodes)*100 + int64(len(d.Name))))
				c := cluster.MustNew(spec, nodes)
				capTok := 8192
				p, err := New(Config{Cluster: c, CapacityTokens: capTok})
				if err != nil {
					t.Fatal(err)
				}
				batch := d.Batch(c.World()*4096, rng)
				res, err := p.Plan(batch)
				if err != nil {
					t.Fatalf("%s/%s/%d nodes: %v", spec.Name, d.Name, nodes, err)
				}
				if err := res.Plan.Validate(batch); err != nil {
					t.Fatalf("%s/%s/%d nodes: %v", spec.Name, d.Name, nodes, err)
				}
				if res.S1 <= 0 || res.S1 > c.GPUsPerNode*capTok {
					t.Fatalf("s1 = %d out of range", res.S1)
				}
			}
		}
	}
}

func TestLeastLoaded(t *testing.T) {
	var ps pickScratch
	got := ps.leastLoaded([]int{5, 1, 3, 1}, 2, nil)
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("leastLoaded = %v, want [1 3]", got)
	}
	// Effective time loads: rank 0 is fast, rank 1 slow — 5/5 < 1/0.1.
	got = ps.leastLoaded([]int{5, 1, 3, 1}, 2, []float64{5, 0.1, 1, 1})
	if got[0] != 0 || got[1] != 3 {
		t.Fatalf("speed-weighted leastLoaded = %v, want [0 3]", got)
	}
	// k == 1 takes the argmin early exit.
	if one := ps.leastLoaded([]int{4, 2, 9}, 1, nil); len(one) != 1 || one[0] != 1 {
		t.Fatalf("leastLoaded k=1 = %v, want [1]", one)
	}
}

func TestArgminLoad(t *testing.T) {
	if argminLoad([]int{3, 1, 2}, nil) != 1 {
		t.Fatal("argmin wrong")
	}
	if argminLoad([]int{7}, nil) != 0 {
		t.Fatal("argmin singleton wrong")
	}
	// Under speeds, the fast rank's effective load wins: 3/10 < 1/1.
	if argminLoad([]int{3, 1, 2}, []float64{10, 1, 1}) != 0 {
		t.Fatal("speed-weighted argmin wrong")
	}
}
