// Shared plan cache: the fleet-wide tier above the per-planner LRU.
// One zeppelind process serves many concurrent plan requests and
// campaign sessions, and under fleet traffic the same (cluster view,
// capacity, batch) inputs recur across them — identical curl bodies,
// replayed campaign specs, many clients planning the same cell. The
// per-Incremental cache cannot help there: each request and each
// session owns its own planner. SharedCache is the process-wide exact
// tier they all publish full solves into and probe before solving.
//
// Soundness rests on one invariant: the cache stores *full-solve
// results only*. A full hierarchical solve is a pure function of
// (Nodes, GPUsPerNode, CapacityTokens, Speeds, batch), so an exact hit
// is bit-identical to re-solving — regardless of which planner, request,
// or session produced the entry. Patched plans are history-dependent
// (they drift from whatever base their planner happened to hold) and
// are never published. Every hit therefore preserves the repo-wide
// bit-identical-responses contract at any cache state and worker count.
package partition

import (
	"hash/maphash"
	"math"
	"sync"

	"zeppelin/internal/seq"
)

// DefaultSharedCap is the shared tier's entry bound when the configured
// capacity is not positive.
const DefaultSharedCap = 256

// SharedCache is a concurrency-safe exact-key LRU of full-solve plans,
// shared across planners. The zero value is unusable; build with
// NewSharedCache. All methods are safe for concurrent use.
type SharedCache struct {
	mu        sync.Mutex
	cap       int
	seed      maphash.Seed
	entries   []sharedEntry // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
	keyBuf    []byte // hash scratch, guarded by mu
}

// sharedEntry is one published full solve plus the exact inputs that
// produced it. Key collisions are survivable: every lookup re-compares
// the full inputs, the hash only prunes.
type sharedEntry struct {
	key      uint64
	nodes    int
	perNode  int
	capacity int
	speeds   []float64
	batch    []seq.Sequence
	res      *Result
}

// SharedCacheStats is a point-in-time counter snapshot.
type SharedCacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped off the LRU tail to make room —
	// a full cache churning under distinct inputs.
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// NewSharedCache builds a shared tier bounded to cap entries
// (DefaultSharedCap when cap <= 0).
func NewSharedCache(cap int) *SharedCache {
	if cap <= 0 {
		cap = DefaultSharedCap
	}
	return &SharedCache{cap: cap, seed: maphash.MakeSeed()}
}

// Get returns the published full solve for the exact inputs, promoting
// the entry to the front. Every call counts as a hit or a miss.
func (c *SharedCache) Get(cfg Config, batch []seq.Sequence) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := c.hashLocked(cfg, batch)
	if i := c.findLocked(key, cfg, batch); i >= 0 {
		if i != 0 {
			hit := c.entries[i]
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = hit
		}
		c.hits++
		return c.entries[0].res, true
	}
	c.misses++
	return nil, false
}

// Put publishes a full-solve result. The caller must only pass results
// that are pure functions of (cfg, batch) — full solves, never patched
// plans — and must treat res as immutable afterwards. A concurrent
// duplicate publish (two planners solving the same key at once) is
// deduplicated rather than stored twice.
func (c *SharedCache) Put(cfg Config, batch []seq.Sequence, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := c.hashLocked(cfg, batch)
	if i := c.findLocked(key, cfg, batch); i >= 0 {
		if i != 0 {
			hit := c.entries[i]
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = hit
		}
		return
	}
	e := sharedEntry{
		key:      key,
		nodes:    cfg.Cluster.Nodes,
		perNode:  cfg.Cluster.GPUsPerNode,
		capacity: cfg.CapacityTokens,
		speeds:   copyF(cfg.Speeds),
		batch:    append([]seq.Sequence(nil), batch...),
		res:      res,
	}
	if len(c.entries) < c.cap {
		c.entries = append(c.entries, sharedEntry{})
	} else {
		// The shift below drops the LRU tail to make room.
		c.evictions++
	}
	copy(c.entries[1:], c.entries[:len(c.entries)-1])
	c.entries[0] = e
}

// Stats snapshots the counters.
func (c *SharedCache) Stats() SharedCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SharedCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.entries), Capacity: c.cap,
	}
}

// findLocked scans for an exact match. Unlike the per-planner cache's
// world-level check, the node split is compared explicitly: a 2×8 and a
// 4×4 cluster share a world of 16 but bucket sequences differently, and
// a shared tier sees both shapes.
func (c *SharedCache) findLocked(key uint64, cfg Config, batch []seq.Sequence) int {
	for i := range c.entries {
		e := &c.entries[i]
		if e.key != key || e.nodes != cfg.Cluster.Nodes || e.perNode != cfg.Cluster.GPUsPerNode ||
			e.capacity != cfg.CapacityTokens {
			continue
		}
		if !sameSpeeds(e.speeds, cfg.Speeds) || !sameBatch(e.batch, batch) {
			continue
		}
		return i
	}
	return -1
}

// hashLocked folds the node shape, capacity, speed view, and batch into
// one flat-buffer hash (the same fields findLocked compares exactly).
func (c *SharedCache) hashLocked(cfg Config, batch []seq.Sequence) uint64 {
	need := 8 * (4 + len(cfg.Speeds) + 1 + 2*len(batch))
	if cap(c.keyBuf) < need {
		c.keyBuf = make([]byte, need)
	}
	b := c.keyBuf[:0]
	put := func(u uint64) {
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	put(uint64(cfg.Cluster.Nodes))
	put(uint64(cfg.Cluster.GPUsPerNode))
	put(uint64(cfg.CapacityTokens))
	put(uint64(len(cfg.Speeds)))
	for _, s := range cfg.Speeds {
		put(math.Float64bits(s))
	}
	put(uint64(len(batch)))
	for _, s := range batch {
		put(uint64(s.ID))
		put(uint64(s.Len))
	}
	c.keyBuf = b
	return maphash.Bytes(c.seed, b)
}
