// Package benchfmt defines the benchmark-artifact JSON schema shared by
// the CI bench-regression gate and local tooling: cmd/benchgate parses
// `go test -bench` text output into it and compares artifacts against a
// checked-in baseline, and `zeppelin bench -json` emits its in-process
// planner measurements in the same shape. One schema means a CI artifact
// (BENCH_pr8.json) and a laptop run diff cleanly.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	// Name is the benchmark identifier with the -GOMAXPROCS suffix
	// stripped (sub-benchmarks keep their slash-separated path).
	Name string `json:"name"`
	// Samples is how many runs (-count) were aggregated into this result.
	Samples int `json:"samples"`
	// Iters is b.N of the fastest sample.
	Iters int `json:"iters"`
	// NsPerOp is the minimum ns/op across samples — the least-noise
	// aggregate, standard for regression gating.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are the -benchmem columns (minimum across
	// samples; 0 when -benchmem was off).
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values (last sample wins).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is a benchmark artifact.
type File struct {
	// Source identifies what produced the artifact ("go test -bench" or
	// "zeppelin bench").
	Source string `json:"source,omitempty"`
	// Goos/Goarch/CPU are copied from the bench header when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Results are sorted by name for stable diffs.
	Results []Result `json:"results"`
}

// Get returns the named result, or nil.
func (f *File) Get(name string) *Result {
	for i := range f.Results {
		if f.Results[i].Name == name {
			return &f.Results[i]
		}
	}
	return nil
}

// benchLine matches "BenchmarkX-8   123   456.7 ns/op ..." data lines.
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.*)$`)

// gomaxprocsSuffix strips the trailing -N processor count from a name.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` text output and aggregates repeated
// samples of each benchmark (from -count N) into one Result, taking the
// minimum ns/op, B/op, and allocs/op.
func Parse(r io.Reader) (*File, error) {
	f := &File{Source: "go test -bench"}
	byName := make(map[string]*Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			f.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad iteration count in %q", line)
		}
		sample := Result{Name: name, Samples: 1, Iters: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				sample.NsPerOp = v
			case "B/op":
				sample.BytesPerOp = v
			case "allocs/op":
				sample.AllocsPerOp = v
			default:
				if sample.Metrics == nil {
					sample.Metrics = make(map[string]float64)
				}
				sample.Metrics[unit] = v
			}
		}
		if sample.NsPerOp == 0 && sample.Metrics == nil {
			continue
		}
		agg, ok := byName[name]
		if !ok {
			s := sample
			byName[name] = &s
			continue
		}
		agg.Samples++
		if sample.NsPerOp > 0 && (agg.NsPerOp == 0 || sample.NsPerOp < agg.NsPerOp) {
			agg.NsPerOp = sample.NsPerOp
			agg.Iters = sample.Iters
		}
		if sample.BytesPerOp > 0 && (agg.BytesPerOp == 0 || sample.BytesPerOp < agg.BytesPerOp) {
			agg.BytesPerOp = sample.BytesPerOp
		}
		if sample.AllocsPerOp > 0 && (agg.AllocsPerOp == 0 || sample.AllocsPerOp < agg.AllocsPerOp) {
			agg.AllocsPerOp = sample.AllocsPerOp
		}
		for k, v := range sample.Metrics {
			if agg.Metrics == nil {
				agg.Metrics = make(map[string]float64)
			}
			agg.Metrics[k] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, r := range byName {
		f.Results = append(f.Results, *r)
	}
	sort.Slice(f.Results, func(i, j int) bool { return f.Results[i].Name < f.Results[j].Name })
	return f, nil
}

// ReadFile decodes a benchmark artifact.
func ReadFile(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return &f, nil
}

// WriteJSON encodes the artifact with stable indentation.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Regression is one gated benchmark whose current ns/op exceeds the
// baseline by more than the threshold.
type Regression struct {
	Name      string  `json:"name"`
	BaseNs    float64 `json:"base_ns_per_op"`
	CurNs     float64 `json:"cur_ns_per_op"`
	Ratio     float64 `json:"ratio"`
	Threshold float64 `json:"threshold"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%.2fx > %.2fx allowed)",
		r.Name, r.BaseNs, r.CurNs, r.Ratio, 1+r.Threshold)
}

// Compare gates current against baseline: benchmarks whose name matches
// `gate` fail when ns/op grew by more than threshold (0.15 = +15%).
// Benchmarks missing on either side are reported in skipped, never
// failed — baselines refresh on their own cadence and must not brick new
// benchmarks.
func Compare(baseline, current *File, gate *regexp.Regexp, threshold float64) (regressions []Regression, skipped []string) {
	for _, cur := range current.Results {
		if gate != nil && !gate.MatchString(cur.Name) {
			continue
		}
		base := baseline.Get(cur.Name)
		if base == nil || base.NsPerOp == 0 || cur.NsPerOp == 0 {
			skipped = append(skipped, cur.Name)
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		if ratio > 1+threshold {
			regressions = append(regressions, Regression{
				Name: cur.Name, BaseNs: base.NsPerOp, CurNs: cur.NsPerOp,
				Ratio: ratio, Threshold: threshold,
			})
		}
	}
	for _, base := range baseline.Results {
		if gate != nil && !gate.MatchString(base.Name) {
			continue
		}
		if current.Get(base.Name) == nil {
			skipped = append(skipped, base.Name+" (missing in current)")
		}
	}
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].Name < regressions[j].Name })
	sort.Strings(skipped)
	return regressions, skipped
}
