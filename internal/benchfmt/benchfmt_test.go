package benchfmt

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: zeppelin
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig15PlanFull-8     	      10	   1200000 ns/op	  500000 B/op	    9000 allocs/op
BenchmarkFig15PlanFull-8     	      12	   1000000 ns/op	  480000 B/op	    8800 allocs/op
BenchmarkFig15PlanIncremental-8	      30	    300000 ns/op	  120000 B/op	    2000 allocs/op
BenchmarkFig8EndToEnd-8      	       3	 900000000 ns/op	         2.10 avg-speedup-x
PASS
ok  	zeppelin	12.3s
`

func TestParseAggregatesSamples(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.CPU == "" {
		t.Fatalf("header not parsed: %+v", f)
	}
	full := f.Get("BenchmarkFig15PlanFull")
	if full == nil {
		t.Fatal("missing aggregated full result")
	}
	if full.Samples != 2 || full.NsPerOp != 1000000 || full.Iters != 12 {
		t.Fatalf("min aggregation wrong: %+v", full)
	}
	if full.BytesPerOp != 480000 || full.AllocsPerOp != 8800 {
		t.Fatalf("benchmem min aggregation wrong: %+v", full)
	}
	e2e := f.Get("BenchmarkFig8EndToEnd")
	if e2e == nil || e2e.Metrics["avg-speedup-x"] != 2.10 {
		t.Fatalf("custom metric lost: %+v", e2e)
	}
	// Results sorted by name for stable artifacts.
	for i := 1; i < len(f.Results); i++ {
		if f.Results[i-1].Name > f.Results[i].Name {
			t.Fatal("results not sorted")
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(f.Results) || back.Get("BenchmarkFig15PlanFull").NsPerOp != 1000000 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	base := &File{Results: []Result{
		{Name: "BenchmarkFig15PlanFull", NsPerOp: 1000},
		{Name: "BenchmarkFig15PlanIncremental", NsPerOp: 300},
		{Name: "BenchmarkFig8EndToEnd", NsPerOp: 1e9},
		{Name: "BenchmarkRetired", NsPerOp: 5},
	}}
	cur := &File{Results: []Result{
		{Name: "BenchmarkFig15PlanFull", NsPerOp: 1100},       // +10%: ok
		{Name: "BenchmarkFig15PlanIncremental", NsPerOp: 600}, // +100%: regression
		{Name: "BenchmarkFig8EndToEnd", NsPerOp: 5e9},         // outside the gate
		{Name: "BenchmarkFig15PlanNew", NsPerOp: 50},          // no baseline: skipped
	}}
	gate := regexp.MustCompile(`Fig15|Retired`)
	regs, skipped := Compare(base, cur, gate, 0.15)
	if len(regs) != 1 || regs[0].Name != "BenchmarkFig15PlanIncremental" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Ratio < 1.99 || regs[0].Ratio > 2.01 {
		t.Fatalf("ratio = %v", regs[0].Ratio)
	}
	wantSkipped := 0
	for _, s := range skipped {
		if strings.HasPrefix(s, "BenchmarkFig15PlanNew") || strings.HasPrefix(s, "BenchmarkRetired") {
			wantSkipped++
		}
	}
	if wantSkipped != 2 {
		t.Fatalf("skipped = %v", skipped)
	}
	// Ungated comparison flags the end-to-end slowdown too.
	regs, _ = Compare(base, cur, nil, 0.15)
	if len(regs) != 2 {
		t.Fatalf("ungated regressions = %+v", regs)
	}
}
