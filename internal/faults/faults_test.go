package faults

import (
	"strings"
	"testing"

	"zeppelin/internal/cluster"
)

func TestValidateCatchesMalformedSchedules(t *testing.T) {
	cases := []struct {
		name string
		s    *Schedule
		want string
	}{
		{"rank out of range", &Schedule{Stragglers: []Straggler{{Rank: 16, Factor: 2, From: 0, To: 5}}}, "outside world"},
		{"factor below one", &Schedule{Stragglers: []Straggler{{Rank: 0, Factor: 0.5, From: 0, To: 5}}}, "< 1"},
		{"empty window", &Schedule{Stragglers: []Straggler{{Rank: 0, Factor: 2, From: 5, To: 5}}}, "empty"},
		{"nic out of range", &Schedule{NICFaults: []NICFault{{NIC: 8, Factor: 0.5, From: 0, To: 5}}}, "NICs"},
		{"nic factor above one", &Schedule{NICFaults: []NICFault{{NIC: 0, Factor: 1.5, From: 0, To: 5}}}, "(0, 1]"},
		{"node out of range", &Schedule{Outages: []NodeOutage{{Node: 2, From: 0, To: 5}}}, "outside"},
		{"non-suffix outage", &Schedule{Outages: []NodeOutage{{Node: 0, From: 0, To: 5}}}, "suffix"},
		{"all nodes absent", &Schedule{Outages: []NodeOutage{
			{Node: 0, From: 0, To: 5}, {Node: 1, From: 0, To: 5}}}, "absent"},
	}
	for _, c := range cases {
		err := c.s.Validate(2, 8, 4)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
	var nilSched *Schedule
	if err := nilSched.Validate(2, 8, 4); err != nil {
		t.Fatalf("nil schedule must validate: %v", err)
	}
	ok := &Schedule{
		Stragglers: []Straggler{{Rank: 3, Factor: 2.5, From: 10, To: 20}},
		NICFaults:  []NICFault{{NIC: 1, Factor: 0.25, From: 5, To: 15}},
		Outages:    []NodeOutage{{Node: 1, From: 30, To: 40, FailStop: true}},
	}
	if err := ok.Validate(2, 8, 4); err != nil {
		t.Fatalf("well-formed schedule rejected: %v", err)
	}
}

func TestAtResolvesWindowsAndTransitions(t *testing.T) {
	s := &Schedule{
		Stragglers: []Straggler{{Rank: 3, Factor: 2.5, From: 10, To: 20}},
		Outages:    []NodeOutage{{Node: 1, From: 30, To: 40}},
	}
	if err := s.Validate(2, 8, 4); err != nil {
		t.Fatal(err)
	}
	// Before any fault: nominal.
	v := s.At(5, 2, 8, 4)
	if v.Nodes != 2 || v.Health != nil || v.Resized || len(v.Events) != 0 {
		t.Fatalf("iteration 5 should be nominal: %+v", v)
	}
	// Straggler onset: event fires, health degrades, no resize.
	v = s.At(10, 2, 8, 4)
	if v.Health.SlowOf(3) != 2.5 || v.Health.SlowOf(2) != 1 {
		t.Fatalf("straggler not applied: %+v", v.Health)
	}
	if len(v.Events) != 1 || !strings.HasPrefix(v.Events[0], "straggler:rank3") {
		t.Fatalf("missing straggler event: %v", v.Events)
	}
	// Straggler end: health back to nominal, recovery marker.
	v = s.At(20, 2, 8, 4)
	if v.Health != nil || len(v.Events) != 1 || !strings.HasPrefix(v.Events[0], "recovered") {
		t.Fatalf("straggler should clear at To: %+v", v)
	}
	// Planned shrink: world resizes, not fail-stop.
	v = s.At(30, 2, 8, 4)
	if v.Nodes != 1 || !v.Resized || v.FailStop || v.PrevNodes != 2 {
		t.Fatalf("shrink transition wrong: %+v", v)
	}
	// Grow back.
	v = s.At(40, 2, 8, 4)
	if v.Nodes != 2 || !v.Resized || v.PrevNodes != 1 {
		t.Fatalf("grow transition wrong: %+v", v)
	}
	// Fail-stop flavor.
	f := &Schedule{Outages: []NodeOutage{{Node: 1, From: 30, To: 40, FailStop: true}}}
	v = f.At(30, 2, 8, 4)
	if !v.FailStop || len(v.Events) != 1 || !strings.HasPrefix(v.Events[0], "fail:node1") {
		t.Fatalf("fail-stop transition wrong: %+v", v)
	}
	if ev := f.At(40, 2, 8, 4).Events; len(ev) != 1 || !strings.HasPrefix(ev[0], "rejoin") {
		t.Fatalf("rejoin event wrong: %v", ev)
	}
}

func TestStragglerOnAbsentRankIsDropped(t *testing.T) {
	s := &Schedule{
		Stragglers: []Straggler{{Rank: 12, Factor: 2, From: 0, To: 50}},
		Outages:    []NodeOutage{{Node: 1, From: 10, To: 20}},
	}
	if v := s.At(5, 2, 8, 4); v.Health.SlowOf(12) != 2 {
		t.Fatal("straggler should apply while its node is up")
	}
	// During the outage rank 12 does not exist; the view stays nominal.
	if v := s.At(15, 2, 8, 4); v.Health != nil {
		t.Fatalf("straggler on an absent rank must be dropped: %+v", v.Health)
	}
}

func TestRestartDefaultsAndOverrides(t *testing.T) {
	if got := (&Schedule{}).Restart(); got != DefaultRestartCost {
		t.Fatalf("default restart = %v", got)
	}
	if got := (&Schedule{RestartCost: 5}).Restart(); got != 5 {
		t.Fatalf("explicit restart = %v", got)
	}
	if got := (&Schedule{RestartCost: -1}).Restart(); got != 0 {
		t.Fatalf("negative restart must be free, got %v", got)
	}
	var nilSched *Schedule
	if got := nilSched.Restart(); got != 0 {
		t.Fatalf("nil schedule restart = %v", got)
	}
}

func TestTransitionBounds(t *testing.T) {
	s := &Schedule{
		Stragglers: []Straggler{{Rank: 0, Factor: 2, From: 10, To: 20}},
		Outages:    []NodeOutage{{Node: 1, From: 30, To: 40}},
	}
	if f := s.FirstTransition(); f != 10 {
		t.Fatalf("first transition = %d", f)
	}
	if l := s.LastTransition(); l != 40 {
		t.Fatalf("last transition = %d", l)
	}
	var nilSched *Schedule
	if nilSched.FirstTransition() != -1 || nilSched.LastTransition() != -1 {
		t.Fatal("nil schedule has no transitions")
	}
}

func TestByNameScenarios(t *testing.T) {
	for _, name := range []string{"none", "healthy"} {
		s, err := ByName(name, 200, 2, 8)
		if err != nil || s != nil {
			t.Fatalf("%s: %v, %v", name, s, err)
		}
	}
	for _, name := range []string{"straggler", "nic", "failstop", "shrink"} {
		s, err := ByName(name, 200, 3, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("%s: name %q", name, s.Name)
		}
		if err := s.Validate(3, 8, 4); err != nil {
			t.Fatalf("%s: scenario does not validate: %v", name, err)
		}
	}
	// Parameter overrides land in the schedule.
	s, err := ByName("straggler:rank=7,x=4,from=10,to=30", 200, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stragglers[0]
	if st.Rank != 7 || st.Factor != 4 || st.From != 10 || st.To != 30 {
		t.Fatalf("overrides not applied: %+v", st)
	}
	// The shrink scenario drains after a single-rank degrade window.
	sh, err := ByName("shrink", 200, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Stragglers) != 1 || len(sh.Outages) != 1 || sh.Outages[0].FailStop {
		t.Fatalf("shrink shape wrong: %+v", sh)
	}
	if sh.Stragglers[0].To != sh.Outages[0].From {
		t.Fatalf("degrade window must end at the drain: %+v", sh)
	}
}

func TestByNameRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"", "bogus", "straggler:rank", "straggler:rank=abc",
		"straggler:bogus=1", "nic:x=0.5,=3", "failstop:node=1,",
	} {
		if _, err := ByName(spec, 200, 2, 8); err == nil {
			t.Errorf("spec %q must be rejected", spec)
		}
	}
}

func TestMigrationConservesAndPrices(t *testing.T) {
	spec := cluster.ClusterA
	plan, cost, err := Migration(spec, 2, 1, 65536, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || cost <= 0 {
		t.Fatalf("shrink migration should move state: plan=%v cost=%v", plan, cost)
	}
	// Every leaving-rank token lands on a surviving rank.
	for _, tr := range plan.Transfers {
		if tr.To >= 8 {
			t.Fatalf("transfer targets a leaving rank: %+v", tr)
		}
	}
	var moved int
	for _, tr := range plan.Transfers {
		moved += tr.Tokens
	}
	if moved != 65536/2 {
		t.Fatalf("moved %d tokens, want the leaving node's half", moved)
	}
	// Grow is priced too; same-size transitions and degenerate inputs are free.
	if _, cost, _ := Migration(spec, 1, 2, 65536, 1024); cost <= 0 {
		t.Fatal("grow migration should cost time")
	}
	if p, c, _ := Migration(spec, 2, 2, 65536, 1024); p != nil || c != 0 {
		t.Fatal("same-size transition must be free")
	}
	if p, c, _ := Migration(spec, 2, 1, 0, 1024); p != nil || c != 0 {
		t.Fatal("zero tokens must be free")
	}
}

func TestByNamePartialWindowsAdapt(t *testing.T) {
	// Pinning one boundary shifts the unpinned defaults instead of
	// producing an empty window.
	for _, spec := range []string{
		"shrink:from=30", "straggler:from=160", "straggler:to=30",
		"failstop:from=150", "nic:to=10",
	} {
		s, err := ByName(spec, 200, 3, 8)
		if err != nil {
			t.Errorf("spec %q rejected: %v", spec, err)
			continue
		}
		if err := s.Validate(3, 8, 4); err != nil {
			t.Errorf("spec %q invalid: %v", spec, err)
		}
	}
	// shrink:from=30 pulls the default warn below it.
	s, err := ByName("shrink:from=30", 200, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if w := s.Stragglers[0]; w.From >= w.To || w.To != s.Outages[0].From {
		t.Fatalf("adapted shrink windows malformed: %+v / %+v", w, s.Outages[0])
	}
	// Fully explicit malformed windows still fail loudly.
	if s, err := ByName("straggler:from=50,to=40", 200, 3, 8); err == nil {
		if err := s.Validate(3, 8, 4); err == nil {
			t.Fatal("explicit inverted window must be rejected")
		}
	}
}

func TestByNameRejectsFractionalInts(t *testing.T) {
	for _, spec := range []string{
		"straggler:rank=2.7", "straggler:from=10.9", "failstop:node=0.5",
		"nic:nic=1.5", "shrink:warn=12.3",
	} {
		if _, err := ByName(spec, 200, 3, 8); err == nil {
			t.Errorf("spec %q must be rejected (fractional integer parameter)", spec)
		}
	}
	// Fractional float parameters stay legal.
	if _, err := ByName("straggler:x=2.75", 200, 3, 8); err != nil {
		t.Errorf("fractional factor rejected: %v", err)
	}
}
