// Package faults is the deterministic fault-and-elasticity layer for
// streaming campaigns: it turns a declarative Schedule of straggler
// windows, NIC degradations, and node outages into per-iteration
// effective-speed cluster views (cluster.Health) plus elastic resize
// events. internal/campaign consumes one View per iteration, so any
// campaign — any method, arrival process, or replanning policy — can run
// under a fault schedule and the comparison stays apples-to-apples: the
// same faults hit every method at the same iterations.
//
// The paper's evaluation (§5) assumes a healthy fixed-size cluster;
// production data-parallel training does not. Three fault families are
// modeled:
//
//   - Straggler: a rank's compute runs Factor× slower for a window
//     (thermal throttling, noisy neighbors, ECC retries). Speed-aware
//     methods re-plan around it; even splits stall at the slow rank.
//   - NICFault: a NIC loses bandwidth for a window (link renegotiation,
//     congestion). The fabric's send and receive engines derate.
//   - NodeOutage: a node leaves for a window. Planned outages (elastic
//     shrink, graceful drain) migrate sequence state through the Eq. 2
//     remapping solver and pay only the migration's bottleneck-sender
//     time; fail-stop outages lose the state and pay a checkpoint-restart
//     charge instead. Either way the node rejoins at the window's end
//     with a planned migration seeding it back.
//
// Everything is a pure function of (Schedule, iteration), so faulted
// campaigns stay bit-identical across worker counts and reruns.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"zeppelin/internal/cluster"
	"zeppelin/internal/remap"
)

// Straggler slows one data-parallel rank's compute by Factor (>= 1)
// during iterations [From, To).
type Straggler struct {
	Rank   int     `json:"rank"`
	Factor float64 `json:"factor"`
	From   int     `json:"from"`
	To     int     `json:"to"`
}

// NICFault derates one global NIC's bandwidth to Factor (in (0, 1]) of
// nominal during iterations [From, To).
type NICFault struct {
	NIC    int     `json:"nic"`
	Factor float64 `json:"factor"`
	From   int     `json:"from"`
	To     int     `json:"to"`
}

// NodeOutage removes one node during iterations [From, To). FailStop
// outages are unplanned — sequence state is lost and a checkpoint
// restart is charged; planned outages drain the node through the
// remapping layer first.
type NodeOutage struct {
	Node     int  `json:"node"`
	From     int  `json:"from"`
	To       int  `json:"to"`
	FailStop bool `json:"fail_stop,omitempty"`
}

// DefaultRestartCost is the checkpoint-restart charge of a fail-stop
// outage in seconds: reloading the last checkpoint and replaying lost
// work. Large against iteration times (seconds), small against a
// campaign — exactly the regime that makes planned drains worth it.
const DefaultRestartCost = 30.0

// Schedule is a deterministic fault scenario.
type Schedule struct {
	Name       string       `json:"name"`
	Stragglers []Straggler  `json:"stragglers,omitempty"`
	NICFaults  []NICFault   `json:"nic_faults,omitempty"`
	Outages    []NodeOutage `json:"outages,omitempty"`
	// RestartCost is the seconds charged when a fail-stop outage begins.
	// Zero selects DefaultRestartCost; negative means free.
	RestartCost float64 `json:"restart_cost,omitempty"`
}

// Restart returns the effective checkpoint-restart charge.
func (s *Schedule) Restart() float64 {
	switch {
	case s == nil || s.RestartCost < 0:
		return 0
	case s.RestartCost == 0:
		return DefaultRestartCost
	}
	return s.RestartCost
}

// Validate checks the schedule against a deployment: factors in range,
// windows well-formed, outage nodes in range, and — because the
// simulator keeps rank ids dense — the set of absent nodes must always
// be a suffix of the node list (elastic events remove and restore
// trailing nodes; rank renumbering is the migration's job in a real
// system). At least one node must stay up at every iteration.
func (s *Schedule) Validate(nodes, ranksPerNode, nicsPerNode int) error {
	if s == nil {
		return nil
	}
	world := nodes * ranksPerNode
	for i, st := range s.Stragglers {
		if st.Rank < 0 || st.Rank >= world {
			return fmt.Errorf("faults: straggler %d rank %d outside world of %d", i, st.Rank, world)
		}
		if st.Factor < 1 {
			return fmt.Errorf("faults: straggler %d factor %v < 1", i, st.Factor)
		}
		if st.From < 0 || st.To <= st.From {
			return fmt.Errorf("faults: straggler %d window [%d, %d) is empty", i, st.From, st.To)
		}
	}
	for i, nf := range s.NICFaults {
		if nf.NIC < 0 || nf.NIC >= nodes*nicsPerNode {
			return fmt.Errorf("faults: NIC fault %d nic %d outside %d NICs", i, nf.NIC, nodes*nicsPerNode)
		}
		if nf.Factor <= 0 || nf.Factor > 1 {
			return fmt.Errorf("faults: NIC fault %d factor %v outside (0, 1]", i, nf.Factor)
		}
		if nf.From < 0 || nf.To <= nf.From {
			return fmt.Errorf("faults: NIC fault %d window [%d, %d) is empty", i, nf.From, nf.To)
		}
	}
	for i, o := range s.Outages {
		if o.Node < 0 || o.Node >= nodes {
			return fmt.Errorf("faults: outage %d node %d outside %d nodes", i, o.Node, nodes)
		}
		if o.From < 0 || o.To <= o.From {
			return fmt.Errorf("faults: outage %d window [%d, %d) is empty", i, o.From, o.To)
		}
	}
	// Check the suffix property and liveness at every window boundary
	// (the absent set only changes there).
	var bounds []int
	for _, o := range s.Outages {
		bounds = append(bounds, o.From, o.To)
	}
	sort.Ints(bounds)
	for _, b := range bounds {
		absent := make(map[int]bool)
		for _, o := range s.Outages {
			if o.From <= b && b < o.To {
				absent[o.Node] = true
			}
		}
		if len(absent) >= nodes {
			return fmt.Errorf("faults: all %d nodes absent at iteration %d", nodes, b)
		}
		for n := nodes - len(absent); n < nodes; n++ {
			if !absent[n] {
				return fmt.Errorf("faults: absent nodes at iteration %d are not a trailing suffix", b)
			}
		}
	}
	return nil
}

// View is the cluster state one campaign iteration executes under.
type View struct {
	Iter int
	// Nodes is the active node count (leading nodes; elastic events
	// remove trailing nodes).
	Nodes int
	// PrevNodes is the active node count of the previous iteration.
	PrevNodes int
	// Resized reports an elastic transition at this iteration.
	Resized bool
	// FailStop reports that a fail-stop outage begins at this iteration
	// (the transition loses state and pays the restart charge instead of
	// a planned migration).
	FailStop bool
	// Health is the degraded effective-speed view sized to the active
	// cluster, nil when nominal.
	Health *cluster.Health
	// Events are human-readable markers for fault transitions occurring
	// at this iteration ("fail:node1", "straggler:rank3 x2.5", ...).
	Events []string
}

// activeNodes counts nodes up at an iteration; negative iterations are
// before the campaign and see the full cluster.
func (s *Schedule) activeNodes(iter, baseNodes int) int {
	if s == nil || iter < 0 {
		return baseNodes
	}
	n := baseNodes
	for _, o := range s.Outages {
		if o.From <= iter && iter < o.To {
			n--
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// At resolves the schedule at one iteration for a deployment of
// baseNodes nodes with ranksPerNode data-parallel ranks and nicsPerNode
// effective NICs per node. Stragglers and NIC faults addressing absent
// ranks/NICs are dropped for the duration of the outage.
func (s *Schedule) At(iter, baseNodes, ranksPerNode, nicsPerNode int) View {
	v := View{
		Iter:      iter,
		Nodes:     s.activeNodes(iter, baseNodes),
		PrevNodes: s.activeNodes(iter-1, baseNodes),
	}
	v.Resized = v.Nodes != v.PrevNodes
	if s == nil {
		return v
	}
	world := v.Nodes * ranksPerNode
	nics := v.Nodes * nicsPerNode

	var slow []float64
	for _, st := range s.Stragglers {
		if st.From <= iter && iter < st.To && st.Rank < world && st.Factor > 1 {
			if slow == nil {
				slow = ones(world)
			}
			if st.Factor > slow[st.Rank] {
				slow[st.Rank] = st.Factor
			}
		}
		if st.From == iter {
			v.Events = append(v.Events, fmt.Sprintf("straggler:rank%d x%.3g", st.Rank, st.Factor))
		}
		if st.To == iter {
			v.Events = append(v.Events, fmt.Sprintf("recovered:rank%d", st.Rank))
		}
	}
	var derate []float64
	for _, nf := range s.NICFaults {
		if nf.From <= iter && iter < nf.To && nf.NIC < nics && nf.Factor < 1 {
			if derate == nil {
				derate = ones(nics)
			}
			if nf.Factor < derate[nf.NIC] {
				derate[nf.NIC] = nf.Factor
			}
		}
		if nf.From == iter {
			v.Events = append(v.Events, fmt.Sprintf("nic-degrade:nic%d x%.3g", nf.NIC, nf.Factor))
		}
		if nf.To == iter {
			v.Events = append(v.Events, fmt.Sprintf("nic-recovered:nic%d", nf.NIC))
		}
	}
	if slow != nil || derate != nil {
		v.Health = &cluster.Health{Slow: slow, NICDerate: derate}
	}
	for _, o := range s.Outages {
		if o.From == iter {
			if o.FailStop {
				v.FailStop = true
				v.Events = append(v.Events, fmt.Sprintf("fail:node%d", o.Node))
			} else {
				v.Events = append(v.Events, fmt.Sprintf("shrink:node%d", o.Node))
			}
		}
		if o.To == iter {
			kind := "grow"
			if o.FailStop {
				kind = "rejoin"
			}
			v.Events = append(v.Events, fmt.Sprintf("%s:node%d", kind, o.Node))
		}
	}
	return v
}

// FirstTransition returns the earliest iteration at which any fault
// begins (-1 for a nil or empty schedule) — the end of the healthy
// baseline window recovery measurements compare against.
func (s *Schedule) FirstTransition() int {
	first := -1
	upd := func(it int) {
		if first < 0 || it < first {
			first = it
		}
	}
	if s == nil {
		return first
	}
	for _, st := range s.Stragglers {
		upd(st.From)
	}
	for _, nf := range s.NICFaults {
		upd(nf.From)
	}
	for _, o := range s.Outages {
		upd(o.From)
	}
	return first
}

// LastTransition returns the latest iteration at which any fault clears
// (-1 for a nil or empty schedule) — the point recovery is measured from.
func (s *Schedule) LastTransition() int {
	last := -1
	if s == nil {
		return last
	}
	for _, st := range s.Stragglers {
		if st.To > last {
			last = st.To
		}
	}
	for _, nf := range s.NICFaults {
		if nf.To > last {
			last = nf.To
		}
	}
	for _, o := range s.Outages {
		if o.To > last {
			last = o.To
		}
	}
	return last
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// Migration plans the Eq. 2 sequence-state migration of an elastic
// transition: the resident state (tokens × stateBytesPerToken bytes,
// evenly laid out over the old active ranks, as the remapping layer
// maintains) moves to the even layout over the new active ranks. It
// returns the remap plan and its bottleneck-sender time in seconds —
// the campaign charges that time to the transition iteration. spec must
// be the effective (TP-folded) node spec.
func Migration(spec cluster.Spec, oldNodes, newNodes, tokens int, stateBytesPerToken float64) (*remap.Plan, float64, error) {
	if oldNodes == newNodes || tokens <= 0 || stateBytesPerToken <= 0 {
		return nil, 0, nil
	}
	span := oldNodes
	if newNodes > span {
		span = newNodes
	}
	c, err := cluster.New(spec, span)
	if err != nil {
		return nil, 0, err
	}
	have := evenLayout(tokens, oldNodes*spec.GPUsPerNode, c.World())
	want := evenLayout(tokens, newNodes*spec.GPUsPerNode, c.World())
	bIntra := stateBytesPerToken / spec.IntraBandwidth
	bInter := stateBytesPerToken / (float64(spec.NICsPerNode) * spec.NICBandwidth / float64(spec.GPUsPerNode))
	if bInter < bIntra {
		bInter = bIntra
	}
	plan, err := remap.SolveTarget(have, want, c, bIntra, bInter)
	if err != nil {
		return nil, 0, err
	}
	return plan, plan.MaxSenderCost, nil
}

// evenLayout spreads tokens evenly over the first `active` ranks of a
// `world`-sized vector (the remainder goes to the leading ranks).
func evenLayout(tokens, active, world int) []int {
	out := make([]int, world)
	if active <= 0 {
		return out
	}
	base, rem := tokens/active, tokens%active
	for r := 0; r < active && r < world; r++ {
		out[r] = base
		if r < rem {
			out[r]++
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Named scenarios
// ---------------------------------------------------------------------

// ByName builds a fault schedule from a scenario spec, scaled to a
// campaign horizon on a deployment of `nodes` nodes with ranksPerNode
// data-parallel ranks each. The grammar is
//
//	name[:key=value[,key=value...]]
//
// with scenarios (defaults in brackets, iteration windows scale with the
// horizon):
//
//	none | healthy  — no faults (returns nil)
//	straggler       — one rank runs x× slower for the middle half of the
//	                  campaign [rank=ranksPerNode/2, x=2.5, from=i/4, to=3i/4]
//	nic             — one NIC loses bandwidth [nic=1, x=0.25, from=i/4, to=3i/4]
//	failstop        — the last node fail-stops and later rejoins
//	                  [node=nodes-1, from=0.35i, to=0.65i, restart=30]
//	shrink          — graceful drain: a sick host on the last node
//	                  degrades (one rank slows x×), the scheduler
//	                  elastically shrinks the node away, and healthy
//	                  capacity grows back [node=nodes-1, rank=the node's
//	                  middle rank, x=3, warn=0.25i, from=0.55i, to=0.75i]
//
// Malformed specs (unknown scenario, unknown key, unparsable value)
// return an error; the CLI surfaces them as usage errors.
func ByName(spec string, iters, nodes, ranksPerNode int) (*Schedule, error) {
	name, params, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	var paramErr error
	has := func(key string) bool { _, ok := params[key]; return ok }
	get := func(key string, def float64) float64 {
		if v, ok := params[key]; ok {
			delete(params, key)
			return v
		}
		return def
	}
	geti := func(key string, def int) int {
		v := get(key, float64(def))
		if v != math.Trunc(v) {
			if paramErr == nil {
				paramErr = fmt.Errorf("faults: parameter %s must be an integer, got %v", key, v)
			}
			return def
		}
		return int(v)
	}
	// Default windows scale with the horizon. Defaults adapt to whatever
	// the user pinned — an explicit `from` past the default `to` (or
	// vice versa) shifts the unpinned boundary so the window stays
	// well-formed; fully explicit windows are taken verbatim and
	// validated as given. Short campaigns floor collapsed defaults into
	// a well-formed (possibly past-the-horizon, i.e. inert) window.
	window := func(fromKey, toKey string, fromDef, toDef int) (int, int) {
		fromSet, toSet := has(fromKey), has(toKey)
		from := geti(fromKey, fromDef)
		to := geti(toKey, toDef)
		if !toSet && to <= from {
			to = from + 1
		}
		if !fromSet && from >= to {
			from = to - 1
			if from < 0 {
				from = 0
			}
		}
		return from, to
	}
	var s *Schedule
	switch name {
	case "none", "healthy":
		s = nil
	case "straggler":
		from, to := window("from", "to", iters/4, 3*iters/4)
		s = &Schedule{Name: "straggler", Stragglers: []Straggler{{
			Rank:   geti("rank", ranksPerNode/2),
			Factor: get("x", 2.5),
			From:   from,
			To:     to,
		}}}
	case "nic":
		from, to := window("from", "to", iters/4, 3*iters/4)
		s = &Schedule{Name: "nic", NICFaults: []NICFault{{
			NIC:    geti("nic", 1),
			Factor: get("x", 0.25),
			From:   from,
			To:     to,
		}}}
	case "failstop":
		from, to := window("from", "to", 35*iters/100, 65*iters/100)
		s = &Schedule{Name: "failstop", RestartCost: get("restart", 0), Outages: []NodeOutage{{
			Node:     geti("node", nodes-1),
			From:     from,
			To:       to,
			FailStop: true,
		}}}
	case "shrink":
		node := geti("node", nodes-1)
		rank := geti("rank", node*ranksPerNode+ranksPerNode/2)
		factor := get("x", 3)
		warn, from := window("warn", "from", iters/4, 11*iters/20)
		toSet := has("to")
		to := geti("to", 3*iters/4)
		if !toSet && to <= from {
			to = from + 1
		}
		// The drain's cause precedes it: a sick host on the leaving node
		// runs hot until the scheduler shrinks the node away; capacity
		// grows back healthy at the window's end.
		s = &Schedule{
			Name:       "shrink",
			Stragglers: []Straggler{{Rank: rank, Factor: factor, From: warn, To: from}},
			Outages:    []NodeOutage{{Node: node, From: from, To: to}},
		}
	default:
		return nil, fmt.Errorf("faults: unknown scenario %q (want none|straggler|nic|failstop|shrink)", name)
	}
	if paramErr != nil {
		return nil, paramErr
	}
	for key := range params {
		return nil, fmt.Errorf("faults: scenario %q does not take key %q", name, key)
	}
	return s, nil
}

// parseSpec splits "name:key=val,key=val" into its parts.
func parseSpec(spec string) (string, map[string]float64, error) {
	name, rest, has := strings.Cut(strings.TrimSpace(spec), ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, fmt.Errorf("faults: empty scenario spec")
	}
	params := make(map[string]float64)
	if !has {
		return name, params, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return "", nil, fmt.Errorf("faults: malformed parameter %q (want key=value)", kv)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return "", nil, fmt.Errorf("faults: parameter %s: %v", key, err)
		}
		params[key] = f
	}
	return name, params, nil
}
