package baselines

import (
	"fmt"

	"zeppelin/internal/model"
	"zeppelin/internal/seq"
	"zeppelin/internal/sim"
	"zeppelin/internal/trainer"
)

// Packing models the input-balanced packing strategy of Fig. 2a (the
// Qwen/DeepSeek recipe): sequences are packed into equal-sized per-rank
// chunks and attention runs with Ulysses-style sequence parallelism —
// all-to-alls exchange sequence- for head-partitioning around the
// attention kernel. Linear modules see perfectly balanced tokens, but the
// attention kernel computes each packed chunk's full causal triangle, so
// cross-sequence pairs are redundant work (the Fig. 3a inefficiency),
// and the all-to-all volume scales with token count regardless of need.
type Packing struct{}

// Name identifies the method in reports.
func (Packing) Name() string { return "Packing+Ulysses" }

// Plan packs whole sequences into bins via first-fit-decreasing. Bin
// capacity is at least the longest sequence (packing never splits a
// sequence's attention — splitting would silently truncate context, which
// is a quality change, not a scheduling one). Each bin's attention
// computes the full packed triangle, so cross-sequence pairs are wasted.
func (Packing) Plan(env *trainer.Env, batch []seq.Sequence) (trainer.Placement, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("packing: empty batch")
	}
	world := env.C.World()
	tokens, _, wTokens := batchStats(batch)
	capacity := (tokens + world - 1) / world
	sorted := append([]seq.Sequence(nil), batch...)
	seq.SortByLenDesc(sorted)
	if sorted[0].Len > capacity {
		capacity = sorted[0].Len
	}
	var bins []int // bin fill levels
	for _, s := range sorted {
		placed := false
		for i := range bins {
			if bins[i]+s.Len <= capacity {
				bins[i] += s.Len
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, s.Len)
		}
	}
	// Ulysses computes every bin's full triangle across the head-sharded
	// group; the per-rank pair load is the total over bins divided by the
	// group size.
	var packedPairs float64
	for _, fill := range bins {
		packedPairs += model.CausalPairs(float64(fill))
	}
	mb := (len(bins) + world - 1) / world
	if mb < 1 {
		mb = 1
	}
	return &packingPlacement{
		mc:          env.CM.MC,
		tokens:      tokens,
		wTokens:     wTokens,
		packedPairs: packedPairs,
		mb:          mb,
	}, nil
}

type packingPlacement struct {
	trainer.NoRemap
	mc          model.Config
	tokens      int
	wTokens     float64
	packedPairs float64
	mb          int
}

// emitUlyssesAllToAll exchanges each rank's activation shard with the
// group (sequence-partition ↔ head-partition switch). Volume per rank is
// width × tokens/world × (world−1)/world; the cross-node fraction rides
// the rank's NIC.
func (p *packingPlacement) emitUlyssesAllToAll(env *trainer.Env, label string, widths float64, mul float64, deps []*sim.Task) *sim.Task {
	c := env.C
	world := c.World()
	done := env.E.Barrier(label+"/done", 0)
	done.After(deps...)
	if world == 1 {
		return done
	}
	perRank := widths * env.CM.ActBytes(float64(p.tokens)/float64(world)) *
		float64(world-1) / float64(world) * mul
	crossFrac := 0.0
	if c.Nodes > 1 {
		crossFrac = float64(c.Nodes-1) / float64(c.Nodes)
	}
	for rank := 0; rank < world; rank++ {
		if crossFrac > 0 {
			nic := c.NICOf(rank)
			tx := env.E.Transfer(fmt.Sprintf("%s/tx@%d", label, rank),
				sim.KindInterComm, rank, env.F.NICSend[nic], perRank*crossFrac)
			tx.After(deps...)
			rx := env.E.Transfer(fmt.Sprintf("%s/rx@%d", label, rank),
				sim.KindInterComm, rank, env.F.NICRecv[nic], perRank*crossFrac)
			rx.After(deps...)
			done.After(tx, rx)
		}
		intra := env.E.Transfer(fmt.Sprintf("%s/nvs@%d", label, rank),
			sim.KindIntraComm, rank, env.F.IntraSend[rank], perRank*(1-crossFrac))
		intra.After(deps...)
		done.After(intra)
	}
	return done
}

func (p *packingPlacement) EmitAttention(env *trainer.Env, backward bool, deps ...*sim.Task) *sim.Task {
	computeMul, name := 1.0, "attn-fwd/packing"
	if backward {
		computeMul, name = 2.0, "attn-bwd/packing"
	}
	world := env.C.World()
	// All-to-all in: QKV widths (≈3 hidden-sized tensors).
	in := p.emitUlyssesAllToAll(env, name+"/a2a-in", 3, computeMul, deps)
	perRank := env.CM.AttnTimePairs(p.packedPairs/float64(world)) * computeMul
	compDone := env.E.Barrier(name+"/comp-done", 0)
	compDone.After(in)
	for rank := 0; rank < world; rank++ {
		t := env.F.ComputeTask(fmt.Sprintf("%s/comp@%d", name, rank), rank, perRank)
		t.After(in)
		compDone.After(t)
	}
	// All-to-all out: the attention output (1 hidden-sized tensor).
	return p.emitUlyssesAllToAll(env, name+"/a2a-out", 1, computeMul, []*sim.Task{compDone})
}

func (p *packingPlacement) LinearEffectiveTokens(env *trainer.Env) []float64 {
	return evenEffectiveTokens(env, p.mc, p.tokens, p.wTokens)
}

func (p *packingPlacement) MicroBatches() int     { return p.mb }
func (p *packingPlacement) HostOverhead() float64 { return hostOverheadBase }

// RedundantPairShare reports the fraction of the packed attention work
// that is cross-sequence (wasted) for a batch at a world size — exposed
// for tests and the Fig. 3 analysis. Packing is whole-sequence first-fit-
// decreasing into bins of capacity max(total/world, longest sequence).
func RedundantPairShare(batch []seq.Sequence, world int) float64 {
	if len(batch) == 0 || world <= 0 {
		return 0
	}
	tokens := seq.TotalLen(batch)
	capacity := (tokens + world - 1) / world
	sorted := append([]seq.Sequence(nil), batch...)
	seq.SortByLenDesc(sorted)
	if sorted[0].Len > capacity {
		capacity = sorted[0].Len
	}
	var bins []int
	var useful float64
	for _, s := range sorted {
		useful += model.CausalPairs(float64(s.Len))
		placed := false
		for i := range bins {
			if bins[i]+s.Len <= capacity {
				bins[i] += s.Len
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, s.Len)
		}
	}
	var total float64
	for _, fill := range bins {
		total += model.CausalPairs(float64(fill))
	}
	if total == 0 {
		return 0
	}
	return 1 - useful/total
}
