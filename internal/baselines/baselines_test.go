package baselines

import (
	"math/rand"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
)

func cfg(nodes int) trainer.Config {
	return trainer.Config{Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: nodes, Seed: 5}
}

func batchOf(t *testing.T, c trainer.Config, d workload.Dataset) []seq.Sequence {
	t.Helper()
	rng := rand.New(rand.NewSource(c.Seed))
	return d.Batch(c.TotalTokens(), rng)
}

func TestNames(t *testing.T) {
	if (TECP{}).Name() != "TE CP" || (TECP{Routed: true}).Name() != "TE CP + Routing" {
		t.Fatal("TECP names wrong")
	}
	if (LLaMACP{}).Name() != "LLaMA CP" || (HybridDP{}).Name() != "Hybrid DP" {
		t.Fatal("baseline names wrong")
	}
}

func TestEmptyBatchesRejected(t *testing.T) {
	c := cfg(1)
	for _, m := range []trainer.Method{TECP{}, LLaMACP{}, HybridDP{}} {
		if _, err := trainer.Run(c, m, nil); err == nil {
			t.Fatalf("%s should reject an empty batch", m.Name())
		}
	}
}

func TestAllBaselinesRunAllDatasets(t *testing.T) {
	for _, nodes := range []int{1, 2} {
		c := cfg(nodes)
		for _, d := range workload.Eval {
			batch := batchOf(t, c, d)
			for _, m := range []trainer.Method{TECP{}, TECP{Routed: true}, LLaMACP{}, HybridDP{}} {
				res, err := trainer.Run(c, m, batch)
				if err != nil {
					t.Fatalf("%s/%s/%d nodes: %v", m.Name(), d.Name, nodes, err)
				}
				if res.TokensPerSec <= 0 {
					t.Fatalf("%s/%s: zero throughput", m.Name(), d.Name)
				}
			}
		}
	}
}

// TE CP's defining property: it is communication-bound cross-node, so its
// throughput is nearly flat when doubling the cluster (Fig. 9).
func TestTECPFlatScaling(t *testing.T) {
	t16, err := trainer.Run(cfg(2), TECP{}, batchOf(t, cfg(2), workload.ArXiv))
	if err != nil {
		t.Fatal(err)
	}
	c4 := cfg(4)
	t32, err := trainer.Run(c4, TECP{}, batchOf(t, c4, workload.ArXiv))
	if err != nil {
		t.Fatal(err)
	}
	ratio := t32.TokensPerSec / t16.TokensPerSec
	if ratio > 1.5 || ratio < 0.6 {
		t.Fatalf("TE CP should scale ~flat, got %.2fx from 16 to 32 GPUs", ratio)
	}
}

// Routing on the TE schedule must help whenever the batch crosses nodes.
func TestTECPRoutingHelps(t *testing.T) {
	c := cfg(2)
	batch := batchOf(t, c, workload.GitHub)
	plain, err := trainer.Run(c, TECP{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := trainer.Run(c, TECP{Routed: true}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if routed.TokensPerSec <= plain.TokensPerSec {
		t.Fatalf("routing should help TE CP: %.0f vs %.0f", routed.TokensPerSec, plain.TokensPerSec)
	}
}

// LLaMA CP beats TE CP on multi-node clusters (optimized collectives vs
// per-round ring bottleneck) but pays for communication on the critical
// path, so it cannot approach linear scaling.
func TestLLaMACPBeatsTECP(t *testing.T) {
	c := cfg(2)
	batch := batchOf(t, c, workload.ArXiv)
	te, err := trainer.Run(c, TECP{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := trainer.Run(c, LLaMACP{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ll.TokensPerSec / te.TokensPerSec
	if ratio < 1.2 || ratio > 3.0 {
		t.Fatalf("LLaMA CP speedup %.2fx outside the paper's plausible band", ratio)
	}
}

// Hybrid DP wins on balanced datasets (ArXiv) but falls toward TE CP when
// one long sequence dominates (ProLong64k) — the Fig. 8/9 crossover.
func TestHybridDPDatasetSensitivity(t *testing.T) {
	// Average over several sampled batches: single batches at 64k contain
	// only a handful of sequences, so per-seed variance is high.
	mean := func(d workload.Dataset, m trainer.Method) float64 {
		var sum float64
		const seeds = 4
		for s := 0; s < seeds; s++ {
			c := cfg(2)
			c.Seed = int64(100 + s)
			res, err := trainer.Run(c, m, batchOf(t, c, d))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.TokensPerSec
		}
		return sum / seeds
	}
	rA := mean(workload.ArXiv, HybridDP{}) / mean(workload.ArXiv, TECP{})
	rP := mean(workload.ProLong64k, HybridDP{}) / mean(workload.ProLong64k, TECP{})
	if rA <= rP {
		t.Fatalf("Hybrid DP should gain more on ArXiv (%.2fx) than ProLong64k (%.2fx)", rA, rP)
	}
	// At 64k a batch holds only ~5 sequences, so absolute ratios vary
	// widely with composition; require a consistent win, not a margin.
	if rA < 1.05 {
		t.Fatalf("Hybrid DP on ArXiv should beat TE CP, got %.2fx", rA)
	}
}

// Hybrid group sizing: sequences above the memory ceiling must split, and
// groups are powers of two on aligned blocks.
func TestHybridGroupStructure(t *testing.T) {
	c := cfg(2)
	env, err := c.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	batch := []seq.Sequence{
		{ID: 0, Len: env.MemoryTokens * 2},
		{ID: 1, Len: 1000}, {ID: 2, Len: 900}, {ID: 3, Len: 800},
	}
	pl, err := (HybridDP{}).Plan(env, batch)
	if err != nil {
		t.Fatal(err)
	}
	hp := pl.(*hybridPlacement)
	for _, a := range hp.assigns {
		g := len(a.ranks)
		if g&(g-1) != 0 {
			t.Fatalf("group size %d not a power of two", g)
		}
		if a.ranks[0]%g != 0 {
			t.Fatalf("group not aligned: starts at %d with size %d", a.ranks[0], g)
		}
		if a.s.ID == 0 && g < 2 {
			t.Fatal("over-memory sequence must split")
		}
		if a.s.Len/g > env.MemoryTokens {
			t.Fatalf("assignment violates memory: %d tokens on %d ranks", a.s.Len, g)
		}
	}
	if hp.MicroBatches() < 1 {
		t.Fatal("micro-batch count must be >= 1")
	}
}

// MoE weighting perturbs Hybrid DP's per-rank linear tokens but not the
// evenly-sharded methods'.
func TestMoELinearTokenVariance(t *testing.T) {
	c := cfg(2)
	c.Model = model.MoE8x550M
	env, err := c.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	batch := batchOf(t, c, workload.ArXiv)
	tePl, err := (TECP{}).Plan(env, batch)
	if err != nil {
		t.Fatal(err)
	}
	teTokens := tePl.LinearEffectiveTokens(env)
	for i := 1; i < len(teTokens); i++ {
		if teTokens[i] != teTokens[0] {
			t.Fatal("TE CP shards evenly; effective tokens must be uniform")
		}
	}
	env2, err := c.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	hyPl, err := (HybridDP{}).Plan(env2, batch)
	if err != nil {
		t.Fatal(err)
	}
	hyTokens := hyPl.LinearEffectiveTokens(env2)
	uniform := true
	for i := 1; i < len(hyTokens); i++ {
		if hyTokens[i] != hyTokens[0] {
			uniform = false
			break
		}
	}
	if uniform {
		t.Fatal("Hybrid DP per-sequence placement should inherit MoE routing variance")
	}
}

// Single-node runs: LLaMA CP's all-gather uses only NVSwitch; TE CP's
// ring stays intra-node. Both must still work and be finite.
func TestSingleNodeBehaviour(t *testing.T) {
	c := cfg(1)
	batch := batchOf(t, c, workload.ArXiv)
	te, err := trainer.Run(c, TECP{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := trainer.Run(c, LLaMACP{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if te.TokensPerSec <= 0 || ll.TokensPerSec <= 0 {
		t.Fatal("single-node throughput must be positive")
	}
}

func TestBatchStats(t *testing.T) {
	batch := []seq.Sequence{{ID: 0, Len: 10}, {ID: 1, Len: 20}}
	tok, pairs, wTok := batchStats(batch)
	if tok != 30 {
		t.Fatalf("tokens = %d", tok)
	}
	if pairs != 55+210 {
		t.Fatalf("pairs = %v", pairs)
	}
	if wTok <= 0.75*30 || wTok >= 1.35*30 {
		t.Fatalf("weighted tokens %v outside bounds", wTok)
	}
}
