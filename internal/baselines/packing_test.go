package baselines

import (
	"testing"

	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
)

func TestPackingRuns(t *testing.T) {
	c := cfg(2)
	for _, d := range workload.Eval {
		res, err := trainer.Run(c, Packing{}, batchOf(t, c, d))
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if res.TokensPerSec <= 0 {
			t.Fatalf("%s: zero throughput", d.Name)
		}
	}
	if (Packing{}).Name() != "Packing+Ulysses" {
		t.Fatal("name wrong")
	}
	if _, err := trainer.Run(c, Packing{}, nil); err == nil {
		t.Fatal("empty batch should fail")
	}
}

// Packing wastes work on short-sequence batches (cross-sequence pairs) —
// it must lose to Zeppelin-style per-sequence handling; on a single long
// sequence there is no redundancy and it behaves like balanced Ulysses.
func TestPackingRedundancyShare(t *testing.T) {
	short := make([]seq.Sequence, 64)
	for i := range short {
		short[i] = seq.Sequence{ID: i, Len: 1024}
	}
	if share := RedundantPairShare(short, 16); share < 0.5 {
		t.Fatalf("64x1k packed into 16 chunks should be mostly redundant, got %.2f", share)
	}
	single := []seq.Sequence{{ID: 0, Len: 65536}}
	if share := RedundantPairShare(single, 16); share > 0.01 {
		t.Fatalf("single sequence has no packing redundancy, got %.2f", share)
	}
	if RedundantPairShare(nil, 4) != 0 {
		t.Fatal("empty batch share should be 0")
	}
}

// On a short-heavy distribution, packing's redundant attention makes it
// slower than TE CP's redundancy-free even split would suggest relative
// to its communication savings — and clearly slower than Hybrid DP which
// computes only the true triangles.
func TestPackingLosesOnShortHeavyBatches(t *testing.T) {
	c := cfg(2)
	batch := make([]seq.Sequence, 0, 64)
	for i := 0; i < 64; i++ {
		batch = append(batch, seq.Sequence{ID: i, Len: 1024})
	}
	pk, err := trainer.Run(c, Packing{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := trainer.Run(c, HybridDP{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if pk.TokensPerSec >= hy.TokensPerSec {
		t.Fatalf("packing (%.0f) should lose to Hybrid DP (%.0f) on all-short batches",
			pk.TokensPerSec, hy.TokensPerSec)
	}
}

// Packing balances linear tokens perfectly regardless of input skew.
func TestPackingLinearBalance(t *testing.T) {
	c := cfg(2)
	env, err := c.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	batch := batchOf(t, c, workload.ProLong64k)
	pl, err := (Packing{}).Plan(env, batch)
	if err != nil {
		t.Fatal(err)
	}
	eff := pl.LinearEffectiveTokens(env)
	for i := 1; i < len(eff); i++ {
		if eff[i] != eff[0] {
			t.Fatal("packed linear tokens must be uniform")
		}
	}
}
