// Package baselines implements the three state-of-the-art comparison
// systems of §5: Transformer Engine CP (even sequence splitting with a
// balanced global ring), LLaMA CP (all-gather of KV before local
// attention, as in LLaMA 3 / WLB-LLM training), and Hybrid DP (ByteScale-
// style FLOP-balanced assignment of short sequences to DP ranks with
// ring CP for long sequences). All three implement trainer.Method over
// the same cost model and fabric as Zeppelin, so comparisons isolate the
// scheduling policies.
package baselines

import (
	"fmt"
	"math"

	"zeppelin/internal/collective"
	"zeppelin/internal/costmodel"
	"zeppelin/internal/model"
	"zeppelin/internal/routing"
	"zeppelin/internal/seq"
	"zeppelin/internal/sim"
	"zeppelin/internal/trainer"
)

// hostOverheadBase is the per-iteration host-side cost of trivial batch
// reorganization (chunking, bookkeeping) shared by the baselines.
const hostOverheadBase = 0.5e-3

// ringAllRanks emits one pass of balanced ring attention over all ranks
// for a concatenated batch: G = world rounds, each overlapping the
// compute on the current KV block with the transfer of the next. Per-rank
// compute order is chained through lastComp.
func ringAllRanks(env *trainer.Env, r *routing.Router, label string,
	pairsTotal, tokensTotal float64, computeMul, commMul float64,
	lastComp []*sim.Task, deps []*sim.Task) {
	g := env.C.World()
	if g == 1 {
		t := env.F.ComputeTask(label+"/comp", 0, env.CM.AttnTimePairs(pairsTotal)*computeMul)
		t.After(deps...)
		t.After(lastComp[0])
		lastComp[0] = t
		return
	}
	perRound := env.CM.AttnTimePairs(pairsTotal/float64(g*g))*computeMul +
		costmodel.RingRoundOverhead
	blockBytes := env.CM.KVBytes(tokensTotal/float64(g)) * commMul
	have := make([]*sim.Task, g)
	for t := 0; t < g; t++ {
		next := make([]*sim.Task, g)
		for i := 0; i < g; i++ {
			if t < g-1 {
				dst := (i + 1) % g
				var xDeps []*sim.Task
				xDeps = append(xDeps, deps...)
				if have[i] != nil {
					xDeps = append(xDeps, have[i])
				}
				next[dst] = r.Transfer(fmt.Sprintf("%s/r%d/kv%d->%d", label, t, i, dst),
					i, dst, blockBytes, xDeps...)
			}
			comp := env.F.ComputeTask(fmt.Sprintf("%s/r%d/comp@%d", label, t, i), i, perRound)
			comp.After(deps...)
			comp.After(have[i])
			comp.After(lastComp[i])
			lastComp[i] = comp
		}
		have = next
	}
}

// batchStats sums tokens, causal pairs, and MoE-weighted tokens.
func batchStats(batch []seq.Sequence) (tokens int, pairs, wTokens float64) {
	for _, s := range batch {
		tokens += s.Len
		pairs += model.CausalPairs(float64(s.Len))
		wTokens += trainer.MoEWeight(s.ID) * float64(s.Len)
	}
	return tokens, pairs, wTokens
}

// evenEffectiveTokens is the per-rank effective linear token count when
// every sequence is sharded evenly across all ranks: sharding averages
// the MoE routing skew away.
func evenEffectiveTokens(env *trainer.Env, mc model.Config, tokens int, wTokens float64) []float64 {
	w := env.C.World()
	out := make([]float64, w)
	per := float64(tokens) / float64(w)
	if mc.MoE {
		per = wTokens / float64(w)
	}
	for i := range out {
		out[i] = per
	}
	return out
}

// ---------------------------------------------------------------------
// Transformer Engine CP
// ---------------------------------------------------------------------

// TECP evenly splits the concatenated batch across all ranks and runs
// balanced ring attention over a single global ring. Routed=true attaches
// Zeppelin's communication routing layer to the same schedule — the
// "w/ Routing" configuration of the Fig. 11 ablation.
type TECP struct {
	Routed bool
}

// Name identifies the method in reports.
func (t TECP) Name() string {
	if t.Routed {
		return "TE CP + Routing"
	}
	return "TE CP"
}

// ShapeIndependent marks the placement as batch-shape independent:
// every sequence splits evenly across all ranks whatever arrives, so a
// streaming campaign never needs to re-plan TE CP and it never pays a
// stale-plan penalty (internal/campaign consumes this).
func (TECP) ShapeIndependent() bool { return true }

// Plan builds the even-split placement.
func (t TECP) Plan(env *trainer.Env, batch []seq.Sequence) (trainer.Placement, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("tecp: empty batch")
	}
	tokens, pairs, wTokens := batchStats(batch)
	return &tecpPlacement{
		router: routing.New(env.F, t.Routed),
		mc:     env.CM.MC,
		tokens: tokens, pairs: pairs, wTokens: wTokens,
	}, nil
}

type tecpPlacement struct {
	trainer.NoRemap
	router         *routing.Router
	mc             model.Config
	tokens         int
	pairs, wTokens float64
}

func (p *tecpPlacement) EmitAttention(env *trainer.Env, backward bool, deps ...*sim.Task) *sim.Task {
	computeMul, commMul, name := 1.0, 1.0, "attn-fwd/tecp"
	if backward {
		computeMul, commMul, name = 2.0, 2.0, "attn-bwd/tecp"
	}
	lastComp := make([]*sim.Task, env.C.World())
	ringAllRanks(env, p.router, name, p.pairs, float64(p.tokens), computeMul, commMul, lastComp, deps)
	done := env.E.Barrier(name+"/done", 0)
	done.After(deps...)
	for _, t := range lastComp {
		done.After(t)
	}
	return done
}

func (p *tecpPlacement) LinearEffectiveTokens(env *trainer.Env) []float64 {
	return evenEffectiveTokens(env, p.mc, p.tokens, p.wTokens)
}

func (p *tecpPlacement) MicroBatches() int     { return 1 }
func (p *tecpPlacement) HostOverhead() float64 { return hostOverheadBase }

// ---------------------------------------------------------------------
// LLaMA CP
// ---------------------------------------------------------------------

// LLaMACP replicates the context-parallel approach of LLaMA 3 training:
// KV activations are all-gathered across the group before attention, so
// communication sits on the critical path but uses optimized multi-NIC
// collectives; compute is balanced by causal chunk reordering.
type LLaMACP struct{}

// Name identifies the method in reports.
func (LLaMACP) Name() string { return "LLaMA CP" }

// ShapeIndependent marks the placement as batch-shape independent, like
// TE CP's: the all-gather group covers all ranks for any batch.
func (LLaMACP) ShapeIndependent() bool { return true }

// Plan builds the all-gather placement.
func (LLaMACP) Plan(env *trainer.Env, batch []seq.Sequence) (trainer.Placement, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("llamacp: empty batch")
	}
	tokens, pairs, wTokens := batchStats(batch)
	return &llamaPlacement{mc: env.CM.MC, tokens: tokens, pairs: pairs, wTokens: wTokens}, nil
}

type llamaPlacement struct {
	trainer.NoRemap
	mc             model.Config
	tokens         int
	pairs, wTokens float64
}

// allGatherEff is the fraction of aggregate link bandwidth an optimized
// NCCL all-gather achieves in practice on RoCE fabrics (bus-bandwidth
// measurements typically land between 0.45 and 0.65). Calibrated so that
// LLaMA CP's speedup over TE CP matches the paper's 1.45–1.65× band.
const allGatherEff = 0.55

// emitAllGather models an optimized NCCL all-gather of the full KV set
// via the collective substrate. The returned barrier gates attention
// compute (no overlap — this is the critical-path cost the paper's
// motivation cites).
func (p *llamaPlacement) emitAllGather(env *trainer.Env, label string, volMul float64, deps []*sim.Task) *sim.Task {
	world := env.C.World()
	perRank := env.CM.KVBytes(float64(p.tokens)) * volMul / float64(world)
	return collective.AllGather(env.F, collective.Config{Eff: allGatherEff}, label, perRank, deps...)
}

func (p *llamaPlacement) EmitAttention(env *trainer.Env, backward bool, deps ...*sim.Task) *sim.Task {
	computeMul, volMul, name := 1.0, 1.0, "attn-fwd/llama"
	if backward {
		// Backward re-gathers KV and reduce-scatters dKV: 2× volume.
		computeMul, volMul, name = 2.0, 2.0, "attn-bwd/llama"
	}
	gathered := p.emitAllGather(env, name+"/allgather", volMul, deps)
	world := env.C.World()
	perRank := env.CM.AttnTimePairs(p.pairs/float64(world)) * computeMul
	done := env.E.Barrier(name+"/done", 0)
	done.After(gathered)
	for rank := 0; rank < world; rank++ {
		t := env.F.ComputeTask(fmt.Sprintf("%s/comp@%d", name, rank), rank, perRank)
		t.After(gathered)
		done.After(t)
	}
	return done
}

func (p *llamaPlacement) LinearEffectiveTokens(env *trainer.Env) []float64 {
	return evenEffectiveTokens(env, p.mc, p.tokens, p.wTokens)
}

func (p *llamaPlacement) MicroBatches() int     { return 1 }
func (p *llamaPlacement) HostOverhead() float64 { return hostOverheadBase }

// ---------------------------------------------------------------------
// Hybrid DP
// ---------------------------------------------------------------------

// HybridDP models ByteScale/FlexSP-style FLOP-balanced hybrid data
// parallelism: every sequence is assigned a context-parallel group whose
// size is proportional to the sequence's estimated FLOPs (rounded to a
// power of two and placed on an aligned rank block — the coarse-grained,
// model-level granularity the paper critiques). Short sequences get
// groups of one (plain DP, leaving their NICs idle), long sequences ring
// over large groups with direct, unrouted transfers. Ranks process their
// assigned micro-batches serially.
type HybridDP struct{}

// Name identifies the method in reports.
func (HybridDP) Name() string { return "Hybrid DP" }

// assignment is one sequence bound to an aligned block of ranks.
type assignment struct {
	s     seq.Sequence
	ranks []int // len is a power of two; 1 = plain DP
}

// Plan sizes and places CP groups to balance estimated FLOPs. The
// estimate deliberately ignores MoE routing weights: actual expert loads
// are unknown before routing (§5.1), which is exactly why FLOP-estimated
// balancing degrades on MoE models.
func (HybridDP) Plan(env *trainer.Env, batch []seq.Sequence) (trainer.Placement, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("hybriddp: empty batch")
	}
	world := env.C.World()
	sorted := append([]seq.Sequence(nil), batch...)
	seq.SortByLenDesc(sorted)

	linPerTok := env.CM.MC.LinearFlopsPerToken()
	cost := func(s seq.Sequence) float64 {
		return env.CM.MC.AttnFlopsForPairs(model.CausalPairs(float64(s.Len))) +
			linPerTok*float64(s.Len)
	}
	var total float64
	for _, s := range sorted {
		total += cost(s)
	}
	target := total / float64(world)

	load := make([]float64, world)
	var assigns []assignment
	maxPerRank := make([]int, world) // micro-batch counts
	for _, s := range sorted {
		// Group size: enough ranks that the sequence's per-rank share is
		// near the target, rounded up to a power of two, and capped both
		// by the world and by per-rank memory. The doubling stops while a
		// full aligned block still fits — on non-power-of-two worlds
		// (e.g. 3 nodes of 8) the group caps at the largest power of two
		// that fits instead of overrunning the rank range.
		g := 1
		for g*2 <= world && (cost(s)/float64(g) > target ||
			s.Len/g > env.MemoryTokens) {
			g *= 2
		}
		// Choose the least-loaded aligned block of g ranks.
		bestBlock, bestLoad := 0, math.Inf(1)
		for b := 0; b+g <= world; b += g {
			var bl float64
			for r := b; r < b+g; r++ {
				if load[r] > bl {
					bl = load[r]
				}
			}
			if bl < bestLoad {
				bestLoad, bestBlock = bl, b
			}
		}
		ranks := make([]int, g)
		for i := range ranks {
			ranks[i] = bestBlock + i
			load[bestBlock+i] += cost(s) / float64(g)
			maxPerRank[bestBlock+i]++
		}
		assigns = append(assigns, assignment{s: s, ranks: ranks})
	}
	mb := 1
	for _, c := range maxPerRank {
		if c > mb {
			mb = c
		}
	}
	return &hybridPlacement{
		mc:      env.CM.MC,
		assigns: assigns,
		mb:      mb,
		router:  routing.New(env.F, false),
	}, nil
}

type hybridPlacement struct {
	trainer.NoRemap
	mc      model.Config
	assigns []assignment
	mb      int
	router  *routing.Router
}

// emitGroupRing runs balanced ring attention for one sequence over its
// assigned block (direct sends — hybrid methods keep the static GPU–NIC
// affinity the routing layer would break).
func (p *hybridPlacement) emitGroupRing(env *trainer.Env, name string, a assignment,
	computeMul, commMul float64, lastComp []*sim.Task, deps []*sim.Task) {
	g := len(a.ranks)
	if g == 1 {
		rank := a.ranks[0]
		t := env.F.ComputeTask(fmt.Sprintf("%s/dp-seq%d@%d", name, a.s.ID, rank),
			rank, env.CM.CausalAttnTime(float64(a.s.Len))*computeMul)
		t.After(deps...)
		t.After(lastComp[rank])
		lastComp[rank] = t
		return
	}
	pairs := model.CausalPairs(float64(a.s.Len))
	perRound := env.CM.AttnTimePairs(pairs/float64(g*g))*computeMul +
		costmodel.RingRoundOverhead
	blockBytes := env.CM.KVBytes(float64(a.s.Len)/float64(g)) * commMul
	have := make([]*sim.Task, g)
	for t := 0; t < g; t++ {
		next := make([]*sim.Task, g)
		for i, rank := range a.ranks {
			if t < g-1 {
				dst := a.ranks[(i+1)%g]
				var xDeps []*sim.Task
				xDeps = append(xDeps, deps...)
				if have[i] != nil {
					xDeps = append(xDeps, have[i])
				}
				next[(i+1)%g] = p.router.Transfer(
					fmt.Sprintf("%s/cp-seq%d/r%d/kv%d->%d", name, a.s.ID, t, rank, dst),
					rank, dst, blockBytes, xDeps...)
			}
			comp := env.F.ComputeTask(
				fmt.Sprintf("%s/cp-seq%d/r%d/comp@%d", name, a.s.ID, t, rank), rank, perRound)
			comp.After(deps...)
			comp.After(have[i])
			comp.After(lastComp[rank])
			lastComp[rank] = comp
		}
		have = next
	}
}

func (p *hybridPlacement) EmitAttention(env *trainer.Env, backward bool, deps ...*sim.Task) *sim.Task {
	computeMul, commMul, name := 1.0, 1.0, "attn-fwd/hybrid"
	if backward {
		computeMul, commMul, name = 2.0, 2.0, "attn-bwd/hybrid"
	}
	world := env.C.World()
	// Micro-batches execute as lock-stepped waves (gradient-accumulation
	// steps): a rank's k-th micro-batch starts only after every rank has
	// finished its (k−1)-th. Imbalance inside a wave is lost time — the
	// compute-intensity penalty of Fig. 2c.
	waveOf := make([]int, world)
	waves := make(map[int][]assignment)
	maxWave := 0
	for _, a := range p.assigns {
		w := 0
		for _, r := range a.ranks {
			if waveOf[r] > w {
				w = waveOf[r]
			}
		}
		for _, r := range a.ranks {
			waveOf[r] = w + 1
		}
		waves[w] = append(waves[w], a)
		if w > maxWave {
			maxWave = w
		}
	}
	prev := env.E.Barrier(name+"/wave-start", 0)
	prev.After(deps...)
	for w := 0; w <= maxWave; w++ {
		lastComp := make([]*sim.Task, world)
		waveDeps := []*sim.Task{prev}
		for _, a := range waves[w] {
			p.emitGroupRing(env, name, a, computeMul, commMul, lastComp, waveDeps)
		}
		bar := env.E.Barrier(fmt.Sprintf("%s/wave%d", name, w), 0)
		bar.After(prev)
		for _, t := range lastComp {
			bar.After(t)
		}
		prev = bar
	}
	return prev
}

func (p *hybridPlacement) LinearEffectiveTokens(env *trainer.Env) []float64 {
	world := env.C.World()
	portions := make([]map[int]int, world)
	for r := range portions {
		portions[r] = make(map[int]int)
	}
	for _, a := range p.assigns {
		share := seq.SplitEven(a.s.Len, len(a.ranks))
		for i, r := range a.ranks {
			portions[r][a.s.ID] += share[i]
		}
	}
	return trainer.EffectiveTokens(p.mc, world, portions)
}

func (p *hybridPlacement) MicroBatches() int { return p.mb }

// HostOverhead includes the FLOP-balancing pass over the batch.
func (p *hybridPlacement) HostOverhead() float64 {
	return hostOverheadBase + 2e-6*float64(len(p.assigns))
}
