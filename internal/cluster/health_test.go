package cluster

import (
	"testing"

	"zeppelin/internal/sim"
)

func TestHealthNilIsNominal(t *testing.T) {
	var h *Health
	if h.Degraded() {
		t.Fatal("nil health is nominal")
	}
	if h.SlowOf(3) != 1 || h.NICDerateOf(0) != 1 {
		t.Fatal("nil health must report nominal factors")
	}
	if err := h.Validate(8, 4); err != nil {
		t.Fatal(err)
	}
	for _, s := range h.Speeds(4) {
		if s != 1 {
			t.Fatal("nil health speeds must be 1")
		}
	}
}

func TestHealthValidate(t *testing.T) {
	if err := (&Health{Slow: []float64{1, 0.5}}).Validate(8, 4); err == nil {
		t.Fatal("slowdown < 1 must fail")
	}
	if err := (&Health{Slow: make([]float64, 9)}).Validate(8, 4); err == nil {
		t.Fatal("overlong slow vector must fail")
	}
	if err := (&Health{NICDerate: []float64{1.5}}).Validate(8, 4); err == nil {
		t.Fatal("derate > 1 must fail")
	}
	if err := (&Health{NICDerate: []float64{-0.1}}).Validate(8, 4); err == nil {
		t.Fatal("negative derate must fail")
	}
	ok := &Health{Slow: []float64{1, 2.5}, NICDerate: []float64{0.25}}
	if err := ok.Validate(8, 4); err != nil {
		t.Fatal(err)
	}
	if !ok.Degraded() {
		t.Fatal("degraded view not detected")
	}
	// Zero entries mean "unset": nominal.
	if (&Health{Slow: []float64{0, 0}}).Degraded() {
		t.Fatal("zero slow entries are nominal placeholders")
	}
}

func TestHealthSpeeds(t *testing.T) {
	h := &Health{Slow: []float64{1, 2, 4}}
	got := h.Speeds(4)
	want := []float64{1, 0.5, 0.25, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("speeds = %v, want %v", got, want)
		}
	}
}

func TestFabricDegrade(t *testing.T) {
	c := MustNew(ClusterA, 2)
	e := sim.NewEngine()
	f := NewFabric(e, c)
	nominalRate := f.NICSend[1].Rate

	f.Degrade(&Health{
		Slow:      []float64{1, 2.5},
		NICDerate: []float64{1, 0.25},
	})
	if f.Compute[0].Speed != 0 {
		t.Fatal("nominal rank's compute stream must stay untouched")
	}
	if got := f.Compute[1].Speed; got != 1/2.5 {
		t.Fatalf("slow rank speed = %v, want %v", got, 1/2.5)
	}
	if f.NICSend[0].Rate != nominalRate {
		t.Fatal("nominal NIC must keep its rate")
	}
	if got := f.NICSend[1].Rate; got != nominalRate*0.25 {
		t.Fatalf("derated NIC tx rate = %v, want %v", got, nominalRate*0.25)
	}
	if got := f.NICRecv[1].Rate; got != nominalRate*0.25 {
		t.Fatalf("derated NIC rx rate = %v, want %v", got, nominalRate*0.25)
	}

	// Degrading with a nominal view is a no-op.
	e2 := sim.NewEngine()
	f2 := NewFabric(e2, c)
	f2.Degrade(&Health{Slow: []float64{1, 1}})
	if f2.Compute[0].Speed != 0 || f2.NICSend[0].Rate != nominalRate {
		t.Fatal("nominal view must not touch the fabric")
	}
}

// A slowed compute stream stretches exactly the kernel work, not the
// launch latency, and shows up end to end in task times.
func TestDegradedComputeTaskTime(t *testing.T) {
	c := MustNew(ClusterA, 1)
	e := sim.NewEngine()
	f := NewFabric(e, c)
	f.Degrade(&Health{Slow: []float64{2}})
	tk := f.ComputeTask("k", 0, 10e-3)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := 10e-3/0.5 + ClusterA.LaunchLatency
	if got := tk.End - tk.Start; got != want {
		t.Fatalf("degraded kernel took %v, want %v", got, want)
	}
}
