package cluster

import (
	"testing"
	"testing/quick"

	"zeppelin/internal/sim"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "a", "b", "c"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("D"); err == nil {
		t.Fatal("expected error for unknown cluster")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(ClusterA, 0); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	bad := ClusterA
	bad.NICsPerNode = 3 // 8 % 3 != 0
	if _, err := New(bad, 1); err == nil {
		t.Fatal("expected error for indivisible GPU/NIC ratio")
	}
	if _, err := New(Spec{Name: "x"}, 1); err == nil {
		t.Fatal("expected error for empty spec")
	}
}

func TestTopologyIndexing(t *testing.T) {
	c := MustNew(ClusterA, 2) // 16 GPUs, 4 NICs/node shared 2:1
	if c.World() != 16 {
		t.Fatalf("World = %d", c.World())
	}
	if c.GPUsPerNIC() != 2 {
		t.Fatalf("GPUsPerNIC = %d, want 2 on Cluster A", c.GPUsPerNIC())
	}
	if c.NodeOf(7) != 0 || c.NodeOf(8) != 1 {
		t.Fatal("NodeOf wrong at node boundary")
	}
	if c.LocalRank(9) != 1 {
		t.Fatalf("LocalRank(9) = %d", c.LocalRank(9))
	}
	// On Cluster A, GPUs 0 and 1 share NIC 0; GPUs 8,9 share NIC 4.
	if c.NICOf(0) != 0 || c.NICOf(1) != 0 || c.NICOf(2) != 1 {
		t.Fatalf("NICOf node0 = %d %d %d", c.NICOf(0), c.NICOf(1), c.NICOf(2))
	}
	if c.NICOf(8) != 4 || c.NICOf(9) != 4 {
		t.Fatalf("NICOf node1 = %d %d", c.NICOf(8), c.NICOf(9))
	}
	if !c.SameNode(0, 7) || c.SameNode(7, 8) {
		t.Fatal("SameNode wrong")
	}
	ranks := c.RanksOfNode(1)
	if len(ranks) != 8 || ranks[0] != 8 || ranks[7] != 15 {
		t.Fatalf("RanksOfNode(1) = %v", ranks)
	}
}

func TestClusterCOneToOneNIC(t *testing.T) {
	c := MustNew(ClusterC, 1)
	if c.GPUsPerNIC() != 1 {
		t.Fatalf("Cluster C should map GPUs to NICs 1:1")
	}
	for r := 0; r < 8; r++ {
		if c.NICOf(r) != r {
			t.Fatalf("NICOf(%d) = %d", r, c.NICOf(r))
		}
	}
}

func TestAggregateInterBandwidth(t *testing.T) {
	c := MustNew(ClusterA, 1)
	want := 4 * 200 * 0.125e9 // 4 × 200 Gb/s
	if got := c.AggregateInterBandwidth(); got != want {
		t.Fatalf("aggregate = %v, want %v", got, want)
	}
}

func TestFabricIntraTransferTime(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(ClusterA, 1)
	f := NewFabric(e, c)
	done := f.Send("kv", 0, 1, 400e9) // 400 GB at 400 GB/s = 1 s
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + c.IntraLatency
	if !sim.AlmostEqual(mk, want) {
		t.Fatalf("makespan = %v, want %v", mk, want)
	}
	if done.End != mk {
		t.Fatal("done barrier should be the last event")
	}
}

func TestFabricInterTransferTime(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(ClusterA, 2)
	f := NewFabric(e, c)
	f.Send("kv", 0, 8, 25e9) // 25 GB at 25 GB/s = 1 s
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + c.InterLatency
	if !sim.AlmostEqual(mk, want) {
		t.Fatalf("makespan = %v, want %v", mk, want)
	}
}

func TestFabricSelfSendFree(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(ClusterA, 1)
	f := NewFabric(e, c)
	f.Send("self", 3, 3, 1e12)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 0 {
		t.Fatalf("self-send should be free, makespan = %v", mk)
	}
}

// Two GPUs sharing one NIC on Cluster A must serialize their sends; on
// Cluster C (1:1 NICs) the same sends overlap. This is the §5.1 effect
// that makes TP=2 speedups larger on Cluster A.
func TestSharedNICSerializes(t *testing.T) {
	run := func(spec Spec) sim.Time {
		e := sim.NewEngine()
		c := MustNew(spec, 2)
		f := NewFabric(e, c)
		bytes := spec.NICBandwidth // exactly 1 second each
		f.Send("a", 0, c.GPUsPerNode, bytes)
		f.Send("b", 1, c.GPUsPerNode+1, bytes)
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	a := run(ClusterA)
	cc := run(ClusterC)
	if a < 1.9 {
		t.Fatalf("Cluster A shared-NIC sends should serialize (~2s), got %v", a)
	}
	if cc > 1.1 {
		t.Fatalf("Cluster C 1:1 NIC sends should overlap (~1s), got %v", cc)
	}
}

func TestSendViaUsesChosenNIC(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(ClusterA, 2)
	f := NewFabric(e, c)
	// Route rank0's flow through NIC 3 (normally serves GPUs 6,7).
	f.SendVia("routed", 0, 8, 3, 4, c.NICBandwidth)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sim.AlmostEqual(mk, 1+c.InterLatency) {
		t.Fatalf("makespan = %v", mk)
	}
	if f.NICSend[3].BusyTime == 0 {
		t.Fatal("NIC 3 tx should have been used")
	}
	if f.NICSend[0].BusyTime != 0 {
		t.Fatal("NIC 0 tx should be idle when flow is routed via NIC 3")
	}
}

func TestSendViaPanicsIntraNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for intra-node SendVia")
		}
	}()
	e := sim.NewEngine()
	c := MustNew(ClusterA, 1)
	f := NewFabric(e, c)
	f.SendVia("bad", 0, 1, 0, 0, 10)
}

func TestComputeTaskLaunchLatency(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(ClusterA, 1)
	f := NewFabric(e, c)
	f.ComputeTask("k", 0, 0.001)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sim.AlmostEqual(mk, 0.001+c.LaunchLatency) {
		t.Fatalf("makespan = %v", mk)
	}
}

// Property: NICOf and NodeOf are consistent for any rank in any cluster.
func TestPropertyIndexConsistency(t *testing.T) {
	specs := []Spec{ClusterA, ClusterB, ClusterC}
	f := func(nodeSeed, rankSeed uint8) bool {
		spec := specs[int(nodeSeed)%len(specs)]
		nodes := 1 + int(nodeSeed)%16
		c := MustNew(spec, nodes)
		rank := int(rankSeed) % c.World()
		nic := c.NICOf(rank)
		// NIC must be on the same node as the rank.
		if nic/c.NICsPerNode != c.NodeOf(rank) {
			return false
		}
		// All GPUs of a NIC group map to the same NIC.
		base := rank - c.LocalRank(rank)%c.GPUsPerNIC()
		_ = base
		return nic >= 0 && nic < c.Nodes*c.NICsPerNode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a pipeline of sends over disjoint rank pairs completes in
// roughly one transfer time (they must not interfere).
func TestDisjointIntraSendsOverlap(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(ClusterB, 1)
	f := NewFabric(e, c)
	for i := 0; i < 4; i++ {
		f.Send("p", 2*i, 2*i+1, c.IntraBandwidth/10) // 0.1 s each
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk > 0.11 {
		t.Fatalf("disjoint intra-node sends should fully overlap, makespan = %v", mk)
	}
}
