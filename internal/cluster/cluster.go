// Package cluster models the GPU cluster topologies used in the paper's
// evaluation (§5): nodes of GPUs joined by NVSwitch, with RDMA NICs whose
// GPU affinity varies per cluster. It also provides a Fabric that maps
// transfers onto discrete-event simulator resources, so schedulers above
// it see realistic contention on shared NICs and NVSwitch ports.
package cluster

import (
	"fmt"

	"zeppelin/internal/sim"
)

// Bandwidths are bytes/second; Gbps NIC figures from the paper are
// converted at 1 Gb/s = 0.125 GB/s.
const (
	gb  = 1e9         // bytes
	gbs = 0.125 * 1e9 // 1 Gbit/s in bytes/s
)

// Spec describes a homogeneous node type.
type Spec struct {
	Name        string
	GPUsPerNode int
	NICsPerNode int
	// NICBandwidth is the per-NIC unidirectional bandwidth in bytes/s.
	NICBandwidth float64
	// IntraBandwidth is the per-GPU NVSwitch bandwidth in bytes/s.
	IntraBandwidth float64
	// GPUPeakFlops is peak dense BF16 throughput in FLOP/s.
	GPUPeakFlops float64
	// GPUMemory is usable HBM per GPU in bytes (activations + weights).
	GPUMemory float64
	// IntraLatency / InterLatency are per-message setup costs in seconds.
	IntraLatency float64
	InterLatency float64
	// LaunchLatency is the per-kernel launch overhead on compute streams.
	LaunchLatency float64
}

// The three clusters from §5 Experimental Setup.
var (
	// ClusterA: 8×A800-80G, NVSwitch 400 GB/s, 4 RoCE NICs of 200 Gb/s,
	// each NIC shared by 2 GPUs.
	ClusterA = Spec{
		Name:           "A",
		GPUsPerNode:    8,
		NICsPerNode:    4,
		NICBandwidth:   200 * gbs,
		IntraBandwidth: 400 * gb,
		GPUPeakFlops:   312e12,
		GPUMemory:      80 * gb,
		IntraLatency:   5e-6,
		InterLatency:   15e-6,
		LaunchLatency:  20e-6,
	}
	// ClusterB: 8×H800, 8 RoCE NICs (one per GPU).
	ClusterB = Spec{
		Name:           "B",
		GPUsPerNode:    8,
		NICsPerNode:    8,
		NICBandwidth:   200 * gbs,
		IntraBandwidth: 400 * gb,
		GPUPeakFlops:   990e12,
		GPUMemory:      80 * gb,
		IntraLatency:   5e-6,
		InterLatency:   15e-6,
		LaunchLatency:  20e-6,
	}
	// ClusterC: 8×H200, 8 CX7 NICs of 400 Gb/s (one per GPU).
	ClusterC = Spec{
		Name:           "C",
		GPUsPerNode:    8,
		NICsPerNode:    8,
		NICBandwidth:   400 * gbs,
		IntraBandwidth: 900 * gb,
		GPUPeakFlops:   990e12,
		GPUMemory:      141 * gb,
		IntraLatency:   5e-6,
		InterLatency:   15e-6,
		LaunchLatency:  20e-6,
	}
)

// ByName returns a cluster spec by its paper name ("A", "B", "C").
func ByName(name string) (Spec, error) {
	switch name {
	case "A", "a":
		return ClusterA, nil
	case "B", "b":
		return ClusterB, nil
	case "C", "c":
		return ClusterC, nil
	}
	return Spec{}, fmt.Errorf("cluster: unknown cluster %q", name)
}

// Cluster is a concrete deployment: Nodes instances of a Spec.
type Cluster struct {
	Spec
	Nodes int
}

// New validates and builds a cluster of n nodes.
func New(spec Spec, nodes int) (*Cluster, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: nodes must be positive, got %d", nodes)
	}
	if spec.GPUsPerNode <= 0 || spec.NICsPerNode <= 0 {
		return nil, fmt.Errorf("cluster: spec %q has no GPUs or NICs", spec.Name)
	}
	if spec.GPUsPerNode%spec.NICsPerNode != 0 {
		return nil, fmt.Errorf("cluster: %d GPUs not divisible by %d NICs", spec.GPUsPerNode, spec.NICsPerNode)
	}
	return &Cluster{Spec: spec, Nodes: nodes}, nil
}

// MustNew is New for known-valid configurations (presets in tests/benches).
func MustNew(spec Spec, nodes int) *Cluster {
	c, err := New(spec, nodes)
	if err != nil {
		panic(err)
	}
	return c
}

// World returns the total GPU count.
func (c *Cluster) World() int { return c.Nodes * c.GPUsPerNode }

// NodeOf returns the node index of a global rank.
func (c *Cluster) NodeOf(rank int) int { return rank / c.GPUsPerNode }

// LocalRank returns the within-node index of a global rank.
func (c *Cluster) LocalRank(rank int) int { return rank % c.GPUsPerNode }

// GPUsPerNIC returns how many GPUs share one NIC (2 on Cluster A, 1 on B/C).
func (c *Cluster) GPUsPerNIC() int { return c.GPUsPerNode / c.NICsPerNode }

// NICOf returns the global NIC index serving a global rank.
func (c *Cluster) NICOf(rank int) int {
	return c.NodeOf(rank)*c.NICsPerNode + c.LocalRank(rank)/c.GPUsPerNIC()
}

// RanksOfNode returns the global ranks located on a node.
func (c *Cluster) RanksOfNode(node int) []int {
	out := make([]int, c.GPUsPerNode)
	for i := range out {
		out[i] = node*c.GPUsPerNode + i
	}
	return out
}

// SameNode reports whether two ranks share a node.
func (c *Cluster) SameNode(a, b int) bool { return c.NodeOf(a) == c.NodeOf(b) }

// AggregateInterBandwidth is the total cross-node bandwidth of one node.
func (c *Cluster) AggregateInterBandwidth() float64 {
	return float64(c.NICsPerNode) * c.NICBandwidth
}

// Fabric instantiates the cluster's links and compute streams as simulator
// resources and provides transfer primitives with correct contention:
//
//   - each GPU has one compute stream (kernels serialize; the paper's
//     engine uses a dedicated computation stream),
//   - each GPU has NVSwitch egress/ingress ports at IntraBandwidth,
//   - each NIC has independent send and receive engines at NICBandwidth
//     (full duplex; ring attention's unidirectional use of a NIC leaves
//     the other direction idle, which the routing layer exploits).
type Fabric struct {
	C *Cluster
	E *sim.Engine

	Compute   []*sim.Resource // per rank
	IntraSend []*sim.Resource // per rank, NVSwitch egress
	IntraRecv []*sim.Resource // per rank, NVSwitch ingress
	NICSend   []*sim.Resource // per global NIC
	NICRecv   []*sim.Resource // per global NIC
}

// NewFabric builds the resources for a cluster on an engine.
func NewFabric(e *sim.Engine, c *Cluster) *Fabric {
	f := &Fabric{C: c, E: e}
	world := c.World()
	for r := 0; r < world; r++ {
		comp := e.NewResource(fmt.Sprintf("gpu%d/compute", r), 0)
		comp.Latency = c.LaunchLatency
		f.Compute = append(f.Compute, comp)

		is := e.NewResource(fmt.Sprintf("gpu%d/nvs-out", r), c.IntraBandwidth)
		is.Latency = c.IntraLatency
		ir := e.NewResource(fmt.Sprintf("gpu%d/nvs-in", r), c.IntraBandwidth)
		ir.Latency = c.IntraLatency
		f.IntraSend = append(f.IntraSend, is)
		f.IntraRecv = append(f.IntraRecv, ir)
	}
	for n := 0; n < c.Nodes*c.NICsPerNode; n++ {
		s := e.NewResource(fmt.Sprintf("nic%d/tx", n), c.NICBandwidth)
		s.Latency = c.InterLatency
		r := e.NewResource(fmt.Sprintf("nic%d/rx", n), c.NICBandwidth)
		r.Latency = c.InterLatency
		f.NICSend = append(f.NICSend, s)
		f.NICRecv = append(f.NICRecv, r)
	}
	return f
}

// Send models a point-to-point transfer of bytes from src to dst rank and
// returns a task that completes when the data has fully arrived. The
// transfer charges both the egress and ingress sides of the bottleneck
// link (send and receive run concurrently when uncontended, so an
// uncontended transfer costs bytes/bandwidth once, not twice). A transfer
// to self completes immediately after deps.
func (f *Fabric) Send(label string, src, dst int, bytes float64, deps ...*sim.Task) *sim.Task {
	if src == dst || bytes <= 0 {
		return f.E.Barrier(label, dst).After(deps...)
	}
	var tx, rx *sim.Resource
	kind := sim.KindIntraComm
	if f.C.SameNode(src, dst) {
		tx, rx = f.IntraSend[src], f.IntraRecv[dst]
	} else {
		kind = sim.KindInterComm
		tx, rx = f.NICSend[f.C.NICOf(src)], f.NICRecv[f.C.NICOf(dst)]
	}
	send := f.E.Transfer(label+"/tx", kind, src, tx, bytes)
	send.After(deps...)
	recv := f.E.Transfer(label+"/rx", kind, dst, rx, bytes)
	recv.After(deps...)
	return f.E.Barrier(label, dst).After(send, recv)
}

// SendVia is Send but forces the transfer through a specific NIC index on
// each side, regardless of GPU affinity. The routing layer uses this to
// spread one logical flow over all NICs of a node. Panics if src and dst
// share a node (routing never re-routes intra-node traffic).
func (f *Fabric) SendVia(label string, src, dst, srcNIC, dstNIC int, bytes float64, deps ...*sim.Task) *sim.Task {
	if f.C.SameNode(src, dst) {
		panic("cluster: SendVia requires cross-node endpoints")
	}
	if bytes <= 0 {
		return f.E.Barrier(label, dst).After(deps...)
	}
	send := f.E.Transfer(label+"/tx", sim.KindInterComm, src, f.NICSend[srcNIC], bytes)
	send.After(deps...)
	recv := f.E.Transfer(label+"/rx", sim.KindInterComm, dst, f.NICRecv[dstNIC], bytes)
	recv.After(deps...)
	return f.E.Barrier(label, dst).After(send, recv)
}

// ComputeTask schedules a fixed-duration kernel on a rank's compute stream.
func (f *Fabric) ComputeTask(label string, rank int, d sim.Time, deps ...*sim.Task) *sim.Task {
	t := f.E.Compute(label, rank, f.Compute[rank], d)
	t.After(deps...)
	return t
}
