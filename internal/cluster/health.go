package cluster

import "fmt"

// Health is the effective-speed view of a cluster at one instant: which
// ranks are running slow (thermal throttling, noisy neighbors, ECC
// retries) and which NICs have lost bandwidth (link flaps, congestion,
// lane degradation). A nil *Health means the cluster is nominal. The
// fault-injection layer (internal/faults) produces one Health per
// campaign iteration; trainer.NewEnv applies it to the Fabric so the
// degradation shows up in the discrete-event simulation itself, and
// speed-aware planners (Zeppelin's partitioner and remapping layer) read
// the same view to rebalance around it.
type Health struct {
	// Slow[r] is the compute slowdown factor of data-parallel rank r:
	// 1 is nominal, 2.5 means the rank's kernels take 2.5× as long. A nil
	// or short slice leaves the remaining ranks nominal.
	Slow []float64
	// NICDerate[n] is the bandwidth multiplier of global NIC n in (0, 1]:
	// 1 is nominal, 0.25 models a 200 Gb/s link negotiated down to 50.
	// A nil or short slice leaves the remaining NICs nominal.
	NICDerate []float64
}

// Degraded reports whether the view differs from a nominal cluster.
// Zero entries are "unset" placeholders and count as nominal, matching
// SlowOf and NICDerateOf.
func (h *Health) Degraded() bool {
	if h == nil {
		return false
	}
	for _, s := range h.Slow {
		if s != 1 && s != 0 {
			return true
		}
	}
	for _, d := range h.NICDerate {
		if d != 1 && d != 0 {
			return true
		}
	}
	return false
}

// SlowOf returns the slowdown factor of a rank (1 when nominal or out of
// the view's range).
func (h *Health) SlowOf(rank int) float64 {
	if h == nil || rank < 0 || rank >= len(h.Slow) || h.Slow[rank] == 0 {
		return 1
	}
	return h.Slow[rank]
}

// NICDerateOf returns the bandwidth multiplier of a NIC (1 when nominal
// or out of the view's range).
func (h *Health) NICDerateOf(nic int) float64 {
	if h == nil || nic < 0 || nic >= len(h.NICDerate) || h.NICDerate[nic] == 0 {
		return 1
	}
	return h.NICDerate[nic]
}

// Speeds returns the per-rank relative speed vector 1/Slow for a world
// size — the quantity load balancers weight effective load by. All ones
// when the view is nil.
func (h *Health) Speeds(world int) []float64 {
	out := make([]float64, world)
	for r := range out {
		out[r] = 1 / h.SlowOf(r)
	}
	return out
}

// Validate checks the view against a concrete deployment: slowdowns must
// be >= 1 (use elastic events, not speed-ups, to model capacity changes),
// derates in (0, 1], and neither vector longer than the cluster it
// describes.
func (h *Health) Validate(world, nics int) error {
	if h == nil {
		return nil
	}
	if len(h.Slow) > world {
		return fmt.Errorf("cluster: health has %d slowdowns for world of %d", len(h.Slow), world)
	}
	for r, s := range h.Slow {
		if s != 0 && s < 1 {
			return fmt.Errorf("cluster: rank %d slowdown %v < 1", r, s)
		}
	}
	if len(h.NICDerate) > nics {
		return fmt.Errorf("cluster: health has %d NIC derates for %d NICs", len(h.NICDerate), nics)
	}
	for n, d := range h.NICDerate {
		if d != 0 && (d <= 0 || d > 1) {
			return fmt.Errorf("cluster: NIC %d derate %v outside (0, 1]", n, d)
		}
	}
	return nil
}

// Degrade applies a health view to the fabric's resources: slow ranks'
// compute streams run at reduced Speed and derated NICs lose Rate. Call
// before the engine runs; healthy fabrics skip it entirely.
func (f *Fabric) Degrade(h *Health) {
	if !h.Degraded() {
		return
	}
	for r := range f.Compute {
		if s := h.SlowOf(r); s != 1 {
			f.Compute[r].Speed = 1 / s
		}
	}
	for n := range f.NICSend {
		if d := h.NICDerateOf(n); d != 1 {
			f.NICSend[n].Rate *= d
			f.NICRecv[n].Rate *= d
		}
	}
}
