package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"zeppelin/internal/trace"
)

// IterRecord is the online metrics row of one campaign iteration.
type IterRecord struct {
	Iter   int `json:"iter"`
	Tokens int `json:"tokens"`
	Seqs   int `json:"seqs"`
	// Deferred is the token count admission control pushed past this
	// iteration because the arrival exceeded placement capacity.
	Deferred int `json:"deferred,omitempty"`
	// Replanned reports whether the partitioner ran this iteration.
	Replanned bool `json:"replanned"`
	// Flipped marks the one iteration a counterfactual replay overrode
	// the replan verdict on (never set in factual runs).
	Flipped bool `json:"flipped,omitempty"`
	// Time is the simulated wall time of the iteration in seconds,
	// including replan or reuse overheads.
	Time float64 `json:"time"`
	// TokensPerSec is the iteration's delivered throughput.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// Imbalance is the realized max/mean per-rank busy-time ratio under
	// the placement the iteration actually executed.
	Imbalance float64 `json:"imbalance"`
	// Penalty is the stale-plan slowdown factor applied to the layer
	// critical path (1 on replan iterations and for shape-independent
	// methods).
	Penalty float64 `json:"penalty"`
	// Utilization is the mean per-rank busy fraction of the layer span.
	Utilization float64 `json:"utilization"`
	// Recovery is the fault-transition time charged to this iteration in
	// seconds: checkpoint restart after a fail-stop, or the Eq. 2 state
	// migration of a planned elastic shrink/grow.
	Recovery float64 `json:"recovery,omitempty"`
	// Events are the fault/recovery markers of this iteration
	// ("straggler:rank4 x2.5", "fail:node1", "grow:node1", ...).
	Events []string `json:"events,omitempty"`
	// World is the active data-parallel world size (only set for
	// campaigns running under a fault schedule, where it can change).
	World int `json:"world,omitempty"`
	// Serving-campaign fields (appended; zero for training campaigns).
	// Queued is the token backlog left waiting after this tick's batch
	// was formed; AffinityHits counts requests routed to their session's
	// home rank, SavedTokens the prefix tokens those hits skipped;
	// Violations counts requests this tick completed past their class
	// deadline.
	Queued       int `json:"queued,omitempty"`
	AffinityHits int `json:"affinity_hits,omitempty"`
	SavedTokens  int `json:"saved_tokens,omitempty"`
	Violations   int `json:"violations,omitempty"`
}

// Summary aggregates one campaign's iteration stream.
type Summary struct {
	Method  string `json:"method"`
	Arrival string `json:"arrival"`
	Policy  string `json:"policy"`
	Iters   int    `json:"iters"`
	Replans int    `json:"replans"`

	TotalTokens int `json:"total_tokens"`
	// DeferredTokens counts arrivals admission control pushed to later
	// iterations because they exceeded placement capacity.
	DeferredTokens int     `json:"deferred_tokens,omitempty"`
	WallTime       float64 `json:"wall_time"` // seconds of simulated campaign time
	// TokensPerSec is the campaign throughput: total tokens over total
	// simulated time — the long-horizon analogue of the paper's headline.
	TokensPerSec float64 `json:"tokens_per_sec"`

	// Iteration-time percentiles in seconds.
	MeanIterTime float64 `json:"mean_iter_time"`
	P50IterTime  float64 `json:"p50_iter_time"`
	P95IterTime  float64 `json:"p95_iter_time"`
	P99IterTime  float64 `json:"p99_iter_time"`
	MaxIterTime  float64 `json:"max_iter_time"`

	MeanImbalance   float64 `json:"mean_imbalance"`
	MaxImbalance    float64 `json:"max_imbalance"`
	MeanUtilization float64 `json:"mean_utilization"`

	// RecoverySeconds is the total fault-transition time the campaign
	// paid (restarts plus elastic migrations); FaultEvents counts the
	// fault/recovery markers observed. Both zero for healthy campaigns.
	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`
	FaultEvents     int     `json:"fault_events,omitempty"`

	// Serving-campaign fields (appended; zero for training campaigns).
	// Requests/Violations total the per-class counts; Unserved counts
	// requests the horizon cut off before completion; StreamTime is the
	// stream clock at drain — wall time plus idle gaps — the denominator
	// of per-class goodput.
	Requests   int     `json:"requests,omitempty"`
	Violations int     `json:"violations,omitempty"`
	Unserved   int     `json:"unserved,omitempty"`
	StreamTime float64 `json:"stream_time,omitempty"`
}

// Report is the full artifact of one campaign run.
type Report struct {
	Summary Summary `json:"summary"`
	// PerRankUtil is each rank's campaign-cumulative busy fraction.
	PerRankUtil []float64 `json:"per_rank_util"`
	// Classes holds per-SLO-class metrics for serving campaigns, highest
	// priority first (nil for training campaigns).
	Classes []ClassMetrics `json:"classes,omitempty"`
	// Records holds every iteration in order.
	Records []IterRecord `json:"records"`
}

// Percentile returns the p-th percentile (0–100) of values by linear
// interpolation between closest ranks. It copies and sorts its input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// summarize folds the iteration stream into the Summary.
func (r *Report) summarize(method, arrival, policy string) {
	s := Summary{Method: method, Arrival: arrival, Policy: policy, Iters: len(r.Records)}
	times := make([]float64, 0, len(r.Records))
	for _, rec := range r.Records {
		if rec.Replanned {
			s.Replans++
		}
		s.TotalTokens += rec.Tokens
		s.DeferredTokens += rec.Deferred
		s.WallTime += rec.Time
		times = append(times, rec.Time)
		s.MeanImbalance += rec.Imbalance
		if rec.Imbalance > s.MaxImbalance {
			s.MaxImbalance = rec.Imbalance
		}
		s.MeanUtilization += rec.Utilization
		if rec.Time > s.MaxIterTime {
			s.MaxIterTime = rec.Time
		}
		s.RecoverySeconds += rec.Recovery
		s.FaultEvents += len(rec.Events)
	}
	if n := float64(len(r.Records)); n > 0 {
		s.MeanIterTime = s.WallTime / n
		s.MeanImbalance /= n
		s.MeanUtilization /= n
	}
	if s.WallTime > 0 {
		s.TokensPerSec = float64(s.TotalTokens) / s.WallTime
	}
	s.P50IterTime = Percentile(times, 50)
	s.P95IterTime = Percentile(times, 95)
	s.P99IterTime = Percentile(times, 99)
	r.Summary = s
}

// WriteJSON emits the report as an indented JSON artifact.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// TraceRows converts the iteration stream into the trace package's
// campaign-timeline rows, carrying fault/recovery markers: 'F' fail-stop,
// 'E' elastic shrink/grow/rejoin, 'S' straggler or NIC degradation
// onset, '+' fault clearing.
func (r *Report) TraceRows() []trace.CampaignRow {
	rows := make([]trace.CampaignRow, len(r.Records))
	for i, rec := range r.Records {
		rows[i] = trace.CampaignRow{
			Iter:      rec.Iter,
			Time:      rec.Time,
			Replan:    rec.Replanned,
			Flip:      rec.Flipped,
			Imbalance: rec.Imbalance,
			Mark:      eventMark(rec.Events),
			Note:      strings.Join(rec.Events, " "),
		}
	}
	return rows
}

// eventMark folds an iteration's fault events into one timeline glyph,
// most severe first (trace.MarkSeverity's order).
func eventMark(events []string) byte {
	mark := byte(0)
	for _, ev := range events {
		var m byte
		switch {
		case strings.HasPrefix(ev, "fail"):
			m = 'F'
		case strings.HasPrefix(ev, "shrink"), strings.HasPrefix(ev, "grow"), strings.HasPrefix(ev, "rejoin"):
			m = 'E'
		case strings.HasPrefix(ev, "straggler"), strings.HasPrefix(ev, "nic-degrade"):
			m = 'S'
		default:
			m = '+'
		}
		if trace.MarkSeverity(m) > trace.MarkSeverity(mark) {
			mark = m
		}
	}
	return mark
}

// RecoveryIters measures a fault's footprint on a campaign: the number
// of iterations at or after `baseline` (the first fault onset) whose
// goodput fell below the healthy band — median pre-fault goodput
// (records[:baseline]) divided by tol. A method that re-plans around a
// fault re-enters the band while the fault is still active and scores
// low; a method that cannot stays degraded until the fault clears.
// Goodput, not iteration time, defines the band so elastic phases with
// trimmed batches are judged by delivered work per second.
func RecoveryIters(records []IterRecord, baseline int, tol float64) int {
	if baseline <= 0 || baseline >= len(records) {
		return 0
	}
	if tol <= 0 {
		tol = 1.1
	}
	tputs := make([]float64, 0, baseline)
	for _, rec := range records[:baseline] {
		tputs = append(tputs, rec.TokensPerSec)
	}
	limit := Percentile(tputs, 50) / tol
	degraded := 0
	for _, rec := range records[baseline:] {
		if rec.TokensPerSec < limit {
			degraded++
		}
	}
	return degraded
}

// RowSummary aggregates one (method, policy) campaign cell across seeds:
// every field is the arithmetic seed mean of the per-seed Summary.
type RowSummary struct {
	Method  string  `json:"method"`
	Arrival string  `json:"arrival"`
	Policy  string  `json:"policy"`
	Seeds   int     `json:"seeds"`
	Replans float64 `json:"replans"`

	TokensPerSec    float64 `json:"tokens_per_sec"`
	MeanIterTime    float64 `json:"mean_iter_time"`
	P50IterTime     float64 `json:"p50_iter_time"`
	P95IterTime     float64 `json:"p95_iter_time"`
	P99IterTime     float64 `json:"p99_iter_time"`
	MeanImbalance   float64 `json:"mean_imbalance"`
	MeanUtilization float64 `json:"mean_utilization"`
	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`
}

// WriteRowTable renders seed-averaged campaign rows as a text table —
// the one rendering the CLI campaign subcommand and the fig13
// experiment share.
func WriteRowTable(w io.Writer, rows []RowSummary) {
	fmt.Fprintf(w, "  %-28s %-24s %10s %9s %9s %9s %8s %6s\n",
		"method", "replan policy", "tok/s", "p50(s)", "p95(s)", "p99(s)", "replans", "imb")
	for _, row := range rows {
		fmt.Fprintf(w, "  %-28s %-24s %10.0f %9.3f %9.3f %9.3f %8.1f %6.3f\n",
			row.Method, row.Policy, row.TokensPerSec,
			row.P50IterTime, row.P95IterTime, row.P99IterTime,
			row.Replans, row.MeanImbalance)
	}
}

// Summarize seed-averages a cell's reports. All reports must come from
// the same (method, arrival, policy) cell.
func Summarize(reports []*Report) RowSummary {
	var row RowSummary
	if len(reports) == 0 {
		return row
	}
	row.Method = reports[0].Summary.Method
	row.Arrival = reports[0].Summary.Arrival
	row.Policy = reports[0].Summary.Policy
	row.Seeds = len(reports)
	for _, r := range reports {
		s := r.Summary
		row.Replans += float64(s.Replans)
		row.TokensPerSec += s.TokensPerSec
		row.MeanIterTime += s.MeanIterTime
		row.P50IterTime += s.P50IterTime
		row.P95IterTime += s.P95IterTime
		row.P99IterTime += s.P99IterTime
		row.MeanImbalance += s.MeanImbalance
		row.MeanUtilization += s.MeanUtilization
		row.RecoverySeconds += s.RecoverySeconds
	}
	n := float64(len(reports))
	row.Replans /= n
	row.TokensPerSec /= n
	row.MeanIterTime /= n
	row.P50IterTime /= n
	row.P95IterTime /= n
	row.P99IterTime /= n
	row.MeanImbalance /= n
	row.MeanUtilization /= n
	row.RecoverySeconds /= n
	return row
}
