package campaign

import (
	"context"
	"encoding/json"
	"testing"

	"zeppelin/internal/faults"
	"zeppelin/internal/partition"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// reportJSON canonicalizes a report for stream-identity comparison.
func reportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestIncrementalCampaignStreamIdentity is the plan-cache property test:
// a campaign planned through the exact-mode incremental planner emits an
// IterRecord stream identical to the full-only campaign — the fast path
// may change how plans are computed, never what is planned. The replay
// arrival cycles a short trace so later iterations are genuine cache
// hits, not just full solves by another name.
func TestIncrementalCampaignStreamIdentity(t *testing.T) {
	const iters = 12
	cell := testCell(5)
	replay := Record(workload.ArXiv, 4, cell.TotalTokens(), 777)

	base := Config{
		Trainer: cell, Method: zeppelin.Full(), Iters: iters,
		Arrival: replay, Policy: Threshold{},
	}
	want := runCampaign(t, base)

	inc := zeppelin.FullIncremental()
	fast := base
	fast.Method = inc
	got := runCampaign(t, fast)

	if reportJSON(t, got) != reportJSON(t, want) {
		t.Fatal("incremental campaign stream differs from full-only campaign")
	}
	c := inc.PlannerCounters()
	if c.Cached == 0 {
		t.Fatalf("replay campaign produced no cache hits: %+v", c)
	}
	if c.Full != 4 || c.Cached != iters-4 {
		t.Fatalf("counters = %+v, want 4 full + %d cached", c, iters-4)
	}
}

// TestIncrementalCampaignStreamIdentityUnderDrift covers the
// incremental-then-full sequencing on a drifting stream: exact mode
// never patches, so every iteration either full-solves or replays an
// exact repeat, and the stream still matches the stateless method bit
// for bit.
func TestIncrementalCampaignStreamIdentityUnderDrift(t *testing.T) {
	const iters = 8
	base := Config{
		Trainer: testCell(7), Method: zeppelin.Full(), Iters: iters,
		Arrival: driftArrival(iters), Policy: Threshold{},
	}
	want := runCampaign(t, base)

	inc := zeppelin.FullIncremental()
	fast := base
	fast.Method = inc
	got := runCampaign(t, fast)
	if reportJSON(t, got) != reportJSON(t, want) {
		t.Fatal("incremental campaign stream differs under drift")
	}
	if c := inc.PlannerCounters(); c.Patched != 0 || c.Full+c.Cached != iters || c.Full == 0 {
		t.Fatalf("drift stream counters = %+v, want full/cached only", c)
	}
}

// TestIncrementalCampaignFaultForcesFullSolve: a fault arriving
// mid-campaign changes the effective-speed view, so iterations inside the
// fault window must full-solve even though the replay arrival repeats
// batches the cache already holds (their keys changed with the view).
// The stream still matches the stateless method under the same schedule.
func TestIncrementalCampaignFaultForcesFullSolve(t *testing.T) {
	const iters = 10
	cell := testCell(9)
	replay := Record(workload.ArXiv, 5, cell.TotalTokens(), 778)
	sched, err := faults.ByName("straggler:from=6,to=9,rank=2,x=2.5", iters, cell.Nodes, cell.Spec.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}

	base := Config{
		Trainer: cell, Method: zeppelin.Full(), Iters: iters,
		Arrival: replay, Policy: Threshold{}, Faults: sched,
	}
	want := runCampaign(t, base)

	inc := zeppelin.FullIncremental()
	fast := base
	fast.Method = inc
	got := runCampaign(t, fast)
	if reportJSON(t, got) != reportJSON(t, want) {
		t.Fatal("incremental faulted campaign stream differs from full-only")
	}

	// Healthy replay would cache iterations 5..9. The straggler window
	// [6,9) degrades the view for 6..8, forcing full solves there; only
	// 5 and 9 (healthy, repeated batches) hit the cache.
	c := inc.PlannerCounters()
	if c.Cached >= 5 {
		t.Fatalf("fault window did not invalidate cached plans: %+v", c)
	}
	if c.Full != iters-c.Cached {
		t.Fatalf("unexpected mode split: %+v", c)
	}
}

// TestIncrementalCampaignRunTwiceDeterministic: the campaign resets
// stateful planners at Run start (Replanner), so reusing one method
// instance across runs yields identical reports.
func TestIncrementalCampaignRunTwiceDeterministic(t *testing.T) {
	const iters = 8
	inc := zeppelin.NewIncremental(zeppelin.Full(), partition.IncrementalConfig{MaxDeltaFrac: 0.3})
	cfg := Config{
		Trainer: testCell(11), Method: inc, Iters: iters,
		Arrival: driftArrival(iters), Policy: Threshold{},
	}
	a := runCampaign(t, cfg)
	b := runCampaign(t, cfg)
	if reportJSON(t, a) != reportJSON(t, b) {
		t.Fatal("incremental campaign is not deterministic across runs")
	}
}

// TestIncrementalCampaignGridSerialEqualsParallel: independent
// incremental campaigns (one planner instance per grid cell) stay
// bit-identical across worker pool sizes.
func TestIncrementalCampaignGridSerialEqualsParallel(t *testing.T) {
	const iters = 6
	build := func() []Config {
		cfgs := make([]Config, 0, 4)
		for s := 0; s < 4; s++ {
			cfgs = append(cfgs, Config{
				Trainer: testCell(int64(100 + s)), Method: zeppelin.FullIncremental(),
				Iters: iters, Arrival: driftArrival(iters), Policy: Threshold{},
			})
		}
		return cfgs
	}
	serial, err := RunGrid(context.Background(), build(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunGrid(context.Background(), build(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if reportJSON(t, serial[i]) != reportJSON(t, parallel[i]) {
			t.Fatalf("grid cell %d differs between pool sizes", i)
		}
	}
}
