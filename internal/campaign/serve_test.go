package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"zeppelin/internal/decision"
	"zeppelin/internal/workload"
	"zeppelin/internal/workload/serve"
	"zeppelin/internal/zeppelin"
)

// serveSpec builds a small, bursty two-class serving scenario that
// drains in a few dozen ticks on the test cell.
func serveSpec(route string) serve.Spec {
	spec, err := serve.Parse("clients=3,arrival=gamma:cv=2.0,rate=30@0-8s,slo=interactive:p99=2s:prio=2;batch:p99=8s:prio=1,prefix=0.6,route=" + route)
	if err != nil {
		panic(err)
	}
	return spec
}

func serveConfig(seed int64, route string) Config {
	return Config{
		Trainer: testCell(seed), Method: zeppelin.Full(), Iters: 500,
		Serve: &ServeConfig{Spec: serveSpec(route)},
	}
}

func TestServeCampaignBasicShape(t *testing.T) {
	rep := runCampaign(t, serveConfig(1, "balance"))
	if len(rep.Records) == 0 {
		t.Fatal("no serving ticks ran")
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("%d class rows, want 2", len(rep.Classes))
	}
	if rep.Classes[0].Class != "interactive" || rep.Classes[1].Class != "batch" {
		t.Fatalf("classes out of priority order: %+v", rep.Classes)
	}
	var requests int
	for _, cm := range rep.Classes {
		requests += cm.Requests
		if cm.Requests == 0 {
			t.Fatalf("class %s served no requests", cm.Class)
		}
		if cm.Violations > cm.Requests {
			t.Fatalf("class %s has more violations than requests", cm.Class)
		}
		if cm.P50Latency <= 0 || cm.P99Latency < cm.P50Latency {
			t.Fatalf("class %s latencies malformed: %+v", cm.Class, cm)
		}
		if cm.Goodput < 0 {
			t.Fatalf("class %s negative goodput", cm.Class)
		}
	}
	if rep.Summary.Requests != requests {
		t.Fatalf("summary requests %d != class total %d", rep.Summary.Requests, requests)
	}
	if rep.Summary.Unserved != 0 {
		t.Fatalf("stream left %d requests unserved", rep.Summary.Unserved)
	}
	if rep.Summary.StreamTime <= 0 {
		t.Fatal("no stream time accumulated")
	}
	if rep.Summary.Arrival != "serve(3xgamma cv=2,2cls)" {
		t.Fatalf("arrival label = %q", rep.Summary.Arrival)
	}
	if rep.Summary.Policy != "serve:priority+balance" {
		t.Fatalf("policy label = %q", rep.Summary.Policy)
	}
	for _, rec := range rep.Records {
		if rec.Time <= 0 || rec.Seqs == 0 {
			t.Fatalf("tick %d empty or timeless: %+v", rec.Iter, rec)
		}
		if rec.Replanned {
			t.Fatalf("tick %d claims a replan in serve mode", rec.Iter)
		}
	}
}

func TestServeAffinitySavesTokens(t *testing.T) {
	balance := runCampaign(t, serveConfig(1, "balance"))
	affinity := runCampaign(t, serveConfig(1, "affinity"))
	saved := func(r *Report) (n int) {
		for _, rec := range r.Records {
			n += rec.SavedTokens
		}
		return n
	}
	if sa, sb := saved(affinity), saved(balance); sa <= sb {
		t.Fatalf("affinity routing saved %d tokens, balance %d — affinity should save more", sa, sb)
	}
}

func TestServeDeterministicAcrossWorkers(t *testing.T) {
	// The trace-replay v2 determinism contract: identical serve grids at
	// workers 1, 4, and GOMAXPROCS produce byte-identical reports.
	cfgs := func() []Config {
		var out []Config
		for seed := int64(1); seed <= 3; seed++ {
			for _, route := range []string{"balance", "affinity"} {
				out = append(out, serveConfig(seed, route))
			}
		}
		return out
	}
	var base []byte
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		reports, err := RunGrid(context.Background(), cfgs(), workers)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = raw
			continue
		}
		if !bytes.Equal(base, raw) {
			t.Fatalf("workers=%d produced different reports", workers)
		}
	}
}

func TestServeTraceReplayMatchesSpec(t *testing.T) {
	// Recording a spec's timeline and replaying it as a trace must
	// reproduce the spec campaign bit for bit (the spec's rng draws
	// happen before the serving loop starts, so replay sees the same
	// stream).
	cfg := serveConfig(5, "affinity")
	specRep := runCampaign(t, cfg)

	spec := serveSpec("affinity")
	timeline, err := spec.Timeline(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	trCfg := serveConfig(5, "affinity")
	trCfg.Serve.Trace = &serve.Trace{Source: "recorded", Events: timeline}
	traceRep := runCampaign(t, trCfg)

	if !reflect.DeepEqual(specRep.Records, traceRep.Records) {
		t.Fatal("trace replay diverged from the generative run")
	}
	if !reflect.DeepEqual(specRep.Classes, traceRep.Classes) {
		t.Fatal("trace replay class metrics diverged")
	}
}

func TestServeRouteDecisionsTraced(t *testing.T) {
	tr := &decision.Trace{}
	cfg := serveConfig(2, "affinity")
	cfg.Decisions = tr
	runCampaign(t, cfg)
	if n := tr.CountKind(decision.KindRoute, ""); n == 0 {
		t.Fatal("no route decisions recorded")
	}
	affinity, spread := 0, 0
	for _, rec := range tr.Records() {
		if rec.Kind != decision.KindRoute {
			continue
		}
		if len(rec.Alternatives) != 2 {
			t.Fatalf("route record has %d alternatives", len(rec.Alternatives))
		}
		switch rec.Chosen {
		case "affinity":
			affinity++
		case "spread":
			spread++
		default:
			t.Fatalf("route chose %q", rec.Chosen)
		}
	}
	if affinity == 0 {
		t.Fatal("affinity routing never chose the home rank")
	}
	_ = spread // spread may legitimately be zero on an uncontended cell
}

func TestServeFormationOrders(t *testing.T) {
	sv := &serveState{
		spec: &serve.Spec{Formation: "priority"},
		prio: map[string]int{"hi": 2, "lo": 1},
		pending: []serve.Request{
			{Class: "lo", Tokens: 100},
			{Class: "hi", Tokens: 300},
			{Class: "lo", Tokens: 50},
			{Class: "hi", Tokens: 200},
		},
	}
	if got := sv.formationOrder(); !reflect.DeepEqual(got, []int{1, 3, 0, 2}) {
		t.Fatalf("priority order = %v", got)
	}
	sv.spec = &serve.Spec{Formation: "sjf"}
	if got := sv.formationOrder(); !reflect.DeepEqual(got, []int{2, 0, 3, 1}) {
		t.Fatalf("sjf order = %v", got)
	}
	sv.spec = &serve.Spec{Formation: "fcfs"}
	if got := sv.formationOrder(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("fcfs order = %v", got)
	}
}

func TestServeValidation(t *testing.T) {
	base := serveConfig(1, "balance")

	arrival := base
	arrival.Arrival = Steady{D: workload.ArXiv}
	faulty := base
	faulty.Autoscaler = &Autoscaler{MinNodes: 1, MaxNodes: 2}
	flipped := base
	flipped.Flip = &Flip{Iter: 1, Replan: true}
	badSpec := base
	badSpec.Serve = &ServeConfig{Spec: serve.Spec{Clients: -1}}
	badTrace := base
	badTrace.Serve = &ServeConfig{
		Spec:  serveSpec("balance"),
		Trace: &serve.Trace{Events: []serve.Request{{Arrive: 0, Tokens: 64, Class: "nope"}}},
	}
	emptyTrace := base
	emptyTrace.Serve = &ServeConfig{Spec: serveSpec("balance"), Trace: &serve.Trace{}}

	for name, cfg := range map[string]Config{
		"arrival+serve": arrival, "autoscaler+serve": faulty, "flip+serve": flipped,
		"bad spec": badSpec, "unknown trace class": badTrace, "empty trace": emptyTrace,
	} {
		_, err := Start(context.Background(), cfg)
		if err == nil {
			t.Errorf("%s: Start succeeded, want validation error", name)
			continue
		}
		if !IsValidation(err) {
			t.Errorf("%s: error not validation-classified: %v", name, err)
		}
	}
}

func TestValidationClassification(t *testing.T) {
	// Satellite: bad campaign inputs must be distinguishable from
	// internal failures so the HTTP layer can answer 400.
	bad := Config{Trainer: testCell(1), Method: zeppelin.Full(), Iters: 5,
		Arrival: Replay{Trace: "broken", Batches: nil}}
	if err := bad.Validate(); err == nil || !IsValidation(err) {
		t.Fatalf("empty replay trace: err = %v, want validation error", err)
	}

	nan := Config{Trainer: testCell(1), Method: zeppelin.Full(), Iters: 5,
		Arrival: Steady{D: workload.Dataset{Name: "corrupt",
			Probs: []float64{math.NaN(), 0.9, 0.1, 0, 0, 0, 0, 0, 0}}}}
	if err := nan.Validate(); err == nil || !IsValidation(err) {
		t.Fatalf("NaN dataset: err = %v, want validation error", err)
	}

	neg := Config{Trainer: testCell(1), Method: zeppelin.Full(), Iters: 5,
		ReplanCost: -1}
	if err := neg.Validate(); err == nil || !IsValidation(err) {
		t.Fatalf("negative replan cost: err = %v, want validation error", err)
	}
}

func TestServeDrainsEarly(t *testing.T) {
	cfg := serveConfig(1, "balance")
	cfg.Iters = 100000
	rep := runCampaign(t, cfg)
	if len(rep.Records) >= cfg.Iters {
		t.Fatal("serve campaign did not end when the timeline drained")
	}
}

func TestServeHorizonCutoff(t *testing.T) {
	cfg := serveConfig(1, "balance")
	cfg.Iters = 3
	rep := runCampaign(t, cfg)
	if len(rep.Records) != 3 {
		t.Fatalf("%d records, want the 3-tick horizon", len(rep.Records))
	}
	if rep.Summary.Unserved == 0 {
		t.Fatal("cut-off stream reports no unserved requests")
	}
}

func TestServeDeadlinesBindViolations(t *testing.T) {
	// A spec with microsecond deadlines must violate on every request;
	// generous deadlines on the same stream must not.
	strict, err := serve.Parse("clients=2,rate=20@0-4s,slo=tight:p99=1us")
	if err != nil {
		t.Fatal(err)
	}
	loose := strict
	loose.Classes = []serve.SLOClass{{Name: "tight", Deadline: time.Hour, Priority: 0}}
	for _, tc := range []struct {
		spec     serve.Spec
		wantAll  bool
		wantNone bool
	}{{strict, true, false}, {loose, false, true}} {
		rep := runCampaign(t, Config{
			Trainer: testCell(1), Method: zeppelin.Full(), Iters: 500,
			Serve: &ServeConfig{Spec: tc.spec},
		})
		cm := rep.Classes[0]
		if tc.wantAll && cm.Violations != cm.Requests {
			t.Fatalf("tight deadline: %d/%d violations", cm.Violations, cm.Requests)
		}
		if tc.wantNone && cm.Violations != 0 {
			t.Fatalf("loose deadline: %d violations", cm.Violations)
		}
	}
}
