package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"zeppelin/internal/decision"
	"zeppelin/internal/zeppelin"
)

// tracedConfig is the decision-test cell: an incremental planner (so
// placement records appear) under a threshold controller over a drifting
// stream (so both replan and reuse verdicts occur).
func tracedConfig(seed int64, iters int, tr *decision.Trace, flip *Flip) Config {
	return Config{
		Trainer: testCell(seed), Method: zeppelin.FullIncremental(), Iters: iters,
		Arrival: driftArrival(iters), Policy: Threshold{Ratio: 1.3},
		Decisions: tr, Flip: flip,
	}
}

func traceNDJSON(t *testing.T, tr *decision.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecisionLogDeterministicAcrossWorkers: the same campaign grid run
// serially and on a 4-worker pool produces byte-identical decision logs
// per cell — the tracing analogue of the stream-identity guarantee.
func TestDecisionLogDeterministicAcrossWorkers(t *testing.T) {
	const iters, cells = 20, 3
	run := func(workers int) [][]byte {
		cfgs := make([]Config, cells)
		traces := make([]*decision.Trace, cells)
		for i := range cfgs {
			traces[i] = &decision.Trace{}
			cfgs[i] = tracedConfig(int64(i+1), iters, traces[i], nil)
		}
		if _, err := RunGrid(context.Background(), cfgs, workers); err != nil {
			t.Fatal(err)
		}
		logs := make([][]byte, cells)
		for i, tr := range traces {
			logs[i] = traceNDJSON(t, tr)
		}
		return logs
	}
	serial, parallel := run(1), run(4)
	for i := range serial {
		if len(serial[i]) == 0 {
			t.Fatalf("cell %d produced an empty decision log", i)
		}
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Fatalf("cell %d decision logs differ between workers=1 and workers=4", i)
		}
	}
}

// TestDecisionRecordsMatchStream: replan-execution records line up with
// the event stream's replan count (the CI cross-check), iteration 0 is
// forced, and placement records name real plan modes.
func TestDecisionRecordsMatchStream(t *testing.T) {
	const iters = 25
	tr := &decision.Trace{}
	rep := runCampaign(t, tracedConfig(7, iters, tr, nil))
	if got := tr.CountKind(decision.KindReplan, "replan"); got != rep.Summary.Replans {
		t.Fatalf("decision log has %d replan executions, stream replanned %d times",
			got, rep.Summary.Replans)
	}
	if got := tr.CountKind(decision.KindReplan, ""); got != iters {
		t.Fatalf("%d replan decisions recorded, want one per iteration (%d)", got, iters)
	}
	if got := tr.CountKind(decision.KindPlacement, ""); got != iters {
		t.Fatalf("%d placement decisions recorded, want %d", got, iters)
	}
	recs := tr.Records()
	if recs[0].Kind != decision.KindReplan || !recs[0].Forced || recs[0].Chosen != "replan" {
		t.Fatalf("iteration 0 must be a forced replan, got %+v", recs[0])
	}
	modes := map[string]bool{"full": true, "patched": true, "cached": true, "shared": true}
	for _, r := range recs {
		if r.Flipped {
			t.Fatalf("factual run recorded a flip: %+v", r)
		}
		if r.Kind == decision.KindPlacement && !modes[r.PlanMode] {
			t.Fatalf("placement record carries unknown plan mode %q", r.PlanMode)
		}
		if r.Kind == decision.KindReplan && len(r.Alternatives) != 2 {
			t.Fatalf("replan record should weigh 2 alternatives, got %+v", r)
		}
	}
}

// TestFlipOverridesOneVerdict: flipping a non-forced replan to reuse
// changes exactly that iteration's verdict and perturbs the downstream
// stream; flipping it to its factual verdict is a no-op (bit-identical
// records).
func TestFlipOverridesOneVerdict(t *testing.T) {
	const iters = 30
	factTr := &decision.Trace{}
	factual := runCampaign(t, tracedConfig(11, iters, factTr, nil))

	// Find a non-forced executed replan to invert.
	flipIter := -1
	for _, r := range factTr.Records() {
		if r.Kind == decision.KindReplan && r.Chosen == "replan" && !r.Forced {
			flipIter = r.Iter
			break
		}
	}
	if flipIter < 0 {
		t.Fatal("factual run has no non-forced replan to flip; widen the drift")
	}

	cfTr := &decision.Trace{}
	counter := runCampaign(t, tracedConfig(11, iters, cfTr, &Flip{Iter: flipIter, Replan: false}))
	if counter.Records[flipIter].Replanned {
		t.Fatalf("iteration %d still replanned under the flip", flipIter)
	}
	if !counter.Records[flipIter].Flipped {
		t.Fatalf("iteration %d not marked flipped", flipIter)
	}
	if counter.Summary.Replans >= factual.Summary.Replans {
		t.Fatalf("flip to reuse did not reduce replans: %d vs factual %d",
			counter.Summary.Replans, factual.Summary.Replans)
	}
	flips := 0
	for _, r := range cfTr.Records() {
		if r.Flipped {
			flips++
		}
	}
	if flips != 1 {
		t.Fatalf("%d flipped records, want exactly 1", flips)
	}

	// A flip that matches the factual verdict changes nothing.
	noopTr := &decision.Trace{}
	noop := runCampaign(t, tracedConfig(11, iters, noopTr, &Flip{Iter: flipIter, Replan: true}))
	a, _ := json.Marshal(factual.Records)
	b, _ := json.Marshal(noop.Records)
	if !bytes.Equal(a, b) {
		t.Fatal("agreeing flip perturbed the record stream")
	}
	if !bytes.Equal(traceNDJSON(t, factTr), traceNDJSON(t, noopTr)) {
		t.Fatal("agreeing flip perturbed the decision log")
	}

	// Forced decisions are not flippable: iteration 0 stays a replan.
	forcedTr := &decision.Trace{}
	forced := runCampaign(t, tracedConfig(11, iters, forcedTr, &Flip{Iter: 0, Replan: false}))
	if !forced.Records[0].Replanned || forced.Records[0].Flipped {
		t.Fatalf("forced iteration 0 was flipped: %+v", forced.Records[0])
	}
}
