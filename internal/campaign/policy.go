package campaign

import "fmt"

// PolicyState is what the replanning controller knows when it must
// decide, before simulating an iteration, whether to re-run the
// partitioner or reuse the stale plan.
type PolicyState struct {
	// Iter is the campaign iteration index.
	Iter int
	// SinceReplan counts iterations since the partitioner last ran.
	SinceReplan int
	// StaleImbalance is the projected max/mean per-rank attention load if
	// the incoming batch is routed through the stale plan's skeleton.
	StaleImbalance float64
	// FreshImbalance is the projected imbalance of a fresh plan for the
	// same batch — the best the partitioner could do.
	FreshImbalance float64
}

// Policy decides when a campaign re-runs the partitioner. Deciding is
// free; replanning charges Config.ReplanCost to the iteration.
type Policy interface {
	Name() string
	ShouldReplan(s PolicyState) bool
}

// Always replans every iteration — the paper's implicit per-batch
// regime, paying the full planning cost for the best balance.
type Always struct{}

// Name identifies the policy.
func (Always) Name() string { return "always" }

// ShouldReplan is always true.
func (Always) ShouldReplan(PolicyState) bool { return true }

// Never plans once at iteration 0 and reuses that skeleton forever,
// accumulating imbalance as the workload drifts away from it.
type Never struct{}

// Name identifies the policy.
func (Never) Name() string { return "never" }

// ShouldReplan is always false (the campaign forces the initial plan).
func (Never) ShouldReplan(PolicyState) bool { return false }

// Threshold replans when the stale plan's projected imbalance exceeds
// Ratio (max/mean per-rank load; 1.0 is perfect balance). It is the
// online middle ground: cheap while the workload is stationary,
// responsive when it drifts.
type Threshold struct {
	// Ratio triggers a replan when StaleImbalance exceeds it. Zero
	// selects DefaultThreshold; values below 1 clamp to 1 (maximum
	// sensitivity — 1.0 is perfect balance).
	Ratio float64
}

// DefaultThreshold is the imbalance ratio the CLI and the campaign
// experiment use: tolerate up to 30% above the mean before replanning.
const DefaultThreshold = 1.3

func (t Threshold) ratio() float64 {
	if t.Ratio == 0 {
		return DefaultThreshold
	}
	if t.Ratio < 1 {
		return 1 // maximum sensitivity: replan on any projected imbalance
	}
	return t.Ratio
}

// Name includes the ratio so ablation rows stay distinguishable.
func (t Threshold) Name() string { return fmt.Sprintf("threshold(%.2f)", t.ratio()) }

// ShouldReplan fires when the projected stale imbalance crosses the ratio.
func (t Threshold) ShouldReplan(s PolicyState) bool { return s.StaleImbalance > t.ratio() }

// Periodic replans on a fixed cadence regardless of observed imbalance —
// the classic open-loop baseline a threshold policy should beat.
type Periodic struct {
	Every int // iterations between replans (≥ 1)
}

func (p Periodic) every() int {
	if p.Every < 1 {
		return 10
	}
	return p.Every
}

// Name includes the cadence.
func (p Periodic) Name() string { return fmt.Sprintf("periodic(%d)", p.every()) }

// ShouldReplan fires every Every iterations.
func (p Periodic) ShouldReplan(s PolicyState) bool { return s.SinceReplan >= p.every() }

// PolicyByName builds the named policy: "always", "never", "threshold"
// (at ratio, 0 selecting the default), or "periodic" (at cadence).
func PolicyByName(name string, ratio float64, every int) (Policy, error) {
	switch name {
	case "always":
		return Always{}, nil
	case "never":
		return Never{}, nil
	case "threshold":
		return Threshold{Ratio: ratio}, nil
	case "periodic":
		return Periodic{Every: every}, nil
	}
	return nil, fmt.Errorf("campaign: unknown replan policy %q (want always|never|threshold|periodic)", name)
}
