package campaign

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// streamCfg is a small drifting campaign cell for stream tests.
func streamCfg(iters int) Config {
	return Config{
		Trainer: testCell(7),
		Method:  zeppelin.Full(),
		Iters:   iters,
		Arrival: Drift{Path: []workload.Dataset{workload.ArXiv, workload.GitHub}, Iters: iters},
		Policy:  Threshold{},
	}
}

// TestStreamDrainMatchesRun: consuming a campaign record by record is
// bit-identical to the all-at-once runner — summary, per-rank
// utilization, and every record.
func TestStreamDrainMatchesRun(t *testing.T) {
	cfg := streamCfg(8)
	want, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []IterRecord
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, want.Records) {
		t.Fatal("streamed records differ from campaign.Run records")
	}
	if !reflect.DeepEqual(st.Report(), want) {
		t.Fatal("streamed report differs from campaign.Run report")
	}
}

// TestStreamStopsMidStreamOnCancel: cancelling the campaign context
// between Next calls ends the stream at the next call, Err reports the
// context error, and the partial report covers exactly the records that
// ran.
func TestStreamStopsMidStreamOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := Start(ctx, streamCfg(50))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := st.Next(); !ok {
			t.Fatalf("stream ended prematurely at %d: %v", i, st.Err())
		}
	}
	cancel()
	if _, ok := st.Next(); ok {
		t.Fatal("Next must stop after cancellation")
	}
	if !errors.Is(st.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", st.Err())
	}
	rep := st.Report()
	if len(rep.Records) != 3 {
		t.Fatalf("partial report has %d records, want 3", len(rep.Records))
	}
	if rep.Summary.Iters != 3 {
		t.Fatalf("partial summary covers %d iters, want 3", rep.Summary.Iters)
	}
}

// TestRunReturnsContextError: a cancelled context surfaces as the run
// error.
func TestRunReturnsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, streamCfg(5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

// TestCancelledGridLeaksNoWorkers: cancelling a campaign grid mid-run
// drains the runner pool back to the pre-grid goroutine baseline — the
// property the zeppelind daemon relies on when HTTP clients disconnect.
func TestCancelledGridLeaksNoWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfgs := make([]Config, 16)
	for i := range cfgs {
		cfgs[i] = streamCfg(200)
		cfgs[i].Trainer.Seed = int64(1000 + i)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunGrid(ctx, cfgs, 4)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let a few campaigns start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunGrid error = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunGrid did not return after cancellation")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("runner workers leaked after cancelled grid: before=%d now=%d",
		before, runtime.NumGoroutine())
}
