package campaign

import (
	"fmt"
	"io"
	"sort"

	"zeppelin/internal/decision"
	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload/serve"
)

// ServeConfig switches a campaign from training iterations to an
// inference-style request stream: instead of one batch arriving per
// iteration, a timestamped multi-client timeline (synthetic spec or
// recorded trace) feeds a queue, each iteration forms a batch under the
// spec's formation discipline (FCFS, priority, or SJF), routes every
// request to a rank under the spec's routing objective (least-loaded
// balance, or KV-affinity which prefers a session's home rank to skip
// recomputing its shared prefix), and per-request latencies are scored
// against the spec's SLO-class deadlines.
type ServeConfig struct {
	// Spec carries the serving knobs — SLO classes, formation, routing
	// objective — and, when Trace is nil, generates the synthetic
	// timeline.
	Spec serve.Spec
	// Trace, when non-nil, replaces the spec's synthetic timeline with a
	// recorded one (trace-replay v2). Event classes must exist in
	// Spec.Classes.
	Trace *serve.Trace
}

// generator picks the timeline source.
func (sc *ServeConfig) generator() serve.Generator {
	if sc.Trace != nil {
		return sc.Trace
	}
	return &sc.Spec
}

// ClassMetrics aggregates one SLO class over a serve campaign.
type ClassMetrics struct {
	Class    string `json:"class"`
	Priority int    `json:"priority"`
	// Deadline is the class's latency SLO in seconds.
	Deadline float64 `json:"deadline"`
	// Requests counts completions; Violations those past the deadline.
	Requests   int `json:"requests"`
	Violations int `json:"violations"`
	// Tokens is the class's delivered work (full request lengths, before
	// prefix savings).
	Tokens int `json:"tokens"`
	// Latency percentiles in seconds (arrival to completion, queueing
	// included).
	P50Latency float64 `json:"p50_latency"`
	P99Latency float64 `json:"p99_latency"`
	MaxLatency float64 `json:"max_latency"`
	// Goodput is deadline-meeting tokens per second of stream time;
	// ViolationRate is Violations/Requests.
	Goodput       float64 `json:"goodput"`
	ViolationRate float64 `json:"violation_rate"`
}

// classAgg is the online accumulator behind ClassMetrics.
type classAgg struct {
	cls        serve.SLOClass
	latencies  []float64
	tokens     int
	goodTokens int
	violations int
}

// serveState is the campaign loop state of a serving stream.
type serveState struct {
	gen      serve.Generator
	spec     *serve.Spec
	timeline []serve.Request
	cursor   int
	pending  []serve.Request
	clock    float64        // stream time in seconds
	homes    map[int]int    // session → rank last holding its KV cache
	prio     map[string]int // class → priority, for priority formation
	stats    map[string]*classAgg
	unserved int
}

// validateServe checks the serve configuration and its interaction with
// the rest of the campaign config. All errors are validation-classified.
func (c *Config) validateServe() error {
	sc := c.Serve
	if err := sc.Spec.Validate(); err != nil {
		return asValidation(err)
	}
	if c.Arrival != nil {
		return validationf("campaign: serve and arrival are mutually exclusive (the serve timeline is the arrival process)")
	}
	if c.Faults != nil || c.Autoscaler != nil {
		return validationf("campaign: serve campaigns do not support fault schedules or autoscaling yet")
	}
	if c.Flip != nil {
		return validationf("campaign: serve campaigns do not support counterfactual flips yet")
	}
	return nil
}

// startServe expands the timeline and primes the serving state. Timeline
// errors (a broken trace, an invalid spec) are validation errors.
func (s *Stream) startServe() error {
	sc := s.cfg.Serve
	gen := sc.generator()
	timeline, err := gen.Timeline(s.rng)
	if err != nil {
		return asValidation(err)
	}
	sv := &serveState{
		gen:      gen,
		spec:     &sc.Spec,
		timeline: timeline,
		homes:    make(map[int]int),
		prio:     make(map[string]int),
		stats:    make(map[string]*classAgg),
	}
	for _, cls := range sc.Spec.Classes {
		sv.stats[cls.Name] = &classAgg{cls: cls}
		sv.prio[cls.Name] = cls.Priority
	}
	for i, r := range timeline {
		if _, ok := sv.stats[r.Class]; !ok {
			return validationf("campaign: serve timeline event %d references unknown SLO class %q", i, r.Class)
		}
	}
	s.serve = sv
	return nil
}

// drained reports whether every request has arrived and been served.
func (sv *serveState) drained() bool {
	return sv.cursor >= len(sv.timeline) && len(sv.pending) == 0
}

// stepServe runs one serving tick: pull arrivals, form a batch, route
// every request, simulate the iteration, and score latencies against the
// per-class deadlines. The clock advances by the tick's simulated time
// (plus any idle gap waiting for the next arrival), so queueing delay
// compounds naturally when the stream outpaces the cluster.
func (s *Stream) stepServe() (IterRecord, error) {
	cfg := &s.cfg
	sv := s.serve
	it := s.it
	world := s.baseWorld

	// Idle fast-forward: with an empty queue the next tick starts when
	// the next request lands.
	if len(sv.pending) == 0 && sv.cursor < len(sv.timeline) {
		if t := sv.timeline[sv.cursor].Arrive; t > sv.clock {
			sv.clock = t
		}
	}
	for sv.cursor < len(sv.timeline) && sv.timeline[sv.cursor].Arrive <= sv.clock {
		sv.pending = append(sv.pending, sv.timeline[sv.cursor])
		sv.cursor++
	}

	// Batch formation: order the queue by the discipline, then take
	// requests in order while the token budget lasts. Routing happens
	// inside the take loop because the affinity objective changes a
	// request's effective cost (home-rank placement skips the shared
	// prefix), which changes how many requests fit the tick.
	order := sv.formationOrder()
	budget := world * s.capacity
	load := make([]float64, world)
	type placed struct {
		req  serve.Request
		eff  int
		home bool
	}
	var batchReqs []placed
	taken := make(map[int]bool, len(order))
	total := 0
	for _, idx := range order {
		req := sv.pending[idx]
		rank, eff, homeHit := sv.route(req, load, world)
		if total+eff > budget {
			if len(batchReqs) > 0 {
				break
			}
			// A single oversized request still runs, clamped to capacity.
			eff = budget
		}
		if cfg.Decisions != nil {
			sv.recordRoute(cfg.Decisions, it, req, load, rank, eff, homeHit, world)
		}
		load[rank] += float64(eff)
		sv.homes[req.Session] = rank
		batchReqs = append(batchReqs, placed{req: req, eff: eff, home: homeHit})
		taken[idx] = true
		total += eff
	}
	// Drop served requests, preserving arrival order of the remainder.
	rest := sv.pending[:0]
	for i, r := range sv.pending {
		if !taken[i] {
			rest = append(rest, r)
		}
	}
	sv.pending = rest

	// Simulate the tick on the effective (post-prefix-saving) lengths.
	batch := make([]seq.Sequence, len(batchReqs))
	var affinityHits, savedTokens, fullTokens int
	for i, p := range batchReqs {
		batch[i] = seq.Sequence{ID: i, Len: p.eff}
		fullTokens += p.req.Tokens
		if p.home {
			affinityHits++
			savedTokens += p.req.Tokens - p.eff
		}
	}
	tcfg := cfg.Trainer
	res, err := trainer.Run(tcfg, cfg.Method, batch)
	if err != nil {
		return IterRecord{}, asValidation(err)
	}
	busy := perRankBusy(res, world)

	sv.clock += res.IterTime
	var violations int
	for _, p := range batchReqs {
		agg := sv.stats[p.req.Class]
		lat := sv.clock - p.req.Arrive
		agg.latencies = append(agg.latencies, lat)
		agg.tokens += p.req.Tokens
		if lat > agg.cls.Deadline.Seconds() {
			agg.violations++
			violations++
		} else {
			agg.goodTokens += p.req.Tokens
		}
	}

	queued := 0
	for _, r := range sv.pending {
		queued += r.Tokens
	}
	rec := IterRecord{
		Iter:         it,
		Tokens:       fullTokens,
		Seqs:         len(batch),
		Queued:       queued,
		Penalty:      1,
		Time:         res.IterTime,
		Imbalance:    maxOverMean(busy),
		AffinityHits: affinityHits,
		SavedTokens:  savedTokens,
		Violations:   violations,
	}
	if rec.Time > 0 {
		rec.TokensPerSec = float64(rec.Tokens) / rec.Time
	}

	span := res.LayerTime
	var util float64
	if span > 0 {
		for r, b := range busy {
			f := b / span
			if f > 1 {
				f = 1
			}
			util += f
			s.busySum[r] += b
		}
		util /= float64(world)
		s.spanSum += span
	}
	rec.Utilization = util
	return rec, nil
}

// route picks a rank for one request. Both objectives score per-rank
// token loads of the tick being formed; the affinity objective
// additionally credits the session's home rank with the prefix tokens it
// would not recompute, choosing it whenever the credited placement is no
// worse than spreading to the least-loaded rank.
func (sv *serveState) route(req serve.Request, load []float64, world int) (rank, eff int, homeHit bool) {
	best := 0
	for r := 1; r < world; r++ {
		if load[r] < load[best] {
			best = r
		}
	}
	home, hasHome := sv.homes[req.Session]
	effHome := effectiveLen(req.Tokens - req.Prefix)
	effFull := effectiveLen(req.Tokens)
	if hasHome && home < world {
		if sv.spec.Route == "affinity" {
			if load[home]+float64(effHome) <= load[best]+float64(effFull) {
				return home, effHome, true
			}
		} else if home == best {
			// Balance routing still banks an incidental home hit.
			return home, effHome, true
		}
	}
	return best, effFull, false
}

// effectiveLen floors a routed request's placed length at the samplers'
// 16-token remnant rule so a near-total prefix hit still occupies a slot.
func effectiveLen(n int) int {
	if n < 16 {
		return 16
	}
	return n
}

// recordRoute emits the routing decision for a request that had a real
// choice (an existing home rank).
func (sv *serveState) recordRoute(tr *decision.Trace, it int, req serve.Request, load []float64, rank, eff int, homeHit bool, world int) {
	home, hasHome := sv.homes[req.Session]
	if !hasHome || home >= world {
		return
	}
	best := 0
	for r := 1; r < world; r++ {
		if load[r] < load[best] {
			best = r
		}
	}
	chosen := "spread"
	if homeHit {
		chosen = "affinity"
	}
	tr.Add(decision.Record{
		Iter: it, Kind: decision.KindRoute, Chosen: chosen,
		Alternatives: []decision.Alternative{
			{Choice: "affinity", Score: load[home] + float64(effectiveLen(req.Tokens-req.Prefix)), Chosen: homeHit},
			{Choice: "spread", Score: load[best] + float64(effectiveLen(req.Tokens)), Chosen: !homeHit},
		},
	})
}

// formationOrder returns queue indices in serving order: fcfs keeps
// arrival order, priority sorts by class priority (stable, so FCFS within
// a class), sjf shortest-job-first by full request length.
func (sv *serveState) formationOrder() []int {
	pending := sv.pending
	order := make([]int, len(pending))
	for i := range order {
		order[i] = i
	}
	switch sv.spec.Formation {
	case "priority":
		sort.SliceStable(order, func(a, b int) bool {
			return sv.prio[pending[order[a]].Class] > sv.prio[pending[order[b]].Class]
		})
	case "sjf":
		sort.SliceStable(order, func(a, b int) bool {
			return pending[order[a]].Tokens < pending[order[b]].Tokens
		})
	}
	return order
}

// finishServe folds the per-class accumulators into the report and names
// the summary columns after the generator and the serving knobs.
func (s *Stream) finishServe() {
	sv := s.serve
	sv.unserved = len(sv.pending) + (len(sv.timeline) - sv.cursor)
	classes := make([]ClassMetrics, 0, len(sv.stats))
	for _, cls := range sv.spec.Classes {
		agg := sv.stats[cls.Name]
		cm := ClassMetrics{
			Class:      cls.Name,
			Priority:   cls.Priority,
			Deadline:   cls.Deadline.Seconds(),
			Requests:   len(agg.latencies),
			Violations: agg.violations,
			Tokens:     agg.tokens,
			P50Latency: Percentile(agg.latencies, 50),
			P99Latency: Percentile(agg.latencies, 99),
			MaxLatency: Percentile(agg.latencies, 100),
		}
		if sv.clock > 0 {
			cm.Goodput = float64(agg.goodTokens) / sv.clock
		}
		if cm.Requests > 0 {
			cm.ViolationRate = float64(cm.Violations) / float64(cm.Requests)
		}
		classes = append(classes, cm)
	}
	// Highest priority first, name as the deterministic tie-break.
	sort.SliceStable(classes, func(a, b int) bool {
		if classes[a].Priority != classes[b].Priority {
			return classes[a].Priority > classes[b].Priority
		}
		return classes[a].Class < classes[b].Class
	})
	s.report.Classes = classes
	s.report.summarize(s.cfg.Method.Name(), sv.gen.Name(), "serve:"+sv.spec.Formation+"+"+sv.spec.Route)
	sum := &s.report.Summary
	sum.StreamTime = sv.clock
	sum.Unserved = sv.unserved
	for _, cm := range classes {
		sum.Requests += cm.Requests
		sum.Violations += cm.Violations
	}
}

// SummarizeClasses seed-averages per-class metrics across reports of the
// same serve cell. Counts become per-seed means; latency percentiles and
// rates average arithmetically, matching Summarize.
func SummarizeClasses(reports []*Report) []ClassMetrics {
	if len(reports) == 0 {
		return nil
	}
	out := make([]ClassMetrics, len(reports[0].Classes))
	copy(out, reports[0].Classes)
	acc := make([]struct {
		requests, violations, tokens    float64
		p50, p99, max, goodput, vioRate float64
	}, len(out))
	for _, r := range reports {
		for i, cm := range r.Classes {
			if i >= len(acc) || cm.Class != out[i].Class {
				continue
			}
			acc[i].requests += float64(cm.Requests)
			acc[i].violations += float64(cm.Violations)
			acc[i].tokens += float64(cm.Tokens)
			acc[i].p50 += cm.P50Latency
			acc[i].p99 += cm.P99Latency
			acc[i].max += cm.MaxLatency
			acc[i].goodput += cm.Goodput
			acc[i].vioRate += cm.ViolationRate
		}
	}
	n := float64(len(reports))
	for i := range out {
		out[i].Requests = int(acc[i].requests / n)
		out[i].Violations = int(acc[i].violations / n)
		out[i].Tokens = int(acc[i].tokens / n)
		out[i].P50Latency = acc[i].p50 / n
		out[i].P99Latency = acc[i].p99 / n
		out[i].MaxLatency = acc[i].max / n
		out[i].Goodput = acc[i].goodput / n
		out[i].ViolationRate = acc[i].vioRate / n
	}
	return out
}

// WriteClassTable renders per-class serve metrics as a text table — the
// rendering the CLI serve subcommand and the fig16 experiment share.
func WriteClassTable(w io.Writer, classes []ClassMetrics) {
	fmt.Fprintf(w, "  %-14s %5s %9s %9s %9s %10s %10s %9s %8s\n",
		"class", "prio", "deadline", "requests", "violates", "p50(s)", "p99(s)", "goodput", "viol%")
	for _, c := range classes {
		fmt.Fprintf(w, "  %-14s %5d %8.2fs %9d %9d %10.3f %10.3f %9.0f %7.1f%%\n",
			c.Class, c.Priority, c.Deadline, c.Requests, c.Violations,
			c.P50Latency, c.P99Latency, c.Goodput, 100*c.ViolationRate)
	}
}
