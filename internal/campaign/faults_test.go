package campaign

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"zeppelin/internal/baselines"
	"zeppelin/internal/faults"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// twoNodeCell is a 2-node campaign cell for elastic tests (the 1-node
// testCell cannot shrink).
func twoNodeCell(seed int64) (cfg Config) {
	cfg.Trainer = testCell(seed)
	cfg.Trainer.Nodes = 2
	return cfg
}

func TestFaultedCampaignNilScheduleIsIdentical(t *testing.T) {
	// A campaign with no fault schedule must be byte-identical to one
	// run before the fault layer existed — the fault branches are fully
	// gated. (The fig13 golden pins this globally; here we pin the
	// JSON bytes of a small cell for a fast local signal.)
	base := Config{
		Trainer: testCell(3), Method: zeppelin.Full(), Iters: 8,
		Arrival: driftArrival(8), Policy: Threshold{},
	}
	rep1 := runCampaign(t, base)
	withNil := base
	withNil.Faults = nil
	rep2 := runCampaign(t, withNil)
	a, _ := json.Marshal(rep1)
	b, _ := json.Marshal(rep2)
	if string(a) != string(b) {
		t.Fatal("nil-schedule campaign differs from plain campaign")
	}
	for _, rec := range rep1.Records {
		if rec.World != 0 || rec.Recovery != 0 || len(rec.Events) != 0 {
			t.Fatalf("healthy campaign leaked fault fields: %+v", rec)
		}
	}
}

func TestStragglerChargesTimeAndMarksEvents(t *testing.T) {
	const iters = 10
	sched := &faults.Schedule{
		Name:       "straggler",
		Stragglers: []faults.Straggler{{Rank: 2, Factor: 2.5, From: 3, To: 7}},
	}
	cfg := Config{
		Trainer: testCell(5), Method: baselines.TECP{}, Iters: iters,
		Arrival: Steady{D: workload.ArXiv}, Policy: Threshold{},
	}
	healthy := runCampaign(t, cfg)
	cfg.Faults = sched
	faulted := runCampaign(t, cfg)

	for i := 0; i < iters; i++ {
		h, f := healthy.Records[i], faulted.Records[i]
		inWindow := i >= 3 && i < 7
		if inWindow && f.Time <= h.Time {
			t.Errorf("iteration %d: straggler did not slow TE CP (%v <= %v)", i, f.Time, h.Time)
		}
		if !inWindow && f.Time != h.Time {
			t.Errorf("iteration %d: fault leaked outside its window (%v != %v)", i, f.Time, h.Time)
		}
	}
	if ev := faulted.Records[3].Events; len(ev) != 1 || ev[0] != "straggler:rank2 x2.5" {
		t.Fatalf("onset marker missing: %v", faulted.Records[3].Events)
	}
	if ev := faulted.Records[7].Events; len(ev) != 1 || ev[0] != "recovered:rank2" {
		t.Fatalf("recovery marker missing: %v", ev)
	}
	if faulted.Summary.FaultEvents != 2 {
		t.Fatalf("summary counted %d fault events, want 2", faulted.Summary.FaultEvents)
	}
}

func TestSpeedAwareZeppelinAbsorbsStragglerBetterThanTECP(t *testing.T) {
	const iters = 8
	sched := &faults.Schedule{
		Name:       "straggler",
		Stragglers: []faults.Straggler{{Rank: 2, Factor: 2.5, From: 0, To: iters}},
	}
	ratio := func(m trainer.Method) float64 {
		cfg := Config{
			Trainer: testCell(5), Method: m, Iters: iters,
			Arrival: Steady{D: workload.ArXiv}, Policy: Threshold{},
		}
		healthy := runCampaign(t, cfg).Summary.TokensPerSec
		cfg.Faults = sched
		faulted := runCampaign(t, cfg).Summary.TokensPerSec
		return faulted / healthy
	}
	teRatio := ratio(baselines.TECP{})
	zepRatio := ratio(zeppelin.Full())
	// Speed-aware replanning must beat the rigid even split, and absorb
	// most of the single straggler (7 healthy ranks have the capacity
	// slack to take its load).
	if zepRatio <= teRatio {
		t.Fatalf("Zeppelin ratio %.3f must exceed TE CP's %.3f under a persistent straggler", zepRatio, teRatio)
	}
	if zepRatio < 0.8 {
		t.Errorf("Zeppelin straggler ratio %.3f, want near-full absorption", zepRatio)
	}
}

func TestElasticShrinkResizesWorldAndMigrates(t *testing.T) {
	const iters = 12
	sched := &faults.Schedule{
		Name:    "shrink",
		Outages: []faults.NodeOutage{{Node: 1, From: 4, To: 8}},
	}
	cfg := twoNodeCell(9)
	cfg.Method = zeppelin.Full()
	cfg.Iters = iters
	cfg.Arrival = Steady{D: workload.ArXiv}
	cfg.Policy = Threshold{}
	cfg.Faults = sched
	rep := runCampaign(t, cfg)

	for i, rec := range rep.Records {
		wantWorld := 16
		if i >= 4 && i < 8 {
			wantWorld = 8
		}
		if rec.World != wantWorld {
			t.Errorf("iteration %d world = %d, want %d", i, rec.World, wantWorld)
		}
	}
	// Both transitions are planned: each charges a migration, not a restart.
	if r := rep.Records[4].Recovery; r <= 0 || r >= faults.DefaultRestartCost {
		t.Errorf("shrink migration charge %v out of range", r)
	}
	if r := rep.Records[8].Recovery; r <= 0 || r >= faults.DefaultRestartCost {
		t.Errorf("grow migration charge %v out of range", r)
	}
	// The shrunk iterations must defer the arrivals that no longer fit.
	for i := 4; i < 8; i++ {
		if rep.Records[i].Deferred == 0 {
			t.Errorf("iteration %d: full arrival on a half cluster must defer tokens", i)
		}
	}
	// Transitions force replans (the stale skeleton addresses dead ranks).
	if !rep.Records[4].Replanned || !rep.Records[8].Replanned {
		t.Fatal("elastic transitions must force a replan")
	}
	if rep.Summary.RecoverySeconds <= 0 {
		t.Fatal("summary must accumulate migration time")
	}
}

func TestFailStopChargesRestartInsteadOfMigration(t *testing.T) {
	const iters = 10
	sched := &faults.Schedule{
		Name:    "failstop",
		Outages: []faults.NodeOutage{{Node: 1, From: 3, To: 7, FailStop: true}},
	}
	cfg := twoNodeCell(11)
	cfg.Method = baselines.TECP{}
	cfg.Iters = iters
	cfg.Arrival = Steady{D: workload.ArXiv}
	cfg.Policy = Threshold{}
	cfg.Faults = sched
	rep := runCampaign(t, cfg)

	if r := rep.Records[3].Recovery; r != faults.DefaultRestartCost {
		t.Fatalf("fail-stop charged %v, want the %v restart", r, faults.DefaultRestartCost)
	}
	// The rejoin is planned: migration cost, far below a restart.
	if r := rep.Records[7].Recovery; r <= 0 || r >= faults.DefaultRestartCost {
		t.Fatalf("rejoin charged %v, want a (cheap) migration", r)
	}
	if ev := rep.Records[3].Events; len(ev) != 1 || ev[0] != "fail:node1" {
		t.Fatalf("fail marker wrong: %v", ev)
	}
	if ev := rep.Records[7].Events; len(ev) != 1 || ev[0] != "rejoin:node1" {
		t.Fatalf("rejoin marker wrong: %v", ev)
	}
}

// TestFaultedCampaignDeterministicAcrossPools is the campaign
// determinism acceptance test: identical fault-schedule campaigns must
// be bit-identical for every worker-pool size — run it under -race (CI
// does) to also prove the grid is data-race free.
func TestFaultedCampaignDeterministicAcrossPools(t *testing.T) {
	const iters = 10
	sched := &faults.Schedule{
		Name:       "mixed",
		Stragglers: []faults.Straggler{{Rank: 1, Factor: 2, From: 2, To: 8}},
		NICFaults:  []faults.NICFault{{NIC: 1, Factor: 0.5, From: 3, To: 6}},
		Outages:    []faults.NodeOutage{{Node: 1, From: 6, To: 9}},
	}
	var cfgs []Config
	for _, seed := range []int64{1, 2} {
		for _, m := range []interface{}{baselines.TECP{}, zeppelin.Full()} {
			cfg := twoNodeCell(seed)
			switch v := m.(type) {
			case baselines.TECP:
				cfg.Method = v
			case zeppelin.Method:
				cfg.Method = v
			}
			cfg.Iters = iters
			cfg.Arrival = Steady{D: workload.ArXiv}
			cfg.Policy = Threshold{}
			cfg.Faults = sched
			cfgs = append(cfgs, cfg)
		}
	}
	var blobs [][]byte
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		reports, err := RunGrid(context.Background(), cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	for i := 1; i < len(blobs); i++ {
		if string(blobs[i]) != string(blobs[0]) {
			t.Fatalf("fault-schedule campaign differs between pool sizes 1 and %d", []int{1, 4, runtime.GOMAXPROCS(0)}[i])
		}
	}
}

func TestRecoveryIters(t *testing.T) {
	recs := make([]IterRecord, 10)
	for i := range recs {
		recs[i].TokensPerSec = 100
	}
	// Degraded iterations 4..7.
	for i := 4; i < 8; i++ {
		recs[i].TokensPerSec = 50
	}
	if got := RecoveryIters(recs, 4, 1.1); got != 4 {
		t.Fatalf("RecoveryIters = %d, want 4", got)
	}
	// Within the band: no degradation counted.
	for i := 4; i < 8; i++ {
		recs[i].TokensPerSec = 95
	}
	if got := RecoveryIters(recs, 4, 1.1); got != 0 {
		t.Fatalf("RecoveryIters = %d, want 0", got)
	}
	// Degenerate baselines.
	if RecoveryIters(recs, 0, 1.1) != 0 || RecoveryIters(recs, len(recs), 1.1) != 0 {
		t.Fatal("degenerate baselines must be 0")
	}
}

func TestConfigValidatesFaultSchedule(t *testing.T) {
	cfg := twoNodeCell(1)
	cfg.Method = zeppelin.Full()
	cfg.Iters = 4
	cfg.Faults = &faults.Schedule{Outages: []faults.NodeOutage{{Node: 5, From: 0, To: 2}}}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("out-of-range outage node must fail validation")
	}
	cfg.Faults = &faults.Schedule{Stragglers: []faults.Straggler{{Rank: 99, Factor: 2, From: 0, To: 2}}}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("out-of-range straggler rank must fail validation")
	}
}
