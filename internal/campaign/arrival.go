package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"zeppelin/internal/seq"
	"zeppelin/internal/workload"
)

// Arrival is a batch arrival process: it produces the training batch of
// every campaign iteration. baseTokens is the cluster's nominal global
// token budget (TokensPerGPU × GPUs); processes may deliver more or less
// than that per iteration, but never less than baseTokens/4 so every
// iteration keeps all methods plannable. Implementations draw all
// randomness from rng, which the campaign advances sequentially, so a
// campaign is one deterministic stream per seed.
type Arrival interface {
	Name() string
	Batch(iter, baseTokens int, rng *rand.Rand) []seq.Sequence
}

// minBudget floors a per-iteration token budget at a quarter of the
// nominal budget: arrival troughs shrink batches, they never empty them.
func minBudget(budget, baseTokens int) int {
	if floor := baseTokens / 4; budget < floor {
		return floor
	}
	return budget
}

// Steady delivers one full-budget batch per iteration from a fixed
// dataset — the regime every one-shot figure of the paper measures.
type Steady struct{ D workload.Dataset }

// Name identifies the process and its dataset.
func (s Steady) Name() string { return "steady(" + s.D.Name + ")" }

// Validate rejects malformed length distributions before sampling.
func (s Steady) Validate() error { return s.D.Validate() }

// Batch samples a full-budget batch.
func (s Steady) Batch(_, baseTokens int, rng *rand.Rand) []seq.Sequence {
	return s.D.Batch(baseTokens, rng)
}

// Poisson delivers a variable number of arrival units per iteration:
// K ~ Poisson(Mean), each worth baseTokens/Mean tokens, so the long-run
// average matches the nominal budget while individual iterations swing
// between troughs and overloads.
type Poisson struct {
	D    workload.Dataset
	Mean float64 // expected arrival units per iteration (> 0)
}

// Name identifies the process, its dataset, and its rate.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(%s,λ=%g)", p.D.Name, p.Mean) }

// Validate rejects malformed length distributions before sampling.
func (p Poisson) Validate() error {
	if math.IsNaN(p.Mean) || math.IsInf(p.Mean, 0) {
		return fmt.Errorf("campaign: poisson mean must be finite, got %v", p.Mean)
	}
	return p.D.Validate()
}

// Batch draws the unit count and samples a batch for the scaled budget.
func (p Poisson) Batch(_, baseTokens int, rng *rand.Rand) []seq.Sequence {
	mean := p.Mean
	if mean <= 0 {
		mean = 8
	}
	k := poissonSample(rng, mean)
	budget := int(float64(baseTokens) * float64(k) / mean)
	return p.D.Batch(minBudget(budget, baseTokens), rng)
}

// poissonSample draws K ~ Poisson(mean) by Knuth's product method, which
// is exact and cheap for the single-digit rates campaigns use.
func poissonSample(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bursty alternates between trough and overload phases within each
// Period: burst iterations (the second half, taking the extra iteration
// of an odd period) deliver Factor × the nominal budget and trough
// iterations compensate exactly, so the long-run average stays nominal
// up to the quarter-budget floor every arrival respects.
type Bursty struct {
	D      workload.Dataset
	Period int     // iterations per full burst/trough cycle (≥ 2)
	Factor float64 // burst multiplier in [1, 2)
}

// Name identifies the process and its cycle shape.
func (b Bursty) Name() string {
	return fmt.Sprintf("bursty(%s,T=%d,x%g)", b.D.Name, b.period(), b.factor())
}

// Validate rejects malformed length distributions before sampling.
func (b Bursty) Validate() error { return b.D.Validate() }

func (b Bursty) period() int {
	if b.Period < 2 {
		return 20
	}
	return b.Period
}

func (b Bursty) factor() float64 {
	if b.Factor < 1 || b.Factor >= 2 {
		return 1.75
	}
	return b.Factor
}

// Batch samples at the phase's budget.
func (b Bursty) Batch(iter, baseTokens int, rng *rand.Rand) []seq.Sequence {
	period, factor := b.period(), b.factor()
	troughN := period / 2
	burstN := period - troughN
	mul := (float64(period) - float64(burstN)*factor) / float64(troughN) // trough: exact budget conservation
	if iter%period >= troughN {
		mul = factor // burst
	}
	budget := int(float64(baseTokens) * mul)
	return b.D.Batch(minBudget(budget, baseTokens), rng)
}

// Drift interpolates the sequence-length distribution piecewise-linearly
// through a path of datasets over the campaign horizon: iteration 0
// samples Path[0] exactly, the final iteration Path[len-1], and every
// iteration in between a convex mixture of its two neighbors. This is
// the workload non-stationarity that makes replanning policies matter.
type Drift struct {
	Path  []workload.Dataset // waypoints (≥ 2)
	Iters int                // campaign horizon the path spans (≥ 2)
}

// Name lists the waypoints.
func (d Drift) Name() string {
	names := make([]string, len(d.Path))
	for i, ds := range d.Path {
		names[i] = ds.Name
	}
	return "drift(" + strings.Join(names, "->") + ")"
}

// Validate rejects malformed waypoint distributions before sampling.
func (d Drift) Validate() error {
	for _, ds := range d.Path {
		if err := ds.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// At returns the mixed distribution active at an iteration.
func (d Drift) At(iter int) workload.Dataset {
	if len(d.Path) == 0 {
		return workload.ArXiv
	}
	// Degenerate horizons never leave the first waypoint: iteration 0
	// samples Path[0] exactly, whatever the configuration.
	if len(d.Path) == 1 || d.Iters < 2 {
		return d.Path[0]
	}
	if iter < 0 {
		iter = 0
	}
	if iter >= d.Iters {
		iter = d.Iters - 1
	}
	pos := float64(iter) / float64(d.Iters-1) * float64(len(d.Path)-1)
	i := int(pos)
	if i >= len(d.Path)-1 {
		return d.Path[len(d.Path)-1]
	}
	alpha := pos - float64(i)
	from, to := d.Path[i], d.Path[i+1]
	probs := make([]float64, len(from.Probs))
	for b := range probs {
		probs[b] = (1-alpha)*from.Probs[b] + alpha*to.Probs[b]
	}
	return workload.Dataset{Name: fmt.Sprintf("drift@%d", iter), Probs: probs}
}

// Batch samples from the iteration's mixture at full budget.
func (d Drift) Batch(iter, baseTokens int, rng *rand.Rand) []seq.Sequence {
	return d.At(iter).Batch(baseTokens, rng)
}

// Replay is deterministic trace replay: a recorded list of batches is
// served verbatim, cycling when the campaign outlives the trace. The rng
// is untouched, so replay campaigns are identical across seeds.
type Replay struct {
	Trace   string // display name of the trace
	Batches [][]seq.Sequence
}

// Name identifies the trace.
func (r Replay) Name() string { return fmt.Sprintf("replay(%s,%d)", r.Trace, len(r.Batches)) }

// Validate rejects traces that would fail mid-stream: a replay must have
// at least one batch, every batch at least one sequence, and every
// sequence a positive length.
func (r Replay) Validate() error {
	if len(r.Batches) == 0 {
		return fmt.Errorf("campaign: replay trace %q has no batches", r.Trace)
	}
	for i, b := range r.Batches {
		if len(b) == 0 {
			return fmt.Errorf("campaign: replay trace %q batch %d is empty", r.Trace, i)
		}
		for j, s := range b {
			if s.Len < 1 {
				return fmt.Errorf("campaign: replay trace %q batch %d sequence %d has length %d, want >= 1", r.Trace, i, j, s.Len)
			}
		}
	}
	return nil
}

// Batch serves the recorded batch for the iteration (copied, so callers
// may not mutate the trace).
func (r Replay) Batch(iter, _ int, _ *rand.Rand) []seq.Sequence {
	if len(r.Batches) == 0 {
		return nil
	}
	src := r.Batches[iter%len(r.Batches)]
	out := make([]seq.Sequence, len(src))
	copy(out, src)
	return out
}

// Record pre-samples a replayable trace of `iters` batches from a
// dataset at a fixed seed — the bridge from any generative process to
// deterministic replay.
func Record(d workload.Dataset, iters, baseTokens int, seedVal int64) Replay {
	rng := rand.New(rand.NewSource(seedVal))
	batches := make([][]seq.Sequence, iters)
	for i := range batches {
		batches[i] = d.Batch(baseTokens, rng)
	}
	return Replay{Trace: d.Name, Batches: batches}
}

// ArrivalByName builds the named arrival process over a base dataset:
// "steady", "poisson", "bursty", "drift" (interpolating driftPath over
// the campaign horizon), or "replay" (a pre-recorded steady trace). The
// CLI and the campaign experiment both assemble processes through it.
func ArrivalByName(name string, d workload.Dataset, driftPath []workload.Dataset, iters, baseTokens int) (Arrival, error) {
	switch name {
	case "steady":
		return Steady{D: d}, nil
	case "poisson":
		return Poisson{D: d, Mean: 8}, nil
	case "bursty":
		return Bursty{D: d, Period: 20, Factor: 1.75}, nil
	case "drift":
		if len(driftPath) == 0 {
			driftPath = []workload.Dataset{workload.ArXiv, workload.GitHub, workload.ProLong64k}
		}
		if len(driftPath) < 2 {
			return nil, fmt.Errorf("campaign: drift needs >= 2 waypoints, got %d", len(driftPath))
		}
		return Drift{Path: driftPath, Iters: iters}, nil
	case "replay":
		n := iters
		if n > 32 {
			n = 32
		}
		if n < 1 {
			n = 1
		}
		return Record(d, n, baseTokens, 424243), nil
	}
	return nil, fmt.Errorf("campaign: unknown arrival process %q (want steady|poisson|bursty|drift|replay)", name)
}
