package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"zeppelin/internal/baselines"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/runner"
	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// testCell is a small, fast cell: 3B on one node of Cluster A.
func testCell(seed int64) trainer.Config {
	return trainer.Config{
		Model: model.LLaMA3B, Spec: cluster.ClusterA, Nodes: 1, TP: 1,
		TokensPerGPU: 4096, Seed: seed,
	}
}

func driftArrival(iters int) Arrival {
	return Drift{Path: []workload.Dataset{workload.ArXiv, workload.GitHub}, Iters: iters}
}

func runCampaign(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCampaignBasicShape(t *testing.T) {
	const iters = 12
	rep := runCampaign(t, Config{
		Trainer: testCell(1), Method: zeppelin.Full(), Iters: iters,
		Arrival: driftArrival(iters), Policy: Always{},
	})
	if len(rep.Records) != iters {
		t.Fatalf("%d records, want %d", len(rep.Records), iters)
	}
	if rep.Summary.Replans != iters {
		t.Fatalf("always policy replanned %d of %d iterations", rep.Summary.Replans, iters)
	}
	for _, rec := range rep.Records {
		if rec.Time <= 0 || rec.TokensPerSec <= 0 {
			t.Fatalf("iteration %d has non-positive time/throughput: %+v", rec.Iter, rec)
		}
		if rec.Imbalance < 1 || rec.Penalty != 1 {
			t.Fatalf("iteration %d metrics out of range: %+v", rec.Iter, rec)
		}
		if rec.Utilization <= 0 || rec.Utilization > 1 {
			t.Fatalf("iteration %d utilization %v out of (0,1]", rec.Iter, rec.Utilization)
		}
	}
	cell := testCell(1)
	world := cell.GPUs()
	if len(rep.PerRankUtil) != world {
		t.Fatalf("per-rank utilization has %d entries, want %d", len(rep.PerRankUtil), world)
	}
	if rep.Summary.P50IterTime > rep.Summary.P95IterTime ||
		rep.Summary.P95IterTime > rep.Summary.P99IterTime ||
		rep.Summary.P99IterTime > rep.Summary.MaxIterTime {
		t.Fatalf("percentiles not monotone: %+v", rep.Summary)
	}
}

func TestNeverPolicyPlansExactlyOnce(t *testing.T) {
	const iters = 10
	rep := runCampaign(t, Config{
		Trainer: testCell(2), Method: zeppelin.Full(), Iters: iters,
		Arrival: driftArrival(iters), Policy: Never{},
	})
	if rep.Summary.Replans != 1 {
		t.Fatalf("never policy replanned %d times, want 1 (the initial plan)", rep.Summary.Replans)
	}
	if !rep.Records[0].Replanned {
		t.Fatal("iteration 0 must carry the initial plan")
	}
	for _, rec := range rep.Records[1:] {
		if rec.Replanned {
			t.Fatalf("iteration %d replanned under Never", rec.Iter)
		}
		if rec.Penalty < 1 {
			t.Fatalf("iteration %d reuse penalty %v < 1", rec.Iter, rec.Penalty)
		}
	}
}

func TestThresholdSitsBetweenAlwaysAndNever(t *testing.T) {
	const iters = 40
	replans := func(p Policy) int {
		rep := runCampaign(t, Config{
			Trainer: testCell(3), Method: zeppelin.Full(), Iters: iters,
			Arrival: driftArrival(iters), Policy: p,
		})
		return rep.Summary.Replans
	}
	always, thresh, never := replans(Always{}), replans(Threshold{Ratio: 1.5}), replans(Never{})
	if always != iters || never != 1 {
		t.Fatalf("always=%d never=%d, want %d and 1", always, never, iters)
	}
	if thresh <= never || thresh > always {
		t.Fatalf("threshold replans %d not in (1, %d]", thresh, always)
	}
}

func TestDriftDegradesStalePlans(t *testing.T) {
	// Under a drifting stream, never-replanning must cost throughput
	// against threshold replanning for a shape-dependent method.
	const iters = 60
	run := func(p Policy) float64 {
		rep := runCampaign(t, Config{
			Trainer: testCell(4), Method: zeppelin.Full(), Iters: iters,
			Arrival: Drift{Path: []workload.Dataset{workload.ArXiv, workload.ProLong64k}, Iters: iters},
			Policy:  p,
		})
		return rep.Summary.TokensPerSec
	}
	adaptive, frozen := run(Threshold{}), run(Never{})
	if frozen >= adaptive {
		t.Fatalf("frozen plan (%.0f tok/s) should underperform adaptive replanning (%.0f tok/s) under drift",
			frozen, adaptive)
	}
}

func TestShapeIndependentMethodsNeverReplan(t *testing.T) {
	const iters = 8
	for _, m := range []trainer.Method{baselines.TECP{}, baselines.LLaMACP{}} {
		rep := runCampaign(t, Config{
			Trainer: testCell(5), Method: m, Iters: iters,
			Arrival: driftArrival(iters), Policy: Always{}, // policy must be ignored
		})
		if rep.Summary.Replans != 0 {
			t.Fatalf("%s replanned %d times", m.Name(), rep.Summary.Replans)
		}
		if !strings.Contains(rep.Summary.Policy, "shape-independent") {
			t.Fatalf("%s policy label %q", m.Name(), rep.Summary.Policy)
		}
		for _, rec := range rep.Records {
			if rec.Penalty != 1 {
				t.Fatalf("%s iteration %d penalty %v", m.Name(), rec.Iter, rec.Penalty)
			}
		}
	}
}

func TestCampaignDeterministicAndParallelSafe(t *testing.T) {
	// The acceptance invariant one level down: identical campaigns are
	// bit-identical, whether run serially or fanned out via the runner.
	cfgFor := func(seed int64) Config {
		return Config{
			Trainer: testCell(seed), Method: zeppelin.Full(), Iters: 10,
			Arrival: driftArrival(10), Policy: Threshold{},
		}
	}
	serial := make([]*Report, 4)
	for i := range serial {
		serial[i] = runCampaign(t, cfgFor(int64(100+i)))
	}
	parallel := make([]*Report, 4)
	if err := runner.ForEach(context.Background(), 4, 4, func(i int) error {
		rep, err := Run(context.Background(), cfgFor(int64(100+i)))
		parallel[i] = rep
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		a, _ := json.Marshal(serial[i])
		b, _ := json.Marshal(parallel[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("campaign %d: serial and parallel reports differ", i)
		}
	}
}

func TestReportJSONRoundTrips(t *testing.T) {
	rep := runCampaign(t, Config{
		Trainer: testCell(6), Method: zeppelin.Full(), Iters: 5,
		Arrival: driftArrival(5), Policy: Threshold{},
	})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Summary != rep.Summary || len(decoded.Records) != len(rep.Records) {
		t.Fatal("JSON round trip lost data")
	}
	rows := rep.TraceRows()
	if len(rows) != len(rep.Records) {
		t.Fatalf("%d trace rows for %d records", len(rows), len(rep.Records))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Trainer: testCell(1), Iters: 5}); err == nil {
		t.Fatal("missing method must error")
	}
	if _, err := Run(context.Background(), Config{Trainer: testCell(1), Method: zeppelin.Full(), Iters: 0}); err == nil {
		t.Fatal("zero iterations must error")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	// Input must not be reordered.
	if vals[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}

func TestSlotPlanFillMatchesBuildOnSameBatch(t *testing.T) {
	batch := []seq.Sequence{
		{ID: 0, Len: 30 << 10}, {ID: 1, Len: 8 << 10}, {ID: 2, Len: 4 << 10},
		{ID: 3, Len: 2 << 10}, {ID: 4, Len: 1 << 10},
	}
	sp := buildSlotPlan(batch, 8, 5120, nil)
	if got := sp.fill(batch, nil); got != sp.imbalance {
		t.Fatalf("filling a plan with its own batch: imbalance %v != %v", got, sp.imbalance)
	}
	if sp.imbalance < 1 {
		t.Fatalf("imbalance %v < 1", sp.imbalance)
	}
}

func TestSlotPlanOverflowFallsBackToLocal(t *testing.T) {
	sp := buildSlotPlan([]seq.Sequence{{ID: 0, Len: 4096}}, 4, 8192, nil)
	// Twice as many sequences as slots: the extras go greedy-local and
	// the projection stays finite and ≥ 1.
	batch := []seq.Sequence{{ID: 0, Len: 4096}, {ID: 1, Len: 4096}}
	if imb := sp.fill(batch, nil); imb < 1 {
		t.Fatalf("overflow imbalance %v < 1", imb)
	}
}

func TestOverloadArrivalsAreAdmitted(t *testing.T) {
	// Bursty 1.75× and Poisson spikes exceed the cluster's placement
	// capacity; admission control must defer the excess instead of the
	// partitioner rejecting the batch mid-campaign.
	const iters = 20
	for _, a := range []Arrival{
		Bursty{D: workload.ArXiv, Period: 4, Factor: 1.75},
		Poisson{D: workload.ArXiv, Mean: 4},
	} {
		rep := runCampaign(t, Config{
			Trainer: testCell(8), Method: zeppelin.Full(), Iters: iters,
			Arrival: a, Policy: Threshold{},
		})
		for _, rec := range rep.Records {
			if rec.Deferred < 0 {
				t.Fatalf("%s iteration %d: negative deferral %d", a.Name(), rec.Iter, rec.Deferred)
			}
		}
	}
	// The bursty stream must actually trigger deferrals.
	rep := runCampaign(t, Config{
		Trainer: testCell(8), Method: zeppelin.Full(), Iters: iters,
		Arrival: Bursty{D: workload.ArXiv, Period: 4, Factor: 1.75}, Policy: Threshold{},
	})
	if rep.Summary.DeferredTokens == 0 {
		t.Fatal("1.75x bursts within 1.25x capacity must defer tokens")
	}
}

func TestAdmit(t *testing.T) {
	batch := []seq.Sequence{{ID: 0, Len: 100}, {ID: 1, Len: 50}, {ID: 2, Len: 50}}
	// Fits: untouched.
	got, deferred := admit(batch, 200)
	if len(got) != 3 || deferred != 0 {
		t.Fatalf("admit within capacity: %v deferred %d", got, deferred)
	}
	// Clamp the boundary sequence, defer the rest.
	got, deferred = admit(batch, 120)
	if len(got) != 2 || got[1].Len != 20 || deferred != 80 {
		t.Fatalf("admit(120): %v deferred %d, want clamp to 20 and 80 deferred", got, deferred)
	}
	// A sub-16-token remnant is dropped rather than creating a degenerate
	// sequence.
	got, deferred = admit(batch, 110)
	if len(got) != 1 || deferred != 100 {
		t.Fatalf("admit(110): %v deferred %d, want 1 seq and 100 deferred", got, deferred)
	}
}
