package campaign

import (
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/decision"
	"zeppelin/internal/faults"
	"zeppelin/internal/model"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// autoscaleCell is a small drifting campaign cell with headroom to
// scale: 4 nodes of Cluster A.
func autoscaleCell(seed int64) Config {
	return Config{
		Trainer: trainer.Config{
			Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 4, TP: 1,
			TokensPerGPU: 2048, Seed: seed,
		},
		Iters: 60,
		Arrival: Drift{
			Path:  []workload.Dataset{workload.ArXiv, workload.GitHub, workload.ProLong64k},
			Iters: 60,
		},
	}
}

func TestAutoscalerWorldStaysBounded(t *testing.T) {
	for _, as := range []*Autoscaler{
		{},
		{MinNodes: 2, MaxNodes: 3},
		{UpUtil: 0.8, DownUtil: 0.3, Step: 2, Cooldown: 1},
		{MinNodes: 1, MaxNodes: 4, UpUtil: 0.99, DownUtil: 0.95, Cooldown: 2},
	} {
		cfg := autoscaleCell(7)
		cfg.Autoscaler = as
		cfg.Method = zeppelin.Full()
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("autoscaled campaign: %v", err)
		}
		rpn := cfg.Trainer.EffectiveSpec().GPUsPerNode
		lo, hi := as.MinNodes*rpn, as.MaxNodes*rpn
		for _, rec := range rep.Records {
			if rec.World == 0 {
				t.Fatalf("iteration %d: autoscaled campaign did not record world size", rec.Iter)
			}
			if rec.World < lo || rec.World > hi {
				t.Fatalf("iteration %d: world %d outside [%d, %d]", rec.Iter, rec.World, lo, hi)
			}
			if rec.World > cfg.Trainer.Nodes*rpn {
				t.Fatalf("iteration %d: world %d exceeds cluster capacity %d",
					rec.Iter, rec.World, cfg.Trainer.Nodes*rpn)
			}
		}
	}
}

func TestAutoscalerCooldownRespected(t *testing.T) {
	cfg := autoscaleCell(3)
	cfg.Method = zeppelin.Full()
	cfg.Autoscaler = &Autoscaler{UpUtil: 0.95, DownUtil: 0.9, Cooldown: 4}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("autoscaled campaign: %v", err)
	}
	last := -1
	transitions := 0
	for i, rec := range rep.Records {
		if i > 0 && rec.World != rep.Records[i-1].World {
			transitions++
			if last >= 0 && rec.Iter-last <= cfg.Autoscaler.Cooldown {
				t.Fatalf("transitions at iterations %d and %d violate cooldown %d",
					last, rec.Iter, cfg.Autoscaler.Cooldown)
			}
			last = rec.Iter
		}
	}
	if transitions == 0 {
		t.Fatal("scenario produced no scale transitions; the cooldown property was not exercised")
	}
}

// TestAutoscalerDeterministicAcrossWorkers drains the same autoscaled
// grid through worker pools {1, 4, GOMAXPROCS} and asserts bit-identical
// reports and decision logs.
func TestAutoscalerDeterministicAcrossWorkers(t *testing.T) {
	pools := []int{1, 4, runtime.GOMAXPROCS(0)}
	type run struct {
		reports []byte
		log     string
	}
	runs := make([]run, len(pools))
	for pi, workers := range pools {
		cfgs := make([]Config, 3)
		traces := make([]*decision.Trace, len(cfgs))
		for i := range cfgs {
			cfgs[i] = autoscaleCell(int64(100 + 37*i))
			cfgs[i].Method = zeppelin.Full()
			cfgs[i].Autoscaler = &Autoscaler{UpUtil: 0.95, DownUtil: 0.9, Cooldown: 3}
			traces[i] = &decision.Trace{}
			cfgs[i].Decisions = traces[i]
		}
		reports, err := RunGrid(context.Background(), cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		var log strings.Builder
		for _, tr := range traces {
			if err := tr.WriteNDJSON(&log); err != nil {
				t.Fatal(err)
			}
		}
		runs[pi] = run{reports: raw, log: log.String()}
	}
	for pi := 1; pi < len(pools); pi++ {
		if string(runs[pi].reports) != string(runs[0].reports) {
			t.Fatalf("reports differ between worker pools %d and %d", pools[0], pools[pi])
		}
		if runs[pi].log != runs[0].log {
			t.Fatalf("decision logs differ between worker pools %d and %d", pools[0], pools[pi])
		}
	}
	// The scale decisions must actually be in the log for this to mean
	// anything.
	if !strings.Contains(runs[0].log, `"kind":"scale"`) {
		t.Fatal("decision log records no scale decisions")
	}
}

func TestAutoscalerRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"exceeds-cluster", func(c *Config) { c.Autoscaler = &Autoscaler{MaxNodes: c.Trainer.Nodes + 1} }},
		{"min-above-max", func(c *Config) { c.Autoscaler = &Autoscaler{MinNodes: 3, MaxNodes: 2} }},
		{"down-above-up", func(c *Config) { c.Autoscaler = &Autoscaler{UpUtil: 0.5, DownUtil: 0.6} }},
		{"negative-step", func(c *Config) { c.Autoscaler = &Autoscaler{Step: -1} }},
		{"negative-cooldown", func(c *Config) { c.Autoscaler = &Autoscaler{Cooldown: -2} }},
		{"with-faults", func(c *Config) {
			c.Autoscaler = &Autoscaler{}
			c.Faults = &faults.Schedule{}
		}},
	}
	for _, tc := range cases {
		cfg := autoscaleCell(1)
		cfg.Method = zeppelin.Full()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid autoscaler config", tc.name)
		}
	}
}

func TestReplanCostNegativeIsValidationError(t *testing.T) {
	cfg := autoscaleCell(1)
	cfg.Method = zeppelin.Full()
	cfg.ReplanCost = -0.01
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted a negative replan cost")
	}
	if !strings.Contains(err.Error(), "replan cost") {
		t.Fatalf("error %q does not name the replan cost", err)
	}
	// The streaming entry point must reject it too — this is the path
	// SDK and HTTP callers reach.
	if _, err := Start(context.Background(), cfg); err == nil {
		t.Fatal("Start accepted a negative replan cost")
	}
}

func TestParseAutoscaler(t *testing.T) {
	a, err := ParseAutoscaler("min=2,max=4,up-util=0.9,down-util=0.5,step=2,cooldown=8")
	if err != nil {
		t.Fatal(err)
	}
	want := Autoscaler{MinNodes: 2, MaxNodes: 4, UpUtil: 0.9, DownUtil: 0.5, Step: 2, Cooldown: 8}
	if *a != want {
		t.Fatalf("got %+v, want %+v", *a, want)
	}
	for _, s := range []string{"", "on"} {
		a, err := ParseAutoscaler(s)
		if err != nil || *a != (Autoscaler{}) {
			t.Fatalf("ParseAutoscaler(%q) = %+v, %v; want all defaults", s, a, err)
		}
	}
	for _, s := range []string{"bogus", "min", "min=x", "up-util=a,b"} {
		if _, err := ParseAutoscaler(s); err == nil {
			t.Errorf("ParseAutoscaler(%q) accepted invalid grammar", s)
		}
	}
}
