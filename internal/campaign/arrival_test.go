package campaign

import (
	"math"
	"math/rand"
	"testing"

	"zeppelin/internal/seq"
	"zeppelin/internal/workload"
)

const testBase = 64 << 10

func totalTokens(b []seq.Sequence) int { return seq.TotalLen(b) }

func TestSteadyDeliversFullBudget(t *testing.T) {
	a := Steady{D: workload.ArXiv}
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < 5; it++ {
		b := a.Batch(it, testBase, rng)
		if got := totalTokens(b); got != testBase {
			t.Fatalf("iter %d: %d tokens, want %d", it, got, testBase)
		}
	}
}

func TestArrivalsDeterministicPerSeed(t *testing.T) {
	arrivals := []Arrival{
		Steady{D: workload.GitHub},
		Poisson{D: workload.GitHub, Mean: 8},
		Bursty{D: workload.GitHub, Period: 10, Factor: 1.5},
		Drift{Path: []workload.Dataset{workload.ArXiv, workload.GitHub}, Iters: 20},
		Record(workload.GitHub, 8, testBase, 7),
	}
	for _, a := range arrivals {
		r1 := rand.New(rand.NewSource(42))
		r2 := rand.New(rand.NewSource(42))
		for it := 0; it < 10; it++ {
			b1 := a.Batch(it, testBase, r1)
			b2 := a.Batch(it, testBase, r2)
			if len(b1) != len(b2) {
				t.Fatalf("%s iter %d: lengths %d vs %d", a.Name(), it, len(b1), len(b2))
			}
			for i := range b1 {
				if b1[i] != b2[i] {
					t.Fatalf("%s iter %d: seq %d differs: %+v vs %+v", a.Name(), it, i, b1[i], b2[i])
				}
			}
		}
	}
}

func TestArrivalsRespectMinBudget(t *testing.T) {
	arrivals := []Arrival{
		Poisson{D: workload.ArXiv, Mean: 2}, // frequent K=0 draws
		Bursty{D: workload.ArXiv, Period: 4, Factor: 1.99},
	}
	rng := rand.New(rand.NewSource(3))
	for _, a := range arrivals {
		for it := 0; it < 50; it++ {
			if got := totalTokens(a.Batch(it, testBase, rng)); got < testBase/4 {
				t.Fatalf("%s iter %d: %d tokens below floor %d", a.Name(), it, got, testBase/4)
			}
		}
	}
}

func TestBurstyAlternatesPhases(t *testing.T) {
	a := Bursty{D: workload.ArXiv, Period: 10, Factor: 1.75}
	rng := rand.New(rand.NewSource(5))
	trough := totalTokens(a.Batch(0, testBase, rng))
	burst := totalTokens(a.Batch(5, testBase, rng))
	if trough >= testBase || burst <= testBase {
		t.Fatalf("trough %d / burst %d do not straddle base %d", trough, burst, testBase)
	}
}

func TestBurstyOddPeriodConservesBudget(t *testing.T) {
	// An odd period gives the burst phase the extra iteration; the trough
	// multiplier must compensate so one full cycle still averages the
	// nominal budget (factor chosen to keep troughs above the floor).
	a := Bursty{D: workload.ArXiv, Period: 5, Factor: 1.4}
	rng := rand.New(rand.NewSource(2))
	var sum int
	for it := 0; it < 5; it++ {
		sum += totalTokens(a.Batch(it, testBase, rng))
	}
	mean := float64(sum) / 5
	if math.Abs(mean-testBase)/testBase > 1e-3 {
		t.Fatalf("odd-period cycle mean %v, want ~%d", mean, testBase)
	}
}

func TestDriftInterpolatesEndpoints(t *testing.T) {
	d := Drift{Path: []workload.Dataset{workload.ArXiv, workload.ProLong64k}, Iters: 100}
	first, last := d.At(0), d.At(99)
	for b := range first.Probs {
		if first.Probs[b] != workload.ArXiv.Probs[b] {
			t.Fatalf("iteration 0 bin %d: %v, want arxiv %v", b, first.Probs[b], workload.ArXiv.Probs[b])
		}
		if last.Probs[b] != workload.ProLong64k.Probs[b] {
			t.Fatalf("final iteration bin %d: %v, want prolong64k %v", b, last.Probs[b], workload.ProLong64k.Probs[b])
		}
	}
	// Midpoint is a strict mixture: mean length strictly between the two.
	mid := d.At(50).MeanLen()
	lo, hi := workload.ArXiv.MeanLen(), workload.ProLong64k.MeanLen()
	if lo > hi {
		lo, hi = hi, lo
	}
	if mid <= lo || mid >= hi {
		t.Fatalf("midpoint mean %v outside (%v, %v)", mid, lo, hi)
	}
	// Past the horizon, the mixture clamps to the final waypoint.
	if got := d.At(500).MeanLen(); math.Abs(got-d.At(99).MeanLen()) > 1e-9 {
		t.Fatalf("past-horizon mean %v != final %v", got, d.At(99).MeanLen())
	}
}

func TestReplayServesTraceVerbatimAndCycles(t *testing.T) {
	r := Record(workload.ArXiv, 4, testBase, 11)
	rng := rand.New(rand.NewSource(99))
	for it := 0; it < 8; it++ {
		got := r.Batch(it, testBase, rng)
		want := r.Batches[it%4]
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d seqs, want %d", it, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d seq %d: %+v != %+v", it, i, got[i], want[i])
			}
		}
		// Mutating the served batch must not corrupt the trace.
		if len(got) > 0 {
			got[0].Len = -1
			if r.Batches[it%4][0].Len == -1 {
				t.Fatal("replay returned an alias into the trace")
			}
		}
	}
}

func TestArrivalByName(t *testing.T) {
	for _, name := range []string{"steady", "poisson", "bursty", "drift", "replay"} {
		a, err := ArrivalByName(name, workload.ArXiv, nil, 50, testBase)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rng := rand.New(rand.NewSource(1))
		if b := a.Batch(0, testBase, rng); len(b) == 0 {
			t.Fatalf("%s: empty batch", name)
		}
	}
	if _, err := ArrivalByName("nope", workload.ArXiv, nil, 50, testBase); err == nil {
		t.Fatal("unknown arrival must error")
	}
}

func TestPoissonSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, mean = 20000, 8.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(poissonSample(rng, mean))
	}
	if got := sum / n; math.Abs(got-mean) > 0.15 {
		t.Fatalf("empirical mean %v, want ~%v", got, mean)
	}
}
