package campaign

import (
	"math"
	"sort"

	"zeppelin/internal/model"
	"zeppelin/internal/seq"
)

// slotPlan is the reusable skeleton of a hierarchical placement: one
// slot per planned sequence, recording how many ranks the sequence
// spanned and which. Reusing a plan across iterations means routing the
// new batch through this skeleton — the i-th longest new sequence takes
// the slot planned for the i-th longest old one — which is exactly what
// a training system does when it skips the partitioner: the ring groups
// and local assignments stay frozen while the workload underneath them
// moves.
type slotPlan struct {
	world int
	// slots are sorted by planned sequence length descending, mirroring
	// the longest-first order both partitioning algorithms use.
	slots []slot
	// imbalance is the max/mean per-rank causal-pair load of the plan on
	// the batch it was built for — the fresh-plan reference.
	imbalance float64
}

type slot struct {
	planned int   // length (tokens) of the sequence the slot was built for
	ranks   []int // ranks the slot spans; len(ranks) = ring size G (1 = local)
}

// buildSlotPlan constructs a fresh skeleton for a batch with the
// hierarchy the paper's partitioner produces: a sequence needing more
// than capacityTokens splits into a ring of ceil(len/capacity) ranks
// (clamped to the world), shorter sequences run locally, and slots claim
// the least-loaded ranks longest-first. The estimator intentionally
// ignores zone topology — it scores balance, not communication — which
// is the quantity the replanning controller needs. A non-nil slow vector
// (per-rank slowdown factors, 1 = nominal) makes the projection
// speed-aware: loads are weighed in effective time, so the skeleton a
// speed-aware partitioner would build steers work off slow ranks and
// the imbalance it reports is a time imbalance.
func buildSlotPlan(batch []seq.Sequence, world, capacityTokens int, slow []float64) *slotPlan {
	sorted := make([]seq.Sequence, len(batch))
	copy(sorted, batch)
	seq.SortByLenDesc(sorted)

	sp := &slotPlan{world: world, slots: make([]slot, 0, len(sorted))}
	load := make([]float64, world)
	order := make([]int, world)
	for _, s := range sorted {
		g := 1
		if capacityTokens > 0 {
			g = (s.Len + capacityTokens - 1) / capacityTokens
		}
		if g < 1 {
			g = 1
		}
		if g > world {
			g = world
		}
		// Claim the g least-loaded ranks (ties broken by rank id, so the
		// construction is deterministic).
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if load[order[a]] != load[order[b]] {
				return load[order[a]] < load[order[b]]
			}
			return order[a] < order[b]
		})
		ranks := make([]int, g)
		copy(ranks, order[:g])
		share := model.CausalPairs(float64(s.Len)) / float64(g)
		for _, r := range ranks {
			load[r] += share * slowOf(slow, r)
		}
		sp.slots = append(sp.slots, slot{planned: s.Len, ranks: ranks})
	}
	sp.imbalance = maxOverMean(load)
	return sp
}

// fill routes a batch through the skeleton and returns its projected
// imbalance: the i-th longest sequence occupies slot i (its ring shares
// the pairs evenly, as the 2G-chunk scheme does); sequences beyond the
// slot count fall back to greedy local placement on the least-loaded
// rank, and leftover slots simply stay empty. A non-nil slow vector
// weighs loads in effective time, so a skeleton built on a healthy
// cluster shows its true (inflated) imbalance once a straggler appears.
func (sp *slotPlan) fill(batch []seq.Sequence, slow []float64) float64 {
	sorted := make([]seq.Sequence, len(batch))
	copy(sorted, batch)
	seq.SortByLenDesc(sorted)

	load := make([]float64, sp.world)
	for i, s := range sorted {
		pairs := model.CausalPairs(float64(s.Len))
		if i < len(sp.slots) {
			sl := sp.slots[i]
			share := pairs / float64(len(sl.ranks))
			for _, r := range sl.ranks {
				load[r] += share * slowOf(slow, r)
			}
			continue
		}
		best := 0
		for r := 1; r < sp.world; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		load[best] += pairs * slowOf(slow, best)
	}
	return maxOverMean(load)
}

// slowOf reads a slowdown vector defensively: nil or short vectors mean
// nominal speed. Multiplying by the returned 1.0 is bit-identical to the
// pre-fault-layer arithmetic, so healthy campaigns are unchanged.
func slowOf(slow []float64, rank int) float64 {
	if rank < 0 || rank >= len(slow) || slow[rank] == 0 {
		return 1
	}
	return slow[rank]
}

// maxOverMean is the balance metric everywhere in the campaign layer:
// the busiest rank's load over the world mean; 1.0 is perfect balance.
func maxOverMean(load []float64) float64 {
	if len(load) == 0 {
		return 1
	}
	var sum, max float64
	for _, l := range load {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum <= 0 {
		return 1
	}
	mean := sum / float64(len(load))
	imb := max / mean
	if imb < 1 || math.IsNaN(imb) {
		return 1
	}
	return imb
}
