package campaign

import (
	"errors"
	"fmt"
)

// ValidationError marks an error caused by bad campaign input — a
// malformed config, an invalid dataset distribution, a broken trace —
// as opposed to an internal simulation failure. The HTTP layer maps
// validation errors to 400 and everything else to 500, so clients see a
// structured rejection for inputs they can fix instead of an opaque
// server error.
type ValidationError struct{ Err error }

// Error returns the wrapped message.
func (e *ValidationError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error for errors.Is/As chains.
func (e *ValidationError) Unwrap() error { return e.Err }

// NewValidationError classifies an existing error as a validation
// error (idempotent; preserves nil) — the exported form layers above
// the campaign engine use to mark their own input rejections.
func NewValidationError(err error) error { return asValidation(err) }

// validationf builds a classified validation error.
func validationf(format string, args ...any) error {
	return &ValidationError{Err: fmt.Errorf(format, args...)}
}

// asValidation classifies an existing error as a validation error,
// preserving nil.
func asValidation(err error) error {
	if err == nil {
		return nil
	}
	var v *ValidationError
	if errors.As(err, &v) {
		return err
	}
	return &ValidationError{Err: err}
}

// IsValidation reports whether err is (or wraps) a validation error.
func IsValidation(err error) bool {
	var v *ValidationError
	return errors.As(err, &v)
}
