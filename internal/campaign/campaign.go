// Package campaign is the streaming long-horizon simulation layer: it
// runs a training Method over hundreds of iterations of an arriving,
// drifting workload instead of the single batches the paper's figures
// measure. Each iteration a batch arrives (Arrival), a replanning
// controller (Policy) decides whether to re-run the partitioner or
// reuse the previous placement skeleton, and the iteration is simulated
// end to end — charging a configurable replan cost when planning runs
// and a balance penalty when a stale skeleton is stretched over a batch
// it was not built for. An online metrics layer accumulates the
// per-iteration stream (time percentiles, tokens/sec, imbalance and
// per-rank utilization histories) into a JSON-exportable Report that
// internal/trace can render as an iteration timeline.
//
// Campaigns are deterministic per (Config, seed): all randomness flows
// from one sequential RNG, so fanning campaigns across seeds or methods
// with internal/runner.ForEach is bit-identical to running them serially.
//
// A campaign can additionally run under a fault-and-elasticity schedule
// (internal/faults): per-rank straggler windows and NIC degradations
// flow into the iteration's simulation as an effective-speed cluster
// view, elastic shrink/grow events resize the active cluster
// mid-campaign (migrating sequence state through the Eq. 2 remapping
// solver, or paying a checkpoint restart on fail-stop), and the
// replanning controller sees speed-weighted projections for methods
// that re-plan against the degraded view.
package campaign

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"zeppelin/internal/cluster"
	"zeppelin/internal/decision"
	"zeppelin/internal/faults"
	"zeppelin/internal/partition"
	"zeppelin/internal/runner"
	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
)

// ShapeIndependent is implemented by methods whose placement does not
// depend on the batch's shape: even-splitting strategies shard every
// sequence the same way whatever arrives, so a campaign never replans
// them and they never pay a staleness penalty. TE CP and LLaMA CP opt in.
type ShapeIndependent interface {
	ShapeIndependent() bool
}

// Replanner is implemented by stateful methods whose planner carries
// state across iterations — plan caches, incremental patch bases
// (zeppelin.Incremental opts in). The campaign resets that state at Run
// start so a reused method instance produces the same stream run over
// run; sharing one Replanner instance across concurrent grid cells is a
// caller bug.
type Replanner interface {
	ResetPlanner()
}

// PlanModeReporter is implemented by methods whose planner can name the
// fast path its most recent Plan call took ("full", "patched", "cached",
// "shared"). The campaign loop uses it to emit placement decision
// records; zeppelin.Incremental opts in.
type PlanModeReporter interface {
	LastPlanMode() string
}

// SpeedAware is implemented by methods that re-plan against the degraded
// effective-speed cluster view (Zeppelin opts in): their fresh-plan and
// stale-plan projections weight rank loads by slowdown, so straggler
// onset raises the projected stale imbalance and triggers replanning.
// Speed-oblivious methods keep homogeneous projections — replanning
// would not route them around a straggler, and the controller should
// not thrash trying.
type SpeedAware interface {
	SpeedAware() bool
}

// Config describes one campaign: the cluster/model cell, the method
// under test, the arrival process, and the replanning controller.
type Config struct {
	// Trainer is the per-iteration simulation cell; its Seed seeds the
	// campaign's single RNG stream.
	Trainer trainer.Config
	Method  trainer.Method
	// Iters is the campaign horizon (≥ 1).
	Iters int
	// Arrival generates each iteration's batch; default Steady(arxiv).
	Arrival Arrival
	// Policy decides when to re-run the partitioner; default Threshold.
	Policy Policy
	// ReplanCost is the per-replan coordination charge in seconds — the
	// cost of re-running the solver, broadcasting the new placement, and
	// draining in-flight micro-batches. Zero selects DefaultReplanCost;
	// a negative value is a validation error (use a small positive value
	// to approximate free replanning).
	ReplanCost float64
	// ReuseOverhead is the bookkeeping charge of a reuse iteration in
	// seconds (routing the batch through the frozen skeleton). Zero
	// selects DefaultReuseOverhead; a negative value means free.
	ReuseOverhead float64
	// Faults is the fault-and-elasticity schedule the campaign runs
	// under; nil means a healthy fixed-size cluster (bit-identical to
	// pre-fault-layer campaigns).
	Faults *faults.Schedule
	// Autoscaler, when non-nil, closes the elasticity loop: the campaign
	// grows and shrinks its own world from observed queue depth and
	// utilization instead of replaying a declared schedule, paying the
	// same Eq. 2 state migration on every transition. Mutually exclusive
	// with Faults — the two both own the world size.
	Autoscaler *Autoscaler
	// MigrateBytesPerToken scales elastic state migrations: bytes of
	// resident sequence state per token shipped through the Eq. 2 solver
	// on planned shrink/grow transitions. Zero derives the model's KV
	// footprint (2 × hidden × bytes × layers / TP); negative means
	// migrations are free.
	MigrateBytesPerToken float64
	// Decisions, when non-nil, records every replan/admission/placement
	// choice the campaign loop makes, with the scored alternatives each
	// site considered. Records are appended from the single campaign
	// goroutine in iteration order, so the trace is deterministic per
	// (Config, seed) at any worker count. The trace is Reset at Start.
	// Nil disables tracing entirely (zero overhead on the hot loop).
	Decisions *decision.Trace
	// Flip, when non-nil, overrides the replan verdict at exactly one
	// iteration — the counterfactual replay hook. Forced decisions (first
	// iteration, post-resize) are not flippable and the override is
	// ignored there; a flip that matches the factual verdict changes
	// nothing, keeping the stream bit-identical.
	Flip *Flip
	// Serve, when non-nil, switches the campaign to an inference-style
	// request stream: SLO-classed requests arrive on a multi-client
	// timeline, each iteration forms and routes one batch, and the report
	// gains per-class latency/goodput/violation metrics. Iters caps the
	// number of serving ticks; the stream ends early once the timeline
	// drains. Mutually exclusive with Arrival, Faults, Autoscaler, and
	// Flip.
	Serve *ServeConfig
}

// Flip names one replan decision to invert during a counterfactual
// re-run: at iteration Iter, force the verdict to Replan instead of
// whatever the policy decides.
type Flip struct {
	Iter   int
	Replan bool
}

// Default iteration charges; see Config.ReplanCost / Config.ReuseOverhead.
const (
	DefaultReplanCost    = 20e-3
	DefaultReuseOverhead = 0.2e-3
)

// Validate fills defaults and checks the configuration. Errors are
// validation-classified (IsValidation) so the HTTP layer can answer bad
// inputs with a structured 400.
func (c *Config) Validate() error {
	if c.Method == nil {
		return validationf("campaign: no method")
	}
	if c.Iters <= 0 {
		return validationf("campaign: iters must be >= 1, got %d", c.Iters)
	}
	if err := c.Trainer.Validate(); err != nil {
		return asValidation(err)
	}
	if c.Serve != nil {
		if err := c.validateServe(); err != nil {
			return err
		}
	} else {
		if c.Arrival == nil {
			c.Arrival = Steady{D: workload.ArXiv}
		}
		if v, ok := c.Arrival.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return asValidation(err)
			}
		}
		if c.Policy == nil {
			c.Policy = Threshold{}
		}
	}
	if c.ReplanCost < 0 {
		return validationf("campaign: replan cost must be >= 0 seconds, got %g", c.ReplanCost)
	}
	if c.ReplanCost == 0 {
		c.ReplanCost = DefaultReplanCost
	}
	switch {
	case c.ReuseOverhead == 0:
		c.ReuseOverhead = DefaultReuseOverhead
	case c.ReuseOverhead < 0:
		c.ReuseOverhead = 0
	}
	if c.Faults != nil {
		espec := c.Trainer.EffectiveSpec()
		if err := c.Faults.Validate(c.Trainer.Nodes, espec.GPUsPerNode, espec.NICsPerNode); err != nil {
			return asValidation(err)
		}
	}
	if c.Autoscaler != nil {
		if c.Faults != nil {
			return validationf("campaign: autoscaler and fault schedule are mutually exclusive (both own the world size)")
		}
		if err := c.Autoscaler.validate(c.Trainer.Nodes); err != nil {
			return asValidation(err)
		}
	}
	switch {
	case c.MigrateBytesPerToken == 0:
		c.MigrateBytesPerToken = 2 * float64(c.Trainer.Model.Hidden) *
			float64(c.Trainer.Model.BytesPerElem) * float64(c.Trainer.Model.Layers) /
			float64(c.Trainer.TP)
	case c.MigrateBytesPerToken < 0:
		c.MigrateBytesPerToken = 0
	}
	return nil
}

// shapeIndependent reports whether the method opts out of replanning.
func (c *Config) shapeIndependent() bool {
	si, ok := c.Method.(ShapeIndependent)
	return ok && si.ShapeIndependent()
}

// speedAware reports whether the method re-plans against degraded views.
func (c *Config) speedAware() bool {
	sa, ok := c.Method.(SpeedAware)
	return ok && sa.SpeedAware()
}

// Stream is an in-flight campaign: the iterator-style counterpart of
// Run. Start validates the configuration and primes the loop state; each
// Next call simulates exactly one iteration and returns its IterRecord,
// so callers — the public pkg/zeppelin Campaign API, the zeppelind
// NDJSON event stream — can consume the campaign record by record
// instead of all at once. Draining a Stream produces the byte-identical
// record sequence and Report that Run returns for the same Config.
//
// A Stream is single-goroutine: the loop is serial by construction
// (iteration t+1's controller state depends on t), so parallelism lives
// one level up, across (method × policy × seed) cells.
type Stream struct {
	ctx context.Context
	cfg Config

	// Derived once at Start.
	espec      cluster.Spec
	rpn        int // DP ranks per node
	baseWorld  int
	capacity   int
	baseTokens int
	shapeIndep bool
	speedAware bool
	layers     float64

	// Loop state carried across iterations.
	rng         *rand.Rand
	stale       *slotPlan
	sinceReplan int
	prevTokens  int
	it          int
	busySum     []float64
	spanSum     float64

	// Autoscaler state: the world the last iteration ran on, the world
	// the next one will run on (decided at end of iteration), and the
	// iterations elapsed since the last transition took effect.
	curNodes   int
	nextNodes  int
	sinceScale int

	// serve is the request-stream state of serving campaigns (nil for
	// training campaigns).
	serve *serveState

	report *Report
	err    error
	done   bool
}

// Start validates the configuration and returns a primed Stream. The
// context governs the whole campaign: once it is cancelled, the next
// Next call stops the stream and Err reports ctx.Err(). A nil context
// means Background.
func Start(ctx context.Context, cfg Config) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rp, ok := cfg.Method.(Replanner); ok {
		rp.ResetPlanner()
	}
	if cfg.Decisions != nil {
		cfg.Decisions.Reset()
	}
	espec := cfg.Trainer.EffectiveSpec()
	baseWorld := cfg.Trainer.GPUs() / cfg.Trainer.TP
	st := &Stream{
		ctx:        ctx,
		cfg:        cfg,
		espec:      espec,
		rpn:        espec.GPUsPerNode,
		baseWorld:  baseWorld,
		capacity:   int(cfg.Trainer.CapacityFactor * float64(cfg.Trainer.TokensPerGPU*cfg.Trainer.TP)),
		baseTokens: cfg.Trainer.TotalTokens(),
		shapeIndep: cfg.shapeIndependent(),
		speedAware: cfg.speedAware(),
		layers:     float64(cfg.Trainer.Model.Layers),
		rng:        rand.New(rand.NewSource(cfg.Trainer.Seed)),
		busySum:    make([]float64, baseWorld),
		report:     &Report{Records: make([]IterRecord, 0, cfg.Iters)},
	}
	if as := cfg.Autoscaler; as != nil {
		// Start at the ceiling and shrink into the load: the first
		// decision is eligible immediately (no transition to cool from).
		st.curNodes = as.MaxNodes
		st.nextNodes = as.MaxNodes
		st.sinceScale = as.Cooldown
	}
	if cfg.Serve != nil {
		if err := st.startServe(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Next simulates the next iteration and returns its record. It returns
// ok=false when the campaign completed, the context was cancelled, or an
// iteration failed — Err distinguishes the three (nil on completion).
func (s *Stream) Next() (IterRecord, bool) {
	if s.done {
		return IterRecord{}, false
	}
	if s.it >= s.cfg.Iters || (s.serve != nil && s.serve.drained()) {
		s.finish()
		return IterRecord{}, false
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		s.finish()
		return IterRecord{}, false
	}
	var rec IterRecord
	var err error
	if s.serve != nil {
		rec, err = s.stepServe()
	} else {
		rec, err = s.step()
	}
	if err != nil {
		s.err = err
		s.finish()
		return IterRecord{}, false
	}
	s.report.Records = append(s.report.Records, rec)
	s.it++
	return rec, true
}

// Err reports why the stream stopped: nil while records keep coming and
// after a complete campaign, the context error after a cancellation, or
// the failing iteration's error.
func (s *Stream) Err() error { return s.err }

// Report returns the campaign report accumulated so far. After Next has
// returned false the report is finalized (per-rank utilization and the
// summary computed over the records that ran — all of them for a
// complete campaign, a prefix for a cancelled one).
func (s *Stream) Report() *Report { return s.report }

// finish seals the stream: per-rank utilization and the summary fold
// over whatever records were produced.
func (s *Stream) finish() {
	if s.done {
		return
	}
	s.done = true
	s.report.PerRankUtil = make([]float64, s.baseWorld)
	if s.spanSum > 0 {
		for r := range s.busySum {
			f := s.busySum[r] / s.spanSum
			if f > 1 {
				f = 1
			}
			s.report.PerRankUtil[r] = f
		}
	}
	if s.serve != nil {
		s.finishServe()
		return
	}
	s.report.summarize(s.cfg.Method.Name(), s.cfg.Arrival.Name(), policyLabel(&s.cfg))
}

// step simulates one iteration — the body of the campaign loop.
func (s *Stream) step() (IterRecord, error) {
	cfg := &s.cfg
	it := s.it
	// Resolve the iteration's cluster state under the fault schedule:
	// active node count, effective-speed view, transition events.
	view := faults.View{Nodes: cfg.Trainer.Nodes, PrevNodes: cfg.Trainer.Nodes}
	switch {
	case cfg.Faults != nil:
		view = cfg.Faults.At(it, cfg.Trainer.Nodes, s.rpn, s.espec.NICsPerNode)
	case cfg.Autoscaler != nil:
		// Apply the transition the autoscaler decided at the end of the
		// previous iteration; the synthesized view flows through the same
		// elastic-resize machinery as a scheduled shrink/grow event.
		view = faults.View{Nodes: s.nextNodes, PrevNodes: s.curNodes}
		if s.nextNodes != s.curNodes {
			view.Resized = true
			dir := "scale-up"
			if s.nextNodes < s.curNodes {
				dir = "scale-down"
			}
			view.Events = []string{fmt.Sprintf("%s:nodes=%d", dir, s.nextNodes)}
		}
		s.curNodes = s.nextNodes
	}
	world := view.Nodes * s.rpn
	var recovery float64
	if view.Resized {
		// Elastic transition: the stale skeleton addresses a rank set
		// that no longer exists; every shape-dependent method must
		// replan. Fail-stop loses state and pays the checkpoint
		// restart; planned shrink/grow migrates it through Eq. 2.
		s.stale = nil
		if view.FailStop {
			recovery += cfg.Faults.Restart()
		} else {
			_, mig, err := faults.Migration(s.espec, view.PrevNodes, view.Nodes,
				s.prevTokens, cfg.MigrateBytesPerToken)
			if err != nil {
				return IterRecord{}, fmt.Errorf("campaign: iteration %d migration: %w", it, err)
			}
			recovery += mig
		}
	}
	// Speed-aware methods project plans against the degraded view;
	// oblivious ones keep homogeneous projections (replanning would
	// not help them around a straggler).
	var slow []float64
	if s.speedAware && view.Health.Degraded() {
		slow = make([]float64, world)
		for r := range slow {
			slow[r] = view.Health.SlowOf(r)
		}
	}

	batch := cfg.Arrival.Batch(it, s.baseTokens, s.rng)
	if len(batch) == 0 {
		// A bad trace or degenerate process is an input problem, not a
		// simulation failure: classify it so the HTTP layer answers 400.
		return IterRecord{}, validationf("campaign: arrival %s produced an empty batch at iteration %d", cfg.Arrival.Name(), it)
	}
	// Admission control: no iteration can place more tokens than the
	// partitioners' total capacity, so overload arrivals (bursts,
	// Poisson spikes) — and nominal arrivals landing on an elastically
	// shrunk cluster — are trimmed to fit and the excess is deferred;
	// in a real system those samples re-enter the stream later.
	batch, deferred := admit(batch, world*s.capacity)
	if cfg.Decisions != nil && deferred > 0 {
		admitted := seq.TotalLen(batch)
		drec := decision.Record{
			Iter: it, Kind: decision.KindAdmission, Chosen: "trim",
			Alternatives: []decision.Alternative{
				{Choice: "admit-all", Score: float64(admitted + deferred)},
				{Choice: "trim", Score: float64(admitted), Chosen: true},
			},
		}
		if cfg.Faults != nil || cfg.Autoscaler != nil {
			drec.World = world
			drec.Events = view.Events
		}
		cfg.Decisions.Add(drec)
	}

	// Project both placements for the incoming batch: what a fresh
	// plan would achieve and what reusing the stale skeleton costs.
	// Shape-independent methods skip the projection entirely — they
	// have no plan skeleton to manage.
	var fresh *slotPlan
	var staleImb float64
	replan := false
	flipped := false
	if !s.shapeIndep {
		fresh = buildSlotPlan(batch, world, s.capacity, slow)
		staleImb = fresh.imbalance
		if s.stale != nil {
			staleImb = s.stale.fill(batch, slow)
		}
		forced := s.stale == nil
		replan = forced || cfg.Policy.ShouldReplan(PolicyState{
			Iter:           it,
			SinceReplan:    s.sinceReplan,
			StaleImbalance: staleImb,
			FreshImbalance: fresh.imbalance,
		})
		// The counterfactual override: invert exactly one non-forced
		// verdict. A flip that agrees with the factual verdict is a no-op,
		// so a replay with that flip stays bit-identical.
		if cfg.Flip != nil && cfg.Flip.Iter == it && !forced && replan != cfg.Flip.Replan {
			replan = cfg.Flip.Replan
			flipped = true
		}
		if cfg.Decisions != nil {
			drec := decision.Record{
				Iter: it, Kind: decision.KindReplan,
				Chosen: "reuse", Forced: forced, Flipped: flipped,
				Policy:         cfg.Policy.Name(),
				StaleImbalance: staleImb,
				FreshImbalance: fresh.imbalance,
				SinceReplan:    s.sinceReplan,
				Alternatives: []decision.Alternative{
					{Choice: "replan", Score: fresh.imbalance, Chosen: replan},
					{Choice: "reuse", Score: staleImb, Chosen: !replan},
				},
			}
			if replan {
				drec.Chosen = "replan"
			}
			if th, ok := cfg.Policy.(Threshold); ok {
				drec.Threshold = th.ratio()
			}
			if cfg.Faults != nil || cfg.Autoscaler != nil {
				drec.World = world
				drec.Events = view.Events
			}
			cfg.Decisions.Add(drec)
		}
	}

	// The fresh reference simulation: full fidelity for the plan the
	// partitioner would produce on this batch, on the active cluster,
	// under the iteration's effective-speed view.
	tcfg := cfg.Trainer
	tcfg.Nodes = view.Nodes
	tcfg.Health = view.Health
	res, err := trainer.Run(tcfg, cfg.Method, batch)
	if err != nil {
		return IterRecord{}, fmt.Errorf("campaign: iteration %d: %w", it, err)
	}
	busy := perRankBusy(res, world)
	realizedImb := maxOverMean(busy)

	// Placement record: which fast path the incremental planner took for
	// this iteration's plan (trainer.Run just executed it). Cumulative
	// fast-path counters score the alternatives — the planner's lifetime
	// tendency at the moment of the decision.
	if cfg.Decisions != nil && !s.shapeIndep {
		if pm, ok := cfg.Method.(PlanModeReporter); ok {
			mode := pm.LastPlanMode()
			drec := decision.Record{
				Iter: it, Kind: decision.KindPlacement, Chosen: mode, PlanMode: mode,
			}
			if pc, ok := cfg.Method.(interface{ PlannerCounters() partition.Counters }); ok {
				c := pc.PlannerCounters()
				drec.Alternatives = []decision.Alternative{
					{Choice: "full", Score: float64(c.Full), Chosen: mode == "full"},
					{Choice: "patched", Score: float64(c.Patched), Chosen: mode == "patched"},
					{Choice: "cached", Score: float64(c.Cached), Chosen: mode == "cached"},
					{Choice: "shared", Score: float64(c.Shared), Chosen: mode == "shared"},
				}
			}
			cfg.Decisions.Add(drec)
		}
	}

	rec := IterRecord{
		Iter:     it,
		Tokens:   seq.TotalLen(batch),
		Seqs:     len(batch),
		Deferred: deferred,
		Penalty:  1,
		Recovery: recovery,
		Events:   view.Events,
		Flipped:  flipped,
	}
	if cfg.Faults != nil || cfg.Autoscaler != nil {
		rec.World = world
	}
	span := res.LayerTime
	switch {
	case s.shapeIndep:
		// Even-splitting methods re-chunk every iteration as part of
		// their normal (cheap) host path; there is no plan to reuse.
		rec.Time = res.IterTime
		rec.Imbalance = realizedImb
	case replan:
		rec.Replanned = true
		rec.Time = res.IterTime + cfg.ReplanCost
		rec.Imbalance = realizedImb
		s.stale = fresh
		s.sinceReplan = 0
	default:
		// Reuse: the layer critical path stretches by the ratio of the
		// stale skeleton's projected imbalance to the fresh plan's; the
		// partitioner's host overhead is skipped.
		penalty := staleImb / fresh.imbalance
		if penalty < 1 {
			penalty = 1
		}
		rec.Penalty = penalty
		span = res.LayerTime * penalty
		rec.Time = span*s.layers + res.GradSync + cfg.ReuseOverhead
		rec.Imbalance = realizedImb * penalty
		s.sinceReplan++
	}
	rec.Time += recovery
	if rec.Time > 0 {
		rec.TokensPerSec = float64(rec.Tokens) / rec.Time
	}
	s.prevTokens = rec.Tokens

	// Utilization: busy fraction of the (possibly stretched) layer span.
	var util float64
	if span > 0 {
		for r, b := range busy {
			f := b / span
			if f > 1 {
				f = 1
			}
			util += f
			s.busySum[r] += b
		}
		util /= float64(world)
		s.spanSum += span
	}
	rec.Utilization = util

	// Close the loop: with an autoscaler configured, the iteration's
	// observed queue depth and utilization pick the next world. Verdicts
	// inside the cooldown window are forced back to hold.
	if as := cfg.Autoscaler; as != nil {
		next, verdict := as.decide(view.Nodes, util, deferred)
		forced := false
		if next != view.Nodes && s.sinceScale < as.Cooldown {
			next, verdict = view.Nodes, "hold"
			forced = true
		}
		if next != view.Nodes {
			s.sinceScale = 0
		} else {
			s.sinceScale++
		}
		s.nextNodes = next
		if cfg.Decisions != nil {
			cfg.Decisions.Add(decision.Record{
				Iter: it, Kind: decision.KindScale, Chosen: verdict, Forced: forced,
				World:  world,
				Events: view.Events,
				Alternatives: []decision.Alternative{
					{Choice: "grow", Score: float64(deferred), Chosen: verdict == "grow"},
					{Choice: "hold", Score: util, Chosen: verdict == "hold"},
					{Choice: "shrink", Score: util, Chosen: verdict == "shrink"},
				},
			})
		}
	}
	return rec, nil
}

// Run executes the campaign to completion and returns its report: Start
// plus a full drain of the stream. Cancelling ctx stops the loop between
// iterations and returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Report, error) {
	s, err := Start(ctx, cfg)
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return s.Report(), nil
}

// policyLabel names the controller column: shape-independent methods
// have no plan to manage, which the report states explicitly.
func policyLabel(cfg *Config) string {
	if cfg.shapeIndependent() {
		return "n/a (shape-independent)"
	}
	return cfg.Policy.Name()
}

// RunGrid executes a flat list of independent campaigns across a
// bounded worker pool. Each campaign is deterministic and
// self-contained, so results are positional and bit-identical at every
// pool size; the fig13 experiment and the CLI campaign subcommand both
// fan their (row × seed) grids through it.
func RunGrid(ctx context.Context, cfgs []Config, workers int) ([]*Report, error) {
	reports := make([]*Report, len(cfgs))
	err := runner.ForEach(ctx, workers, len(cfgs), func(i int) error {
		rep, err := Run(ctx, cfgs[i])
		if err != nil {
			name := "?"
			if cfgs[i].Method != nil {
				name = cfgs[i].Method.Name()
			}
			return fmt.Errorf("campaign %s (grid job %d): %w", name, i, err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}

// admit trims a batch to the placement capacity of one iteration,
// returning the admitted batch and the deferred token count. Sequences
// are admitted in arrival order; the first sequence that does not fit
// is clamped to the remaining budget (when ≥ 16 tokens remain, matching
// the samplers' remnant rule) and the rest wait for a later iteration.
func admit(batch []seq.Sequence, maxTokens int) ([]seq.Sequence, int) {
	total := seq.TotalLen(batch)
	if maxTokens <= 0 || total <= maxTokens {
		return batch, 0
	}
	remaining := maxTokens
	admitted := make([]seq.Sequence, 0, len(batch))
	for _, s := range batch {
		if s.Len <= remaining {
			admitted = append(admitted, s)
			remaining -= s.Len
			continue
		}
		if remaining >= 16 {
			admitted = append(admitted, seq.Sequence{ID: s.ID, Len: remaining})
			remaining = 0
		}
		break
	}
	return admitted, total - (maxTokens - remaining)
}

// perRankBusy sums each rank's busy seconds across all simulated phases
// of the iteration's layer. Phases are folded in sorted label order so
// the floating-point accumulation — and therefore the whole report — is
// bit-identical across runs (map iteration order is not).
func perRankBusy(res *trainer.Result, world int) []float64 {
	labels := make([]string, 0, len(res.PerRankPhase))
	for label := range res.PerRankPhase {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	busy := make([]float64, world)
	for _, label := range labels {
		for r, d := range res.PerRankPhase[label] {
			if r < world {
				busy[r] += d
			}
		}
	}
	return busy
}
