package campaign

import (
	"fmt"
	"strconv"
	"strings"
)

// Autoscaler closes the elasticity loop: instead of replaying a declared
// fault schedule, the campaign itself decides at the end of every
// iteration whether the next one should run on more nodes, fewer, or the
// same. The inputs are the two load signals the loop already measures —
// deferred tokens (queue depth: admission control trimmed the arrival,
// so the world is too small) and mean utilization (the world is too big
// when ranks sit idle). Transitions ride the same elastic-rescale path
// as planned shrink/grow fault events: the stale skeleton is discarded,
// the next plan is forced, and resident sequence state migrates through
// the Eq. 2 solver at Config.MigrateBytesPerToken.
//
// The controller is deliberately conservative: steps are bounded
// (Step nodes per transition), transitions are rate-limited (Cooldown
// iterations must elapse between them), and the world never leaves
// [MinNodes, MaxNodes] — with MaxNodes capped at the configured cluster
// size, because the campaign cannot conjure capacity the cell does not
// have. All decisions are pure functions of observed state, so an
// autoscaled campaign stays deterministic per (Config, seed).
type Autoscaler struct {
	// MinNodes is the smallest world the controller will shrink to.
	// Zero selects 1; the world can never drop below one node.
	MinNodes int
	// MaxNodes is the largest world the controller will grow to. Zero
	// selects the cluster size (Trainer.Nodes); a value above it is a
	// validation error — the campaign cannot exceed cluster capacity.
	MaxNodes int
	// UpUtil is the grow trigger: utilization above it (or any deferred
	// tokens) asks for Step more nodes. Zero selects DefaultUpUtil.
	UpUtil float64
	// DownUtil is the shrink trigger: utilization below it, with nothing
	// deferred, releases Step nodes. Zero selects DefaultDownUtil.
	DownUtil float64
	// Step bounds how many nodes one transition adds or removes.
	// Zero selects 1.
	Step int
	// Cooldown is the number of iterations that must run after a
	// transition before the controller may fire again; verdicts inside
	// the window are forced to hold. Zero selects DefaultCooldown.
	Cooldown int
}

// Default autoscaler gains; see the corresponding Autoscaler fields.
const (
	DefaultUpUtil   = 0.92
	DefaultDownUtil = 0.60
	DefaultCooldown = 5
)

// validate fills defaults and checks the gains against the cluster size.
func (a *Autoscaler) validate(clusterNodes int) error {
	if a.MinNodes == 0 {
		a.MinNodes = 1
	}
	if a.MaxNodes == 0 {
		a.MaxNodes = clusterNodes
	}
	if a.MinNodes < 1 {
		return fmt.Errorf("campaign: autoscaler min nodes must be >= 1, got %d", a.MinNodes)
	}
	if a.MaxNodes > clusterNodes {
		return fmt.Errorf("campaign: autoscaler max nodes %d exceeds cluster capacity %d", a.MaxNodes, clusterNodes)
	}
	if a.MinNodes > a.MaxNodes {
		return fmt.Errorf("campaign: autoscaler min nodes %d exceeds max nodes %d", a.MinNodes, a.MaxNodes)
	}
	if a.UpUtil == 0 {
		a.UpUtil = DefaultUpUtil
	}
	if a.DownUtil == 0 {
		a.DownUtil = DefaultDownUtil
	}
	if a.UpUtil <= 0 || a.UpUtil > 1 {
		return fmt.Errorf("campaign: autoscaler up-util must be in (0, 1], got %g", a.UpUtil)
	}
	if a.DownUtil < 0 || a.DownUtil >= a.UpUtil {
		return fmt.Errorf("campaign: autoscaler down-util %g must be in [0, up-util %g)", a.DownUtil, a.UpUtil)
	}
	if a.Step == 0 {
		a.Step = 1
	}
	if a.Step < 0 {
		return fmt.Errorf("campaign: autoscaler step must be >= 1, got %d", a.Step)
	}
	if a.Cooldown == 0 {
		a.Cooldown = DefaultCooldown
	}
	if a.Cooldown < 0 {
		return fmt.Errorf("campaign: autoscaler cooldown must be >= 1, got %d", a.Cooldown)
	}
	return nil
}

// ParseAutoscaler builds an Autoscaler from the CLI grammar: "on" (or
// the empty string) selects all defaults, otherwise comma-separated
// key=value pairs with keys min, max, up-util, down-util, step,
// cooldown. Bounds are checked later against the cluster by validate.
func ParseAutoscaler(s string) (*Autoscaler, error) {
	a := &Autoscaler{}
	s = strings.TrimSpace(s)
	if s == "" || s == "on" {
		return a, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("campaign: autoscaler option %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "min":
			a.MinNodes, err = strconv.Atoi(val)
		case "max":
			a.MaxNodes, err = strconv.Atoi(val)
		case "up-util":
			a.UpUtil, err = strconv.ParseFloat(val, 64)
		case "down-util":
			a.DownUtil, err = strconv.ParseFloat(val, 64)
		case "step":
			a.Step, err = strconv.Atoi(val)
		case "cooldown":
			a.Cooldown, err = strconv.Atoi(val)
		default:
			return nil, fmt.Errorf("campaign: unknown autoscaler option %q (want min|max|up-util|down-util|step|cooldown)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: autoscaler option %s=%q: %v", key, val, err)
		}
	}
	return a, nil
}

// decide returns the verdict and next node count for the iteration that
// just ran: cur nodes, mean utilization util, deferred tokens. The
// result is clamped to [MinNodes, MaxNodes]; a clamp that lands back on
// cur reads as hold.
func (a *Autoscaler) decide(cur int, util float64, deferred int) (next int, verdict string) {
	switch {
	case deferred > 0 || util > a.UpUtil:
		next, verdict = cur+a.Step, "grow"
	case util < a.DownUtil:
		next, verdict = cur-a.Step, "shrink"
	default:
		return cur, "hold"
	}
	if next > a.MaxNodes {
		next = a.MaxNodes
	}
	if next < a.MinNodes {
		next = a.MinNodes
	}
	if next == cur {
		verdict = "hold"
	}
	return next, verdict
}
