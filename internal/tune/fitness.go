package tune

import (
	"fmt"

	"zeppelin/internal/campaign"
)

// Weights are the multi-objective fitness weights. They are normalized
// to sum to 1 before scoring, so only their ratios matter; all-zero
// selects DefaultWeights.
type Weights struct {
	// Goodput weights campaign throughput (tokens/sec, higher better).
	Goodput float64 `json:"goodput"`
	// P99 weights tail iteration time (lower better).
	P99 float64 `json:"p99"`
	// Migration weights the migration bill: replan coordination charges
	// plus elastic state-migration seconds (lower better).
	Migration float64 `json:"migration"`
	// Utilization weights mean per-rank busy fraction (higher better).
	Utilization float64 `json:"utilization"`
}

// DefaultWeights favor goodput while keeping the tail, the migration
// bill, and utilization in the objective.
var DefaultWeights = Weights{Goodput: 0.4, P99: 0.2, Migration: 0.2, Utilization: 0.2}

// normalize scales the weights to sum to 1; all-zero selects
// DefaultWeights, a negative weight is an error.
func (w Weights) normalize() (Weights, error) {
	if w.Goodput < 0 || w.P99 < 0 || w.Migration < 0 || w.Utilization < 0 {
		return w, fmt.Errorf("tune: fitness weights must be >= 0, got %+v", w)
	}
	sum := w.Goodput + w.P99 + w.Migration + w.Utilization
	if sum == 0 {
		return DefaultWeights, nil
	}
	w.Goodput /= sum
	w.P99 /= sum
	w.Migration /= sum
	w.Utilization /= sum
	return w, nil
}

// Metrics are the seed-averaged campaign observables fitness scores.
type Metrics struct {
	TokensPerSec    float64 `json:"tokens_per_sec"`
	P99IterTime     float64 `json:"p99_iter_time"`
	Replans         float64 `json:"replans"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	// MigrationCost is the migration bill in seconds: replans times the
	// resolved replan cost, plus elastic recovery time.
	MigrationCost   float64 `json:"migration_cost"`
	MeanUtilization float64 `json:"mean_utilization"`
	DeferredTokens  float64 `json:"deferred_tokens"`
}

// metricsOf folds one campaign report into the accumulator.
func (m *Metrics) add(rep *campaign.Report, replanCost float64) {
	s := rep.Summary
	m.TokensPerSec += s.TokensPerSec
	m.P99IterTime += s.P99IterTime
	m.Replans += float64(s.Replans)
	m.RecoverySeconds += s.RecoverySeconds
	m.MigrationCost += float64(s.Replans)*replanCost + s.RecoverySeconds
	m.MeanUtilization += s.MeanUtilization
	m.DeferredTokens += float64(s.DeferredTokens)
}

func (m *Metrics) scale(n float64) {
	m.TokensPerSec /= n
	m.P99IterTime /= n
	m.Replans /= n
	m.RecoverySeconds /= n
	m.MigrationCost /= n
	m.MeanUtilization /= n
	m.DeferredTokens /= n
}

// Fitness is a candidate's scored breakdown: each component is the
// candidate-vs-baseline improvement ratio (1 = parity, higher better),
// clamped to [0, componentCap] so a near-zero baseline denominator
// cannot dominate the objective. Total is the weight-normalized sum, so
// the baseline itself scores exactly 1.
type Fitness struct {
	Goodput     float64 `json:"goodput"`
	P99         float64 `json:"p99"`
	Migration   float64 `json:"migration"`
	Utilization float64 `json:"utilization"`
	Total       float64 `json:"total"`
}

const (
	// componentCap bounds each improvement ratio.
	componentCap = 5
	// costEps regularizes the migration ratio when either bill is ~0.
	costEps = 1e-6
)

// clampRatio computes num/den clamped into [0, componentCap]; a zero
// denominator with a zero numerator reads as parity.
func clampRatio(numer, denom float64) float64 {
	if denom <= 0 {
		if numer <= 0 {
			return 1
		}
		return componentCap
	}
	r := numer / denom
	if r > componentCap {
		return componentCap
	}
	if r < 0 {
		return 0
	}
	return r
}

// score rates candidate metrics against the baseline under normalized
// weights. Higher-is-better components divide candidate by baseline;
// lower-is-better components invert.
func score(cand, base Metrics, w Weights) Fitness {
	f := Fitness{
		Goodput:     clampRatio(cand.TokensPerSec, base.TokensPerSec),
		P99:         clampRatio(base.P99IterTime, cand.P99IterTime),
		Migration:   clampRatio(base.MigrationCost+costEps, cand.MigrationCost+costEps),
		Utilization: clampRatio(cand.MeanUtilization, base.MeanUtilization),
	}
	f.Total = w.Goodput*f.Goodput + w.P99*f.P99 + w.Migration*f.Migration + w.Utilization*f.Utilization
	return f
}
