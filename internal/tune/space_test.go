package tune

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSpaceDefault(t *testing.T) {
	sp, err := ParseSpace("")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Grammar != DefaultSpaceGrammar {
		t.Fatalf("default grammar = %q, want %q", sp.Grammar, DefaultSpaceGrammar)
	}
	if !reflect.DeepEqual(sp.Policies, []string{"threshold"}) {
		t.Fatalf("default policies = %v", sp.Policies)
	}
	if sp.Threshold.Lo != 1.05 || sp.Threshold.Hi != 1.6 {
		t.Fatalf("default threshold range = %+v", sp.Threshold)
	}
}

func TestParseSpaceForms(t *testing.T) {
	sp, err := ParseSpace("policy=threshold|periodic,threshold=1.1|1.3|1.5,every=2:20,replan-cost=0.005:0.08,capacity=1.25,autoscale=on|off,up-util=0.9:0.98,down-util=0.6|0.8,cooldown=2:10,step=1:2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp.Policies, []string{"threshold", "periodic"}) {
		t.Fatalf("policies = %v", sp.Policies)
	}
	if !reflect.DeepEqual(sp.Threshold.Set, []float64{1.1, 1.3, 1.5}) {
		t.Fatalf("threshold set = %v", sp.Threshold.Set)
	}
	if sp.Every.Lo != 2 || sp.Every.Hi != 20 {
		t.Fatalf("every = %+v", sp.Every)
	}
	if sp.Capacity.Lo != 1.25 || sp.Capacity.Hi != 1.25 {
		t.Fatalf("capacity = %+v", sp.Capacity)
	}
	if !reflect.DeepEqual(sp.Autoscale, []bool{true, false}) {
		t.Fatalf("autoscale = %v", sp.Autoscale)
	}
	if !reflect.DeepEqual(sp.DownUtil.Set, []float64{0.6, 0.8}) {
		t.Fatalf("down-util = %+v", sp.DownUtil)
	}
}

func TestParseSpaceRejects(t *testing.T) {
	cases := []string{
		"threshold",              // not key=value
		"threshold=",             // empty value
		"bogus=1",                // unknown key
		"policy=sometimes",       // unknown policy
		"threshold=1.6:1.05",     // inverted range
		"threshold=0.5",          // below floor
		"threshold=abc",          // not a number
		"every=1.5",              // non-integer int dimension
		"replan-cost=-0.01",      // negative cost
		"up-util=1.2",            // above ceiling
		"autoscale=maybe",        // unknown state
		"cooldown=0",             // below floor
		"threshold=1.1:1.2:1.3",  // malformed range tail
		"replan-cost=1|x",        // bad set element
	}
	for _, s := range cases {
		if _, err := ParseSpace(s); err == nil {
			t.Errorf("ParseSpace(%q) accepted invalid grammar", s)
		}
	}
}

func TestParamsKeyCanonicalizes(t *testing.T) {
	// Fields the selected policy ignores must not split keys.
	a := Params{Policy: "always", Threshold: 1.4, Every: 7}
	b := Params{Policy: "always"}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := Params{Policy: "threshold", Threshold: 1.4, UpUtil: 0.9, Cooldown: 3}
	d := Params{Policy: "threshold", Threshold: 1.4}
	if c.Key() != d.Key() {
		t.Fatalf("autoscaler gains leaked into key with autoscale off: %q vs %q", c.Key(), d.Key())
	}
	e := Params{Policy: "threshold", Threshold: 1.4, Autoscale: true, UpUtil: 0.9}
	if e.Key() == d.Key() {
		t.Fatal("autoscale=on did not change the key")
	}
}

func TestParamsFlagsPasteable(t *testing.T) {
	p := Params{Policy: "threshold", Threshold: 1.45, ReplanCost: 0.03,
		Capacity: 1.5, Autoscale: true, UpUtil: 0.95, DownUtil: 0.9, Cooldown: 3, Step: 1}
	flags := p.Flags()
	for _, want := range []string{
		"-policy threshold", "-threshold 1.45", "-replan-cost 0.03",
		"-capacity 1.5", "-autoscale up-util=0.95,down-util=0.9,cooldown=3,step=1",
	} {
		if !strings.Contains(flags, want) {
			t.Errorf("flags %q missing %q", flags, want)
		}
	}
}

func TestGridSeedsDedupAndBudget(t *testing.T) {
	sp, err := ParseSpace("policy=always|threshold,threshold=1.1:1.5")
	if err != nil {
		t.Fatal(err)
	}
	seeds := gridSeeds(sp, 100)
	// policy=always collapses every threshold value into one key, so the
	// 2×3 grid dedups to 4 points: always, and threshold at {1.1,1.3,1.5}.
	if len(seeds) != 4 {
		t.Fatalf("got %d grid seeds, want 4: %+v", len(seeds), seeds)
	}
	seen := map[string]bool{}
	for _, p := range seeds {
		k := p.Key()
		if seen[k] {
			t.Fatalf("duplicate grid seed %q", k)
		}
		seen[k] = true
	}
	// A budget below the grid size truncates deterministically.
	small := gridSeeds(sp, 3)
	if len(small) > 3 {
		t.Fatalf("budget 3 produced %d seeds", len(small))
	}
}

func FuzzParseSpace(f *testing.F) {
	f.Add("")
	f.Add(DefaultSpaceGrammar)
	f.Add("policy=always|never|threshold|periodic,threshold=1.05:1.6,every=2|8,replan-cost=0.001:0.1")
	f.Add("autoscale=on,up-util=0.9:0.98,down-util=0.8,cooldown=2:6,step=1")
	f.Add("threshold=1.1|1.2|1.3,capacity=0.5:2")
	f.Add("policy=,=,=x,a=b=c")
	f.Add("threshold=1e300:1e300,replan-cost=0x1p-3")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpace(s)
		if err != nil {
			return
		}
		// Any accepted space must seed a grid without panicking, every
		// seed must carry a stable identity, and parsing must be
		// deterministic.
		for _, p := range gridSeeds(sp, 32) {
			if p.Key() != p.canonical().Key() {
				t.Fatalf("non-canonical grid seed %+v", p)
			}
		}
		sp2, err2 := ParseSpace(s)
		if err2 != nil || !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("ParseSpace not deterministic for %q", s)
		}
	})
}
