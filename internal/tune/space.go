// Package tune is the closed-loop policy optimizer: it searches a
// declared parameter space — replan policy and threshold, replan cost,
// admission capacity, autoscaler gains — for the configuration that
// maximizes a multi-objective fitness over full campaign runs. The
// search is grid seeding plus a small mutation/selection evolutionary
// loop; every candidate evaluation is a pure function of (Params, seed),
// generations fan through runner.ForEach, and selection breaks ties
// deterministically, so the winner is bit-identical at any worker count.
package tune

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"zeppelin/internal/campaign"
)

// Params is one point in the search space: the policy knobs a candidate
// campaign runs with. Zero values mean "leave the campaign default".
// Fields irrelevant to the selected policy are canonicalized to zero
// (a periodic cadence under a threshold policy, autoscaler gains with
// the autoscaler off) so equivalent points share one Key.
type Params struct {
	// Policy is the replan controller ("always", "never", "threshold",
	// "periodic"); empty leaves the campaign default (threshold).
	Policy string `json:"policy,omitempty"`
	// Threshold is the threshold policy's replan ratio (zero = default).
	Threshold float64 `json:"threshold,omitempty"`
	// Every is the periodic policy's cadence (zero = default).
	Every int `json:"every,omitempty"`
	// ReplanCost is the per-replan charge in seconds (zero = default).
	ReplanCost float64 `json:"replan_cost,omitempty"`
	// Capacity is the admission CapacityFactor (zero = default).
	Capacity float64 `json:"capacity,omitempty"`
	// Autoscale enables the campaign autoscaler with the gains below.
	Autoscale bool `json:"autoscale,omitempty"`
	// UpUtil, DownUtil, Cooldown, Step are the autoscaler gains
	// (zero = the autoscaler's own defaults).
	UpUtil   float64 `json:"up_util,omitempty"`
	DownUtil float64 `json:"down_util,omitempty"`
	Cooldown int     `json:"cooldown,omitempty"`
	Step     int     `json:"step,omitempty"`
}

// canonical zeroes fields the selected policy ignores, so two points
// that run identical campaigns compare equal by Key.
func (p Params) canonical() Params {
	if p.Policy != "threshold" && p.Policy != "" {
		p.Threshold = 0
	}
	if p.Policy != "periodic" {
		p.Every = 0
	}
	if !p.Autoscale {
		p.UpUtil, p.DownUtil, p.Cooldown, p.Step = 0, 0, 0, 0
	}
	return p
}

// num formats a float the shortest way that round-trips — the stable
// textual form Key and Flags share.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Key is the canonical textual identity of the point: a fixed field
// order with stable number formatting. Keys order deterministically, so
// they both dedup the search and break fitness ties.
func (p Params) Key() string {
	p = p.canonical()
	parts := []string{"policy=" + orDefault(p.Policy, "threshold")}
	if p.Threshold != 0 {
		parts = append(parts, "threshold="+num(p.Threshold))
	}
	if p.Every != 0 {
		parts = append(parts, "every="+strconv.Itoa(p.Every))
	}
	if p.ReplanCost != 0 {
		parts = append(parts, "replan-cost="+num(p.ReplanCost))
	}
	if p.Capacity != 0 {
		parts = append(parts, "capacity="+num(p.Capacity))
	}
	if p.Autoscale {
		parts = append(parts, "autoscale=on")
		if p.UpUtil != 0 {
			parts = append(parts, "up-util="+num(p.UpUtil))
		}
		if p.DownUtil != 0 {
			parts = append(parts, "down-util="+num(p.DownUtil))
		}
		if p.Cooldown != 0 {
			parts = append(parts, "cooldown="+strconv.Itoa(p.Cooldown))
		}
		if p.Step != 0 {
			parts = append(parts, "step="+strconv.Itoa(p.Step))
		}
	}
	return strings.Join(parts, ",")
}

// Flags renders the point as a ready-to-paste `zeppelin campaign` flag
// set reproducing the candidate's configuration.
func (p Params) Flags() string {
	p = p.canonical()
	parts := []string{"-policy " + orDefault(p.Policy, "threshold")}
	if p.Threshold != 0 {
		parts = append(parts, "-threshold "+num(p.Threshold))
	}
	if p.Every != 0 {
		parts = append(parts, "-every "+strconv.Itoa(p.Every))
	}
	if p.ReplanCost != 0 {
		parts = append(parts, "-replan-cost "+num(p.ReplanCost))
	}
	if p.Capacity != 0 {
		parts = append(parts, "-capacity "+num(p.Capacity))
	}
	if p.Autoscale {
		as := []string{}
		if p.UpUtil != 0 {
			as = append(as, "up-util="+num(p.UpUtil))
		}
		if p.DownUtil != 0 {
			as = append(as, "down-util="+num(p.DownUtil))
		}
		if p.Cooldown != 0 {
			as = append(as, "cooldown="+strconv.Itoa(p.Cooldown))
		}
		if p.Step != 0 {
			as = append(as, "step="+strconv.Itoa(p.Step))
		}
		if len(as) == 0 {
			parts = append(parts, "-autoscale on")
		} else {
			parts = append(parts, "-autoscale "+strings.Join(as, ","))
		}
	}
	return strings.Join(parts, " ")
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// apply overlays the point onto a base campaign configuration.
func (p Params) apply(cfg campaign.Config) (campaign.Config, error) {
	p = p.canonical()
	if p.Policy != "" || p.Threshold != 0 || p.Every != 0 {
		pol, err := campaign.PolicyByName(orDefault(p.Policy, "threshold"), p.Threshold, p.Every)
		if err != nil {
			return cfg, err
		}
		cfg.Policy = pol
	}
	if p.ReplanCost != 0 {
		cfg.ReplanCost = p.ReplanCost
	}
	if p.Capacity != 0 {
		cfg.Trainer.CapacityFactor = p.Capacity
	}
	if p.Autoscale {
		cfg.Autoscaler = &campaign.Autoscaler{
			UpUtil:   p.UpUtil,
			DownUtil: p.DownUtil,
			Cooldown: p.Cooldown,
			Step:     p.Step,
		}
	}
	return cfg, nil
}

// Range is one continuous search dimension: an explicit value Set, or an
// inclusive [Lo, Hi] interval (Lo == Hi pins the dimension). The zero
// Range leaves the dimension out of the search.
type Range struct {
	Lo, Hi float64   `json:"-"`
	Set    []float64 `json:"-"`
}

func (r Range) empty() bool { return len(r.Set) == 0 && r.Lo == 0 && r.Hi == 0 }

// values are the dimension's grid seeds: the Set as given, or the
// interval's endpoints and midpoint.
func (r Range) values() []float64 {
	switch {
	case len(r.Set) > 0:
		return r.Set
	case r.empty():
		return []float64{0}
	case r.Lo == r.Hi:
		return []float64{r.Lo}
	default:
		// The midpoint rounds to four decimals so keys stay readable.
		mid := math.Round((r.Lo+r.Hi)/2*1e4) / 1e4
		return []float64{r.Lo, mid, r.Hi}
	}
}

// clamp pulls a mutated value back inside the dimension.
func (r Range) clamp(v float64) float64 {
	if len(r.Set) > 0 || r.empty() {
		return v
	}
	if v < r.Lo {
		return r.Lo
	}
	if v > r.Hi {
		return r.Hi
	}
	return v
}

// IntRange is Range for integer dimensions.
type IntRange struct {
	Lo, Hi int   `json:"-"`
	Set    []int `json:"-"`
}

func (r IntRange) empty() bool { return len(r.Set) == 0 && r.Lo == 0 && r.Hi == 0 }

func (r IntRange) values() []int {
	switch {
	case len(r.Set) > 0:
		return r.Set
	case r.empty():
		return []int{0}
	case r.Lo == r.Hi:
		return []int{r.Lo}
	default:
		vals := []int{r.Lo, (r.Lo + r.Hi) / 2, r.Hi}
		out := vals[:1]
		for _, v := range vals[1:] {
			if v != out[len(out)-1] {
				out = append(out, v)
			}
		}
		return out
	}
}

func (r IntRange) clamp(v int) int {
	if len(r.Set) > 0 || r.empty() {
		return v
	}
	if v < r.Lo {
		return r.Lo
	}
	if v > r.Hi {
		return r.Hi
	}
	return v
}

// Space declares which dimensions the search sweeps and over what
// values. Unset dimensions stay at the campaign defaults.
type Space struct {
	// Grammar is the textual form the space was parsed from (informational).
	Grammar string `json:"grammar,omitempty"`
	// Policies are the replan controllers to consider.
	Policies []string `json:"policies,omitempty"`
	// Threshold, Every sweep the threshold ratio and periodic cadence.
	Threshold Range    `json:"-"`
	Every     IntRange `json:"-"`
	// ReplanCost and Capacity sweep the replan charge (seconds) and the
	// admission CapacityFactor.
	ReplanCost Range `json:"-"`
	Capacity   Range `json:"-"`
	// Autoscale lists the autoscaler on/off states to consider;
	// UpUtil/DownUtil/Cooldown/Step sweep its gains.
	Autoscale []bool   `json:"-"`
	UpUtil    Range    `json:"-"`
	DownUtil  Range    `json:"-"`
	Cooldown  IntRange `json:"-"`
	Step      IntRange `json:"-"`
}

// DefaultSpaceGrammar is the space `zeppelin tune` sweeps when none is
// declared: the threshold policy's replan ratio.
const DefaultSpaceGrammar = "policy=threshold,threshold=1.05:1.6"

// ParseSpace parses the space grammar: comma-separated key=value
// dimensions, where a value is `a|b|c` (explicit set), `lo:hi`
// (inclusive interval), or a single literal (pinned). Keys: policy,
// threshold, every, replan-cost, capacity, autoscale (on|off), up-util,
// down-util, cooldown, step. The empty string selects
// DefaultSpaceGrammar.
func ParseSpace(s string) (Space, error) {
	if strings.TrimSpace(s) == "" {
		s = DefaultSpaceGrammar
	}
	sp := Space{Grammar: s}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return sp, fmt.Errorf("tune: space dimension %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if val == "" {
			return sp, fmt.Errorf("tune: space dimension %q has an empty value", field)
		}
		var err error
		switch key {
		case "policy":
			sp.Policies, err = parsePolicies(val)
		case "threshold":
			sp.Threshold, err = parseRange(key, val, 1, 10)
		case "every":
			sp.Every, err = parseIntRange(key, val, 1, 10_000)
		case "replan-cost":
			sp.ReplanCost, err = parseRange(key, val, 1e-9, 3600)
		case "capacity":
			sp.Capacity, err = parseRange(key, val, 0.1, 100)
		case "autoscale":
			sp.Autoscale, err = parseAutoscaleStates(val)
		case "up-util":
			sp.UpUtil, err = parseRange(key, val, 1e-9, 1)
		case "down-util":
			sp.DownUtil, err = parseRange(key, val, 0, 1)
		case "cooldown":
			sp.Cooldown, err = parseIntRange(key, val, 1, 10_000)
		case "step":
			sp.Step, err = parseIntRange(key, val, 1, 10_000)
		default:
			err = fmt.Errorf("tune: unknown space dimension %q", key)
		}
		if err != nil {
			return sp, err
		}
	}
	return sp, nil
}

func parsePolicies(val string) ([]string, error) {
	var out []string
	for _, p := range strings.Split(val, "|") {
		p = strings.TrimSpace(p)
		switch p {
		case "always", "never", "threshold", "periodic":
			out = append(out, p)
		default:
			return nil, fmt.Errorf("tune: unknown policy %q (want always|never|threshold|periodic)", p)
		}
	}
	return dedupStrings(out), nil
}

func parseAutoscaleStates(val string) ([]bool, error) {
	var out []bool
	seen := map[bool]bool{}
	for _, p := range strings.Split(val, "|") {
		var b bool
		switch strings.TrimSpace(p) {
		case "on", "true":
			b = true
		case "off", "false":
			b = false
		default:
			return nil, fmt.Errorf("tune: autoscale state %q (want on|off)", p)
		}
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out, nil
}

func parseRange(key, val string, lo, hi float64) (Range, error) {
	check := func(v float64) error {
		if v < lo || v > hi {
			return fmt.Errorf("tune: %s value %g outside [%g, %g]", key, v, lo, hi)
		}
		return nil
	}
	if strings.Contains(val, "|") {
		var r Range
		for _, p := range strings.Split(val, "|") {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return r, fmt.Errorf("tune: %s value %q: %v", key, p, err)
			}
			if err := check(v); err != nil {
				return r, err
			}
			r.Set = append(r.Set, v)
		}
		sort.Float64s(r.Set)
		r.Set = dedupFloats(r.Set)
		return r, nil
	}
	if a, b, ok := strings.Cut(val, ":"); ok {
		l, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
		if err != nil {
			return Range{}, fmt.Errorf("tune: %s lower bound %q: %v", key, a, err)
		}
		h, err := strconv.ParseFloat(strings.TrimSpace(b), 64)
		if err != nil {
			return Range{}, fmt.Errorf("tune: %s upper bound %q: %v", key, b, err)
		}
		if l > h {
			return Range{}, fmt.Errorf("tune: %s range %g:%g is inverted", key, l, h)
		}
		if err := check(l); err != nil {
			return Range{}, err
		}
		if err := check(h); err != nil {
			return Range{}, err
		}
		return Range{Lo: l, Hi: h}, nil
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return Range{}, fmt.Errorf("tune: %s value %q: %v", key, val, err)
	}
	if err := check(v); err != nil {
		return Range{}, err
	}
	return Range{Lo: v, Hi: v}, nil
}

func parseIntRange(key, val string, lo, hi int) (IntRange, error) {
	r, err := parseRange(key, val, float64(lo), float64(hi))
	if err != nil {
		return IntRange{}, err
	}
	toInt := func(v float64) (int, error) {
		if v != float64(int(v)) {
			return 0, fmt.Errorf("tune: %s value %g is not an integer", key, v)
		}
		return int(v), nil
	}
	var ir IntRange
	for _, v := range r.Set {
		n, err := toInt(v)
		if err != nil {
			return ir, err
		}
		ir.Set = append(ir.Set, n)
	}
	if len(ir.Set) > 0 {
		return ir, nil
	}
	if ir.Lo, err = toInt(r.Lo); err != nil {
		return ir, err
	}
	if ir.Hi, err = toInt(r.Hi); err != nil {
		return ir, err
	}
	return ir, nil
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func dedupFloats(in []float64) []float64 {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// gridSeeds enumerates the space's cartesian grid — each continuous
// dimension contributes its endpoints and midpoint, each discrete one
// its values — canonicalized, deduplicated, and evenly down-sampled to
// at most budget points (mixed-radix decoding keeps the sample spread
// across the whole grid without materializing it).
func gridSeeds(sp Space, budget int) []Params {
	policies := sp.Policies
	if len(policies) == 0 {
		policies = []string{""}
	}
	autoscale := sp.Autoscale
	if len(autoscale) == 0 {
		autoscale = []bool{false}
	}
	thresholds := sp.Threshold.values()
	everies := sp.Every.values()
	costs := sp.ReplanCost.values()
	caps := sp.Capacity.values()
	ups := sp.UpUtil.values()
	downs := sp.DownUtil.values()
	cools := sp.Cooldown.values()
	steps := sp.Step.values()

	sizes := []int{len(policies), len(thresholds), len(everies), len(costs),
		len(caps), len(autoscale), len(ups), len(downs), len(cools), len(steps)}
	total := 1
	for _, n := range sizes {
		total *= n
	}
	m := total
	if budget > 0 && m > budget {
		m = budget
	}
	seen := map[string]bool{}
	out := make([]Params, 0, m)
	for i := 0; i < m; i++ {
		idx := i * total / m
		// Mixed-radix decode, last dimension fastest.
		coord := make([]int, len(sizes))
		for d := len(sizes) - 1; d >= 0; d-- {
			coord[d] = idx % sizes[d]
			idx /= sizes[d]
		}
		p := Params{
			Policy:     policies[coord[0]],
			Threshold:  thresholds[coord[1]],
			Every:      everies[coord[2]],
			ReplanCost: costs[coord[3]],
			Capacity:   caps[coord[4]],
			Autoscale:  autoscale[coord[5]],
			UpUtil:     ups[coord[6]],
			DownUtil:   downs[coord[7]],
			Cooldown:   cools[coord[8]],
			Step:       steps[coord[9]],
		}.canonical()
		if k := p.Key(); !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}
