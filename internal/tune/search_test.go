package tune

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"zeppelin/internal/experiments"
)

// driftOptions is the fig13 drift scenario at the horizon the CI smoke
// and the acceptance pin share.
func driftOptions(t *testing.T, workers int) Options {
	t.Helper()
	sp, err := ParseSpace("")
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Base:    experiments.TuneScenario(60),
		Space:   sp,
		Budget:  12,
		Iters:   60,
		Workers: workers,
	}
}

// TestSearchBeatsDefaultOnDrift pins the acceptance criterion: on the
// fig13 drift scenario, the default space finds a configuration whose
// fitness strictly beats the hand-tuned Threshold{} default.
func TestSearchBeatsDefaultOnDrift(t *testing.T) {
	rep, err := Search(context.Background(), driftOptions(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.Fitness.Total != 1 {
		t.Fatalf("baseline fitness = %v, want exactly 1", rep.Baseline.Fitness.Total)
	}
	if !rep.Improved {
		t.Fatalf("search did not improve on the default: winner %q scored %v",
			rep.Winner.Key, rep.Winner.Fitness.Total)
	}
	if rep.Winner.Fitness.Total <= rep.Baseline.Fitness.Total {
		t.Fatalf("winner %q fitness %v does not strictly beat baseline %v",
			rep.Winner.Key, rep.Winner.Fitness.Total, rep.Baseline.Fitness.Total)
	}
	if rep.Winner.Flags == "" {
		t.Fatal("winner has no ready-to-paste flag set")
	}
	if rep.Evaluated == 0 || rep.Evaluated > rep.Budget {
		t.Fatalf("evaluated %d candidates against budget %d", rep.Evaluated, rep.Budget)
	}
}

// TestSearchSerialParallelIdentical asserts the tentpole invariant: the
// whole report — winner, per-candidate fitness breakdowns, evaluation
// order — is bit-identical across worker pools {1, 4, GOMAXPROCS}.
func TestSearchSerialParallelIdentical(t *testing.T) {
	pools := []int{1, 4, runtime.GOMAXPROCS(0)}
	raws := make([][]byte, len(pools))
	for i, workers := range pools {
		rep, err := Search(context.Background(), driftOptions(t, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	for i := 1; i < len(pools); i++ {
		if string(raws[i]) != string(raws[0]) {
			t.Fatalf("reports differ between worker pools %d and %d", pools[0], pools[i])
		}
	}
}

func TestSearchAutoscaleSpace(t *testing.T) {
	sp, err := ParseSpace("autoscale=on|off,down-util=0.8:0.9,cooldown=2:6")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Search(context.Background(), Options{
		Base:    experiments.TuneScenario(40),
		Space:   sp,
		Budget:  8,
		Iters:   40,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawAutoscale := false
	for _, c := range rep.Candidates {
		if c.Invalid != "" {
			t.Fatalf("candidate %q invalid: %s", c.Key, c.Invalid)
		}
		if c.Params.Autoscale {
			sawAutoscale = true
		}
	}
	if !sawAutoscale {
		t.Fatal("autoscale dimension never evaluated an autoscaled candidate")
	}
}

func TestSearchInvalidCandidatesCannotWin(t *testing.T) {
	// down-util pinned above up-util: every autoscaled point is invalid,
	// so the off points must carry the search.
	sp, err := ParseSpace("autoscale=on|off,up-util=0.7,down-util=0.9,threshold=1.2:1.5")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Search(context.Background(), Options{
		Base:    experiments.TuneScenario(20),
		Space:   sp,
		Budget:  6,
		Iters:   20,
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawInvalid := false
	for _, c := range rep.Candidates {
		if c.Invalid != "" {
			sawInvalid = true
			if c.Fitness.Total != 0 {
				t.Fatalf("invalid candidate %q scored %v", c.Key, c.Fitness.Total)
			}
		}
	}
	if !sawInvalid {
		t.Fatal("space produced no invalid candidates; the guard was not exercised")
	}
	if rep.Winner.Invalid != "" {
		t.Fatalf("invalid candidate %q won", rep.Winner.Key)
	}
}

func TestSearchOptionValidation(t *testing.T) {
	if _, err := Search(context.Background(), Options{}); err == nil {
		t.Error("Search accepted a missing scenario")
	}
	opts := driftOptions(t, 1)
	opts.Budget = -1
	if _, err := Search(context.Background(), opts); err == nil {
		t.Error("Search accepted a negative budget")
	}
	opts = driftOptions(t, 1)
	opts.Weights = Weights{Goodput: -1}
	if _, err := Search(context.Background(), opts); err == nil {
		t.Error("Search accepted negative weights")
	}
}

func TestWeightsNormalize(t *testing.T) {
	w, err := Weights{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if w != DefaultWeights {
		t.Fatalf("zero weights normalized to %+v, want defaults", w)
	}
	w, err = Weights{Goodput: 2, P99: 1, Migration: 1, Utilization: 0}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sum := w.Goodput + w.P99 + w.Migration + w.Utilization; sum < 0.999 || sum > 1.001 {
		t.Fatalf("normalized weights sum to %v", sum)
	}
	if w.Goodput != 0.5 {
		t.Fatalf("goodput weight = %v, want 0.5", w.Goodput)
	}
}

func TestScoreBaselineIsExactlyOne(t *testing.T) {
	m := Metrics{TokensPerSec: 100, P99IterTime: 2, MigrationCost: 0.5, MeanUtilization: 0.9}
	f := score(m, m, DefaultWeights)
	if f.Total != 1 {
		t.Fatalf("self-score = %v, want exactly 1", f.Total)
	}
	// Zero-cost corner: both bills zero reads as parity, not a blowup.
	z := Metrics{TokensPerSec: 100, P99IterTime: 2, MeanUtilization: 0.9}
	f = score(z, z, DefaultWeights)
	if f.Total != 1 {
		t.Fatalf("zero-cost self-score = %v, want exactly 1", f.Total)
	}
	// A vanishing candidate bill against a real baseline bill clamps at
	// the component cap instead of diverging.
	better := m
	better.MigrationCost = 0
	f = score(better, m, DefaultWeights)
	if f.Migration != componentCap {
		t.Fatalf("migration component = %v, want cap %v", f.Migration, componentCap)
	}
}
