package tune

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"zeppelin/internal/campaign"
	"zeppelin/internal/runner"
)

// Options configure one search.
type Options struct {
	// Base builds the scenario a candidate is evaluated on: a pure
	// factory returning an independent campaign configuration for the
	// given seed (fresh Method instance included — configurations are
	// evaluated concurrently). The candidate's parameters are overlaid
	// on the returned configuration. Required.
	Base func(seed int64) campaign.Config
	// Space declares the dimensions to sweep.
	Space Space
	// Budget is the number of candidate evaluations (the baseline is
	// free); zero selects DefaultBudget.
	Budget int
	// Weights are the fitness weights (normalized; zero selects
	// DefaultWeights).
	Weights Weights
	// Seeds is how many seeds each candidate averages over (default 1).
	Seeds int
	// Iters, when > 0, overrides the scenario's campaign horizon.
	Iters int
	// Workers bounds the evaluation pool (runner.ForEach semantics).
	Workers int
	// SearchSeed seeds the mutation stream; zero selects 1. Mutation is
	// serial between generations, so the same seed gives the same
	// candidate sequence at any worker count.
	SearchSeed int64
}

// DefaultBudget is the candidate-evaluation budget when none is given.
const DefaultBudget = 24

// Candidate is one evaluated point with its scored breakdown.
type Candidate struct {
	// Key is the point's canonical identity; Flags is the equivalent
	// ready-to-paste `zeppelin campaign` flag set.
	Key    string `json:"key"`
	Params Params `json:"params"`
	Flags  string `json:"flags"`
	// Invalid carries the validation error of a point whose overlay the
	// campaign rejected (it scores zero and cannot win); empty for
	// evaluated candidates.
	Invalid string  `json:"invalid,omitempty"`
	Metrics Metrics `json:"metrics"`
	Fitness Fitness `json:"fitness"`
}

// Report is the full search artifact.
type Report struct {
	// Space echoes the swept grammar; Budget/Seeds/Iters/Weights echo
	// the resolved search parameters.
	Space   string  `json:"space"`
	Budget  int     `json:"budget"`
	Seeds   int     `json:"seeds"`
	Iters   int     `json:"iters,omitempty"`
	Weights Weights `json:"weights"`
	// Evaluated counts candidate evaluations actually run (dedup can
	// leave it short of Budget).
	Evaluated int `json:"evaluated"`
	// Baseline is the hand-tuned default the fitness normalizes against
	// (its Total is exactly 1); Winner is the best candidate; Improved
	// reports whether the winner strictly beats the baseline.
	Baseline Candidate `json:"baseline"`
	Winner   Candidate `json:"winner"`
	Improved bool      `json:"improved"`
	// Candidates lists every evaluation in deterministic order.
	Candidates []Candidate `json:"candidates"`
}

// Evolutionary-loop shape: eliteCount parents survive each generation
// and childrenPerGen mutations are attempted from them.
const (
	eliteCount     = 4
	childrenPerGen = 8
)

// Search runs the closed loop: evaluate the baseline, seed the grid,
// then alternate mutation/selection generations until the budget is
// spent. Candidate evaluations are pure functions of (Params, seed) and
// generations fan through runner.ForEach with positional results, so
// the report — winner included — is bit-identical at any worker count.
func Search(ctx context.Context, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Base == nil {
		return nil, fmt.Errorf("tune: no base scenario")
	}
	if opts.Budget == 0 {
		opts.Budget = DefaultBudget
	}
	if opts.Budget < 1 {
		return nil, fmt.Errorf("tune: budget must be >= 1, got %d", opts.Budget)
	}
	if opts.Seeds <= 0 {
		opts.Seeds = 1
	}
	if opts.SearchSeed == 0 {
		opts.SearchSeed = 1
	}
	weights, err := opts.Weights.normalize()
	if err != nil {
		return nil, err
	}

	base, err := evalOne(ctx, opts, Params{})
	if err != nil {
		return nil, err
	}
	if base.Invalid != "" {
		return nil, fmt.Errorf("tune: baseline scenario invalid: %s", base.Invalid)
	}
	base.Fitness = score(base.Metrics, base.Metrics, weights)

	seen := map[string]bool{base.Key: true}
	var all []Candidate
	rng := rand.New(rand.NewSource(opts.SearchSeed))
	gen := filterSeen(gridSeeds(opts.Space, opts.Budget), seen)
	remaining := opts.Budget
	for len(gen) > 0 && remaining > 0 {
		if len(gen) > remaining {
			gen = gen[:remaining]
		}
		results := make([]Candidate, len(gen))
		ferr := runner.ForEach(ctx, opts.Workers, len(gen), func(i int) error {
			c, err := evalOne(ctx, opts, gen[i])
			if err != nil {
				return err
			}
			results[i] = c
			return nil
		})
		if ferr != nil {
			return nil, ferr
		}
		for i := range results {
			if results[i].Invalid == "" {
				results[i].Fitness = score(results[i].Metrics, base.Metrics, weights)
			}
		}
		all = append(all, results...)
		remaining -= len(gen)
		if remaining <= 0 {
			break
		}
		gen = nextGeneration(rng, opts.Space, all, seen, remaining)
	}

	rep := &Report{
		Space:      opts.Space.Grammar,
		Budget:     opts.Budget,
		Seeds:      opts.Seeds,
		Iters:      opts.Iters,
		Weights:    weights,
		Evaluated:  len(all),
		Baseline:   base,
		Candidates: all,
	}
	if w, ok := best(all); ok {
		rep.Winner = w
		rep.Improved = w.Fitness.Total > base.Fitness.Total
	} else {
		// Degenerate space: nothing but the baseline to evaluate.
		rep.Winner = base
	}
	return rep, nil
}

// evalOne scores one point: Seeds campaigns averaged into Metrics. An
// overlay the campaign's validation rejects marks the candidate Invalid
// instead of failing the search; evaluation errors propagate.
func evalOne(ctx context.Context, opts Options, p Params) (Candidate, error) {
	p = p.canonical()
	c := Candidate{Key: p.Key(), Params: p, Flags: p.Flags()}
	var m Metrics
	for s := 0; s < opts.Seeds; s++ {
		cfg := opts.Base(int64(s))
		cfg.Decisions = nil
		cfg.Flip = nil
		cfg, err := p.apply(cfg)
		if err != nil {
			c.Invalid = err.Error()
			return c, nil
		}
		if opts.Iters > 0 {
			cfg.Iters = opts.Iters
		}
		resolved := cfg
		if err := resolved.Validate(); err != nil {
			c.Invalid = err.Error()
			return c, nil
		}
		rep, err := campaign.Run(ctx, cfg)
		if err != nil {
			return c, err
		}
		m.add(rep, resolved.ReplanCost)
	}
	m.scale(float64(opts.Seeds))
	c.Metrics = m
	return c, nil
}

// best returns the winning candidate: highest fitness, ties broken by
// the lexically smaller Key. Invalid candidates cannot win.
func best(all []Candidate) (Candidate, bool) {
	var w Candidate
	found := false
	for _, c := range all {
		if c.Invalid != "" {
			continue
		}
		if !found || c.Fitness.Total > w.Fitness.Total ||
			(c.Fitness.Total == w.Fitness.Total && c.Key < w.Key) {
			w = c
			found = true
		}
	}
	return w, found
}

// elites returns the top eliteCount valid candidates, fitness
// descending, ties by Key ascending.
func elites(all []Candidate) []Candidate {
	valid := make([]Candidate, 0, len(all))
	for _, c := range all {
		if c.Invalid == "" {
			valid = append(valid, c)
		}
	}
	sort.Slice(valid, func(i, j int) bool {
		if valid[i].Fitness.Total != valid[j].Fitness.Total {
			return valid[i].Fitness.Total > valid[j].Fitness.Total
		}
		return valid[i].Key < valid[j].Key
	})
	if len(valid) > eliteCount {
		valid = valid[:eliteCount]
	}
	return valid
}

// nextGeneration breeds up to want unseen children by mutating elites.
// It runs serially between ForEach generations, so the one sequential
// rng keeps the candidate sequence deterministic at any worker count.
func nextGeneration(rng *rand.Rand, sp Space, all []Candidate, seen map[string]bool, want int) []Params {
	parents := elites(all)
	if len(parents) == 0 {
		return nil
	}
	if want > childrenPerGen {
		want = childrenPerGen
	}
	muts := mutators(sp)
	if len(muts) == 0 {
		return nil
	}
	var out []Params
	for attempts := 0; len(out) < want && attempts < want*50; attempts++ {
		parent := parents[rng.Intn(len(parents))].Params
		child := muts[rng.Intn(len(muts))](rng, parent).canonical()
		if k := child.Key(); !seen[k] {
			seen[k] = true
			out = append(out, child)
		}
	}
	return out
}

// mutators returns one jitter function per swept dimension.
func mutators(sp Space) []func(*rand.Rand, Params) Params {
	var muts []func(*rand.Rand, Params) Params
	if len(sp.Policies) > 1 {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.Policy = sp.Policies[rng.Intn(len(sp.Policies))]
			return p
		})
	}
	if !sp.Threshold.empty() {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.Threshold = jitter(rng, sp.Threshold, p.Threshold)
			return p
		})
	}
	if !sp.Every.empty() {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.Every = jitterInt(rng, sp.Every, p.Every)
			return p
		})
	}
	if !sp.ReplanCost.empty() {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.ReplanCost = jitter(rng, sp.ReplanCost, p.ReplanCost)
			return p
		})
	}
	if !sp.Capacity.empty() {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.Capacity = jitter(rng, sp.Capacity, p.Capacity)
			return p
		})
	}
	if len(sp.Autoscale) > 1 {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.Autoscale = !p.Autoscale
			return p
		})
	}
	if !sp.UpUtil.empty() {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.UpUtil = jitter(rng, sp.UpUtil, p.UpUtil)
			return p
		})
	}
	if !sp.DownUtil.empty() {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.DownUtil = jitter(rng, sp.DownUtil, p.DownUtil)
			return p
		})
	}
	if !sp.Cooldown.empty() {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.Cooldown = jitterInt(rng, sp.Cooldown, p.Cooldown)
			return p
		})
	}
	if !sp.Step.empty() {
		muts = append(muts, func(rng *rand.Rand, p Params) Params {
			p.Step = jitterInt(rng, sp.Step, p.Step)
			return p
		})
	}
	return muts
}

// jitter perturbs a continuous value inside its dimension: a random Set
// element for discrete dimensions, a ±15% multiplicative nudge clamped
// to the interval otherwise. Mutations round to four decimals so keys
// and flag sets stay readable; the clamp runs last so rounding cannot
// escape the interval.
func jitter(rng *rand.Rand, r Range, v float64) float64 {
	if len(r.Set) > 0 {
		return r.Set[rng.Intn(len(r.Set))]
	}
	if v == 0 {
		v = (r.Lo + r.Hi) / 2
	}
	v *= 0.85 + 0.3*rng.Float64()
	return r.clamp(math.Round(v*1e4) / 1e4)
}

// jitterInt perturbs an integer value: a random Set element, or a ±1
// step clamped to the interval.
func jitterInt(rng *rand.Rand, r IntRange, v int) int {
	if len(r.Set) > 0 {
		return r.Set[rng.Intn(len(r.Set))]
	}
	if v == 0 {
		v = (r.Lo + r.Hi) / 2
	}
	if rng.Intn(2) == 0 {
		return r.clamp(v - 1)
	}
	return r.clamp(v + 1)
}

func filterSeen(in []Params, seen map[string]bool) []Params {
	out := in[:0]
	for _, p := range in {
		if k := p.Key(); !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}
