// Package decision is the decision-tracing layer of the campaign
// engine: a typed record of every choice the online controllers make —
// which replan verdict the policy returned and against which projected
// imbalances, what admission control trimmed and why, which fast path
// the incremental planner took — together with the scored alternatives
// that were actually on the table when the choice was made.
//
// Records are produced inside the single-goroutine campaign loop in
// iteration order, so a trace is deterministic per (Config, seed): the
// same campaign run at any worker count serializes to byte-identical
// NDJSON. That determinism is what makes the records replayable — the
// counterfactual engine re-runs a recorded stream with exactly one
// decision flipped and diffs the outcome against the factual run.
package decision

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind classifies a decision site.
type Kind string

// The decision sites the campaign loop records.
const (
	// KindReplan is the replanning controller's verdict: re-run the
	// partitioner for the incoming batch, or stretch the stale skeleton.
	KindReplan Kind = "replan"
	// KindAdmission is the per-iteration capacity gate: an arrival that
	// exceeds placement capacity is trimmed and the excess deferred.
	// Recorded only when the gate actually trims — when everything fits
	// there was no choice to make.
	KindAdmission Kind = "admission"
	// KindPlacement is the incremental planner's fast-path outcome for
	// the iteration's plan: full solve, patched previous plan, local
	// cache hit, or shared-tier hit.
	KindPlacement Kind = "placement"
	// KindScale is the autoscaler's end-of-iteration verdict: grow,
	// shrink, or hold the active world for the next iteration, driven by
	// observed queue depth and utilization. Forced marks verdicts the
	// cooldown window overrode.
	KindScale Kind = "scale"
	// KindRoute is the serving router's placement verdict for a request
	// whose session already has a home rank: keep it home to reuse the
	// KV-cached prefix ("affinity") or spread it to the least-loaded rank
	// ("spread"). Recorded only for serve campaigns.
	KindRoute Kind = "route"
)

// Alternative is one scored option the decision site considered.
type Alternative struct {
	// Choice names the option ("replan", "reuse", "full", "cached", ...).
	Choice string `json:"choice"`
	// Score is the option's figure of merit at decision time: projected
	// max/mean imbalance for replan alternatives, token counts for
	// admission, cumulative win counts for placement fast paths.
	Score float64 `json:"score"`
	// Chosen marks the option the decision selected.
	Chosen bool `json:"chosen,omitempty"`
}

// Record is one decision with its full context: what was chosen, what
// else was considered, and the controller state that drove the choice.
// Field order is part of the NDJSON contract — logs are compared and
// grepped byte-wise, so new fields append rather than reorder.
type Record struct {
	// Iter is the campaign iteration the decision belongs to.
	Iter int `json:"iter"`
	// Kind classifies the decision site; Chosen names the winning
	// alternative. The two are adjacent so `"kind":"replan","chosen":"replan"`
	// is a stable grep key for replan executions in a log.
	Kind   Kind   `json:"kind"`
	Chosen string `json:"chosen"`
	// Forced marks decisions the controller had no say in: the first
	// iteration (no stale skeleton exists) and the iteration after an
	// elastic resize (the skeleton addresses ranks that no longer
	// exist). Forced decisions are not flippable.
	Forced bool `json:"forced,omitempty"`
	// Flipped marks the one decision a counterfactual replay overrode.
	Flipped bool `json:"flipped,omitempty"`
	// Policy and Threshold describe the replanning controller: the
	// policy name and, for threshold controllers, the ratio it fires at.
	Policy    string  `json:"policy,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// StaleImbalance and FreshImbalance are the projections the replan
	// verdict weighed: routing the batch through the stale skeleton vs
	// the best a fresh plan would achieve.
	StaleImbalance float64 `json:"stale_imbalance,omitempty"`
	FreshImbalance float64 `json:"fresh_imbalance,omitempty"`
	// SinceReplan counts iterations since the partitioner last ran.
	SinceReplan int `json:"since_replan,omitempty"`
	// PlanMode is the incremental planner's fast path for placement
	// records ("full", "patched", "cached", "shared").
	PlanMode string `json:"plan_mode,omitempty"`
	// Events and World snapshot the fault state the decision was made
	// under: the iteration's fault/recovery markers and the active
	// data-parallel world size (fault campaigns only).
	Events []string `json:"events,omitempty"`
	World  int      `json:"world,omitempty"`
	// Alternatives are the scored options considered, chosen included.
	Alternatives []Alternative `json:"alternatives,omitempty"`
}

// Trace accumulates a campaign's decision records in iteration order.
// The campaign loop appends from its single goroutine; snapshots and
// serialization may run concurrently (the zeppelind decisions route
// reads while a stream is running), so all methods are safe for
// concurrent use.
type Trace struct {
	mu      sync.Mutex
	records []Record
}

// Add appends one record.
func (t *Trace) Add(r Record) {
	t.mu.Lock()
	t.records = append(t.records, r)
	t.mu.Unlock()
}

// Len reports the number of records accumulated.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.records)
}

// Records snapshots the accumulated records (a copy; safe to hold).
func (t *Trace) Records() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Record(nil), t.records...)
}

// Reset drops all records; campaigns call it at stream start so a
// reused trace never mixes runs.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.records = t.records[:0]
	t.mu.Unlock()
}

// WriteNDJSON serializes the trace one compact JSON record per line —
// the structured decision-log format. Encoding is deterministic (fixed
// field order, no map iteration), so equal traces produce byte-equal
// logs at any worker count.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	for _, r := range t.Records() {
		if err := WriteRecordNDJSON(w, r); err != nil {
			return err
		}
	}
	return nil
}

// WriteRecordNDJSON writes one record as a compact JSON line.
func WriteRecordNDJSON(w io.Writer, r Record) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("decision: encode record: %w", err)
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// CountKind counts records of one kind; with chosen non-empty, only
// those whose winning alternative matches. CountKind(KindReplan,
// "replan") is the number of iterations whose partitioner actually ran
// — the cross-check the CI decision-log smoke asserts against the event
// stream's replan count.
func (t *Trace) CountKind(kind Kind, chosen string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, r := range t.records {
		if r.Kind == kind && (chosen == "" || r.Chosen == chosen) {
			n++
		}
	}
	return n
}
