package decision

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{
			Iter: 0, Kind: KindReplan, Chosen: "replan", Forced: true,
			Policy: "threshold(1.30)", Threshold: 1.3, FreshImbalance: 1.02,
			Alternatives: []Alternative{
				{Choice: "replan", Score: 1.02, Chosen: true},
				{Choice: "reuse", Score: 1.02},
			},
		},
		{
			Iter: 1, Kind: KindAdmission, Chosen: "trim",
			Alternatives: []Alternative{
				{Choice: "admit-all", Score: 70000},
				{Choice: "trim", Score: 65536, Chosen: true},
			},
		},
		{
			Iter: 1, Kind: KindPlacement, Chosen: "cached", PlanMode: "cached",
			Alternatives: []Alternative{
				{Choice: "cached", Score: 1, Chosen: true},
				{Choice: "full", Score: 1},
			},
		},
	}
}

// TestNDJSONDeterministic: the same records serialize to byte-identical
// NDJSON on every pass — the property decision-log diffing rests on.
func TestNDJSONDeterministic(t *testing.T) {
	tr := &Trace{}
	for _, r := range sampleRecords() {
		tr.Add(r)
	}
	var a, b bytes.Buffer
	if err := tr.WriteNDJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serializations of one trace differ")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d NDJSON lines, want 3", len(lines))
	}
	// The replan grep key the CI smoke relies on: kind and chosen are
	// adjacent fields in a stable order.
	if !strings.Contains(lines[0], `"kind":"replan","chosen":"replan"`) {
		t.Fatalf("replan line lost its grep key: %s", lines[0])
	}
	if !strings.Contains(lines[0], `"forced":true`) {
		t.Fatalf("forced marker missing: %s", lines[0])
	}
}

// TestCountKind: the replan-execution count filters on kind and chosen.
func TestCountKind(t *testing.T) {
	tr := &Trace{}
	for _, r := range sampleRecords() {
		tr.Add(r)
	}
	tr.Add(Record{Iter: 2, Kind: KindReplan, Chosen: "reuse"})
	if n := tr.CountKind(KindReplan, "replan"); n != 1 {
		t.Fatalf("replan executions = %d, want 1", n)
	}
	if n := tr.CountKind(KindReplan, ""); n != 2 {
		t.Fatalf("replan decisions = %d, want 2", n)
	}
	if n := tr.Len(); n != 4 {
		t.Fatalf("len = %d, want 4", n)
	}
}

// TestReset: a reused trace starts empty.
func TestReset(t *testing.T) {
	tr := &Trace{}
	tr.Add(Record{Iter: 0, Kind: KindReplan, Chosen: "replan"})
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset left records behind")
	}
}

// TestConcurrentReads: snapshots may race the producing loop — the
// zeppelind decisions route reads while the stream is running.
func TestConcurrentReads(t *testing.T) {
	tr := &Trace{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			tr.Add(Record{Iter: i, Kind: KindReplan, Chosen: "reuse"})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			recs := tr.Records()
			for j := 1; j < len(recs); j++ {
				if recs[j].Iter < recs[j-1].Iter {
					t.Error("snapshot out of order")
					return
				}
			}
		}
	}()
	wg.Wait()
}
