package collective

import (
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/sim"
)

func fab(t *testing.T, spec cluster.Spec, nodes int) (*sim.Engine, *cluster.Fabric) {
	t.Helper()
	e := sim.NewEngine()
	return e, cluster.NewFabric(e, cluster.MustNew(spec, nodes))
}

func TestAllGatherSingleRankFree(t *testing.T) {
	one := cluster.Spec{
		Name: "one", GPUsPerNode: 1, NICsPerNode: 1, NICBandwidth: 1e9,
		IntraBandwidth: 1e9, GPUPeakFlops: 1, GPUMemory: 1,
	}
	e1 := sim.NewEngine()
	f1 := cluster.NewFabric(e1, cluster.MustNew(one, 1))
	AllGather(f1, Config{}, "ag", 1e9)
	mk, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 0 {
		t.Fatalf("single-rank all-gather should be free, got %v", mk)
	}
}

func TestAllGatherZeroBytesFree(t *testing.T) {
	e, f := fab(t, cluster.ClusterA, 2)
	AllGather(f, Config{}, "ag", 0)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 0 {
		t.Fatal("zero-byte collective should be free")
	}
}

func TestAllGatherUsesAllNICs(t *testing.T) {
	e, f := fab(t, cluster.ClusterA, 2)
	AllGather(f, Config{}, "ag", 1e8)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for nic := range f.NICSend {
		if f.NICSend[nic].BusyTime == 0 || f.NICRecv[nic].BusyTime == 0 {
			t.Fatalf("NIC %d idle during all-gather", nic)
		}
	}
}

func TestAllGatherBandwidthModel(t *testing.T) {
	e, f := fab(t, cluster.ClusterA, 2)
	per := 1e8
	AllGather(f, Config{Eff: 1.0}, "ag", per)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := per * 16
	// Cross-node share at full efficiency over 4 NICs per node.
	wantInter := total * 0.5 / (4 * f.C.NICBandwidth)
	wantIntra := total * 15 / 16 / 0.8 / f.C.IntraBandwidth
	want := wantInter
	if wantIntra > want {
		want = wantIntra
	}
	if mk < want*0.9 || mk > want*1.5 {
		t.Fatalf("all-gather time %v, expected ~%v", mk, want)
	}
}

func TestAllGatherEffSlowsDown(t *testing.T) {
	run := func(eff float64) float64 {
		e, f := fab(t, cluster.ClusterA, 2)
		AllGather(f, Config{Eff: eff}, "ag", 1e8)
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	if run(0.5) <= run(1.0) {
		t.Fatal("lower efficiency must slow the collective")
	}
}

func TestAllReduceIsTwoPhases(t *testing.T) {
	e, f := fab(t, cluster.ClusterA, 2)
	AllReduce(f, Config{}, "ar", 1e8)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	e2, f2 := fab(t, cluster.ClusterA, 2)
	AllGather(f2, Config{}, "ag", 1e8)
	mk2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk < 1.8*mk2 || mk > 2.2*mk2 {
		t.Fatalf("all-reduce %v should be ~2x all-gather %v", mk, mk2)
	}
}

func TestBroadcastReachesAllNodes(t *testing.T) {
	e, f := fab(t, cluster.ClusterA, 2)
	Broadcast(f, Config{}, "bc", 0, 1e8)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk <= 0 {
		t.Fatal("broadcast should take time")
	}
	// Root's NIC must carry the cross-node copy.
	if f.NICSend[f.C.NICOf(0)].BusyTime == 0 {
		t.Fatal("broadcast did not cross nodes")
	}
}

func TestBroadcastZeroFree(t *testing.T) {
	e, f := fab(t, cluster.ClusterA, 2)
	Broadcast(f, Config{}, "bc", 0, 0)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 0 {
		t.Fatal("zero-byte broadcast should be free")
	}
}

func TestAllToAllVSkipsDegenerate(t *testing.T) {
	e, f := fab(t, cluster.ClusterA, 1)
	AllToAllV(f, "a2a", []Transfer{
		{From: 0, To: 0, Bytes: 1e9}, // self
		{From: 1, To: 2, Bytes: 0},   // empty
	})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 0 {
		t.Fatal("degenerate transfers should be free")
	}
}

func TestAllToAllVParallelism(t *testing.T) {
	e, f := fab(t, cluster.ClusterA, 1)
	var ts []Transfer
	for i := 0; i < 4; i++ {
		ts = append(ts, Transfer{From: 2 * i, To: 2*i + 1, Bytes: f.C.IntraBandwidth / 10})
	}
	AllToAllV(f, "a2a", ts)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk > 0.11 {
		t.Fatalf("disjoint transfers should overlap: %v", mk)
	}
}

func TestChannelOverride(t *testing.T) {
	// Fewer channels concentrate traffic on fewer NICs.
	e, f := fab(t, cluster.ClusterA, 2)
	AllGather(f, Config{Channels: 1}, "ag", 1e8)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f.NICSend[1].BusyTime != 0 {
		t.Fatal("single-channel all-gather should use only NIC 0 per node")
	}
}
