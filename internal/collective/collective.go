// Package collective implements the communication collectives the paper's
// systems rely on (the NCCL layer): multi-channel ring all-gather,
// reduce-scatter, all-reduce, broadcast, and a dynamic-shape alltoallv —
// all emitted as task graphs on a cluster fabric so they contend for the
// same NVSwitch ports and NICs as everything else in the simulation.
//
// The multi-channel ring model mirrors how NCCL extracts a node's
// aggregate NIC bandwidth: the payload splits across channels, and each
// channel's ring crosses nodes through a different NIC. An efficiency
// factor derates achievable bus bandwidth, matching measured collective
// performance on RoCE fabrics (~45–65% of line rate).
package collective

import (
	"fmt"

	"zeppelin/internal/cluster"
	"zeppelin/internal/sim"
)

// DefaultEff is the default fraction of line rate a collective achieves.
const DefaultEff = 0.55

// Config tunes collective emission.
type Config struct {
	// Channels is the number of parallel rings; 0 means one per NIC.
	Channels int
	// Eff derates link bandwidth (0 < Eff <= 1); 0 means DefaultEff.
	Eff float64
}

func (c Config) channels(f *cluster.Fabric) int {
	if c.Channels > 0 {
		return c.Channels
	}
	return f.C.NICsPerNode
}

func (c Config) eff() float64 {
	if c.Eff > 0 && c.Eff <= 1 {
		return c.Eff
	}
	return DefaultEff
}

// AllGather emits an all-gather of bytesPerRank from every rank to every
// rank and returns the completion barrier. Modeled at the bandwidth
// level: each node's NICs carry the (N−1)/N cross-node share split over
// the channels, and every rank ingests the full remote volume over its
// NVSwitch port. Latency per channel hop is included via the fabric's
// link latencies.
func AllGather(f *cluster.Fabric, cfg Config, label string, bytesPerRank float64, deps ...*sim.Task) *sim.Task {
	c := f.C
	world := c.World()
	done := f.E.Barrier(label, 0)
	done.After(deps...)
	if world <= 1 || bytesPerRank <= 0 {
		return done
	}
	eff := cfg.eff()
	total := bytesPerRank * float64(world)
	if c.Nodes > 1 {
		ch := cfg.channels(f)
		nodeShare := total * float64(c.Nodes-1) / float64(c.Nodes) / eff
		perNIC := nodeShare / float64(ch)
		for n := 0; n < c.Nodes; n++ {
			anchor := c.RanksOfNode(n)[0]
			for k := 0; k < ch; k++ {
				nic := n*c.NICsPerNode + k%c.NICsPerNode
				rx := f.E.Transfer(fmt.Sprintf("%s/node%d/ch%d/rx", label, n, k),
					sim.KindInterComm, anchor, f.NICRecv[nic], perNIC)
				rx.After(deps...)
				tx := f.E.Transfer(fmt.Sprintf("%s/node%d/ch%d/tx", label, n, k),
					sim.KindInterComm, anchor, f.NICSend[nic], perNIC)
				tx.After(deps...)
				done.After(rx, tx)
			}
		}
	}
	// NVSwitch collectives run close to peak; derate mildly.
	perRank := total * float64(world-1) / float64(world) / 0.8
	for rank := 0; rank < world; rank++ {
		rx := f.E.Transfer(fmt.Sprintf("%s/rank%d/nvs", label, rank),
			sim.KindIntraComm, rank, f.IntraRecv[rank], perRank)
		rx.After(deps...)
		done.After(rx)
	}
	return done
}

// ReduceScatter has the same traffic pattern as AllGather with the data
// flowing toward the reduction owners; the bandwidth model is identical.
func ReduceScatter(f *cluster.Fabric, cfg Config, label string, bytesPerRank float64, deps ...*sim.Task) *sim.Task {
	return AllGather(f, cfg, label+"/rs", bytesPerRank, deps...)
}

// AllReduce is reduce-scatter followed by all-gather (the classical ring
// decomposition): 2× the volume of either phase.
func AllReduce(f *cluster.Fabric, cfg Config, label string, bytesPerRank float64, deps ...*sim.Task) *sim.Task {
	rs := ReduceScatter(f, cfg, label+"/phase1", bytesPerRank, deps...)
	return AllGather(f, cfg, label+"/phase2", bytesPerRank, rs)
}

// Broadcast sends bytes from root to every other rank: cross-node once
// per remote node over the root's channels, then intra-node fan-out.
func Broadcast(f *cluster.Fabric, cfg Config, label string, root int, bytes float64, deps ...*sim.Task) *sim.Task {
	c := f.C
	done := f.E.Barrier(label, root)
	done.After(deps...)
	if bytes <= 0 || c.World() == 1 {
		return done
	}
	rootNode := c.NodeOf(root)
	// One copy to each remote node (pipelined over the root's NIC).
	nodeHeads := map[int]*sim.Task{rootNode: f.E.Barrier(label+"/root", root)}
	nodeHeads[rootNode].After(deps...)
	for n := 0; n < c.Nodes; n++ {
		if n == rootNode {
			continue
		}
		dst := c.RanksOfNode(n)[0]
		nodeHeads[n] = f.Send(fmt.Sprintf("%s/xnode%d", label, n), root, dst, bytes, deps...)
	}
	// Intra-node fan-out from each node head.
	for n := 0; n < c.Nodes; n++ {
		head := c.RanksOfNode(n)[0]
		if n == rootNode {
			head = root
		}
		for _, r := range c.RanksOfNode(n) {
			if r == head {
				done.After(nodeHeads[n])
				continue
			}
			done.After(f.Send(fmt.Sprintf("%s/fan%d", label, r), head, r, bytes, nodeHeads[n]))
		}
	}
	return done
}

// Transfer is one point-to-point element of an alltoallv.
type Transfer struct {
	From, To int
	Bytes    float64
}

// AllToAllV emits a dynamic-shape all-to-all: every listed transfer is a
// point-to-point send; the barrier completes when all have arrived. This
// is the primitive the remapping layer executes (§4 "dynamic-shape
// alltoallv primitive that supports both forward and backward passes").
func AllToAllV(f *cluster.Fabric, label string, transfers []Transfer, deps ...*sim.Task) *sim.Task {
	done := f.E.Barrier(label, 0)
	done.After(deps...)
	for i, tr := range transfers {
		if tr.Bytes <= 0 || tr.From == tr.To {
			continue
		}
		done.After(f.Send(fmt.Sprintf("%s/%d[%d->%d]", label, i, tr.From, tr.To),
			tr.From, tr.To, tr.Bytes, deps...))
	}
	return done
}
