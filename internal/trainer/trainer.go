// Package trainer simulates end-to-end training iterations. It owns the
// execution environment (simulator, fabric, cost model), defines the
// Method/Placement interfaces that Zeppelin and the baselines implement,
// and measures throughput the way the paper reports it: processed tokens
// per second over a full forward+backward iteration.
//
// A transformer layer is simulated as
//
//	attention(fwd) → remap → linear(fwd) → remap⁻¹      (forward)
//	remap → linear(bwd) → remap⁻¹ → attention(bwd)      (backward)
//
// where the remap stages are no-ops for every method except Zeppelin with
// the remapping layer enabled. Per-layer costs are identical across a
// model's layers, so one layer is simulated in full fidelity and scaled
// by the layer count; host-side overheads (sequence partitioning, solver
// time) are charged once per iteration.
package trainer

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"zeppelin/internal/cluster"
	"zeppelin/internal/costmodel"
	"zeppelin/internal/model"
	"zeppelin/internal/seq"
	"zeppelin/internal/sim"
)

// Env is the per-iteration execution environment handed to placements.
type Env struct {
	E  *sim.Engine
	F  *cluster.Fabric
	C  *cluster.Cluster
	CM *costmodel.Model
	// CapacityTokens is the per-(DP-rank) token budget L the partitioner
	// balances against (a small multiple of the per-iteration budget).
	CapacityTokens int
	// MemoryTokens is the HBM-derived ceiling on tokens a single rank can
	// hold resident for one micro-batch; hybrid methods use it to decide
	// when a sequence must be split for memory rather than for balance.
	MemoryTokens int
	// Health is the effective-speed cluster view this iteration executes
	// under (nil = nominal). The fabric is already degraded accordingly;
	// speed-aware methods additionally read it to plan around slow ranks,
	// while the baselines' even splits take the hit un-rebalanced.
	Health *cluster.Health
}

// Method plans the execution of a batch.
type Method interface {
	Name() string
	Plan(env *Env, batch []seq.Sequence) (Placement, error)
}

// Placement emits the per-layer task graphs for a planned batch.
type Placement interface {
	// EmitAttention appends one layer's attention pass.
	EmitAttention(env *Env, backward bool, deps ...*sim.Task) *sim.Task
	// EmitRemapToLinear converts the attention layout to the linear-module
	// layout (a barrier for methods that share one layout).
	EmitRemapToLinear(env *Env, deps ...*sim.Task) *sim.Task
	// EmitRemapToAttention restores the attention layout.
	EmitRemapToAttention(env *Env, deps ...*sim.Task) *sim.Task
	// LinearEffectiveTokens returns per-rank effective token counts for
	// the linear modules (expert-routing weighted for MoE models).
	LinearEffectiveTokens(env *Env) []float64
	// MicroBatches is the number of serial micro-batch groups the linear
	// modules are split into on each rank (≥ 1).
	MicroBatches() int
	// HostOverhead is per-iteration host-side planning time in seconds.
	HostOverhead() float64
}

// Config describes one experiment cell.
type Config struct {
	Model model.Config
	Spec  cluster.Spec
	Nodes int
	// TP is the tensor-parallel degree (1 unless stated; the paper uses
	// TP=2 for 13B on Cluster A and 30B on Cluster C).
	TP int
	// TokensPerGPU is the per-GPU context budget (4k in the paper).
	TokensPerGPU int
	// CapacityFactor sets L = CapacityFactor × TokensPerGPU × TP.
	CapacityFactor float64
	Seed           int64
	// Health degrades the iteration's cluster (per-rank compute slowdowns,
	// per-NIC bandwidth derates). Nil means healthy; internal/faults
	// produces per-iteration views for campaigns under a fault schedule.
	Health *cluster.Health
}

// Validate fills defaults and checks the configuration.
func (c *Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Nodes <= 0 {
		return fmt.Errorf("trainer: nodes must be positive")
	}
	if c.TP <= 0 {
		c.TP = 1
	}
	if c.TokensPerGPU <= 0 {
		c.TokensPerGPU = 4096
	}
	if c.CapacityFactor <= 0 {
		// L = 1.25 × the per-rank budget: tight enough that medium
		// sequences split into intra-node rings and the longest cross
		// nodes, the regime every figure of the paper exercises.
		c.CapacityFactor = 1.25
	}
	if c.Spec.GPUsPerNode%c.TP != 0 {
		return fmt.Errorf("trainer: TP %d does not divide GPUs per node %d", c.TP, c.Spec.GPUsPerNode)
	}
	return nil
}

// GPUs returns the physical GPU count of the configuration.
func (c *Config) GPUs() int { return c.Nodes * c.Spec.GPUsPerNode }

// TotalTokens is the global batch budget: TokensPerGPU × physical GPUs.
// Usable before Validate: the 4k-per-GPU default applies.
func (c *Config) TotalTokens() int {
	tpg := c.TokensPerGPU
	if tpg <= 0 {
		tpg = 4096
	}
	return tpg * c.GPUs()
}

// EffectiveSpec folds tensor parallelism into the topology: a TP group
// acts as one data-parallel rank owning its GPUs' aggregate compute and
// the NIC of its group. On Cluster A (2 GPUs per NIC), TP=2 gives each
// DP rank a dedicated NIC — the §5.1 observation that TP=2 removes the
// shared-NIC bottleneck. The campaign layer and the fault scheduler
// size their per-rank and per-NIC views from this spec; an unset TP
// counts as 1 (Validate's default).
func (c *Config) EffectiveSpec() cluster.Spec {
	spec := c.Spec
	tp := c.TP
	if tp <= 0 {
		tp = 1
	}
	spec.GPUsPerNode /= tp
	if spec.NICsPerNode > spec.GPUsPerNode {
		spec.NICsPerNode = spec.GPUsPerNode
	}
	return spec
}

// NewEnv builds the simulation environment for one iteration.
func (c *Config) NewEnv() (*Env, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	spec := c.EffectiveSpec()
	cl, err := cluster.New(spec, c.Nodes)
	if err != nil {
		return nil, err
	}
	cm, err := costmodel.New(c.Model, c.Spec, c.TP)
	if err != nil {
		return nil, err
	}
	e := sim.NewEngine()
	// Memory ceiling: reserve ~60% of HBM for weights/optimizer/workspace,
	// charge ~3 hidden-width activation tensors per token per layer
	// (selective recomputation), scaled by the TP shard factor.
	actPerToken := 3 * float64(c.Model.Hidden) * float64(c.Model.BytesPerElem) *
		float64(c.Model.Layers) / float64(c.TP)
	memTokens := int(0.4 * c.Spec.GPUMemory * float64(c.TP) / actPerToken)
	if memTokens < c.TokensPerGPU*c.TP {
		memTokens = c.TokensPerGPU * c.TP
	}
	f := cluster.NewFabric(e, cl)
	if c.Health.Degraded() {
		if err := c.Health.Validate(cl.World(), cl.Nodes*cl.NICsPerNode); err != nil {
			return nil, err
		}
		f.Degrade(c.Health)
	}
	return &Env{
		E:              e,
		F:              f,
		C:              cl,
		CM:             cm,
		CapacityTokens: int(c.CapacityFactor * float64(c.TokensPerGPU*c.TP)),
		MemoryTokens:   memTokens,
		Health:         c.Health,
	}, nil
}

// Batch samples the iteration's batch for a dataset-like sampler.
func (c *Config) Batch(sample func(total int, rng *rand.Rand) []seq.Sequence) []seq.Sequence {
	rng := rand.New(rand.NewSource(c.Seed))
	return sample(c.TotalTokens(), rng)
}

// Result reports one simulated iteration. The JSON field names are part
// of the runner's artifact format and must stay stable.
type Result struct {
	Method    string  `json:"method"`
	IterTime  float64 `json:"iter_time"`  // seconds per iteration (all layers + host overhead)
	LayerTime float64 `json:"layer_time"` // seconds for the simulated layer (fwd+bwd)
	Tokens    int     `json:"tokens"`
	// TokensPerSec is the paper's headline metric.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// Phase spans of the simulated layer in seconds.
	AttnFwd   float64 `json:"attn_fwd"`
	AttnBwd   float64 `json:"attn_bwd"`
	LinearFwd float64 `json:"linear_fwd"`
	LinearBwd float64 `json:"linear_bwd"`
	RemapTime float64 `json:"remap_time"`
	// PerRankPhase maps phase label prefix -> per-rank busy seconds, for
	// the Table 3 min–max ranges.
	PerRankPhase map[string][]float64 `json:"per_rank_phase,omitempty"`
	HostOverhead float64              `json:"host_overhead"`
	// GradSync is the method-independent per-iteration gradient
	// synchronization cost not hidden by backward overlap.
	GradSync float64 `json:"grad_sync"`
}

// gradSyncTime estimates the unhidden portion of the per-iteration
// gradient reduce-scatter + parameter all-gather (ZeRO-style): 2× the
// gradient volume crosses the slowest tier, at collective efficiency,
// with half hidden under backward compute. This cost is identical across
// scheduling methods and bounds the achievable speedup ratios.
func gradSyncTime(cfg *Config) float64 {
	params := cfg.Model.ParamCount() / float64(cfg.TP)
	bytes := 2 * params * float64(cfg.Model.BytesPerElem)
	spec := cfg.Spec
	var t float64
	if cfg.Nodes > 1 {
		inter := bytes * float64(cfg.Nodes-1) / float64(cfg.Nodes)
		t += inter / (float64(spec.NICsPerNode) * spec.NICBandwidth * 0.55)
	}
	p := spec.GPUsPerNode
	t += bytes * float64(p-1) / float64(p) / (spec.IntraBandwidth * 0.8)
	return 0.5 * t // half overlapped with backward
}

// Run simulates one training iteration of a method on a batch.
func Run(cfg Config, m Method, batch []seq.Sequence) (*Result, error) {
	env, err := cfg.NewEnv()
	if err != nil {
		return nil, err
	}
	pl, err := m.Plan(env, batch)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.Name(), err)
	}
	return RunPlanned(cfg, m.Name(), env, pl, batch)
}

// RunPlanned simulates one iteration of an already-planned placement on
// the environment it was planned against. Callers that need both the
// placement's plan facts and the simulated readout (the public API's
// one-shot plan endpoint) use it to avoid solving the partition twice;
// env must come from cfg.NewEnv() and carry no previously emitted tasks.
func RunPlanned(cfg Config, name string, env *Env, pl Placement, batch []seq.Sequence) (*Result, error) {
	start := env.E.Barrier("start", 0)

	attnF := pl.EmitAttention(env, false, start)
	toLin := pl.EmitRemapToLinear(env, attnF)
	linF := emitLinear(env, pl, "linear-fwd", 1.0, toLin)
	toAttn := pl.EmitRemapToAttention(env, linF)

	toLinB := pl.EmitRemapToLinear(env, toAttn)
	linB := emitLinear(env, pl, "linear-bwd", costmodel.BwdComputeFactor, toLinB)
	toAttnB := pl.EmitRemapToAttention(env, linB)
	attnB := pl.EmitAttention(env, true, toAttnB)

	if _, err := env.E.Run(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	res := &Result{
		Method:       name,
		Tokens:       seq.TotalLen(batch),
		HostOverhead: pl.HostOverhead(),
		PerRankPhase: perRankPhases(env),
	}
	res.AttnFwd = attnF.End - start.End
	res.LinearFwd = linF.End - toLin.End
	res.LinearBwd = linB.End - toLinB.End
	res.AttnBwd = attnB.End - toAttnB.End
	res.RemapTime = (toLin.End - attnF.End) + (toAttn.End - linF.End) +
		(toLinB.End - toAttn.End) + (toAttnB.End - linB.End)
	res.LayerTime = env.E.Makespan()
	res.GradSync = gradSyncTime(&cfg)
	res.IterTime = res.LayerTime*float64(cfg.Model.Layers) + res.HostOverhead + res.GradSync
	if res.IterTime > 0 {
		res.TokensPerSec = float64(res.Tokens) / res.IterTime
	}
	return res, nil
}

// emitLinear schedules the token-wise modules on every rank. Micro-batch
// counts above one split the work into that many serial kernels, each
// paying the launch latency — the compute-intensity penalty of Fig. 2c.
// For MoE models, expert-parallel dispatch and combine all-to-alls wrap
// the expert computation; this traffic is identical across scheduling
// methods and compresses MoE speedups, as §5.1 observes.
func emitLinear(env *Env, pl Placement, label string, mul float64, deps ...*sim.Task) *sim.Task {
	eff := pl.LinearEffectiveTokens(env)
	mb := pl.MicroBatches()
	if mb < 1 {
		mb = 1
	}
	start := env.E.Barrier(label+"/start", 0)
	start.After(deps...)
	gate := start
	if env.CM.MC.MoE {
		gate = emitMoEAllToAll(env, label+"/dispatch", eff, mul, start)
	}
	done := env.E.Barrier(label+"/compute-done", 0)
	done.After(gate)
	for rank := 0; rank < env.C.World(); rank++ {
		if eff[rank] <= 0 {
			continue
		}
		per := env.CM.LinearTime(eff[rank]/float64(mb)) * mul
		var prev *sim.Task
		for i := 0; i < mb; i++ {
			t := env.F.ComputeTask(fmt.Sprintf("%s/mb%d@%d", label, i, rank), rank, per)
			t.After(gate)
			t.After(prev)
			prev = t
		}
		done.After(prev)
	}
	if env.CM.MC.MoE {
		return emitMoEAllToAll(env, label+"/combine", eff, mul, done)
	}
	return done
}

// emitMoEAllToAll models one expert-parallel all-to-all: each rank
// exchanges TopK routed copies of its tokens' activations with the rest
// of the world; the cross-node fraction rides the rank's NIC and the rest
// crosses NVSwitch.
func emitMoEAllToAll(env *Env, label string, eff []float64, mul float64, dep *sim.Task) *sim.Task {
	mc := env.CM.MC
	c := env.C
	done := env.E.Barrier(label+"/done", 0)
	done.After(dep)
	for rank := 0; rank < c.World(); rank++ {
		if eff[rank] <= 0 {
			continue
		}
		vol := eff[rank] * float64(mc.TopK) * env.CM.ActBytes(1) * mul
		crossFrac := 0.0
		if c.Nodes > 1 {
			crossFrac = float64(c.Nodes-1) / float64(c.Nodes)
		}
		if crossFrac > 0 {
			nic := c.NICOf(rank)
			tx := env.E.Transfer(fmt.Sprintf("%s/tx@%d", label, rank),
				sim.KindInterComm, rank, env.F.NICSend[nic], vol*crossFrac)
			tx.After(dep)
			rx := env.E.Transfer(fmt.Sprintf("%s/rx@%d", label, rank),
				sim.KindInterComm, rank, env.F.NICRecv[nic], vol*crossFrac)
			rx.After(dep)
			done.After(tx, rx)
		}
		intra := env.E.Transfer(fmt.Sprintf("%s/nvs@%d", label, rank),
			sim.KindIntraComm, rank, env.F.IntraSend[rank], vol*(1-crossFrac))
		intra.After(dep)
		done.After(intra)
	}
	return done
}

// perRankPhases aggregates per-rank busy time by phase label prefix.
func perRankPhases(env *Env) map[string][]float64 {
	out := make(map[string][]float64)
	world := env.C.World()
	add := func(key string, rank int, d float64) {
		v, ok := out[key]
		if !ok {
			v = make([]float64, world)
			out[key] = v
		}
		if rank >= 0 && rank < world {
			v[rank] += d
		}
	}
	for _, t := range env.E.Tasks() {
		if t.Kind == sim.KindBarrier {
			continue
		}
		label := t.Label
		var key string
		switch {
		case strings.HasPrefix(label, "attn-fwd"):
			key = "attn-fwd"
		case strings.HasPrefix(label, "attn-bwd"):
			key = "attn-bwd"
		case strings.HasPrefix(label, "linear-fwd"):
			key = "linear-fwd"
		case strings.HasPrefix(label, "linear-bwd"):
			key = "linear-bwd"
		case strings.HasPrefix(label, "remap"):
			key = "remap"
		default:
			key = "other"
		}
		add(key, t.Rank, t.End-t.Start)
	}
	return out
}

// MoEWeight is the deterministic per-sequence expert-routing cost
// multiplier used for MoE models: routing concentration makes some
// sequences ~35% more expensive and others ~25% cheaper than average.
// Methods that place whole sequences inherit this variance; methods that
// shard every sequence across all ranks average it away — the §5.1
// mechanism that weakens Hybrid DP's FLOP-estimated balancing on MoE.
func MoEWeight(seqID int) float64 {
	h := fnv.New32a()
	var b [4]byte
	b[0] = byte(seqID)
	b[1] = byte(seqID >> 8)
	b[2] = byte(seqID >> 16)
	b[3] = byte(seqID >> 24)
	h.Write(b[:])
	u := float64(h.Sum32()%1000) / 1000.0
	return 0.75 + 0.6*u
}

// EffectiveTokens converts a per-rank map of sequence portions into
// effective linear-module token counts: weighted by MoEWeight for MoE
// models, raw counts otherwise.
func EffectiveTokens(mc model.Config, world int, portions []map[int]int) []float64 {
	out := make([]float64, world)
	for rank, m := range portions {
		for id, tok := range m {
			w := 1.0
			if mc.MoE {
				w = MoEWeight(id)
			}
			out[rank] += w * float64(tok)
		}
	}
	return out
}

// NoRemap is a reusable no-op remap stage for single-layout methods.
type NoRemap struct{}

// EmitRemapToLinear returns a pass-through barrier.
func (NoRemap) EmitRemapToLinear(env *Env, deps ...*sim.Task) *sim.Task {
	return env.E.Barrier("remap-noop", 0).After(deps...)
}

// EmitRemapToAttention returns a pass-through barrier.
func (NoRemap) EmitRemapToAttention(env *Env, deps ...*sim.Task) *sim.Task {
	return env.E.Barrier("remap-noop", 0).After(deps...)
}
