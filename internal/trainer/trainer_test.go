package trainer

import (
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/seq"
	"zeppelin/internal/sim"
)

// fakeMethod lets us test the trainer loop in isolation.
type fakeMethod struct{ mb int }

func (fakeMethod) Name() string { return "fake" }

func (f fakeMethod) Plan(env *Env, batch []seq.Sequence) (Placement, error) {
	return &fakePlacement{tokens: seq.TotalLen(batch), mb: f.mb}, nil
}

type fakePlacement struct {
	NoRemap
	tokens int
	mb     int
}

func (p *fakePlacement) EmitAttention(env *Env, backward bool, deps ...*sim.Task) *sim.Task {
	name := "attn-fwd/fake"
	mul := 1.0
	if backward {
		name, mul = "attn-bwd/fake", 2.0
	}
	done := env.E.Barrier(name+"/done", 0)
	for r := 0; r < env.C.World(); r++ {
		t := env.F.ComputeTask(name+"/k", r, 0.001*mul)
		t.After(deps...)
		done.After(t)
	}
	return done
}

func (p *fakePlacement) LinearEffectiveTokens(env *Env) []float64 {
	out := make([]float64, env.C.World())
	per := float64(p.tokens) / float64(env.C.World())
	for i := range out {
		out[i] = per
	}
	return out
}

func (p *fakePlacement) MicroBatches() int     { return p.mb }
func (p *fakePlacement) HostOverhead() float64 { return 0.001 }

func cfg7B(nodes int) Config {
	return Config{Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: nodes, Seed: 1}
}

func TestConfigValidateDefaults(t *testing.T) {
	c := cfg7B(2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.TokensPerGPU != 4096 || c.CapacityFactor != 1.25 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.GPUs() != 16 || c.TotalTokens() != 16*4096 {
		t.Fatalf("GPUs=%d TotalTokens=%d", c.GPUs(), c.TotalTokens())
	}
}

func TestConfigValidateRejects(t *testing.T) {
	c := Config{Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 0}
	if err := c.Validate(); err == nil {
		t.Fatal("zero nodes should fail")
	}
	c = Config{Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 1, TP: 3}
	if err := c.Validate(); err == nil {
		t.Fatal("TP not dividing GPUs per node should fail")
	}
	c = Config{Model: model.Config{Name: "bad"}, Spec: cluster.ClusterA, Nodes: 1}
	if err := c.Validate(); err == nil {
		t.Fatal("invalid model should fail")
	}
}

func TestEffectiveSpecTPFoldsNICs(t *testing.T) {
	c := cfg7B(2)
	c.Model = model.LLaMA13B
	c.TP = 2
	env, err := c.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	// 8 GPUs / TP2 = 4 DP ranks per node, one NIC each on Cluster A.
	if env.C.GPUsPerNode != 4 || env.C.NICsPerNode != 4 {
		t.Fatalf("effective topology = %d GPUs, %d NICs per node", env.C.GPUsPerNode, env.C.NICsPerNode)
	}
	if env.C.GPUsPerNIC() != 1 {
		t.Fatal("TP=2 on Cluster A should give each DP rank a dedicated NIC")
	}
	if env.CapacityTokens != int(1.25*4096*2) {
		t.Fatalf("capacity = %d", env.CapacityTokens)
	}
	if env.MemoryTokens < env.CapacityTokens {
		t.Fatalf("memory tokens %d below capacity %d", env.MemoryTokens, env.CapacityTokens)
	}
}

func TestRunProducesThroughput(t *testing.T) {
	c := cfg7B(2)
	batch := []seq.Sequence{{ID: 0, Len: 65536}}
	res, err := Run(c, fakeMethod{mb: 1}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.TokensPerSec <= 0 {
		t.Fatal("throughput must be positive")
	}
	if res.IterTime <= res.LayerTime {
		t.Fatal("iteration must cost at least layers × layer time")
	}
	if res.GradSync <= 0 {
		t.Fatal("gradient sync cost must be positive")
	}
	if res.AttnFwd <= 0 || res.AttnBwd <= res.AttnFwd {
		t.Fatalf("attention phases wrong: fwd=%v bwd=%v", res.AttnFwd, res.AttnBwd)
	}
	if res.LinearFwd <= 0 || res.LinearBwd <= res.LinearFwd {
		t.Fatalf("linear phases wrong: fwd=%v bwd=%v", res.LinearFwd, res.LinearBwd)
	}
	if len(res.PerRankPhase["attn-fwd"]) != 16 {
		t.Fatal("per-rank phase accounting missing")
	}
}

func TestMicroBatchingCostsMore(t *testing.T) {
	c := cfg7B(1)
	batch := []seq.Sequence{{ID: 0, Len: 32768}}
	r1, err := Run(c, fakeMethod{mb: 1}, batch)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(c, fakeMethod{mb: 8}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if r8.LinearFwd <= r1.LinearFwd {
		t.Fatalf("8 micro-batches should cost more launch overhead: %v vs %v", r8.LinearFwd, r1.LinearFwd)
	}
}

func TestMoEAllToAllAddsCommunication(t *testing.T) {
	dense := cfg7B(2)
	moe := dense
	moe.Model = model.MoE8x550M
	batch := []seq.Sequence{{ID: 0, Len: 65536}}
	rd, err := Run(dense, fakeMethod{mb: 1}, batch)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(moe, fakeMethod{mb: 1}, batch)
	if err != nil {
		t.Fatal(err)
	}
	// The MoE run must show inter-node traffic in the linear phase; the
	// dense run has none (fake attention has no comm at all).
	if rm.LinearFwd <= rd.LinearFwd*0.5 && rm.LinearFwd <= 0 {
		t.Fatal("MoE linear phase should include all-to-all time")
	}
	moePhase := rm.PerRankPhase["linear-fwd"]
	if len(moePhase) == 0 {
		t.Fatal("missing MoE linear phase accounting")
	}
}

func TestGradSyncScalesWithModel(t *testing.T) {
	small := cfg7B(2)
	big := small
	big.Model = model.LLaMA30B
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	if gradSyncTime(&big) <= gradSyncTime(&small) {
		t.Fatal("30B gradient sync should cost more than 7B")
	}
	tp := big
	tp.TP = 2
	if gradSyncTime(&tp) >= gradSyncTime(&big) {
		t.Fatal("TP should shard gradient volume")
	}
}

func TestMoEWeightDeterministicAndBounded(t *testing.T) {
	for id := 0; id < 1000; id++ {
		w := MoEWeight(id)
		if w < 0.75 || w > 1.35 {
			t.Fatalf("weight %v out of range for id %d", w, id)
		}
		if w != MoEWeight(id) {
			t.Fatal("weight must be deterministic")
		}
	}
	// Weights must actually vary (otherwise the MoE imbalance mechanism
	// is inert).
	if MoEWeight(1) == MoEWeight(2) && MoEWeight(2) == MoEWeight(3) {
		t.Fatal("weights suspiciously constant")
	}
}

func TestEffectiveTokens(t *testing.T) {
	portions := []map[int]int{
		{1: 100, 2: 200},
		{3: 300},
	}
	dense := EffectiveTokens(model.LLaMA7B, 2, portions)
	if dense[0] != 300 || dense[1] != 300 {
		t.Fatalf("dense effective tokens = %v", dense)
	}
	moe := EffectiveTokens(model.MoE8x550M, 2, portions)
	if moe[0] == dense[0] && moe[1] == dense[1] {
		t.Fatal("MoE weighting should perturb token counts")
	}
}
