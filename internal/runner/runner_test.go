package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"zeppelin/internal/baselines"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
)

// quickCfg is a one-node cell small enough that a full grid of it stays
// fast under -race.
func quickCfg(seed int64) trainer.Config {
	return trainer.Config{
		Model: model.LLaMA3B, Spec: cluster.ClusterA, Nodes: 1, TP: 1,
		TokensPerGPU: 1024, Seed: seed,
	}
}

func quickJob(key string, seed int64, m trainer.Method) Job {
	return Job{
		Key:         key,
		Config:      quickCfg(seed),
		Method:      m,
		Sample:      workload.ArXiv.Batch,
		SamplerName: workload.ArXiv.Name,
	}
}

func TestPoolSizing(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		want    int
	}{
		{"default", 0, runtime.GOMAXPROCS(0)},
		{"negative", -4, runtime.GOMAXPROCS(0)},
		{"one", 1, 1},
		{"explicit", 7, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := New(Options{Workers: tc.workers}).Workers(); got != tc.want {
				t.Fatalf("Workers() = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestRunCollectsInSubmissionOrder(t *testing.T) {
	var jobs []Job
	for s := 0; s < 6; s++ {
		jobs = append(jobs, quickJob(fmt.Sprintf("s%d", s), int64(100+s), baselines.TECP{}))
	}
	rs, err := New(Options{Workers: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Keys(); !reflect.DeepEqual(got, []string{"s0", "s1", "s2", "s3", "s4", "s5"}) {
		t.Fatalf("keys out of submission order: %v", got)
	}
	for _, k := range rs.Keys() {
		if rs.TokensPerSec(k) <= 0 {
			t.Fatalf("%s: non-positive throughput", k)
		}
	}
	if rs.Executed != 6 || rs.CacheHits != 0 {
		t.Fatalf("executed=%d cacheHits=%d, want 6/0", rs.Executed, rs.CacheHits)
	}
}

func TestJobValidation(t *testing.T) {
	eng := New(Options{})
	for _, tc := range []struct {
		name string
		jobs []Job
		want string
	}{
		{"empty key", []Job{{Method: baselines.TECP{}, Sample: workload.ArXiv.Batch}}, "empty key"},
		{"duplicate key", []Job{quickJob("a", 1, baselines.TECP{}), quickJob("a", 2, baselines.TECP{})}, "duplicate"},
		{"nil method", []Job{{Key: "a", Sample: workload.ArXiv.Batch}}, "no method"},
		{"nil sampler", []Job{{Key: "a", Method: baselines.TECP{}}}, "no sampler"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := eng.Run(context.Background(), tc.jobs); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestErrorPropagation checks that a failing cell surfaces its error
// wrapped with the job key, that the reported failure is the earliest
// submitted one regardless of pool timing, and that healthy cells in the
// same grid still ran.
func TestErrorPropagation(t *testing.T) {
	bad := quickJob("bad-early", 1, baselines.TECP{})
	bad.Config.Nodes = 0 // fails Validate
	bad2 := quickJob("bad-late", 2, baselines.TECP{})
	bad2.Config.TP = 3 // does not divide GPUs per node
	jobs := []Job{quickJob("ok", 3, baselines.TECP{}), bad, bad2}
	for _, workers := range []int{1, 8} {
		_, err := New(Options{Workers: workers}).Run(context.Background(), jobs)
		if err == nil {
			t.Fatalf("workers=%d: grid with invalid cell must fail", workers)
		}
		if !strings.Contains(err.Error(), `"bad-early"`) {
			t.Fatalf("workers=%d: err = %v, want the earliest failing key", workers, err)
		}
	}
}

func TestCacheHits(t *testing.T) {
	eng := New(Options{Workers: 4})
	// A baseline method, not zeppelin.Full(): internal/zeppelin now
	// depends on this package (the parallel solve), so in-package tests
	// cannot import it; determinism_ext_test.go covers the full method.
	same := func(key string) Job { return quickJob(key, 42, baselines.HybridDP{}) }
	rs, err := eng.Run(context.Background(), []Job{same("a"), same("b"), quickJob("c", 43, baselines.HybridDP{})})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Executed != 2 || rs.CacheHits != 1 {
		t.Fatalf("executed=%d cacheHits=%d, want 2/1", rs.Executed, rs.CacheHits)
	}
	if rs.Get("a") != rs.Get("b") {
		t.Fatal("memoized duplicate must share the leader's result")
	}
	if rs.Get("a") == rs.Get("c") {
		t.Fatal("different seeds must not share a result")
	}

	// A second Run on the same engine hits the persistent cache.
	rs2, err := eng.Run(context.Background(), []Job{same("again")})
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Executed != 0 || rs2.CacheHits != 1 {
		t.Fatalf("cross-run: executed=%d cacheHits=%d, want 0/1", rs2.Executed, rs2.CacheHits)
	}
	if eng.CacheSize() != 2 {
		t.Fatalf("cache size = %d, want 2", eng.CacheSize())
	}
}

// TestMethodFieldsKeepDistinctCacheEntries guards the hash against the
// display-name trap: TECP{} and TECP{Routed: true} share Name() but are
// different methods and must not be memoized together.
func TestMethodFieldsKeepDistinctCacheEntries(t *testing.T) {
	rs, err := New(Options{}).Run(context.Background(), []Job{
		quickJob("plain", 7, baselines.TECP{}),
		quickJob("routed", 7, baselines.TECP{Routed: true}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits != 0 {
		t.Fatal("methods differing only in fields must not share cache entries")
	}
}

func TestAnonymousSamplersNeverMemoize(t *testing.T) {
	eng := New(Options{})
	j1, j2 := quickJob("a", 5, baselines.TECP{}), quickJob("b", 5, baselines.TECP{})
	j1.SamplerName, j2.SamplerName = "", ""
	rs, err := eng.Run(context.Background(), []Job{j1, j2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Executed != 2 || rs.CacheHits != 0 || eng.CacheSize() != 0 {
		t.Fatalf("anonymous samplers memoized: executed=%d hits=%d cache=%d",
			rs.Executed, rs.CacheHits, eng.CacheSize())
	}
}

func TestNoMemoOption(t *testing.T) {
	eng := New(Options{NoMemo: true})
	rs, err := eng.Run(context.Background(), []Job{quickJob("a", 5, baselines.TECP{}), quickJob("b", 5, baselines.TECP{})})
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits != 0 || eng.CacheSize() != 0 {
		t.Fatal("NoMemo engine must not cache")
	}
}

func TestWriteJSONArtifact(t *testing.T) {
	rs, err := New(Options{Workers: 2}).Run(context.Background(), []Job{
		quickJob("a", 1, baselines.TECP{}),
		quickJob("b", 1, baselines.TECP{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rs.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"workers": 2`, `"executed": 1`, `"cache_hits": 1`,
		`"key": "a"`, `"tokens_per_sec"`, `"method": "TE CP"`} {
		if !strings.Contains(out, want) {
			t.Errorf("artifact missing %q:\n%s", want, out)
		}
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 40)
	if err := ForEach(context.Background(), 8, len(out), func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	sentinel := errors.New("boom")
	err := ForEach(context.Background(), 4, 10, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("slot %d: %w", i, sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "slot 3") {
		t.Fatalf("ForEach must surface the lowest-index error, got %v", err)
	}
}

func TestForEachWorker(t *testing.T) {
	// Worker ids must stay in [0, workers) and each worker must run at
	// most one fn at a time — per-worker scratch relies on both.
	const workers, n = 5, 64
	busy := make([]atomic.Int32, workers)
	worker := make([]int, n)
	if err := ForEachWorker(context.Background(), workers, n, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker id %d out of range", w)
		}
		if busy[w].Add(1) != 1 {
			return fmt.Errorf("worker %d ran two indices concurrently", w)
		}
		worker[i] = w
		busy[w].Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Every index ran exactly once (worker slot recorded).
	for i, w := range worker {
		if w < 0 || w >= workers {
			t.Fatalf("index %d ran on worker %d", i, w)
		}
	}
	// Zero items is a no-op, not a hang.
	if err := ForEachWorker(context.Background(), 4, 0, func(w, i int) error {
		t.Fatalf("fn called for empty range (w=%d i=%d)", w, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
