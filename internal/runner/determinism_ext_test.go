// External test package: these tests exercise the engine through
// zeppelin.Full(), which now depends on runner (the parallel partition
// solve), so an in-package test importing it would form a cycle.
package runner_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"zeppelin/internal/baselines"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/runner"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// TestSerialParallelDeterminism is the acceptance criterion of the
// engine: a (dataset × method × seed) grid must produce bit-identical
// trainer.Results on one worker and on a saturated pool.
func TestSerialParallelDeterminism(t *testing.T) {
	var jobs []runner.Job
	for _, d := range []workload.Dataset{workload.ArXiv, workload.GitHub} {
		for mi, m := range []trainer.Method{baselines.TECP{}, baselines.HybridDP{}, zeppelin.Full()} {
			for s := 0; s < 3; s++ {
				jobs = append(jobs, runner.Job{
					Key: fmt.Sprintf("%s/m%d/s%d", d.Name, mi, s),
					Config: trainer.Config{
						Model: model.LLaMA3B, Spec: cluster.ClusterA, Nodes: 1, TP: 1,
						TokensPerGPU: 1024, Seed: int64(1000 + 37*s),
					},
					Method:      m,
					Sample:      d.Batch,
					SamplerName: d.Name,
				})
			}
		}
	}
	serial, err := runner.New(runner.Options{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.New(runner.Options{Workers: 2 * runtime.GOMAXPROCS(0)}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range serial.Keys() {
		if !reflect.DeepEqual(serial.Get(k), parallel.Get(k)) {
			t.Fatalf("%s: serial and parallel results differ:\n%+v\nvs\n%+v",
				k, serial.Get(k), parallel.Get(k))
		}
	}
}
