package runner

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"zeppelin/internal/baselines"
)

// TestRunReturnsContextErrorPromptly: a pre-cancelled context never
// starts a job and surfaces ctx.Err() as the run's error.
func TestRunReturnsContextErrorPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(Options{Workers: 2})
	jobs := make([]Job, 16)
	for i := range jobs {
		// A baseline method, not zeppelin.Full(): internal/zeppelin now
		// depends on this package (the parallel solve), so importing it
		// from an in-package test would form a cycle. The method never
		// runs — the context is already cancelled.
		jobs[i] = quickJob(string(rune('a'+i)), int64(i), baselines.TECP{})
	}
	rs, err := eng.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run error = %v, want context.Canceled", err)
	}
	if rs != nil {
		t.Fatalf("cancelled Run must not return a result set, got %+v", rs)
	}
	if eng.CacheSize() != 0 {
		t.Fatalf("cancelled Run executed %d jobs before starting", eng.CacheSize())
	}
}

// TestRunStopsMidGridOnCancel: cancelling while the grid is in flight
// stops the remaining jobs — the executed count stays well below the
// grid size — and Run reports the context error.
func TestRunStopsMidGridOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	const n = 64
	err := ForEach(ctx, 1, n, func(i int) error {
		if ran.Add(1) == 2 {
			cancel() // fires after the second body; the rest must drain
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach error = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("cancellation did not stop the fan-out: ran %d of %d", got, n)
	}
}

// TestForEachCancelledBeforeStart returns the context error without
// running any body.
func TestForEachCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 4, 8, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled ForEach ran %d bodies", ran.Load())
	}
}

// TestCancelledRunLeaksNoWorkers: after a cancelled grid the pool's
// goroutines must drain back to the pre-run baseline.
func TestCancelledRunLeaksNoWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 4; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		_ = ForEach(ctx, 8, 256, func(i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			time.Sleep(100 * time.Microsecond)
			return nil
		})
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after cancelled runs: before=%d now=%d", before, runtime.NumGoroutine())
}
