// Package runner is the concurrent experiment engine behind every paper
// table and figure. A reproduction grid is a set of (cell × method ×
// seed) simulation jobs that are embarrassingly parallel and fully
// deterministic: each job carries its own RNG seed (trainer.Config.Seed)
// and its own simulation environment, so results are bit-identical
// whether the grid runs on one worker or on runtime.GOMAXPROCS workers.
// The engine fans jobs across a bounded worker pool, collects results
// into a keyed store in submission order, memoizes repeated
// configurations by a stable config identity (an Engine may be shared across
// many Run calls — `zeppelin all` reuses cells between figures), and can
// emit the whole result set as a JSON artifact for downstream tooling.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
)

// Sampler builds a batch for a token budget (the experiments package's
// Sampler re-exports this shape): workload.Dataset.Batch,
// workload.SkewedBatch and workload.BalancedBatch all satisfy it.
type Sampler func(totalTokens int, rng *rand.Rand) []seq.Sequence

// Job is one simulation cell: a trainer configuration, the method to
// plan it, and the sampler that draws its batch from Config.Seed.
type Job struct {
	// Key identifies the job within one Run call; it must be non-empty
	// and unique. Grid builders typically use "fig8/7B/64k/arxiv/TE CP/s0".
	Key    string
	Config trainer.Config
	Method trainer.Method
	Sample Sampler
	// SamplerName is the stable identity of Sample used for memoization
	// (function values cannot be hashed). Jobs with an empty SamplerName
	// are never memoized — two anonymous samplers must not collide.
	SamplerName string
}

// identity returns the job's stable memoization key: the full rendered
// configuration, not a digest, so distinct jobs can never collide. The
// method is rendered with its concrete type and field values so that
// e.g. TECP{} and TECP{Routed: true} — which share a display name —
// stay distinct.
func (j *Job) identity() string {
	return fmt.Sprintf("%+v|%T%+v|%s", j.Config, j.Method, j.Method, j.SamplerName)
}

// Options configure an Engine.
type Options struct {
	// Workers bounds the pool; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// NoMemo disables the config-hash result cache.
	NoMemo bool
}

// Engine executes job grids over a bounded worker pool. An Engine is
// safe for concurrent use and may be reused across Run calls; its memo
// cache persists for its lifetime.
type Engine struct {
	workers int
	memoize bool

	mu    sync.Mutex
	cache map[string]*outcome
}

type outcome struct {
	res *trainer.Result
	err error
}

// New builds an engine; see Options for defaults.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: w,
		memoize: !opts.NoMemo,
		cache:   make(map[string]*outcome),
	}
}

// Workers reports the resolved pool size.
func (e *Engine) Workers() int { return e.workers }

// JobResult pairs a job's identity with its simulation outcome.
type JobResult struct {
	Key     string          `json:"key"`
	Method  string          `json:"method"`
	Sampler string          `json:"sampler,omitempty"`
	Seed    int64           `json:"seed"`
	Cached  bool            `json:"cached"`
	Result  *trainer.Result `json:"result"`
}

// ResultSet holds one Run call's results, in submission order.
type ResultSet struct {
	// Workers is the pool size the grid ran on; Executed and CacheHits
	// split the jobs into freshly simulated vs memoized.
	Workers   int
	Executed  int
	CacheHits int

	results []JobResult
	byKey   map[string]*trainer.Result
}

// Results returns all job results in submission order.
func (rs *ResultSet) Results() []JobResult { return rs.results }

// Get returns the result for a job key, or nil if the key is unknown.
func (rs *ResultSet) Get(key string) *trainer.Result { return rs.byKey[key] }

// TokensPerSec returns the headline metric for one job key.
func (rs *ResultSet) TokensPerSec(key string) float64 {
	if r := rs.byKey[key]; r != nil {
		return r.TokensPerSec
	}
	return 0
}

// MeanTokensPerSec averages the headline metric over the given keys —
// the per-cell seed average every figure reports.
func (rs *ResultSet) MeanTokensPerSec(keys ...string) float64 {
	if len(keys) == 0 {
		return 0
	}
	var sum float64
	for _, k := range keys {
		sum += rs.TokensPerSec(k)
	}
	return sum / float64(len(keys))
}

// WriteJSON emits the result set as an indented JSON artifact.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	artifact := struct {
		Workers   int         `json:"workers"`
		Executed  int         `json:"executed"`
		CacheHits int         `json:"cache_hits"`
		Jobs      []JobResult `json:"jobs"`
	}{rs.Workers, rs.Executed, rs.CacheHits, rs.results}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(artifact)
}

// Run executes a grid of jobs and collects every result. All jobs run to
// completion even when some fail, so the outcome — including which error
// is reported — depends only on the grid, never on pool timing: the
// returned error is the failure with the lowest submission index,
// wrapped with its job key.
//
// Cancelling ctx stops the grid promptly: workers finish the job they
// are on, no further jobs start, and Run returns ctx.Err(). A cancelled
// run caches nothing visible — partial outcomes stay in the memo cache
// (they are deterministic and complete) but no ResultSet is returned.
func (e *Engine) Run(ctx context.Context, jobs []Job) (*ResultSet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		if j.Key == "" {
			return nil, fmt.Errorf("runner: job %d has an empty key", i)
		}
		if _, dup := seen[j.Key]; dup {
			return nil, fmt.Errorf("runner: duplicate job key %q", j.Key)
		}
		seen[j.Key] = struct{}{}
		if j.Method == nil {
			return nil, fmt.Errorf("runner: job %q has no method", j.Key)
		}
		if j.Sample == nil {
			return nil, fmt.Errorf("runner: job %q has no sampler", j.Key)
		}
	}

	// Split the grid into leaders (first occurrence of a config hash not
	// already cached) and followers that reuse a leader's or the cache's
	// outcome. Jobs without a sampler identity always lead.
	outcomes := make([]*outcome, len(jobs))
	cached := make([]bool, len(jobs))
	var leaders []int
	leaderByIdentity := make(map[string]int)
	for i := range jobs {
		j := &jobs[i]
		if !e.memoize || j.SamplerName == "" {
			leaders = append(leaders, i)
			continue
		}
		id := j.identity()
		if _, ok := leaderByIdentity[id]; ok {
			cached[i] = true
			continue
		}
		e.mu.Lock()
		o, hit := e.cache[id]
		e.mu.Unlock()
		if hit {
			outcomes[i] = o
			cached[i] = true
			continue
		}
		leaderByIdentity[id] = i
		leaders = append(leaders, i)
	}

	// Fan the leaders across the pool. Workers re-check the context
	// between jobs so a cancellation mid-grid drains the queue without
	// starting new simulations.
	var wg sync.WaitGroup
	work := make(chan int)
	workers := min(e.workers, len(leaders))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					continue // drain without executing
				}
				outcomes[i] = e.execute(&jobs[i])
			}
		}()
	}
feed:
	for _, i := range leaders {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Resolve followers from their leader's outcome and assemble the
	// result set in submission order.
	rs := &ResultSet{
		Workers: e.workers,
		results: make([]JobResult, 0, len(jobs)),
		byKey:   make(map[string]*trainer.Result, len(jobs)),
	}
	var firstErr error
	for i := range jobs {
		j := &jobs[i]
		o := outcomes[i]
		if o == nil { // follower of an in-run leader
			o = outcomes[leaderByIdentity[j.identity()]]
			outcomes[i] = o
		}
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("runner: job %q: %w", j.Key, o.err)
			}
			continue
		}
		if cached[i] {
			rs.CacheHits++
		} else {
			rs.Executed++
		}
		rs.results = append(rs.results, JobResult{
			Key:     j.Key,
			Method:  j.Method.Name(),
			Sampler: j.SamplerName,
			Seed:    j.Config.Seed,
			Cached:  cached[i],
			Result:  o.res,
		})
		rs.byKey[j.Key] = o.res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return rs, nil
}

// execute simulates one job and memoizes its outcome. Errors are cached
// too: a deterministic job fails the same way every time.
func (e *Engine) execute(j *Job) *outcome {
	batch := j.Config.Batch(j.Sample)
	res, err := trainer.Run(j.Config, j.Method, batch)
	o := &outcome{res: res, err: err}
	if e.memoize && j.SamplerName != "" {
		e.mu.Lock()
		e.cache[j.identity()] = o
		e.mu.Unlock()
	}
	return o
}

// ForEach runs fn(0..n-1) across a bounded pool and returns the failure
// with the lowest index, if any. It is the engine's escape hatch for
// deterministic fan-out that is not a trainer job — trace generation,
// dataset sampling — and like Run it never lets pool timing pick which
// error surfaces.
//
// Cancelling ctx stops the fan-out promptly — in-flight fn calls finish,
// no further indices start — and ForEach returns ctx.Err(); cancellation
// takes priority over any error fn returned, since the index set that
// actually ran is timing-dependent once the context fires.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorker(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with a stable worker identity: fn(w, i) runs
// index i on pool worker w, where w is in [0, workers). At most one fn
// call runs per worker at a time, so callers can hand each worker its own
// scratch buffers (the partitioner's parallel solve does exactly this)
// without locking. Everything else matches ForEach: bounded pool,
// lowest-index error, prompt drain on cancellation.
func ForEachWorker(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					continue // drain without running
				}
				errs[i] = fn(w, i)
			}
		}(w)
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CacheSize reports how many distinct configurations the engine has
// memoized over its lifetime.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Keys returns the result set's job keys in submission order.
func (rs *ResultSet) Keys() []string {
	out := make([]string, len(rs.results))
	for i, r := range rs.results {
		out[i] = r.Key
	}
	return out
}
