// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment has a typed runner returning
// structured results plus a Write function that renders the same rows or
// series the paper reports. The cmd/zeppelin CLI and the repository-root
// benchmarks both drive these runners.
//
// Experiment index:
//
//	Fig1    — dataset sequence-length distributions
//	Table2  — evaluation dataset bin proportions
//	Fig3    — attention cost breakdown: packing vs even-split CP
//	Fig5    — operation cost curves and the three-zone boundaries
//	Fig8    — end-to-end throughput across models/datasets/scales
//	Fig9    — scalability, 3B on 16–128 GPUs
//	Fig10   — Cluster A vs Cluster B speedups
//	Fig11   — component ablation
//	Fig12   — attention timeline traces
//	Fig13   — streaming campaign: 200-iteration drifting stream
//	Fig14   — fault-schedule campaigns: failures, stragglers, scaling
//	Fig15   — planner fast-path scaling sweep to 8192 ranks
//	Fig16   — serving scenario: SLO classes, balance vs affinity routing
//	Table3  — per-component cost ranges, balanced vs skewed
package experiments

import (
	"context"
	"fmt"
	"io"

	"zeppelin/internal/baselines"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/runner"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// Sampler builds a batch for a token budget; workload.Dataset.Batch,
// workload.SkewedBatch and workload.BalancedBatch all satisfy it.
type Sampler = runner.Sampler

// Methods returns the paper's four compared systems in Fig. 8 order.
func Methods() []trainer.Method {
	return []trainer.Method{
		baselines.TECP{},
		baselines.LLaMACP{},
		baselines.HybridDP{},
		zeppelin.Full(),
	}
}

// AllMethods additionally includes the input-balanced packing strategy of
// Fig. 2a, which the paper analyzes (Fig. 3a) but does not carry into the
// end-to-end comparison.
func AllMethods() []trainer.Method {
	return append([]trainer.Method{baselines.Packing{}}, Methods()...)
}

// Options control experiment fidelity and execution.
type Options struct {
	// Seeds is the number of independently sampled batches averaged per
	// cell (the paper averages training steps 50–150). Default 3.
	Seeds int
	// Workers bounds the simulation pool; <= 0 selects GOMAXPROCS.
	// Results are identical for every worker count.
	Workers int
	// Engine, when set, executes the grid instead of a fresh engine —
	// sharing one engine across figures memoizes cells they have in
	// common (cmd/zeppelin's `all` does this).
	Engine *runner.Engine
	// Ctx, when set, bounds every grid fan-out of the experiment:
	// cancellation stops the pool between jobs and the experiment
	// returns ctx.Err(). Nil means Background (run to completion).
	Ctx context.Context
}

// ctx returns the experiment's context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// normalized returns options with defaults applied.
func (o Options) normalized() Options {
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	return o
}

// engine returns the shared engine or builds one for this grid.
func (o Options) engine() *runner.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return runner.New(runner.Options{Workers: o.Workers})
}

// workers is the effective pool bound: a shared engine's resolved size
// wins so every fan-out in a figure honors the same cap.
func (o Options) workers() int {
	if o.Engine != nil {
		return o.Engine.Workers()
	}
	return o.Workers
}

// Cell identifies one throughput measurement configuration.
type Cell struct {
	Model        model.Config
	Spec         cluster.Spec
	Nodes        int
	TP           int
	TokensPerGPU int
}

// Config converts a cell into a trainer configuration for one seed.
func (c Cell) Config(seed int64) trainer.Config {
	return trainer.Config{
		Model:        c.Model,
		Spec:         c.Spec,
		Nodes:        c.Nodes,
		TP:           c.TP,
		TokensPerGPU: c.TokensPerGPU,
		Seed:         seed,
	}
}

// SeedValue is the per-seed RNG base every figure and campaign has
// always used; keep it stable so regenerated numbers match earlier
// revisions. cmd/zeppelin's campaign subcommand uses it too, so CLI
// campaigns and fig13 stream identical per-seed batches.
func SeedValue(s int) int64 { return int64(1000 + 37*s) }

// grid accumulates the (cell × method × seed) jobs of one figure and
// remembers which job keys average into which reported mean.
type grid struct {
	jobs   []runner.Job
	groups map[string][]string
}

// add registers `seeds` jobs for one (cell, sampler, method) mean under
// a group key. The sampler name feeds the runner's memo hash, so the
// same cell appearing in two figures simulates once per engine.
func (g *grid) add(group string, cell Cell, sample Sampler, samplerName string, m trainer.Method, seeds int) {
	if seeds <= 0 {
		seeds = 1
	}
	if g.groups == nil {
		g.groups = make(map[string][]string)
	}
	for s := 0; s < seeds; s++ {
		key := fmt.Sprintf("%s/s%d", group, s)
		g.jobs = append(g.jobs, runner.Job{
			Key:         key,
			Config:      cell.Config(SeedValue(s)),
			Method:      m,
			Sample:      sample,
			SamplerName: samplerName,
		})
		g.groups[group] = append(g.groups[group], key)
	}
}

// run executes the grid under ctx and returns per-group seed-averaged
// throughput.
// A group key that did not resolve to a result is an error, so drift
// between a figure's grid-build loop and its readback loop fails loudly
// instead of publishing zeros.
func (g *grid) run(ctx context.Context, eng *runner.Engine) (map[string]float64, error) {
	rs, err := eng.Run(ctx, g.jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(g.groups))
	for group, keys := range g.groups {
		for _, k := range keys {
			if rs.Get(k) == nil {
				return nil, fmt.Errorf("experiments: group %q: no result for job %q", group, k)
			}
		}
		out[group] = rs.MeanTokensPerSec(keys...)
	}
	return out, nil
}

// MeanThroughput runs a method on `seeds` independently sampled batches
// and returns the average tokens/second. It is the single-cell
// convenience wrapper over the runner; figures submit whole grids
// instead so cells fan out across the pool.
func MeanThroughput(ctx context.Context, cell Cell, sample Sampler, m trainer.Method, seeds int) (float64, error) {
	var g grid
	g.add("cell", cell, sample, "", m, seeds)
	means, err := g.run(ctx, runner.New(runner.Options{Workers: 1}))
	if err != nil {
		return 0, err
	}
	return means["cell"], nil
}

// fmtK renders a token count as the paper writes context lengths (64k,
// 2M). Exact multiples keep their integer form; anything else rounds to
// one decimal in the same unit, so a 100000-token budget renders as
// "97.7k" instead of falling back to the raw integer mid-table (the old
// behavior, which mixed "512k" and "100000" in one axis). Counts below
// 1k stay raw — "512" reads better than "0.5k".
func fmtK(tokens int) string {
	const k = 1024
	const m = k * k
	switch {
	case tokens >= m && tokens%m == 0:
		return fmt.Sprintf("%dM", tokens/m)
	case tokens >= m:
		return fmt.Sprintf("%.1fM", float64(tokens)/m)
	case tokens%k == 0 && tokens >= k:
		return fmt.Sprintf("%dk", tokens/k)
	case tokens > k:
		return fmt.Sprintf("%.1fk", float64(tokens)/k)
	default:
		return fmt.Sprintf("%d", tokens)
	}
}

// speedupRow prints one "method: tok/s (x.xx×)" block normalized to the
// first entry, the layout of the Fig. 8 bar annotations.
func speedupRow(w io.Writer, names []string, tput []float64) {
	base := tput[0]
	for i, n := range names {
		ratio := 0.0
		if base > 0 {
			ratio = tput[i] / base
		}
		fmt.Fprintf(w, "    %-28s %10.0f tok/s   %5.2fx\n", n, tput[i], ratio)
	}
}

// Eval datasets in the order every multi-dataset figure uses.
func evalDatasets() []workload.Dataset { return workload.Eval }
