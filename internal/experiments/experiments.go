// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment has a typed runner returning
// structured results plus a Write function that renders the same rows or
// series the paper reports. The cmd/zeppelin CLI and the repository-root
// benchmarks both drive these runners.
//
// Experiment index:
//
//	Fig1    — dataset sequence-length distributions
//	Table2  — evaluation dataset bin proportions
//	Fig3    — attention cost breakdown: packing vs even-split CP
//	Fig5    — operation cost curves and the three-zone boundaries
//	Fig8    — end-to-end throughput across models/datasets/scales
//	Fig9    — scalability, 3B on 16–128 GPUs
//	Fig10   — Cluster A vs Cluster B speedups
//	Fig11   — component ablation
//	Fig12   — attention timeline traces
//	Table3  — per-component cost ranges, balanced vs skewed
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"zeppelin/internal/baselines"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// Sampler builds a batch for a token budget; workload.Dataset.Batch,
// workload.SkewedBatch and workload.BalancedBatch all satisfy it.
type Sampler func(totalTokens int, rng *rand.Rand) []seq.Sequence

// Methods returns the paper's four compared systems in Fig. 8 order.
func Methods() []trainer.Method {
	return []trainer.Method{
		baselines.TECP{},
		baselines.LLaMACP{},
		baselines.HybridDP{},
		zeppelin.Full(),
	}
}

// AllMethods additionally includes the input-balanced packing strategy of
// Fig. 2a, which the paper analyzes (Fig. 3a) but does not carry into the
// end-to-end comparison.
func AllMethods() []trainer.Method {
	return append([]trainer.Method{baselines.Packing{}}, Methods()...)
}

// Options control experiment fidelity.
type Options struct {
	// Seeds is the number of independently sampled batches averaged per
	// cell (the paper averages training steps 50–150). Default 3.
	Seeds int
}

// normalized returns options with defaults applied.
func (o Options) normalized() Options {
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	return o
}

// Cell identifies one throughput measurement configuration.
type Cell struct {
	Model        model.Config
	Spec         cluster.Spec
	Nodes        int
	TP           int
	TokensPerGPU int
}

// Config converts a cell into a trainer configuration for one seed.
func (c Cell) Config(seed int64) trainer.Config {
	return trainer.Config{
		Model:        c.Model,
		Spec:         c.Spec,
		Nodes:        c.Nodes,
		TP:           c.TP,
		TokensPerGPU: c.TokensPerGPU,
		Seed:         seed,
	}
}

// MeanThroughput runs a method on `seeds` independently sampled batches
// and returns the average tokens/second.
func MeanThroughput(cell Cell, sample Sampler, m trainer.Method, seeds int) (float64, error) {
	if seeds <= 0 {
		seeds = 1
	}
	var sum float64
	for s := 0; s < seeds; s++ {
		cfg := cell.Config(int64(1000 + 37*s))
		batch := cfg.Batch(sample)
		res, err := trainer.Run(cfg, m, batch)
		if err != nil {
			return 0, err
		}
		sum += res.TokensPerSec
	}
	return sum / float64(seeds), nil
}

// fmtK renders a token count as the paper writes context lengths (64k).
func fmtK(tokens int) string {
	if tokens%1024 == 0 {
		return fmt.Sprintf("%dk", tokens/1024)
	}
	return fmt.Sprintf("%d", tokens)
}

// speedupRow prints one "method: tok/s (x.xx×)" block normalized to the
// first entry, the layout of the Fig. 8 bar annotations.
func speedupRow(w io.Writer, names []string, tput []float64) {
	base := tput[0]
	for i, n := range names {
		ratio := 0.0
		if base > 0 {
			ratio = tput[i] / base
		}
		fmt.Fprintf(w, "    %-28s %10.0f tok/s   %5.2fx\n", n, tput[i], ratio)
	}
}

// Eval datasets in the order every multi-dataset figure uses.
func evalDatasets() []workload.Dataset { return workload.Eval }
