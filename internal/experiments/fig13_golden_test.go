package experiments

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"
)

// TestFig13Golden pins the 200-iteration drifting-stream campaign
// headline numbers at one seed: campaign tokens/sec, iteration-time
// percentiles, and replan counts for Zeppelin vs. the baselines, plus
// the Zeppelin policy ablation. The campaign is fully deterministic, so
// drift here means a code change silently altered the streaming
// results — if intentional, re-pin and say so in the commit.
func TestFig13Golden(t *testing.T) {
	res, err := Fig13(Options{Seeds: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	type golden struct {
		tput, p50, p99, replans, imb float64
	}
	want := map[string]golden{
		"TE CP/n/a (shape-independent)":    {13025.3852, 5.029242, 5.076541, 0, 1.825673},
		"LLaMA CP/n/a (shape-independent)": {23327.3741, 2.774783, 3.531566, 0, 3.255620},
		"Hybrid DP/threshold(1.30)":        {15356.3324, 4.431812, 6.219856, 173, 1.763733},
		"Zeppelin/threshold(1.30)":         {26551.4429, 2.436357, 3.218084, 173, 1.106429},
		"Zeppelin/always":                  {26517.5368, 2.448087, 3.222904, 200, 1.106429},
		"Zeppelin/never":                   {19440.7133, 3.180205, 5.805281, 1, 1.469465},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		key := row.Method + "/" + row.Policy
		g, ok := want[key]
		if !ok {
			t.Errorf("unexpected campaign row %q", key)
			continue
		}
		near(t, key+"/tput", row.TokensPerSec, g.tput)
		near(t, key+"/p50", row.P50IterTime, g.p50)
		near(t, key+"/p99", row.P99IterTime, g.p99)
		near(t, key+"/replans", row.Replans, g.replans)
		near(t, key+"/imbalance", row.MeanImbalance, g.imb)
	}
	// Headlines: the long-horizon Zeppelin-over-TE-CP speedup, and what
	// online re-planning is worth against a frozen plan under drift.
	near(t, "campaign speedup", Fig13CampaignSpeedup(res), 2.038438)
	near(t, "replan win", Fig13ReplanWin(res), 1.365765)

	// The sample report must carry the full per-iteration stream.
	if res.Sample == nil || len(res.Sample.Records) != Fig13Iters {
		t.Fatalf("sample report missing or truncated: %+v", res.Sample)
	}
	if res.Sample.Summary.Method != "Zeppelin" {
		t.Fatalf("sample report is %q, want Zeppelin", res.Sample.Summary.Method)
	}
}

// TestFig13SerialParallelIdentical is the campaign acceptance invariant:
// the whole drifting-stream grid — per-iteration records included — must
// be bit-identical on one worker and on an oversubscribed pool.
func TestFig13SerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign grid in -short mode")
	}
	serial, err := Fig13(Options{Seeds: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig13(Options{Seeds: 1, Workers: 2 * runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatal("serial and parallel campaign rows differ")
	}
	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(parallel)
	if string(a) != string(b) {
		t.Fatal("serial and parallel campaign artifacts differ")
	}
}
