package experiments

import (
	"fmt"
	"io"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
)

// Fig10Row is one (cluster, dataset) cell with all methods' throughput.
type Fig10Row struct {
	Cluster string
	Dataset string
	Methods []string
	Tput    []float64
}

// Fig10 compares Clusters A and B on the 3B model with a 128k total
// context on 32 GPUs, reproducing the GPU–NIC-affinity comparison.
func Fig10(opts Options) ([]Fig10Row, error) {
	opts = opts.normalized()
	var g grid
	key := func(clusterName, dataset, method string) string {
		return fmt.Sprintf("fig10/%s/%s/%s", clusterName, dataset, method)
	}
	for _, spec := range []cluster.Spec{cluster.ClusterA, cluster.ClusterB} {
		for _, d := range evalDatasets() {
			cell := Cell{
				Model: model.LLaMA3B, Spec: spec, Nodes: 4, TP: 1,
				TokensPerGPU: (128 << 10) / 32,
			}
			for _, m := range Methods() {
				g.add(key(spec.Name, d.Name, m.Name()), cell, d.Batch, d.Name, m, opts.Seeds)
			}
		}
	}
	means, err := g.run(opts.ctx(), opts.engine())
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	var out []Fig10Row
	for _, spec := range []cluster.Spec{cluster.ClusterA, cluster.ClusterB} {
		for _, d := range evalDatasets() {
			row := Fig10Row{Cluster: spec.Name, Dataset: d.Name}
			for _, m := range Methods() {
				row.Methods = append(row.Methods, m.Name())
				row.Tput = append(row.Tput, means[key(spec.Name, d.Name, m.Name())])
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// WriteFig10 renders both clusters' speedup comparisons.
func WriteFig10(w io.Writer, opts Options) error {
	rows, err := Fig10(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 10: 3B, 128k context, 32 GPUs — Cluster A vs Cluster B")
	current := ""
	for _, r := range rows {
		if r.Cluster != current {
			current = r.Cluster
			fmt.Fprintf(w, "\nCluster %s:\n", r.Cluster)
		}
		fmt.Fprintf(w, "  %s:\n", r.Dataset)
		speedupRow(w, r.Methods, r.Tput)
	}
	return nil
}
