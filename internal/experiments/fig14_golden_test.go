package experiments

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"
)

// TestFig14Golden pins the fault-and-elasticity campaign headline
// numbers at one seed: per-(scenario, method) campaign goodput, the
// goodput ratio against the method's own healthy run, recovery
// footprints, and the Zeppelin-over-TE-CP degradation edges. Every
// campaign is fully deterministic, so drift here means a code change
// silently altered the faulted results — if intentional, re-pin and say
// so in the commit.
func TestFig14Golden(t *testing.T) {
	res, err := Fig14(Options{Seeds: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	type golden struct {
		tput, ratio, p99 float64
		recovery         int
		replans          float64
	}
	want := map[string]golden{
		"healthy/TE CP":       {13816.3724, 1.000000, 7.137836, 0, 0},
		"healthy/LLaMA CP":    {27747.8257, 1.000000, 4.089933, 0, 0},
		"healthy/Hybrid DP":   {25371.7282, 1.000000, 6.378225, 0, 198},
		"healthy/Zeppelin":    {40428.9452, 1.000000, 4.715038, 0, 198},
		"straggler/TE CP":     {12585.9062, 0.910941, 8.524114, 100, 0},
		"straggler/LLaMA CP":  {21310.6154, 0.768010, 6.811404, 109, 0},
		"straggler/Hybrid DP": {21782.7050, 0.858542, 7.245118, 81, 198},
		"straggler/Zeppelin":  {39315.5214, 0.972460, 4.734798, 57, 199},
		"failstop/TE CP":      {13346.9501, 0.966024, 7.139616, 1, 0},
		"failstop/LLaMA CP":   {26143.6250, 0.942186, 4.117038, 28, 0},
		"failstop/Hybrid DP":  {23544.7114, 0.927990, 7.163151, 37, 195},
		"failstop/Zeppelin":   {35483.3947, 0.877673, 4.737031, 88, 195},
		"shrink/TE CP":        {12680.6783, 0.917801, 8.987074, 60, 0},
		"shrink/LLaMA CP":     {22008.1432, 0.793148, 7.702157, 82, 0},
		"shrink/Hybrid DP":    {21370.6075, 0.842300, 9.337365, 73, 194},
		"shrink/Zeppelin":     {38310.6339, 0.947604, 4.345385, 79, 194},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		key := row.Scenario + "/" + row.Method
		g, ok := want[key]
		if !ok {
			t.Errorf("unexpected fig14 row %q", key)
			continue
		}
		near(t, key+"/tput", row.TokensPerSec, g.tput)
		near(t, key+"/ratio", row.GoodputRatio, g.ratio)
		near(t, key+"/p99", row.P99IterTime, g.p99)
		near(t, key+"/replans", row.Replans, g.replans)
		if row.RecoveryIters != g.recovery {
			t.Errorf("%s/recovery = %d, want %d", key, row.RecoveryIters, g.recovery)
		}
	}

	// The headline acceptance invariant: Zeppelin's goodput degrades
	// strictly less than TE CP's under the straggler and elastic-shrink
	// scenarios — speed-aware replanning absorbs faults that even splits
	// must ride out.
	near(t, "straggler edge", Fig14DegradationEdge(res, "straggler"), 1.067533)
	near(t, "shrink edge", Fig14DegradationEdge(res, "shrink"), 1.032472)
	for _, scen := range []string{"straggler", "shrink"} {
		zep, te := Fig14Ratio(res, scen, "Zeppelin"), Fig14Ratio(res, scen, "TE CP")
		if zep <= te {
			t.Errorf("%s: Zeppelin ratio %.4f must strictly exceed TE CP's %.4f", scen, zep, te)
		}
	}
	// The honest counterpoint stays pinned too: a fail-stop's fixed
	// checkpoint-restart charge costs the fastest system the most
	// relative goodput.
	near(t, "failstop edge", Fig14DegradationEdge(res, "failstop"), 0.908541)

	// Every scenario carries a full Zeppelin sample report; faulted ones
	// must surface fault markers for the timeline renderer.
	for _, scen := range res.Scenarios {
		sample := res.Samples[scen]
		if sample == nil || len(sample.Records) != Fig14Iters {
			t.Fatalf("scenario %s: sample report missing or truncated", scen)
		}
		events := 0
		for _, rec := range sample.Records {
			events += len(rec.Events)
		}
		if scen == "healthy" && events != 0 {
			t.Errorf("healthy sample carries %d fault events", events)
		}
		if scen != "healthy" && events == 0 {
			t.Errorf("scenario %s: sample report has no fault/recovery markers", scen)
		}
	}
}

// TestFig14SerialParallelIdentical extends the campaign acceptance
// invariant to the fault grid: the whole fault-and-elasticity grid —
// per-iteration records, markers, and migrations included — must be
// bit-identical on one worker and on an oversubscribed pool.
func TestFig14SerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault grid in -short mode")
	}
	serial, err := Fig14(Options{Seeds: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig14(Options{Seeds: 1, Workers: 2 * runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatal("serial and parallel fault-grid rows differ")
	}
	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(parallel)
	if string(a) != string(b) {
		t.Fatal("serial and parallel fault-grid artifacts differ")
	}
}
