package experiments

import (
	"fmt"
	"io"

	"zeppelin/internal/campaign"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/trace"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// Fig13 is the campaign experiment the paper stops short of: the four
// compared systems driven through a 200-iteration drifting stream
// (arxiv → github → prolong64k) on the 7B / 16-GPU Cluster A cell, with
// the shape-dependent methods under threshold replanning, plus a policy
// ablation running Zeppelin under always/never replanning. It measures
// what the one-shot figures cannot — how balance survives workload
// drift when replanning has a cost.

// Fig13Iters is the campaign horizon.
const Fig13Iters = 200

// CampaignCell is the streaming campaign cell: the first Fig. 8 panel's
// configuration (7B, 16 GPUs, Cluster A). The fig13 grid and the CLI
// campaign subcommand both stream over it.
func CampaignCell(seed int64) trainer.Config {
	return trainer.Config{
		Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 2, TP: 1,
		TokensPerGPU: 4096, Seed: seed,
	}
}

// fig13Arrival is the drifting stream all rows share.
func fig13Arrival() campaign.Arrival {
	return campaign.Drift{
		Path:  []workload.Dataset{workload.ArXiv, workload.GitHub, workload.ProLong64k},
		Iters: Fig13Iters,
	}
}

// TuneScenario returns the closed-loop tuning scenario: the fig13 drift
// cell under Zeppelin, compressed to the given horizon (zero selects the
// full Fig13Iters). The factory is pure — every call builds an
// independent Config with a fresh method instance — so tune evaluations
// can fan out concurrently. The seed argument is the seed index, mapped
// through SeedValue like every other experiment grid.
func TuneScenario(iters int) func(seed int64) campaign.Config {
	if iters <= 0 {
		iters = Fig13Iters
	}
	return func(seed int64) campaign.Config {
		return campaign.Config{
			Trainer: CampaignCell(SeedValue(int(seed))),
			Method:  zeppelin.Full(),
			Iters:   iters,
			Arrival: campaign.Drift{
				Path:  []workload.Dataset{workload.ArXiv, workload.GitHub, workload.ProLong64k},
				Iters: iters,
			},
		}
	}
}

// fig13Rows enumerates the campaign grid: every method under the
// threshold controller, then the Zeppelin policy ablation.
func fig13Rows() []struct {
	Method trainer.Method
	Policy campaign.Policy
} {
	rows := make([]struct {
		Method trainer.Method
		Policy campaign.Policy
	}, 0, 6)
	for _, m := range Methods() {
		rows = append(rows, struct {
			Method trainer.Method
			Policy campaign.Policy
		}{m, campaign.Threshold{}})
	}
	for _, p := range []campaign.Policy{campaign.Always{}, campaign.Never{}} {
		rows = append(rows, struct {
			Method trainer.Method
			Policy campaign.Policy
		}{zeppelin.Full(), p})
	}
	return rows
}

// Fig13Result is the experiment's structured output: the seed-averaged
// row summaries plus one full per-iteration report (Zeppelin under
// threshold replanning, first seed) for timeline rendering and
// downstream analysis.
type Fig13Result struct {
	Iters   int                   `json:"iters"`
	Arrival string                `json:"arrival"`
	Rows    []campaign.RowSummary `json:"rows"`
	Sample  *campaign.Report      `json:"sample"`
}

// Fig13 runs the campaign grid. Each (row × seed) campaign is an
// independent deterministic simulation, so the grid fans out across the
// worker pool via runner.ForEach with bit-identical results at every
// pool size.
func Fig13(opts Options) (*Fig13Result, error) {
	opts = opts.normalized()
	rows := fig13Rows()
	// Row-major (row × seed) grid: seeds of one row stay adjacent.
	var cfgs []campaign.Config
	for _, row := range rows {
		for s := 0; s < opts.Seeds; s++ {
			cfgs = append(cfgs, campaign.Config{
				Trainer: CampaignCell(SeedValue(s)),
				Method:  row.Method,
				Iters:   Fig13Iters,
				Arrival: fig13Arrival(),
				Policy:  row.Policy,
			})
		}
	}
	reports, err := campaign.RunGrid(opts.ctx(), cfgs, opts.workers())
	if err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}

	res := &Fig13Result{Iters: Fig13Iters, Arrival: fig13Arrival().Name()}
	for r := range rows {
		cell := reports[r*opts.Seeds : (r+1)*opts.Seeds]
		res.Rows = append(res.Rows, campaign.Summarize(cell))
		// The sample report: Zeppelin under threshold replanning, seed 0.
		if res.Sample == nil && cell[0].Summary.Method == "Zeppelin" {
			res.Sample = cell[0]
		}
	}
	return res, nil
}

// Fig13CampaignSpeedup returns the Zeppelin-over-TE-CP campaign
// throughput ratio — the long-horizon analogue of the Fig. 8 headline.
func Fig13CampaignSpeedup(res *Fig13Result) float64 {
	var te, zep float64
	for _, row := range res.Rows {
		switch row.Method {
		case "TE CP":
			te = row.TokensPerSec
		case "Zeppelin":
			if zep == 0 { // first Zeppelin row is the threshold one
				zep = row.TokensPerSec
			}
		}
	}
	if te == 0 {
		return 0
	}
	return zep / te
}

// Fig13ReplanWin returns the threshold-over-never Zeppelin throughput
// ratio: what online re-planning is worth under drift.
func Fig13ReplanWin(res *Fig13Result) float64 {
	var thresh, never float64
	for _, row := range res.Rows {
		if row.Method != "Zeppelin" {
			continue
		}
		switch {
		case row.Policy == "never":
			never = row.TokensPerSec
		case thresh == 0:
			thresh = row.TokensPerSec
		}
	}
	if never == 0 {
		return 0
	}
	return thresh / never
}

// WriteFig13 renders the campaign table and the sample timeline.
func WriteFig13(w io.Writer, opts Options) error {
	res, err := Fig13(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 13: %d-iteration streaming campaign, %s, 7B, 16 GPUs (Cluster A)\n\n",
		res.Iters, res.Arrival)
	campaign.WriteRowTable(w, res.Rows)
	fmt.Fprintf(w, "\ncampaign Zeppelin speedup over TE CP: %.2fx\n", Fig13CampaignSpeedup(res))
	fmt.Fprintf(w, "threshold replanning over frozen plan: %.2fx\n", Fig13ReplanWin(res))
	if res.Sample != nil {
		fmt.Fprintf(w, "\nZeppelin threshold campaign (seed 0):\n")
		trace.CampaignTimeline(w, res.Sample.TraceRows(), 60, 25)
	}
	return nil
}
