package experiments

import (
	"testing"
)

// TestFig8HeadlineShape runs the full Fig. 8 grid (single batch per cell)
// and asserts the paper's headline claims: Zeppelin wins every cell and
// the average speedup lands near 2.80×. Skipped under -short (the grid
// simulates 144 training iterations).
func TestFig8HeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 8 grid is slow")
	}
	panels, err := Fig8(Options{Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 12 {
		t.Fatalf("want 12 panels, got %d", len(panels))
	}
	for _, p := range panels {
		for di, row := range p.Tput {
			best := 0
			for i := range row {
				if row[i] > row[best] {
					best = i
				}
			}
			// Zeppelin must win, with a small tolerance for its one
			// narrow-margin cell (30B/64k/prolong — the paper's tightest
			// margin too, 1.60x vs LLaMA CP's 1.45x).
			z := row[len(row)-1]
			if p.Methods[best] != "Zeppelin" && z < row[best]*0.80 {
				t.Errorf("%s/%s/%s %d GPUs: %s wins (%v)",
					p.Model, fmtK(p.Context), p.Datasets[di], p.GPUs, p.Methods[best], row)
			}
		}
	}
	avg := AverageSpeedup(panels)
	if avg < 2.0 || avg > 4.5 {
		t.Errorf("average speedup %.2fx outside the paper's plausible band (2.80x)", avg)
	}
	if mx := MaxSpeedup(panels); mx < 4.0 || mx > 10.0 {
		t.Errorf("max speedup %.2fx far from the paper's 6.60x", mx)
	}
}

// TestFig9ScalabilityShape asserts the scalability figure's qualitative
// content: TE CP is flat, Zeppelin scales and stays on top everywhere.
func TestFig9ScalabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 9 sweep is slow")
	}
	series, err := Fig9(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig9Series{}
	for _, s := range series {
		byKey[s.Dataset+"/"+s.Method] = s
	}
	for _, d := range []string{"arxiv", "github", "prolong64k"} {
		te := byKey[d+"/TE CP"]
		z := byKey[d+"/Zeppelin"]
		if te.Tput[len(te.Tput)-1] > te.Tput[0]*1.5 {
			t.Errorf("%s: TE CP should be nearly flat: %v", d, te.Tput)
		}
		if z.Tput[len(z.Tput)-1] < z.Tput[0]*1.5 {
			t.Errorf("%s: Zeppelin should scale: %v", d, z.Tput)
		}
		for i := range z.GPUs {
			for _, m := range []string{"TE CP", "LLaMA CP", "Hybrid DP"} {
				if b := byKey[d+"/"+m]; z.Tput[i] < b.Tput[i]*0.95 {
					t.Errorf("%s @%d GPUs: Zeppelin %.0f below %s %.0f",
						d, z.GPUs[i], z.Tput[i], m, b.Tput[i])
				}
			}
		}
	}
}

// TestFig10Shape asserts Cluster B is absolutely faster for every method
// and ordering is preserved.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster comparison is slow")
	}
	rows, err := Fig10(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	byCluster := map[string]map[string][]float64{}
	for _, r := range rows {
		if byCluster[r.Cluster] == nil {
			byCluster[r.Cluster] = map[string][]float64{}
		}
		byCluster[r.Cluster][r.Dataset] = r.Tput
	}
	for d, a := range byCluster["A"] {
		b := byCluster["B"][d]
		for i := range a {
			if b[i] <= a[i] {
				t.Errorf("%s method %d: Cluster B (%.0f) should beat A (%.0f)", d, i, b[i], a[i])
			}
		}
		if a[len(a)-1] <= a[0] || b[len(b)-1] <= b[0] {
			t.Errorf("%s: Zeppelin must beat TE CP on both clusters", d)
		}
	}
}
