package experiments

import (
	"fmt"
	"io"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
)

// Fig9Series is throughput vs GPU count for one dataset and one method.
type Fig9Series struct {
	Dataset string
	Method  string
	GPUs    []int
	Tput    []float64
}

// Fig9GPUCounts are the paper's x-axis points (multiples of the 8-GPU
// node size between 16 and 128).
var Fig9GPUCounts = []int{16, 32, 64, 96, 128}

// Fig9 evaluates scalability of the LLaMA 3B model on Cluster A with a
// fixed 4k tokens per GPU, across 16–128 GPUs, as one concurrent grid.
func Fig9(opts Options) ([]Fig9Series, error) {
	opts = opts.normalized()
	var g grid
	key := func(dataset, method string, gpus int) string {
		return fmt.Sprintf("fig9/%s/%s/%d", dataset, method, gpus)
	}
	for _, d := range evalDatasets() {
		for _, m := range Methods() {
			for _, gpus := range Fig9GPUCounts {
				cell := Cell{
					Model: model.LLaMA3B, Spec: cluster.ClusterA,
					Nodes: gpus / 8, TP: 1, TokensPerGPU: 4096,
				}
				g.add(key(d.Name, m.Name(), gpus), cell, d.Batch, d.Name, m, opts.Seeds)
			}
		}
	}
	means, err := g.run(opts.ctx(), opts.engine())
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	var out []Fig9Series
	for _, d := range evalDatasets() {
		for _, m := range Methods() {
			s := Fig9Series{Dataset: d.Name, Method: m.Name()}
			for _, gpus := range Fig9GPUCounts {
				s.GPUs = append(s.GPUs, gpus)
				s.Tput = append(s.Tput, means[key(d.Name, m.Name(), gpus)])
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// WriteFig9 renders one table per dataset, methods as rows and GPU counts
// as columns.
func WriteFig9(w io.Writer, opts Options) error {
	series, err := Fig9(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9: scalability, LLaMA 3B on Cluster A, 4k tokens/GPU (tok/s)")
	byDataset := map[string][]Fig9Series{}
	var order []string
	for _, s := range series {
		if _, ok := byDataset[s.Dataset]; !ok {
			order = append(order, s.Dataset)
		}
		byDataset[s.Dataset] = append(byDataset[s.Dataset], s)
	}
	for _, d := range order {
		fmt.Fprintf(w, "\n%s:\n%-28s", d, "method")
		for _, g := range Fig9GPUCounts {
			fmt.Fprintf(w, "%10d", g)
		}
		fmt.Fprintln(w)
		for _, s := range byDataset[d] {
			fmt.Fprintf(w, "%-28s", s.Method)
			for _, tp := range s.Tput {
				fmt.Fprintf(w, "%10.0f", tp)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
