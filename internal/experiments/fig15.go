package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"zeppelin/internal/campaign"
	"zeppelin/internal/cluster"
	"zeppelin/internal/partition"
	"zeppelin/internal/runner"
	"zeppelin/internal/seq"
	"zeppelin/internal/workload"
)

// Fig15 is the planner fast-path scaling sweep, an experiment the paper
// has no analogue for: it measures *planning latency* — the host-side
// cost that bounds streaming-campaign goodput once re-planning is a
// per-iteration hot path — rather than simulated iteration time. Worlds
// of 64 → 8192 data-parallel ranks plan a churning high-multiplicity
// stream (FineWeb-shaped arrivals, ~5% of sequences replaced per
// iteration) twice: once through the full hierarchical solve (fanned
// across solve workers — bit-identical to the serial path at every
// worker count), once through the incremental planner (keyed plan cache
// + delta patching).
// Each cell reports plan-latency p50/p95, allocations per plan, the
// incremental mode split, and the worst cost ratio of incremental over
// full plans — the sweep is self-verifying: speed must not buy imbalance
// beyond the configured drift.
//
// Latencies are wall-clock and hence machine-dependent; the structural
// outputs (mode splits, cost ratios) are deterministic. The authoritative
// allocation numbers come from `go test -bench Fig15 -benchmem`, which
// exercises the same stream through the same planners.

// Fig15Iters is the per-cell planning-stream length.
const Fig15Iters = 24

// Fig15ChurnFrac is the per-iteration fraction of sequences replaced.
const Fig15ChurnFrac = 0.05

// Fig15MaxDeltaFrac is the incremental planner's patch admission bound
// used by the sweep and the benchmarks.
const Fig15MaxDeltaFrac = 0.25

// Fig15Ranks are the swept world sizes (data-parallel ranks; nodes of 8).
// The tail doubles to 8192 ranks — feasible as a routine sweep because
// the full solve fans across workers (see partition.Config.SolveWorkers).
var Fig15Ranks = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// Fig15Series is one planning mode's measurement within a cell.
type Fig15Series struct {
	P50Micros     float64 `json:"p50_micros"`
	P95Micros     float64 `json:"p95_micros"`
	AllocsPerPlan float64 `json:"allocs_per_plan"`
}

// Fig15Cell is one world size's full-vs-incremental comparison.
type Fig15Cell struct {
	Ranks int `json:"ranks"`
	Nodes int `json:"nodes"`
	// Seqs is the mean batch size (sequences) of the cell's stream.
	Seqs int `json:"seqs"`

	Full        Fig15Series `json:"full"`
	Incremental Fig15Series `json:"incremental"`

	// Modes is the incremental planner's decision split over the stream.
	Modes partition.Counters `json:"modes"`
	// SpeedupP50 is full p50 latency over incremental p50.
	SpeedupP50 float64 `json:"speedup_p50"`
	// MaxCostRatio is the worst per-iteration LoadImbalance ratio of the
	// incremental plan over the full solve (1.0 = always cost-equal).
	MaxCostRatio float64 `json:"max_cost_ratio"`
}

// Fig15Result is the experiment's structured output.
type Fig15Result struct {
	Iters int         `json:"iters"`
	Churn float64     `json:"churn_frac"`
	Cells []Fig15Cell `json:"cells"`
}

// Fig15PlanConfig is the partition configuration of a sweep cell: nodes
// of Cluster A (8 GPUs each) at the default campaign capacity regime.
func Fig15PlanConfig(ranks int) partition.Config {
	return partition.Config{
		Cluster:        cluster.MustNew(cluster.ClusterA, ranks/cluster.ClusterA.GPUsPerNode),
		CapacityTokens: 5120, // 1.25 × the 4k per-rank budget, the default L
	}
}

// Fig15Stream pre-generates a cell's deterministic planning stream: a
// FineWeb batch at ~90% fill followed by churned successors. The same
// stream drives both planning modes (and the repository benchmarks), so
// comparisons are batch-for-batch.
func Fig15Stream(ranks, iters int) [][]seq.Sequence {
	rng := rand.New(rand.NewSource(4242))
	budget := ranks * 4096 * 9 / 10
	batch := workload.FineWeb.Batch(budget, rng)
	out := make([][]seq.Sequence, 0, iters)
	out = append(out, batch)
	nextID := 1 << 24
	for i := 1; i < iters; i++ {
		batch, nextID = churnBatch(batch, rng, Fig15ChurnFrac, nextID)
		out = append(out, batch)
	}
	return out
}

// churnBatch replaces roughly frac of the batch's sequences (bounded at
// ~10% of its tokens) with fresh short arrivals of matching total,
// guaranteeing at least one change per step.
func churnBatch(batch []seq.Sequence, rng *rand.Rand, frac float64, nextID int) ([]seq.Sequence, int) {
	total := seq.TotalLen(batch)
	budget := total / 10
	out := make([]seq.Sequence, 0, len(batch))
	removed := 0
	for _, s := range batch {
		if removed+s.Len <= budget && rng.Float64() < frac {
			removed += s.Len
			continue
		}
		out = append(out, s)
	}
	if removed == 0 && len(out) > 0 {
		removed = out[len(out)-1].Len
		out = out[:len(out)-1]
	}
	for removed > 256 {
		l := 256 + rng.Intn(1024)
		if l > removed {
			l = removed
		}
		out = append(out, seq.Sequence{ID: nextID, Len: l})
		nextID++
		removed -= l
	}
	return out, nextID
}

// Fig15 runs the sweep. Stream generation (the data-heavy part) fans out
// across the worker pool; the latency/allocation measurement itself runs
// serially so cells never time each other's noise.
func Fig15(opts Options) (*Fig15Result, error) {
	opts = opts.normalized()
	streams := make([][][]seq.Sequence, len(Fig15Ranks))
	err := runner.ForEach(opts.ctx(), opts.workers(), len(Fig15Ranks), func(i int) error {
		streams[i] = Fig15Stream(Fig15Ranks[i], Fig15Iters)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}
	res := &Fig15Result{Iters: Fig15Iters, Churn: Fig15ChurnFrac}
	for i, ranks := range Fig15Ranks {
		cell, err := fig15Cell(ranks, streams[i], fig15SolveWorkers(opts.workers()))
		if err != nil {
			return nil, fmt.Errorf("fig15: %d ranks: %w", ranks, err)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// fig15SolveWorkers resolves the experiment worker option into the
// partitioner's solve fan-out (<= 0 selects GOMAXPROCS, like the pool).
func fig15SolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Fig15Bench measures a single world size over a fresh stream of the
// given length — the entry point `zeppelin bench` uses so CLI bench runs
// and the fig15 sweep share one measurement path. solveWorkers fans the
// full solve (<= 1 keeps the historical serial path; results are
// bit-identical either way).
func Fig15Bench(ranks, iters, solveWorkers int) (Fig15Cell, error) {
	if ranks < cluster.ClusterA.GPUsPerNode || ranks%cluster.ClusterA.GPUsPerNode != 0 {
		return Fig15Cell{}, fmt.Errorf("fig15: ranks must be a positive multiple of %d, got %d",
			cluster.ClusterA.GPUsPerNode, ranks)
	}
	if iters < 2 {
		return Fig15Cell{}, fmt.Errorf("fig15: need >= 2 iterations, got %d", iters)
	}
	return fig15Cell(ranks, Fig15Stream(ranks, iters), solveWorkers)
}

// fig15Cell measures one world size on a pre-generated stream.
func fig15Cell(ranks int, stream [][]seq.Sequence, solveWorkers int) (Fig15Cell, error) {
	cfg := Fig15PlanConfig(ranks)
	cfg.SolveWorkers = solveWorkers
	cell := Fig15Cell{Ranks: ranks, Nodes: cfg.Cluster.Nodes, MaxCostRatio: 1}
	var seqs int
	for _, b := range stream {
		seqs += len(b)
	}
	cell.Seqs = seqs / len(stream)

	full, err := partition.New(cfg)
	if err != nil {
		return cell, err
	}
	fullImb := make([]float64, len(stream))
	fullLat := make([]float64, len(stream))
	fullAllocs, err := measure(len(stream), fullLat, func(i int) (*seq.Plan, error) {
		r, err := full.Plan(stream[i])
		if err != nil {
			return nil, err
		}
		return r.Plan, nil
	}, fullImb)
	if err != nil {
		return cell, err
	}

	inc := partition.NewIncremental(partition.IncrementalConfig{MaxDeltaFrac: Fig15MaxDeltaFrac})
	incImb := make([]float64, len(stream))
	incLat := make([]float64, len(stream))
	incAllocs, err := measure(len(stream), incLat, func(i int) (*seq.Plan, error) {
		r, _, err := inc.Plan(cfg, stream[i])
		if err != nil {
			return nil, err
		}
		return r.Plan, nil
	}, incImb)
	if err != nil {
		return cell, err
	}

	cell.Full = Fig15Series{
		P50Micros:     campaign.Percentile(fullLat, 50),
		P95Micros:     campaign.Percentile(fullLat, 95),
		AllocsPerPlan: fullAllocs,
	}
	cell.Incremental = Fig15Series{
		P50Micros:     campaign.Percentile(incLat, 50),
		P95Micros:     campaign.Percentile(incLat, 95),
		AllocsPerPlan: incAllocs,
	}
	cell.Modes = inc.Counters()
	if cell.Incremental.P50Micros > 0 {
		cell.SpeedupP50 = cell.Full.P50Micros / cell.Incremental.P50Micros
	}
	for i := range stream {
		if fullImb[i] > 0 {
			if r := incImb[i] / fullImb[i]; r > cell.MaxCostRatio {
				cell.MaxCostRatio = r
			}
		}
	}
	return cell, nil
}

// measure times one planning pass, filling latencies (µs) and imbalances,
// and returns the mean allocations per plan (Mallocs delta — exact while
// the pass runs alone, which Fig15 guarantees by measuring serially).
// The cost-verification pass runs after the second MemStats read so its
// own allocations never contaminate AllocsPerPlan.
func measure(n int, latMicros []float64, plan func(i int) (*seq.Plan, error), imb []float64) (float64, error) {
	plans := make([]*seq.Plan, n)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		p, err := plan(i)
		latMicros[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
		if err != nil {
			return 0, err
		}
		plans[i] = p
	}
	runtime.ReadMemStats(&m1)
	for i, p := range plans {
		imb[i] = partition.LoadImbalance(p, nil)
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(n), nil
}

// WriteFig15 renders the sweep table.
func WriteFig15(w io.Writer, opts Options) error {
	res, err := Fig15(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 15: planner fast path, %d-iteration stream (%.0f%% churn), full vs incremental\n\n",
		res.Iters, res.Churn*100)
	fmt.Fprintf(w, "  %6s %6s %6s | %10s %10s | %10s %10s | %7s | %5s %7s %6s | %6s\n",
		"ranks", "nodes", "seqs",
		"full p50", "p95 (µs)", "inc p50", "p95 (µs)", "speedup",
		"full", "patched", "cached", "cost")
	for _, c := range res.Cells {
		fmt.Fprintf(w, "  %6d %6d %6d | %10.0f %10.0f | %10.0f %10.0f | %6.1fx | %5d %7d %6d | %5.3fx\n",
			c.Ranks, c.Nodes, c.Seqs,
			c.Full.P50Micros, c.Full.P95Micros,
			c.Incremental.P50Micros, c.Incremental.P95Micros,
			c.SpeedupP50,
			c.Modes.Full, c.Modes.Patched, c.Modes.Cached,
			c.MaxCostRatio)
	}
	fmt.Fprintf(w, "\n  allocations per plan (full vs incremental):\n")
	for _, c := range res.Cells {
		fmt.Fprintf(w, "  %6d ranks: %8.0f vs %8.0f\n", c.Ranks, c.Full.AllocsPerPlan, c.Incremental.AllocsPerPlan)
	}
	return nil
}

// Fig15ScalingSpeedup returns the p50 speedup at the largest world.
func Fig15ScalingSpeedup(res *Fig15Result) float64 {
	if len(res.Cells) == 0 {
		return 0
	}
	return res.Cells[len(res.Cells)-1].SpeedupP50
}
