package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"zeppelin/internal/cluster"
	"zeppelin/internal/costmodel"
	"zeppelin/internal/model"
	"zeppelin/internal/workload"
)

// Fig5Point is one sequence length's operation costs (seconds).
type Fig5Point struct {
	Length    int
	AttnComp  float64
	Linear    float64
	IntraSend float64
	InterSend float64
}

// Fig5Result carries the cost curves, the derived zone boundaries, and
// each dataset's token mass per zone.
type Fig5Result struct {
	Points []Fig5Point
	// S0 is the local/intra boundary, S1 the intra/inter boundary.
	S0, S1 float64
	// ZoneShare[dataset] = [local, intra, inter] token-mass fractions.
	ZoneShare map[string][3]float64
}

// Fig5 evaluates the A800 cost curves of the motivating figure: attention
// computation, linear computation, and KV send-receive over NVSwitch and
// over one NIC, for lengths 1k–64k; the curve crossings define the three
// placement zones.
func Fig5() Fig5Result {
	cm := costmodel.MustNew(model.LLaMA7B, cluster.ClusterA, 1)
	res := Fig5Result{
		S0:        cm.LocalIntraBoundary(),
		S1:        cm.IntraInterBoundary(),
		ZoneShare: make(map[string][3]float64),
	}
	for s := 1 << 10; s <= 64<<10; s *= 2 {
		kv := cm.KVBytes(float64(s))
		res.Points = append(res.Points, Fig5Point{
			Length:    s,
			AttnComp:  cm.CausalAttnTime(float64(s)),
			Linear:    cm.LinearTime(float64(s)),
			IntraSend: cm.IntraTime(kv),
			InterSend: cm.InterTime(kv),
		})
	}
	rng := rand.New(rand.NewSource(5))
	for _, d := range []workload.Dataset{workload.ArXiv, workload.GitHub, workload.FineWeb, workload.ProLong64k} {
		batch := d.Batch(4<<20, rng)
		var share [3]float64
		var total float64
		for _, s := range batch {
			l := float64(s.Len)
			total += l
			switch {
			case l < res.S0:
				share[0] += l
			case l < res.S1:
				share[1] += l
			default:
				share[2] += l
			}
		}
		for i := range share {
			share[i] /= total
		}
		res.ZoneShare[d.Name] = share
	}
	return res
}

// WriteFig5 renders the curves and zone analysis.
func WriteFig5(w io.Writer) {
	r := Fig5()
	fmt.Fprintln(w, "Figure 5: operation cost vs sequence length (A800, 400 GB/s NVSwitch, 200 Gb/s NIC)")
	fmt.Fprintf(w, "%8s %14s %14s %16s %16s\n", "length", "attention (ms)", "linear (ms)", "intra s/r (ms)", "inter s/r (ms)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %14.3f %14.3f %16.3f %16.3f\n",
			p.Length, p.AttnComp*1e3, p.Linear*1e3, p.IntraSend*1e3, p.InterSend*1e3)
	}
	fmt.Fprintf(w, "\nzone boundaries: local < %.0f tokens <= intra-node < %.0f tokens <= inter-node\n", r.S0, r.S1)
	fmt.Fprintln(w, "\ntoken mass per zone:")
	fmt.Fprintf(w, "%-14s %10s %12s %12s\n", "dataset", "local", "intra-node", "inter-node")
	for _, name := range []string{"arxiv", "github", "fineweb", "prolong64k"} {
		s := r.ZoneShare[name]
		fmt.Fprintf(w, "%-14s %9.1f%% %11.1f%% %11.1f%%\n", name, 100*s[0], 100*s[1], 100*s[2])
	}
}
