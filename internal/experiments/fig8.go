package experiments

import (
	"fmt"
	"io"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
)

// Fig8Panel is one (model, context, GPUs) grid cell of the end-to-end
// throughput figure: tokens/second per dataset per method.
type Fig8Panel struct {
	Model   string
	Context int // total tokens
	GPUs    int
	Cluster string
	TP      int
	// Tput[dataset][method] in Fig. 8 order.
	Datasets []string
	Methods  []string
	Tput     [][]float64
}

// fig8Cells enumerates the paper's twelve panels: 7B / 13B / 8×550M on
// Cluster A (TP=2 for 13B) and 30B on Cluster C with TP=2, each at total
// contexts 64k/128k/256k with GPU counts scaled to keep ~4k tokens per
// DP rank.
func fig8Cells() []Cell {
	var cells []Cell
	add := func(mc model.Config, spec cluster.Spec, tp int, scales [][2]int) {
		for _, sc := range scales {
			ctx, gpus := sc[0]<<10, sc[1]
			cells = append(cells, Cell{
				Model: mc, Spec: spec, Nodes: gpus / spec.GPUsPerNode, TP: tp,
				TokensPerGPU: ctx / gpus,
			})
		}
	}
	add(model.LLaMA7B, cluster.ClusterA, 1, [][2]int{{64, 16}, {128, 32}, {256, 64}})
	add(model.LLaMA13B, cluster.ClusterA, 2, [][2]int{{64, 32}, {128, 64}, {256, 128}})
	add(model.MoE8x550M, cluster.ClusterA, 1, [][2]int{{64, 16}, {128, 32}, {256, 64}})
	add(model.LLaMA30B, cluster.ClusterC, 2, [][2]int{{64, 32}, {128, 64}, {256, 128}})
	return cells
}

// Fig8 runs the full end-to-end grid: all (panel × dataset × method ×
// seed) cells are submitted as one job grid and fan out across the
// runner's worker pool.
func Fig8(opts Options) ([]Fig8Panel, error) {
	opts = opts.normalized()
	methods := Methods()
	var names []string
	for _, m := range methods {
		names = append(names, m.Name())
	}
	cells := fig8Cells()
	var g grid
	key := func(cell Cell, dataset, method string) string {
		return fmt.Sprintf("fig8/%s/%s/%s/%s",
			cell.Model.Name, fmtK(cell.TokensPerGPU*cell.Nodes*cell.Spec.GPUsPerNode), dataset, method)
	}
	for _, cell := range cells {
		for _, d := range evalDatasets() {
			for _, m := range methods {
				g.add(key(cell, d.Name, m.Name()), cell, d.Batch, d.Name, m, opts.Seeds)
			}
		}
	}
	means, err := g.run(opts.ctx(), opts.engine())
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	var panels []Fig8Panel
	for _, cell := range cells {
		p := Fig8Panel{
			Model:   cell.Model.Name,
			Context: cell.TokensPerGPU * cell.Nodes * cell.Spec.GPUsPerNode,
			GPUs:    cell.Nodes * cell.Spec.GPUsPerNode,
			Cluster: cell.Spec.Name,
			TP:      cell.TP,
			Methods: names,
		}
		for _, d := range evalDatasets() {
			p.Datasets = append(p.Datasets, d.Name)
			row := make([]float64, len(methods))
			for i, m := range methods {
				row[i] = means[key(cell, d.Name, m.Name())]
			}
			p.Tput = append(p.Tput, row)
		}
		panels = append(panels, p)
	}
	return panels, nil
}

// AverageSpeedup computes the mean Zeppelin-over-TE-CP ratio across all
// panel/dataset cells — the paper's headline "average 2.80×".
func AverageSpeedup(panels []Fig8Panel) float64 {
	var sum float64
	var n int
	for _, p := range panels {
		for _, row := range p.Tput {
			if row[0] > 0 {
				sum += row[len(row)-1] / row[0]
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxSpeedup returns the largest Zeppelin-over-TE ratio in the grid (the
// paper reports up to 6.60×).
func MaxSpeedup(panels []Fig8Panel) float64 {
	best := 0.0
	for _, p := range panels {
		for _, row := range p.Tput {
			if row[0] > 0 {
				if r := row[len(row)-1] / row[0]; r > best {
					best = r
				}
			}
		}
	}
	return best
}

// WriteFig8 renders every panel with per-method speedups.
func WriteFig8(w io.Writer, opts Options) error {
	panels, err := Fig8(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 8: end-to-end training throughput")
	for _, p := range panels {
		fmt.Fprintf(w, "\n%s, %s context, %d GPUs (Cluster %s, TP=%d)\n",
			p.Model, fmtK(p.Context), p.GPUs, p.Cluster, p.TP)
		for i, d := range p.Datasets {
			fmt.Fprintf(w, "  %s:\n", d)
			speedupRow(w, p.Methods, p.Tput[i])
		}
	}
	fmt.Fprintf(w, "\naverage Zeppelin speedup over TE CP: %.2fx (paper: 2.80x)\n", AverageSpeedup(panels))
	fmt.Fprintf(w, "maximum Zeppelin speedup over TE CP: %.2fx (paper: 6.60x)\n", MaxSpeedup(panels))
	return nil
}
