package experiments

import (
	"fmt"
	"io"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/runner"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// Table3Range is a min–max cost range across ranks, in milliseconds, as
// the paper's Table 3 reports.
type Table3Range struct{ Min, Max float64 }

// Table3Column is the component breakdown for one length distribution.
type Table3Column struct {
	Distribution string
	Forward      Table3Range
	ForwardAttn  Table3Range
	ForwardLin   Table3Range
	ForwardRemap Table3Range
	SeqPartition Table3Range
	Backward     Table3Range
}

// Table3 profiles the full-iteration component costs for Zeppelin on the
// 7B model across four Cluster C nodes with a 128k total context, under
// the Balanced and Skewed length distributions.
func Table3() ([]Table3Column, error) { return Table3Opts(Options{}) }

// Table3Opts is Table3 with an explicit execution configuration; both
// distributions run concurrently through the runner.
func Table3Opts(opts Options) ([]Table3Column, error) {
	cfg := trainer.Config{
		Model: model.LLaMA7B, Spec: cluster.ClusterC, Nodes: 4, TP: 1,
		TokensPerGPU: (128 << 10) / 32, Seed: 11,
	}
	samplers := []struct {
		name string
		s    Sampler
	}{
		{"Balanced", workload.BalancedBatch},
		{"Skewed", workload.SkewedBatch},
	}
	var jobs []runner.Job
	for _, sp := range samplers {
		jobs = append(jobs, runner.Job{
			Key:         "table3/" + sp.name,
			Config:      cfg,
			Method:      zeppelin.Full(),
			Sample:      sp.s,
			SamplerName: sp.name,
		})
	}
	rs, err := opts.engine().Run(opts.ctx(), jobs)
	if err != nil {
		return nil, fmt.Errorf("table3: %w", err)
	}
	var out []Table3Column
	for _, sp := range samplers {
		res := rs.Get("table3/" + sp.name)
		layers := float64(cfg.Model.Layers)
		col := Table3Column{Distribution: sp.name}
		col.ForwardAttn = rankRange(res.PerRankPhase["attn-fwd"], layers)
		col.ForwardLin = rankRange(res.PerRankPhase["linear-fwd"], layers)
		// Remapping runs twice per direction; attribute half to forward.
		col.ForwardRemap = rankRange(res.PerRankPhase["remap"], layers/2)
		col.SeqPartition = Table3Range{
			Min: res.HostOverhead * 1e3, Max: res.HostOverhead * 1e3,
		}
		col.Forward = Table3Range{
			Min: col.ForwardAttn.Min + col.ForwardLin.Min + col.ForwardRemap.Min,
			Max: col.ForwardAttn.Max + col.ForwardLin.Max + col.ForwardRemap.Max,
		}
		bwdAttn := rankRange(res.PerRankPhase["attn-bwd"], layers)
		bwdLin := rankRange(res.PerRankPhase["linear-bwd"], layers)
		col.Backward = Table3Range{Min: bwdAttn.Min + bwdLin.Min, Max: bwdAttn.Max + bwdLin.Max}
		out = append(out, col)
	}
	return out, nil
}

// rankRange converts per-rank per-layer busy seconds into a min–max
// millisecond range scaled to the full model depth. Ranks with zero
// activity in the phase are excluded (they hold no work of that kind).
func rankRange(perRank []float64, layers float64) Table3Range {
	var r Table3Range
	first := true
	for _, v := range perRank {
		ms := v * layers * 1e3
		if ms == 0 {
			continue
		}
		if first || ms < r.Min {
			r.Min = ms
		}
		if ms > r.Max {
			r.Max = ms
		}
		first = false
	}
	return r
}

// WriteTable3 renders the component table.
func WriteTable3(w io.Writer) error {
	cols, err := Table3()
	if err != nil {
		return err
	}
	return RenderTable3(w, cols)
}

// RenderTable3 renders already-computed columns (cmd/zeppelin computes
// them with its own engine, then renders here).
func RenderTable3(w io.Writer, cols []Table3Column) error {
	fmt.Fprintln(w, "Table 3: per-component cost ranges across ranks (ms), 7B, 128k, 4 Cluster C nodes")
	fmt.Fprintf(w, "%-30s", "Components (ms)")
	for _, c := range cols {
		fmt.Fprintf(w, "%20s", c.Distribution)
	}
	fmt.Fprintln(w)
	row := func(name string, get func(Table3Column) Table3Range) {
		fmt.Fprintf(w, "%-30s", name)
		for _, c := range cols {
			r := get(c)
			fmt.Fprintf(w, "%9.0f - %-8.0f", r.Min, r.Max)
		}
		fmt.Fprintln(w)
	}
	row("Forward", func(c Table3Column) Table3Range { return c.Forward })
	row("Forward Quadratic Attention", func(c Table3Column) Table3Range { return c.ForwardAttn })
	row("Forward Linear Modules", func(c Table3Column) Table3Range { return c.ForwardLin })
	row("Forward Remapping Layer", func(c Table3Column) Table3Range { return c.ForwardRemap })
	row("Forward Sequence Partition", func(c Table3Column) Table3Range { return c.SeqPartition })
	row("Backward", func(c Table3Column) Table3Range { return c.Backward })
	return nil
}
