package experiments

import (
	"fmt"
	"io"

	"zeppelin/internal/baselines"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/runner"
	"zeppelin/internal/seq"
	"zeppelin/internal/trace"
	"zeppelin/internal/trainer"
	"zeppelin/internal/zeppelin"
)

// Fig12Scenario is one of the three traced executions.
type Fig12Scenario struct {
	Title  string
	Method trainer.Method
	Batch  []seq.Sequence
}

// Fig12Scenarios reproduces the traced setups: a 3B model on 16 GPUs with
// a 64k total context on Cluster A — (a) TE CP on a single 64k sequence,
// (b) Zeppelin on the same sequence (one inter-node ring), (c) Zeppelin
// on a multi-sequence batch (intra-node rings + local sequences only).
func Fig12Scenarios() []Fig12Scenario {
	single := []seq.Sequence{{ID: 0, Len: 64 << 10}}
	multi := []seq.Sequence{
		{ID: 0, Len: 30 << 10}, {ID: 1, Len: 18 << 10}, {ID: 2, Len: 8 << 10},
		{ID: 3, Len: 4 << 10}, {ID: 4, Len: 3 << 10}, {ID: 5, Len: 2560}, {ID: 6, Len: 512},
	}
	return []Fig12Scenario{
		{"a) TE CP, single 64k sequence", baselines.TECP{}, single},
		{"b) Zeppelin, single 64k sequence (inter-node ring)", zeppelin.Full(), single},
		{"c) Zeppelin, multiple sequences (intra-node rings + local)", zeppelin.Full(), multi},
	}
}

// Fig12Trace runs one scenario's attention layer (forward + backward) and
// returns the collected events.
func Fig12Trace(sc Fig12Scenario) ([]trace.Event, error) {
	cfg := trainer.Config{
		Model: model.LLaMA3B, Spec: cluster.ClusterA, Nodes: 2, TP: 1,
		TokensPerGPU: 4096, Seed: 1,
	}
	env, err := cfg.NewEnv()
	if err != nil {
		return nil, err
	}
	pl, err := sc.Method.Plan(env, sc.Batch)
	if err != nil {
		return nil, err
	}
	fwd := pl.EmitAttention(env, false)
	pl.EmitAttention(env, true, fwd)
	if _, err := env.E.Run(); err != nil {
		return nil, err
	}
	return trace.Collect(env.E), nil
}

// Fig12Traced pairs a traced scenario with its collected events.
type Fig12Traced struct {
	Title  string        `json:"title"`
	Events []trace.Event `json:"events"`
}

// Fig12Traces runs all three scenarios — independent simulations, so
// they fan out bounded by opts.Workers — and returns the traces in
// scenario order.
func Fig12Traces(opts Options) ([]Fig12Traced, error) {
	scenarios := Fig12Scenarios()
	out := make([]Fig12Traced, len(scenarios))
	if err := runner.ForEach(opts.ctx(), opts.workers(), len(scenarios), func(i int) error {
		events, err := Fig12Trace(scenarios[i])
		if err != nil {
			return fmt.Errorf("fig12 %q: %w", scenarios[i].Title, err)
		}
		out[i] = Fig12Traced{Title: scenarios[i].Title, Events: events}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFig12 renders all three timelines with per-kind round statistics.
func WriteFig12(w io.Writer, opts Options) error {
	fmt.Fprintln(w, "Figure 12: attention fwd+bwd timelines, 3B model, 16 GPUs, 64k context, Cluster A")
	traces, err := Fig12Traces(opts)
	if err != nil {
		return err
	}
	for _, tr := range traces {
		events := tr.Events
		fmt.Fprintf(w, "\n%s\n", tr.Title)
		trace.Timeline(w, events, []int{0, 8, 12}, 100)
		fmt.Fprintln(w, "forward phase statistics:")
		trace.WriteStats(w, trace.Filter(events, "attn-fwd"))
		fmt.Fprintln(w, "backward phase statistics:")
		trace.WriteStats(w, trace.Filter(events, "attn-bwd"))
	}
	return nil
}
