package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"zeppelin/internal/cluster"
	"zeppelin/internal/costmodel"
	"zeppelin/internal/model"
	"zeppelin/internal/runner"
	"zeppelin/internal/seq"
	"zeppelin/internal/workload"
)

// Fig3Bin is the attention cost attributed to one length bin, normalized
// to the dataset's total attention cost.
type Fig3Bin struct {
	Compute   float64
	Comm      float64
	Redundant float64 // packing only
}

// Fig3Result is one dataset's per-bin breakdown under one strategy.
type Fig3Result struct {
	Dataset string
	Bins    []Fig3Bin
}

// fig3Setup mirrors the paper's measurement platform: 2 nodes × 8 A800,
// total sequence length 64k, 4×200 Gbps NICs per node.
func fig3Setup() (*costmodel.Model, int, int) {
	cm := costmodel.MustNew(model.LLaMA7B, cluster.ClusterA, 1)
	const world = 16
	const total = 64 << 10
	return cm, world, total
}

// Fig3Packing computes the cost split for input-balanced packing with
// Ulysses-style sequence parallelism (Fig. 3a): sequences are packed into
// world equal chunks; attention over a packed chunk computes the full
// causal triangle, so cross-sequence pairs are redundant work, and the
// all-to-all communication volume is proportional to token count.
func Fig3Packing(d workload.Dataset, batches int) Fig3Result {
	cm, world, total := fig3Setup()
	rng := rand.New(rand.NewSource(3))
	res := Fig3Result{Dataset: d.Name, Bins: make([]Fig3Bin, len(workload.Bins))}
	for b := 0; b < batches; b++ {
		batch := d.Batch(total, rng)
		chunk := total / world
		// First-fit pack into world chunks.
		packs := make([][]seq.Sequence, world)
		fill := make([]int, world)
		for _, s := range batch {
			rem := s.Len
			for i := 0; i < world && rem > 0; i++ {
				space := chunk - fill[i]
				if space <= 0 {
					continue
				}
				take := rem
				if take > space {
					take = space
				}
				packs[i] = append(packs[i], seq.Sequence{ID: s.ID, Len: take})
				fill[i] += take
				rem -= take
			}
		}
		for _, pk := range packs {
			var lens []int
			for _, s := range pk {
				lens = append(lens, s.Len)
			}
			useful, redundant := costmodel.PackedPairs(lens)
			_ = useful
			// Attribute the pack's redundant pairs to its sequences in
			// proportion to their token count; per-sequence compute and
			// Ulysses all-to-all communication go to the sequence's bin.
			packTok := 0
			for _, s := range pk {
				packTok += s.Len
			}
			for _, s := range pk {
				bin := workload.BinOf(s.Len)
				if bin < 0 {
					continue
				}
				frac := float64(s.Len) / float64(packTok)
				res.Bins[bin].Compute += cm.AttnTimePairs(model.CausalPairs(float64(s.Len)))
				res.Bins[bin].Redundant += cm.AttnTimePairs(redundant * frac)
				// Ulysses all-to-all: QKV+O activations cross the group,
				// mostly over NICs on a 2-node setup.
				res.Bins[bin].Comm += cm.InterTime(4 * cm.ActBytes(float64(s.Len)) / 2)
			}
		}
	}
	normalizeFig3(&res)
	return res
}

// Fig3EvenCP computes the cost split for even sequence splitting with
// ring context parallelism (Fig. 3b): every sequence is split across all
// ranks; communication circulates its KV around the global ring, so the
// per-sequence comm/compute ratio collapses for short sequences.
func Fig3EvenCP(d workload.Dataset, batches int) Fig3Result {
	cm, world, total := fig3Setup()
	rng := rand.New(rand.NewSource(3))
	res := Fig3Result{Dataset: d.Name, Bins: make([]Fig3Bin, len(workload.Bins))}
	for b := 0; b < batches; b++ {
		batch := d.Batch(total, rng)
		for _, s := range batch {
			bin := workload.BinOf(s.Len)
			if bin < 0 {
				continue
			}
			res.Bins[bin].Compute += cm.AttnTimePairs(model.CausalPairs(float64(s.Len)))
			// Ring critical path: each round the cross-node edge carries
			// one KV chunk, so over G-1 rounds the bottleneck NIC moves
			// ~KV(s) bytes; per-round message latency adds up for short
			// sequences.
			chunk := cm.KVBytes(float64(s.Len)) / float64(world)
			res.Bins[bin].Comm += float64(world-1) * cm.InterTime(chunk)
		}
	}
	normalizeFig3(&res)
	return res
}

func normalizeFig3(r *Fig3Result) {
	var total float64
	for _, b := range r.Bins {
		total += b.Compute + b.Comm + b.Redundant
	}
	if total == 0 {
		return
	}
	for i := range r.Bins {
		r.Bins[i].Compute /= total
		r.Bins[i].Comm /= total
		r.Bins[i].Redundant /= total
	}
}

// ShortSeqOverheadShare returns the fraction of a bin's cost that is not
// useful computation (comm + redundant over the bin total); the paper
// highlights up to ~60% for <1k sequences under packing.
func ShortSeqOverheadShare(r Fig3Result, bin int) float64 {
	b := r.Bins[bin]
	tot := b.Compute + b.Comm + b.Redundant
	if tot == 0 {
		return 0
	}
	return (b.Comm + b.Redundant) / tot
}

// Fig3Pair is one dataset's breakdown under both strategies.
type Fig3Pair struct {
	Dataset string     `json:"dataset"`
	Packing Fig3Result `json:"packing"`
	EvenCP  Fig3Result `json:"even_cp"`
}

// fig3Batches is the sweep length behind every Fig. 3 rendering.
const fig3Batches = 50

// Fig3All computes both panels for every Fig. 3 dataset. Each
// (dataset, strategy) sweep seeds its own RNG, so all sweeps run
// concurrently — bounded by the options' worker cap — and land in
// dataset order. The error return mirrors the other regenerators; the
// current sweeps cannot fail.
func Fig3All(opts Options) ([]Fig3Pair, error) {
	n := len(workload.All)
	out := make([]Fig3Pair, n)
	if err := runner.ForEach(opts.ctx(), opts.workers(), 2*n, func(i int) error {
		d := workload.All[i%n]
		if i < n {
			out[i].Dataset = d.Name
			out[i].Packing = Fig3Packing(d, fig3Batches)
		} else {
			out[i-n].EvenCP = Fig3EvenCP(d, fig3Batches)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFig3 renders both panels for every Fig. 3 dataset.
func WriteFig3(w io.Writer, opts Options) error {
	pairs, err := Fig3All(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3a: packing + Ulysses SP — attention cost share per length bin")
	fmt.Fprintf(w, "%-14s %-9s", "dataset", "")
	for _, l := range workload.BinLabels[:7] {
		fmt.Fprintf(w, "%9s", l)
	}
	fmt.Fprintln(w)
	for _, p := range pairs {
		writeFig3Rows(w, p.Packing, true)
	}
	fmt.Fprintln(w, "\nFigure 3b: even split + ring CP — attention cost share per length bin")
	for _, p := range pairs {
		writeFig3Rows(w, p.EvenCP, false)
	}
	return nil
}

func writeFig3Rows(w io.Writer, r Fig3Result, redundant bool) {
	rows := []struct {
		name string
		get  func(Fig3Bin) float64
	}{
		{"comp", func(b Fig3Bin) float64 { return b.Compute }},
		{"comm", func(b Fig3Bin) float64 { return b.Comm }},
	}
	if redundant {
		rows = append(rows, struct {
			name string
			get  func(Fig3Bin) float64
		}{"redund", func(b Fig3Bin) float64 { return b.Redundant }})
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-14s %-9s", r.Dataset, row.name)
		for _, b := range r.Bins[:7] {
			fmt.Fprintf(w, "%8.1f%%", 100*row.get(b))
		}
		fmt.Fprintln(w)
	}
}
