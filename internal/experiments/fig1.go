package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"zeppelin/internal/workload"
)

// Fig1Result holds, per dataset, the published sequence-count proportions
// and the token-mass histogram of a large sampled batch.
type Fig1Result struct {
	Dataset    string
	SeqProps   []float64 // published Table-2-style proportions (normalized)
	TokenHist  []float64 // sampled token-mass fraction per bin
	MeanLength float64
}

// Fig1 reproduces the dataset length-distribution figure: for each of the
// seven datasets it reports the per-bin proportions and verifies them by
// sampling a large synthetic batch. The datasets deliberately consume one
// shared RNG stream in order — parallelizing this would change the
// published histograms.
func Fig1() []Fig1Result {
	var out []Fig1Result
	rng := rand.New(rand.NewSource(1))
	for _, d := range workload.All {
		batch := d.Batch(8<<20, rng) // 8M tokens smooths the histogram
		var sum float64
		for _, p := range d.Probs {
			sum += p
		}
		props := make([]float64, len(d.Probs))
		for i, p := range d.Probs {
			props[i] = p / sum
		}
		out = append(out, Fig1Result{
			Dataset:    d.Name,
			SeqProps:   props,
			TokenHist:  workload.BinHistogram(batch),
			MeanLength: d.MeanLen(),
		})
	}
	return out
}

// WriteFig1 renders the distributions as rows of per-bin percentages.
func WriteFig1(w io.Writer) {
	results := Fig1()
	fmt.Fprintln(w, "Figure 1: sequence length distribution per dataset")
	fmt.Fprintf(w, "%-14s", "dataset")
	for _, l := range workload.BinLabels {
		fmt.Fprintf(w, "%9s", l)
	}
	fmt.Fprintf(w, "%10s\n", "mean len")
	for _, r := range results {
		fmt.Fprintf(w, "%-14s", r.Dataset)
		for _, p := range r.SeqProps {
			fmt.Fprintf(w, "%8.1f%%", 100*p)
		}
		fmt.Fprintf(w, "%10.0f\n", r.MeanLength)
	}
	fmt.Fprintln(w, "\ntoken-mass share of each bin (sampled, 8M tokens):")
	for _, r := range results {
		fmt.Fprintf(w, "%-14s", r.Dataset)
		for _, p := range r.TokenHist {
			fmt.Fprintf(w, "%8.1f%%", 100*p)
		}
		fmt.Fprintln(w)
	}
}

// WriteTable2 renders the three evaluation datasets' published rows
// verbatim (Table 2).
func WriteTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: sequence length distribution of the evaluation datasets")
	fmt.Fprintf(w, "%-12s", "dataset")
	for _, l := range workload.BinLabels {
		fmt.Fprintf(w, "%9s", l)
	}
	fmt.Fprintln(w)
	for _, d := range workload.Eval {
		fmt.Fprintf(w, "%-12s", d.Name)
		for _, p := range d.Probs {
			fmt.Fprintf(w, "%9.3f", p)
		}
		fmt.Fprintln(w)
	}
}
