package experiments

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"
)

// TestFig16Golden pins the serving-scenario routing comparison at one
// seed: per-route token throughput, tick p99, prefix-token reuse, and
// the per-class latency/violation numbers, plus the headline — affinity
// routing beating balance on the interactive class's p99 and clearing
// its deadline violations entirely. The serve stream is fully
// deterministic, so drift here means a code change silently altered the
// serving results — if intentional, re-pin and say so in the commit.
func TestFig16Golden(t *testing.T) {
	res, err := Fig16(Options{Seeds: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	type golden struct {
		tput, p99tick, saved, violrate float64
		classes                        map[string][4]float64 // p50, p99, goodput, violations
	}
	want := map[string]golden{
		"balance": {27372.954667, 1.749033, 91603, 0.107064, map[string][4]float64{
			"interactive": {1.747028, 3.503146, 10418.568178, 241},
			"batch":       {1.847974, 6.235910, 13269.031802, 0},
		}},
		"affinity": {27885.066214, 0.705543, 1113833, 0, map[string][4]float64{
			"interactive": {0.414020, 1.541067, 13496.615591, 0},
			"batch":       {0.382530, 1.462457, 13271.881865, 0},
		}},
	}
	if len(res.Routes) != len(want) {
		t.Fatalf("%d routes, want %d", len(res.Routes), len(want))
	}
	for _, r := range res.Routes {
		g, ok := want[r.Route]
		if !ok {
			t.Errorf("unexpected route row %q", r.Route)
			continue
		}
		near(t, r.Route+"/tput", r.Row.TokensPerSec, g.tput)
		near(t, r.Route+"/p99tick", r.Row.P99IterTime, g.p99tick)
		near(t, r.Route+"/saved", r.SavedTokens, g.saved)
		near(t, r.Route+"/violrate", r.ViolationRate, g.violrate)
		if len(r.Classes) != len(g.classes) {
			t.Fatalf("route %s has %d classes, want %d", r.Route, len(r.Classes), len(g.classes))
		}
		for _, cm := range r.Classes {
			c, ok := g.classes[cm.Class]
			if !ok {
				t.Errorf("route %s: unexpected class %q", r.Route, cm.Class)
				continue
			}
			near(t, r.Route+"/"+cm.Class+"/p50", cm.P50Latency, c[0])
			near(t, r.Route+"/"+cm.Class+"/p99", cm.P99Latency, c[1])
			near(t, r.Route+"/"+cm.Class+"/goodput", cm.Goodput, c[2])
			near(t, r.Route+"/"+cm.Class+"/violations", float64(cm.Violations), c[3])
		}
	}
	// Headline: what KV-affinity routing is worth for the
	// deadline-tightest class under the burst.
	near(t, "affinity interactive-p99 win", Fig16AffinityWin(res), 2.273195)
	if Fig16AffinityWin(res) <= 1.5 {
		t.Fatalf("affinity no longer clearly beats balance: win = %v", Fig16AffinityWin(res))
	}

	// The sample report is affinity seed 0 with the full tick stream.
	if res.Sample == nil || len(res.Sample.Records) == 0 {
		t.Fatalf("sample report missing: %+v", res.Sample)
	}
	if res.Sample.Summary.Requests == 0 || res.Sample.Summary.Unserved != 0 {
		t.Fatalf("sample stream did not drain: %+v", res.Sample.Summary)
	}
}

// TestFig16SerialParallelIdentical is the serving acceptance invariant:
// the whole route×seed serve grid — per-tick records included — must be
// bit-identical on one worker and on an oversubscribed pool.
func TestFig16SerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full serve grid in -short mode")
	}
	serial, err := Fig16(Options{Seeds: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig16(Options{Seeds: 1, Workers: 2 * runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Routes, parallel.Routes) {
		t.Fatal("serial and parallel serve routes differ")
	}
	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(parallel)
	if string(a) != string(b) {
		t.Fatal("serial and parallel serve artifacts differ")
	}
}
