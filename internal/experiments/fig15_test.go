package experiments

import (
	"bytes"
	"strings"
	"testing"

	"zeppelin/internal/partition"
	"zeppelin/internal/seq"
)

// TestFig15SweepCompletesTo8192Ranks runs the full scaling sweep — the
// acceptance bar is that the 8192-rank world plans end to end on both
// paths, the incremental mode split engages, and every cell stays
// cost-equal within the self-regulation drift.
func TestFig15SweepCompletesTo8192Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep to 8192 ranks takes a few seconds")
	}
	res, err := Fig15(Options{Seeds: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(Fig15Ranks) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(Fig15Ranks))
	}
	for i, cell := range res.Cells {
		if cell.Ranks != Fig15Ranks[i] {
			t.Fatalf("cell %d ranks = %d, want %d", i, cell.Ranks, Fig15Ranks[i])
		}
		if cell.Modes.Plans() != Fig15Iters {
			t.Fatalf("%d ranks: %d plans counted, want %d", cell.Ranks, cell.Modes.Plans(), Fig15Iters)
		}
		if cell.Modes.Patched == 0 {
			t.Fatalf("%d ranks: incremental path never patched (%+v)", cell.Ranks, cell.Modes)
		}
		// Cost-equality: the planner's own drift bound (15%) plus rounding
		// slack. A violation here means the self-regulation guard broke.
		if cell.MaxCostRatio > 1+partition.DefaultMaxImbalanceDrift+0.05 {
			t.Fatalf("%d ranks: cost ratio %.3f exceeds drift bound", cell.Ranks, cell.MaxCostRatio)
		}
		if cell.Full.P50Micros <= 0 || cell.Incremental.P50Micros <= 0 {
			t.Fatalf("%d ranks: missing latency measurements: %+v", cell.Ranks, cell)
		}
	}
	last := res.Cells[len(res.Cells)-1]
	if last.Ranks != 8192 {
		t.Fatalf("sweep must end at 8192 ranks, got %d", last.Ranks)
	}
}

func TestFig15StreamIsDeterministicAndFeasible(t *testing.T) {
	a := Fig15Stream(64, 6)
	b := Fig15Stream(64, 6)
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("stream lengths %d/%d", len(a), len(b))
	}
	cfg := Fig15PlanConfig(64)
	capTotal := cfg.Cluster.World() * cfg.CapacityTokens
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("iteration %d: stream not deterministic", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("iteration %d seq %d: stream not deterministic", i, j)
			}
		}
		if total := seq.TotalLen(a[i]); total > capTotal {
			t.Fatalf("iteration %d: %d tokens exceeds capacity %d", i, total, capTotal)
		}
		if i > 0 && sameSeqs(a[i-1], a[i]) {
			t.Fatalf("iteration %d: churn produced an identical batch", i)
		}
	}
}

func sameSeqs(a, b []seq.Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFig15BenchValidation(t *testing.T) {
	if _, err := Fig15Bench(7, 8, 1); err == nil {
		t.Fatal("non-multiple-of-8 ranks must fail")
	}
	if _, err := Fig15Bench(64, 1, 1); err == nil {
		t.Fatal("single-iteration stream must fail")
	}
	cell, err := Fig15Bench(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Ranks != 64 || cell.Modes.Plans() != 4 {
		t.Fatalf("bench cell = %+v", cell)
	}
	// Fanned solve: the measured cell is structurally identical.
	par, err := Fig15Bench(64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Modes != cell.Modes || par.MaxCostRatio != cell.MaxCostRatio {
		t.Fatalf("solve workers changed the measured structure: %+v vs %+v", par, cell)
	}
}

func TestWriteFig15Renders(t *testing.T) {
	// Rendering drives the full sweep; trim to a cheap check of the table
	// shape via the smallest world by temporarily narrowing the sweep.
	saved := Fig15Ranks
	Fig15Ranks = []int{64}
	defer func() { Fig15Ranks = saved }()

	var buf bytes.Buffer
	if err := WriteFig15(&buf, Options{Seeds: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 15", "ranks", "speedup", "allocations per plan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
