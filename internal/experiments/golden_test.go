package experiments

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"zeppelin/internal/runner"
)

// The golden values below pin the regenerated paper numbers of this
// revision. The simulation is fully deterministic, so any drift means a
// code change silently altered paper results — if the change is
// intentional, re-pin the values and say so in the commit.

const goldenTol = 2e-3 // 0.2% relative

func near(t *testing.T, what string, got, want float64) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if want == 0 {
		if diff > goldenTol {
			t.Errorf("%s = %v, want %v", what, got, want)
		}
		return
	}
	if diff/want > goldenTol {
		t.Errorf("%s = %v, want %v (±%.1f%%)", what, got, want, 100*goldenTol)
	}
}

// TestTable3Golden pins the per-component cost ranges (ms) of Table 3.
func TestTable3Golden(t *testing.T) {
	cols, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	type ranges struct{ fwdMin, fwdMax, attnMin, attnMax, bwdMin, bwdMax float64 }
	want := map[string]ranges{
		"Balanced": {765.4572, 862.0752, 666.9871, 750.5765, 1225.4771, 1338.4160},
		"Skewed":   {1366.8479, 1437.2626, 1268.4372, 1325.5820, 2428.1759, 2481.3869},
	}
	for _, c := range cols {
		g, ok := want[c.Distribution]
		if !ok {
			t.Fatalf("unexpected distribution %q", c.Distribution)
		}
		near(t, c.Distribution+"/Forward.Min", c.Forward.Min, g.fwdMin)
		near(t, c.Distribution+"/Forward.Max", c.Forward.Max, g.fwdMax)
		near(t, c.Distribution+"/ForwardAttn.Min", c.ForwardAttn.Min, g.attnMin)
		near(t, c.Distribution+"/ForwardAttn.Max", c.ForwardAttn.Max, g.attnMax)
		near(t, c.Distribution+"/Backward.Min", c.Backward.Min, g.bwdMin)
		near(t, c.Distribution+"/Backward.Max", c.Backward.Max, g.bwdMax)
	}
	// The headline skew penalty: a skewed distribution costs ~1.67× the
	// balanced one end to end on the forward pass.
	near(t, "skew-over-balanced", cols[1].Forward.Max/cols[0].Forward.Max, 1437.2626/862.0752)
}

// TestFig8PanelGolden pins the first Fig. 8 panel (7B, 64k context,
// 16 GPUs on Cluster A) — per-method tokens/second and the Zeppelin-
// over-TE-CP speedups the bar annotations report.
func TestFig8PanelGolden(t *testing.T) {
	cell := fig8Cells()[0]
	want := map[string][4]float64{ // dataset -> TE CP, LLaMA CP, Hybrid DP, Zeppelin
		"arxiv":      {13073.8485, 26099.6719, 15977.4020, 33589.5596},
		"github":     {13071.2067, 25932.2643, 16618.4564, 33261.4214},
		"prolong64k": {13022.6253, 23186.5633, 14712.7224, 26523.0383},
	}
	for _, d := range evalDatasets() {
		for i, m := range Methods() {
			tp, err := MeanThroughput(context.Background(), cell, d.Batch, m, 1)
			if err != nil {
				t.Fatal(err)
			}
			near(t, fmt.Sprintf("%s/%s", d.Name, m.Name()), tp, want[d.Name][i])
		}
	}
	// Headline speedups for the panel.
	near(t, "arxiv speedup", want["arxiv"][3]/want["arxiv"][0], 2.5691)
	near(t, "prolong64k speedup", want["prolong64k"][3]/want["prolong64k"][0], 2.0367)
}

// TestExperimentsSerialParallelIdentical is the PR's acceptance
// criterion at the figure level: a full regenerator must produce
// identical rows on one worker and on an oversubscribed pool.
func TestExperimentsSerialParallelIdentical(t *testing.T) {
	serial, err := Fig11(Options{Seeds: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig11(Options{Seeds: 1, Workers: 2 * runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		for j := range serial[i].Tput {
			if serial[i].Tput[j] != parallel[i].Tput[j] {
				t.Errorf("%s/%s: serial %v != parallel %v",
					serial[i].Dataset, serial[i].Labels[j], serial[i].Tput[j], parallel[i].Tput[j])
			}
		}
	}
}

// TestSharedEngineMemoizesAcrossFigures re-runs a figure on one engine
// and checks the second pass is served entirely from the memo cache.
func TestSharedEngineMemoizesAcrossFigures(t *testing.T) {
	eng := runner.New(runner.Options{})
	opts := Options{Seeds: 1, Engine: eng}
	first, err := Fig11(opts)
	if err != nil {
		t.Fatal(err)
	}
	size := eng.CacheSize()
	if size == 0 {
		t.Fatal("figure run must populate the engine cache")
	}
	second, err := Fig11(opts)
	if err != nil {
		t.Fatal(err)
	}
	if eng.CacheSize() != size {
		t.Fatalf("second pass simulated new cells: cache %d -> %d", size, eng.CacheSize())
	}
	for i := range first {
		for j := range first[i].Tput {
			if first[i].Tput[j] != second[i].Tput[j] {
				t.Errorf("memoized rerun diverged at %s/%s", first[i].Dataset, first[i].Labels[j])
			}
		}
	}
}
