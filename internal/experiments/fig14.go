package experiments

import (
	"fmt"
	"io"

	"zeppelin/internal/campaign"
	"zeppelin/internal/cluster"
	"zeppelin/internal/faults"
	"zeppelin/internal/model"
	"zeppelin/internal/trace"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
)

// Fig14 extends the evaluation past the paper's healthy-cluster
// assumption: the four compared systems driven through a 200-iteration
// steady arxiv stream on a 7B / 24-GPU Cluster A cell, under four fault
// scenarios — healthy, a mid-campaign compute straggler, a fail-stop
// node loss with checkpoint restart and rejoin, and a graceful elastic
// shrink (a sick host degrades, its node is drained away, capacity grows
// back). It measures what the one-shot figures cannot: whether
// Zeppelin's rebalancing advantage survives when the cluster itself
// misbehaves. Speed-aware replanning (partitioner load weighting,
// weighted ring chunks, speed-weighted remap targets) lets Zeppelin
// absorb stragglers at near the harmonic-mean slowdown, while the even
// splits of TE CP and LLaMA CP stall at the slowest rank.

// Fig14Iters is the campaign horizon of every scenario.
const Fig14Iters = 200

// Fig14Cell is the fault-campaign cell: the Fig. 8 7B configuration
// widened to 3 nodes (24 GPUs), so an elastic shrink still leaves a
// multi-node cluster — the regime where even-split methods stay
// NIC-bound and capacity loss cannot be hidden behind vanishing
// inter-node traffic.
func Fig14Cell(seed int64) trainer.Config {
	return trainer.Config{
		Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 3, TP: 1,
		TokensPerGPU: 4096, Seed: seed,
	}
}

// Fig14Scenarios enumerates the scenario axis in report order. The
// healthy baseline is the nil schedule.
func Fig14Scenarios() []string {
	return []string{"healthy", "straggler", "failstop", "shrink"}
}

// fig14Schedule builds one named scenario for the fig14 cell.
func fig14Schedule(name string) (*faults.Schedule, error) {
	cell := Fig14Cell(0)
	return faults.ByName(name, Fig14Iters, cell.Nodes, cell.Spec.GPUsPerNode/cell.TP)
}

// Fig14Row is one (scenario, method) cell of the fault grid.
type Fig14Row struct {
	Scenario string `json:"scenario"`
	campaign.RowSummary
	// GoodputRatio is the method's campaign goodput under the scenario
	// over its own healthy goodput (1 = unaffected). The figure's
	// headline is that Zeppelin's ratio strictly dominates TE CP's under
	// the straggler and elastic-shrink scenarios.
	GoodputRatio float64 `json:"goodput_ratio"`
	// RecoveryIters is the fault's footprint on the seed-0 campaign: the
	// number of post-onset iterations whose goodput stayed below the
	// healthy band (pre-fault median / 1.1). Methods that re-plan around
	// faults recover while the fault is still active; rigid splits stay
	// degraded until it clears (0 for the healthy scenario).
	RecoveryIters int `json:"recovery_iters"`
}

// Fig14Result is the experiment's structured output: the seed-averaged
// grid plus Zeppelin's full seed-0 report per scenario for timeline
// rendering (fault and recovery markers included).
type Fig14Result struct {
	Iters     int                         `json:"iters"`
	Arrival   string                      `json:"arrival"`
	Scenarios []string                    `json:"scenarios"`
	Rows      []Fig14Row                  `json:"rows"`
	Samples   map[string]*campaign.Report `json:"samples"`
}

// Fig14 runs the fault grid. Each (scenario × method × seed) campaign is
// an independent deterministic simulation fanned across the worker pool,
// bit-identical at every pool size.
func Fig14(opts Options) (*Fig14Result, error) {
	opts = opts.normalized()
	scenarios := Fig14Scenarios()
	methods := Methods()

	var cfgs []campaign.Config
	scheds := make([]*faults.Schedule, len(scenarios))
	for i, scen := range scenarios {
		sched, err := fig14Schedule(scen)
		if err != nil {
			return nil, fmt.Errorf("fig14: %w", err)
		}
		scheds[i] = sched
		for _, m := range methods {
			for s := 0; s < opts.Seeds; s++ {
				cfgs = append(cfgs, campaign.Config{
					Trainer: Fig14Cell(SeedValue(s)),
					Method:  m,
					Iters:   Fig14Iters,
					Arrival: campaign.Steady{D: workload.ArXiv},
					Policy:  campaign.Threshold{},
					Faults:  sched,
				})
			}
		}
	}
	reports, err := campaign.RunGrid(opts.ctx(), cfgs, opts.workers())
	if err != nil {
		return nil, fmt.Errorf("fig14: %w", err)
	}

	res := &Fig14Result{
		Iters:     Fig14Iters,
		Arrival:   (campaign.Steady{D: workload.ArXiv}).Name(),
		Scenarios: scenarios,
		Samples:   make(map[string]*campaign.Report, len(scenarios)),
	}
	healthyTput := make(map[string]float64, len(methods))
	idx := 0
	for i, scen := range scenarios {
		for range methods {
			cell := reports[idx : idx+opts.Seeds]
			idx += opts.Seeds
			row := Fig14Row{Scenario: scen, RowSummary: campaign.Summarize(cell)}
			if scen == "healthy" {
				healthyTput[row.Method] = row.TokensPerSec
			}
			if base := healthyTput[row.Method]; base > 0 {
				row.GoodputRatio = row.TokensPerSec / base
			}
			if sched := scheds[i]; sched != nil {
				row.RecoveryIters = campaign.RecoveryIters(cell[0].Records,
					sched.FirstTransition(), 1.1)
			}
			if row.Method == "Zeppelin" {
				res.Samples[scen] = cell[0]
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Fig14Ratio returns a method's goodput ratio (scenario over healthy).
func Fig14Ratio(res *Fig14Result, scenario, method string) float64 {
	for _, row := range res.Rows {
		if row.Scenario == scenario && row.Method == method {
			return row.GoodputRatio
		}
	}
	return 0
}

// Fig14DegradationEdge is the figure's headline: Zeppelin's goodput
// ratio over TE CP's for a scenario. Above 1 means Zeppelin degraded
// strictly less than the even-split baseline under the same faults.
func Fig14DegradationEdge(res *Fig14Result, scenario string) float64 {
	te := Fig14Ratio(res, scenario, "TE CP")
	if te == 0 {
		return 0
	}
	return Fig14Ratio(res, scenario, "Zeppelin") / te
}

// WriteFig14 renders the per-scenario tables and Zeppelin's fault-marked
// campaign timelines.
func WriteFig14(w io.Writer, opts Options) error {
	res, err := Fig14(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 14: fault and elasticity campaigns, %d iterations, %s, 7B, 24 GPUs (Cluster A)\n",
		res.Iters, res.Arrival)
	for _, scen := range res.Scenarios {
		fmt.Fprintf(w, "\nscenario %s:\n", scen)
		fmt.Fprintf(w, "  %-28s %10s %9s %9s %8s %9s %9s\n",
			"method", "tok/s", "ratio", "p99(s)", "replans", "recov(s)", "rec-iters")
		for _, row := range res.Rows {
			if row.Scenario != scen {
				continue
			}
			fmt.Fprintf(w, "  %-28s %10.0f %9.3f %9.3f %8.1f %9.2f %9d\n",
				row.Method, row.TokensPerSec, row.GoodputRatio, row.P99IterTime,
				row.Replans, row.RecoverySeconds, row.RecoveryIters)
		}
		if scen != "healthy" {
			fmt.Fprintf(w, "  Zeppelin-over-TE-CP degradation edge: %.3f\n", Fig14DegradationEdge(res, scen))
		}
	}
	for _, scen := range []string{"straggler", "shrink"} {
		if sample := res.Samples[scen]; sample != nil {
			fmt.Fprintf(w, "\nZeppelin %s campaign (seed 0):\n", scen)
			trace.CampaignTimeline(w, sample.TraceRows(), 60, 25)
		}
	}
	return nil
}
