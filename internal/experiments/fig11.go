package experiments

import (
	"fmt"
	"io"

	"zeppelin/internal/baselines"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/trainer"
	"zeppelin/internal/zeppelin"
)

// Fig11Variant pairs an ablation label with its method configuration.
type Fig11Variant struct {
	Label  string
	Method trainer.Method
}

// Fig11Variants are the five configurations of the component ablation, in
// the paper's legend order.
func Fig11Variants() []Fig11Variant {
	return []Fig11Variant{
		{"TE CP", baselines.TECP{}},
		{"w/ Routing", baselines.TECP{Routed: true}},
		{"w/ Attn Eng", zeppelin.Method{}},
		{"w/ Routing & Attn Eng", zeppelin.Method{Routing: true}},
		{"w/ All", zeppelin.Full()},
	}
}

// Fig11Row is one dataset's throughput per ablation variant.
type Fig11Row struct {
	Dataset string
	Labels  []string
	Tput    []float64
}

// Fig11 runs the component ablation: 3B model, 32 GPUs, Cluster A. The
// variant labels key the grid (several variants share a display name, so
// Method.Name() would collide).
func Fig11(opts Options) ([]Fig11Row, error) {
	opts = opts.normalized()
	cell := Cell{Model: model.LLaMA3B, Spec: cluster.ClusterA, Nodes: 4, TP: 1, TokensPerGPU: 4096}
	var g grid
	key := func(dataset, label string) string {
		return fmt.Sprintf("fig11/%s/%s", dataset, label)
	}
	for _, d := range evalDatasets() {
		for _, v := range Fig11Variants() {
			g.add(key(d.Name, v.Label), cell, d.Batch, d.Name, v.Method, opts.Seeds)
		}
	}
	means, err := g.run(opts.ctx(), opts.engine())
	if err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}
	var out []Fig11Row
	for _, d := range evalDatasets() {
		row := Fig11Row{Dataset: d.Name}
		for _, v := range Fig11Variants() {
			row.Labels = append(row.Labels, v.Label)
			row.Tput = append(row.Tput, means[key(d.Name, v.Label)])
		}
		out = append(out, row)
	}
	return out, nil
}

// WriteFig11 renders the ablation with TE CP-normalized speedups.
func WriteFig11(w io.Writer, opts Options) error {
	rows, err := Fig11(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 11: component ablation, 3B model, 32 GPUs, Cluster A")
	for _, r := range rows {
		fmt.Fprintf(w, "\n%s:\n", r.Dataset)
		speedupRow(w, r.Labels, r.Tput)
	}
	return nil
}
