package experiments

import (
	"fmt"
	"io"

	"zeppelin/internal/campaign"
	"zeppelin/internal/trace"
	"zeppelin/internal/workload/serve"
	"zeppelin/internal/zeppelin"
)

// Fig16 is the serving-scenario experiment the training-side figures
// stop short of: Zeppelin driving a bursty multi-client request stream
// (six gamma clients, CV 2, with a 3× rate burst in the middle window)
// on the 7B / 16-GPU Cluster A cell, once per routing objective. The
// comparison isolates what KV-affinity routing is worth: keeping a
// session on its home rank skips recomputing its shared prefix, which
// raises effective per-tick capacity exactly when the burst has the
// queue at its deepest — so affinity's win shows up in per-class tail
// latency and deadline violations, not just token throughput.

// Fig16Iters caps the serving horizon; the stream normally ends earlier,
// when the timeline drains.
const Fig16Iters = 10000

// fig16SpecText is the scenario in the -serve grammar (the CLI
// equivalent: `zeppelin serve -serve "<this>"` with -route overridden
// per row).
const fig16SpecText = "clients=6,arrival=gamma:cv=2.0," +
	"rate=20@0-20s;60@20-40s;15@40-80s," +
	"slo=interactive:p99=2.5s:prio=2;batch:p99=15s:prio=1," +
	"dataset=stackexchange,sessions=8,prefix=0.6,form=priority"

// fig16Spec resolves the scenario for one routing objective.
func fig16Spec(route string) (serve.Spec, error) {
	spec, err := serve.Parse(fig16SpecText + ",route=" + route)
	if err != nil {
		return serve.Spec{}, fmt.Errorf("fig16: %w", err)
	}
	return spec, nil
}

// Fig16Route is one routing objective's seed-averaged outcome.
type Fig16Route struct {
	Route string              `json:"route"`
	Row   campaign.RowSummary `json:"row"`
	// Classes are the per-SLO-class serving metrics, highest priority
	// first, seed-averaged.
	Classes []campaign.ClassMetrics `json:"classes"`
	// SavedTokens is the mean prefix tokens KV reuse skipped per
	// campaign; ViolationRate the overall deadline-violation fraction.
	SavedTokens   float64 `json:"saved_tokens"`
	ViolationRate float64 `json:"violation_rate"`
}

// Fig16Result is the experiment's structured output: one row per
// routing objective plus the affinity seed-0 report for timeline
// rendering.
type Fig16Result struct {
	Iters     int              `json:"iters"`
	Generator string           `json:"generator"`
	Formation string           `json:"formation"`
	Routes    []Fig16Route     `json:"routes"`
	Sample    *campaign.Report `json:"sample"`
}

// Fig16 runs the routing comparison. Each (route × seed) campaign is an
// independent deterministic simulation, so the grid fans out with
// bit-identical results at every pool size.
func Fig16(opts Options) (*Fig16Result, error) {
	opts = opts.normalized()
	routes := serve.Routes
	var cfgs []campaign.Config
	for _, route := range routes {
		spec, err := fig16Spec(route)
		if err != nil {
			return nil, err
		}
		for s := 0; s < opts.Seeds; s++ {
			cfgs = append(cfgs, campaign.Config{
				Trainer: CampaignCell(SeedValue(s)),
				Method:  zeppelin.Full(),
				Iters:   Fig16Iters,
				Serve:   &campaign.ServeConfig{Spec: spec},
			})
		}
	}
	reports, err := campaign.RunGrid(opts.ctx(), cfgs, opts.workers())
	if err != nil {
		return nil, fmt.Errorf("fig16: %w", err)
	}

	res := &Fig16Result{
		Iters:     Fig16Iters,
		Generator: reports[0].Summary.Arrival,
		Formation: "priority",
	}
	for r, route := range routes {
		cell := reports[r*opts.Seeds : (r+1)*opts.Seeds]
		row := Fig16Route{
			Route:   route,
			Row:     campaign.Summarize(cell),
			Classes: campaign.SummarizeClasses(cell),
		}
		var saved, requests, violations float64
		for _, rep := range cell {
			for _, rec := range rep.Records {
				saved += float64(rec.SavedTokens)
			}
			requests += float64(rep.Summary.Requests)
			violations += float64(rep.Summary.Violations)
		}
		row.SavedTokens = saved / float64(len(cell))
		if requests > 0 {
			row.ViolationRate = violations / requests
		}
		res.Routes = append(res.Routes, row)
		if route == "affinity" {
			res.Sample = cell[0]
		}
	}
	return res, nil
}

// classP99 returns one route's seed-averaged p99 latency for a class.
func classP99(r Fig16Route, class string) float64 {
	for _, cm := range r.Classes {
		if cm.Class == class {
			return cm.P99Latency
		}
	}
	return 0
}

// Fig16AffinityWin returns the balance-over-affinity ratio of the
// interactive class's p99 latency — the experiment's pinned headline:
// how much tail latency KV-affinity routing removes for the
// deadline-tightest traffic under the burst.
func Fig16AffinityWin(res *Fig16Result) float64 {
	var balance, affinity float64
	for _, r := range res.Routes {
		switch r.Route {
		case "balance":
			balance = classP99(r, "interactive")
		case "affinity":
			affinity = classP99(r, "interactive")
		}
	}
	if affinity == 0 {
		return 0
	}
	return balance / affinity
}

// WriteFig16 renders the per-route serving tables and the affinity
// sample timeline.
func WriteFig16(w io.Writer, opts Options) error {
	res, err := Fig16(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 16: serving-scenario routing comparison, %s, formation %s, 7B, 16 GPUs (Cluster A)\n",
		res.Generator, res.Formation)
	for _, r := range res.Routes {
		fmt.Fprintf(w, "\nroute %s: %.0f tok/s, p99 tick %.3fs, %.0f prefix tokens reused, %.1f%% violations\n",
			r.Route, r.Row.TokensPerSec, r.Row.P99IterTime, r.SavedTokens, 100*r.ViolationRate)
		campaign.WriteClassTable(w, r.Classes)
	}
	fmt.Fprintf(w, "\naffinity interactive-p99 win over balance: %.2fx\n", Fig16AffinityWin(res))
	if res.Sample != nil {
		fmt.Fprintf(w, "\naffinity campaign (seed 0):\n")
		trace.CampaignTimeline(w, res.Sample.TraceRows(), 60, 25)
	}
	return nil
}
