package experiments

import (
	"context"
	"strings"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/sim"
	"zeppelin/internal/workload"
)

func TestMethodsOrder(t *testing.T) {
	ms := Methods()
	if len(ms) != 4 {
		t.Fatalf("want 4 methods, got %d", len(ms))
	}
	want := []string{"TE CP", "LLaMA CP", "Hybrid DP", "Zeppelin"}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Fatalf("method %d = %q, want %q", i, m.Name(), want[i])
		}
	}
}

func TestMeanThroughputAveragesSeeds(t *testing.T) {
	cell := Cell{Model: model.LLaMA3B, Spec: cluster.ClusterA, Nodes: 1, TP: 1, TokensPerGPU: 2048}
	tp1, err := MeanThroughput(context.Background(), cell, workload.ArXiv.Batch, Methods()[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	tp2, err := MeanThroughput(context.Background(), cell, workload.ArXiv.Batch, Methods()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if tp1 <= 0 || tp2 <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestFig1CoversAllDatasets(t *testing.T) {
	rs := Fig1()
	if len(rs) != len(workload.All) {
		t.Fatalf("fig1 covers %d datasets, want %d", len(rs), len(workload.All))
	}
	for _, r := range rs {
		var sum float64
		for _, p := range r.SeqProps {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: normalized props sum to %v", r.Dataset, sum)
		}
	}
}

func TestFig3PackingRedundancyDominatesShortBins(t *testing.T) {
	// The paper: redundant computation + communication reach ~60% of the
	// attention cost for <1k sequences in StackExchange under packing.
	r := Fig3Packing(workload.StackExchange, 30)
	share := ShortSeqOverheadShare(r, 0)
	if share < 0.4 {
		t.Errorf("<1k overhead share %.2f under packing; paper reports up to ~0.6", share)
	}
	// Long bins must be compute-dominated for long-sequence datasets.
	rl := Fig3Packing(workload.ProLong64k, 30)
	if s := ShortSeqOverheadShare(rl, 6); s > 0.5 {
		t.Errorf("32-64k bin overhead share %.2f should be compute-dominated", s)
	}
}

func TestFig3EvenCPCommDominatesShortBins(t *testing.T) {
	r := Fig3EvenCP(workload.StackExchange, 30)
	b := r.Bins[0]
	if b.Comm <= b.Compute {
		t.Errorf("<1k bin under even CP should be comm-dominated: comm=%.4f comp=%.4f", b.Comm, b.Compute)
	}
	// For the longest prolong bin, compute should dominate comm.
	rl := Fig3EvenCP(workload.ProLong64k, 30)
	lb := rl.Bins[6]
	if lb.Compute <= lb.Comm {
		t.Errorf("32-64k bin should be compute-dominated: comm=%.4f comp=%.4f", lb.Comm, lb.Compute)
	}
}

func TestFig5ZoneShapes(t *testing.T) {
	r := Fig5()
	if !(r.S0 < r.S1) {
		t.Fatalf("zone boundaries out of order: %v >= %v", r.S0, r.S1)
	}
	// Curves must be monotone in length, attention fastest-growing.
	for i := 1; i < len(r.Points); i++ {
		p, q := r.Points[i-1], r.Points[i]
		if q.AttnComp <= p.AttnComp || q.Linear <= p.Linear ||
			q.IntraSend <= p.IntraSend || q.InterSend <= p.InterSend {
			t.Fatal("cost curves must be monotone in sequence length")
		}
		attnGrowth := q.AttnComp / p.AttnComp
		linGrowth := q.Linear / p.Linear
		if attnGrowth <= linGrowth {
			t.Fatal("attention must grow faster than linear modules")
		}
	}
	// Web datasets are local/intra heavy; prolong64k is inter-heavy.
	fw := r.ZoneShare["fineweb"]
	pl := r.ZoneShare["prolong64k"]
	if fw[2] > 0.4 {
		t.Errorf("fineweb inter-zone share %.2f too high", fw[2])
	}
	if pl[2] < 0.3 {
		t.Errorf("prolong64k inter-zone share %.2f too low", pl[2])
	}
}

func TestFig11AblationShape(t *testing.T) {
	rows, err := Fig11(Options{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("fig11 rows = %d", len(rows))
	}
	for _, r := range rows {
		base := r.Tput[0]
		full := r.Tput[len(r.Tput)-1]
		if full <= base {
			t.Errorf("%s: w/ All (%.0f) should beat TE CP (%.0f)", r.Dataset, full, base)
		}
		for i, tp := range r.Tput {
			if tp <= 0 {
				t.Errorf("%s: variant %s has zero throughput", r.Dataset, r.Labels[i])
			}
		}
	}
}

func TestFig12TracesRun(t *testing.T) {
	for _, sc := range Fig12Scenarios() {
		events, err := Fig12Trace(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Title, err)
		}
		if len(events) == 0 {
			t.Fatalf("%s: no events", sc.Title)
		}
	}
	// Scenario (a) must show inter-node communication; scenario (c) must
	// not (sequences fit within nodes).
	evA, _ := Fig12Trace(Fig12Scenarios()[0])
	evC, _ := Fig12Trace(Fig12Scenarios()[2])
	var interA, interC int
	for _, e := range evA {
		if e.Kind == sim.KindInterComm {
			interA++
		}
	}
	for _, e := range evC {
		if e.Kind == sim.KindInterComm {
			interC++
		}
	}
	if interA == 0 {
		t.Error("TE CP on 2 nodes must cross node boundaries")
	}
	if interC != 0 {
		t.Error("multi-sequence Zeppelin scenario should avoid inter-node traffic")
	}
}

func TestTable3Shape(t *testing.T) {
	cols, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0].Distribution != "Balanced" || cols[1].Distribution != "Skewed" {
		t.Fatalf("columns = %+v", cols)
	}
	bal, skew := cols[0], cols[1]
	// Skewed end-to-end costs exceed balanced (the long sequence
	// dominates attention).
	if skew.Forward.Max <= bal.Forward.Max {
		t.Errorf("skewed forward max %.0f should exceed balanced %.0f", skew.Forward.Max, bal.Forward.Max)
	}
	if skew.Backward.Max <= bal.Backward.Max {
		t.Errorf("skewed backward max %.0f should exceed balanced %.0f", skew.Backward.Max, bal.Backward.Max)
	}
	// Remapping and partitioning must be small next to attention.
	for _, c := range cols {
		if c.ForwardRemap.Max > c.ForwardAttn.Max/2 {
			t.Errorf("%s: remap %.0f too large vs attention %.0f", c.Distribution, c.ForwardRemap.Max, c.ForwardAttn.Max)
		}
		if c.SeqPartition.Max > 50 {
			t.Errorf("%s: partition overhead %.0fms too large", c.Distribution, c.SeqPartition.Max)
		}
		if c.Backward.Max <= c.Forward.Max {
			t.Errorf("%s: backward should cost more than forward", c.Distribution)
		}
	}
}

// TestFmtKConsistentUnits pins the context-length formatter: exact
// multiples keep the paper's integer form ("64k", "2M"), everything
// else rounds to one decimal in the same unit instead of dropping back
// to a raw integer (the old behavior rendered 100000 as "100000" next
// to "512k" in the same axis). Sub-1k counts stay raw.
func TestFmtKConsistentUnits(t *testing.T) {
	cases := []struct {
		tokens int
		want   string
	}{
		{0, "0"},
		{512, "512"},
		{1023, "1023"},
		{1024, "1k"},
		{65536, "64k"},
		{524288, "512k"},
		{1536, "1.5k"},
		{100000, "97.7k"},
		{1047552, "1023k"},
		{1048576, "1M"},
		{2097152, "2M"},
		{1572864, "1.5M"},
		{2000000, "1.9M"},
	}
	for _, c := range cases {
		if got := fmtK(c.tokens); got != c.want {
			t.Errorf("fmtK(%d) = %q, want %q", c.tokens, got, c.want)
		}
	}
}

func TestWriteFunctionsProduceOutput(t *testing.T) {
	var sb strings.Builder
	WriteFig1(&sb)
	WriteTable2(&sb)
	WriteFig5(&sb)
	if err := WriteTable3(&sb); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig12(&sb, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1", "Table 2", "Figure 5", "Table 3", "Figure 12", "zone boundaries"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
