package trace

import (
	"strings"
	"testing"

	"zeppelin/internal/sim"
)

func runEngine(t *testing.T) *sim.Engine {
	t.Helper()
	e := sim.NewEngine()
	gpu0 := e.NewResource("gpu0", 0)
	gpu1 := e.NewResource("gpu1", 0)
	nic := e.NewResource("nic", 100)
	a := e.Compute("attn/comp@0", 0, gpu0, 1)
	b := e.Transfer("attn/kv0->1", sim.KindInterComm, 1, nic, 200)
	c := e.Compute("attn/comp@1", 1, gpu1, 1)
	c.After(a, b)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCollectSkipsBarriersAndSorts(t *testing.T) {
	e := runEngine(t)
	evs := Collect(e)
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Rank < evs[i-1].Rank {
			t.Fatal("events not sorted by rank")
		}
	}
}

func TestFilter(t *testing.T) {
	e := runEngine(t)
	evs := Collect(e)
	if got := Filter(evs, "comp"); len(got) != 2 {
		t.Fatalf("filter comp = %d, want 2", len(got))
	}
	if got := Filter(evs, "nothing"); len(got) != 0 {
		t.Fatal("filter should return empty for no match")
	}
}

func TestSpan(t *testing.T) {
	e := runEngine(t)
	lo, hi := Span(Collect(e))
	if lo != 0 || hi != 3 {
		t.Fatalf("span = [%v, %v], want [0, 3]", lo, hi)
	}
	if lo, hi := Span(nil); lo != 0 || hi != 0 {
		t.Fatal("empty span should be zero")
	}
}

func TestTimelineRendersLanes(t *testing.T) {
	e := runEngine(t)
	var sb strings.Builder
	Timeline(&sb, Collect(e), []int{0, 1}, 60)
	out := sb.String()
	if !strings.Contains(out, "#") {
		t.Fatal("compute lane missing")
	}
	if !strings.Contains(out, "~") {
		t.Fatal("inter-comm lane missing")
	}
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "rank   1") {
		t.Fatalf("rank labels missing:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var sb strings.Builder
	Timeline(&sb, nil, []int{0}, 40)
	if !strings.Contains(sb.String(), "no events") {
		t.Fatal("empty timeline should say so")
	}
}

func TestStats(t *testing.T) {
	e := runEngine(t)
	sts := Stats(Collect(e))
	byKind := map[sim.Kind]RoundStats{}
	for _, st := range sts {
		byKind[st.Kind] = st
	}
	comp := byKind[sim.KindCompute]
	if comp.Count != 2 || !sim.AlmostEqual(comp.Total, 2) || !sim.AlmostEqual(comp.Mean, 1) {
		t.Fatalf("compute stats = %+v", comp)
	}
	inter := byKind[sim.KindInterComm]
	if inter.Count != 1 || !sim.AlmostEqual(inter.Max, 2) {
		t.Fatalf("inter stats = %+v", inter)
	}
	var sb strings.Builder
	WriteStats(&sb, Collect(e))
	if !strings.Contains(sb.String(), "compute") {
		t.Fatal("WriteStats missing compute row")
	}
}

func campaignRows(n int) []CampaignRow {
	rows := make([]CampaignRow, n)
	for i := range rows {
		rows[i] = CampaignRow{Iter: i, Time: 0.010 + 0.001*float64(i%5), Replan: i%4 == 0, Imbalance: 1.0 + 0.01*float64(i%3)}
	}
	return rows
}

func TestCampaignTimelineRendersRowsAndMarkers(t *testing.T) {
	var sb strings.Builder
	CampaignTimeline(&sb, campaignRows(6), 40, 50)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // header + 6 iteration rows
		t.Fatalf("rendered %d lines, want 7:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "'R' = replan") {
		t.Fatalf("missing header: %q", lines[0])
	}
	// Iterations 0 and 4 replanned; 1-3 and 5 did not.
	for i, wantMark := range []bool{true, false, false, false, true, false} {
		line := lines[i+1]
		if got := strings.Contains(line, " R  |"); got != wantMark {
			t.Errorf("iter %d replan marker = %v, want %v: %q", i, got, wantMark, line)
		}
		if !strings.Contains(line, "#") || !strings.Contains(line, "imb 1.0") {
			t.Errorf("iter %d row missing bar or imbalance: %q", i, line)
		}
	}
	// The slowest iteration's bar must span the full width.
	if !strings.Contains(out, "|"+strings.Repeat("#", 40)+"|") {
		t.Error("no full-width bar for the slowest iteration")
	}
}

func TestCampaignTimelineDownsamples(t *testing.T) {
	var sb strings.Builder
	CampaignTimeline(&sb, campaignRows(200), 40, 25)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 26 { // header + 25 stride rows
		t.Fatalf("rendered %d lines, want 26:\n%s", len(lines), out)
	}
	// Every stride of 8 contains a replan (period 4), so all rows carry R.
	for _, line := range lines[1:] {
		if !strings.Contains(line, " R  |") {
			t.Fatalf("downsampled row lost its replan marker: %q", line)
		}
	}
}

func TestCampaignTimelineEmpty(t *testing.T) {
	var sb strings.Builder
	CampaignTimeline(&sb, nil, 40, 25)
	if !strings.Contains(sb.String(), "(no iterations)") {
		t.Fatalf("empty rendering = %q", sb.String())
	}
}

func TestCampaignTimelineFaultMarkers(t *testing.T) {
	rows := []CampaignRow{
		{Iter: 0, Time: 0.010, Replan: true, Imbalance: 1.0},
		{Iter: 1, Time: 0.012, Mark: 'S', Note: "straggler:rank3 x2.5", Imbalance: 1.2},
		{Iter: 2, Time: 0.030, Replan: true, Mark: 'F', Note: "fail:node1", Imbalance: 1.1},
		{Iter: 3, Time: 0.011, Mark: 'E', Note: "grow:node1", Imbalance: 1.0},
	}
	var sb strings.Builder
	CampaignTimeline(&sb, rows, 40, 50)
	out := sb.String()
	for _, want := range []string{
		"'F' = fail-stop", " S |", "RF |", " E |",
		"straggler:rank3 x2.5", "fail:node1", "grow:node1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Healthy rows keep the legend terse.
	var healthy strings.Builder
	CampaignTimeline(&healthy, rows[:1], 40, 50)
	if strings.Contains(healthy.String(), "fail-stop") {
		t.Error("fault legend leaked into a healthy timeline")
	}
}

func TestCampaignDownsampleKeepsMarks(t *testing.T) {
	rows := make([]CampaignRow, 100)
	for i := range rows {
		rows[i] = CampaignRow{Iter: i, Time: 0.01, Imbalance: 1}
	}
	rows[37].Mark = 'F'
	rows[37].Note = "fail:node1"
	var sb strings.Builder
	CampaignTimeline(&sb, rows, 40, 10)
	if !strings.Contains(sb.String(), "F |") || !strings.Contains(sb.String(), "fail:node1") {
		t.Fatalf("downsampling dropped the fault mark:\n%s", sb.String())
	}
}
