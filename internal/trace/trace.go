// Package trace captures per-task execution records from a simulation and
// renders ASCII timelines in the style of the paper's Fig. 12: one lane
// per (rank, activity kind), showing how attention computation overlaps
// intra- and inter-node communication round by round.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"zeppelin/internal/sim"
)

// Event is one completed task occurrence.
type Event struct {
	Rank       int
	Kind       sim.Kind
	Label      string
	Start, End float64
}

// Collect extracts completed, non-barrier tasks from an engine that has
// already run.
func Collect(e *sim.Engine) []Event {
	var out []Event
	for _, t := range e.Tasks() {
		if t.Kind == sim.KindBarrier || t.End <= t.Start {
			continue
		}
		out = append(out, Event{Rank: t.Rank, Kind: t.Kind, Label: t.Label, Start: t.Start, End: t.End})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Filter keeps events whose label contains the substring.
func Filter(events []Event, substr string) []Event {
	var out []Event
	for _, ev := range events {
		if strings.Contains(ev.Label, substr) {
			out = append(out, ev)
		}
	}
	return out
}

// Span returns the earliest start and latest end across events.
func Span(events []Event) (float64, float64) {
	if len(events) == 0 {
		return 0, 0
	}
	lo, hi := events[0].Start, events[0].End
	for _, ev := range events {
		if ev.Start < lo {
			lo = ev.Start
		}
		if ev.End > hi {
			hi = ev.End
		}
	}
	return lo, hi
}

// laneChar maps a kind to its timeline glyph: '#' compute, '=' intra-node
// communication, '~' inter-node communication, '+' memory ops.
func laneChar(k sim.Kind) byte {
	switch k {
	case sim.KindCompute:
		return '#'
	case sim.KindIntraComm:
		return '='
	case sim.KindInterComm:
		return '~'
	case sim.KindMemOp:
		return '+'
	default:
		return '?'
	}
}

// Timeline renders a fixed-width ASCII gantt for the chosen ranks, one
// line per (rank, kind) lane that has any activity. Durations are scaled
// to width columns over the events' span.
func Timeline(w io.Writer, events []Event, ranks []int, width int) {
	if width <= 0 {
		width = 100
	}
	lo, hi := Span(events)
	if hi <= lo {
		fmt.Fprintln(w, "(no events)")
		return
	}
	scale := float64(width) / (hi - lo)
	wanted := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		wanted[r] = true
	}
	kinds := []sim.Kind{sim.KindCompute, sim.KindIntraComm, sim.KindInterComm}
	fmt.Fprintf(w, "span %.3f ms .. %.3f ms  ('#'=compute '='=intra '~'=inter)\n", lo*1e3, hi*1e3)
	for _, r := range ranks {
		if !wanted[r] {
			continue
		}
		for _, k := range kinds {
			line := make([]byte, width)
			for i := range line {
				line[i] = '.'
			}
			any := false
			for _, ev := range events {
				if ev.Rank != r || ev.Kind != k {
					continue
				}
				any = true
				s := int((ev.Start - lo) * scale)
				e := int((ev.End - lo) * scale)
				if e <= s {
					e = s + 1
				}
				if e > width {
					e = width
				}
				for i := s; i < e; i++ {
					line[i] = laneChar(k)
				}
			}
			if any {
				fmt.Fprintf(w, "rank %3d %-10s |%s|\n", r, k, line)
			}
		}
	}
}

// CampaignRow is one campaign iteration in the timeline renderer's
// input: its simulated duration, whether the partitioner ran, the
// realized per-rank imbalance, and an optional fault marker.
// internal/campaign produces these via Report.TraceRows.
type CampaignRow struct {
	Iter   int
	Time   float64 // seconds
	Replan bool
	// Flip marks an iteration whose replan verdict a counterfactual
	// replay overrode; it renders as '*' in place of the replan marker.
	Flip      bool
	Imbalance float64
	// Mark is a one-glyph fault/recovery marker ('F' fail-stop, 'E'
	// elastic resize, 'S' straggler/NIC degradation, '+' recovery;
	// 0 = none), rendered next to the replan marker.
	Mark byte
	// Note annotates the row with the underlying fault events.
	Note string
}

// CampaignTimeline renders an iteration-per-row timeline of a campaign:
// each row is a bar scaled to the slowest iteration, prefixed with an
// 'R' marker on replan iterations and annotated with the iteration time
// and imbalance. Campaigns longer than maxRows are downsampled into
// equal strides; a stride row reports the mean time, the worst
// imbalance, and carries the marker if any member replanned.
func CampaignTimeline(w io.Writer, rows []CampaignRow, width, maxRows int) {
	if width <= 0 {
		width = 60
	}
	if maxRows <= 0 {
		maxRows = 50
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "(no iterations)")
		return
	}
	rows = downsample(rows, maxRows)
	var maxTime float64
	anyMark, anyFlip := false, false
	for _, r := range rows {
		if r.Time > maxTime {
			maxTime = r.Time
		}
		if r.Mark != 0 {
			anyMark = true
		}
		if r.Flip {
			anyFlip = true
		}
	}
	if maxTime <= 0 {
		fmt.Fprintln(w, "(no iterations)")
		return
	}
	legend := "'R' = replan"
	if anyFlip {
		legend += ", '*' = flipped decision"
	}
	if anyMark {
		legend += ", 'F' = fail-stop, 'E' = elastic resize, 'S' = straggler/NIC, '+' = recovery"
	}
	fmt.Fprintf(w, "campaign timeline: %d rows, bar = iteration time (max %.2f ms), %s\n",
		len(rows), maxTime*1e3, legend)
	for _, r := range rows {
		n := int(r.Time / maxTime * float64(width))
		if n < 1 {
			n = 1
		}
		if n > width {
			n = width
		}
		marker := ' '
		if r.Replan {
			marker = 'R'
		}
		if r.Flip {
			marker = '*'
		}
		mark := ' '
		if r.Mark != 0 {
			mark = rune(r.Mark)
		}
		note := ""
		if r.Note != "" {
			note = "  " + r.Note
		}
		fmt.Fprintf(w, "iter %4d %c%c |%-*s| %8.2f ms  imb %.2f%s\n",
			r.Iter, marker, mark, width, strings.Repeat("#", n), r.Time*1e3, r.Imbalance, note)
	}
}

// MarkSeverity orders campaign fault marks, most severe highest: a
// fail-stop outranks an elastic resize outranks a degradation onset
// outranks a recovery. Downsampled strides keep their most severe mark,
// and producers folding several events into one mark use the same order.
func MarkSeverity(b byte) int {
	switch b {
	case 'F':
		return 4
	case 'E':
		return 3
	case 'S':
		return 2
	case '+':
		return 1
	}
	return 0
}

// downsample folds rows into at most maxRows equal strides: mean time,
// max imbalance, replan if any member replanned, the most severe fault
// mark, first member's index.
func downsample(rows []CampaignRow, maxRows int) []CampaignRow {
	if len(rows) <= maxRows {
		return rows
	}
	stride := (len(rows) + maxRows - 1) / maxRows
	out := make([]CampaignRow, 0, maxRows)
	for lo := 0; lo < len(rows); lo += stride {
		hi := lo + stride
		if hi > len(rows) {
			hi = len(rows)
		}
		agg := CampaignRow{Iter: rows[lo].Iter}
		for _, r := range rows[lo:hi] {
			agg.Time += r.Time
			if r.Replan {
				agg.Replan = true
			}
			if r.Flip {
				agg.Flip = true
			}
			if r.Imbalance > agg.Imbalance {
				agg.Imbalance = r.Imbalance
			}
			if MarkSeverity(r.Mark) > MarkSeverity(agg.Mark) {
				agg.Mark = r.Mark
				agg.Note = r.Note
			}
		}
		agg.Time /= float64(hi - lo)
		out = append(out, agg)
	}
	return out
}

// RoundStats summarizes per-kind totals and mean durations, mirroring the
// per-round annotations in Fig. 12 (e.g. "2.18 ms (15->0)").
type RoundStats struct {
	Kind  sim.Kind
	Count int
	Total float64
	Mean  float64
	Max   float64
}

// Stats aggregates events by kind.
func Stats(events []Event) []RoundStats {
	agg := make(map[sim.Kind]*RoundStats)
	for _, ev := range events {
		st, ok := agg[ev.Kind]
		if !ok {
			st = &RoundStats{Kind: ev.Kind}
			agg[ev.Kind] = st
		}
		d := ev.End - ev.Start
		st.Count++
		st.Total += d
		if d > st.Max {
			st.Max = d
		}
	}
	var out []RoundStats
	for _, st := range agg {
		st.Mean = st.Total / float64(st.Count)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WriteStats prints the aggregate table.
func WriteStats(w io.Writer, events []Event) {
	for _, st := range Stats(events) {
		fmt.Fprintf(w, "%-12s count=%4d total=%8.3f ms  mean=%7.3f ms  max=%7.3f ms\n",
			st.Kind, st.Count, st.Total*1e3, st.Mean*1e3, st.Max*1e3)
	}
}
