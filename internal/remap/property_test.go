package remap

import (
	"math/rand"
	"testing"

	"zeppelin/internal/cluster"
)

// randomCluster draws a small deployment, biased toward multi-node
// shapes where the intra/inter cost split matters.
func randomCluster(rng *rand.Rand) *cluster.Cluster {
	specs := []cluster.Spec{cluster.ClusterA, cluster.ClusterB, cluster.ClusterC}
	return cluster.MustNew(specs[rng.Intn(len(specs))], 1+rng.Intn(4))
}

// randomTokens draws a non-negative token vector with occasional zeros
// and heavy skew — the shapes elastic transitions produce.
func randomTokens(rng *rand.Rand, world int) []int {
	out := make([]int, world)
	for i := range out {
		switch rng.Intn(4) {
		case 0: // drained / joining rank
		case 1:
			out[i] = rng.Intn(64)
		case 2:
			out[i] = 1024 + rng.Intn(8192)
		default:
			out[i] = rng.Intn(32768)
		}
	}
	return out
}

// randomTarget redistributes the same total over a random subset of the
// ranks — a randomized elastic rank-set change (survivors arbitrary,
// leavers at zero).
func randomTarget(rng *rand.Rand, tokens []int) []int {
	var total int
	for _, t := range tokens {
		total += t
	}
	target := make([]int, len(tokens))
	alive := make([]int, 0, len(tokens))
	for i := range target {
		if rng.Intn(3) != 0 { // ~2/3 of ranks survive
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		alive = append(alive, rng.Intn(len(tokens)))
	}
	remaining := total
	for n, i := range alive {
		if n == len(alive)-1 {
			target[i] = remaining
			break
		}
		take := 0
		if remaining > 0 {
			take = rng.Intn(remaining + 1)
		}
		target[i] = take
		remaining -= take
	}
	return target
}

// Property: for any token layout and any feasible target — including
// randomized elastic rank-set changes that zero out leaving ranks —
// SolveTarget conserves every token: applying the plan's transfers to
// the input layout lands exactly on the target, with no negative
// intermediate amounts.
func TestPropertySolveTargetConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		c := randomCluster(rng)
		tokens := randomTokens(rng, c.World())
		target := randomTarget(rng, tokens)
		p, err := SolveTarget(tokens, target, c, bIntra, bInter)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		got := Apply(tokens, p)
		for r := range got {
			if got[r] != target[r] {
				t.Fatalf("iter %d: rank %d has %d tokens after apply, want %d (tokens=%v target=%v)",
					iter, r, got[r], target[r], tokens, target)
			}
		}
		for _, tr := range p.Transfers {
			if tr.Tokens <= 0 {
				t.Fatalf("iter %d: degenerate transfer %+v", iter, tr)
			}
			if tr.From == tr.To {
				t.Fatalf("iter %d: self transfer %+v", iter, tr)
			}
		}
	}
}

// Property: remapping is idempotent — a layout already at its target
// needs no transfers, and re-solving from the result of a previous plan
// produces the empty plan. The elastic path relies on this: migrating
// twice must not bounce tokens around.
func TestPropertyRemapIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 120; iter++ {
		c := randomCluster(rng)
		tokens := randomTokens(rng, c.World())
		target := randomTarget(rng, tokens)
		p, err := SolveTarget(tokens, target, c, bIntra, bInter)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		again, err := SolveTarget(Apply(tokens, p), target, c, bIntra, bInter)
		if err != nil {
			t.Fatalf("iter %d resolve: %v", iter, err)
		}
		if len(again.Transfers) != 0 || again.MaxSenderCost != 0 || again.InterTokens != 0 {
			t.Fatalf("iter %d: re-solving a settled layout moved tokens: %+v", iter, again)
		}
		// The balanced default is idempotent too.
		bal, err := Solve(tokens, c, bIntra, bInter)
		if err != nil {
			t.Fatalf("iter %d balanced: %v", iter, err)
		}
		balAgain, err := Solve(Apply(tokens, bal), c, bIntra, bInter)
		if err != nil {
			t.Fatalf("iter %d balanced resolve: %v", iter, err)
		}
		if len(balAgain.Transfers) != 0 {
			t.Fatalf("iter %d: balanced remap not idempotent", iter)
		}
	}
}

// Property: a shrink-then-grow round trip (drain a rank suffix, then
// rebalance over the full world) conserves the total and ends balanced —
// the invariant the campaign's elastic transitions depend on.
func TestPropertyElasticRoundTripConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		c := randomCluster(rng)
		world := c.World()
		tokens := randomTokens(rng, world)
		var total int
		for _, v := range tokens {
			total += v
		}
		// Shrink: drain the last k ranks.
		k := 1 + rng.Intn(world-1)
		survivors := world - k
		shrunk := make([]int, world)
		base, rem := total/survivors, total%survivors
		for r := 0; r < survivors; r++ {
			shrunk[r] = base
			if r < rem {
				shrunk[r]++
			}
		}
		p1, err := SolveTarget(tokens, shrunk, c, bIntra, bInter)
		if err != nil {
			t.Fatalf("iter %d shrink: %v", iter, err)
		}
		afterShrink := Apply(tokens, p1)
		for r := survivors; r < world; r++ {
			if afterShrink[r] != 0 {
				t.Fatalf("iter %d: drained rank %d still holds %d tokens", iter, r, afterShrink[r])
			}
		}
		// Grow: rebalance over the full world again.
		p2, err := Solve(afterShrink, c, bIntra, bInter)
		if err != nil {
			t.Fatalf("iter %d grow: %v", iter, err)
		}
		final := Apply(afterShrink, p2)
		var sum int
		for r, v := range final {
			if v != p2.Target[r] {
				t.Fatalf("iter %d: rank %d ended at %d, want %d", iter, r, v, p2.Target[r])
			}
			sum += v
		}
		if sum != total {
			t.Fatalf("iter %d: round trip lost tokens: %d != %d", iter, sum, total)
		}
	}
}

// Property: WeightedTarget conserves totals, gives nothing to
// zero-weight ranks, and is monotone — a rank never receives fewer
// tokens than a strictly lighter-weighted peer (up to rounding).
func TestPropertyWeightedTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		world := 2 + rng.Intn(30)
		tokens := randomTokens(rng, world)
		var total int
		for _, v := range tokens {
			total += v
		}
		weights := make([]float64, world)
		for i := range weights {
			if rng.Intn(5) == 0 {
				continue // dead rank
			}
			weights[i] = 0.1 + rng.Float64()*2.4
		}
		target := WeightedTarget(tokens, weights)
		var sum int
		for i, v := range target {
			sum += v
			if v < 0 {
				t.Fatalf("iter %d: negative target %d at rank %d", iter, v, i)
			}
			if weights[i] == 0 && v != 0 {
				t.Fatalf("iter %d: zero-weight rank %d received %d tokens", iter, i, v)
			}
		}
		if sum != total {
			t.Fatalf("iter %d: weighted target sums to %d, want %d", iter, sum, total)
		}
		for a := 0; a < world; a++ {
			for b := 0; b < world; b++ {
				if weights[a] > weights[b] && target[a]+1 < target[b] {
					t.Fatalf("iter %d: rank %d (w=%.2f) got %d but rank %d (w=%.2f) got %d",
						iter, a, weights[a], target[a], b, weights[b], target[b])
				}
			}
		}
	}
}

// SolveTarget rejects infeasible targets loudly instead of silently
// dropping tokens.
func TestSolveTargetValidation(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 1)
	tokens := []int{8, 0, 0, 0, 0, 0, 0, 0}
	if _, err := SolveTarget(tokens, []int{4, 4}, c, bIntra, bInter); err == nil {
		t.Fatal("short target must fail")
	}
	if _, err := SolveTarget(tokens, []int{9, 0, 0, 0, 0, 0, 0, 0}, c, bIntra, bInter); err == nil {
		t.Fatal("non-conserving target must fail")
	}
	bad := []int{16, -8, 0, 0, 0, 0, 0, 0}
	if _, err := SolveTarget(tokens, bad, c, bIntra, bInter); err == nil {
		t.Fatal("negative target must fail")
	}
}
