package remap

import (
	"math"
	"math/rand"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/flow"
	"zeppelin/internal/sim"
)

const (
	bIntra = 1.0 / 400e9
	bInter = 1.0 / 25e9
)

func TestBalancedTarget(t *testing.T) {
	got := BalancedTarget([]int{10, 0, 0, 0})
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("target = %v", got)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 1)
	if _, err := Solve([]int{1, 2}, c, bIntra, bInter); err == nil {
		t.Fatal("wrong world size should fail")
	}
	tok := make([]int, 8)
	if _, err := Solve(tok, c, 0, bInter); err == nil {
		t.Fatal("zero bIntra should fail")
	}
	if _, err := Solve(tok, c, bInter, bIntra); err == nil {
		t.Fatal("bIntra > bInter should fail")
	}
	tok[0] = -1
	if _, err := Solve(tok, c, bIntra, bInter); err == nil {
		t.Fatal("negative tokens should fail")
	}
}

func TestAlreadyBalancedNoTransfers(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 1)
	tok := []int{5, 5, 5, 5, 5, 5, 5, 5}
	p, err := Solve(tok, c, bIntra, bInter)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Transfers) != 0 || p.MaxSenderCost != 0 || p.InterTokens != 0 {
		t.Fatalf("balanced input should need no transfers: %+v", p)
	}
}

func TestIntraNodePreferred(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 2)
	tok := make([]int, 16)
	// Node 0 internally imbalanced but node-balanced: all moves intra.
	tok[0], tok[1] = 100, 0
	for i := 2; i < 8; i++ {
		tok[i] = 50
	}
	for i := 8; i < 16; i++ {
		tok[i] = 50
	}
	p, err := Solve(tok, c, bIntra, bInter)
	if err != nil {
		t.Fatal(err)
	}
	if p.InterTokens != 0 {
		t.Fatalf("node-balanced distribution must not ship inter, got %d", p.InterTokens)
	}
	after := Apply(tok, p)
	for i, v := range after {
		if v != p.Target[i] {
			t.Fatalf("rank %d: %d tokens, want %d", i, v, p.Target[i])
		}
	}
}

func TestCrossNodeResidualShipsExactMinimum(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 2)
	tok := make([]int, 16)
	// Node 0 holds everything; half must cross to node 1.
	for i := 0; i < 8; i++ {
		tok[i] = 100
	}
	p, err := Solve(tok, c, bIntra, bInter)
	if err != nil {
		t.Fatal(err)
	}
	if p.InterTokens != 400 {
		t.Fatalf("inter tokens = %d, want 400 (half the total)", p.InterTokens)
	}
	after := Apply(tok, p)
	for i, v := range after {
		if v != p.Target[i] {
			t.Fatalf("rank %d: %d != target %d", i, v, p.Target[i])
		}
	}
}

func TestWaterfillEqualizesSenderCosts(t *testing.T) {
	c := cluster.MustNew(cluster.ClusterA, 2)
	tok := make([]int, 16)
	// Two surplus ranks on node 0 with very different surpluses; one
	// intra deficit. Without water-filling, the big sender would carry
	// all the inter cost AND the intra quota would go to it arbitrarily.
	tok[0], tok[1], tok[2] = 1000, 200, 0
	for i := 3; i < 8; i++ {
		tok[i] = 150
	}
	for i := 8; i < 16; i++ {
		tok[i] = 150 // node 1 slightly below average
	}
	p, err := Solve(tok, c, bIntra, bInter)
	if err != nil {
		t.Fatal(err)
	}
	after := Apply(tok, p)
	for i, v := range after {
		if v != p.Target[i] {
			t.Fatalf("rank %d: %d != %d", i, v, p.Target[i])
		}
	}
	// Sender costs: compute per rank and check the spread is small
	// relative to a naive all-on-one assignment.
	cost := make([]float64, 16)
	for _, tr := range p.Transfers {
		per := bInter
		if c.SameNode(tr.From, tr.To) {
			per = bIntra
		}
		cost[tr.From] += per * float64(tr.Tokens)
	}
	naiveWorst := bInter * float64(tok[0]-p.Target[0])
	if p.MaxSenderCost >= naiveWorst {
		t.Fatalf("water-filled bottleneck %v should beat naive %v", p.MaxSenderCost, naiveWorst)
	}
}

// The minimal inter-node volume is Σ_n max(S_n − D_n, 0); cross-check the
// solver against a min-cost-flow formulation of Eq. 2 (minimizing total
// cost — with two-tier costs, both objectives force maximal intra
// matching, so inter volumes must agree).
func TestPropertyInterVolumeMatchesMinCostFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := cluster.MustNew(cluster.ClusterA, 2)
	for iter := 0; iter < 40; iter++ {
		tok := make([]int, 16)
		for i := range tok {
			tok[i] = rng.Intn(500)
		}
		p, err := Solve(tok, c, bIntra, bInter)
		if err != nil {
			t.Fatal(err)
		}
		after := Apply(tok, p)
		for i, v := range after {
			if v != p.Target[i] {
				t.Fatalf("iter %d: rank %d has %d, want %d", iter, i, v, p.Target[i])
			}
		}
		// Min-cost-flow reference: source -> surplus ranks, deficit ranks
		// -> sink, surplus->deficit edges with tiered costs.
		target := BalancedTarget(tok)
		g := flow.NewGraph(16 + 2)
		src, snk := 16, 17
		var totalSurplus int
		type edgeRec struct{ from, to, id int }
		var recs []edgeRec
		for i := range tok {
			if s := tok[i] - target[i]; s > 0 {
				g.AddEdge(src, i, s, 0)
				totalSurplus += s
			} else if s < 0 {
				g.AddEdge(i, snk, -s, 0)
			}
		}
		for i := range tok {
			if tok[i]-target[i] <= 0 {
				continue
			}
			for j := range tok {
				if tok[j]-target[j] >= 0 {
					continue
				}
				cost := bInter
				if c.SameNode(i, j) {
					cost = bIntra
				}
				id := g.AddEdge(i, j, totalSurplus, cost*1e12) // scale to avoid tiny floats
				recs = append(recs, edgeRec{i, j, id})
			}
		}
		f, _ := g.MinCostFlow(src, snk, math.MaxInt)
		if f != totalSurplus {
			t.Fatalf("iter %d: flow %d != surplus %d", iter, f, totalSurplus)
		}
		var flowInter int
		for _, r := range recs {
			if !c.SameNode(r.from, r.to) {
				flowInter += g.EdgeFlow(r.id)
			}
		}
		if flowInter != p.InterTokens {
			t.Fatalf("iter %d: solver inter volume %d != min-cost-flow %d", iter, p.InterTokens, flowInter)
		}
	}
}

// Property: conservation — transfers never create or destroy tokens, and
// no rank ever sends more than its surplus.
func TestPropertyConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, nodes := range []int{1, 2, 4} {
		c := cluster.MustNew(cluster.ClusterC, nodes)
		for iter := 0; iter < 20; iter++ {
			tok := make([]int, c.World())
			for i := range tok {
				tok[i] = rng.Intn(9000)
			}
			p, err := Solve(tok, c, bIntra, bInter)
			if err != nil {
				t.Fatal(err)
			}
			target := BalancedTarget(tok)
			sent := make([]int, c.World())
			for _, tr := range p.Transfers {
				if tr.Tokens <= 0 {
					t.Fatalf("non-positive transfer %+v", tr)
				}
				if tr.From == tr.To {
					t.Fatalf("self transfer %+v", tr)
				}
				sent[tr.From] += tr.Tokens
			}
			for i := range sent {
				if surplus := tok[i] - target[i]; surplus > 0 && sent[i] != surplus {
					t.Fatalf("rank %d sent %d, surplus %d", i, sent[i], surplus)
				} else if surplus <= 0 && sent[i] != 0 {
					t.Fatalf("deficit rank %d sent %d tokens", i, sent[i])
				}
			}
		}
	}
}

func TestEmitAllToAll(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(cluster.ClusterA, 2)
	f := cluster.NewFabric(e, c)
	tok := make([]int, 16)
	for i := 0; i < 8; i++ {
		tok[i] = 1000
	}
	p, err := Solve(tok, c, bIntra, bInter)
	if err != nil {
		t.Fatal(err)
	}
	done := Emit(f, "remap", p, 8192)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk <= 0 || done.End != mk {
		t.Fatalf("remap should take time and finish last: mk=%v done=%v", mk, done.End)
	}
	// Transfers from different senders should overlap: makespan far less
	// than the serialized sum.
	var serial float64
	for _, tr := range p.Transfers {
		bytes := float64(tr.Tokens) * 8192
		if c.SameNode(tr.From, tr.To) {
			serial += bytes / c.IntraBandwidth
		} else {
			serial += bytes / c.NICBandwidth
		}
	}
	if mk > serial {
		t.Fatalf("alltoallv should parallelize: %v > serialized %v", mk, serial)
	}
}

func TestEmitEmptyPlan(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(cluster.ClusterA, 1)
	f := cluster.NewFabric(e, c)
	p := &Plan{Target: make([]int, 8)}
	Emit(f, "noop", p, 8192)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 0 {
		t.Fatalf("empty plan should be free, got %v", mk)
	}
}
