// Package remap implements Zeppelin's remapping layer (§3.4): before the
// linear modules it transforms the attention-optimized token layout into a
// token-balanced layout, and restores it afterwards. The transfer matrix
// is the solution of the paper's Eq. 2 — minimize the maximum per-rank
// communication cost subject to surplus/deficit conservation, with
// two-tier per-token costs (intra-node vs inter-node bandwidth).
//
// The paper solves Eq. 2 with Gurobi. Because the cost matrix T has only
// two distinct values, the optimum has a closed structure: match surplus
// to deficit within each node first (strictly cheaper for every sender),
// then ship each node's residual surplus across nodes, water-filling the
// inter-node volume across the node's senders so their total costs
// equalize. This package computes that solution exactly (up to integer
// rounding) and its optimality is cross-checked against the generic
// min-cost-flow solver in package flow by the tests.
package remap

import (
	"fmt"
	"sort"

	"zeppelin/internal/cluster"
	"zeppelin/internal/collective"
	"zeppelin/internal/seq"
	"zeppelin/internal/sim"
)

// Transfer moves Tokens from rank From to rank To.
type Transfer struct {
	From, To int
	Tokens   int
}

// Plan is a concrete remapping: the transfers plus diagnostics.
type Plan struct {
	// Target is the balanced token count per rank after applying the plan.
	Target []int
	// Transfers lists all point-to-point moves.
	Transfers []Transfer
	// MaxSenderCost is the Eq. 2 objective achieved: the largest
	// Σ_j T_ij·M_ij over senders i, in seconds.
	MaxSenderCost float64
	// InterTokens is the total cross-node volume (minimal by construction).
	InterTokens int
}

// BalancedTarget returns the per-rank token counts of a perfectly
// token-balanced layout: ⌊total/d⌋ with the remainder spread over the
// first ranks.
func BalancedTarget(tokens []int) []int {
	d := len(tokens)
	var total int
	for _, t := range tokens {
		total += t
	}
	out := make([]int, d)
	base, rem := total/d, total%d
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// WeightedTarget returns per-rank token counts proportional to a weight
// vector (seq.SplitWeighted's largest-remainder rounding — the same
// arithmetic the partitioner's weighted ring shares use), conserving
// the input total. With a cluster's relative-speed vector as weights it
// is the speed-weighted layout the remapping layer steers to under a
// degraded effective-speed view: slow ranks receive fewer tokens so the
// token-wise linear modules finish together. Uniform (or absent)
// weights reduce to BalancedTarget; weights shorter than the rank set
// leave the tail ranks at weight zero.
func WeightedTarget(tokens []int, weights []float64) []int {
	var total int
	for _, t := range tokens {
		total += t
	}
	padded := make([]float64, len(tokens))
	copy(padded, weights)
	return seq.SplitWeighted(total, padded)
}

// Solve computes the Eq. 2 remapping for a token distribution over the
// cluster's ranks. bIntra and bInter are inverse bandwidths in seconds
// per token-byte unit; callers typically pass activation-bytes-scaled
// values from the cost model, but any consistent unit works since only
// the plan structure and relative costs matter.
func Solve(tokens []int, c *cluster.Cluster, bIntra, bInter float64) (*Plan, error) {
	return SolveTarget(tokens, nil, c, bIntra, bInter)
}

// SolveTarget is Solve toward an arbitrary feasible target layout: the
// same Eq. 2 bottleneck objective, but steering the tokens to `target`
// instead of the perfectly balanced layout. A nil target selects
// BalancedTarget. The elastic-rescaling path uses it to drain leaving
// ranks (target 0 there) and to seed joining ranks, and the degraded-
// cluster path to weight the layout by effective rank speed. The target
// must conserve the token total.
func SolveTarget(tokens, target []int, c *cluster.Cluster, bIntra, bInter float64) (*Plan, error) {
	if len(tokens) != c.World() {
		return nil, fmt.Errorf("remap: %d token counts for world of %d", len(tokens), c.World())
	}
	if bIntra <= 0 || bInter <= 0 || bIntra > bInter {
		return nil, fmt.Errorf("remap: need 0 < bIntra <= bInter, got %v, %v", bIntra, bInter)
	}
	for i, t := range tokens {
		if t < 0 {
			return nil, fmt.Errorf("remap: rank %d has negative tokens", i)
		}
	}
	if target == nil {
		target = BalancedTarget(tokens)
	} else {
		if len(target) != len(tokens) {
			return nil, fmt.Errorf("remap: %d targets for world of %d", len(target), len(tokens))
		}
		var haveTotal, wantTotal int
		for i, t := range target {
			if t < 0 {
				return nil, fmt.Errorf("remap: rank %d has negative target", i)
			}
			haveTotal += tokens[i]
			wantTotal += t
		}
		if haveTotal != wantTotal {
			return nil, fmt.Errorf("remap: target totals %d tokens, have %d", wantTotal, haveTotal)
		}
	}
	p := &Plan{Target: target}

	surplus := make([]int, len(tokens)) // tokens to send
	deficit := make([]int, len(tokens)) // tokens to receive
	for i := range tokens {
		if d := tokens[i] - target[i]; d > 0 {
			surplus[i] = d
		} else {
			deficit[i] = -d
		}
	}

	// Per-sender intra/inter split; intraSent fills in during matching.
	intraSent := make([]int, len(tokens))

	// Phase 1: intra-node matching. Within each node, greedily match
	// surplus ranks to deficit ranks; every intra token saves its sender
	// (bInter − bIntra) relative to shipping it out, so maximal intra
	// matching is optimal for any bottleneck objective. Ranks of node n
	// are the contiguous block [n·P, (n+1)·P), addressed directly to keep
	// RanksOfNode's allocation off the per-iteration path.
	P := c.GPUsPerNode
	for n := 0; n < c.Nodes; n++ {
		lo, hi := n*P, (n+1)*P
		s, d := lo, lo
		for s < hi && d < hi {
			if surplus[s] == 0 {
				s++
				continue
			}
			if deficit[d] == 0 {
				d++
				continue
			}
			m := min(surplus[s], deficit[d])
			p.Transfers = append(p.Transfers, Transfer{From: s, To: d, Tokens: m})
			surplus[s] -= m
			deficit[d] -= m
			intraSent[s] += m
		}
	}

	// Phase 2: inter-node shipping with per-node water-filling. For each
	// node with residual surplus, choose how much each of its senders
	// ships inter so the maximum sender cost is minimized:
	// cost_i = bIntra·intra_i + bIntra·(s_i − x_i) + bInter·x_i is wrong —
	// the residual s_i must all go inter; what we can rebalance is which
	// sender's tokens were matched intra in phase 1. Re-run the split per
	// node: total intra capacity is fixed, reassign it to equalize costs.
	for n := 0; n < c.Nodes; n++ {
		rebalanceNode(c, n, tokens, target, intraSent)
	}
	// Rebuild transfers from the adjusted splits: phase 1 transfers are
	// regenerated (the matching pairs within a node are cost-identical).
	// recvLeft is a flat per-rank vector rather than a per-node map — the
	// planner re-solves remapping every iteration, so this loop is on the
	// campaign hot path and map churn shows up in allocs/op.
	p.Transfers = p.Transfers[:0]
	interSend := make([]int, len(tokens))
	recvLeft := make([]int, len(tokens))
	for n := 0; n < c.Nodes; n++ {
		lo, hi := n*P, (n+1)*P
		// Intra matching honoring intraSent quotas.
		for r := lo; r < hi; r++ {
			if d := target[r] - tokens[r]; d > 0 {
				recvLeft[r] = d
			} else {
				recvLeft[r] = 0
			}
		}
		for r := lo; r < hi; r++ {
			s := tokens[r] - target[r]
			if s <= 0 {
				continue
			}
			give := min(intraSent[r], s)
			for d := lo; d < hi; d++ {
				if give == 0 {
					break
				}
				if recvLeft[d] == 0 {
					continue
				}
				m := min(give, recvLeft[d])
				p.Transfers = append(p.Transfers, Transfer{From: r, To: d, Tokens: m})
				recvLeft[d] -= m
				give -= m
				s -= m
			}
			interSend[r] = s
			p.InterTokens += s
		}
	}

	// Phase 3: route inter tokens to cross-node deficits (receiver choice
	// does not affect the Eq. 2 objective; pair deterministically).
	type slot struct{ rank, amt int }
	var senders, receivers []slot
	for i := range tokens {
		if interSend[i] > 0 {
			senders = append(senders, slot{i, interSend[i]})
		}
	}
	recvNeed := make([]int, len(tokens))
	for i := range tokens {
		recvNeed[i] = target[i] - tokens[i]
	}
	for _, tr := range p.Transfers {
		recvNeed[tr.To] -= tr.Tokens
	}
	for i, need := range recvNeed {
		if need > 0 {
			receivers = append(receivers, slot{i, need})
		}
	}
	si, ri := 0, 0
	for si < len(senders) && ri < len(receivers) {
		s, r := &senders[si], &receivers[ri]
		if s.amt == 0 {
			si++
			continue
		}
		if r.amt == 0 {
			ri++
			continue
		}
		m := min(s.amt, r.amt)
		p.Transfers = append(p.Transfers, Transfer{From: s.rank, To: r.rank, Tokens: m})
		s.amt -= m
		r.amt -= m
	}
	for _, s := range senders {
		if s.amt != 0 {
			return nil, fmt.Errorf("remap: internal error, %d unrouted tokens at rank %d", s.amt, s.rank)
		}
	}

	// Objective value.
	cost := make([]float64, len(tokens))
	for _, tr := range p.Transfers {
		per := bInter
		if c.SameNode(tr.From, tr.To) {
			per = bIntra
		}
		cost[tr.From] += per * float64(tr.Tokens)
	}
	for _, cst := range cost {
		if cst > p.MaxSenderCost {
			p.MaxSenderCost = cst
		}
	}
	return p, nil
}

// rebalanceNode redistributes a node's fixed intra-matching capacity over
// its surplus ranks so that sender costs equalize (water-fill): senders
// with larger surplus get more of the cheap intra quota. Mutates intraSent.
func rebalanceNode(c *cluster.Cluster, node int, tokens, target, intraSent []int) {
	lo, hi := node*c.GPUsPerNode, (node+1)*c.GPUsPerNode
	var sendersIdx []int
	var capTotal, surplusTotal int
	for r := lo; r < hi; r++ {
		if s := tokens[r] - target[r]; s > 0 {
			sendersIdx = append(sendersIdx, r)
			surplusTotal += s
		}
		capTotal += intraSent[r]
	}
	if len(sendersIdx) <= 1 || capTotal == 0 {
		return
	}
	// Give intra quota preferentially to the largest surpluses: sender
	// cost is bIntra·intra + bInter·(s − intra); equalizing costs means
	// equalizing the inter share across senders as much as possible.
	// Water-fill the *inter* amounts: inter_i = max(s_i − w, 0) with w
	// chosen so Σ inter_i = surplusTotal − capTotal.
	interTotal := surplusTotal - capTotal
	if interTotal < 0 {
		interTotal = 0
	}
	s := make([]int, len(sendersIdx))
	for i, r := range sendersIdx {
		s[i] = tokens[r] - target[r]
	}
	// Binary search w over integers.
	wlo, whi := 0, 0
	for _, v := range s {
		if v > whi {
			whi = v
		}
	}
	interAt := func(w int) int {
		var sum int
		for _, v := range s {
			if v > w {
				sum += v - w
			}
		}
		return sum
	}
	for wlo < whi {
		mid := (wlo + whi) / 2
		if interAt(mid) > interTotal {
			wlo = mid + 1
		} else {
			whi = mid
		}
	}
	w := wlo
	inter := make([]int, len(s))
	assigned := 0
	for i, v := range s {
		if v > w {
			inter[i] = v - w
			assigned += inter[i]
		}
	}
	// interAt(w) <= interTotal: distribute the remainder to the senders
	// with the most remaining intra allocation (cost ties broken by index).
	rem := interTotal - assigned
	order := make([]int, len(s))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s[order[a]] > s[order[b]] })
	for rem > 0 {
		progressed := false
		for _, i := range order {
			if rem == 0 {
				break
			}
			if inter[i] < s[i] {
				inter[i]++
				rem--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	for i, r := range sendersIdx {
		intraSent[r] = s[i] - inter[i]
	}
}

// Emit schedules the plan's transfers as a dynamic-shape alltoallv on the
// fabric (the primitive the paper's implementation uses, §4); the
// returned barrier completes when every token has arrived. bytesPerToken
// converts token counts to wire bytes (activation width × element size).
func Emit(f *cluster.Fabric, label string, p *Plan, bytesPerToken float64, deps ...*sim.Task) *sim.Task {
	transfers := make([]collective.Transfer, 0, len(p.Transfers))
	for _, tr := range p.Transfers {
		transfers = append(transfers, collective.Transfer{
			From: tr.From, To: tr.To, Bytes: float64(tr.Tokens) * bytesPerToken,
		})
	}
	return collective.AllToAllV(f, label, transfers, deps...)
}

// Apply returns the token distribution after executing the plan, for
// verification.
func Apply(tokens []int, p *Plan) []int {
	out := append([]int(nil), tokens...)
	for _, tr := range p.Transfers {
		out[tr.From] -= tr.Tokens
		out[tr.To] += tr.Tokens
	}
	return out
}
