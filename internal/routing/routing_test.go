package routing

import (
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/sim"
)

func fabric(t *testing.T, spec cluster.Spec, nodes int) (*sim.Engine, *cluster.Fabric) {
	t.Helper()
	e := sim.NewEngine()
	return e, cluster.NewFabric(e, cluster.MustNew(spec, nodes))
}

func TestDisabledFallsBackToDirect(t *testing.T) {
	e, f := fabric(t, cluster.ClusterA, 2)
	r := New(f, false)
	bytes := f.C.NICBandwidth // 1 second direct
	r.Transfer("kv", 0, 8, bytes)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk < 0.99 {
		t.Fatalf("direct transfer should take ~1s, got %v", mk)
	}
	// Only NIC 0 (GPU 0's) and NIC 4 (GPU 8's) should be active.
	if f.NICSend[1].BusyTime != 0 {
		t.Fatal("direct transfer must not use other NICs")
	}
}

func TestRoutedUsesAllNICs(t *testing.T) {
	e, f := fabric(t, cluster.ClusterA, 2)
	r := New(f, true)
	bytes := f.C.NICBandwidth // direct would take 1 second
	r.Transfer("kv", 0, 8, bytes)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With 4 NICs the inter phase takes ~0.25s/RoutedInterEff = 0.5s;
	// dispatch/combine add ~(7/8)·n/400GB/s each. Expect below ~0.7 of
	// the direct time (the paper's measured 2.18ms -> 1.3ms is ~0.6x).
	if mk > 0.7 {
		t.Fatalf("routed transfer should clearly beat 1s direct, got %v s", mk)
	}
	for nic := 0; nic < 4; nic++ {
		if f.NICSend[nic].BusyTime == 0 {
			t.Fatalf("NIC %d tx idle; routing should engage all NICs", nic)
		}
		if f.NICRecv[4+nic].BusyTime == 0 {
			t.Fatalf("NIC %d rx idle on destination node", 4+nic)
		}
	}
}

func TestRoutedMatchesEq1Shape(t *testing.T) {
	e, f := fabric(t, cluster.ClusterA, 2)
	r := New(f, true)
	n := 8 * f.C.NICBandwidth // large transfer, latency negligible
	r.Transfer("kv", 0, 8, n)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	bIntra := 1 / f.C.IntraBandwidth
	// 8 proxies over 4 shared NICs at RoutedInterEff: effective inter
	// step carries n/4 per NIC at derated bandwidth.
	bInterEff := 1 / (f.C.NICBandwidth * RoutedInterEff)
	want := Eq1Cost(n, 4, 4, bIntra, bInterEff)
	if mk < 0.5*want || mk > 1.5*want {
		t.Fatalf("routed time %v not within 50%% of Eq.1 estimate %v", mk, want)
	}
}

func TestIntraNodeNeverRouted(t *testing.T) {
	e, f := fabric(t, cluster.ClusterA, 1)
	r := New(f, true)
	r.Transfer("kv", 0, 1, 1e9)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range f.NICSend {
		if f.NICSend[i].BusyTime != 0 {
			t.Fatal("intra-node transfer must not touch NICs")
		}
	}
}

func TestSelfAndZeroTransfersFree(t *testing.T) {
	e, f := fabric(t, cluster.ClusterA, 2)
	r := New(f, true)
	r.Transfer("a", 3, 3, 1e9)
	r.Transfer("b", 0, 8, 0)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 0 {
		t.Fatalf("self/zero transfers should be free, makespan %v", mk)
	}
}

func TestProxyCapRespected(t *testing.T) {
	e, f := fabric(t, cluster.ClusterA, 2)
	r := New(f, true)
	r.Proxies = 2
	r.Transfer("kv", 0, 8, f.C.NICBandwidth)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Proxies 2 means local ranks 0,1 send — both on NIC 0; NIC 1 idle.
	if f.NICSend[1].BusyTime != 0 {
		t.Fatal("with 2 proxies only NIC 0 should be used on Cluster A")
	}
}

func TestClusterCRoutingScalesWithNICs(t *testing.T) {
	// On Cluster C (8 NICs, 1:1), routing should approach 8x on the inter
	// phase for large transfers.
	e, f := fabric(t, cluster.ClusterC, 2)
	r := New(f, true)
	n := 4 * f.C.NICBandwidth // 4 s direct
	r.Transfer("kv", 0, 8, n)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	bIntra := 1 / f.C.IntraBandwidth
	bInter := 1 / f.C.NICBandwidth
	want := Eq1Cost(n, 8, 8, bIntra, bInter/RoutedInterEff)
	if mk > 1.5*want {
		t.Fatalf("routed time %v vs Eq.1 %v: routing not scaling across NICs", mk, want)
	}
	if mk > DirectCost(n, bInter)/2.5 {
		t.Fatalf("routed %v should be far below direct %v", mk, DirectCost(n, bInter))
	}
}

func TestEq1Properties(t *testing.T) {
	bIntra, bInter := 1/400e9, 1/25e9
	n := 1e9
	direct := DirectCost(n, bInter)
	routed := Eq1Cost(n, 8, 8, bIntra, bInter)
	if routed >= direct {
		t.Fatalf("Eq.1 with 8 proxies (%v) should beat direct (%v)", routed, direct)
	}
	// Monotone improvement in proxy count (for the inter-dominated regime).
	prev := Eq1Cost(n, 1, 1, bIntra, bInter)
	if prev != direct {
		t.Fatalf("x1=x2=1 should equal direct cost: %v vs %v", prev, direct)
	}
	for x := 2; x <= 8; x *= 2 {
		cur := Eq1Cost(n, x, x, bIntra, bInter)
		if cur >= prev {
			t.Fatalf("Eq.1 should improve with more proxies: x=%d gives %v >= %v", x, cur, prev)
		}
		prev = cur
	}
}

func TestEq1PanicsOnBadProxies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Eq1Cost(1, 0, 1, 1, 1)
}

func TestAsymmetricProxiesUseMin(t *testing.T) {
	bIntra, bInter := 1/400e9, 1/25e9
	// Inter term must be governed by min(x1,x2).
	a := Eq1Cost(1e9, 8, 2, bIntra, bInter)
	b := Eq1Cost(1e9, 2, 2, bIntra, bInter)
	if a < b {
		t.Fatalf("x2=2 bottleneck: %v should be >= %v", a, b)
	}
}

// Routed transfers between different node pairs should overlap freely:
// two concurrent routed flows between disjoint node pairs take the same
// time as one.
func TestDisjointRoutedFlowsOverlap(t *testing.T) {
	e, f := fabric(t, cluster.ClusterA, 4)
	r := New(f, true)
	n := f.C.NICBandwidth
	r.Transfer("f1", 0, 8, n)   // node 0 -> 1
	r.Transfer("f2", 16, 24, n) // node 2 -> 3
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Single-flow baseline on a fresh engine.
	e1, f1 := fabric(t, cluster.ClusterA, 4)
	New(f1, true).Transfer("f1", 0, 8, n)
	mk1, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk > mk1*1.01 {
		t.Fatalf("disjoint flows should not interfere: %v vs %v", mk, mk1)
	}
}
