// Package routing implements Zeppelin's communication routing layer
// (§3.3): it disaggregates logical inter-node transfers from fixed GPU–NIC
// affinity by decomposing each cross-node send into three steps —
// intra-node dispatch to send-proxy ranks, multi-NIC inter-node transfer,
// and intra-node combine at the destination. With a ~10× bandwidth gap
// between NVSwitch and a single NIC, spreading one flow across all of a
// node's NICs converts the per-round ring-attention bottleneck from one
// NIC's bandwidth to the node's aggregate bandwidth (Eq. 1).
package routing

import (
	"fmt"

	"zeppelin/internal/cluster"
	"zeppelin/internal/sim"
)

// RoutedInterEff derates the multi-NIC transfer step of routed sends: the
// routing layer's copy kernels contend for SMs with attention compute, so
// inter-node transfers stall between communication kernels — the
// "bubbles" of Fig. 12b, where the measured per-round communication drops
// from 2.18 ms to ~1.3 ms rather than the ideal NIC-count factor.
const RoutedInterEff = 0.5

// Router emits transfer tasks onto a fabric. With Enabled=false it falls
// back to direct sends (the TE CP baseline behaviour), which makes the
// router the single switch for the Fig. 11 "w/ Routing" ablation.
type Router struct {
	F *cluster.Fabric
	// Enabled selects three-step routing for cross-node transfers.
	Enabled bool
	// Proxies caps the number of proxy ranks per node; 0 means all GPUs
	// of the node serve as proxies (the paper pairs senders and receivers
	// one-to-one, x1 = x2).
	Proxies int
}

// New builds a router over a fabric.
func New(f *cluster.Fabric, enabled bool) *Router {
	return &Router{F: f, Enabled: enabled}
}

// proxyCount resolves the effective number of proxies per node.
func (r *Router) proxyCount() int {
	p := r.F.C.GPUsPerNode
	if r.Proxies > 0 && r.Proxies < p {
		return r.Proxies
	}
	return p
}

// Transfer moves bytes from src to dst rank, returning the task that
// completes when all data has arrived. Intra-node and self transfers are
// always sent directly; cross-node transfers are routed in three steps
// when routing is enabled.
func (r *Router) Transfer(label string, src, dst int, bytes float64, deps ...*sim.Task) *sim.Task {
	c := r.F.C
	if !r.Enabled || src == dst || c.SameNode(src, dst) || bytes <= 0 {
		return r.F.Send(label, src, dst, bytes, deps...)
	}
	x := r.proxyCount()
	srcNode, dstNode := c.NodeOf(src), c.NodeOf(dst)
	srcRanks, dstRanks := c.RanksOfNode(srcNode), c.RanksOfNode(dstNode)

	chunk := bytes / float64(x)
	arrivals := make([]*sim.Task, 0, x)
	for i := 0; i < x; i++ {
		sp := srcRanks[i%len(srcRanks)] // send proxy
		rp := dstRanks[i%len(dstRanks)] // receive proxy (one-to-one pairing)

		// Step 1: intra-node dispatch src -> send proxy. The source's own
		// chunk needs no dispatch.
		var dispatched *sim.Task
		if sp == src {
			dispatched = r.F.E.Barrier(label+"/disp-self", src).After(deps...)
		} else {
			dispatched = r.F.Send(fmt.Sprintf("%s/disp%d", label, i), src, sp, chunk, deps...)
		}

		// Step 2: inter-node transfer over the proxy pair's NICs, derated
		// for SM-contention stalls (Fig. 12b).
		xfer := r.F.SendVia(fmt.Sprintf("%s/xfer%d", label, i), sp, rp,
			c.NICOf(sp), c.NICOf(rp), chunk/RoutedInterEff, dispatched)

		// Step 3: intra-node combine receive proxy -> dst.
		if rp == dst {
			arrivals = append(arrivals, xfer)
		} else {
			arrivals = append(arrivals, r.F.Send(fmt.Sprintf("%s/comb%d", label, i), rp, dst, chunk, xfer))
		}
	}
	return r.F.E.Barrier(label, dst).After(arrivals...)
}

// Eq1Cost evaluates the paper's Eq. 1: the analytic cost of a routed
// transfer of n bytes with x1 send proxies and x2 receive proxies, given
// inverse bandwidths (seconds per byte). Used for tests and the ablation
// analysis; the simulator computes the same structurally.
func Eq1Cost(n float64, x1, x2 int, bIntra, bInter float64) float64 {
	if x1 < 1 || x2 < 1 {
		panic("routing: proxy counts must be >= 1")
	}
	dispatch := bIntra * n * float64(x1-1) / float64(x1)
	inter := bInter * n / float64(min(x1, x2))
	combine := bIntra * n * float64(x2-1) / float64(x2)
	return dispatch + inter + combine
}

// DirectCost is the unrouted baseline cost bInter·n of Eq. 1's preamble.
func DirectCost(n float64, bInter float64) float64 { return bInter * n }
