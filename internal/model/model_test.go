package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range []Config{LLaMA3B, LLaMA7B, LLaMA13B, LLaMA30B, MoE8x550M} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"3B", "7B", "13B", "30B", "8x550M"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, c.Name)
		}
	}
	if _, err := ByName("70B"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "indiv", Hidden: 100, Layers: 1, Heads: 3, KVHeads: 3, FFN: 1, BytesPerElem: 2},
		{Name: "kv", Hidden: 96, Layers: 1, Heads: 6, KVHeads: 4, FFN: 1, BytesPerElem: 2},
		{Name: "elem", Hidden: 96, Layers: 1, Heads: 6, KVHeads: 6, FFN: 1},
		{Name: "moe", Hidden: 96, Layers: 1, Heads: 6, KVHeads: 6, BytesPerElem: 2, MoE: true, Experts: 2, TopK: 4, ExpertFFN: 8},
		{Name: "noffn", Hidden: 96, Layers: 1, Heads: 6, KVHeads: 6, BytesPerElem: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %q should fail validation", c.Name)
		}
	}
}

func TestParamCountsMatchNames(t *testing.T) {
	cases := []struct {
		c        Config
		min, max float64
	}{
		{LLaMA3B, 2.0e9, 4.5e9},
		{LLaMA7B, 5.5e9, 8.5e9},
		{LLaMA13B, 11e9, 15e9},
		{LLaMA30B, 27e9, 36e9},
		{MoE8x550M, 3.5e9, 6e9}, // 8 × ~550M experts + attention
	}
	for _, tc := range cases {
		got := tc.c.ParamCount()
		if got < tc.min || got > tc.max {
			t.Errorf("%s: param count %.2fB outside [%.1fB, %.1fB]",
				tc.c.Name, got/1e9, tc.min/1e9, tc.max/1e9)
		}
	}
}

func TestCausalPairs(t *testing.T) {
	if CausalPairs(1) != 1 {
		t.Fatal("one token attends to itself")
	}
	if CausalPairs(4) != 10 {
		t.Fatalf("CausalPairs(4) = %v, want 10", CausalPairs(4))
	}
}

func TestAttnFlopsQuadraticScaling(t *testing.T) {
	c := LLaMA7B
	f1 := c.CausalAttnFlops(8192)
	f2 := c.CausalAttnFlops(16384)
	ratio := f2 / f1
	if math.Abs(ratio-4) > 0.01 {
		t.Fatalf("doubling length should ~4x attention flops, got %.3fx", ratio)
	}
}

func TestLinearFlopsPerTokenDense(t *testing.T) {
	c := LLaMA7B
	h := 4096.0
	want := 2*(2*h*h+2*h*h) + 2*3*h*11008
	if got := c.LinearFlopsPerToken(); got != want {
		t.Fatalf("linear flops = %v, want %v", got, want)
	}
}

func TestLinearFlopsMoEUsesTopK(t *testing.T) {
	c := MoE8x550M
	h := float64(c.Hidden)
	want := 2*(2*h*h+2*h*h) + 2*3*h*float64(c.ExpertFFN)*2
	if got := c.LinearFlopsPerToken(); got != want {
		t.Fatalf("moe linear flops = %v, want %v", got, want)
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// 7B MHA: 2 tensors × 4096 × 2 bytes.
	if got := LLaMA7B.KVBytesPerToken(); got != 16384 {
		t.Fatalf("kv bytes = %v, want 16384", got)
	}
	if got := LLaMA7B.ActivationBytesPerToken(); got != 8192 {
		t.Fatalf("act bytes = %v, want 8192", got)
	}
}

func TestHeadDims(t *testing.T) {
	if LLaMA7B.HeadDim() != 128 {
		t.Fatalf("7B head dim = %d", LLaMA7B.HeadDim())
	}
	if LLaMA7B.KVDim() != 4096 {
		t.Fatalf("7B kv dim = %d", LLaMA7B.KVDim())
	}
}

// Property: attention flops are monotone and superlinear in length; linear
// flops per token are constant (independent of length by construction).
func TestPropertyAttnSuperlinear(t *testing.T) {
	c := LLaMA13B
	f := func(a uint16) bool {
		s := float64(a%32768) + 2
		// superlinearity: f(2s) > 2 f(s)
		return c.CausalAttnFlops(2*s) > 2*c.CausalAttnFlops(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting a sequence across G ranks conserves causal pairs
// when counted as the sum of each rank's assigned pair share — the chunked
// balanced split in the attention engine relies on this identity.
func TestPropertyPairAdditivity(t *testing.T) {
	f := func(a, b uint16) bool {
		s1, s2 := float64(a%10000), float64(b%10000)
		total := CausalPairs(s1 + s2)
		// Pairs split as: first part's own pairs + cross block (s2 × s1)
		// + second part's own pairs.
		split := CausalPairs(s1) + s1*s2 + CausalPairs(s2)
		return math.Abs(total-split) < 1e-6*math.Max(total, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
