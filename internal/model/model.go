// Package model defines transformer model configurations matching the five
// architectures evaluated in the paper (§5: LLaMA 3B/7B/13B/30B dense and
// an 8×550M MoE) and their FLOP / activation-byte calculators. These feed
// the cost model: attention cost is quadratic in sequence length, linear
// modules are token-wise, and distributed attention moves KV activations
// whose volume is linear in sequence length.
package model

import "fmt"

// Config describes a transformer architecture.
type Config struct {
	Name    string
	Hidden  int // model dimension
	Layers  int
	Heads   int
	KVHeads int // = Heads for MHA (the paper uses multi-head attention)
	FFN     int // feed-forward inner dimension (gated, 3 matrices)
	Vocab   int

	// MoE fields; zero for dense models.
	MoE       bool
	Experts   int
	TopK      int
	ExpertFFN int

	// BytesPerElem is the activation element size (2 for BF16).
	BytesPerElem int
}

// The five evaluated configurations. Shapes follow the LLaMA family.
var (
	LLaMA3B = Config{
		Name: "3B", Hidden: 3072, Layers: 28, Heads: 24, KVHeads: 24,
		FFN: 8192, Vocab: 32000, BytesPerElem: 2,
	}
	LLaMA7B = Config{
		Name: "7B", Hidden: 4096, Layers: 32, Heads: 32, KVHeads: 32,
		FFN: 11008, Vocab: 32000, BytesPerElem: 2,
	}
	LLaMA13B = Config{
		Name: "13B", Hidden: 5120, Layers: 40, Heads: 40, KVHeads: 40,
		FFN: 13824, Vocab: 32000, BytesPerElem: 2,
	}
	LLaMA30B = Config{
		Name: "30B", Hidden: 6656, Layers: 60, Heads: 52, KVHeads: 52,
		FFN: 17920, Vocab: 32000, BytesPerElem: 2,
	}
	// MoE8x550M: 8 experts of ~550M parameters each (summed over layers),
	// top-2 routing: 3·hidden·expertFFN·layers ≈ 550M per expert.
	MoE8x550M = Config{
		Name: "8x550M", Hidden: 2048, Layers: 24, Heads: 16, KVHeads: 16,
		FFN: 5504, Vocab: 32000, BytesPerElem: 2,
		MoE: true, Experts: 8, TopK: 2, ExpertFFN: 3712,
	}
)

// ByName returns a preset configuration by its paper name.
func ByName(name string) (Config, error) {
	for _, c := range []Config{LLaMA3B, LLaMA7B, LLaMA13B, LLaMA30B, MoE8x550M} {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q", name)
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.Hidden <= 0 || c.Layers <= 0 || c.Heads <= 0 || c.KVHeads <= 0 {
		return fmt.Errorf("model %q: non-positive dimension", c.Name)
	}
	if c.Hidden%c.Heads != 0 {
		return fmt.Errorf("model %q: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	}
	if c.Heads%c.KVHeads != 0 {
		return fmt.Errorf("model %q: heads %d not divisible by kv heads %d", c.Name, c.Heads, c.KVHeads)
	}
	if c.BytesPerElem <= 0 {
		return fmt.Errorf("model %q: bytes per element must be positive", c.Name)
	}
	if c.MoE && (c.Experts <= 0 || c.TopK <= 0 || c.TopK > c.Experts || c.ExpertFFN <= 0) {
		return fmt.Errorf("model %q: invalid MoE config", c.Name)
	}
	if !c.MoE && c.FFN <= 0 {
		return fmt.Errorf("model %q: missing FFN dim", c.Name)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// KVDim is the total key (or value) width per token.
func (c Config) KVDim() int { return c.HeadDim() * c.KVHeads }

// AttnFlopsForPairs returns the attention-core FLOPs needed to process a
// given number of query–key token pairs: QK^T and P·V each contribute
// 2·headDim multiply–adds per head per pair, i.e. 4·hidden FLOPs per pair
// (softmax cost is folded into the efficiency factor of the cost model).
func (c Config) AttnFlopsForPairs(pairs float64) float64 {
	return 4 * float64(c.Hidden) * pairs
}

// CausalPairs is the number of (query, key) pairs a causal mask admits for
// a sequence of length s: s(s+1)/2.
func CausalPairs(s float64) float64 { return s * (s + 1) / 2 }

// CausalAttnFlops is the attention-core FLOPs for a full causal sequence.
func (c Config) CausalAttnFlops(s float64) float64 {
	return c.AttnFlopsForPairs(CausalPairs(s))
}

// LinearFlopsPerToken is the per-token FLOPs of the token-wise modules:
// QKV and output projections plus the (gated) FFN. For MoE models the FFN
// term is TopK experts wide. Each weight contributes a multiply–add.
func (c Config) LinearFlopsPerToken() float64 {
	h := float64(c.Hidden)
	proj := 2 * (2*h*h + 2*h*float64(c.KVDim())) // Q,O: h×h; K,V: h×kv
	var ffn float64
	if c.MoE {
		ffn = 2 * 3 * h * float64(c.ExpertFFN) * float64(c.TopK)
	} else {
		ffn = 2 * 3 * h * float64(c.FFN)
	}
	return proj + ffn
}

// KVBytesPerToken is the size of one token's key+value activations for a
// single layer: 2 tensors × KV width × element size. This is the unit of
// ring-attention communication volume.
func (c Config) KVBytesPerToken() float64 {
	return 2 * float64(c.KVDim()) * float64(c.BytesPerElem)
}

// ActivationBytesPerToken is the hidden-state size of one token, the unit
// of remapping (alltoallv) communication volume.
func (c Config) ActivationBytesPerToken() float64 {
	return float64(c.Hidden) * float64(c.BytesPerElem)
}

// ParamCount estimates total parameters (embeddings + layers), used for
// documentation and sanity tests that the presets match their names.
func (c Config) ParamCount() float64 {
	h := float64(c.Hidden)
	perLayer := 2*h*h + 2*h*float64(c.KVDim()) // attention projections
	if c.MoE {
		perLayer += 3 * h * float64(c.ExpertFFN) * float64(c.Experts)
	} else {
		perLayer += 3 * h * float64(c.FFN)
	}
	return perLayer*float64(c.Layers) + 2*h*float64(c.Vocab)
}
