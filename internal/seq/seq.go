// Package seq defines the sequence, shard, and placement-plan types shared
// by the sequence partitioner, the attention engine, and the baselines.
package seq

import (
	"fmt"
	"slices"
	"sort"

	"zeppelin/internal/model"
)

// Zone classifies where a sequence executes (§3.1, Fig. 5).
type Zone uint8

// The three zones: local (no communication), intra-node (NVSwitch ring),
// inter-node (cross-node ring).
const (
	ZoneLocal Zone = iota
	ZoneIntra
	ZoneInter
)

// String names a zone as in the paper's figures.
func (z Zone) String() string {
	switch z {
	case ZoneLocal:
		return "local"
	case ZoneIntra:
		return "intra-node"
	case ZoneInter:
		return "inter-node"
	default:
		return fmt.Sprintf("zone(%d)", uint8(z))
	}
}

// Sequence is one variable-length training sample.
type Sequence struct {
	ID  int
	Len int // tokens
}

// Ring is one distributed-attention group executing a single sequence
// over an ordered set of ranks with the balanced 2G-chunk causal split.
type Ring struct {
	Seq   Sequence
	Zone  Zone
	Ranks []int // ring order; len(Ranks) = G ≥ 2
	// Weights, when non-nil, are relative per-rank query-chunk shares
	// (len = G, positive, any scale): rank i owns Weights[i]/Σ of the
	// sequence's tokens and causal pairs instead of the even 1/G. The
	// speed-aware partitioner sets them proportional to rank speeds on a
	// degraded cluster so a ring's lock-stepped rounds are not paced by
	// the straggler; KV circulation stays even. Nil means the paper's
	// balanced 2G-chunk split.
	Weights []float64
}

// G returns the ring group size.
func (r Ring) G() int { return len(r.Ranks) }

// TokensPerRank returns each rank's token share under the 2G-chunk causal
// balancing scheme (rank i holds chunks i and 2G−1−i, i.e. ~Len/G tokens),
// or the weighted split when Weights are set. Remainder tokens go to the
// earliest ranks so totals are conserved.
func (r Ring) TokensPerRank() []int {
	return r.TokensPerRankInto(nil)
}

// TokensPerRankInto is TokensPerRank writing into dst when it has
// sufficient capacity, so planner hot loops can reuse one scratch buffer
// across rings instead of allocating a share vector per call.
func (r Ring) TokensPerRankInto(dst []int) []int {
	if r.Weights == nil {
		return SplitEvenInto(dst, r.Seq.Len, r.G())
	}
	return SplitWeightedInto(dst, r.Seq.Len, r.Weights)
}

// PairsPerRank returns each rank's causal-pair share. The 2G-chunk scheme
// balances pairs exactly across ranks in the continuous limit; we model
// the share as total pairs / G. Weighted rings spread pairs by weight;
// callers needing per-rank resolution use PairShares.
func (r Ring) PairsPerRank() float64 {
	return model.CausalPairs(float64(r.Seq.Len)) / float64(r.G())
}

// PairShares returns every rank's causal-pair share, honoring Weights.
// The unweighted path reproduces PairsPerRank's arithmetic exactly.
func (r Ring) PairShares() []float64 {
	pairs := model.CausalPairs(float64(r.Seq.Len))
	out := make([]float64, r.G())
	var sum float64
	for _, w := range r.Weights {
		if w > 0 {
			sum += w
		}
	}
	if r.Weights == nil || sum <= 0 {
		per := pairs / float64(r.G())
		for i := range out {
			out[i] = per
		}
		return out
	}
	for i := range out {
		w := r.Weights[i]
		if w < 0 {
			w = 0
		}
		out[i] = pairs * w / sum
	}
	return out
}

// Plan is a full placement of a batch across a world of ranks: whole
// sequences assigned locally plus ring groups for split sequences.
type Plan struct {
	World int
	// Local[rank] lists sequences executed entirely on that rank.
	Local [][]Sequence
	Rings []Ring
}

// NewPlan allocates an empty plan for a world size.
func NewPlan(world int) *Plan {
	return &Plan{World: world, Local: make([][]Sequence, world)}
}

// TokensPerRank returns the attention-layout token count of every rank.
func (p *Plan) TokensPerRank() []int {
	return p.TokensPerRankInto(nil, nil)
}

// TokensPerRankInto is TokensPerRank accumulating into dst (zeroed and
// reused when it has capacity for the world) with share as ring-split
// scratch, for allocation-free accounting in planner hot paths.
func (p *Plan) TokensPerRankInto(dst, share []int) []int {
	if cap(dst) >= p.World {
		dst = dst[:p.World]
		for i := range dst {
			dst[i] = 0
		}
	} else {
		dst = make([]int, p.World)
	}
	for r, ls := range p.Local {
		for _, s := range ls {
			dst[r] += s.Len
		}
	}
	for _, ring := range p.Rings {
		share = ring.TokensPerRankInto(share)
		for i, r := range ring.Ranks {
			dst[r] += share[i]
		}
	}
	return dst
}

// PairsPerRank returns the causal-pair (quadratic attention) load of every
// rank, the balance metric of Alg. 2.
func (p *Plan) PairsPerRank() []float64 {
	out := make([]float64, p.World)
	for r, ls := range p.Local {
		for _, s := range ls {
			out[r] += model.CausalPairs(float64(s.Len))
		}
	}
	for _, ring := range p.Rings {
		pp := ring.PairShares()
		for i, r := range ring.Ranks {
			out[r] += pp[i]
		}
	}
	return out
}

// TotalTokens sums all placed tokens.
func (p *Plan) TotalTokens() int {
	var n int
	for _, t := range p.TokensPerRank() {
		n += t
	}
	return n
}

// RingsOn returns the rings that include a rank, preserving plan order.
func (p *Plan) RingsOn(rank int) []Ring {
	var out []Ring
	for _, ring := range p.Rings {
		for _, r := range ring.Ranks {
			if r == rank {
				out = append(out, ring)
				break
			}
		}
	}
	return out
}

// Validate checks structural invariants: ranks in range, ring sizes ≥ 2,
// no duplicate ranks within a ring, zone consistency, and exact token
// conservation against the input batch.
func (p *Plan) Validate(batch []Sequence) error {
	if len(p.Local) != p.World {
		return fmt.Errorf("plan: local lists %d != world %d", len(p.Local), p.World)
	}
	placed := make(map[int]int) // seq ID -> placed tokens
	for r, ls := range p.Local {
		if r < 0 || r >= p.World {
			return fmt.Errorf("plan: rank %d out of range", r)
		}
		for _, s := range ls {
			placed[s.ID] += s.Len
		}
	}
	for i, ring := range p.Rings {
		if ring.G() < 2 {
			return fmt.Errorf("plan: ring %d has %d ranks, need >= 2", i, ring.G())
		}
		if ring.Zone == ZoneLocal {
			return fmt.Errorf("plan: ring %d marked local", i)
		}
		seen := make(map[int]bool)
		for _, r := range ring.Ranks {
			if r < 0 || r >= p.World {
				return fmt.Errorf("plan: ring %d rank %d out of range", i, r)
			}
			if seen[r] {
				return fmt.Errorf("plan: ring %d has duplicate rank %d", i, r)
			}
			seen[r] = true
		}
		if ring.Weights != nil {
			if len(ring.Weights) != ring.G() {
				return fmt.Errorf("plan: ring %d has %d weights for %d ranks", i, len(ring.Weights), ring.G())
			}
			for j, w := range ring.Weights {
				if w <= 0 {
					return fmt.Errorf("plan: ring %d weight %d is non-positive", i, j)
				}
			}
		}
		placed[ring.Seq.ID] += ring.Seq.Len
	}
	want := make(map[int]int)
	for _, s := range batch {
		want[s.ID] += s.Len
	}
	if len(placed) != len(want) {
		return fmt.Errorf("plan: placed %d distinct sequences, batch has %d", len(placed), len(want))
	}
	for id, n := range want {
		if placed[id] != n {
			return fmt.Errorf("plan: sequence %d placed %d tokens, want %d", id, placed[id], n)
		}
	}
	return nil
}

// SplitEven splits n into k near-equal non-negative parts that sum to n,
// larger parts first. Panics if k <= 0.
func SplitEven(n, k int) []int {
	return SplitEvenInto(nil, n, k)
}

// SplitEvenInto is SplitEven writing into dst when it has capacity k.
func SplitEvenInto(dst []int, n, k int) []int {
	if k <= 0 {
		panic("seq: SplitEven with k <= 0")
	}
	out := sized(dst, k)
	base, rem := n/k, n%k
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// sized returns dst truncated to k when it has the capacity, or a fresh
// slice otherwise.
func sized(dst []int, k int) []int {
	if cap(dst) >= k {
		return dst[:k]
	}
	return make([]int, k)
}

// SplitWeighted splits n into len(weights) non-negative parts
// proportional to the weights (largest-remainder rounding, remainders
// broken by index), summing exactly to n. Non-positive weights receive
// nothing; if no weight is positive the split falls back to even.
// Panics on an empty weight vector.
func SplitWeighted(n int, weights []float64) []int {
	return SplitWeightedInto(nil, n, weights)
}

// SplitWeightedInto is SplitWeighted writing into dst when it has
// capacity len(weights). The rounding scratch still allocates; weighted
// splits are off the healthy-cluster hot path.
func SplitWeightedInto(dst []int, n int, weights []float64) []int {
	k := len(weights)
	if k <= 0 {
		panic("seq: SplitWeighted with no weights")
	}
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		return SplitEvenInto(dst, n, k)
	}
	out := sized(dst, k)
	for i := range out {
		out[i] = 0
	}
	frac := make([]float64, k)
	assigned := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(n) * w / sum
		out[i] = int(exact)
		frac[i] = exact - float64(out[i])
		assigned += out[i]
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return frac[order[a]] > frac[order[b]] })
	for i := 0; assigned < n; i++ {
		out[order[i%k]]++
		assigned++
	}
	return out
}

// SortByLenDesc sorts sequences longest-first (ties broken by ascending
// ID — a total order, so the result is deterministic), the ordering both
// partitioning algorithms start from. slices.SortFunc avoids the
// closure/interface allocations of sort.Slice on the planning hot path.
func SortByLenDesc(s []Sequence) {
	slices.SortFunc(s, func(a, b Sequence) int {
		if a.Len != b.Len {
			return b.Len - a.Len
		}
		return a.ID - b.ID
	})
}

// TotalLen sums sequence lengths.
func TotalLen(s []Sequence) int {
	var n int
	for _, q := range s {
		n += q.Len
	}
	return n
}
