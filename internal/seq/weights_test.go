package seq

import (
	"math"
	"testing"
)

func TestSplitWeighted(t *testing.T) {
	got := SplitWeighted(10, []float64{1, 1})
	if got[0]+got[1] != 10 || got[0] != 5 {
		t.Fatalf("even weights: %v", got)
	}
	// 3:1 split, conserved.
	got = SplitWeighted(100, []float64{3, 1})
	if got[0] != 75 || got[1] != 25 {
		t.Fatalf("3:1 split: %v", got)
	}
	// Zero-weight parts receive nothing; total conserved via remainder.
	got = SplitWeighted(7, []float64{2, 0, 1})
	if got[1] != 0 || got[0]+got[2] != 7 {
		t.Fatalf("zero weight: %v", got)
	}
	// All-zero weights fall back to even.
	got = SplitWeighted(9, []float64{0, 0, 0})
	if got[0]+got[1]+got[2] != 9 || got[0]-got[2] > 1 {
		t.Fatalf("fallback: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty weights must panic")
		}
	}()
	SplitWeighted(1, nil)
}

func TestWeightedRingShares(t *testing.T) {
	even := Ring{Seq: Sequence{ID: 0, Len: 1000}, Zone: ZoneIntra, Ranks: []int{0, 1, 2, 3}}
	weighted := Ring{Seq: Sequence{ID: 0, Len: 1000}, Zone: ZoneIntra, Ranks: []int{0, 1, 2, 3},
		Weights: []float64{1, 1, 1, 0.5}}

	// Even rings: identical shares, matching the legacy scalar.
	shares := even.PairShares()
	for _, s := range shares {
		if s != even.PairsPerRank() {
			t.Fatalf("even shares %v != %v", shares, even.PairsPerRank())
		}
	}
	tok := even.TokensPerRank()
	if tok[0] != 250 {
		t.Fatalf("even tokens %v", tok)
	}

	// Weighted rings: the light rank holds half a share, totals conserved.
	wTok := weighted.TokensPerRank()
	var sum int
	for _, v := range wTok {
		sum += v
	}
	if sum != 1000 {
		t.Fatalf("weighted tokens not conserved: %v", wTok)
	}
	if wTok[3] >= wTok[0] {
		t.Fatalf("light rank should hold fewer tokens: %v", wTok)
	}
	wShares := weighted.PairShares()
	var pairSum float64
	for _, s := range wShares {
		pairSum += s
	}
	if math.Abs(pairSum-even.PairsPerRank()*4) > 1e-9 {
		t.Fatalf("weighted pair shares not conserved: %v", wShares)
	}
	if math.Abs(wShares[3]-wShares[0]/2) > 1e-9 {
		t.Fatalf("weighted pair share ratio wrong: %v", wShares)
	}
}

func TestPlanValidateRejectsBadWeights(t *testing.T) {
	batch := []Sequence{{ID: 0, Len: 100}}
	p := NewPlan(4)
	p.Rings = append(p.Rings, Ring{Seq: batch[0], Zone: ZoneIntra, Ranks: []int{0, 1}, Weights: []float64{1}})
	if err := p.Validate(batch); err == nil {
		t.Fatal("weight/rank length mismatch must fail")
	}
	p = NewPlan(4)
	p.Rings = append(p.Rings, Ring{Seq: batch[0], Zone: ZoneIntra, Ranks: []int{0, 1}, Weights: []float64{1, -1}})
	if err := p.Validate(batch); err == nil {
		t.Fatal("non-positive weight must fail")
	}
	p = NewPlan(4)
	p.Rings = append(p.Rings, Ring{Seq: batch[0], Zone: ZoneIntra, Ranks: []int{0, 1}, Weights: []float64{1, 0.5}})
	if err := p.Validate(batch); err != nil {
		t.Fatalf("valid weighted ring rejected: %v", err)
	}
}
