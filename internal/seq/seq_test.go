package seq

import (
	"testing"
	"testing/quick"
)

func TestZoneString(t *testing.T) {
	if ZoneLocal.String() != "local" || ZoneIntra.String() != "intra-node" || ZoneInter.String() != "inter-node" {
		t.Fatal("zone names wrong")
	}
	if Zone(9).String() == "" {
		t.Fatal("unknown zone should stringify")
	}
}

func TestSplitEven(t *testing.T) {
	got := SplitEven(10, 4)
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitEven(10,4) = %v", got)
		}
	}
	if got := SplitEven(0, 3); got[0]+got[1]+got[2] != 0 {
		t.Fatalf("SplitEven(0,3) = %v", got)
	}
}

func TestSplitEvenPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SplitEven(5, 0)
}

func TestPropertySplitEvenConserves(t *testing.T) {
	f := func(n uint16, k uint8) bool {
		kk := int(k%32) + 1
		parts := SplitEven(int(n), kk)
		sum := 0
		maxP, minP := parts[0], parts[0]
		for _, p := range parts {
			sum += p
			if p > maxP {
				maxP = p
			}
			if p < minP {
				minP = p
			}
		}
		return sum == int(n) && maxP-minP <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRingShares(t *testing.T) {
	r := Ring{Seq: Sequence{ID: 1, Len: 1000}, Zone: ZoneIntra, Ranks: []int{0, 1, 2, 3}}
	if r.G() != 4 {
		t.Fatalf("G = %d", r.G())
	}
	tk := r.TokensPerRank()
	sum := 0
	for _, v := range tk {
		sum += v
	}
	if sum != 1000 {
		t.Fatalf("token shares sum to %d", sum)
	}
	wantPairs := 1000.0 * 1001 / 2 / 4
	if r.PairsPerRank() != wantPairs {
		t.Fatalf("pairs per rank = %v, want %v", r.PairsPerRank(), wantPairs)
	}
}

func TestSortByLenDesc(t *testing.T) {
	s := []Sequence{{ID: 1, Len: 5}, {ID: 2, Len: 9}, {ID: 3, Len: 9}, {ID: 4, Len: 1}}
	SortByLenDesc(s)
	if s[0].ID != 2 || s[1].ID != 3 || s[3].ID != 4 {
		t.Fatalf("sorted = %v", s)
	}
	if TotalLen(s) != 24 {
		t.Fatalf("TotalLen = %d", TotalLen(s))
	}
}

func makePlan() (*Plan, []Sequence) {
	batch := []Sequence{{ID: 0, Len: 4000}, {ID: 1, Len: 100}, {ID: 2, Len: 200}}
	p := NewPlan(4)
	p.Local[0] = append(p.Local[0], batch[1])
	p.Local[3] = append(p.Local[3], batch[2])
	p.Rings = append(p.Rings, Ring{Seq: batch[0], Zone: ZoneIntra, Ranks: []int{0, 1, 2, 3}})
	return p, batch
}

func TestPlanAccounting(t *testing.T) {
	p, batch := makePlan()
	if err := p.Validate(batch); err != nil {
		t.Fatal(err)
	}
	toks := p.TokensPerRank()
	if toks[0] != 1100 || toks[1] != 1000 || toks[2] != 1000 || toks[3] != 1200 {
		t.Fatalf("tokens per rank = %v", toks)
	}
	if p.TotalTokens() != 4300 {
		t.Fatalf("total = %d", p.TotalTokens())
	}
	pairs := p.PairsPerRank()
	if pairs[1] != pairs[2] {
		t.Fatal("ring members should share equal pairs")
	}
	if pairs[0] <= pairs[1] {
		t.Fatal("rank 0 has an extra local sequence, so more pairs")
	}
	rings := p.RingsOn(2)
	if len(rings) != 1 || rings[0].Seq.ID != 0 {
		t.Fatalf("RingsOn(2) = %v", rings)
	}
	if len(p.RingsOn(99)) != 0 {
		t.Fatal("no rings expected on absent rank")
	}
}

func TestPlanValidateCatchesErrors(t *testing.T) {
	batch := []Sequence{{ID: 0, Len: 100}}

	p := NewPlan(2)
	if err := p.Validate(batch); err == nil {
		t.Fatal("missing sequence should fail")
	}

	p = NewPlan(2)
	p.Local[0] = append(p.Local[0], Sequence{ID: 0, Len: 50})
	if err := p.Validate(batch); err == nil {
		t.Fatal("token loss should fail")
	}

	p = NewPlan(2)
	p.Rings = append(p.Rings, Ring{Seq: batch[0], Zone: ZoneIntra, Ranks: []int{0}})
	if err := p.Validate(batch); err == nil {
		t.Fatal("ring of 1 should fail")
	}

	p = NewPlan(2)
	p.Rings = append(p.Rings, Ring{Seq: batch[0], Zone: ZoneIntra, Ranks: []int{0, 0}})
	if err := p.Validate(batch); err == nil {
		t.Fatal("duplicate rank should fail")
	}

	p = NewPlan(2)
	p.Rings = append(p.Rings, Ring{Seq: batch[0], Zone: ZoneLocal, Ranks: []int{0, 1}})
	if err := p.Validate(batch); err == nil {
		t.Fatal("local ring should fail")
	}

	p = NewPlan(2)
	p.Rings = append(p.Rings, Ring{Seq: batch[0], Zone: ZoneInter, Ranks: []int{0, 5}})
	if err := p.Validate(batch); err == nil {
		t.Fatal("out-of-range rank should fail")
	}
}
