package attention

import (
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/costmodel"
	"zeppelin/internal/model"
	"zeppelin/internal/routing"
	"zeppelin/internal/seq"
	"zeppelin/internal/sim"
)

func setup(t *testing.T, spec cluster.Spec, nodes int, routed bool) (*sim.Engine, *Engine) {
	t.Helper()
	e := sim.NewEngine()
	c := cluster.MustNew(spec, nodes)
	f := cluster.NewFabric(e, c)
	r := routing.New(f, routed)
	cm := costmodel.MustNew(model.LLaMA3B, spec, 1)
	return e, New(f, r, cm)
}

func localPlan(world int, lens ...int) *seq.Plan {
	p := seq.NewPlan(world)
	for i, l := range lens {
		p.Local[i%world] = append(p.Local[i%world], seq.Sequence{ID: i, Len: l})
	}
	return p
}

func TestLocalOnlyForwardTime(t *testing.T) {
	e, en := setup(t, cluster.ClusterA, 1, false)
	plan := localPlan(8, 4096)
	en.EmitForward(plan)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := en.CM.CausalAttnTime(4096) + cluster.ClusterA.LaunchLatency
	if !sim.AlmostEqual(mk, want) {
		t.Fatalf("makespan %v, want %v", mk, want)
	}
}

func TestLocalSequencesSerializePerRank(t *testing.T) {
	e, en := setup(t, cluster.ClusterA, 1, false)
	plan := seq.NewPlan(8)
	plan.Local[0] = []seq.Sequence{{ID: 0, Len: 4096}, {ID: 1, Len: 4096}}
	en.EmitForward(plan)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	single := en.CM.CausalAttnTime(4096)
	if mk < 2*single {
		t.Fatalf("two local sequences on one rank must serialize: %v < %v", mk, 2*single)
	}
}

func TestRingConservesComputeAcrossGroupSizes(t *testing.T) {
	// Total compute time (sum over ranks) for one sequence must be ~equal
	// whether it runs locally or in a ring of any size: the 2G-chunk
	// scheme redistributes the causal triangle, it does not change it.
	const L = 32768
	base := func() float64 {
		e, en := setup(t, cluster.ClusterA, 1, false)
		en.EmitForward(localPlan(8, L))
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.KindTotals()[sim.KindCompute]
	}()
	for _, g := range []int{2, 4, 8} {
		e, en := setup(t, cluster.ClusterA, 1, false)
		plan := seq.NewPlan(8)
		ranks := make([]int, g)
		for i := range ranks {
			ranks[i] = i
		}
		plan.Rings = []seq.Ring{{Seq: seq.Sequence{ID: 0, Len: L}, Zone: seq.ZoneIntra, Ranks: ranks}}
		en.EmitForward(plan)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		got := e.KindTotals()[sim.KindCompute]
		// Ring execution adds g² rounds of fixed overhead (launch + sync);
		// the FLOP total must be conserved once that is subtracted.
		overhead := float64(g*g) * (costmodel.RingRoundOverhead + cluster.ClusterA.LaunchLatency)
		flops := got - overhead
		if flops < base*0.9 || flops > base*1.1 {
			t.Fatalf("g=%d: total compute %v (minus overhead %v) deviates from local %v", g, got, overhead, base)
		}
	}
}

func TestRingParallelismShortensMakespan(t *testing.T) {
	const L = 65536
	run := func(g int) float64 {
		e, en := setup(t, cluster.ClusterA, 1, false)
		plan := seq.NewPlan(8)
		if g == 1 {
			plan.Local[0] = []seq.Sequence{{ID: 0, Len: L}}
		} else {
			ranks := make([]int, g)
			for i := range ranks {
				ranks[i] = i
			}
			plan.Rings = []seq.Ring{{Seq: seq.Sequence{ID: 0, Len: L}, Zone: seq.ZoneIntra, Ranks: ranks}}
		}
		en.EmitForward(plan)
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	t1, t8 := run(1), run(8)
	if t8 > t1/4 {
		t.Fatalf("8-way intra ring should be ~8x faster for a compute-bound 64k seq: %v vs %v", t8, t1)
	}
}

func TestInterRingCommBottleneckWithoutRouting(t *testing.T) {
	// A cross-node ring on a short sequence is communication-bound; the
	// makespan must exceed pure compute time substantially.
	e, en := setup(t, cluster.ClusterA, 2, false)
	plan := seq.NewPlan(16)
	ranks := make([]int, 16)
	for i := range ranks {
		ranks[i] = i
	}
	plan.Rings = []seq.Ring{{Seq: seq.Sequence{ID: 0, Len: 8192}, Zone: seq.ZoneInter, Ranks: ranks}}
	en.EmitForward(plan)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	pureCompute := en.CM.CausalAttnTime(8192) / 16
	if mk < 3*pureCompute {
		t.Fatalf("short-seq inter ring should be comm-bound: makespan %v vs compute %v", mk, pureCompute)
	}
}

func TestRoutingAcceleratesInterRing(t *testing.T) {
	build := func(routed bool) float64 {
		e, en := setup(t, cluster.ClusterA, 2, routed)
		plan := seq.NewPlan(16)
		ranks := make([]int, 16)
		for i := range ranks {
			ranks[i] = i
		}
		plan.Rings = []seq.Ring{{Seq: seq.Sequence{ID: 0, Len: 65536}, Zone: seq.ZoneInter, Ranks: ranks}}
		en.EmitForward(plan)
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	direct, routed := build(false), build(true)
	if routed >= direct {
		t.Fatalf("routing should accelerate a comm-bound inter ring: routed %v vs direct %v", routed, direct)
	}
}

func TestBackwardRoughlyDoublesForward(t *testing.T) {
	run := func(backward bool) float64 {
		e, en := setup(t, cluster.ClusterA, 1, false)
		plan := localPlan(8, 16384)
		if backward {
			en.EmitBackward(plan)
		} else {
			en.EmitForward(plan)
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	f, b := run(false), run(true)
	if b < 1.8*f || b > 2.2*f {
		t.Fatalf("backward %v should be ~2x forward %v", b, f)
	}
}

func TestTierOrderingInterBeforeLocal(t *testing.T) {
	// A rank participating in an inter ring and holding a local sequence
	// must run the ring rounds first in forward.
	e, en := setup(t, cluster.ClusterA, 2, false)
	plan := seq.NewPlan(16)
	ranks := make([]int, 16)
	for i := range ranks {
		ranks[i] = i
	}
	plan.Rings = []seq.Ring{{Seq: seq.Sequence{ID: 0, Len: 32768}, Zone: seq.ZoneInter, Ranks: ranks}}
	plan.Local[0] = []seq.Sequence{{ID: 1, Len: 2048}}
	en.EmitForward(plan)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var localStart, lastRingEnd float64
	for _, tk := range e.Tasks() {
		if tk.Kind != sim.KindCompute || tk.Rank != 0 {
			continue
		}
		if tk.Label == "attn-fwd/local/seq1" {
			localStart = tk.Start
		} else if tk.End > lastRingEnd {
			lastRingEnd = tk.End
		}
	}
	if localStart < lastRingEnd {
		t.Fatalf("local sequence started at %v before ring finished at %v", localStart, lastRingEnd)
	}
}

func TestBackwardReversesTierOrder(t *testing.T) {
	e, en := setup(t, cluster.ClusterA, 2, false)
	plan := seq.NewPlan(16)
	ranks := make([]int, 16)
	for i := range ranks {
		ranks[i] = i
	}
	plan.Rings = []seq.Ring{{Seq: seq.Sequence{ID: 0, Len: 32768}, Zone: seq.ZoneInter, Ranks: ranks}}
	plan.Local[0] = []seq.Sequence{{ID: 1, Len: 2048}}
	en.EmitBackward(plan)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var localEnd, firstRingStart float64
	firstRingStart = 1e18
	for _, tk := range e.Tasks() {
		if tk.Kind != sim.KindCompute || tk.Rank != 0 {
			continue
		}
		if tk.Label == "attn-bwd/local/seq1" {
			localEnd = tk.End
		} else if tk.Start < firstRingStart {
			firstRingStart = tk.Start
		}
	}
	if firstRingStart < localEnd {
		t.Fatalf("backward should run local first: ring started %v before local ended %v", firstRingStart, localEnd)
	}
}

func TestEmptyPlanCompletes(t *testing.T) {
	e, en := setup(t, cluster.ClusterA, 1, false)
	done := en.EmitForward(seq.NewPlan(8))
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 0 || done.End != 0 {
		t.Fatalf("empty plan should cost nothing, got %v", mk)
	}
}

func TestMultipleRingsOnSameRanksSerializeCompute(t *testing.T) {
	e, en := setup(t, cluster.ClusterA, 1, false)
	plan := seq.NewPlan(8)
	for id := 0; id < 2; id++ {
		plan.Rings = append(plan.Rings, seq.Ring{
			Seq: seq.Sequence{ID: id, Len: 16384}, Zone: seq.ZoneIntra,
			Ranks: []int{0, 1, 2, 3},
		})
	}
	en.EmitForward(plan)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	perRing := en.CM.CausalAttnTime(16384) / 4
	if mk < 2*perRing {
		t.Fatalf("two rings sharing ranks must serialize compute: %v < %v", mk, 2*perRing)
	}
}
