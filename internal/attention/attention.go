// Package attention implements Zeppelin's attention engine (§3.2): it
// turns a partition plan into a discrete-event task graph that executes
// ring attention for inter-node and intra-node sequence groups and plain
// variable-length attention for local sequences.
//
// Scheduling follows the paper's three-queue ordering — inter-node rings
// first (their communication subsumes intra-node groups, so finishing
// them unblocks everything else), then intra-node rings, then local
// sequences last. Within a ring, each round overlaps the computation on
// the current KV block with the transfer of the next one, and the causal
// mask's triangular load is balanced with the 2G-chunk scheme (rank i owns
// chunks i and 2G−1−i), which equalizes every rank's pair count.
package attention

import (
	"fmt"

	"zeppelin/internal/cluster"
	"zeppelin/internal/costmodel"
	"zeppelin/internal/model"
	"zeppelin/internal/routing"
	"zeppelin/internal/seq"
	"zeppelin/internal/sim"
)

// Engine emits attention execution graphs onto a simulator.
type Engine struct {
	F  *cluster.Fabric
	R  *routing.Router
	CM *costmodel.Model
}

// New assembles an engine; the router decides whether cross-node ring
// traffic is three-step routed or sent directly.
func New(f *cluster.Fabric, r *routing.Router, cm *costmodel.Model) *Engine {
	return &Engine{F: f, R: r, CM: cm}
}

// pass direction controls compute/comm scaling and queue order.
type pass struct {
	name        string
	computeMul  float64
	commMul     float64
	reverseTier bool // backward executes local -> intra -> inter
}

var (
	fwd = pass{name: "fwd", computeMul: 1, commMul: 1}
	bwd = pass{name: "bwd", computeMul: costmodel.BwdComputeFactor,
		commMul: costmodel.BwdCommFactor, reverseTier: true}
)

// EmitForward appends the forward attention graph for one layer and
// returns a barrier that completes when every rank has finished. lastComp
// tracks per-rank compute chaining across calls; pass nil for a fresh
// layer boundary.
func (en *Engine) EmitForward(plan *seq.Plan, deps ...*sim.Task) *sim.Task {
	return en.emit(plan, fwd, deps)
}

// EmitBackward appends the backward attention graph (≈2× compute, 2× KV
// traffic for dKV circulation, tiers in reverse order per Fig. 12c).
func (en *Engine) EmitBackward(plan *seq.Plan, deps ...*sim.Task) *sim.Task {
	return en.emit(plan, bwd, deps)
}

func (en *Engine) emit(plan *seq.Plan, p pass, deps []*sim.Task) *sim.Task {
	world := plan.World
	lastComp := make([]*sim.Task, world)

	var interRings, intraRings []seq.Ring
	for _, ring := range plan.Rings {
		if ring.Zone == seq.ZoneInter {
			interRings = append(interRings, ring)
		} else {
			intraRings = append(intraRings, ring)
		}
	}

	emitLocal := func() {
		for rank := 0; rank < world; rank++ {
			for _, s := range plan.Local[rank] {
				d := en.CM.CausalAttnTime(float64(s.Len)) * p.computeMul
				t := en.F.ComputeTask(fmt.Sprintf("attn-%s/local/seq%d", p.name, s.ID), rank, d)
				t.After(deps...)
				t.After(lastComp[rank])
				lastComp[rank] = t
			}
		}
	}
	emitRings := func(rings []seq.Ring) {
		for _, ring := range rings {
			en.emitRing(ring, p, deps, lastComp)
		}
	}

	if p.reverseTier {
		emitLocal()
		emitRings(intraRings)
		emitRings(interRings)
	} else {
		emitRings(interRings)
		emitRings(intraRings)
		emitLocal()
	}

	done := en.F.E.Barrier("attn-"+p.name+"/done", 0)
	for rank := 0; rank < world; rank++ {
		done.After(lastComp[rank])
	}
	done.After(deps...) // cover the all-local-empty rank case
	return done
}

// emitRing schedules G rounds of ring attention for one sequence group.
// Round t on rank i computes that rank's query chunks against the KV
// block received in round t−1, while forwarding the block it already
// holds to the next rank — the overlap structure of Fig. 6.
func (en *Engine) emitRing(ring seq.Ring, p pass, deps []*sim.Task, lastComp []*sim.Task) {
	g := ring.G()
	s := float64(ring.Seq.Len)
	// 2G-chunk causal balancing: every rank computes an equal share of
	// the triangle each round — or its weighted share when the ring
	// carries speed-aware weights (each rank owns PairShares[i] pairs
	// total, spread over the G rounds; KV circulation stays even). Each
	// round also pays the fixed chunked-execution overhead (sync +
	// softmax rescale + launch).
	perRound := make([]float64, g)
	if ring.Weights == nil {
		even := en.CM.AttnTimePairs(model.CausalPairs(s)/float64(g*g))*p.computeMul +
			costmodel.RingRoundOverhead
		for i := range perRound {
			perRound[i] = even
		}
	} else {
		for i, share := range ring.PairShares() {
			perRound[i] = en.CM.AttnTimePairs(share/float64(g))*p.computeMul +
				costmodel.RingRoundOverhead
		}
	}
	blockBytes := en.CM.KVBytes(s/float64(g)) * p.commMul

	// have[i] is the task whose completion delivers the KV block rank i
	// consumes in the current round.
	have := make([]*sim.Task, g)
	for t := 0; t < g; t++ {
		next := make([]*sim.Task, g)
		for i, rank := range ring.Ranks {
			if t < g-1 {
				// Forward the currently held block while computing on it.
				dst := ring.Ranks[(i+1)%g]
				label := fmt.Sprintf("attn-%s/ring%d/r%d/kv%d->%d", p.name, ring.Seq.ID, t, rank, dst)
				var xDeps []*sim.Task
				xDeps = append(xDeps, deps...)
				if have[i] != nil {
					xDeps = append(xDeps, have[i])
				}
				next[(i+1)%g] = en.R.Transfer(label, rank, dst, blockBytes, xDeps...)
			}
			comp := en.F.ComputeTask(
				fmt.Sprintf("attn-%s/ring%d/r%d/comp@%d", p.name, ring.Seq.ID, t, rank),
				rank, perRound[i])
			comp.After(deps...)
			comp.After(have[i])        // wait for this round's KV block
			comp.After(lastComp[rank]) // keep the compute stream ordered
			lastComp[rank] = comp
		}
		have = next
	}
}
