// Incremental planning front-end: the re-planning fast path of the
// campaign hot loop. It pairs the partition-level incremental planner
// (keyed plan cache + delta patching) with a keyed cache of remapping
// solutions, so iterations whose batch or attention layout repeats skip
// the Eq. 2 solve as well as the hierarchical partitioning pass.
package zeppelin

import (
	"fmt"
	"hash/maphash"
	"math"

	"zeppelin/internal/attention"
	"zeppelin/internal/cluster"
	"zeppelin/internal/partition"
	"zeppelin/internal/remap"
	"zeppelin/internal/routing"
	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
)

// Incremental is a stateful Zeppelin method: functionally the wrapped
// configuration, but planning through a persistent incremental planner.
// In exact mode (MaxDeltaFrac 0) every produced placement is bit-identical
// to what the stateless Method would build — repeated batches are served
// from the plan cache, everything else is a full solve — so campaigns
// over an Incremental method emit identical IterRecord streams. With a
// positive MaxDeltaFrac, small batch deltas are patched onto the previous
// plan: cost-equal within tolerance, not bit-identical.
//
// Not safe for concurrent use: one campaign (or one benchmark loop) owns
// one instance. The campaign layer resets it at Run start so reusing an
// instance across runs stays deterministic.
type Incremental struct {
	m       Method
	planner *partition.Incremental

	remapCache []remapEntry
	remapCap   int
	seed       maphash.Seed

	lastStats partition.PlanStats
	remapHits int
	remapMiss int
}

// remapEntry caches one Eq. 2 solution and its inverse for an exact
// (topology, layout, target, cost) key — the node shape matters because
// it decides which transfers are intra- vs inter-node.
type remapEntry struct {
	key     uint64
	nodes   int
	perNode int
	tokens  []int
	target  []int
	bIntra  float64
	bInter  float64
	plan    *remap.Plan
	reverse *remap.Plan
}

// NewIncremental wraps a Zeppelin configuration with incremental planning
// state. The partition.IncrementalConfig tunes the fast path: zero
// MaxDeltaFrac for exact (campaign-safe) reuse, a positive fraction to
// allow delta patching.
func NewIncremental(m Method, cfg partition.IncrementalConfig) *Incremental {
	cc := cfg.CacheCap
	if cc <= 0 {
		cc = partition.DefaultCacheCap
	}
	return &Incremental{
		m:        m,
		planner:  partition.NewIncremental(cfg),
		remapCap: cc,
		seed:     maphash.MakeSeed(),
	}
}

// FullIncremental is the complete system over an exact-mode incremental
// planner — the drop-in campaign configuration.
func FullIncremental() *Incremental {
	return NewIncremental(Full(), partition.IncrementalConfig{})
}

// Name matches the wrapped configuration so campaign tables and golden
// comparisons line up method by method.
func (z *Incremental) Name() string { return z.m.Name() }

// SpeedAware mirrors Method: the planner re-plans against degraded views.
func (z *Incremental) SpeedAware() bool { return true }

// ResetPlanner drops all cached planning state; the campaign layer calls
// it at Run start (campaign.Replanner).
func (z *Incremental) ResetPlanner() {
	z.planner.Reset()
	z.remapCache = z.remapCache[:0]
	z.lastStats = partition.PlanStats{}
	z.remapHits, z.remapMiss = 0, 0
}

// PlannerCounters exposes the cumulative fast-path decision counts.
func (z *Incremental) PlannerCounters() partition.Counters { return z.planner.Counters() }

// LastStats reports the most recent Plan call's fast-path decision.
func (z *Incremental) LastStats() partition.PlanStats { return z.lastStats }

// LastPlanMode names the most recent Plan call's fast path for decision
// tracing: "full", "patched", "cached", or "shared" (a cached-mode hit
// served from the process-wide tier). Implements campaign.PlanModeReporter.
func (z *Incremental) LastPlanMode() string {
	if z.lastStats.Shared {
		return "shared"
	}
	return z.lastStats.Mode.String()
}

// RemapCacheStats reports (hits, misses) of the remap-solution cache.
func (z *Incremental) RemapCacheStats() (hits, misses int) { return z.remapHits, z.remapMiss }

// Plan is Method.Plan through the incremental fast path.
func (z *Incremental) Plan(env *trainer.Env, batch []seq.Sequence) (trainer.Placement, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("zeppelin: empty batch")
	}
	var speeds []float64
	if env.Health.Degraded() {
		speeds = env.Health.Speeds(env.C.World())
	}
	res, st, err := z.planner.Plan(partition.Config{
		Cluster:        env.C,
		CapacityTokens: env.CapacityTokens,
		Speeds:         speeds,
		SolveWorkers:   z.m.SolveWorkers,
	}, batch)
	if err != nil {
		return nil, err
	}
	z.lastStats = st
	// Cache hits were validated when first solved; revalidating every
	// reuse would put the O(n) conservation check back on the fast path.
	if st.Mode != partition.PlanCached {
		if err := res.Plan.Validate(batch); err != nil {
			return nil, fmt.Errorf("zeppelin: invalid plan: %w", err)
		}
	}
	pl := &placement{
		m:      z.m,
		plan:   res.Plan,
		batch:  batch,
		engine: attention.New(env.F, routing.New(env.F, z.m.Routing), env.CM),
	}
	if z.m.Remap {
		bytesPerToken := env.CM.ActBytes(1)
		bIntra := bytesPerToken / env.C.IntraBandwidth
		bInter := bytesPerToken / env.C.NICBandwidth
		tokens := res.Plan.TokensPerRank()
		var target []int
		if speeds != nil {
			target = remap.WeightedTarget(tokens, speeds)
		}
		rp, rev, err := z.remapFor(tokens, target, env.C, bIntra, bInter)
		if err != nil {
			return nil, err
		}
		pl.remapPlan = rp
		pl.reverse = rev
	}
	return pl, nil
}

// remapFor returns the Eq. 2 solution for a layout, reusing the keyed
// cache when the exact (tokens, target, costs) inputs repeat — remapping
// is a pure function of them, so reuse is bit-identical.
func (z *Incremental) remapFor(tokens, target []int, c *cluster.Cluster, bIntra, bInter float64) (*remap.Plan, *remap.Plan, error) {
	key := z.remapKey(c, tokens, target, bIntra, bInter)
	for i := range z.remapCache {
		e := &z.remapCache[i]
		if e.key != key || e.bIntra != bIntra || e.bInter != bInter ||
			e.nodes != c.Nodes || e.perNode != c.GPUsPerNode {
			continue
		}
		if !sameInts(e.tokens, tokens) || !sameInts(e.target, target) {
			continue
		}
		if i != 0 {
			hit := *e
			copy(z.remapCache[1:i+1], z.remapCache[:i])
			z.remapCache[0] = hit
		}
		z.remapHits++
		return z.remapCache[0].plan, z.remapCache[0].reverse, nil
	}
	z.remapMiss++
	rp, err := remap.SolveTarget(tokens, target, c, bIntra, bInter)
	if err != nil {
		return nil, nil, err
	}
	rev := reversePlan(rp)
	e := remapEntry{
		key:     key,
		nodes:   c.Nodes,
		perNode: c.GPUsPerNode,
		tokens:  append([]int(nil), tokens...),
		target:  copyInts(target),
		bIntra:  bIntra,
		bInter:  bInter,
		plan:    rp,
		reverse: rev,
	}
	if len(z.remapCache) < z.remapCap {
		z.remapCache = append(z.remapCache, remapEntry{})
	}
	copy(z.remapCache[1:], z.remapCache[:len(z.remapCache)-1])
	z.remapCache[0] = e
	return rp, rev, nil
}

// remapKey hashes the remap inputs, topology included.
func (z *Incremental) remapKey(c *cluster.Cluster, tokens, target []int, bIntra, bInter float64) uint64 {
	var h maphash.Hash
	h.SetSeed(z.seed)
	var b [8]byte
	writeU := func(u uint64) {
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	writeU(uint64(c.Nodes))
	writeU(uint64(c.GPUsPerNode))
	writeU(math.Float64bits(bIntra))
	writeU(math.Float64bits(bInter))
	writeU(uint64(len(tokens)))
	for _, t := range tokens {
		writeU(uint64(t))
	}
	writeU(uint64(len(target)))
	for _, t := range target {
		writeU(uint64(t))
	}
	return h.Sum64()
}

// sameInts compares int slices (nil == nil only by length semantics).
func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// copyInts copies an int slice preserving nil.
func copyInts(s []int) []int {
	if s == nil {
		return nil
	}
	return append([]int(nil), s...)
}
