// End-to-end shape tests: these assert the paper's qualitative results —
// who wins, in what order, and where the crossovers fall — across the
// method matrix. They are the reproduction's primary regression net.
package zeppelin

import (
	"testing"

	"zeppelin/internal/baselines"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
)

func run(t *testing.T, cfg trainer.Config, d workload.Dataset, m trainer.Method) *trainer.Result {
	t.Helper()
	batch := cfg.Batch(d.Batch)
	res, err := trainer.Run(cfg, m, batch)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return res
}

func cfgFor(mc model.Config, spec cluster.Spec, nodes, tp int) trainer.Config {
	return trainer.Config{Model: mc, Spec: spec, Nodes: nodes, TP: tp, Seed: 7}
}

// Fig. 8 headline: Zeppelin outperforms all baselines on every dense
// dataset/scale combination we test.
func TestZeppelinWinsAcrossDenseMatrix(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		for _, d := range workload.Eval {
			cfg := cfgFor(model.LLaMA7B, cluster.ClusterA, nodes, 1)
			z := run(t, cfg, d, Full())
			for _, m := range []trainer.Method{baselines.TECP{}, baselines.LLaMACP{}, baselines.HybridDP{}} {
				b := run(t, cfg, d, m)
				if z.TokensPerSec < b.TokensPerSec*0.99 {
					t.Errorf("%d nodes, %s: Zeppelin %.0f tok/s loses to %s %.0f",
						nodes, d.Name, z.TokensPerSec, m.Name(), b.TokensPerSec)
				}
			}
		}
	}
}

// Fig. 8 magnitudes: the Zeppelin/TE speedup should land in the paper's
// band (roughly 1.8–5x for dense 7B at these scales) and grow with scale.
func TestSpeedupMagnitudeAndScaling(t *testing.T) {
	ratios := map[int]float64{}
	for _, nodes := range []int{2, 4} {
		cfg := cfgFor(model.LLaMA7B, cluster.ClusterA, nodes, 1)
		z := run(t, cfg, workload.ArXiv, Full())
		te := run(t, cfg, workload.ArXiv, baselines.TECP{})
		ratios[nodes] = z.TokensPerSec / te.TokensPerSec
	}
	if ratios[2] < 1.8 || ratios[2] > 4.5 {
		t.Errorf("16-GPU ArXiv speedup %.2fx outside the plausible band (paper: 2.59x)", ratios[2])
	}
	if ratios[4] <= ratios[2] {
		t.Errorf("speedup should grow with scale: %.2fx @16 GPUs vs %.2fx @32", ratios[2], ratios[4])
	}
}

// Fig. 8 ordering on ArXiv (balanced lengths): Zeppelin > Hybrid DP >
// LLaMA CP > TE CP.
func TestMethodOrderingOnArXiv(t *testing.T) {
	cfg := cfgFor(model.LLaMA7B, cluster.ClusterA, 2, 1)
	z := run(t, cfg, workload.ArXiv, Full())
	hy := run(t, cfg, workload.ArXiv, baselines.HybridDP{})
	ll := run(t, cfg, workload.ArXiv, baselines.LLaMACP{})
	te := run(t, cfg, workload.ArXiv, baselines.TECP{})
	if !(z.TokensPerSec > hy.TokensPerSec && hy.TokensPerSec > ll.TokensPerSec && ll.TokensPerSec > te.TokensPerSec) {
		t.Errorf("ArXiv ordering wrong: Z=%.0f Hybrid=%.0f LLaMA=%.0f TE=%.0f",
			z.TokensPerSec, hy.TokensPerSec, ll.TokensPerSec, te.TokensPerSec)
	}
}

// On long-sequence-dominated ProLong64k, Hybrid DP loses its edge (the
// long sequence occupies all ranks) and LLaMA CP overtakes it, per §5.1.
func TestProlongCrossoverHybridWeak(t *testing.T) {
	cfg := cfgFor(model.LLaMA7B, cluster.ClusterA, 2, 1)
	hy := run(t, cfg, workload.ProLong64k, baselines.HybridDP{})
	ll := run(t, cfg, workload.ProLong64k, baselines.LLaMACP{})
	if hy.TokensPerSec > ll.TokensPerSec {
		t.Errorf("on ProLong64k LLaMA CP should beat Hybrid DP: %.0f vs %.0f",
			ll.TokensPerSec, hy.TokensPerSec)
	}
}

// MoE compresses speedups (the expert all-to-all is method-independent)
// — §5.1: MoE margins are far smaller than dense margins.
func TestMoECompressesSpeedups(t *testing.T) {
	cfgD := cfgFor(model.LLaMA7B, cluster.ClusterA, 2, 1)
	cfgM := cfgFor(model.MoE8x550M, cluster.ClusterA, 2, 1)
	dz := run(t, cfgD, workload.ArXiv, Full())
	dte := run(t, cfgD, workload.ArXiv, baselines.TECP{})
	mz := run(t, cfgM, workload.ArXiv, Full())
	mte := run(t, cfgM, workload.ArXiv, baselines.TECP{})
	dense := dz.TokensPerSec / dte.TokensPerSec
	moe := mz.TokensPerSec / mte.TokensPerSec
	if moe >= dense {
		t.Errorf("MoE speedup %.2fx should be below dense %.2fx", moe, dense)
	}
}

// Fig. 11 ablation: every added component helps, in the paper's order —
// TE < TE+Routing < AttnEngine < AttnEngine+Routing <= Full Zeppelin.
// GitHub is used for the routing-delta assertions because its 64k+
// sequences guarantee inter-node rings in every batch.
func TestAblationOrdering(t *testing.T) {
	cfg := cfgFor(model.LLaMA3B, cluster.ClusterA, 4, 1) // 32 GPUs as in Fig. 11
	d := workload.GitHub
	te := run(t, cfg, d, baselines.TECP{})
	routed := run(t, cfg, d, baselines.TECP{Routed: true})
	attnEng := run(t, cfg, d, Method{})
	both := run(t, cfg, d, Method{Routing: true})
	full := run(t, cfg, d, Full())

	if routed.TokensPerSec <= te.TokensPerSec {
		t.Errorf("routing alone should speed up TE: %.0f vs %.0f", routed.TokensPerSec, te.TokensPerSec)
	}
	ratio := routed.TokensPerSec / te.TokensPerSec
	if ratio < 1.15 || ratio > 2.6 {
		t.Errorf("routing-only speedup %.2fx far from the paper's ~1.6x", ratio)
	}
	if attnEng.TokensPerSec <= te.TokensPerSec {
		t.Errorf("attention engine alone should beat TE")
	}
	if both.TokensPerSec <= attnEng.TokensPerSec {
		t.Errorf("adding routing to the engine should help: %.0f vs %.0f",
			both.TokensPerSec, attnEng.TokensPerSec)
	}
	if full.TokensPerSec < both.TokensPerSec*0.98 {
		t.Errorf("remapping should not hurt: %.0f vs %.0f", full.TokensPerSec, both.TokensPerSec)
	}
}

// Fig. 10: Cluster B (faster GPUs) gives higher absolute throughput, while
// the relative Zeppelin speedup is larger on Cluster A (higher
// computation-to-communication ratio — §5.2).
func TestClusterABComparison(t *testing.T) {
	cfgA := cfgFor(model.LLaMA3B, cluster.ClusterA, 4, 1)
	cfgB := cfgFor(model.LLaMA3B, cluster.ClusterB, 4, 1)
	zA := run(t, cfgA, workload.ArXiv, Full())
	zB := run(t, cfgB, workload.ArXiv, Full())
	teA := run(t, cfgA, workload.ArXiv, baselines.TECP{})
	teB := run(t, cfgB, workload.ArXiv, baselines.TECP{})
	if zB.TokensPerSec <= zA.TokensPerSec {
		t.Errorf("Hopper-class Cluster B should be absolutely faster: %.0f vs %.0f",
			zB.TokensPerSec, zA.TokensPerSec)
	}
	spA := zA.TokensPerSec / teA.TokensPerSec
	spB := zB.TokensPerSec / teB.TokensPerSec
	// Both clusters show clear wins. (Known deviation, see EXPERIMENTS.md:
	// the paper measures a slightly *smaller* relative speedup on B; our
	// simulator's B over-credits Hopper compute, inflating spB.)
	if spA < 1.8 || spB < 1.8 {
		t.Errorf("speedups too small: A %.2fx, B %.2fx", spA, spB)
	}
}

// Fig. 9: TE CP throughput stays nearly flat with scale (ring bottleneck),
// while Zeppelin scales.
func TestScalabilityShape(t *testing.T) {
	var teTP, zTP []float64
	for _, nodes := range []int{2, 4} {
		cfg := cfgFor(model.LLaMA3B, cluster.ClusterA, nodes, 1)
		teTP = append(teTP, run(t, cfg, workload.ArXiv, baselines.TECP{}).TokensPerSec)
		zTP = append(zTP, run(t, cfg, workload.ArXiv, Full()).TokensPerSec)
	}
	if teTP[1] > teTP[0]*1.5 {
		t.Errorf("TE CP should be nearly flat with scale: %.0f -> %.0f", teTP[0], teTP[1])
	}
	if zTP[1] < zTP[0]*1.3 {
		t.Errorf("Zeppelin should scale: %.0f -> %.0f", zTP[0], zTP[1])
	}
}

// TP=2 runs work and produce larger relative gains on Cluster A than the
// equivalent TP=1 config would suggest (shared-NIC effect, §5.1).
func TestTensorParallelRuns(t *testing.T) {
	cfg := cfgFor(model.LLaMA13B, cluster.ClusterA, 2, 2)
	z := run(t, cfg, workload.ArXiv, Full())
	te := run(t, cfg, workload.ArXiv, baselines.TECP{})
	if z.TokensPerSec <= te.TokensPerSec {
		t.Errorf("Zeppelin should win under TP=2: %.0f vs %.0f", z.TokensPerSec, te.TokensPerSec)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := cfgFor(model.LLaMA7B, cluster.ClusterA, 2, 1)
	a := run(t, cfg, workload.GitHub, Full())
	b := run(t, cfg, workload.GitHub, Full())
	if a.TokensPerSec != b.TokensPerSec {
		t.Fatalf("nondeterministic: %v vs %v", a.TokensPerSec, b.TokensPerSec)
	}
}

func TestMethodNames(t *testing.T) {
	cases := map[string]trainer.Method{
		"Zeppelin":                       Full(),
		"Zeppelin w/ Attn Eng":           Method{},
		"Zeppelin w/ Routing & Attn Eng": Method{Routing: true},
		"Zeppelin w/ Attn Eng & Remap":   Method{Remap: true},
	}
	for want, m := range cases {
		if m.Name() != want {
			t.Errorf("name = %q, want %q", m.Name(), want)
		}
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	cfg := cfgFor(model.LLaMA7B, cluster.ClusterA, 1, 1)
	if _, err := trainer.Run(cfg, Full(), nil); err == nil {
		t.Fatal("empty batch should fail")
	}
}

// Table 3 shape: skewed batches cost more end-to-end than balanced ones
// at equal token budget (the long sequence dominates attention), and
// remapping communication stays a small fraction of the layer time.
func TestSkewedVsBalancedCost(t *testing.T) {
	cfg := cfgFor(model.LLaMA7B, cluster.ClusterC, 4, 1)
	balRes, err := trainer.Run(cfg, Full(), cfg.Batch(workload.BalancedBatch))
	if err != nil {
		t.Fatal(err)
	}
	skewRes, err := trainer.Run(cfg, Full(), cfg.Batch(workload.SkewedBatch))
	if err != nil {
		t.Fatal(err)
	}
	if skewRes.LayerTime <= balRes.LayerTime {
		t.Errorf("skewed batch should cost more: %.3fms vs %.3fms",
			skewRes.LayerTime*1e3, balRes.LayerTime*1e3)
	}
	for _, r := range []*trainer.Result{balRes, skewRes} {
		if r.RemapTime > 0.3*r.LayerTime {
			t.Errorf("remapping time %.3fms too large vs layer %.3fms",
				r.RemapTime*1e3, r.LayerTime*1e3)
		}
	}
}
