package zeppelin

import (
	"math/rand"
	"testing"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/partition"
	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
)

func incCfg(seed int64) trainer.Config {
	return trainer.Config{
		Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 2,
		TokensPerGPU: 4096, Seed: seed,
	}
}

// TestIncrementalMatchesMethodExactly: in exact mode, every simulated
// result through the Incremental front-end is bit-identical to the
// stateless Method — full solves produce the same plan, and cache hits
// replay it.
func TestIncrementalMatchesMethodExactly(t *testing.T) {
	cfg := incCfg(5)
	inc := FullIncremental()
	rng := rand.New(rand.NewSource(99))
	for it := 0; it < 4; it++ {
		batch := workload.ArXiv.Batch(cfg.TotalTokens(), rng)
		want, err := trainer.Run(cfg, Full(), batch)
		if err != nil {
			t.Fatal(err)
		}
		// Plan the same batch twice so the second run exercises the cache.
		for pass := 0; pass < 2; pass++ {
			got, err := trainer.Run(cfg, inc, batch)
			if err != nil {
				t.Fatal(err)
			}
			if got.IterTime != want.IterTime || got.LayerTime != want.LayerTime ||
				got.TokensPerSec != want.TokensPerSec || got.RemapTime != want.RemapTime {
				t.Fatalf("iter %d pass %d (%s): incremental result diverges: %+v vs %+v",
					it, pass, inc.LastStats().Mode, got, want)
			}
		}
		if inc.LastStats().Mode != partition.PlanCached {
			t.Fatalf("iter %d: second pass mode = %s, want cached", it, inc.LastStats().Mode)
		}
	}
	c := inc.PlannerCounters()
	if c.Full != 4 || c.Cached != 4 {
		t.Fatalf("counters = %+v, want 4 full + 4 cached", c)
	}
	if hits, misses := inc.RemapCacheStats(); hits != 4 || misses != 4 {
		t.Fatalf("remap cache = %d hits / %d misses, want 4/4", hits, misses)
	}
}

// TestIncrementalRemapReuseIsExact: a cache-hit placement must carry the
// very same remap solution object, not a re-solve.
func TestIncrementalRemapReuse(t *testing.T) {
	cfg := incCfg(7)
	inc := FullIncremental()
	batch := cfg.Batch(workload.GitHub.Batch)

	env1, err := cfg.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	pl1, err := inc.Plan(env1, batch)
	if err != nil {
		t.Fatal(err)
	}
	env2, err := cfg.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := inc.Plan(env2, batch)
	if err != nil {
		t.Fatal(err)
	}
	p1 := pl1.(*placement)
	p2 := pl2.(*placement)
	if p1.remapPlan == nil || p1.remapPlan != p2.remapPlan || p1.reverse != p2.reverse {
		t.Fatal("cache hit must reuse the identical remap solution")
	}
	if p1.plan != p2.plan {
		t.Fatal("cache hit must reuse the identical partition plan")
	}
}

// TestIncrementalDegradedViewPlans: under a degraded health view the
// incremental front-end plans speed-aware exactly like the stateless
// method, and the view change forces a full solve.
func TestIncrementalDegradedView(t *testing.T) {
	cfg := incCfg(11)
	batch := cfg.Batch(workload.ArXiv.Batch)
	inc := FullIncremental()
	if _, err := trainer.Run(cfg, inc, batch); err != nil {
		t.Fatal(err)
	}

	slow := make([]float64, cfg.GPUs())
	for i := range slow {
		slow[i] = 1
	}
	slow[2] = 2.5 // rank 2 runs 2.5× slow
	deg := cfg
	deg.Health = &cluster.Health{Slow: slow}

	want, err := trainer.Run(deg, Full(), batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trainer.Run(deg, inc, batch)
	if err != nil {
		t.Fatal(err)
	}
	if inc.LastStats().Mode != partition.PlanFull {
		t.Fatalf("health change planned as %s, want full", inc.LastStats().Mode)
	}
	if got.IterTime != want.IterTime || got.TokensPerSec != want.TokensPerSec {
		t.Fatalf("degraded incremental result diverges: %+v vs %+v", got, want)
	}
}

// TestIncrementalPatchedPlacementsSimulate: tolerance mode produces valid
// placements end to end (plan validation plus a full simulated iteration).
func TestIncrementalPatchedPlacementsSimulate(t *testing.T) {
	cfg := incCfg(13)
	inc := NewIncremental(Full(), partition.IncrementalConfig{MaxDeltaFrac: 0.3})
	rng := rand.New(rand.NewSource(17))
	batch := workload.FineWeb.Batch(cfg.TotalTokens(), rng)
	if _, err := trainer.Run(cfg, inc, batch); err != nil {
		t.Fatal(err)
	}
	patched := 0
	for it := 0; it < 10; it++ {
		// Drop one short sequence, add a replacement — a patchable delta.
		shortest := 0
		for i, s := range batch {
			if s.Len < batch[shortest].Len {
				shortest = i
			}
		}
		dropped := batch[shortest]
		batch = append(batch[:shortest:shortest], batch[shortest+1:]...)
		batch = append(batch, seq.Sequence{ID: 1<<20 + it, Len: dropped.Len})
		res, err := trainer.Run(cfg, inc, batch)
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		if res.TokensPerSec <= 0 {
			t.Fatalf("iter %d: no throughput", it)
		}
		if inc.LastStats().Mode == partition.PlanPatched {
			patched++
		}
	}
	if patched == 0 {
		t.Fatal("tolerance mode never patched")
	}
}

func TestIncrementalNameAndInterfaces(t *testing.T) {
	inc := FullIncremental()
	if inc.Name() != Full().Name() {
		t.Fatalf("name %q != %q", inc.Name(), Full().Name())
	}
	if !inc.SpeedAware() {
		t.Fatal("incremental Zeppelin must stay speed-aware")
	}
	inc.ResetPlanner()
	if c := inc.PlannerCounters(); c.Plans() != 0 {
		t.Fatalf("reset left counters %+v", c)
	}
	if _, err := inc.Plan(&trainer.Env{}, nil); err == nil {
		t.Fatal("empty batch must fail")
	}
}
