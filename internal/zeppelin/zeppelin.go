// Package zeppelin assembles the paper's system: the hierarchical
// sequence partitioner (§3.1), the three-queue attention engine (§3.2),
// the communication routing layer (§3.3), and the remapping layer (§3.4),
// exposed as a trainer.Method. The Routing and Remap switches reproduce
// the ablated configurations of Fig. 11.
package zeppelin

import (
	"fmt"

	"zeppelin/internal/attention"
	"zeppelin/internal/partition"
	"zeppelin/internal/remap"
	"zeppelin/internal/routing"
	"zeppelin/internal/seq"
	"zeppelin/internal/sim"
	"zeppelin/internal/trainer"
)

// Method is Zeppelin with configurable components. Full Zeppelin enables
// both; the partitioner and attention engine are always on (they are the
// placement itself).
type Method struct {
	Routing bool
	Remap   bool
	// SolveWorkers fans the hierarchical solve across a worker pool
	// (partition.Config.SolveWorkers): candidate thresholds of the Alg. 1
	// retry loop are evaluated speculatively and the per-node Alg. 2
	// solves run concurrently. Plans are bit-identical at every worker
	// count — the knob trades CPU for planning latency, never placement.
	// <= 1 keeps the historical single-threaded solve.
	SolveWorkers int
}

// Full returns the complete system configuration.
func Full() Method { return Method{Routing: true, Remap: true} }

// Name identifies the configuration using the paper's ablation labels.
func (m Method) Name() string {
	switch {
	case m.Routing && m.Remap:
		return "Zeppelin"
	case m.Routing:
		return "Zeppelin w/ Routing & Attn Eng"
	case m.Remap:
		return "Zeppelin w/ Attn Eng & Remap"
	default:
		return "Zeppelin w/ Attn Eng"
	}
}

// SpeedAware marks Zeppelin as a method that re-plans against the
// degraded effective-speed cluster view: the partitioner weighs rank
// loads by measured speed and the remapping layer steers tokens toward
// fast ranks, so stragglers cost the harmonic-mean slowdown instead of
// the maximum. The campaign layer uses this to decide whose stale-plan
// projections should account for rank speeds (internal/campaign).
func (Method) SpeedAware() bool { return true }

// Plan partitions the batch hierarchically and prepares the remapping
// solution for the linear modules. Under a degraded cluster view
// (env.Health) both stages plan speed-aware; on a healthy cluster the
// behavior is bit-identical to the paper's homogeneous algorithms.
func (m Method) Plan(env *trainer.Env, batch []seq.Sequence) (trainer.Placement, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("zeppelin: empty batch")
	}
	var speeds []float64
	if env.Health.Degraded() {
		speeds = env.Health.Speeds(env.C.World())
	}
	part, err := partition.New(partition.Config{
		Cluster:        env.C,
		CapacityTokens: env.CapacityTokens,
		Speeds:         speeds,
		SolveWorkers:   m.SolveWorkers,
	})
	if err != nil {
		return nil, err
	}
	res, err := part.Plan(batch)
	if err != nil {
		return nil, err
	}
	if err := res.Plan.Validate(batch); err != nil {
		return nil, fmt.Errorf("zeppelin: invalid plan: %w", err)
	}
	pl := &placement{
		m:      m,
		plan:   res.Plan,
		batch:  batch,
		engine: attention.New(env.F, routing.New(env.F, m.Routing), env.CM),
	}
	if m.Remap {
		bytesPerToken := env.CM.ActBytes(1)
		bIntra := bytesPerToken / env.C.IntraBandwidth
		bInter := bytesPerToken / env.C.NICBandwidth
		// Speed-weighted layout under degradation: slow ranks receive
		// proportionally fewer tokens so the linear modules finish
		// together; healthy clusters keep the perfectly balanced target.
		var target []int
		if speeds != nil {
			target = remap.WeightedTarget(res.Plan.TokensPerRank(), speeds)
		}
		rp, err := remap.SolveTarget(res.Plan.TokensPerRank(), target, env.C, bIntra, bInter)
		if err != nil {
			return nil, err
		}
		pl.remapPlan = rp
		pl.reverse = reversePlan(rp)
	}
	return pl, nil
}

// reversePlan inverts a remapping (the equal-cost inverse transform the
// paper applies after the linear modules).
func reversePlan(p *remap.Plan) *remap.Plan {
	rev := &remap.Plan{
		Target:        nil,
		MaxSenderCost: p.MaxSenderCost,
		InterTokens:   p.InterTokens,
	}
	for _, tr := range p.Transfers {
		rev.Transfers = append(rev.Transfers, remap.Transfer{From: tr.To, To: tr.From, Tokens: tr.Tokens})
	}
	return rev
}

type placement struct {
	m         Method
	plan      *seq.Plan
	batch     []seq.Sequence
	engine    *attention.Engine
	remapPlan *remap.Plan
	reverse   *remap.Plan
}

func (p *placement) EmitAttention(env *trainer.Env, backward bool, deps ...*sim.Task) *sim.Task {
	if backward {
		return p.engine.EmitBackward(p.plan, deps...)
	}
	return p.engine.EmitForward(p.plan, deps...)
}

func (p *placement) EmitRemapToLinear(env *trainer.Env, deps ...*sim.Task) *sim.Task {
	if p.remapPlan == nil {
		return env.E.Barrier("remap-noop", 0).After(deps...)
	}
	return remap.Emit(env.F, "remap-to-linear", p.remapPlan, env.CM.ActBytes(1), deps...)
}

func (p *placement) EmitRemapToAttention(env *trainer.Env, deps ...*sim.Task) *sim.Task {
	if p.reverse == nil {
		return env.E.Barrier("remap-noop", 0).After(deps...)
	}
	return remap.Emit(env.F, "remap-to-attn", p.reverse, env.CM.ActBytes(1), deps...)
}

// LinearEffectiveTokens: with remapping, every rank processes the balanced
// target count; the token mixing also averages MoE routing skew, so the
// batch-average weight applies. Without remapping, the attention layout's
// per-rank portions feed the linear modules directly, inheriting both the
// imbalance and each sequence's routing weight.
func (p *placement) LinearEffectiveTokens(env *trainer.Env) []float64 {
	world := env.C.World()
	if p.remapPlan != nil {
		out := make([]float64, world)
		w := 1.0
		if env.CM.MC.MoE {
			var tok, wTok float64
			for _, s := range p.batch {
				tok += float64(s.Len)
				wTok += trainer.MoEWeight(s.ID) * float64(s.Len)
			}
			if tok > 0 {
				w = wTok / tok
			}
		}
		for i, t := range p.remapPlan.Target {
			out[i] = w * float64(t)
		}
		return out
	}
	portions := make([]map[int]int, world)
	for r := range portions {
		portions[r] = make(map[int]int)
	}
	for r, ls := range p.plan.Local {
		for _, s := range ls {
			portions[r][s.ID] += s.Len
		}
	}
	for _, ring := range p.plan.Rings {
		share := ring.TokensPerRank()
		for i, r := range ring.Ranks {
			portions[r][ring.Seq.ID] += share[i]
		}
	}
	return trainer.EffectiveTokens(env.CM.MC, world, portions)
}

func (p *placement) MicroBatches() int { return 1 }

// HostOverhead charges the hierarchical partitioning pass and, when
// enabled, the remapping solve — the "Sequence Partition" row of Table 3
// (3–12 ms per iteration, polynomial in batch size and incurred once).
func (p *placement) HostOverhead() float64 {
	h := 3e-3 + 2e-5*float64(len(p.batch))
	if p.remapPlan != nil {
		h += 0.5e-3
	}
	return h
}

// Plan exposes the underlying partition plan for inspection tools.
func (p *placement) Plan() *seq.Plan { return p.plan }

// RemapPlan exposes the remapping solution (nil when disabled).
func (p *placement) RemapPlan() *remap.Plan { return p.remapPlan }
