package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zeppelin/internal/seq"
)

func TestAllDatasetsValidate(t *testing.T) {
	for _, d := range All {
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, d := range All {
		got, err := ByName(d.Name)
		if err != nil || got.Name != d.Name {
			t.Fatalf("ByName(%q) = %v, %v", d.Name, got, err)
		}
	}
	if _, err := ByName("c4"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestValidateCatchesBadDistributions(t *testing.T) {
	bad := []Dataset{
		{"short", []float64{1}},
		{"neg", []float64{-0.1, 1.1, 0, 0, 0, 0, 0, 0, 0}},
		{"sum", []float64{0.1, 0.1, 0, 0, 0, 0, 0, 0, 0}},
		// NaN fails every comparison, so it used to slip through both
		// the negative check and the sum band.
		{"nan", []float64{math.NaN(), 1, 0, 0, 0, 0, 0, 0, 0}},
		{"inf", []float64{math.Inf(1), 0, 0, 0, 0, 0, 0, 0, 0}},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("%s should fail validation", d.Name)
		}
	}
}

func TestTable2Proportions(t *testing.T) {
	// Spot-check values copied from Table 2.
	if ArXiv.Probs[4] != 0.338 {
		t.Fatalf("arxiv 8-16k = %v, want 0.338", ArXiv.Probs[4])
	}
	if GitHub.Probs[8] != 0.045 {
		t.Fatalf("github 128-256k = %v, want 0.045", GitHub.Probs[8])
	}
	if ProLong64k.Probs[6] != 0.673 {
		t.Fatalf("prolong 32-64k = %v, want 0.673", ProLong64k.Probs[6])
	}
}

func TestSampleLenInDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, len(Bins))
	const n = 20000
	for i := 0; i < n; i++ {
		l := ArXiv.SampleLen(rng)
		b := BinOf(l)
		if b < 0 {
			t.Fatalf("sampled length %d outside bins", l)
		}
		counts[b]++
	}
	for i, p := range ArXiv.Probs {
		got := float64(counts[i]) / n
		if p == 0 && got > 0 {
			t.Fatalf("bin %d has probability 0 but samples appeared", i)
		}
		if p > 0.05 && (got < p*0.8 || got > p*1.2) {
			t.Fatalf("bin %d: sampled fraction %.3f, want ~%.3f", i, got, p)
		}
	}
}

func TestMeanLenOrdering(t *testing.T) {
	// GitHub's long tail should give it a larger mean than StackExchange.
	if GitHub.MeanLen() <= StackExchange.MeanLen() {
		t.Fatalf("github mean %v should exceed stackexchange mean %v",
			GitHub.MeanLen(), StackExchange.MeanLen())
	}
}

func TestBatchExactBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, budget := range []int{65536, 131072, 262144} {
		b := ArXiv.Batch(budget, rng)
		if got := seq.TotalLen(b); got != budget {
			t.Fatalf("batch tokens = %d, want %d", got, budget)
		}
		for i, s := range b {
			if s.Len <= 0 {
				t.Fatalf("sequence %d has non-positive length", i)
			}
			if s.ID != i {
				t.Fatalf("IDs must be dense, got %d at %d", s.ID, i)
			}
		}
	}
	if ArXiv.Batch(0, rng) != nil {
		t.Fatal("zero budget should give empty batch")
	}
}

func TestSkewedBatchShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := SkewedBatch(131072, rng)
	if seq.TotalLen(b) != 131072 {
		t.Fatalf("skewed batch tokens = %d", seq.TotalLen(b))
	}
	if b[0].Len < 131072/2 {
		t.Fatal("skewed batch should start with one dominant sequence")
	}
	if len(b) < 3 {
		t.Fatal("skewed batch should include several short sequences")
	}
}

func TestBalancedBatchShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := BalancedBatch(131072, rng)
	if seq.TotalLen(b) != 131072 {
		t.Fatalf("balanced batch tokens = %d", seq.TotalLen(b))
	}
	// At least one full cycle over the 7 non-empty ArXiv bins.
	if len(b) < 7 {
		t.Fatalf("balanced batch has %d sequences, want >= 7", len(b))
	}
	// No sequence may exceed the largest non-empty ArXiv bin (32-64k).
	for _, s := range b {
		if s.Len >= 64<<10 {
			t.Fatalf("balanced batch has outlier of %d tokens", s.Len)
		}
	}
}

func TestBinHistogram(t *testing.T) {
	batch := []seq.Sequence{{ID: 0, Len: 512}, {ID: 1, Len: 512}, {ID: 2, Len: 3072}}
	h := BinHistogram(batch)
	if h[0] != 0.25 {
		t.Fatalf("<1k token share = %v, want 0.25", h[0])
	}
	if h[2] != 0.75 {
		t.Fatalf("2-4k token share = %v, want 0.75", h[2])
	}
	if got := BinHistogram(nil); len(got) != len(Bins) {
		t.Fatal("empty histogram should still have all bins")
	}
}

func TestBinOf(t *testing.T) {
	if BinOf(0) != -1 || BinOf(1<<20) != -1 {
		t.Fatal("out-of-range lengths should map to -1")
	}
	if BinOf(1) != 0 || BinOf(1023) != 0 || BinOf(1024) != 1 {
		t.Fatal("bin boundaries wrong")
	}
}

// Property: every batch conserves its budget exactly and IDs are dense,
// for any dataset and any budget.
func TestPropertyBatchConservation(t *testing.T) {
	f := func(seed int64, which uint8, budget uint32) bool {
		d := All[int(which)%len(All)]
		tot := int(budget%1000000) + 1
		rng := rand.New(rand.NewSource(seed))
		b := d.Batch(tot, rng)
		if seq.TotalLen(b) != tot {
			return false
		}
		for i, s := range b {
			if s.ID != i || s.Len <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
