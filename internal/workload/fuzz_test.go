package workload

import (
	"math/rand"
	"testing"

	"zeppelin/internal/seq"
)

// checkBatchInvariants asserts the contract every sampler shares: the
// token budget is respected exactly, every sequence is non-degenerate,
// IDs are dense, and the draw is deterministic per seed.
func checkBatchInvariants(t *testing.T, name string, sample func(total int, rng *rand.Rand) []seq.Sequence, total int, seedVal int64) {
	t.Helper()
	batch := sample(total, rand.New(rand.NewSource(seedVal)))
	if total <= 0 {
		if batch != nil {
			t.Fatalf("%s(total=%d) = %d sequences, want nil", name, total, len(batch))
		}
		return
	}
	var sum int
	for i, s := range batch {
		if s.Len <= 0 {
			t.Fatalf("%s(total=%d, seed=%d): sequence %d has non-positive length %d", name, total, seedVal, i, s.Len)
		}
		if s.ID != i {
			t.Fatalf("%s(total=%d, seed=%d): sequence %d has ID %d", name, total, seedVal, i, s.ID)
		}
		sum += s.Len
	}
	if sum != total {
		t.Fatalf("%s(total=%d, seed=%d): batch sums to %d tokens", name, total, seedVal, sum)
	}
	again := sample(total, rand.New(rand.NewSource(seedVal)))
	if len(again) != len(batch) {
		t.Fatalf("%s(total=%d, seed=%d): nondeterministic batch size %d vs %d", name, total, seedVal, len(again), len(batch))
	}
	for i := range batch {
		if batch[i] != again[i] {
			t.Fatalf("%s(total=%d, seed=%d): nondeterministic sequence %d: %+v vs %+v", name, total, seedVal, i, batch[i], again[i])
		}
	}
}

// FuzzBatchInvariants drives every dataset's Batch plus SkewedBatch and
// BalancedBatch through arbitrary (budget, seed) pairs.
func FuzzBatchInvariants(f *testing.F) {
	f.Add(16, int64(0))
	f.Add(4096, int64(1))
	f.Add(64<<10, int64(1000))
	f.Add(256<<10, int64(-7))
	f.Add(0, int64(3))
	f.Add(-50, int64(3))
	f.Add(1, int64(9))
	f.Add(17, int64(12345))
	f.Fuzz(func(t *testing.T, total int, seedVal int64) {
		// Bound the budget so a single fuzz case stays fast; negatives and
		// zero pass through to exercise the degenerate contract.
		if total > 1<<21 {
			total %= 1 << 21
		}
		for _, d := range All {
			checkBatchInvariants(t, d.Name+".Batch", d.Batch, total, seedVal)
		}
		checkBatchInvariants(t, "SkewedBatch", SkewedBatch, total, seedVal)
		checkBatchInvariants(t, "BalancedBatch", BalancedBatch, total, seedVal)
	})
}

// FuzzSampleLen asserts drawn lengths always land inside a defined bin
// of the dataset's support.
func FuzzSampleLen(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(42))
	f.Add(int64(-1))
	f.Fuzz(func(t *testing.T, seedVal int64) {
		rng := rand.New(rand.NewSource(seedVal))
		for _, d := range All {
			for i := 0; i < 64; i++ {
				l := d.SampleLen(rng)
				bin := BinOf(l)
				if bin < 0 {
					t.Fatalf("%s: sampled length %d outside every bin", d.Name, l)
				}
				if d.Probs[bin] == 0 {
					t.Fatalf("%s: sampled length %d in zero-probability bin %d", d.Name, l, bin)
				}
			}
		}
	})
}
