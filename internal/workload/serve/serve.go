// Package serve generates inference-style request streams for the
// campaign engine: multi-client workload specs with Poisson/Gamma/Weibull
// inter-arrival processes, per-window rate schedules, SLO classes with
// per-class deadlines, and session/prefix structure for KV-affinity-aware
// routing. A spec is written in the same flag grammar as the tuner's
// search space ("clients=3,arrival=gamma:cv=2.0,rate=50@0-60s;120@60-300s,
// slo=interactive:p99=200ms") and expands deterministically into a
// timestamped request timeline. Recorded timelines round-trip through
// NDJSON (trace-replay v2), making captured traces a first-class
// generator alongside the synthetic processes.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"zeppelin/internal/workload"
)

// SLOClass is a named service class with a latency deadline. Requests in
// the class that complete after Deadline count as SLO violations; Priority
// orders classes for priority batch formation (higher first).
type SLOClass struct {
	Name     string
	Deadline time.Duration
	Priority int
}

// RateWindow schedules an aggregate arrival rate (requests/second across
// all clients) over [From, To).
type RateWindow struct {
	From, To time.Duration
	Rate     float64
}

// Request is one inference request on the generated timeline. Arrive is
// seconds since stream start. Prefix is the number of leading tokens
// shared with earlier requests of the same Session: a router that lands
// the request on the rank already holding that session's KV cache skips
// recomputing them.
type Request struct {
	ID      int
	Client  int
	Class   string
	Arrive  float64 // seconds
	Tokens  int
	Session int
	Prefix  int // shared-prefix tokens, < Tokens
}

// Generator is the pluggable source of request timelines: synthetic specs
// and recorded traces both implement it, and the campaign engine consumes
// either without knowing which.
type Generator interface {
	Name() string
	// Timeline expands the generator into an arrival-ordered request
	// list. All randomness is drawn sequentially from rng, so equal
	// seeds give bit-identical timelines; trace generators ignore rng.
	Timeline(rng *rand.Rand) ([]Request, error)
}

// Arrival processes understood by Spec.
const (
	ProcessPoisson = "poisson"
	ProcessGamma   = "gamma"
	ProcessWeibull = "weibull"
)

// Batch-formation disciplines and routing objectives understood by the
// campaign serving loop (validated here so a bad spec fails at parse
// time, not mid-stream).
var (
	Formations = []string{"fcfs", "priority", "sjf"}
	Routes     = []string{"balance", "affinity"}
)

// Spec is a ServeGen-style multi-client workload description.
type Spec struct {
	Clients   int
	Process   string  // poisson | gamma | weibull
	CV        float64 // gamma coefficient of variation (CV>1 → bursty)
	Shape     float64 // weibull shape (k<1 → heavy-tailed gaps)
	Windows   []RateWindow
	Classes   []SLOClass
	Dataset   string  // request-length distribution (workload.ByName)
	Sessions  int     // sessions per client
	Prefix    float64 // shared-prefix fraction of each request, [0,0.9]
	Formation string  // fcfs | priority | sjf
	Route     string  // balance | affinity
	Horizon   time.Duration
}

// DefaultSpec returns the baseline serving scenario: two clients on a
// Poisson process at 8 req/s over 60s, interactive+batch SLO classes,
// short-tailed StackExchange request lengths.
func DefaultSpec() Spec {
	return Spec{
		Clients:   2,
		Process:   ProcessPoisson,
		CV:        1,
		Shape:     1,
		Windows:   []RateWindow{{From: 0, To: 60 * time.Second, Rate: 8}},
		Classes:   DefaultClasses(),
		Dataset:   "stackexchange",
		Sessions:  8,
		Prefix:    0.5,
		Formation: "priority",
		Route:     "balance",
		Horizon:   60 * time.Second,
	}
}

// DefaultClasses are the two stock SLO classes used when a spec or trace
// does not declare its own.
func DefaultClasses() []SLOClass {
	return []SLOClass{
		{Name: "interactive", Deadline: 2 * time.Second, Priority: 2},
		{Name: "batch", Deadline: 8 * time.Second, Priority: 1},
	}
}

// Parse reads the serve-spec grammar: comma-separated key=value entries
//
//	clients=3                          number of concurrent clients
//	arrival=gamma:cv=2.0               poisson | gamma[:cv=X] | weibull[:shape=X]
//	rate=50@0-60s;120@60-300s          per-window aggregate req/s ('@from-to')
//	slo=interactive:p99=200ms:prio=2;batch:p99=2s
//	dataset=stackexchange              request-length distribution
//	sessions=8                         sessions per client
//	prefix=0.5                         shared-prefix fraction
//	form=priority                      fcfs | priority | sjf
//	route=affinity                     balance | affinity
//	horizon=120s                       default window span for bare rates
//
// Omitted keys take DefaultSpec values. The result is validated.
func Parse(s string) (Spec, error) {
	spec := DefaultSpec()
	spec.Windows = nil
	spec.Classes = nil
	var horizonSet bool
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("serve: entry %q is not key=value", part)
		}
		var err error
		switch key {
		case "clients":
			spec.Clients, err = strconv.Atoi(val)
		case "arrival":
			err = parseArrival(&spec, val)
		case "rate":
			spec.Windows, err = parseWindows(val)
		case "slo":
			spec.Classes, err = parseClasses(val)
		case "dataset":
			spec.Dataset = val
		case "sessions":
			spec.Sessions, err = strconv.Atoi(val)
		case "prefix":
			spec.Prefix, err = strconv.ParseFloat(val, 64)
		case "form":
			spec.Formation = val
		case "route":
			spec.Route = val
		case "horizon":
			spec.Horizon, err = time.ParseDuration(val)
			horizonSet = true
		default:
			return Spec{}, fmt.Errorf("serve: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("serve: %s=%s: %v", key, val, err)
		}
	}
	if len(spec.Windows) == 0 {
		spec.Windows = []RateWindow{{From: 0, To: spec.Horizon, Rate: 8}}
	}
	if len(spec.Classes) == 0 {
		spec.Classes = DefaultClasses()
	}
	// Bare "rate=50" windows span the horizon; a later horizon key must
	// still apply, so resolve zero-width windows here.
	for i := range spec.Windows {
		if spec.Windows[i].To == 0 && spec.Windows[i].From == 0 {
			spec.Windows[i].To = spec.Horizon
		}
	}
	if !horizonSet {
		// Extend the horizon to cover explicit windows.
		for _, w := range spec.Windows {
			if w.To > spec.Horizon {
				spec.Horizon = w.To
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func parseArrival(spec *Spec, val string) error {
	parts := strings.Split(val, ":")
	spec.Process = parts[0]
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("parameter %q is not key=value", p)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		switch k {
		case "cv":
			spec.CV = f
		case "shape":
			spec.Shape = f
		default:
			return fmt.Errorf("unknown arrival parameter %q", k)
		}
	}
	return nil
}

func parseWindows(val string) ([]RateWindow, error) {
	var out []RateWindow
	for _, w := range strings.Split(val, ";") {
		rateStr, span, windowed := strings.Cut(w, "@")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return nil, err
		}
		win := RateWindow{Rate: rate}
		if windowed {
			fromStr, toStr, ok := strings.Cut(span, "-")
			if !ok {
				return nil, fmt.Errorf("window %q is not from-to", span)
			}
			if win.From, err = parseDur(fromStr); err != nil {
				return nil, err
			}
			if win.To, err = parseDur(toStr); err != nil {
				return nil, err
			}
		}
		out = append(out, win)
	}
	return out, nil
}

// parseDur reads a duration, treating a bare number as seconds so window
// spans can be written "50@0-60s" or "120@60-300s".
func parseDur(s string) (time.Duration, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("duration %q needs a unit or a bare number of seconds", s)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("duration %q is not finite", s)
	}
	return time.Duration(f * float64(time.Second)), nil
}

func parseClasses(val string) ([]SLOClass, error) {
	var out []SLOClass
	for i, c := range strings.Split(val, ";") {
		parts := strings.Split(c, ":")
		cls := SLOClass{Name: parts[0], Priority: -i} // later classes rank lower by default
		for _, p := range parts[1:] {
			k, v, ok := strings.Cut(p, "=")
			if !ok {
				return nil, fmt.Errorf("class parameter %q is not key=value", p)
			}
			var err error
			switch k {
			case "p99":
				cls.Deadline, err = time.ParseDuration(v)
			case "prio":
				cls.Priority, err = strconv.Atoi(v)
			default:
				err = fmt.Errorf("unknown class parameter %q", k)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, cls)
	}
	return out, nil
}

// Validate checks the spec is well-formed, including that the dataset
// exists and its bin weights are sane (workload.Dataset.Validate).
func (s *Spec) Validate() error {
	if s.Clients < 1 {
		return fmt.Errorf("serve: clients must be >= 1, got %d", s.Clients)
	}
	switch s.Process {
	case ProcessPoisson, ProcessGamma, ProcessWeibull:
	default:
		return fmt.Errorf("serve: unknown arrival process %q (want poisson, gamma, or weibull)", s.Process)
	}
	if s.CV <= 0 || math.IsNaN(s.CV) || math.IsInf(s.CV, 0) {
		return fmt.Errorf("serve: gamma cv must be finite and > 0, got %v", s.CV)
	}
	if s.Shape <= 0 || math.IsNaN(s.Shape) || math.IsInf(s.Shape, 0) {
		return fmt.Errorf("serve: weibull shape must be finite and > 0, got %v", s.Shape)
	}
	if len(s.Windows) == 0 {
		return fmt.Errorf("serve: at least one rate window required")
	}
	for i, w := range s.Windows {
		if w.Rate <= 0 || math.IsNaN(w.Rate) || math.IsInf(w.Rate, 0) {
			return fmt.Errorf("serve: window %d rate must be finite and > 0, got %v", i, w.Rate)
		}
		if w.From < 0 || w.To <= w.From {
			return fmt.Errorf("serve: window %d span [%v,%v) is empty or negative", i, w.From, w.To)
		}
		if i > 0 && w.From < s.Windows[i-1].To {
			return fmt.Errorf("serve: window %d starts at %v before window %d ends at %v", i, w.From, i-1, s.Windows[i-1].To)
		}
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("serve: at least one SLO class required")
	}
	seen := map[string]bool{}
	for i, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("serve: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("serve: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Deadline <= 0 {
			return fmt.Errorf("serve: class %s deadline must be > 0, got %v", c.Name, c.Deadline)
		}
	}
	d, err := workload.ByName(s.Dataset)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	if s.Sessions < 1 {
		return fmt.Errorf("serve: sessions must be >= 1, got %d", s.Sessions)
	}
	if s.Prefix < 0 || s.Prefix > 0.9 || math.IsNaN(s.Prefix) {
		return fmt.Errorf("serve: prefix fraction must be in [0, 0.9], got %v", s.Prefix)
	}
	if !contains(Formations, s.Formation) {
		return fmt.Errorf("serve: unknown formation %q (want one of %v)", s.Formation, Formations)
	}
	if !contains(Routes, s.Route) {
		return fmt.Errorf("serve: unknown route objective %q (want one of %v)", s.Route, Routes)
	}
	return nil
}

func contains(set []string, s string) bool {
	for _, v := range set {
		if v == s {
			return true
		}
	}
	return false
}

// Class returns the class named name, or false.
func (s *Spec) Class(name string) (SLOClass, bool) {
	for _, c := range s.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return SLOClass{}, false
}

// Name labels the generator for reports ("serve(2xpoisson,2cls)").
func (s *Spec) Name() string {
	proc := s.Process
	switch s.Process {
	case ProcessGamma:
		proc = fmt.Sprintf("gamma cv=%g", s.CV)
	case ProcessWeibull:
		proc = fmt.Sprintf("weibull k=%g", s.Shape)
	}
	return fmt.Sprintf("serve(%dx%s,%dcls)", s.Clients, proc, len(s.Classes))
}

// Timeline expands the spec into an arrival-ordered request stream. Each
// client draws its own inter-arrival process at rate/Clients, resetting
// at window boundaries; request lengths come from the dataset
// distribution, and each request joins one of the client's sessions with
// a shared prefix of Prefix×Tokens tokens. All draws come sequentially
// from rng — same seed, same timeline, bit for bit.
func (s *Spec) Timeline(rng *rand.Rand) ([]Request, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d, err := workload.ByName(s.Dataset)
	if err != nil {
		return nil, err
	}
	var out []Request
	for client := 0; client < s.Clients; client++ {
		class := s.Classes[client%len(s.Classes)].Name
		for _, w := range s.Windows {
			rate := w.Rate / float64(s.Clients)
			t := w.From.Seconds()
			end := w.To.Seconds()
			for {
				t += s.gap(rng, rate)
				if t >= end {
					break
				}
				tokens := d.SampleLen(rng)
				if tokens < 16 {
					tokens = 16
				}
				out = append(out, Request{
					Client:  client,
					Class:   class,
					Arrive:  t,
					Tokens:  tokens,
					Session: client*s.Sessions + rng.Intn(s.Sessions),
					Prefix:  int(s.Prefix * float64(tokens)),
				})
			}
		}
	}
	sortRequests(out)
	return out, nil
}

// gap draws one inter-arrival gap in seconds for a per-client rate.
func (s *Spec) gap(rng *rand.Rand, rate float64) float64 {
	switch s.Process {
	case ProcessGamma:
		// Gamma with mean 1/rate and coefficient of variation CV:
		// shape k = 1/CV², scale θ = CV²/rate. CV=1 degenerates to the
		// exponential; CV>1 produces bursts.
		k := 1 / (s.CV * s.CV)
		return gammaSample(rng, k) * s.CV * s.CV / rate
	case ProcessWeibull:
		// Weibull with mean 1/rate: scale λ = 1/(rate·Γ(1+1/k));
		// inverse-CDF sampling. k<1 gives heavy-tailed gaps.
		lambda := 1 / (rate * math.Gamma(1+1/s.Shape))
		return lambda * math.Pow(-math.Log(1-rng.Float64()), 1/s.Shape)
	default: // poisson
		return rng.ExpFloat64() / rate
	}
}

// gammaSample draws Gamma(k, 1) by Marsaglia–Tsang squeeze, with the
// standard boost for k < 1.
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		return gammaSample(rng, k+1) * math.Pow(rng.Float64(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// sortRequests orders by arrival time (client, then draw order break
// ties) and assigns sequential IDs — the canonical timeline order.
func sortRequests(reqs []Request) {
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].Arrive != reqs[j].Arrive {
			return reqs[i].Arrive < reqs[j].Arrive
		}
		return reqs[i].Client < reqs[j].Client
	})
	for i := range reqs {
		reqs[i].ID = i
	}
}
