package serve

import (
	"math/rand"
	"testing"
)

// FuzzParse mirrors FuzzParseSpace: any input must either fail cleanly or
// yield a spec that validates and expands into a well-formed timeline.
func FuzzParse(f *testing.F) {
	f.Add("clients=3,arrival=gamma:cv=2.0,rate=50@0-60s;120@60-300s,slo=interactive:p99=200ms")
	f.Add("rate=20,horizon=90s,form=sjf,route=affinity")
	f.Add("arrival=weibull:shape=0.5,prefix=0.9")
	f.Add("slo=a:p99=1s:prio=3;b:p99=10s")
	f.Add("")
	f.Add("clients=-1")
	f.Add("rate=1e309")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := Parse(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted a spec that fails Validate: %v", s, verr)
		}
		// Keep the expansion bounded: cap the horizon so a fuzzed
		// "rate=1000@0-10000s" doesn't allocate millions of requests.
		total := 0.0
		for _, w := range spec.Windows {
			total += w.Rate * (w.To - w.From).Seconds()
		}
		if total > 50000 {
			return
		}
		reqs, terr := spec.Timeline(rand.New(rand.NewSource(1)))
		if terr != nil {
			t.Fatalf("Parse(%q) accepted a spec whose Timeline fails: %v", s, terr)
		}
		for i, r := range reqs {
			if r.Tokens < 1 || r.Prefix < 0 || r.Prefix >= r.Tokens || r.Arrive < 0 {
				t.Fatalf("Parse(%q) timeline event %d malformed: %+v", s, i, r)
			}
			if i > 0 && r.Arrive < reqs[i-1].Arrive {
				t.Fatalf("Parse(%q) timeline unsorted at %d", s, i)
			}
		}
	})
}
