package serve

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseFull(t *testing.T) {
	spec, err := Parse("clients=3,arrival=gamma:cv=2.0,rate=50@0-60s;120@60-300s,slo=interactive:p99=200ms:prio=2;batch:p99=2s,dataset=arxiv,sessions=4,prefix=0.6,form=sjf,route=affinity")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Clients != 3 || spec.Process != ProcessGamma || spec.CV != 2.0 {
		t.Errorf("clients/arrival wrong: %+v", spec)
	}
	want := []RateWindow{
		{From: 0, To: 60 * time.Second, Rate: 50},
		{From: 60 * time.Second, To: 300 * time.Second, Rate: 120},
	}
	if !reflect.DeepEqual(spec.Windows, want) {
		t.Errorf("windows = %+v, want %+v", spec.Windows, want)
	}
	wantCls := []SLOClass{
		{Name: "interactive", Deadline: 200 * time.Millisecond, Priority: 2},
		{Name: "batch", Deadline: 2 * time.Second, Priority: -1},
	}
	if !reflect.DeepEqual(spec.Classes, wantCls) {
		t.Errorf("classes = %+v, want %+v", spec.Classes, wantCls)
	}
	if spec.Dataset != "arxiv" || spec.Sessions != 4 || spec.Prefix != 0.6 {
		t.Errorf("dataset/sessions/prefix wrong: %+v", spec)
	}
	if spec.Formation != "sjf" || spec.Route != "affinity" {
		t.Errorf("form/route wrong: %+v", spec)
	}
	if spec.Horizon != 300*time.Second {
		t.Errorf("horizon = %v, want 300s (extended to cover windows)", spec.Horizon)
	}
}

func TestParseDefaults(t *testing.T) {
	spec, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, DefaultSpec()) {
		t.Errorf("Parse(\"\") = %+v, want DefaultSpec", spec)
	}
}

func TestParseBareRateUsesHorizon(t *testing.T) {
	spec, err := Parse("rate=20,horizon=90s")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Windows) != 1 || spec.Windows[0].To != 90*time.Second || spec.Windows[0].Rate != 20 {
		t.Errorf("windows = %+v, want one 0-90s window at 20", spec.Windows)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"clients=0",
		"clients=x",
		"arrival=normal",
		"arrival=gamma:cv=0",
		"arrival=gamma:cv=nan",
		"arrival=weibull:shape=-1",
		"rate=0",
		"rate=-5",
		"rate=10@60s-30s",
		"rate=10@0-60s;20@30s-90s", // overlapping windows
		"slo=:p99=1s",
		"slo=a:p99=0s",
		"slo=a:p99=1s;a:p99=2s", // duplicate class
		"slo=a:p99=1s:prio=x",
		"dataset=nope",
		"sessions=0",
		"prefix=1.5",
		"prefix=-0.1",
		"form=lifo",
		"route=random",
		"bogus=1",
		"noequals",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestTimelineDeterministic(t *testing.T) {
	spec, err := Parse("clients=3,arrival=gamma:cv=2.0,rate=40@0-10s,slo=interactive:p99=500ms:prio=2;batch:p99=4s:prio=1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.Timeline(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Timeline(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different timelines")
	}
	if len(a) == 0 {
		t.Fatal("empty timeline")
	}
	for i, r := range a {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if i > 0 && r.Arrive < a[i-1].Arrive {
			t.Fatalf("timeline not sorted at %d", i)
		}
		if r.Arrive < 0 || r.Arrive >= 10 {
			t.Fatalf("arrival %v outside window", r.Arrive)
		}
		if r.Tokens < 16 {
			t.Fatalf("request %d has %d tokens", i, r.Tokens)
		}
		if r.Prefix < 0 || r.Prefix >= r.Tokens {
			t.Fatalf("request %d prefix %d out of range", i, r.Prefix)
		}
		if r.Class != "interactive" && r.Class != "batch" {
			t.Fatalf("request %d has class %q", i, r.Class)
		}
	}
}

func TestTimelineRateRoughlyHonored(t *testing.T) {
	for _, proc := range []string{"poisson", "gamma:cv=2.0", "weibull:shape=0.7"} {
		spec, err := Parse("clients=4,arrival=" + proc + ",rate=50@0-100s")
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := spec.Timeline(rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		// 50 req/s × 100 s = 5000 expected; allow a wide tolerance since
		// bursty processes have high variance.
		if n := len(reqs); n < 3500 || n > 6500 {
			t.Errorf("%s: %d requests, want ~5000", proc, n)
		}
	}
}

func TestGammaSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []float64{0.25, 1, 4} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, k)
		}
		if mean := sum / n; math.Abs(mean-k) > 0.1*k {
			t.Errorf("gamma(k=%v) mean = %v, want ~%v", k, mean, k)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	spec := DefaultSpec()
	reqs, err := spec.Timeline(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Source: "test", Events: got}
	replayed, err := tr.Timeline(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, reqs) {
		t.Fatal("trace round trip changed the timeline")
	}
}

func TestTraceValidation(t *testing.T) {
	cases := []struct {
		name string
		ev   Request
	}{
		{"negative arrive", Request{Arrive: -1, Tokens: 32, Class: "a"}},
		{"nan arrive", Request{Arrive: math.NaN(), Tokens: 32, Class: "a"}},
		{"zero tokens", Request{Arrive: 0, Tokens: 0, Class: "a"}},
		{"no class", Request{Arrive: 0, Tokens: 32}},
		{"prefix too big", Request{Arrive: 0, Tokens: 32, Class: "a", Prefix: 32}},
		{"negative client", Request{Arrive: 0, Tokens: 32, Class: "a", Client: -1}},
	}
	for _, c := range cases {
		tr := &Trace{Events: []Request{c.ev}}
		if _, err := tr.Timeline(nil); err == nil {
			t.Errorf("%s: Timeline succeeded, want error", c.name)
		}
	}
	if _, err := (&Trace{}).Timeline(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReadTraceBadJSON(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"t\":1}\nnot json\n")); err == nil {
		t.Fatal("bad NDJSON accepted")
	}
}

func TestSpecName(t *testing.T) {
	spec := DefaultSpec()
	if got := spec.Name(); got != "serve(2xpoisson,2cls)" {
		t.Errorf("Name = %q", got)
	}
	spec.Process = ProcessGamma
	spec.CV = 2
	if got := spec.Name(); got != "serve(2xgamma cv=2,2cls)" {
		t.Errorf("Name = %q", got)
	}
}
