package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Trace is a recorded request timeline replayed as a first-class
// generator (trace-replay v2): timestamped events with client and
// SLO-class columns, round-tripping through NDJSON.
type Trace struct {
	Source string // label for reports, e.g. the trace file name
	Events []Request
}

// Name labels the trace for reports.
func (t *Trace) Name() string {
	src := t.Source
	if src == "" {
		src = "inline"
	}
	return fmt.Sprintf("tracev2(%s,%d)", src, len(t.Events))
}

// Timeline validates the recorded events and returns them in canonical
// arrival order with fresh IDs. The rng is unused: a trace replays the
// same stream regardless of seed.
func (t *Trace) Timeline(_ *rand.Rand) ([]Request, error) {
	if len(t.Events) == 0 {
		return nil, fmt.Errorf("serve: trace %s has no events", t.Name())
	}
	out := make([]Request, len(t.Events))
	copy(out, t.Events)
	for i, r := range out {
		if r.Arrive < 0 || math.IsNaN(r.Arrive) || math.IsInf(r.Arrive, 0) {
			return nil, fmt.Errorf("serve: trace event %d has invalid arrival time %v", i, r.Arrive)
		}
		if r.Tokens < 1 {
			return nil, fmt.Errorf("serve: trace event %d has %d tokens, want >= 1", i, r.Tokens)
		}
		if r.Class == "" {
			return nil, fmt.Errorf("serve: trace event %d has no SLO class", i)
		}
		if r.Client < 0 || r.Session < 0 {
			return nil, fmt.Errorf("serve: trace event %d has negative client or session", i)
		}
		if r.Prefix < 0 || r.Prefix >= r.Tokens {
			return nil, fmt.Errorf("serve: trace event %d prefix %d out of range [0,%d)", i, r.Prefix, r.Tokens)
		}
	}
	sortRequests(out)
	return out, nil
}

// traceLine is the NDJSON wire form of one trace event. Field order is
// part of the recorded-trace contract: append new fields, never reorder.
type traceLine struct {
	T       float64 `json:"t"`
	Client  int     `json:"client"`
	Class   string  `json:"class"`
	Tokens  int     `json:"tokens"`
	Session int     `json:"session"`
	Prefix  int     `json:"prefix,omitempty"`
}

// WriteTrace serializes a timeline as NDJSON, one event per line.
func WriteTrace(w io.Writer, events []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range events {
		if err := enc.Encode(traceLine{
			T: r.Arrive, Client: r.Client, Class: r.Class,
			Tokens: r.Tokens, Session: r.Session, Prefix: r.Prefix,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses an NDJSON request trace. Blank lines are skipped;
// structural validation happens in Trace.Timeline.
func ReadTrace(r io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l traceLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("serve: trace line %d: %v", line, err)
		}
		out = append(out, Request{
			Client: l.Client, Class: l.Class, Arrive: l.T,
			Tokens: l.Tokens, Session: l.Session, Prefix: l.Prefix,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: reading trace: %v", err)
	}
	return out, nil
}
