// Package workload generates synthetic variable-length batches matching
// the sequence-length distributions of the paper's datasets (Table 2 and
// Fig. 1). The paper itself evaluates on synthetic batches sampled from
// these published distributions ("Synthetic datasets are generated to
// match the length distributions of these benchmarks"), so the generator
// here reproduces the paper's actual workload, not an approximation of it.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"zeppelin/internal/seq"
)

// Bin is a sequence-length bucket [Lo, Hi) in tokens.
type Bin struct{ Lo, Hi int }

// Bins are the nine buckets of Table 2 (lengths in thousands of tokens):
// <1, 1–2, 2–4, 4–8, 8–16, 16–32, 32–64, 64–128, 128–256.
var Bins = []Bin{
	{1, 1 << 10}, {1 << 10, 2 << 10}, {2 << 10, 4 << 10}, {4 << 10, 8 << 10},
	{8 << 10, 16 << 10}, {16 << 10, 32 << 10}, {32 << 10, 64 << 10},
	{64 << 10, 128 << 10}, {128 << 10, 256 << 10},
}

// BinLabels are display names matching the paper's axis labels.
var BinLabels = []string{"<1k", "1-2k", "2-4k", "4-8k", "8-16k", "16-32k", "32-64k", "64-128k", "128-256k"}

// Dataset is a named distribution over the length bins. Probs are treated
// as weights and normalized when sampling: the paper's own Table 2 rows do
// not sum exactly to 1 (GitHub sums to 0.945 due to rounding), and we keep
// the published values verbatim.
type Dataset struct {
	Name  string
	Probs []float64 // one weight per Bin
}

func (d Dataset) probSum() float64 {
	var sum float64
	for _, p := range d.Probs {
		sum += p
	}
	return sum
}

// The three evaluation datasets, with bin proportions copied from Table 2.
var (
	ArXiv = Dataset{"arxiv", []float64{0.032, 0.03, 0.08, 0.219, 0.338, 0.224, 0.077, 0, 0}}
	// GitHub is long-tailed with sequences beyond 64k.
	GitHub = Dataset{"github", []float64{0, 0.34, 0.095, 0.104, 0.107, 0.102, 0.088, 0.064, 0.045}}
	// ProLong64k is bimodal: many short sequences plus a heavy 32–64k mode.
	ProLong64k = Dataset{"prolong64k", []float64{0.231, 0.042, 0.021, 0.012, 0.013, 0.008, 0.673, 0, 0}}
)

// Fig. 1 companion datasets. Table 2 does not list these; the proportions
// follow the visual shape of Fig. 1 (web corpora are heavily short-tailed,
// StackExchange most of all).
var (
	FineWeb       = Dataset{"fineweb", []float64{0.62, 0.20, 0.10, 0.05, 0.02, 0.008, 0.002, 0, 0}}
	FineWebEdu    = Dataset{"fineweb_edu", []float64{0.55, 0.24, 0.12, 0.06, 0.02, 0.008, 0.002, 0, 0}}
	OpenWebMath   = Dataset{"openwebmath", []float64{0.45, 0.25, 0.17, 0.09, 0.03, 0.008, 0.002, 0, 0}}
	StackExchange = Dataset{"stackexchange", []float64{0.78, 0.15, 0.05, 0.015, 0.004, 0.001, 0, 0, 0}}
)

// All lists every defined dataset (Fig. 1 order).
var All = []Dataset{ArXiv, GitHub, FineWeb, FineWebEdu, OpenWebMath, StackExchange, ProLong64k}

// Eval lists the three end-to-end evaluation datasets (Fig. 8 order).
var Eval = []Dataset{ArXiv, GitHub, ProLong64k}

// ByName looks up a dataset.
func ByName(name string) (Dataset, error) {
	for _, d := range All {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// Validate checks the distribution is well-formed.
func (d Dataset) Validate() error {
	if len(d.Probs) != len(Bins) {
		return fmt.Errorf("workload %s: %d bins, want %d", d.Name, len(d.Probs), len(Bins))
	}
	for i, p := range d.Probs {
		// NaN fails every comparison, so the explicit check matters: a
		// NaN weight would otherwise slip through both this guard and
		// the sum band below and corrupt every SampleLen draw.
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("workload %s: bin %d weight %v is not a finite non-negative number", d.Name, i, p)
		}
	}
	// Accept the paper's rounded rows (GitHub sums to 0.945 in Table 2).
	if sum := d.probSum(); sum < 0.9 || sum > 1.01 {
		return fmt.Errorf("workload %s: probabilities sum to %v, want ~1", d.Name, sum)
	}
	return nil
}

// MeanLen returns the expected sequence length (bin midpoints, weights
// normalized).
func (d Dataset) MeanLen() float64 {
	var mean float64
	for i, p := range d.Probs {
		mean += p * float64(Bins[i].Lo+Bins[i].Hi) / 2
	}
	return mean / d.probSum()
}

// SampleLen draws one sequence length: a bin by normalized probability,
// then a uniform length within the bin.
func (d Dataset) SampleLen(rng *rand.Rand) int {
	u := rng.Float64() * d.probSum()
	var acc float64
	for i, p := range d.Probs {
		acc += p
		if u < acc {
			b := Bins[i]
			return b.Lo + rng.Intn(b.Hi-b.Lo)
		}
	}
	// Rounding tail: fall into the last non-zero bin.
	for i := len(d.Probs) - 1; i >= 0; i-- {
		if d.Probs[i] > 0 {
			b := Bins[i]
			return b.Lo + rng.Intn(b.Hi-b.Lo)
		}
	}
	return 1
}

// BinOf returns the bin index of a length, or -1 if out of range.
func BinOf(length int) int {
	for i, b := range Bins {
		if length >= b.Lo && length < b.Hi {
			return i
		}
	}
	return -1
}

// Batch builds a batch whose lengths are sampled from the dataset and
// whose total token count is exactly totalTokens (the paper fixes the
// global context budget to 4k tokens × #GPUs). The last sequence is
// clamped to the remaining budget; a trailing remnant shorter than 16
// tokens is merged into its predecessor to avoid degenerate sequences.
func (d Dataset) Batch(totalTokens int, rng *rand.Rand) []seq.Sequence {
	if totalTokens <= 0 {
		return nil
	}
	var out []seq.Sequence
	remaining := totalTokens
	id := 0
	for remaining > 0 {
		l := d.SampleLen(rng)
		if l > remaining {
			l = remaining
		}
		if remaining-l < 16 && remaining-l > 0 {
			l = remaining
		}
		out = append(out, seq.Sequence{ID: id, Len: l})
		id++
		remaining -= l
	}
	return out
}

// SkewedBatch reproduces the "Skewed" distribution of Table 3: one very
// long sequence consuming most of the budget plus several short ones.
func SkewedBatch(totalTokens int, rng *rand.Rand) []seq.Sequence {
	if totalTokens <= 0 {
		return nil
	}
	long := totalTokens * 7 / 8
	if long < 1 {
		long = totalTokens // degenerate budgets yield one whole sequence
	}
	out := []seq.Sequence{{ID: 0, Len: long}}
	remaining := totalTokens - long
	id := 1
	for remaining > 0 {
		l := 512 + rng.Intn(3584)
		if l > remaining {
			l = remaining
		}
		out = append(out, seq.Sequence{ID: id, Len: l})
		id++
		remaining -= l
	}
	return out
}

// BalancedBatch reproduces the "Balanced" distribution of Table 3: it
// cycles through the non-empty bins of the ArXiv row, drawing one sample
// from each, until the token budget is filled (last sequence clamped).
// Every length stays inside its bin, so no artificial outlier appears.
func BalancedBatch(totalTokens int, rng *rand.Rand) []seq.Sequence {
	var bins []Bin
	for i, p := range ArXiv.Probs {
		if p > 0 {
			bins = append(bins, Bins[i])
		}
	}
	var out []seq.Sequence
	remaining := totalTokens
	for i := 0; remaining > 0; i++ {
		b := bins[i%len(bins)]
		l := b.Lo + rng.Intn(b.Hi-b.Lo)
		if l > remaining {
			l = remaining
		}
		if remaining-l < 16 && remaining-l > 0 {
			l = remaining
		}
		out = append(out, seq.Sequence{ID: i, Len: l})
		remaining -= l
	}
	return out
}

// BinHistogram returns the fraction of *tokens* falling into each bin for
// a batch — the quantity Fig. 1 plots.
func BinHistogram(batch []seq.Sequence) []float64 {
	out := make([]float64, len(Bins))
	var total float64
	for _, s := range batch {
		if i := BinOf(s.Len); i >= 0 {
			out[i] += float64(s.Len)
			total += float64(s.Len)
		}
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}
