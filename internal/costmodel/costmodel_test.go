package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
)

func m7bA() *Model { return MustNew(model.LLaMA7B, cluster.ClusterA, 1) }

func TestNewValidation(t *testing.T) {
	if _, err := New(model.LLaMA7B, cluster.ClusterA, 0); err == nil {
		t.Fatal("expected error for TP=0")
	}
	if _, err := New(model.LLaMA7B, cluster.ClusterA, 3); err == nil {
		t.Fatal("expected error for TP not dividing heads")
	}
	if _, err := New(model.Config{Name: "bad"}, cluster.ClusterA, 1); err == nil {
		t.Fatal("expected error for invalid model")
	}
	if _, err := New(model.LLaMA7B, cluster.ClusterA, 2); err != nil {
		t.Fatal(err)
	}
}

// Fig. 5 calibration: a 64k causal sequence on one A800 should cost on the
// order of 100–400 ms of attention compute (the paper's curve tops out
// near 240 ms for its hidden size).
func TestAttnTimeMagnitudeMatchesFig5(t *testing.T) {
	got := m7bA().CausalAttnTime(65536)
	if got < 0.08 || got > 0.5 {
		t.Fatalf("64k attention time = %v s, outside plausible Fig.5 range", got)
	}
}

// Fig. 12 calibration: TE CP on 16 GPUs / 64k context sends 4k tokens of
// 3B-model KV cross-node per round, measured at 2.18 ms. Our model should
// land within 2x.
func TestInterKVTransferMatchesFig12(t *testing.T) {
	m := MustNew(model.LLaMA3B, cluster.ClusterA, 1)
	got := m.InterTime(m.KVBytes(4096))
	if got < 1.0e-3 || got > 4.5e-3 {
		t.Fatalf("cross-node 4k KV transfer = %v s, want ~2.18ms", got)
	}
}

func TestTPDividesComputeAndKV(t *testing.T) {
	m1 := MustNew(model.LLaMA13B, cluster.ClusterA, 1)
	m2 := MustNew(model.LLaMA13B, cluster.ClusterA, 2)
	if r := m1.CausalAttnTime(8192) / m2.CausalAttnTime(8192); math.Abs(r-2) > 1e-9 {
		t.Fatalf("TP=2 should halve attention time, ratio %v", r)
	}
	if r := m1.KVBytes(8192) / m2.KVBytes(8192); math.Abs(r-2) > 1e-9 {
		t.Fatalf("TP=2 should halve KV bytes, ratio %v", r)
	}
	if r := m1.LinearTime(8192) / m2.LinearTime(8192); math.Abs(r-2) > 1e-9 {
		t.Fatalf("TP=2 should halve linear time, ratio %v", r)
	}
}

func TestZeroInputsCostNothing(t *testing.T) {
	m := m7bA()
	if m.AttnTimePairs(0) != 0 || m.LinearTime(0) != 0 ||
		m.IntraTime(0) != 0 || m.InterTime(0) != 0 {
		t.Fatal("zero-size work must be free")
	}
}

// Fig. 5 zones: the local/intra boundary must be below the intra/inter
// boundary (NVSwitch is faster than a NIC) and both should land in the
// sub-1k .. tens-of-k range the paper's figure shows.
func TestZoneBoundariesOrderedAndPlausible(t *testing.T) {
	m := m7bA()
	s0 := m.LocalIntraBoundary()
	s1 := m.IntraInterBoundary()
	if !(s0 < s1) {
		t.Fatalf("boundaries out of order: local/intra %v >= intra/inter %v", s0, s1)
	}
	if s0 < 100 || s0 > 4096 {
		t.Fatalf("local/intra boundary %v outside plausible range (paper: <1k-ish)", s0)
	}
	if s1 < 2048 || s1 > 65536 {
		t.Fatalf("intra/inter boundary %v outside plausible range (paper: ~8-16k)", s1)
	}
}

// On the higher-bandwidth Cluster C, both boundaries shift left relative
// to compute (faster links are easier to hide), but the faster H200 also
// shrinks compute time; the net intra/inter boundary should still exist
// and stay finite.
func TestZoneBoundariesClusterC(t *testing.T) {
	m := MustNew(model.LLaMA7B, cluster.ClusterC, 1)
	s1 := m.IntraInterBoundary()
	if math.IsInf(s1, 1) || s1 <= 0 {
		t.Fatalf("intra/inter boundary on C = %v", s1)
	}
}

func TestPackedPairsRedundancy(t *testing.T) {
	useful, redundant := PackedPairs([]int{100, 100})
	// Packed triangle of 200 = 20100; useful = 2 × 5050.
	if useful != 10100 {
		t.Fatalf("useful = %v", useful)
	}
	if redundant != 10000 {
		t.Fatalf("redundant = %v, want 100×100 cross block", redundant)
	}
	u2, r2 := PackedPairs([]int{200})
	if r2 != 0 || u2 != 20100 {
		t.Fatalf("single sequence should have no redundancy: %v %v", u2, r2)
	}
}

func TestRingCommBytes(t *testing.T) {
	m := m7bA()
	if m.RingCommBytes(1000, 1) != 0 {
		t.Fatal("ring of 1 communicates nothing")
	}
	got := m.RingCommBytes(1000, 4)
	want := m.KVBytes(1000) * 3
	if got != want {
		t.Fatalf("ring bytes = %v, want %v", got, want)
	}
}

func TestAllGatherBytesPerRank(t *testing.T) {
	m := m7bA()
	if m.AllGatherBytesPerRank(1000, 1) != 0 {
		t.Fatal("allgather across 1 rank is free")
	}
	got := m.AllGatherBytesPerRank(1600, 16)
	want := m.KVBytes(1600) * 15 / 16
	if got != want {
		t.Fatalf("allgather bytes = %v, want %v", got, want)
	}
}

func TestBackwardFactors(t *testing.T) {
	if BwdComputeFactor != 2.0 || BwdCommFactor != 2.0 {
		t.Fatal("backward factors should model the ~2x observed in Fig. 12")
	}
}

func TestMicroBatchOverheadPositive(t *testing.T) {
	if m7bA().MicroBatchOverhead() <= 0 {
		t.Fatal("micro-batch overhead must be positive")
	}
}

// Property: attention time is monotone in pairs; transfer times are
// monotone in bytes. The partitioner's greedy arguments rely on this.
func TestPropertyMonotone(t *testing.T) {
	m := m7bA()
	f := func(a, b uint32) bool {
		x, y := float64(a%1000000), float64(b%1000000)
		if x > y {
			x, y = y, x
		}
		return m.AttnTimePairs(x) <= m.AttnTimePairs(y) &&
			m.IntraTime(x) <= m.IntraTime(y) &&
			m.InterTime(x) <= m.InterTime(y) &&
			m.LinearTime(x) <= m.LinearTime(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: packing redundancy is never negative and is zero only for
// single-sequence packs.
func TestPropertyPackedRedundancyNonNegative(t *testing.T) {
	f := func(ls []uint16) bool {
		lengths := make([]int, 0, len(ls))
		for _, l := range ls {
			if l > 0 {
				lengths = append(lengths, int(l))
			}
		}
		_, red := PackedPairs(lengths)
		if red < 0 {
			return false
		}
		if len(lengths) >= 2 && red == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
