// Package costmodel converts model configurations and cluster specs into
// execution-time estimates: attention kernels (quadratic in length),
// linear-module kernels (linear in tokens), and KV/activation transfer
// times over intra- and inter-node links. It also derives the three-zone
// classification of Fig. 5 — the sequence lengths at which attention
// computation begins to hide intra-node and inter-node communication.
package costmodel

import (
	"fmt"
	"math"

	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
)

// Default kernel efficiency factors (fraction of peak FLOPs achieved).
// Attention kernels (FlashAttention-style) reach lower utilization than
// large GEMMs; values chosen to land the absolute costs near Fig. 5/12.
const (
	DefaultAttnEff   = 0.45
	DefaultLinearEff = 0.55
)

// Backward-pass scaling: backward recomputes ~2× the forward FLOPs
// (dQ,dK,dV) and ring attention additionally circulates dKV, doubling the
// communication volume. Matches the ~2× durations in Fig. 12.
const (
	BwdComputeFactor = 2.0
	BwdCommFactor    = 2.0
)

// Model is a calibrated cost model for one (architecture, device, TP) tuple.
type Model struct {
	MC   model.Config
	Spec cluster.Spec
	// TP is the tensor-parallel degree; heads and FFN shards divide
	// per-rank compute and KV volume by TP.
	TP        int
	AttnEff   float64
	LinearEff float64
}

// New builds a cost model with default efficiencies.
func New(mc model.Config, spec cluster.Spec, tp int) (*Model, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	if tp <= 0 {
		return nil, fmt.Errorf("costmodel: TP must be positive, got %d", tp)
	}
	if mc.Heads%tp != 0 {
		return nil, fmt.Errorf("costmodel: heads %d not divisible by TP %d", mc.Heads, tp)
	}
	return &Model{MC: mc, Spec: spec, TP: tp, AttnEff: DefaultAttnEff, LinearEff: DefaultLinearEff}, nil
}

// MustNew is New for known-valid configurations.
func MustNew(mc model.Config, spec cluster.Spec, tp int) *Model {
	m, err := New(mc, spec, tp)
	if err != nil {
		panic(err)
	}
	return m
}

// RingRoundOverhead is the fixed per-round cost of chunked ring-attention
// execution beyond the kernel FLOPs: stream synchronization between
// rounds, partial-softmax rescaling/accumulation, and the extra launch.
// It is why heavily fragmented execution shows stalls ("bubbles") in the
// paper's Fig. 12b timeline, and it tempers the gains of fine-grained
// splitting for short sequences.
const RingRoundOverhead = 200e-6

// AttnTimePairs is the per-rank time to compute attention over a number of
// query–key pairs (one layer, forward).
func (m *Model) AttnTimePairs(pairs float64) float64 {
	if pairs <= 0 {
		return 0
	}
	return m.MC.AttnFlopsForPairs(pairs) / float64(m.TP) / (m.Spec.GPUPeakFlops * m.AttnEff)
}

// CausalAttnTime is the forward attention time of a full causal sequence
// of length s on one rank.
func (m *Model) CausalAttnTime(s float64) float64 {
	return m.AttnTimePairs(model.CausalPairs(s))
}

// LinearTime is the forward time of the token-wise modules for a token
// count on one rank (one layer).
func (m *Model) LinearTime(tokens float64) float64 {
	if tokens <= 0 {
		return 0
	}
	return tokens * m.MC.LinearFlopsPerToken() / float64(m.TP) / (m.Spec.GPUPeakFlops * m.LinearEff)
}

// KVBytes is the per-rank KV activation volume for a token count (one
// layer); TP shards heads, dividing the per-rank volume.
func (m *Model) KVBytes(tokens float64) float64 {
	return tokens * m.MC.KVBytesPerToken() / float64(m.TP)
}

// ActBytes is the per-rank hidden-state volume for a token count.
func (m *Model) ActBytes(tokens float64) float64 {
	return tokens * m.MC.ActivationBytesPerToken() / float64(m.TP)
}

// IntraTime is the time to move bytes over one NVSwitch port.
func (m *Model) IntraTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return m.Spec.IntraLatency + bytes/m.Spec.IntraBandwidth
}

// InterTime is the time to move bytes over one NIC (one direction).
func (m *Model) InterTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return m.Spec.InterLatency + bytes/m.Spec.NICBandwidth
}

// Zones (Fig. 5). The boundary between the local and intra-node zones is
// the length at which a sequence's attention computation matches the cost
// of moving its KV over NVSwitch; below it, splitting the sequence cannot
// hide even intra-node traffic. The intra/inter boundary is the analogous
// crossing against a single NIC. Both are found by bisection on the
// monotone difference function.

// LocalIntraBoundary returns the sequence length (tokens) where causal
// attention compute time equals intra-node KV send-receive time.
func (m *Model) LocalIntraBoundary() float64 {
	return m.crossing(func(s float64) float64 {
		return m.CausalAttnTime(s) - m.IntraTime(m.KVBytes(s))
	})
}

// IntraInterBoundary returns the sequence length where causal attention
// compute time equals inter-node (single NIC) KV send-receive time.
func (m *Model) IntraInterBoundary() float64 {
	return m.crossing(func(s float64) float64 {
		return m.CausalAttnTime(s) - m.InterTime(m.KVBytes(s))
	})
}

func (m *Model) crossing(f func(float64) float64) float64 {
	lo, hi := 1.0, 1.0
	for f(hi) < 0 && hi < 1e9 {
		hi *= 2
	}
	if hi >= 1e9 {
		return math.Inf(1)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Packing redundancy (Fig. 3a). When sequences are packed into a fixed
// chunk and attention runs without a per-sequence block mask, the kernel
// computes the full causal triangle of the packed chunk; the useful work
// is only each sequence's own triangle.

// PackedPairs returns (useful, redundant) causal pairs when the given
// sequence lengths are packed into one chunk.
func PackedPairs(lengths []int) (useful, redundant float64) {
	var total float64
	for _, l := range lengths {
		useful += model.CausalPairs(float64(l))
		total += float64(l)
	}
	redundant = model.CausalPairs(total) - useful
	return useful, redundant
}

// RingCommBytes is the total KV volume a sequence of length s circulates
// in a ring of size g (each of g ranks forwards its chunk g−1 times).
func (m *Model) RingCommBytes(s float64, g int) float64 {
	if g <= 1 {
		return 0
	}
	return m.KVBytes(s) * float64(g-1)
}

// AllGatherBytesPerRank is the volume each rank receives when all-gathering
// total KV across w ranks (LLaMA CP): (w−1)/w of the total volume.
func (m *Model) AllGatherBytesPerRank(totalTokens float64, w int) float64 {
	if w <= 1 {
		return 0
	}
	return m.KVBytes(totalTokens) * float64(w-1) / float64(w)
}

// MicroBatchOverhead is the fixed per-micro-batch cost (kernel launches,
// optimizer bookkeeping) that penalizes many small micro-batches — the
// "low computation intensity with more micro-batches" effect of Fig. 2c.
func (m *Model) MicroBatchOverhead() float64 {
	// One launch per module group: attention + 4 linear kernels.
	return 5 * m.Spec.LaunchLatency
}
