package promtext

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestRoundTrip: a rendered document parses back to the same samples.
func TestRoundTrip(t *testing.T) {
	var b Builder
	b.Metric("z_requests_total", "counter", "Requests by class.")
	b.Sample("z_requests_total", []Label{L("class", "plan")}, 42)
	b.Sample("z_requests_total", []Label{L("class", "campaign")}, 7)
	b.Metric("z_tokens", "gauge", "Bucket level.")
	b.Sample("z_tokens", nil, 99.5)

	m, err := Parse(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Sum("z_requests_total"); got != 49 {
		t.Fatalf("Sum = %v, want 49", got)
	}
	by := m.ByLabel("z_requests_total", "class")
	if by["plan"] != 42 || by["campaign"] != 7 {
		t.Fatalf("ByLabel = %v", by)
	}
	if !m.Has("z_tokens") || m.Has("z_missing") {
		t.Fatal("Has misreports families")
	}
}

// TestHistogramCumulative: buckets render cumulatively with a +Inf
// terminal, and _sum/_count match the observations.
func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b Builder
	b.Metric("z_lat", "histogram", "Latency.")
	h.Write(&b, "z_lat", []Label{L("class", "plan")})
	doc := string(b.Bytes())

	for _, want := range []string{
		`z_lat_bucket{class="plan",le="0.1"} 1`,
		`z_lat_bucket{class="plan",le="1"} 3`,
		`z_lat_bucket{class="plan",le="10"} 4`,
		`z_lat_bucket{class="plan",le="+Inf"} 5`,
		`z_lat_sum{class="plan"} 56.05`,
		`z_lat_count{class="plan"} 5`,
	} {
		if !strings.Contains(doc, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, doc)
		}
	}

	m, err := Parse(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range m {
		if s.Name == "z_lat_bucket" && s.Labels["le"] == "+Inf" {
			found = true
			if s.Value != 5 {
				t.Fatalf("+Inf bucket = %v, want 5", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("no +Inf bucket parsed")
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

// TestEscaping: label values with quotes, backslashes, and newlines
// survive a render/parse round trip.
func TestEscaping(t *testing.T) {
	var b Builder
	b.Sample("z_x", []Label{L("k", "a\"b\\c\nd")}, 1)
	m, err := Parse(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[0].Labels["k"] != "a\"b\\c\nd" {
		t.Fatalf("escaped label did not round-trip: %+v", m)
	}
}

// TestSpecialValues: infinities render in exposition spelling and parse
// back.
func TestSpecialValues(t *testing.T) {
	var b Builder
	b.Sample("z_inf", nil, math.Inf(1))
	if !strings.Contains(string(b.Bytes()), "z_inf +Inf\n") {
		t.Fatalf("inf rendered as %q", b.Bytes())
	}
	m, err := Parse(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m[0].Value, 1) {
		t.Fatalf("parsed %v, want +Inf", m[0].Value)
	}
}

// TestParseRejectsMalformed: the CI smoke relies on Parse failing on
// garbage.
func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"name{unterminated 1",
		"nolabels",
		`name{k="v"} notanumber`,
		`{k="v"} 1`,
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("Parse accepted %q", bad)
		}
	}
}
