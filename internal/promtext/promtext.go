// Package promtext renders and parses the Prometheus text exposition
// format (version 0.0.4) without external dependencies. zeppelind's
// GET /metrics endpoint renders through Builder and Histogram; the load
// generator scrapes targets back through Parse. Only the subset the
// repo needs is implemented: counter, gauge, and histogram families
// with HELP/TYPE headers, label escaping, and the shortest-roundtrip
// float formatting Prometheus itself uses.
package promtext

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Builder accumulates an exposition document. Zero value is ready.
type Builder struct {
	buf bytes.Buffer
}

// Metric writes a family header: # HELP and # TYPE lines. Call once per
// family, before its samples; typ is "counter", "gauge", or "histogram".
func (b *Builder) Metric(name, typ, help string) {
	fmt.Fprintf(&b.buf, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&b.buf, "# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line: name{labels} value.
func (b *Builder) Sample(name string, labels []Label, v float64) {
	b.buf.WriteString(name)
	writeLabels(&b.buf, labels)
	b.buf.WriteByte(' ')
	b.buf.WriteString(formatFloat(v))
	b.buf.WriteByte('\n')
}

// Bytes returns the document rendered so far.
func (b *Builder) Bytes() []byte { return b.buf.Bytes() }

// WriteTo writes the document to w.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(b.buf.Bytes())
	return int64(n), err
}

func writeLabels(buf *bytes.Buffer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	buf.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(l.Name)
		buf.WriteString(`="`)
		buf.WriteString(escapeValue(l.Value))
		buf.WriteByte('"')
	}
	buf.WriteByte('}')
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case v > 1e308*1.5: // +Inf without importing math for one constant
		return "+Inf"
	case v < -1e308*1.5:
		return "-Inf"
	case v != v:
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeValue escapes a label value: backslash, double-quote, newline.
func escapeValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// DefaultLatencyBuckets are the request-latency bucket bounds in
// seconds: sub-millisecond plan hits through multi-second campaign
// streams.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // per-bucket (non-cumulative); rendered cumulative
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over ascending upper bounds. An
// implicit +Inf bucket catches everything beyond the last bound.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Write renders the histogram's series — cumulative le buckets, +Inf,
// _sum, and _count — under the family name with the given base labels.
// The caller writes the family header once (type "histogram").
func (h *Histogram) Write(b *Builder, name string, labels []Label) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	cum := uint64(0)
	le := make([]Label, len(labels), len(labels)+1)
	copy(le, labels)
	le = append(le, Label{Name: "le"})
	for i, bound := range bounds {
		cum += counts[i]
		le[len(le)-1].Value = formatFloat(bound)
		b.Sample(name+"_bucket", le, float64(cum))
	}
	cum += counts[len(counts)-1]
	le[len(le)-1].Value = "+Inf"
	b.Sample(name+"_bucket", le, float64(cum))
	b.Sample(name+"_sum", labels, sum)
	b.Sample(name+"_count", labels, float64(count))
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Metrics is a parsed exposition document.
type Metrics []Sample

// Parse reads a text exposition document. Comment and blank lines are
// skipped; malformed sample lines are an error (the CI smoke uses Parse
// to assert /metrics is well-formed).
func Parse(r io.Reader) (Metrics, error) {
	var out Metrics
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[i+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	// A timestamp may trail the value; the value is the first field.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("missing value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(f string) (float64, error) {
	// ParseFloat accepts "+Inf"/"-Inf"/"NaN" spellings directly.
	return strconv.ParseFloat(f, 64)
}

func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed labels %q", s)
		}
		name := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		labels[name] = val.String()
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
	}
	return labels, nil
}

// Sum totals all series of one family (any label set).
func (m Metrics) Sum(name string) float64 {
	total := 0.0
	for _, s := range m {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// Has reports whether any series of the family is present.
func (m Metrics) Has(name string) bool {
	for _, s := range m {
		if s.Name == name {
			return true
		}
	}
	return false
}

// ByLabel collects a family's series keyed by one label's value.
func (m Metrics) ByLabel(name, label string) map[string]float64 {
	out := map[string]float64{}
	for _, s := range m {
		if s.Name == name {
			out[s.Labels[label]] = s.Value
		}
	}
	return out
}
