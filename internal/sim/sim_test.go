package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleTask(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("gpu0", 0)
	e.Compute("k", 0, r, 1.5)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 1.5 {
		t.Fatalf("makespan = %v, want 1.5", mk)
	}
}

func TestTransferUsesRate(t *testing.T) {
	e := NewEngine()
	nic := e.NewResource("nic", 100) // 100 B/s
	tr := e.Transfer("x", KindInterComm, 0, nic, 250)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.End-tr.Start != 2.5 {
		t.Fatalf("transfer time = %v, want 2.5", tr.End-tr.Start)
	}
}

func TestResourceLatencyAdded(t *testing.T) {
	e := NewEngine()
	nic := e.NewResource("nic", 100)
	nic.Latency = 0.25
	tr := e.Transfer("x", KindInterComm, 0, nic, 100)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(mk, 1.25) {
		t.Fatalf("makespan = %v, want 1.25", mk)
	}
	_ = tr
}

func TestSerialResourceQueues(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("gpu", 0)
	a := e.Compute("a", 0, r, 1)
	b := e.Compute("b", 0, r, 2)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 3 {
		t.Fatalf("makespan = %v, want 3 (serialized)", mk)
	}
	if !(a.End <= b.Start) {
		t.Fatalf("b started before a finished: a=[%v,%v] b=[%v,%v]", a.Start, a.End, b.Start, b.End)
	}
}

func TestIndependentResourcesOverlap(t *testing.T) {
	e := NewEngine()
	r1 := e.NewResource("gpu0", 0)
	r2 := e.NewResource("gpu1", 0)
	e.Compute("a", 0, r1, 2)
	e.Compute("b", 1, r2, 2)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 2 {
		t.Fatalf("makespan = %v, want 2 (parallel)", mk)
	}
}

func TestDependencyOrdering(t *testing.T) {
	e := NewEngine()
	r1 := e.NewResource("gpu0", 0)
	r2 := e.NewResource("gpu1", 0)
	a := e.Compute("a", 0, r1, 1)
	b := e.Compute("b", 1, r2, 1)
	b.After(a)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 2 {
		t.Fatalf("makespan = %v, want 2 (chained)", mk)
	}
	if b.Start != a.End {
		t.Fatalf("b should start exactly when a ends")
	}
}

func TestBarrierJoins(t *testing.T) {
	e := NewEngine()
	r1 := e.NewResource("gpu0", 0)
	r2 := e.NewResource("gpu1", 0)
	a := e.Compute("a", 0, r1, 1)
	b := e.Compute("b", 1, r2, 3)
	bar := e.Barrier("join", 0).After(a, b)
	c := e.Compute("c", 0, r1, 1)
	c.After(bar)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 4 {
		t.Fatalf("makespan = %v, want 4", mk)
	}
}

func TestAfterIgnoresNil(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("gpu", 0)
	a := e.Compute("a", 0, r, 1)
	a.After(nil, nil)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("gpu", 0)
	a := e.Compute("a", 0, r, 1)
	b := e.Compute("b", 0, r, 1)
	a.After(b)
	b.After(a)
	if _, err := e.Run(); err == nil {
		t.Fatal("expected deadlock error for cyclic graph")
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("gpu", 0)
	e.Compute("a", 0, r, 1)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("expected error on second Run")
	}
}

func TestKindTotals(t *testing.T) {
	e := NewEngine()
	gpu := e.NewResource("gpu", 0)
	nic := e.NewResource("nic", 10)
	e.Compute("a", 0, gpu, 2)
	e.Transfer("t", KindInterComm, 0, nic, 30)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tot := e.KindTotals()
	if tot[KindCompute] != 2 {
		t.Fatalf("compute total = %v", tot[KindCompute])
	}
	if tot[KindInterComm] != 3 {
		t.Fatalf("inter-comm total = %v", tot[KindInterComm])
	}
}

func TestUtilization(t *testing.T) {
	e := NewEngine()
	gpu := e.NewResource("gpu", 0)
	other := e.NewResource("gpu2", 0)
	e.Compute("a", 0, gpu, 1)
	e.Compute("b", 1, other, 4)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := gpu.Utilization(mk); got != 0.25 {
		t.Fatalf("gpu utilization = %v, want 0.25", got)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	// Tasks queued on a busy resource must run in ready-order.
	e := NewEngine()
	r := e.NewResource("gpu", 0)
	first := e.Compute("first", 0, r, 5)
	var rest []*Task
	for i := 0; i < 10; i++ {
		tk := e.Compute("t", 0, r, 1)
		tk.After(first)
		rest = append(rest, tk)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rest); i++ {
		if rest[i].Start < rest[i-1].End {
			t.Fatalf("FIFO violated at %d", i)
		}
	}
}

func TestCriticalPathLowerBoundsMakespan(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("gpu", 0)
	a := e.Compute("a", 0, r, 1)
	b := e.Compute("b", 0, r, 2)
	c := e.Compute("c", 0, r, 3)
	c.After(a, b)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	cp := e.CriticalPath()
	if cp > mk+1e-12 {
		t.Fatalf("critical path %v exceeds makespan %v", cp, mk)
	}
	if cp != 5 { // b(2) -> c(3)
		t.Fatalf("critical path = %v, want 5", cp)
	}
}

func TestRankSpans(t *testing.T) {
	e := NewEngine()
	r0 := e.NewResource("gpu0", 0)
	r1 := e.NewResource("gpu1", 0)
	e.Compute("a", 0, r0, 1)
	late := e.Compute("b", 0, r0, 2)
	late.After(e.Compute("c", 1, r1, 3))
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	spans := e.RankSpans()
	if spans[0][0] != 0 || spans[0][1] != 5 {
		t.Fatalf("rank 0 span = %v, want [0,5]", spans[0])
	}
	if got := SortedRanks(spans); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("sorted ranks = %v", got)
	}
}

func TestOnTaskDoneHookOrdering(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("gpu", 0)
	e.Compute("a", 0, r, 2)
	e.Compute("b", 0, r, 1)
	var order []string
	e.OnTaskDone = func(tk *Task) { order = append(order, tk.Label) }
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("completion order = %v", order)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindBarrier: "barrier", KindCompute: "compute",
		KindIntraComm: "intra-comm", KindInterComm: "inter-comm", KindMemOp: "mem",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

// Property: for any set of independent tasks on one resource, makespan
// equals the sum of durations (serial execution, work conservation).
func TestPropertySerialWorkConservation(t *testing.T) {
	f := func(durs []uint16) bool {
		e := NewEngine()
		r := e.NewResource("gpu", 0)
		var sum Time
		for _, d := range durs {
			dt := Time(d%1000) / 100.0
			sum += dt
			e.Compute("t", 0, r, dt)
		}
		mk, err := e.Run()
		if err != nil {
			return false
		}
		return AlmostEqual(mk, sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: random DAGs over multiple resources complete, makespan >=
// critical path, and every dependency is respected in the schedule.
func TestPropertyRandomDAGRespectsDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 30; iter++ {
		e := NewEngine()
		nres := 1 + rng.Intn(4)
		var res []*Resource
		for i := 0; i < nres; i++ {
			res = append(res, e.NewResource("r", 0))
		}
		n := 5 + rng.Intn(40)
		tasks := make([]*Task, n)
		type dep struct{ from, to int }
		var deps []dep
		for i := 0; i < n; i++ {
			tasks[i] = e.Compute("t", i%nres, res[i%nres], Time(rng.Intn(100))/10)
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.1 {
					tasks[i].After(tasks[j])
					deps = append(deps, dep{j, i})
				}
			}
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if cp := e.CriticalPath(); cp > mk+1e-9 {
			t.Fatalf("iter %d: critical path %v > makespan %v", iter, cp, mk)
		}
		for _, d := range deps {
			if tasks[d.to].Start+1e-12 < tasks[d.from].End {
				t.Fatalf("iter %d: dep %d->%d violated", iter, d.from, d.to)
			}
		}
	}
}

// Property: the simulator is deterministic — building the same graph twice
// yields identical task times.
func TestPropertyDeterminism(t *testing.T) {
	build := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r1 := e.NewResource("a", 50)
		r2 := e.NewResource("b", 0)
		var tasks []*Task
		for i := 0; i < 25; i++ {
			var tk *Task
			if i%2 == 0 {
				tk = e.Transfer("x", KindIntraComm, i, r1, float64(rng.Intn(500)))
			} else {
				tk = e.Compute("y", i, r2, Time(rng.Intn(50))/7)
			}
			if i > 2 && rng.Float64() < 0.3 {
				tk.After(tasks[rng.Intn(i-1)])
			}
			tasks = append(tasks, tk)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]Time, 0, 2*len(tasks))
		for _, tk := range tasks {
			out = append(out, tk.Start, tk.End)
		}
		return out
	}
	a, b := build(7), build(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic schedule at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Resource.Speed stretches the work portion of a task — duration and
// rated transfer time — but never the fixed latency.
func TestResourceSpeedScalesWork(t *testing.T) {
	e := NewEngine()
	comp := e.NewResource("slow-gpu", 0)
	comp.Latency = 1
	comp.Speed = 0.5
	k := e.Compute("kernel", 0, comp, 10)

	link := e.NewResource("derated-link", 100)
	link.Speed = 0.25
	x := e.Transfer("xfer", KindInterComm, 0, link, 400)

	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k.End - k.Start; got != 10/0.5+1 {
		t.Fatalf("half-speed kernel took %v, want %v", got, 10/0.5+1)
	}
	if got := x.End - x.Start; got != (400.0/100)/0.25 {
		t.Fatalf("quarter-speed transfer took %v, want %v", got, (400.0/100)/0.25)
	}

	// Speed 0 and 1 are nominal.
	e2 := NewEngine()
	r2 := e2.NewResource("nominal", 0)
	r2.Speed = 1
	k2 := e2.Compute("kernel", 0, r2, 10)
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k2.End - k2.Start; got != 10 {
		t.Fatalf("speed 1 changed duration: %v", got)
	}
}
