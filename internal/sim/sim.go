// Package sim implements a deterministic discrete-event simulator used to
// model the execution of distributed training steps on a GPU cluster.
//
// The simulator models two kinds of entities:
//
//   - Resources: serial FIFO executors with an optional data rate. A GPU
//     compute stream, a NIC, and an NVSwitch port are all resources. A
//     resource executes one task at a time; queued tasks run in the order
//     they became ready (FIFO), which matches the in-order stream semantics
//     of CUDA streams and NCCL channels that the paper's systems rely on.
//
//   - Tasks: units of work with explicit dependencies. A task either has a
//     fixed duration (kernel time from a cost model) or a size in bytes
//     (transfer time = size / resource rate + per-message latency). Tasks
//     with no resource complete instantly once their dependencies resolve
//     and act as barriers / join points.
//
// The engine is deterministic: identical task graphs produce identical
// schedules. Ties in event time are broken by creation order.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is simulated time in seconds.
type Time = float64

// Kind classifies a task for tracing and accounting.
type Kind uint8

// Task kinds. Barrier tasks carry no work; the remaining kinds mirror the
// operation classes in the paper's timeline analysis (Fig. 12).
const (
	KindBarrier Kind = iota
	KindCompute
	KindIntraComm
	KindInterComm
	KindMemOp
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindBarrier:
		return "barrier"
	case KindCompute:
		return "compute"
	case KindIntraComm:
		return "intra-comm"
	case KindInterComm:
		return "inter-comm"
	case KindMemOp:
		return "mem"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

type taskState uint8

const (
	statePending taskState = iota // waiting on dependencies
	stateQueued                   // dependencies met, waiting for resource
	stateRunning
	stateDone
)

// Resource is a serial FIFO executor. Rate is in bytes/second and is used
// for tasks that specify Size; it may be zero for pure-duration resources
// such as compute streams.
type Resource struct {
	Name string
	Rate float64 // bytes per second; 0 means duration-only resource
	// Latency is a fixed per-task overhead added to every task executed on
	// this resource (e.g. NCCL kernel launch, RDMA message setup).
	Latency Time
	// Speed scales this resource's effective execution rate: a task's work
	// time (duration plus rated transfer time, but not Latency) is divided
	// by Speed. Zero or one means nominal speed; 0.5 models a degraded
	// executor running at half rate (a throttled GPU, a flapping NIC).
	// The fault-injection layer sets this; healthy simulations leave it 0.
	Speed float64

	id    int
	busy  bool
	queue []*Task

	// BusyTime accumulates the total time this resource spent executing
	// tasks, for utilization reporting.
	BusyTime Time
}

// Utilization returns the fraction of [0, makespan] this resource was busy.
func (r *Resource) Utilization(makespan Time) float64 {
	if makespan <= 0 {
		return 0
	}
	return r.BusyTime / makespan
}

// Task is a schedulable unit of work.
type Task struct {
	Label string
	Kind  Kind
	// Rank identifies the device this task belongs to, for tracing.
	Rank int
	// Duration is a fixed execution time. Used when Size is zero.
	Duration Time
	// Size is a transfer size in bytes; execution time is Size/res.Rate.
	Size float64

	id    int
	res   *Resource
	deps  int
	succs []*Task
	state taskState

	// Start and End are filled in by Run.
	Start, End Time
}

// After declares that t runs only once all of the given tasks complete.
// Nil entries are ignored so callers can chain optional stages.
func (t *Task) After(deps ...*Task) *Task {
	for _, d := range deps {
		if d == nil {
			continue
		}
		d.succs = append(d.succs, t)
		t.deps++
	}
	return t
}

// Engine owns resources and tasks and advances simulated time.
type Engine struct {
	now       Time
	tasks     []*Task
	resources []*Resource
	events    eventHeap
	eventSeq  int
	ran       bool

	// OnTaskDone, if set, is invoked after each task finishes, in
	// completion order. Used by the trace package.
	OnTaskDone func(t *Task)
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{}
}

// NewResource registers a serial FIFO resource.
func (e *Engine) NewResource(name string, rate float64) *Resource {
	r := &Resource{Name: name, Rate: rate, id: len(e.resources)}
	e.resources = append(e.resources, r)
	return r
}

// Resources returns all registered resources in creation order.
func (e *Engine) Resources() []*Resource { return e.resources }

// Tasks returns all registered tasks in creation order.
func (e *Engine) Tasks() []*Task { return e.tasks }

// NewTask registers a task. A nil resource makes the task a zero-cost
// barrier unless Duration is set, in which case it models unresourced
// latency (e.g. host-side bookkeeping).
func (e *Engine) NewTask(label string, kind Kind, rank int, res *Resource) *Task {
	t := &Task{Label: label, Kind: kind, Rank: rank, res: res, id: len(e.tasks)}
	e.tasks = append(e.tasks, t)
	return t
}

// Compute is a convenience wrapper for a fixed-duration task on a resource.
func (e *Engine) Compute(label string, rank int, res *Resource, d Time) *Task {
	t := e.NewTask(label, KindCompute, rank, res)
	t.Duration = d
	return t
}

// Transfer is a convenience wrapper for a sized task on a rated resource.
func (e *Engine) Transfer(label string, kind Kind, rank int, res *Resource, bytes float64) *Task {
	t := e.NewTask(label, kind, rank, res)
	t.Size = bytes
	return t
}

// Barrier is a zero-cost join point.
func (e *Engine) Barrier(label string, rank int) *Task {
	return e.NewTask(label, KindBarrier, rank, nil)
}

type event struct {
	at   Time
	seq  int
	task *Task
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (e *Engine) push(at Time, t *Task) {
	heap.Push(&e.events, event{at: at, seq: e.eventSeq, task: t})
	e.eventSeq++
}

func (t *Task) execTime() Time {
	d := t.Duration
	if t.Size > 0 && t.res != nil && t.res.Rate > 0 {
		d += t.Size / t.res.Rate
	}
	if t.res != nil {
		if s := t.res.Speed; s > 0 && s != 1 {
			d /= s
		}
		d += t.res.Latency
	}
	return d
}

func (e *Engine) ready(t *Task) {
	if t.res == nil {
		t.state = stateRunning
		t.Start = e.now
		e.push(e.now+t.execTime(), t)
		return
	}
	t.state = stateQueued
	if t.res.busy {
		t.res.queue = append(t.res.queue, t)
		return
	}
	e.start(t)
}

func (e *Engine) start(t *Task) {
	t.state = stateRunning
	t.Start = e.now
	t.res.busy = true
	d := t.execTime()
	t.res.BusyTime += d
	e.push(e.now+d, t)
}

// Run executes the task graph to completion and returns the makespan.
// It returns an error if the dependency graph has a cycle (some tasks can
// never run). Run may be called only once per engine.
func (e *Engine) Run() (Time, error) {
	if e.ran {
		return 0, fmt.Errorf("sim: engine already ran")
	}
	e.ran = true
	for _, t := range e.tasks {
		if t.deps == 0 {
			e.ready(t)
		}
	}
	done := 0
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		t := ev.task
		t.state = stateDone
		t.End = e.now
		done++
		if t.res != nil {
			t.res.busy = false
			if len(t.res.queue) > 0 {
				next := t.res.queue[0]
				t.res.queue = t.res.queue[1:]
				e.start(next)
			}
		}
		for _, s := range t.succs {
			s.deps--
			if s.deps == 0 {
				e.ready(s)
			}
		}
		if e.OnTaskDone != nil {
			e.OnTaskDone(t)
		}
	}
	if done != len(e.tasks) {
		var stuck []string
		for _, t := range e.tasks {
			if t.state != stateDone {
				stuck = append(stuck, t.Label)
				if len(stuck) >= 5 {
					break
				}
			}
		}
		return 0, fmt.Errorf("sim: deadlock, %d/%d tasks completed (stuck: %v)", done, len(e.tasks), stuck)
	}
	return e.now, nil
}

// Makespan returns the completion time of the latest task; valid after Run.
func (e *Engine) Makespan() Time { return e.now }

// KindTotals sums busy time per task kind across all completed tasks.
// Overlapping tasks are counted independently, so totals can exceed the
// makespan; this mirrors per-stream accounting in profiler timelines.
func (e *Engine) KindTotals() map[Kind]Time {
	out := make(map[Kind]Time)
	for _, t := range e.tasks {
		if t.state == stateDone {
			out[t.Kind] += t.End - t.Start
		}
	}
	return out
}

// CriticalPath returns the longest dependency chain's total duration,
// ignoring resource contention. It lower-bounds the makespan and is used
// in tests to validate the scheduler.
func (e *Engine) CriticalPath() Time {
	// Tasks were created in topological-compatible order only if callers
	// added dependencies to already-created tasks; handle the general case
	// with a memoized DFS over successors instead.
	memo := make([]Time, len(e.tasks))
	for i := range memo {
		memo[i] = -1
	}
	var longest func(t *Task) Time
	longest = func(t *Task) Time {
		if memo[t.id] >= 0 {
			return memo[t.id]
		}
		memo[t.id] = 0 // cycle guard; graphs here are DAGs by construction
		best := Time(0)
		for _, s := range t.succs {
			if v := longest(s); v > best {
				best = v
			}
		}
		memo[t.id] = best + t.execTime()
		return memo[t.id]
	}
	best := Time(0)
	for _, t := range e.tasks {
		if v := longest(t); v > best {
			best = v
		}
	}
	return best
}

// RankSpans returns, for each rank present, the earliest start and latest
// end among its non-barrier tasks. Useful for imbalance reporting.
func (e *Engine) RankSpans() map[int][2]Time {
	out := make(map[int][2]Time)
	for _, t := range e.tasks {
		if t.Kind == KindBarrier || t.state != stateDone {
			continue
		}
		sp, ok := out[t.Rank]
		if !ok {
			out[t.Rank] = [2]Time{t.Start, t.End}
			continue
		}
		if t.Start < sp[0] {
			sp[0] = t.Start
		}
		if t.End > sp[1] {
			sp[1] = t.End
		}
		out[t.Rank] = sp
	}
	return out
}

// SortedRanks returns the sorted rank ids present in a span map.
func SortedRanks(spans map[int][2]Time) []int {
	ranks := make([]int, 0, len(spans))
	for r := range spans {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// AlmostEqual reports whether two times are equal within a small tolerance,
// for use in tests that compare schedules built through different paths.
func AlmostEqual(a, b Time) bool {
	const eps = 1e-9
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps*scale
}
