package flow

import (
	"math"
	"testing"
)

// buildFromBytes decodes a fuzz payload into a deterministic flow
// network on n nodes: every 4-byte group becomes one edge
// (u, v, capacity, cost). Returns the graph plus the raw edge list for
// the reference solver.
func buildFromBytes(n int, data []byte) (*Graph, [][3]int, []int) {
	g := NewGraph(n)
	var edges [][3]int
	var ids []int
	for i := 0; i+4 <= len(data); i += 4 {
		u := int(data[i]) % n
		v := int(data[i+1]) % n
		if u == v {
			continue
		}
		capacity := int(data[i+2]) % 32
		cost := float64(data[i+3]%16) / 4
		ids = append(ids, g.AddEdge(u, v, capacity, cost))
		edges = append(edges, [3]int{u, v, capacity})
	}
	return g, edges, ids
}

// netFlow computes each node's net outflow from the solved graph.
func netFlow(g *Graph, edges [][3]int, ids []int, n int) []int {
	net := make([]int, n)
	for i, e := range edges {
		f := g.EdgeFlow(ids[i])
		net[e[0]] += f
		net[e[1]] -= f
	}
	return net
}

// FuzzMaxFlow checks Dinic on arbitrary graphs: the flow matches the
// reference Ford–Fulkerson (feasibility and maximality), per-edge flows
// respect capacities, flow is conserved at every internal node, and the
// solver is deterministic.
func FuzzMaxFlow(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 10, 0, 1, 2, 5, 0, 0, 2, 3, 0, 2, 3, 9, 0})
	f.Add(uint8(2), []byte{0, 1, 1, 0})
	f.Add(uint8(6), []byte{})
	f.Add(uint8(3), []byte{0, 1, 31, 3, 1, 2, 31, 3, 2, 0, 31, 3})
	f.Fuzz(func(t *testing.T, nodes uint8, data []byte) {
		n := 2 + int(nodes)%14
		if len(data) > 256 {
			data = data[:256]
		}
		g, edges, ids := buildFromBytes(n, data)
		s, sink := 0, n-1
		got := g.MaxFlow(s, sink)
		want := bruteMaxFlow(n, edges, s, sink)
		if got != want {
			t.Fatalf("MaxFlow = %d, reference = %d (n=%d edges=%v)", got, want, n, edges)
		}
		for i, e := range edges {
			if fl := g.EdgeFlow(ids[i]); fl < 0 || fl > e[2] {
				t.Fatalf("edge %v carries infeasible flow %d", e, fl)
			}
		}
		for node, net := range netFlow(g, edges, ids, n) {
			switch node {
			case s:
				if net != got {
					t.Fatalf("source nets %d, flow is %d", net, got)
				}
			case sink:
				if net != -got {
					t.Fatalf("sink nets %d, flow is %d", net, got)
				}
			default:
				if net != 0 {
					t.Fatalf("node %d violates conservation: net %d", node, net)
				}
			}
		}
		// Determinism: an identical graph solves identically, edge by edge.
		g2, _, ids2 := buildFromBytes(n, data)
		if again := g2.MaxFlow(s, sink); again != got {
			t.Fatalf("nondeterministic max flow: %d then %d", got, again)
		}
		for i := range ids {
			if g.EdgeFlow(ids[i]) != g2.EdgeFlow(ids2[i]) {
				t.Fatalf("nondeterministic edge flow on edge %d", i)
			}
		}
	})
}

// FuzzMinCostFlow checks the successive-shortest-path solver: it routes
// exactly the max flow when unconstrained, respects an explicit flow
// bound, conserves flow, reports a cost consistent with its own edge
// flows, and never beats the cost of any feasible reference routing of
// the same value (optimality spot check via its own rerun).
func FuzzMinCostFlow(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 10, 1, 1, 3, 5, 2, 0, 2, 7, 4, 2, 3, 9, 1}, uint8(255))
	f.Add(uint8(2), []byte{0, 1, 3, 0}, uint8(1))
	f.Add(uint8(5), []byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, nodes uint8, data []byte, bound uint8) {
		n := 2 + int(nodes)%14
		if len(data) > 256 {
			data = data[:256]
		}
		s, sink := 0, n-1

		gMax, edges, _ := buildFromBytes(n, data)
		maxFlow := gMax.MaxFlow(s, sink)

		g, _, ids := buildFromBytes(n, data)
		limit := int(bound)
		if bound == 255 {
			limit = math.MaxInt
		}
		flow, cost := g.MinCostFlow(s, sink, limit)

		wantFlow := maxFlow
		if limit < wantFlow {
			wantFlow = limit
		}
		if flow != wantFlow {
			t.Fatalf("MinCostFlow routed %d, want %d (max %d, limit %d)", flow, wantFlow, maxFlow, limit)
		}
		if cost < 0 {
			t.Fatalf("negative total cost %v", cost)
		}
		// Cost must equal the per-edge flows' cost.
		var recomputed float64
		for i := range edges {
			recomputed += float64(g.EdgeFlow(ids[i])) * g.edges[ids[i]].cost
		}
		if math.Abs(recomputed-cost) > 1e-6*(1+math.Abs(cost)) {
			t.Fatalf("reported cost %v != edge-flow cost %v", cost, recomputed)
		}
		for node, net := range netFlow(g, edges, ids, n) {
			switch node {
			case s:
				if net != flow {
					t.Fatalf("source nets %d, flow is %d", net, flow)
				}
			case sink:
				if net != -flow {
					t.Fatalf("sink nets %d, flow is %d", net, flow)
				}
			default:
				if net != 0 {
					t.Fatalf("node %d violates conservation: net %d", node, net)
				}
			}
		}
		// Determinism: same graph, same flow and cost.
		g2, _, _ := buildFromBytes(n, data)
		flow2, cost2 := g2.MinCostFlow(s, sink, limit)
		if flow2 != flow || cost2 != cost {
			t.Fatalf("nondeterministic min-cost flow: (%d, %v) then (%d, %v)", flow, cost, flow2, cost2)
		}
	})
}
