// Package flow provides max-flow and min-cost-flow solvers used by the
// remapping layer (§3.4). The paper formulates remapping as a transport
// optimization (Eq. 2) and solves it with Gurobi; this package is the
// from-scratch stand-in: Dinic's algorithm for max flow and successive
// shortest paths (Bellman–Ford with non-negative edge costs) for min-cost
// flow. Capacities are integers (token counts); costs are float64 seconds
// per token.
package flow

import (
	"fmt"
	"math"
)

type edge struct {
	to   int
	cap  int
	cost float64
}

// Graph is a directed flow network on n nodes. Solver scratch (BFS
// levels, SPFA queues) lives on the graph and is reused across MaxFlow /
// MinCostFlow calls, so repeated solves on long-lived graphs stay off
// the allocator.
type Graph struct {
	n     int
	edges []edge // paired: edge i and i^1 are residual partners
	head  [][]int

	level    []int
	iter     []int
	queue    []int
	dist     []float64
	inQueue  []bool
	prevEdge []int
}

// NewGraph creates a flow network with n nodes (0..n-1).
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("flow: graph needs at least one node")
	}
	return &Graph{n: n, head: make([][]int, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, returning an id usable with EdgeFlow. Panics on invalid endpoints
// or negative capacity.
func (g *Graph) AddEdge(u, v, capacity int, cost float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: edge %d->%d out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: v, cap: capacity, cost: cost})
	g.edges = append(g.edges, edge{to: u, cap: 0, cost: -cost})
	g.head[u] = append(g.head[u], id)
	g.head[v] = append(g.head[v], id+1)
	return id
}

// EdgeFlow returns the flow currently routed through edge id.
func (g *Graph) EdgeFlow(id int) int {
	// Flow equals the residual capacity accumulated on the reverse edge.
	return g.edges[id^1].cap
}

// MaxFlow computes the maximum s→t flow with Dinic's algorithm,
// disregarding costs. It mutates residual capacities; call on a fresh
// graph (or after a previous flow you want to extend).
func (g *Graph) MaxFlow(s, t int) int {
	if s == t {
		return 0
	}
	total := 0
	level := g.scratchInts(&g.level)
	iter := g.scratchInts(&g.iter)
	queue := g.scratchQueue()[:0]

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		// Head-index draining keeps the queue's backing array stable, so
		// the scratch buffer (and any growth) survives into later calls.
		queue = queue[:0]
		level[s] = 0
		queue = append(queue, s)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, id := range g.head[u] {
				e := g.edges[id]
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		g.queue = queue
		return level[t] >= 0
	}

	var dfs func(u, limit int) int
	dfs = func(u, limit int) int {
		if u == t {
			return limit
		}
		for ; iter[u] < len(g.head[u]); iter[u]++ {
			id := g.head[u][iter[u]]
			e := g.edges[id]
			if e.cap <= 0 || level[e.to] != level[u]+1 {
				continue
			}
			pushed := dfs(e.to, min(limit, e.cap))
			if pushed > 0 {
				g.edges[id].cap -= pushed
				g.edges[id^1].cap += pushed
				return pushed
			}
		}
		return 0
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := dfs(s, math.MaxInt)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

// MinCostFlow routes up to maxFlow units from s to t along successively
// cheapest augmenting paths and returns the flow achieved and its total
// cost. Pass math.MaxInt to route the maximum flow. Costs may be any
// non-negative float; negative-cost edges are rejected.
func (g *Graph) MinCostFlow(s, t, maxFlow int) (int, float64) {
	for i := 0; i < len(g.edges); i += 2 {
		if g.edges[i].cost < 0 {
			panic("flow: MinCostFlow requires non-negative edge costs")
		}
	}
	totalFlow := 0
	totalCost := 0.0
	if cap(g.dist) < g.n {
		g.dist = make([]float64, g.n)
		g.inQueue = make([]bool, g.n)
	}
	dist := g.dist[:g.n]
	inQueue := g.inQueue[:g.n]
	for i := range inQueue {
		inQueue[i] = false
	}
	prevEdge := g.scratchInts(&g.prevEdge)

	for totalFlow < maxFlow {
		// Bellman–Ford (SPFA) over the residual graph; residual arcs can
		// have negative cost, so Dijkstra is not directly applicable.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		// Head-index draining (no re-slicing) so the scratch queue's
		// backing — including SPFA growth beyond n — is retained on g.
		queue := append(g.scratchQueue(), s)
		inQueue[s] = true
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			inQueue[u] = false
			for _, id := range g.head[u] {
				e := g.edges[id]
				if e.cap <= 0 {
					continue
				}
				nd := dist[u] + e.cost
				if nd < dist[e.to]-1e-12 {
					dist[e.to] = nd
					prevEdge[e.to] = id
					if !inQueue[e.to] {
						queue = append(queue, e.to)
						inQueue[e.to] = true
					}
				}
			}
		}
		g.queue = queue
		if math.IsInf(dist[t], 1) {
			break
		}
		// Find bottleneck along the path.
		push := maxFlow - totalFlow
		for v := t; v != s; {
			id := prevEdge[v]
			if g.edges[id].cap < push {
				push = g.edges[id].cap
			}
			v = g.edges[id^1].to
		}
		for v := t; v != s; {
			id := prevEdge[v]
			g.edges[id].cap -= push
			g.edges[id^1].cap += push
			v = g.edges[id^1].to
		}
		totalFlow += push
		totalCost += float64(push) * dist[t]
	}
	return totalFlow, totalCost
}

// scratchInts returns a length-n int scratch slice stored at p.
func (g *Graph) scratchInts(p *[]int) []int {
	if cap(*p) < g.n {
		*p = make([]int, g.n)
	}
	return (*p)[:g.n]
}

// scratchQueue returns the shared BFS/SPFA queue buffer.
func (g *Graph) scratchQueue() []int {
	if cap(g.queue) < g.n {
		g.queue = make([]int, 0, g.n)
	}
	return g.queue[:0]
}
