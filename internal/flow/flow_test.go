package flow

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxFlowSimple(t *testing.T) {
	// s -> a -> t with caps 3, 2: max flow 2.
	g := NewGraph(3)
	g.AddEdge(0, 1, 3, 0)
	g.AddEdge(1, 2, 2, 0)
	if got := g.MaxFlow(0, 2); got != 2 {
		t.Fatalf("max flow = %d, want 2", got)
	}
}

func TestMaxFlowParallelPaths(t *testing.T) {
	// Classic diamond: s->a(10), s->b(10), a->t(10), b->t(10), a->b(1).
	g := NewGraph(4)
	g.AddEdge(0, 1, 10, 0)
	g.AddEdge(0, 2, 10, 0)
	g.AddEdge(1, 3, 10, 0)
	g.AddEdge(2, 3, 10, 0)
	g.AddEdge(1, 2, 1, 0)
	if got := g.MaxFlow(0, 3); got != 20 {
		t.Fatalf("max flow = %d, want 20", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 5, 0)
	g.AddEdge(2, 3, 5, 0)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Fatalf("max flow = %d, want 0", got)
	}
}

func TestMaxFlowSelf(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 5, 0)
	if got := g.MaxFlow(1, 1); got != 0 {
		t.Fatalf("s==t should be 0, got %d", got)
	}
}

func TestEdgeFlow(t *testing.T) {
	g := NewGraph(3)
	e1 := g.AddEdge(0, 1, 3, 0)
	e2 := g.AddEdge(1, 2, 2, 0)
	g.MaxFlow(0, 2)
	if g.EdgeFlow(e1) != 2 || g.EdgeFlow(e2) != 2 {
		t.Fatalf("edge flows = %d, %d; want 2, 2", g.EdgeFlow(e1), g.EdgeFlow(e2))
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// Two s->t paths: cost 1 cap 5, cost 10 cap 5. Send 7 units.
	g := NewGraph(4)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(1, 3, 5, 0)
	g.AddEdge(0, 2, 5, 10)
	g.AddEdge(2, 3, 5, 0)
	f, c := g.MinCostFlow(0, 3, 7)
	if f != 7 {
		t.Fatalf("flow = %d, want 7", f)
	}
	if c != 5*1+2*10 {
		t.Fatalf("cost = %v, want 25", c)
	}
}

func TestMinCostMaxFlowRoutesEverything(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 4, 2)
	g.AddEdge(1, 2, 9, 3)
	f, c := g.MinCostFlow(0, 2, math.MaxInt)
	if f != 4 {
		t.Fatalf("flow = %d, want 4", f)
	}
	if c != 4*5 {
		t.Fatalf("cost = %v, want 20", c)
	}
}

func TestMinCostReroutesThroughResidual(t *testing.T) {
	// Requires using a residual (negative) arc to achieve optimality:
	// s->a cap1 cost1, s->b cap1 cost4, a->t cap1 cost4, b->t cap1 cost1,
	// a->b cap1 cost0. Optimal 2 units: s->a->b->t (2) + s->b? b->t full.
	// SSP handles this via residual arcs.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 4)
	g.AddEdge(1, 3, 1, 4)
	g.AddEdge(2, 3, 1, 1)
	g.AddEdge(1, 2, 1, 0)
	f, c := g.MinCostFlow(0, 3, math.MaxInt)
	if f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
	// Best: s->a->b->t = 1+0+1 = 2; s->b->t blocked, s->b(4)->? b->t used;
	// second unit s->b? no: s->b cap1 cost4 then b->t full, so a->t: total
	// = (s->a->b->t: 2) + (s->b ... t? ) enumerate: optimum is 2 + 8 = 10
	// via s->b(4)+b? Actually second path must be s->b(4), b->t taken, so
	// b has no other out; the only feasible 2-unit routing is
	// {s->a->b->t, s->b? infeasible} => {s->a->t, s->b->t} = 5+5 = 10, or
	// {s->a->b->t=2, ...} leaves s->b + a->t = impossible without a.
	// So optimal total = 10.
	if c != 10 {
		t.Fatalf("cost = %v, want 10", c)
	}
}

func TestMinCostRejectsNegativeCosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative cost")
		}
	}()
	g := NewGraph(2)
	g.AddEdge(0, 1, 1, -1)
	g.MinCostFlow(0, 1, 1)
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1, 0) },
		func() { g.AddEdge(0, 2, 1, 0) },
		func() { g.AddEdge(0, 1, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for empty graph")
			}
		}()
		NewGraph(0)
	}()
}

// brute-force max flow on tiny graphs via repeated DFS augmentation
// (Ford-Fulkerson with unit steps) for cross-checking Dinic.
func bruteMaxFlow(n int, edges [][3]int, s, t int) int {
	capm := make([][]int, n)
	for i := range capm {
		capm[i] = make([]int, n)
	}
	for _, e := range edges {
		capm[e[0]][e[1]] += e[2]
	}
	total := 0
	for {
		// BFS for augmenting path.
		prev := make([]int, n)
		for i := range prev {
			prev[i] = -1
		}
		prev[s] = s
		q := []int{s}
		for len(q) > 0 && prev[t] == -1 {
			u := q[0]
			q = q[1:]
			for v := 0; v < n; v++ {
				if capm[u][v] > 0 && prev[v] == -1 {
					prev[v] = u
					q = append(q, v)
				}
			}
		}
		if prev[t] == -1 {
			return total
		}
		push := math.MaxInt
		for v := t; v != s; v = prev[v] {
			if capm[prev[v]][v] < push {
				push = capm[prev[v]][v]
			}
		}
		for v := t; v != s; v = prev[v] {
			capm[prev[v]][v] -= push
			capm[v][prev[v]] += push
		}
		total += push
	}
}

// Property: Dinic agrees with a reference Ford–Fulkerson on random graphs.
func TestPropertyMaxFlowMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(7)
		var edges [][3]int
		g := NewGraph(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := rng.Intn(10)
			edges = append(edges, [3]int{u, v, c})
			g.AddEdge(u, v, c, 0)
		}
		want := bruteMaxFlow(n, edges, 0, n-1)
		if got := g.MaxFlow(0, n-1); got != want {
			t.Fatalf("iter %d: dinic %d != reference %d", iter, got, want)
		}
	}
}

// Property: min-cost flow conservation — for every intermediate node,
// inflow equals outflow.
func TestPropertyFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 40; iter++ {
		n := 3 + rng.Intn(6)
		g := NewGraph(n)
		type rec struct{ u, v, id int }
		var recs []rec
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			id := g.AddEdge(u, v, rng.Intn(8), float64(rng.Intn(5)))
			recs = append(recs, rec{u, v, id})
		}
		f, _ := g.MinCostFlow(0, n-1, math.MaxInt)
		net := make([]int, n)
		for _, r := range recs {
			fl := g.EdgeFlow(r.id)
			net[r.u] -= fl
			net[r.v] += fl
		}
		if net[0] != -f || net[n-1] != f {
			t.Fatalf("iter %d: endpoints violate conservation: %v, flow %d", iter, net, f)
		}
		for i := 1; i < n-1; i++ {
			if net[i] != 0 {
				t.Fatalf("iter %d: node %d has net flow %d", iter, i, net[i])
			}
		}
	}
}

// Property: MinCostFlow with unlimited budget achieves the same flow value
// as MaxFlow on an identical graph.
func TestPropertyMinCostAchievesMaxFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(6)
		g1 := NewGraph(n)
		g2 := NewGraph(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := rng.Intn(10)
			w := float64(rng.Intn(4))
			g1.AddEdge(u, v, c, w)
			g2.AddEdge(u, v, c, w)
		}
		want := g1.MaxFlow(0, n-1)
		got, _ := g2.MinCostFlow(0, n-1, math.MaxInt)
		if got != want {
			t.Fatalf("iter %d: mincost flow %d != maxflow %d", iter, got, want)
		}
	}
}
