package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"zeppelin/internal/benchfmt"
)

// wantBenchUsage asserts benchCmd rejects the flags with a usageError.
func wantBenchUsage(t *testing.T, args []string, substr string) {
	t.Helper()
	err := benchCmd(io.Discard, args, false)
	if err == nil {
		t.Fatalf("args %v must fail", args)
	}
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("args %v: error %v is not a usage error", args, err)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("args %v: error %q does not mention %q", args, err, substr)
	}
}

func TestBenchCmdRejectsInvalidFlags(t *testing.T) {
	wantBenchUsage(t, []string{"-iters", "1"}, "-iters")
	wantBenchUsage(t, []string{"-ranks", "banana"}, "bad ranks")
	wantBenchUsage(t, []string{"-ranks", "-8"}, "bad ranks")
	wantBenchUsage(t, []string{"-ranks", "7"}, "multiple")
	wantBenchUsage(t, []string{"-solve-workers", "-1"}, "-solve-workers")
	wantBenchUsage(t, []string{"positional"}, "unexpected arguments")
}

// TestBenchCmdEmitsBenchfmtSchema: the -json artifact must round-trip
// through the shared schema — the property that makes local runs and the
// CI BENCH_pr8.json artifact directly comparable.
func TestBenchCmdEmitsBenchfmtSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := benchCmd(&buf, []string{"-ranks", "64", "-iters", "4", "-json"}, false); err != nil {
		t.Fatal(err)
	}
	art, err := benchfmt.ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if art.Source != "zeppelin bench" || len(art.Results) != 2 {
		t.Fatalf("artifact = %+v", art)
	}
	full := art.Get("BenchmarkFig15PlanFull/ranks=64")
	inc := art.Get("BenchmarkFig15PlanIncremental/ranks=64")
	if full == nil || inc == nil {
		t.Fatalf("missing plan results: %+v", art.Results)
	}
	if full.NsPerOp <= 0 || inc.NsPerOp <= 0 {
		t.Fatalf("latencies not measured: full=%v inc=%v", full.NsPerOp, inc.NsPerOp)
	}
	if inc.Metrics["max-cost-ratio"] <= 0 {
		t.Fatalf("incremental result missing cost ratio: %+v", inc.Metrics)
	}
}

// TestBenchCmdTextModeParsesAsBenchOutput: text mode prints go-test-style
// lines, so benchgate's parser accepts them unchanged.
func TestBenchCmdTextModeParsesAsBenchOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := benchCmd(&buf, []string{"-ranks", "64", "-iters", "4"}, false); err != nil {
		t.Fatal(err)
	}
	parsed, err := benchfmt.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Results) != 2 {
		t.Fatalf("parsed %d results from text mode, want 2", len(parsed.Results))
	}
	if parsed.Get("BenchmarkFig15PlanIncremental/ranks=64") == nil {
		t.Fatalf("text mode lines not benchgate-parseable: %+v", parsed.Results)
	}
}
